// Benchmarks regenerating every table and figure of the paper's evaluation
// (Section 8). Each benchmark drives the corresponding experiment in
// internal/bench once per iteration and reports the headline series as
// custom metrics; run with
//
//	go test -bench=. -benchmem -benchtime=1x
//
// and tune scale with MRP_BENCH_SECONDS / MRP_BENCH_SCALE /
// MRP_BENCH_CLIENTS / MRP_BENCH_RECORDS. The full text reports are
// produced by cmd/mrp-bench.
package mrp_test

import (
	"fmt"
	"testing"

	"mrp/internal/bench"
)

// BenchmarkFig3Baseline regenerates Figure 3 (Multi-Ring Paxos baseline:
// five storage modes x four request sizes). Reported metric: in-memory
// throughput at 32 KB in Mbps; the full sweep prints with -v via
// cmd/mrp-bench.
func BenchmarkFig3Baseline(b *testing.B) {
	opts := bench.FromEnv()
	for i := 0; i < b.N; i++ {
		rows := bench.Fig3(opts)
		for _, r := range rows {
			name := fmt.Sprintf("%s_%dB_Mbps", sanitize(r.Mode.String()), r.Size)
			b.ReportMetric(r.ThroughputMbps, name)
		}
	}
}

// BenchmarkFig4YCSB regenerates Figure 4 (YCSB A-F across the four
// systems). Reported metrics: ops/s per system on workload A.
func BenchmarkFig4YCSB(b *testing.B) {
	opts := bench.FromEnv()
	for i := 0; i < b.N; i++ {
		rows := bench.Fig4(opts)
		for _, r := range rows {
			if r.Workload == 'A' {
				b.ReportMetric(r.OpsPerSec, sanitize(string(r.System))+"_A_ops/s")
			}
		}
	}
}

// BenchmarkFig5DLog regenerates Figure 5 (dLog vs Bookkeeper-like).
func BenchmarkFig5DLog(b *testing.B) {
	opts := bench.FromEnv()
	for i := 0; i < b.N; i++ {
		rows := bench.Fig5(opts)
		for _, r := range rows {
			if r.Clients == 100 {
				b.ReportMetric(r.OpsPerSec, sanitize(r.System)+"_100c_ops/s")
				b.ReportMetric(float64(r.MeanLat.Milliseconds()), sanitize(r.System)+"_100c_ms")
			}
		}
	}
}

// BenchmarkFig6Vertical regenerates Figure 6 (dLog vertical scalability).
func BenchmarkFig6Vertical(b *testing.B) {
	opts := bench.FromEnv()
	for i := 0; i < b.N; i++ {
		rows := bench.Fig6(opts)
		for _, r := range rows {
			b.ReportMetric(r.AggOpsPerSec, fmt.Sprintf("rings%d_ops/s", r.Rings))
		}
	}
}

// BenchmarkFig7Horizontal regenerates Figure 7 (MRP-Store across EC2
// regions).
func BenchmarkFig7Horizontal(b *testing.B) {
	opts := bench.FromEnv()
	for i := 0; i < b.N; i++ {
		rows := bench.Fig7(opts)
		for _, r := range rows {
			b.ReportMetric(r.AggOpsPerSec, fmt.Sprintf("regions%d_ops/s", r.Regions))
		}
	}
}

// BenchmarkFig8Recovery regenerates Figure 8 (impact of recovery).
func BenchmarkFig8Recovery(b *testing.B) {
	opts := bench.FromEnv()
	for i := 0; i < b.N; i++ {
		res := bench.Fig8(opts)
		b.ReportMetric(res.SteadyOps, "steady_ops/s")
		b.ReportMetric(res.DipOps, "dip_ops/s")
		b.ReportMetric(res.RecoveredOps, "recovered_ops/s")
	}
}

// BenchmarkAblationBatching measures coordinator batching on/off (a design
// choice DESIGN.md calls out).
func BenchmarkAblationBatching(b *testing.B) {
	opts := bench.FromEnv()
	for i := 0; i < b.N; i++ {
		rows := bench.AblationBatching(opts)
		for _, r := range rows {
			b.ReportMetric(r.OpsPerSec, sanitize(r.Variant)+"_ops/s")
		}
	}
}

// BenchmarkAblationSkip measures rate leveling on/off: without skips the
// deterministic merge of an idle ring stalls.
func BenchmarkAblationSkip(b *testing.B) {
	opts := bench.FromEnv()
	for i := 0; i < b.N; i++ {
		rows := bench.AblationSkip(opts)
		for _, r := range rows {
			b.ReportMetric(r.OpsPerSec, sanitize(r.Variant)+"_ops/s")
		}
	}
}

// sanitize makes a label usable as a benchmark metric suffix.
func sanitize(s string) string {
	out := make([]rune, 0, len(s))
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
			out = append(out, r)
		case r == ' ', r == '(', r == ')', r == '.':
			// drop
		default:
			out = append(out, '_')
		}
	}
	return string(out)
}
