// Command dlogd runs an interactive dLog cluster: a distributed shared log
// ordered by Multi-Ring Paxos, with a REPL for the Table 2 operations.
//
// Usage:
//
//	dlogd [-logs 2] [-servers 3]
//
// REPL commands:
//
//	append <log> <value>
//	mappend <log,log,...> <value>
//	read <log> <pos>
//	trim <log> <pos>
//	quit
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"mrp"
)

func main() {
	logs := flag.Int("logs", 2, "number of logs")
	servers := flag.Int("servers", 3, "number of servers")
	flag.Parse()

	net := mrp.NewSimNetwork()
	defer net.Close()
	lg, err := mrp.DeployLog(mrp.LogConfig{
		Net:          net,
		Logs:         *logs,
		Servers:      *servers,
		StorageMode:  mrp.InMemory,
		SkipInterval: 5 * time.Millisecond,
		SkipRate:     1000,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "deploy:", err)
		os.Exit(1)
	}
	defer lg.Stop()
	cl := lg.NewClient()
	defer cl.Close()

	fmt.Printf("dLog: %d logs x %d servers\n", *logs, *servers)
	fmt.Println("commands: append l v | mappend l1,l2 v | read l p | trim l p | quit")

	sc := bufio.NewScanner(os.Stdin)
	for {
		fmt.Print("> ")
		if !sc.Scan() {
			return
		}
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 {
			continue
		}
		switch fields[0] {
		case "quit", "exit":
			return
		case "append":
			if len(fields) != 3 {
				fmt.Println("usage: append <log> <value>")
				continue
			}
			l, _ := strconv.Atoi(fields[1])
			pos, err := cl.Append(mrp.LogID(l), []byte(fields[2]))
			if err != nil {
				fmt.Println("error:", err)
				continue
			}
			fmt.Printf("pos %d\n", pos)
		case "mappend":
			if len(fields) != 3 {
				fmt.Println("usage: mappend <log,log,...> <value>")
				continue
			}
			var ids []mrp.LogID
			for _, s := range strings.Split(fields[1], ",") {
				l, _ := strconv.Atoi(s)
				ids = append(ids, mrp.LogID(l))
			}
			positions, err := cl.MultiAppend(ids, []byte(fields[2]))
			if err != nil {
				fmt.Println("error:", err)
				continue
			}
			for l, p := range positions {
				fmt.Printf("log %d -> pos %d\n", l, p)
			}
		case "read":
			if len(fields) != 3 {
				fmt.Println("usage: read <log> <pos>")
				continue
			}
			l, _ := strconv.Atoi(fields[1])
			p, _ := strconv.ParseUint(fields[2], 10, 64)
			v, err := cl.Read(mrp.LogID(l), p)
			if err != nil {
				fmt.Println("error:", err)
				continue
			}
			fmt.Printf("%s\n", v)
		case "trim":
			if len(fields) != 3 {
				fmt.Println("usage: trim <log> <pos>")
				continue
			}
			l, _ := strconv.Atoi(fields[1])
			p, _ := strconv.ParseUint(fields[2], 10, 64)
			if err := cl.Trim(mrp.LogID(l), p); err != nil {
				fmt.Println("error:", err)
				continue
			}
			fmt.Println("ok")
		default:
			fmt.Println("unknown command:", fields[0])
		}
	}
}
