// Command mrp-bench regenerates the tables and figures of the paper's
// evaluation (Section 8) and prints them as text reports.
//
// Usage:
//
//	mrp-bench [-fig 3|4|5|6|7|8|rebalance|merge|autoshard|txn|latency|reads|ablations|all]
//	          [-seconds 1.5] [-scale 0.25] [-clients 40] [-records 5000] [-v]
//
// The txn, latency, and reads figures additionally write their rows as
// machine-readable JSON (BENCH_txn.json / BENCH_latency.json /
// BENCH_reads.json, uploaded as CI artifacts).
//
// Absolute numbers depend on the host; the shapes (who wins, scaling
// factors, crossovers) are the reproduction target — see EXPERIMENTS.md.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"mrp/internal/bench"
)

func main() {
	fig := flag.String("fig", "all", "which figure to regenerate: 3,4,5,6,7,8,rebalance,merge,autoshard,txn,latency,reads,ablations,all")
	seconds := flag.Float64("seconds", 1.5, "measured seconds per data point")
	scale := flag.Float64("scale", 0.25, "time scale for WAN latencies and disk service times")
	clients := flag.Int("clients", 40, "client threads for the YCSB comparison")
	records := flag.Int("records", 5000, "preloaded records for the YCSB comparison")
	verbose := flag.Bool("v", false, "print progress while measuring")
	flag.Parse()

	opts := bench.Options{
		PointSeconds: *seconds,
		Scale:        *scale,
		Clients:      *clients,
		Records:      *records,
	}
	if *verbose {
		opts.Out = os.Stderr
	}
	w := os.Stdout

	run := func(name string, fn func(io.Writer, bench.Options)) {
		if *fig != "all" && *fig != name {
			return
		}
		fn(w, opts)
		fmt.Fprintln(w)
	}
	run("3", func(w io.Writer, o bench.Options) { bench.RenderFig3(w, bench.Fig3(o)) })
	run("4", func(w io.Writer, o bench.Options) { bench.RenderFig4(w, bench.Fig4(o)) })
	run("5", func(w io.Writer, o bench.Options) { bench.RenderFig5(w, bench.Fig5(o)) })
	run("6", func(w io.Writer, o bench.Options) { bench.RenderFig6(w, bench.Fig6(o)) })
	run("7", func(w io.Writer, o bench.Options) { bench.RenderFig7(w, bench.Fig7(o)) })
	run("8", func(w io.Writer, o bench.Options) { bench.RenderFig8(w, bench.Fig8(o)) })
	run("rebalance", func(w io.Writer, o bench.Options) { bench.RenderRebalance(w, bench.Rebalance(o)) })
	run("merge", func(w io.Writer, o bench.Options) { bench.RenderMerge(w, bench.Merge(o)) })
	run("autoshard", func(w io.Writer, o bench.Options) { bench.RenderAutoshard(w, bench.Autoshard(o)) })
	run("txn", func(w io.Writer, o bench.Options) {
		rows := bench.Txn(o)
		bench.RenderTxn(w, rows)
		if err := bench.WriteTxnJSON("BENCH_txn.json", rows); err != nil {
			fmt.Fprintf(os.Stderr, "write BENCH_txn.json: %v\n", err)
			os.Exit(1)
		}
	})
	run("latency", func(w io.Writer, o bench.Options) {
		rows := bench.Latency(o)
		bench.RenderLatency(w, rows)
		if err := bench.WriteLatencyJSON("BENCH_latency.json", rows); err != nil {
			fmt.Fprintf(os.Stderr, "write BENCH_latency.json: %v\n", err)
			os.Exit(1)
		}
	})
	run("reads", func(w io.Writer, o bench.Options) {
		rows := bench.Reads(o)
		bench.RenderReads(w, rows)
		if err := bench.WriteReadsJSON("BENCH_reads.json", rows); err != nil {
			fmt.Fprintf(os.Stderr, "write BENCH_reads.json: %v\n", err)
			os.Exit(1)
		}
	})
	run("ablations", func(w io.Writer, o bench.Options) {
		rows := append(bench.AblationBatching(o), bench.AblationTransportBatch(o)...)
		rows = append(rows, bench.AblationSkip(o)...)
		bench.RenderAblations(w, rows)
	})
}
