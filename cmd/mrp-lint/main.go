// Command mrp-lint runs the determinism, concurrency, and allocation
// static-analysis suite (internal/lint) over the module: detmap,
// wallclock, lockedblock, orderedresult, hotalloc, lockorder, and
// snapcodec. CI runs it as
//
//	go run ./cmd/mrp-lint ./...
//
// and fails the build on any finding; the final stderr line
// ("mrp-lint: N finding(s) ...") is always printed, so CI turns it into
// a build annotation. See docs/DETERMINISM.md for the invariants it
// checks and the //mrp: annotation convention.
//
// Usage:
//
//	mrp-lint [-tests] [-fix] [-a name[,name]] [packages...]
//
// Packages default to ./... relative to the module root (found by walking
// up from the working directory to go.mod).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"mrp/internal/lint"
)

func main() {
	tests := flag.Bool("tests", false, "also analyze in-package _test.go files")
	fix := flag.Bool("fix", false, "apply suggested fixes (sorted-keys rewrites) in place")
	only := flag.String("a", "", "comma-separated analyzer names to run (default: all)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: mrp-lint [-tests] [-fix] [-a names] [packages...]\n\nanalyzers:\n")
		for _, a := range lint.Analyzers() {
			fmt.Fprintf(os.Stderr, "  %-14s %s\n", a.Name, a.Doc)
		}
		flag.PrintDefaults()
	}
	flag.Parse()

	root, err := moduleRoot()
	if err != nil {
		fatal(err)
	}
	analyzers, err := selectAnalyzers(*only)
	if err != nil {
		fatal(err)
	}
	m, err := lint.LoadModule(root, *tests, flag.Args()...)
	if err != nil {
		fatal(err)
	}
	diags := lint.Run(m, analyzers)
	if *fix {
		changed, err := lint.ApplyFixes(m, diags)
		if err != nil {
			fatal(err)
		}
		for _, name := range changed {
			fmt.Printf("fixed: %s\n", rel(root, name))
		}
		var remaining []lint.Diagnostic
		for _, d := range diags {
			if d.Fix == nil {
				remaining = append(remaining, d)
			}
		}
		diags = remaining
	}
	for _, d := range diags {
		fmt.Printf("%s:%d:%d: [%s] %s\n", rel(root, d.Pos.Filename), d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
		if d.Fix != nil && !*fix {
			fmt.Printf("\tsuggested fix: %s (run with -fix)\n", d.Fix.Message)
		}
	}
	// Always print the summary (CI scrapes it into a build annotation).
	fmt.Fprintf(os.Stderr, "mrp-lint: %d finding(s) from %d analyzer(s) over %d package(s)\n",
		len(diags), len(analyzers), len(m.Pkgs))
	if len(diags) > 0 {
		os.Exit(1)
	}
}

func selectAnalyzers(names string) ([]*lint.Analyzer, error) {
	all := lint.Analyzers()
	if names == "" {
		return all, nil
	}
	byName := make(map[string]*lint.Analyzer)
	for _, a := range all {
		byName[a.Name] = a
	}
	var out []*lint.Analyzer
	for _, name := range strings.Split(names, ",") {
		a, ok := byName[strings.TrimSpace(name)]
		if !ok {
			return nil, fmt.Errorf("mrp-lint: unknown analyzer %q", name)
		}
		out = append(out, a)
	}
	return out, nil
}

// moduleRoot walks up from the working directory to the nearest go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("mrp-lint: no go.mod found above %s", dir)
		}
		dir = parent
	}
}

func rel(root, name string) string {
	if r, err := filepath.Rel(root, name); err == nil && !strings.HasPrefix(r, "..") {
		return r
	}
	return name
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(2)
}
