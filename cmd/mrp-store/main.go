// Command mrp-store runs an interactive MRP-Store cluster: a partitioned,
// replicated key-value store ordered by Multi-Ring Paxos, served from an
// in-process simulated network, with a REPL for the Table 1 operations.
//
// Usage:
//
//	mrp-store [-partitions 3] [-replicas 3] [-global]
//
// REPL commands:
//
//	insert <key> <value>
//	read <key>
//	update <key> <value>
//	delete <key>
//	scan <from> <to> [limit]
//	quit
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"mrp"
)

func main() {
	partitions := flag.Int("partitions", 3, "number of partitions")
	replicas := flag.Int("replicas", 3, "replicas per partition")
	global := flag.Bool("global", true, "order cross-partition scans through a global ring")
	flag.Parse()

	net := mrp.NewSimNetwork()
	defer net.Close()
	st, err := mrp.DeployStore(mrp.StoreConfig{
		Net:          net,
		Partitions:   *partitions,
		Replicas:     *replicas,
		GlobalRing:   *global,
		StorageMode:  mrp.InMemory,
		SkipInterval: 5 * time.Millisecond,
		SkipRate:     1000,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "deploy:", err)
		os.Exit(1)
	}
	defer st.Stop()
	cl := st.NewClient()
	defer cl.Close()

	fmt.Printf("MRP-Store: %d partitions x %d replicas (global ring: %v)\n",
		*partitions, *replicas, *global)
	fmt.Println("commands: insert k v | read k | update k v | delete k | scan from to [limit] | quit")

	sc := bufio.NewScanner(os.Stdin)
	for {
		fmt.Print("> ")
		if !sc.Scan() {
			return
		}
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 {
			continue
		}
		start := time.Now()
		switch fields[0] {
		case "quit", "exit":
			return
		case "insert", "update":
			if len(fields) != 3 {
				fmt.Println("usage:", fields[0], "<key> <value>")
				continue
			}
			var err error
			if fields[0] == "insert" {
				err = cl.Insert(fields[1], []byte(fields[2]))
			} else {
				err = cl.Update(fields[1], []byte(fields[2]))
			}
			report(err, start, "ok")
		case "read":
			if len(fields) != 2 {
				fmt.Println("usage: read <key>")
				continue
			}
			v, err := cl.Read(fields[1])
			report(err, start, string(v))
		case "delete":
			if len(fields) != 2 {
				fmt.Println("usage: delete <key>")
				continue
			}
			report(cl.Delete(fields[1]), start, "ok")
		case "scan":
			if len(fields) < 3 {
				fmt.Println("usage: scan <from> <to> [limit]")
				continue
			}
			limit := 0
			if len(fields) > 3 {
				limit, _ = strconv.Atoi(fields[3])
			}
			entries, err := cl.Scan(fields[1], fields[2], limit)
			if err != nil {
				report(err, start, "")
				continue
			}
			for _, e := range entries {
				fmt.Printf("  %s = %s\n", e.Key, e.Value)
			}
			fmt.Printf("(%d entries, %v)\n", len(entries), time.Since(start).Round(time.Microsecond))
		default:
			fmt.Println("unknown command:", fields[0])
		}
	}
}

func report(err error, start time.Time, ok string) {
	if err != nil {
		fmt.Printf("error: %v (%v)\n", err, time.Since(start).Round(time.Microsecond))
		return
	}
	fmt.Printf("%s (%v)\n", ok, time.Since(start).Round(time.Microsecond))
}
