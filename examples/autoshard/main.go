// Autoshard: the elasticity loop closed — nobody calls SplitPartition or
// MergePartitions here. A load-driven controller watches every partition's
// op rate and size through the store's stats surface, splits the hot
// partition at the median key of its range once the heat holds, and merges
// the cold split-born partition back (retiring its ring) after the heat
// moves away. Hysteresis (time-in-violation, cool-down, split-protect)
// keeps it from flapping, and a leader lease in the registry ensures
// exactly one controller acts.
//
//	go run ./examples/autoshard
package main

import (
	"fmt"
	"sync/atomic"
	"time"

	"mrp"
)

func main() {
	net := mrp.NewSimNetwork(mrp.WithUniformLatency(50 * time.Microsecond))
	defer net.Close()

	// Two range partitions ("a-m" and "m-z"), three replicas each.
	st, err := mrp.DeployStore(mrp.StoreConfig{
		Net:          net,
		Partitions:   2,
		Replicas:     3,
		GlobalRing:   true,
		Partitioner:  mrp.NewRangePartitioner([]string{"m"}),
		SkipInterval: 2 * time.Millisecond,
		SkipRate:     2000,
	})
	must(err)
	defer st.Stop()
	reg := mrp.NewRegistry()
	must(st.PublishSchema(reg))

	// Stock the shelves: a few cold keys below "m", plenty of hot
	// candidates above it.
	cl := st.NewClient()
	defer cl.Close()
	for i := 0; i < 8; i++ {
		must(cl.Insert(fmt.Sprintf("basket%02d", i), []byte("cold")))
	}
	for i := 0; i < 40; i++ {
		must(cl.Insert(fmt.Sprintf("shelf%02d", i), []byte("warm")))
	}

	// The controller drives a rebalancer; we only watch.
	rb, err := mrp.NewRebalancer(mrp.RebalanceConfig{
		Store:         st,
		Registry:      reg,
		ChunkInterval: 100 * time.Microsecond, // migration budget: trickle the copy
	})
	must(err)
	defer rb.Close()
	ctrl, err := mrp.NewAutoSharder(mrp.AutoShardConfig{
		Store:          st,
		Rebalancer:     rb,
		Registry:       reg, // leader lease: exactly one controller acts
		Interval:       40 * time.Millisecond,
		SplitOpsPerSec: 40, // hot above 40 ops/s ...
		MergeOpsPerSec: 5,  // ... cold below 5 ops/s
		MinSplitKeys:   8,
		ViolationTicks: 2,
		Cooldown:       300 * time.Millisecond,
		SplitProtect:   600 * time.Millisecond,
		MaxPartitions:  3,
		OnAction:       func(a string) { fmt.Println("  controller:", a) },
	})
	must(err)
	ctrl.Start()
	defer ctrl.Stop()

	// Heat up the "shelf" range: a closed-loop updater far above the split
	// threshold. The controller should notice, pick the median key, and
	// split partition 1 — we never touch the topology ourselves.
	fmt.Println("hammering the shelf range:")
	var stop atomic.Bool
	done := make(chan struct{})
	go func() {
		defer close(done)
		hot := st.NewClient()
		defer hot.Close()
		for !stop.Load() {
			for i := 0; i < 40 && !stop.Load(); i++ {
				//mrp:nolint orderedresult — load generator; wrong-epoch blips during the split are expected
				_ = hot.Update(fmt.Sprintf("shelf%02d", i), []byte("hot"))
			}
		}
	}()
	waitFor("controller-initiated split", func() bool { return st.Partitions() == 3 })
	fmt.Printf("epoch %d: %d partitions — the hot range got its own ring\n",
		st.Epoch(), st.Partitions())

	// The heat moves away; the split-born partition goes cold. After the
	// hysteresis clears (cool-down, split-protect), the controller merges
	// it back and retires its ring.
	fmt.Println("load gone — waiting for the merge:")
	stop.Store(true)
	<-done
	waitFor("controller-initiated merge", func() bool { return st.Partitions() == 2 })
	fmt.Printf("%d partitions again; ring retired=%v\n",
		st.Partitions(), st.PartitionRing(2) == 0)

	// Nothing was lost along the round trip, and per-partition stats show
	// where the data lives.
	v, err := cl.Read("shelf17")
	must(err)
	fmt.Printf("read-back after the round trip: shelf17 = %q\n", v)
	if string(v) != "hot" {
		panic("round trip lost a write")
	}
	for p := 0; p < st.Partitions(); p++ {
		s, ok := st.PartitionStats(p)
		if !ok {
			panic(fmt.Sprintf("no stats for partition %d", p))
		}
		fmt.Printf("partition %d: %d keys, %d bytes, %d ops served\n", p, s.Keys, s.Bytes, s.Ops)
	}
	if ctrl.Splits() != 1 || ctrl.Merges() != 1 {
		panic(fmt.Sprintf("flapping: %d splits, %d merges", ctrl.Splits(), ctrl.Merges()))
	}
}

func waitFor(what string, cond func() bool) {
	deadline := time.Now().Add(60 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			panic("timed out waiting for " + what)
		}
		time.Sleep(25 * time.Millisecond)
	}
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}
