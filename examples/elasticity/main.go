// Elasticity: the full bidirectional round trip — split a live MRP-Store
// partition onto a freshly subscribed ring, then merge it back and retire
// the ring — while a client keeps reading and writing throughout. The
// shrink path is the inverse of the paper's growth story: processes
// unsubscribe from rings they no longer need, and the partitioning schema
// in the coordination service drops the partition without renumbering the
// survivors.
//
//	go run ./examples/elasticity
package main

import (
	"fmt"
	"time"

	"mrp"
)

func main() {
	net := mrp.NewSimNetwork(mrp.WithUniformLatency(50 * time.Microsecond))
	defer net.Close()

	// Two range partitions ("a-m" and "m-z"), three replicas each, plus a
	// global ring ordering cross-partition commands.
	st, err := mrp.DeployStore(mrp.StoreConfig{
		Net:          net,
		Partitions:   2,
		Replicas:     3,
		GlobalRing:   true,
		Partitioner:  mrp.NewRangePartitioner([]string{"m"}),
		SkipInterval: 2 * time.Millisecond,
		SkipRate:     500,
	})
	must(err)
	defer st.Stop()

	reg := mrp.NewRegistry()
	must(st.PublishSchema(reg))
	cl, err := st.NewRegistryClient(reg)
	must(err)
	defer cl.Close()
	for _, k := range []string{"apple", "melon", "peach", "tomato"} {
		must(cl.Insert(k, []byte("crate of "+k)))
	}

	// Grow: split the upper partition at "s" onto a brand-new ring.
	rb, err := mrp.NewRebalancer(mrp.RebalanceConfig{
		Store:    st,
		Registry: reg,
		OnStep:   func(step string) { fmt.Println("  step:", step) },
	})
	must(err)
	defer rb.Close()
	fmt.Println("split [s, z) out of partition 1:")
	newPart, err := rb.SplitPartition(1, "s")
	must(err)
	splitRing := st.PartitionRing(newPart)
	fmt.Printf("epoch %d: %d partitions, %q served by partition %d on ring %d\n",
		cl.Epoch(), st.Partitions(), "tomato", newPart, splitRing)
	must(cl.Update("tomato", []byte("fresh tomatoes")))

	// Shrink: merge the split-born partition back into its neighbor. Its
	// whole range is frozen, streamed onto the survivor's ring, the schema
	// drops the partition index (CAS), and the drained ring is retired —
	// every donor replica unsubscribes and stops, and the ring ID returns
	// to the allocator.
	fmt.Printf("merge partition %d back into partition 1:\n", newPart)
	must(rb.MergePartitions(1, newPart))
	schema, err := mrp.LoadStoreSchema(reg)
	must(err)
	part, err := schema.PartitionerFor()
	must(err)
	fmt.Printf("epoch %d: %d partitions, %q served by partition %d again\n",
		schema.Epoch, st.Partitions(), "tomato", part.PartitionOf("tomato"))

	// The write survived the round trip and the donor's resources are gone.
	v, err := cl.Read("tomato")
	must(err)
	fmt.Printf("read-back after round trip: %s\n", v)
	if string(v) != "fresh tomatoes" {
		panic("round trip lost a write")
	}
	if part.PartitionOf("tomato") != 1 || st.Partitions() != 2 {
		panic("merge did not restore the original topology")
	}
	if st.PartitionRing(newPart) != 0 {
		panic("retired ring still in the topology")
	}

	// The retired ring ID is recycled by the next split.
	again, err := rb.SplitPartition(1, "s")
	must(err)
	fmt.Printf("next split reuses partition %d on recycled ring %d\n", again, st.PartitionRing(again))
	if st.PartitionRing(again) != splitRing {
		panic("retired ring ID was not recycled")
	}
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}
