// Globalkv: MRP-Store deployed across the paper's four EC2 regions on the
// simulated WAN — one partition per region, a global ring ordering
// cross-partition scans, clients observing local-partition latency.
//
//	go run ./examples/globalkv
package main

import (
	"fmt"
	"time"

	"mrp"
)

var regions = []string{"eu-west-1", "us-west-1", "us-east-1", "us-west-2"}

func main() {
	// WAN latencies from the EC2 matrix, compressed 4x to keep the demo
	// snappy; intra-region hops are 1 ms.
	net := mrp.NewSimNetwork(mrp.WithLatency(mrp.WANLatency(time.Millisecond, 0.25)))
	defer net.Close()

	// Region-aligned range partitioning: keys "p0-..." live in eu-west-1,
	// "p1-..." in us-west-1, and so on.
	st, err := mrp.DeployStore(mrp.StoreConfig{
		Net:         net,
		Partitions:  len(regions),
		Replicas:    3,
		GlobalRing:  true,
		Partitioner: mrp.NewRangePartitioner([]string{"p1", "p2", "p3"}),
		StorageMode: mrp.InMemory,
		AddrFor: func(p, r int) mrp.Addr {
			return mrp.Addr(fmt.Sprintf("%s/store-p%d-r%d", regions[p], p, r))
		},
		// WAN protocol parameters (paper Section 8.2, scaled like the
		// latencies): Δ = 20 ms, λ = 2000 inst/s.
		SkipInterval: 5 * time.Millisecond,
		SkipRate:     2000,
		RetryTimeout: 2 * time.Second,
	})
	if err != nil {
		panic(err)
	}
	defer st.Stop()

	// One client per region, each writing to its local partition.
	for p, region := range regions {
		ep := net.Endpoint(mrp.Addr(region + "/client"))
		cl := st.NewClientAt(ep, uint64(9_000_000+p))
		start := time.Now()
		for k := 0; k < 3; k++ {
			key := fmt.Sprintf("p%d-key%d", p, k)
			if err := cl.Insert(key, []byte(fmt.Sprintf("from-%s", region))); err != nil {
				panic(err)
			}
		}
		fmt.Printf("%-12s 3 local inserts in %v\n", region, time.Since(start).Round(time.Millisecond))
		cl.Close()
	}

	// A cross-partition scan from us-west-2: one atomic multicast through
	// the global ring, gathering one reply per partition.
	ep := net.Endpoint(mrp.Addr("us-west-2/scanner"))
	cl := st.NewClientAt(ep, 9_999_999)
	defer cl.Close()
	start := time.Now()
	entries, err := cl.Scan("p0", "p9", 0)
	if err != nil {
		panic(err)
	}
	fmt.Printf("global scan: %d entries across %d regions in %v\n",
		len(entries), len(regions), time.Since(start).Round(time.Millisecond))
	for _, e := range entries {
		fmt.Printf("  %s = %s\n", e.Key, e.Value)
	}
}
