// Quickstart: atomic multicast with two groups and a deterministic-merge
// learner — the smallest end-to-end use of the public API.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"time"

	"mrp"
)

func main() {
	// A simulated LAN; swap in mrp.ListenTCP endpoints for real sockets.
	net := mrp.NewSimNetwork(mrp.WithUniformLatency(50 * time.Microsecond))
	defer net.Close()

	// Three nodes, all proposer+acceptor+learner in both groups.
	const nodes = 3
	peers := make([]mrp.Peer, nodes)
	for i := range peers {
		peers[i] = mrp.Peer{
			ID:    mrp.NodeID(i + 1),
			Addr:  mrp.Addr(fmt.Sprintf("node-%d", i)),
			Roles: mrp.RoleProposer | mrp.RoleAcceptor | mrp.RoleLearner,
		}
	}
	var cluster []*mrp.Node
	for i := 0; i < nodes; i++ {
		node := mrp.NewNode(peers[i].ID, net.Endpoint(peers[i].Addr))
		for _, group := range []mrp.GroupID{1, 2} {
			if _, err := node.Join(mrp.RingConfig{
				Ring:        group,
				Peers:       peers,
				Coordinator: peers[0].ID,
				Log:         mrp.NewMemLog(),
				// Rate leveling keeps an idle group from stalling the merge.
				SkipInterval: 5 * time.Millisecond,
				SkipRate:     1000,
			}); err != nil {
				panic(err)
			}
		}
		node.Start()
		defer node.Stop()
		cluster = append(cluster, node)
	}

	// A learner at node 2 subscribed to both groups: it delivers the
	// deterministic merge, identical at every subscriber.
	p1, _ := cluster[2].Process(1)
	p2, _ := cluster[2].Process(2)
	learner := mrp.NewLearner(1, p1, p2)
	learner.Start()
	defer learner.Stop()

	// Multicast from different nodes to different groups.
	for k := 0; k < 3; k++ {
		must(cluster[k%nodes].Multicast(1, []byte(fmt.Sprintf("group1-msg%d", k))))
		must(cluster[(k+1)%nodes].Multicast(2, []byte(fmt.Sprintf("group2-msg%d", k))))
	}

	fmt.Println("deterministic merge at node 2:")
	seen := 0
	for seen < 6 {
		d := <-learner.Deliveries()
		if d.Skip {
			continue // rate-leveling skip: advances the merge, carries no data
		}
		fmt.Printf("  group %d, instance %d: %s\n", d.Ring, d.Instance, d.Entry.Data)
		seen++
	}
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}
