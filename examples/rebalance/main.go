// Rebalance: split a live MRP-Store partition onto a freshly subscribed
// ring with zero downtime — the elastic growth path of the paper's
// scalability story (processes subscribe to additional rings, services
// repartition across them).
//
//	go run ./examples/rebalance
package main

import (
	"fmt"
	"time"

	"mrp"
)

func main() {
	net := mrp.NewSimNetwork(mrp.WithUniformLatency(50 * time.Microsecond))
	defer net.Close()

	// Two range partitions ("a-m" and "m-z"), three replicas each, plus a
	// global ring ordering cross-partition commands.
	st, err := mrp.DeployStore(mrp.StoreConfig{
		Net:          net,
		Partitions:   2,
		Replicas:     3,
		GlobalRing:   true,
		Partitioner:  mrp.NewRangePartitioner([]string{"m"}),
		SkipInterval: 2 * time.Millisecond,
		SkipRate:     500,
	})
	must(err)
	defer st.Stop()

	// The partitioning schema lives in the coordination service, versioned
	// by an epoch; clients discover and watch it there.
	reg := mrp.NewRegistry()
	must(st.PublishSchema(reg))

	cl, err := st.NewRegistryClient(reg)
	must(err)
	defer cl.Close()
	for _, k := range []string{"apple", "melon", "peach", "tomato"} {
		must(cl.Insert(k, []byte("crate of "+k)))
	}
	fmt.Printf("epoch %d: %d partitions\n", cl.Epoch(), st.Partitions())

	// Split the upper partition at "s" while the store keeps serving: the
	// new partition's replicas subscribe to a brand-new ring at runtime,
	// the moved range is streamed over, and ownership flips atomically.
	rb, err := mrp.NewRebalancer(mrp.RebalanceConfig{
		Store:    st,
		Registry: reg,
		OnStep:   func(step string) { fmt.Println("  split step:", step) },
	})
	must(err)
	defer rb.Close()
	newPart, err := rb.SplitPartition(1, "s")
	must(err)

	// Stale clients are redirected with a typed wrong-epoch reply, refresh
	// the published schema, and retry — reads and writes keep succeeding.
	v, err := cl.Read("tomato")
	must(err)
	schema, err := mrp.LoadStoreSchema(reg)
	must(err)
	part, err := schema.PartitionerFor()
	must(err)
	fmt.Printf("epoch %d: %d partitions; %q now served by partition %d (%s)\n",
		schema.Epoch, st.Partitions(), "tomato", part.PartitionOf("tomato"), v)
	if part.PartitionOf("tomato") != newPart {
		panic("moved key not owned by the new partition")
	}
	must(cl.Update("tomato", []byte("fresh tomatoes")))
	v, err = cl.Read("tomato")
	must(err)
	fmt.Printf("post-split write readback: %s\n", v)
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}
