// Recovery: the Section 8.5 scenario as a demo, extended to an elastic
// deployment — first a replica of a seed partition is terminated, the
// survivors keep serving and checkpoint, the acceptors trim their logs,
// and the replica recovers from a remote checkpoint plus acceptor replay.
// Then the store is split live onto a new ring, a replica of the
// *split-created* partition is terminated and recovered the same way:
// recovery derives ring membership from the schema, so a deployment that
// grew at runtime keeps its fault tolerance.
//
//	go run ./examples/recovery
package main

import (
	"bytes"
	"fmt"
	"time"

	"mrp"
)

func main() {
	net := mrp.NewSimNetwork()
	defer net.Close()
	st, err := mrp.DeployStore(mrp.StoreConfig{
		Net:          net,
		Partitions:   1,
		Replicas:     3,
		Partitioner:  mrp.NewRangePartitioner(nil),
		StorageMode:  mrp.InMemory,
		TrimInterval: 100 * time.Millisecond,
		RetryTimeout: 100 * time.Millisecond,
	})
	if err != nil {
		panic(err)
	}
	defer st.Stop()
	cl := st.NewClient()
	defer cl.Close()

	put := func(lo, hi int) {
		for i := lo; i < hi; i++ {
			if err := cl.Insert(fmt.Sprintf("key-%03d", i), []byte("v")); err != nil {
				panic(err)
			}
		}
	}
	converge := func(p, ra, rb int, what string) {
		deadline := time.Now().Add(15 * time.Second)
		for {
			sa := st.ReplicaAt(p, ra).Replica.StateSnapshot()
			sb := st.ReplicaAt(p, rb).Replica.StateSnapshot()
			if bytes.Equal(sa, sb) {
				return
			}
			if time.Now().After(deadline) {
				panic(what + " did not converge")
			}
			time.Sleep(10 * time.Millisecond)
		}
	}

	// --- Part 1: crash and recover a seed-partition replica. ---
	put(0, 20)
	fmt.Println("20 inserts committed on 3 replicas")

	st.CrashReplica(0, 2)
	fmt.Println("replica (0,2) terminated; ring healed around it")

	put(20, 50)
	fmt.Println("30 more inserts committed on the surviving majority")

	// Survivors checkpoint; once a quorum has, the trim coordinator lets
	// the acceptors drop the covered prefix.
	st.ReplicaAt(0, 0).Replica.Checkpoint()
	st.ReplicaAt(0, 1).Replica.Checkpoint()
	deadline := time.Now().Add(5 * time.Second)
	for st.TrimCoordinators()[0].Trims() == 0 {
		if time.Now().After(deadline) {
			panic("no trim")
		}
		time.Sleep(10 * time.Millisecond)
	}
	fmt.Printf("acceptor logs trimmed up to instance %d\n", st.TrimCoordinators()[0].LastTrim())

	if err := st.RecoverReplica(0, 2); err != nil {
		panic(err)
	}
	fmt.Println("replica (0,2) recovering: remote checkpoint + acceptor replay")

	put(50, 60)
	converge(0, 0, 2, "recovered seed replica")
	fmt.Printf("replica (0,2) converged: %d keys, state identical to survivors\n",
		st.ReplicaAt(0, 2).SM.Data().Len())

	// --- Part 2: split live, then crash and recover a replica of the
	// partition the split created. ---
	rb, err := mrp.NewRebalancer(mrp.RebalanceConfig{Store: st})
	if err != nil {
		panic(err)
	}
	defer rb.Close()
	newPart, err := rb.SplitPartition(0, "key-030")
	if err != nil {
		panic(err)
	}
	fmt.Printf("live split: [key-030, ...) moved to partition %d on a fresh ring (epoch %d)\n",
		newPart, st.Epoch())

	st.CrashReplica(newPart, 2)
	fmt.Printf("replica (%d,2) of the split partition terminated\n", newPart)
	put(60, 65) // keys ≥ key-030: served by the new partition's majority
	fmt.Println("5 inserts to the moved range committed on its surviving majority")

	if err := st.RecoverReplica(newPart, 2); err != nil {
		panic(err)
	}
	fmt.Printf("replica (%d,2) recovering: schema-derived ring membership, runtime resubscribe, replay\n", newPart)

	// Fresh traffic on the ring carries the recovered replica's gap
	// detection past the crash point (a deployment with rate leveling gets
	// this for free from skip instances).
	put(65, 70)
	converge(newPart, 0, 2, "recovered split-partition replica")
	if v, err := cl.Read("key-065"); err != nil || len(v) == 0 {
		panic(fmt.Sprintf("post-recovery read: %q, %v", v, err))
	}
	fmt.Printf("replica (%d,2) converged: %d keys, split partition fully fault tolerant\n",
		newPart, st.ReplicaAt(newPart, 2).SM.Data().Len())
}
