// Recovery: the Section 8.5 scenario as a demo — a replica is terminated,
// the survivors keep serving and checkpoint, the acceptors trim their
// logs, and the replica recovers from a remote checkpoint plus acceptor
// replay, converging to the survivors' state.
//
//	go run ./examples/recovery
package main

import (
	"bytes"
	"fmt"
	"time"

	"mrp"
)

func main() {
	net := mrp.NewSimNetwork()
	defer net.Close()
	st, err := mrp.DeployStore(mrp.StoreConfig{
		Net:          net,
		Partitions:   1,
		Replicas:     3,
		StorageMode:  mrp.InMemory,
		TrimInterval: 100 * time.Millisecond,
		RetryTimeout: 100 * time.Millisecond,
	})
	if err != nil {
		panic(err)
	}
	defer st.Stop()
	cl := st.NewClient()
	defer cl.Close()

	put := func(lo, hi int) {
		for i := lo; i < hi; i++ {
			if err := cl.Insert(fmt.Sprintf("key-%03d", i), []byte("v")); err != nil {
				panic(err)
			}
		}
	}

	put(0, 20)
	fmt.Println("20 inserts committed on 3 replicas")

	st.CrashReplica(0, 2)
	fmt.Println("replica 2 terminated; ring healed around it")

	put(20, 50)
	fmt.Println("30 more inserts committed on the surviving majority")

	// Survivors checkpoint; once a quorum has, the trim coordinator lets
	// the acceptors drop the covered prefix.
	st.Replicas[0][0].Replica.Checkpoint()
	st.Replicas[0][1].Replica.Checkpoint()
	deadline := time.Now().Add(5 * time.Second)
	for st.TrimCoordinators()[0].Trims() == 0 {
		if time.Now().After(deadline) {
			panic("no trim")
		}
		time.Sleep(10 * time.Millisecond)
	}
	fmt.Printf("acceptor logs trimmed up to instance %d\n", st.TrimCoordinators()[0].LastTrim())

	if err := st.RecoverReplica(0, 2); err != nil {
		panic(err)
	}
	fmt.Println("replica 2 recovering: remote checkpoint + acceptor replay")

	put(50, 60)
	deadline = time.Now().Add(15 * time.Second)
	for {
		s0 := st.Replicas[0][0].SM.Snapshot()
		s2 := st.Replicas[0][2].SM.Snapshot()
		if bytes.Equal(s0, s2) {
			break
		}
		if time.Now().After(deadline) {
			panic("recovered replica did not converge")
		}
		time.Sleep(10 * time.Millisecond)
	}
	fmt.Printf("replica 2 converged: %d keys, state identical to survivors\n",
		st.Replicas[0][2].SM.Data().Len())
}
