// Sharedlog: dLog with concurrent writers and atomic multi-append — the
// Table 2 operations, including the cross-log atomicity that a
// sequencer-based log (CORFU-style) cannot give without global ordering.
//
//	go run ./examples/sharedlog
package main

import (
	"fmt"
	"sync"
	"time"

	"mrp"
)

func main() {
	net := mrp.NewSimNetwork()
	defer net.Close()
	lg, err := mrp.DeployLog(mrp.LogConfig{
		Net:          net,
		Logs:         2,
		Servers:      3,
		StorageMode:  mrp.InMemory,
		SkipInterval: 5 * time.Millisecond,
		SkipRate:     1000,
	})
	if err != nil {
		panic(err)
	}
	defer lg.Stop()

	// Three concurrent writers appending to log 0: every append gets a
	// unique position, with no centralized sequencer.
	var wg sync.WaitGroup
	var mu sync.Mutex
	positions := map[uint64]string{}
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			cl := lg.NewClient()
			defer cl.Close()
			for k := 0; k < 4; k++ {
				entry := fmt.Sprintf("writer%d-entry%d", w, k)
				pos, err := cl.Append(0, []byte(entry))
				if err != nil {
					panic(err)
				}
				mu.Lock()
				positions[pos] = entry
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()
	fmt.Printf("12 concurrent appends -> %d distinct positions\n", len(positions))

	cl := lg.NewClient()
	defer cl.Close()

	// Atomic multi-append: one command, a position in every target log.
	pos, err := cl.MultiAppend([]mrp.LogID{0, 1}, []byte("checkpoint-marker"))
	if err != nil {
		panic(err)
	}
	fmt.Printf("multi-append landed at log0:%d log1:%d\n", pos[0], pos[1])

	// Read the marker back from both logs.
	for _, l := range []mrp.LogID{0, 1} {
		v, err := cl.Read(l, pos[l])
		if err != nil {
			panic(err)
		}
		fmt.Printf("log %d @ %d: %s\n", l, pos[l], v)
	}

	// Trim log 0 below the marker; old reads now fail, the marker remains.
	if err := cl.Trim(0, pos[0]-1); err != nil {
		panic(err)
	}
	if _, err := cl.Read(0, 0); err == mrp.ErrTrimmed {
		fmt.Println("position 0 trimmed as expected")
	}
	if v, err := cl.Read(0, pos[0]); err == nil {
		fmt.Printf("marker survives trim: %s\n", v)
	}
}
