// Transfers: the paper's Section 3 motivating scenario. Objects x and y
// live in different partitions; transactions T1 (reads x, updates y) and
// T2 (reads y, updates x) run concurrently. With two-phase commit both
// abort; with atomic multicast both are ordered and both commit.
//
// Two account partitions each run a replicated balance machine subscribed
// to its own group plus a shared "transfers" group. Cross-partition
// transfers multicast to the shared group are delivered in the same
// relative order at both partitions, so the total balance is conserved and
// every replica of both partitions agrees on the outcome.
//
//	go run ./examples/transfers
package main

import (
	"encoding/json"
	"fmt"
	"sync"
	"time"

	"mrp"
)

// Groups: 1 = partition X, 2 = partition Y, 3 = shared transfer group.
const (
	groupX        mrp.GroupID = 1
	groupY        mrp.GroupID = 2
	groupTransfer mrp.GroupID = 3
)

// account is a replicated balance machine for one partition. Transfers
// delivered through the shared group touch both partitions: each side
// applies only its half, in the globally agreed order.
type account struct {
	mu      sync.Mutex
	name    string
	balance int64
	applied int
}

type transferOp struct {
	From   string `json:"from"`
	To     string `json:"to"`
	Amount int64  `json:"amount"`
}

func (a *account) apply(d mrp.Delivery) {
	if d.Skip {
		return
	}
	var op transferOp
	if err := json.Unmarshal(d.Entry.Data, &op); err != nil {
		return
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if op.From == a.name {
		a.balance -= op.Amount
	}
	if op.To == a.name {
		a.balance += op.Amount
	}
	a.applied++
}

func main() {
	net := mrp.NewSimNetwork()
	defer net.Close()

	peers := make([]mrp.Peer, 3)
	for i := range peers {
		peers[i] = mrp.Peer{
			ID:    mrp.NodeID(i + 1),
			Addr:  mrp.Addr(fmt.Sprintf("bank-%d", i)),
			Roles: mrp.RoleProposer | mrp.RoleAcceptor | mrp.RoleLearner,
		}
	}
	var nodes []*mrp.Node
	for i := range peers {
		node := mrp.NewNode(peers[i].ID, net.Endpoint(peers[i].Addr))
		for _, g := range []mrp.GroupID{groupX, groupY, groupTransfer} {
			if _, err := node.Join(mrp.RingConfig{
				Ring: g, Peers: peers, Coordinator: 1, Log: mrp.NewMemLog(),
				SkipInterval: 5 * time.Millisecond, SkipRate: 2000,
			}); err != nil {
				panic(err)
			}
		}
		node.Start()
		defer node.Stop()
		nodes = append(nodes, node)
	}

	// Partition X's replica (node 0) subscribes to {X, transfers};
	// partition Y's replica (node 1) subscribes to {Y, transfers}.
	mkLearner := func(n *mrp.Node, own mrp.GroupID) *mrp.Learner {
		p1, _ := n.Process(own)
		p2, _ := n.Process(groupTransfer)
		l := mrp.NewLearner(1, p1, p2)
		l.Start()
		return l
	}
	lx := mkLearner(nodes[0], groupX)
	defer lx.Stop()
	ly := mkLearner(nodes[1], groupY)
	defer ly.Stop()

	x := &account{name: "x", balance: 1000}
	y := &account{name: "y", balance: 1000}
	var wg sync.WaitGroup
	run := func(a *account, l *mrp.Learner, want int) {
		defer wg.Done()
		for a.applied < want {
			a.apply(<-l.Deliveries())
		}
	}

	// The T1/T2 scenario, concurrently, many times: opposite-direction
	// transfers multicast to the shared group by different proposers.
	const rounds = 50
	wg.Add(2)
	go run(x, lx, rounds*2)
	go run(y, ly, rounds*2)
	for k := 0; k < rounds; k++ {
		t1, _ := json.Marshal(transferOp{From: "x", To: "y", Amount: 7})
		t2, _ := json.Marshal(transferOp{From: "y", To: "x", Amount: 3})
		must(nodes[0].Multicast(groupTransfer, t1)) // T1 from one client
		must(nodes[1].Multicast(groupTransfer, t2)) // T2 from another
	}
	wg.Wait()

	fmt.Printf("after %d concurrent T1/T2 pairs:\n", rounds)
	fmt.Printf("  x = %d\n", x.balance)
	fmt.Printf("  y = %d\n", y.balance)
	fmt.Printf("  total = %d (conserved: %v)\n", x.balance+y.balance, x.balance+y.balance == 2000)
	fmt.Printf("  every transfer committed — none aborted, unlike 2PC under this contention\n")
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}
