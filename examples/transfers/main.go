// Transfers: the paper's Section 3 motivating scenario, on the store's
// transaction API. Accounts x and y live in different partitions;
// transactions T1 (moves 7 from x to y) and T2 (moves 3 from y to x) run
// concurrently from different clients. With two-phase commit both abort
// under this contention; with atomic multicast each transfer is ONE
// command multicast to the rings covering its participants, delivered in
// the same relative order at every replica of both partitions — so both
// always commit, the total balance is conserved, and the balances a
// transfer returns are read at its own delivery position.
//
//	go run ./examples/transfers
package main

import (
	"fmt"
	"sync"
	"time"

	"mrp"
)

func main() {
	net := mrp.NewSimNetwork(mrp.WithUniformLatency(50 * time.Microsecond))
	defer net.Close()

	// Two range partitions — "x" below the boundary "y", "y" above it —
	// three replicas each, plus a global ring ordering cross-partition
	// transactions.
	st, err := mrp.DeployStore(mrp.StoreConfig{
		Net:          net,
		Partitions:   2,
		Replicas:     3,
		GlobalRing:   true,
		Partitioner:  mrp.NewRangePartitioner([]string{"y"}),
		SkipInterval: 2 * time.Millisecond,
		SkipRate:     2000,
	})
	must(err)
	defer st.Stop()
	st.Preload([]mrp.StoreEntry{
		{Key: "x", Value: mrp.EncodeBalance(1000)},
		{Key: "y", Value: mrp.EncodeBalance(1000)},
	})

	// The T1/T2 scenario, concurrently, many times: opposite-direction
	// cross-partition transfers from two independent clients.
	const rounds = 50
	var wg sync.WaitGroup
	transfer := func(from, to string, amount int64) {
		defer wg.Done()
		cl := st.NewClient()
		defer cl.Close()
		for k := 0; k < rounds; k++ {
			if _, _, err := cl.Transfer(from, to, amount); err != nil {
				panic(err)
			}
		}
	}
	wg.Add(2)
	go transfer("x", "y", 7) // T1
	go transfer("y", "x", 3) // T2
	wg.Wait()

	cl := st.NewClient()
	defer cl.Close()
	bal, err := cl.MultiGet([]string{"x", "y"}) // one consistent cut
	must(err)
	x := mrp.DecodeBalance(bal["x"])
	y := mrp.DecodeBalance(bal["y"])
	fmt.Printf("after %d concurrent T1/T2 pairs:\n", rounds)
	fmt.Printf("  x = %d\n", x)
	fmt.Printf("  y = %d\n", y)
	fmt.Printf("  total = %d (conserved: %v)\n", x+y, x+y == 2000)
	fmt.Printf("  every transfer committed — none aborted, unlike 2PC under this contention\n")

	// And the conditional flavor: an atomic swap across both partitions
	// that applies only if every expectation holds — same machinery, one
	// multicast on the shared ring, votes exchanged between partitions.
	ok, err := cl.CompareAndSwapAcross([]mrp.StoreCASOp{
		{Key: "x", Expect: mrp.EncodeBalance(x), New: mrp.EncodeBalance(0)},
		{Key: "y", Expect: mrp.EncodeBalance(y), New: mrp.EncodeBalance(x + y)},
	})
	must(err)
	fmt.Printf("  cross-partition CAS consolidating both balances: applied=%v\n", ok)
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}
