module mrp

go 1.24
