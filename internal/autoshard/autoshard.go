// Package autoshard closes the loop the ROADMAP calls the auto-sharding
// policy: both directions of the reconfiguration mechanism exist
// (internal/rebalance splits, merges, and retires rings live), and this
// package decides when to use them. A controller samples every committed
// partition's load and size through the store's stats surface
// (store.Deployment.PartitionStats over the SM-side accounting), feeds the
// samples to a hysteresis policy, and drives the rebalance coordinator:
// a partition hot or oversized for long enough is split at the median key
// of its range (sampled through the ordinary scan path); a partition cold,
// small, and mergeable for long enough is merged into an adjacent survivor
// and its ring retired.
//
// # Hysteresis and the migration budget
//
// Reconfigurations are expensive exactly when the signal is noisiest, so
// the policy acts late and rests long: a threshold must be violated for
// ViolationTicks consecutive samples, every action starts a Cooldown
// during which nothing else is considered, and the two sides of a split
// are merge-protected for SplitProtect so a load spike's split cannot be
// un-split the moment the spike ends. The migration budget caps concurrent
// plans at one — actions run synchronously on the control loop — and
// rate-limits chunk copies (rebalance.Config.ChunkInterval) so a migration
// trickles between client commands instead of saturating the rings.
//
// # The controller lease
//
// With a registry configured, controllers enroll in a leader election
// (registry.Election over session ephemerals) and only the leader samples
// and acts — exactly one controller/coordinator is active per deployment.
// A successor taking over first runs the coordinator's ResolvePending, so
// a leader that died mid-plan leaves no frozen range behind: the plan is
// aborted (or rolled forward past its publish point) before the new
// leader's policy resumes. This closes the coordination half of the
// ROADMAP's "coordinator lease" item.
package autoshard

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"mrp/internal/rebalance"
	"mrp/internal/registry"
	"mrp/internal/store"
)

// electionPrefix roots the controller leader election in the coordination
// service.
const electionPrefix = "/mrp-store/autoshard/leader"

// Reconfigurer is the slice of the rebalance coordinator the controller
// drives. rebalance.Coordinator implements it; tests substitute fakes.
type Reconfigurer interface {
	SplitPartition(src int, splitKey string) (int, error)
	MergePartitions(survivor, donor int) error
	ResolvePending() (*rebalance.Plan, error)
}

// Config parametrizes a controller.
type Config struct {
	// Store is the deployment being watched (required).
	Store *store.Deployment
	// Rebalancer executes the policy's decisions (required); usually a
	// rebalance.Coordinator for the same deployment.
	Rebalancer Reconfigurer
	// Registry, when set, enables the controller lease: only the elected
	// leader acts, and a successor runs ResolvePending on takeover.
	Registry *registry.Registry
	// Session owns the controller's election candidacy. Optional: without
	// it the controller opens its own session (closed on Stop). Tests pass
	// one to kill a leader by expiring it.
	Session *registry.Session
	// Name is the controller's election candidate name (default
	// "autoshard-<n>", unique per process).
	Name string

	// Interval is the sampling tick (default 100ms).
	Interval time.Duration
	// SplitOpsPerSec marks a partition hot when its data-op rate exceeds
	// it (0 disables load-based splits).
	SplitOpsPerSec float64
	// SplitMaxKeys marks a partition oversized when its key count exceeds
	// it (0 disables size-based splits).
	SplitMaxKeys uint64
	// MinSplitKeys is the smallest partition worth splitting (default 16):
	// below it a median split moves nothing worth moving.
	MinSplitKeys uint64
	// MergeOpsPerSec marks a partition cold when its data-op rate stays
	// under it (0 disables merges).
	MergeOpsPerSec float64
	// MergeMaxKeys additionally requires a merge candidate to be small
	// (0 = any size).
	MergeMaxKeys uint64
	// ViolationTicks is how many consecutive samples must violate a
	// threshold before the policy acts (default 3).
	ViolationTicks int
	// Cooldown silences the policy after an action (default 10*Interval).
	Cooldown time.Duration
	// SplitProtect keeps both sides of a split out of merge candidacy
	// (default 2*Cooldown).
	SplitProtect time.Duration
	// MaxPartitions caps growth: no split beyond this many live
	// partitions (0 = unlimited). The budget's other half — one plan at a
	// time, rate-limited chunk copies — is structural (synchronous
	// actions) and the coordinator's ChunkInterval.
	MaxPartitions int
	// SampleChunk is the scan page size used to find the median key of a
	// hot partition (default 256).
	SampleChunk int
	// OnAction, when set, observes controller decisions and transitions
	// ("split 1 @user000875", "merge 2->1", "lead", ...) — benchmarks mark
	// them on a timeline.
	OnAction func(action string)
}

func (c *Config) withDefaults() error {
	if c.Store == nil {
		return errors.New("autoshard: nil store deployment")
	}
	if c.Rebalancer == nil {
		return errors.New("autoshard: nil rebalancer")
	}
	if c.Interval <= 0 {
		c.Interval = 100 * time.Millisecond
	}
	if c.MinSplitKeys == 0 {
		c.MinSplitKeys = 16
	}
	if c.ViolationTicks <= 0 {
		c.ViolationTicks = 3
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 10 * c.Interval
	}
	if c.SplitProtect <= 0 {
		c.SplitProtect = 2 * c.Cooldown
	}
	if c.SampleChunk <= 0 {
		c.SampleChunk = 256
	}
	if c.Name == "" {
		c.Name = fmt.Sprintf("autoshard-%d", nameSeq.Add(1))
	}
	return nil
}

var nameSeq atomic.Uint64

// Controller is the auto-sharding control loop.
type Controller struct {
	cfg    Config
	policy *policy
	client *store.Client

	election   *registry.Election
	session    *registry.Session
	ownSession bool

	stop chan struct{}
	done chan struct{}

	mu      sync.Mutex
	leading bool
	splits  int
	merges  int
	// prevOps/prevAt are the previous tick's cumulative op counters, for
	// rate deltas.
	prevOps map[int]uint64
	prevAt  time.Time
}

// New creates a controller (not yet running; call Start).
func New(cfg Config) (*Controller, error) {
	if err := cfg.withDefaults(); err != nil {
		return nil, err
	}
	c := &Controller{
		cfg:     cfg,
		policy:  newPolicy(cfg),
		client:  cfg.Store.NewClient(),
		prevOps: make(map[int]uint64),
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
	}
	if cfg.Registry != nil {
		c.election = cfg.Registry.NewElection(electionPrefix)
		c.session = cfg.Session
		if c.session == nil {
			c.session = cfg.Registry.NewSession()
			c.ownSession = true
		}
		c.election.Enroll(c.session, cfg.Name)
	}
	return c, nil
}

// Start launches the control loop.
func (c *Controller) Start() {
	go c.run()
}

// Stop terminates the control loop and releases the controller's client
// and (if it opened one) its election session.
func (c *Controller) Stop() {
	close(c.stop)
	<-c.done
	if c.ownSession {
		c.session.Close()
	}
	c.client.Close()
}

// Splits returns how many controller-initiated splits completed.
func (c *Controller) Splits() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.splits
}

// Merges returns how many controller-initiated merges completed.
func (c *Controller) Merges() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.merges
}

// Leading reports whether this controller currently holds the lease (true
// without a registry: a lone controller always leads).
func (c *Controller) Leading() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.leading
}

func (c *Controller) act(format string, args ...any) {
	if c.cfg.OnAction != nil {
		c.cfg.OnAction(fmt.Sprintf(format, args...))
	}
}

func (c *Controller) run() {
	defer close(c.done)
	ticker := time.NewTicker(c.cfg.Interval)
	defer ticker.Stop()
	for {
		select {
		case <-c.stop:
			return
		case <-ticker.C:
			c.tick(time.Now())
		}
	}
}

// tick is one pass of the control loop: confirm leadership, sample, let
// the policy decide, execute. Actions run synchronously here — the
// migration budget's one-plan-at-a-time cap is this loop's structure, not
// a semaphore.
func (c *Controller) tick(now time.Time) {
	if !c.checkLeadership(now) {
		return
	}
	loads, live := c.sample(now)
	if loads == nil {
		return
	}
	a := c.policy.observe(now, loads, live)
	switch a.Kind {
	case ActionSplit:
		c.runSplit(now, a)
	case ActionMerge:
		c.runMerge(now, a)
	}
}

// checkLeadership resolves the controller lease for this tick. On
// takeover the successor resolves any plan a dead leader left mid-flight
// before its own policy is allowed to act.
func (c *Controller) checkLeadership(now time.Time) bool {
	if c.election == nil {
		c.mu.Lock()
		c.leading = true
		c.mu.Unlock()
		return true
	}
	leader, ok := c.election.Leader()
	isLeader := ok && leader == c.cfg.Name
	c.mu.Lock()
	was := c.leading
	c.mu.Unlock()
	if !isLeader {
		if was {
			c.act("lease lost")
			c.mu.Lock()
			c.leading = false
			c.mu.Unlock()
		}
		// Standby: forget streaks and rate baselines so a takeover starts
		// from fresh observations instead of stale ones.
		c.policy.reset()
		c.prevOps = make(map[int]uint64)
		return false
	}
	if !was {
		// The takeover is complete only once the predecessor's orphaned
		// plan (if any) is resolved; leading stays false on failure so the
		// next tick retries the resolve — otherwise one transient error
		// would leave the intent record (and its frozen range) stuck
		// forever while this controller holds the lease.
		c.act("lease acquired")
		plan, err := c.cfg.Rebalancer.ResolvePending()
		if err != nil {
			c.act("resolve pending failed: %v", err)
			c.policy.failed(now)
			return false
		}
		if plan != nil {
			c.act("resolved predecessor %s plan (epoch %d, phase %s)", plan.Kind, plan.Epoch, plan.Phase)
			c.policy.failed(now) // settle through one cool-down before acting
		}
		c.mu.Lock()
		c.leading = true
		c.mu.Unlock()
	}
	return true
}

// sample reads every committed partition's stats and converts cumulative
// op counters to rates. The first tick (and the first tick after a
// takeover or a topology change for the affected partitions) only sets
// baselines. live counts the committed live partitions — including ones
// not sampled this tick — for the MaxPartitions growth bound.
func (c *Controller) sample(now time.Time) (loads []Load, live int) {
	d := c.cfg.Store
	part := d.Partitioner()
	rp, _ := part.(*store.RangePartitioner)
	if rp != nil {
		seen := make(map[int]bool)
		for _, a := range rp.Assignments() {
			if !seen[a] {
				seen[a] = true
				live++
			}
		}
	} else {
		live = part.N()
	}
	dt := now.Sub(c.prevAt).Seconds()
	prev := c.prevOps
	next := make(map[int]uint64)
	n := part.N()
	for p := 0; p < n; p++ {
		st, ok := d.PartitionStats(p)
		if !ok {
			continue // retired tombstone
		}
		next[p] = st.Ops
		before, had := prev[p]
		if !had || dt <= 0 {
			continue // no baseline yet
		}
		rate := 0.0
		if st.Ops >= before {
			rate = float64(st.Ops-before) / dt
		} // else: the sampled replica restarted (recovery); skip one delta
		mergeable := false
		if rp != nil && (d.GlobalRingID() == 0 || !d.PartitionOnGlobal(p)) {
			_, mergeable = mergeTarget(rp, p)
		}
		loads = append(loads, Load{
			Partition: p,
			OpsRate:   rate,
			Keys:      st.Keys,
			Bytes:     st.Bytes,
			Mergeable: mergeable,
		})
	}
	c.prevOps = next
	c.prevAt = now
	return loads, live
}

// runSplit executes a split decision: find the hot partition's median key
// and hand it to the coordinator.
func (c *Controller) runSplit(now time.Time, a Action) {
	key, err := c.medianKey(a.Partition)
	if err != nil {
		c.act("split %d: median key: %v", a.Partition, err)
		c.policy.failed(now)
		return
	}
	newPart, err := c.cfg.Rebalancer.SplitPartition(a.Partition, key)
	if err != nil {
		c.act("split %d @%s failed: %v", a.Partition, key, err)
		c.policy.failed(now)
		return
	}
	c.mu.Lock()
	c.splits++
	c.mu.Unlock()
	c.policy.acted(time.Now(), a, newPart)
	c.act("split %d @%s -> %d", a.Partition, key, newPart)
}

// runMerge executes a merge decision: the cold partition donates its range
// to an adjacent survivor and its ring is retired.
func (c *Controller) runMerge(now time.Time, a Action) {
	rp, ok := c.cfg.Store.Partitioner().(*store.RangePartitioner)
	if !ok {
		c.policy.failed(now)
		return
	}
	survivor, ok := mergeTarget(rp, a.Partition)
	if !ok {
		c.policy.failed(now)
		return
	}
	if err := c.cfg.Rebalancer.MergePartitions(survivor, a.Partition); err != nil {
		c.act("merge %d->%d failed: %v", a.Partition, survivor, err)
		c.policy.failed(now)
		return
	}
	c.mu.Lock()
	c.merges++
	c.mu.Unlock()
	c.policy.acted(time.Now(), a, 0)
	c.act("merge %d->%d", a.Partition, survivor)
}

// mergeTarget picks the adjacent survivor a donor partition would merge
// into: the owner of the slot neighboring one of the donor's slots.
func mergeTarget(rp *store.RangePartitioner, donor int) (int, bool) {
	assign := rp.Assignments()
	for i, a := range assign {
		if a != donor {
			continue
		}
		if i > 0 && assign[i-1] != donor {
			return assign[i-1], true
		}
		if i+1 < len(assign) && assign[i+1] != donor {
			return assign[i+1], true
		}
	}
	return 0, false
}

// medianKey finds the median key of a partition's range by paging through
// it with the ordinary client scan path, so the sampling load is the same
// kind of traffic any client generates (and is itself counted by the
// stats surface). The returned key lies strictly inside one of the
// partition's slots — a legal split boundary.
func (c *Controller) medianKey(p int) (string, error) {
	rp, ok := c.cfg.Store.Partitioner().(*store.RangePartitioner)
	if !ok {
		return "", fmt.Errorf("autoshard: split requires range partitioning, deployment uses %T", c.cfg.Store.Partitioner())
	}
	st, ok := c.cfg.Store.PartitionStats(p)
	if !ok || st.Keys == 0 {
		return "", fmt.Errorf("autoshard: no stats for partition %d", p)
	}
	target := st.Keys / 2
	if target == 0 {
		target = 1
	}
	bounds, assign := rp.Bounds(), rp.Assignments()
	var counted uint64
	for slot, owner := range assign {
		if owner != p {
			continue
		}
		lo := ""
		if slot > 0 {
			lo = bounds[slot-1]
		}
		hi := ""
		if slot < len(bounds) {
			hi = bounds[slot]
		}
		from := lo
		for {
			entries, err := c.client.Scan(from, hi, c.cfg.SampleChunk)
			if err != nil {
				return "", err
			}
			var last string
			owned := 0
			for _, e := range entries {
				if rp.PartitionOf(e.Key) != p {
					continue // the inclusive upper bound belongs to a neighbor
				}
				owned++
				last = e.Key
				counted++
				if counted >= target && e.Key > lo {
					return e.Key, nil
				}
			}
			if len(entries) < c.cfg.SampleChunk || owned == 0 {
				break // end of the slot
			}
			from = last + "\x00" // resume strictly after the last key
		}
	}
	return "", fmt.Errorf("autoshard: partition %d has no key strictly inside its range (counted %d of %d)", p, counted, st.Keys)
}
