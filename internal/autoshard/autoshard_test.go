package autoshard

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"mrp/internal/metrics"
	"mrp/internal/netsim"
	"mrp/internal/rebalance"
	"mrp/internal/registry"
	"mrp/internal/storage"
	"mrp/internal/store"
	"mrp/internal/ycsb"
)

const records = 1000

// deployStore builds the standard two-partition range-partitioned store
// the controller tests run against: partition 0 owns [0, user500),
// partition 1 owns [user500, inf).
func deployStore(t *testing.T) (*store.Deployment, *registry.Registry) {
	t.Helper()
	net := netsim.New(netsim.WithUniformLatency(20 * time.Microsecond))
	d, err := store.Deploy(store.DeployConfig{
		Net:          net,
		Partitions:   2,
		Replicas:     3,
		GlobalRing:   true,
		Partitioner:  store.NewRangePartitioner([]string{ycsb.Key(records / 2)}),
		StorageMode:  storage.InMemory,
		SkipInterval: 5 * time.Millisecond,
		SkipRate:     9000,
		RetryTimeout: 60 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		d.Stop()
		net.Close()
	})
	reg := registry.New()
	if err := d.PublishSchema(reg); err != nil {
		t.Fatal(err)
	}
	var recs []store.Entry
	for _, o := range ycsb.Load(ycsb.Config{RecordCount: records, ValueSize: 64}) {
		recs = append(recs, store.Entry{Key: o.Key, Value: o.Value})
	}
	d.Preload(recs)
	return d, reg
}

// worker runs fn in a loop (with an optional pause between iterations)
// until stop flips.
func worker(wg *sync.WaitGroup, stop *atomic.Bool, pause time.Duration, fn func()) {
	wg.Add(1)
	go func() {
		defer wg.Done()
		for !stop.Load() {
			fn()
			if pause > 0 {
				time.Sleep(pause)
			}
		}
	}()
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, timeout time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// hotRate measures partition p's data-op rate over dur via the stats
// surface.
func hotRate(t *testing.T, d *store.Deployment, p int, dur time.Duration) float64 {
	t.Helper()
	before, ok := d.PartitionStats(p)
	if !ok {
		t.Fatalf("no stats for partition %d", p)
	}
	time.Sleep(dur)
	after, _ := d.PartitionStats(p)
	return float64(after.Ops-before.Ops) / dur.Seconds()
}

// TestAutoshardSkewedThenShiftingLoad is the subsystem's acceptance
// scenario: a two-partition store serves a skewed workload (all the heat
// on the top quarter of the key space) until the controller splits the hot
// partition at its median key; the skew then shifts to the bottom of the
// key space, the split-born partition goes cold, and the controller merges
// it back and retires its ring. Assertions: no lost or stale op across the
// controller-initiated reconfigurations (read-your-writes probes), no
// flapping (exactly 1 split and 1 merge for the single skew shift), and
// client throughput never reaching zero for any full timeline window.
func TestAutoshardSkewedThenShiftingLoad(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	d, reg := deployStore(t)
	tl := metrics.NewTimeline(400 * time.Millisecond)
	record := func(start time.Time, err error) {
		if err == nil {
			tl.RecordOp(time.Now(), time.Since(start))
		}
	}

	var (
		wg      sync.WaitGroup
		stopHot atomic.Bool
		stopAll atomic.Bool
		failMu  sync.Mutex
		fails   []string
		clients []*store.Client
	)
	mkClient := func() *store.Client {
		cl := d.NewClient()
		clients = append(clients, cl)
		return cl
	}
	failf := func(format string, args ...any) {
		failMu.Lock()
		fails = append(fails, fmt.Sprintf(format, args...))
		failMu.Unlock()
	}
	defer func() {
		stopHot.Store(true)
		stopAll.Store(true)
		wg.Wait()
		for _, cl := range clients {
			cl.Close()
		}
	}()

	// Hot workers: hammer the top quarter of the key space — all inside
	// partition 1 — as fast as the store admits.
	for w := 0; w < 4; w++ {
		cl := mkClient()
		rng := rand.New(rand.NewSource(int64(w)))
		worker(&wg, &stopHot, 0, func() {
			k := ycsb.Key(records*3/4 + rng.Intn(records/4))
			if rng.Intn(2) == 0 {
				start := time.Now()
				_, err := cl.Read(k)
				record(start, err)
			} else {
				start := time.Now()
				record(start, cl.Update(k, []byte("hot")))
			}
		})
	}

	// Calibrate thresholds against this host's actual throughput (absolute
	// numbers vary wildly, e.g. under the race detector).
	rate := hotRate(t, d, 1, 600*time.Millisecond)
	if rate <= 0 {
		t.Fatal("no load reached partition 1")
	}

	// Background workers: steady moderate traffic on partition 0 — never
	// reconfigured, so the timeline can never legitimately hit zero.
	bgPause := time.Duration(2 / (0.25 * rate) * float64(time.Second))
	for w := 0; w < 2; w++ {
		cl := mkClient()
		rng := rand.New(rand.NewSource(int64(100 + w)))
		worker(&wg, &stopAll, bgPause, func() {
			start := time.Now()
			_, err := cl.Read(ycsb.Key(rng.Intn(records / 2)))
			record(start, err)
		})
	}

	// Read-your-writes probes: own disjoint keys on every side of the
	// coming reconfigurations, write a counter and read it straight back.
	// Paced relative to the calibrated rate so they never keep a cold
	// partition warm.
	rywPause := time.Duration(1 / (0.01 * rate) * float64(time.Second))
	if rywPause > 100*time.Millisecond {
		rywPause = 100 * time.Millisecond
	}
	for w := 0; w < 2; w++ {
		cl := mkClient()
		keys := []string{
			fmt.Sprintf("%s-w%d", ycsb.Key(200), w), // partition 0
			fmt.Sprintf("%s-w%d", ycsb.Key(600), w), // partition 1, stays
			fmt.Sprintf("%s-w%d", ycsb.Key(900), w), // partition 1, moves with the split
		}
		seq := 0
		worker(&wg, &stopAll, rywPause, func() {
			seq++
			want := []byte(fmt.Sprintf("v%08d", seq))
			for _, k := range keys {
				start := time.Now()
				if err := cl.Insert(k, want); err != nil {
					failf("insert %s: %v", k, err)
					return
				}
				record(start, nil)
				got, err := cl.Read(k)
				if err != nil {
					failf("read %s: %v", k, err)
					return
				}
				if string(got) != string(want) {
					failf("stale read %s: got %q want %q", k, got, want)
					return
				}
			}
		})
	}

	coord, err := rebalance.New(rebalance.Config{
		Store:         d,
		Registry:      reg,
		ChunkInterval: 200 * time.Microsecond,
		OnStep:        func(s string) { tl.Mark(time.Now(), s) },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	ctrl, err := New(Config{
		Store:          d,
		Rebalancer:     coord,
		Registry:       reg,
		Interval:       40 * time.Millisecond,
		SplitOpsPerSec: 0.75 * rate,
		MergeOpsPerSec: 0.10 * rate,
		ViolationTicks: 3,
		Cooldown:       500 * time.Millisecond,
		SplitProtect:   1200 * time.Millisecond,
		MaxPartitions:  3,
		OnAction:       func(a string) { tl.Mark(time.Now(), "autoshard: "+a) },
	})
	if err != nil {
		t.Fatal(err)
	}
	ctrl.Start()
	defer ctrl.Stop()

	// Phase 1: the controller must notice the hot partition and split it.
	// (The committed partition count flips at the publish phase, before
	// the coordinator returns and the controller counts the split — wait
	// for both.)
	waitFor(t, 30*time.Second, "controller-initiated split", func() bool {
		return d.Partitions() == 3 && ctrl.Splits() == 1
	})

	// Phase 2: the skew shifts — the heat stops entirely, leaving the
	// split-born partition cold (the background partition-0 traffic keeps
	// flowing). The controller must merge it back, exactly once.
	stopHot.Store(true)
	waitFor(t, 30*time.Second, "controller-initiated merge", func() bool {
		return d.Partitions() == 2 && ctrl.Merges() == 1
	})

	// Settle: nothing else may happen (no split↔merge flapping).
	time.Sleep(1500 * time.Millisecond)
	if s, m := ctrl.Splits(), ctrl.Merges(); s != 1 || m != 1 {
		t.Fatalf("flapping: %d splits, %d merges after a single skew shift", s, m)
	}

	stopAll.Store(true)
	wg.Wait()

	failMu.Lock()
	defer failMu.Unlock()
	if len(fails) > 0 {
		t.Fatalf("lost/stale ops across reconfigurations: %v", fails)
	}

	// Client throughput never dropped to zero for a full window: the
	// migrations' freeze windows stalled only the moving range.
	samples := tl.Samples()
	for i, s := range samples {
		if i == 0 || !s.Complete {
			continue
		}
		if s.Throughput == 0 {
			t.Fatalf("window %d (%v): throughput hit zero during the run\nevents: %v",
				i, s.At, tl.Events())
		}
	}
	if ring := d.PartitionRing(2); ring != 0 {
		t.Fatalf("split-born partition's ring %d not retired after the merge", ring)
	}
}

// TestLeaderFailoverResolvesAndResumes kills the elected controller while
// its coordinator is mid-plan (simulated crash after the copy phase) and
// checks the lease half of coordinator failover: the successor becomes
// leader, ResolvePending rolls the orphaned plan back, and the successor's
// own policy then completes the split the dead leader attempted.
func TestLeaderFailoverResolvesAndResumes(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	d, reg := deployStore(t)

	var (
		wg      sync.WaitGroup
		stopAll atomic.Bool
		clients []*store.Client
	)
	defer func() {
		stopAll.Store(true)
		wg.Wait()
		for _, cl := range clients {
			cl.Close()
		}
	}()
	for w := 0; w < 4; w++ {
		cl := d.NewClient()
		clients = append(clients, cl)
		rng := rand.New(rand.NewSource(int64(w)))
		worker(&wg, &stopAll, 0, func() {
			_ = cl.Update(ycsb.Key(records*3/4+rng.Intn(records/4)), []byte("hot"))
		})
	}
	rate := hotRate(t, d, 1, 600*time.Millisecond)
	if rate <= 0 {
		t.Fatal("no load reached partition 1")
	}
	mkConfig := func(name string, coord *rebalance.Coordinator, sess *registry.Session, onAction func(string)) Config {
		return Config{
			Store:          d,
			Rebalancer:     coord,
			Registry:       reg,
			Session:        sess,
			Name:           name,
			Interval:       40 * time.Millisecond,
			SplitOpsPerSec: 0.5 * rate,
			ViolationTicks: 2,
			Cooldown:       400 * time.Millisecond,
			MaxPartitions:  3,
			OnAction:       onAction,
		}
	}

	// Leader A: its coordinator "dies" right after the copy phase, leaving
	// the intent record (phase prepared) and the frozen range behind.
	var actionsA []string
	var muA sync.Mutex
	coordA, err := rebalance.New(rebalance.Config{Store: d, Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer coordA.Close()
	coordA.CrashAfter("copy")
	sessA := reg.NewSession()
	ctrlA, err := New(mkConfig("A", coordA, sessA, func(a string) {
		muA.Lock()
		actionsA = append(actionsA, a)
		muA.Unlock()
	}))
	if err != nil {
		t.Fatal(err)
	}
	ctrlA.Start()

	waitFor(t, 30*time.Second, "leader A to crash mid-plan", func() bool {
		muA.Lock()
		defer muA.Unlock()
		for _, a := range actionsA {
			if strings.Contains(a, "split 1") && strings.Contains(a, "failed") {
				return true
			}
		}
		return false
	})
	// The orphaned plan's intent record must exist for the successor.
	if _, _, ok := reg.Get("/mrp-store/reconfig"); !ok {
		t.Fatal("crashed plan left no intent record")
	}
	// Kill the leader: its session expires, its loop stops.
	ctrlA.Stop()
	sessA.Close()

	// Successor B: must take the lease, resolve the orphan, and complete
	// the split itself.
	var actionsB []string
	var muB sync.Mutex
	coordB, err := rebalance.New(rebalance.Config{Store: d, Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer coordB.Close()
	ctrlB, err := New(mkConfig("B", coordB, nil, func(a string) {
		muB.Lock()
		actionsB = append(actionsB, a)
		muB.Unlock()
	}))
	if err != nil {
		t.Fatal(err)
	}
	ctrlB.Start()
	defer ctrlB.Stop()

	waitFor(t, 30*time.Second, "successor to resolve and re-split", func() bool {
		return d.Partitions() == 3 && ctrlB.Splits() == 1
	})
	muB.Lock()
	resolved := false
	for _, a := range actionsB {
		if strings.Contains(a, "resolved predecessor split plan") {
			resolved = true
		}
	}
	muB.Unlock()
	if !resolved {
		t.Fatalf("successor never reported resolving the orphaned plan; actions: %v", actionsB)
	}
	if aborts := coordB.Aborts(); aborts != 1 {
		t.Fatalf("successor aborts = %d, want 1 (the orphaned prepared plan)", aborts)
	}
	if _, _, ok := reg.Get("/mrp-store/reconfig"); ok {
		t.Fatal("intent record survived resolution and re-split")
	}

	// The data served through all of it: spot-check a migrated key.
	stopAll.Store(true)
	wg.Wait()
	cl := d.NewClient()
	defer cl.Close()
	if _, err := cl.Read(ycsb.Key(records * 3 / 4)); err != nil {
		t.Fatalf("read of a migrated key after failover: %v", err)
	}
}
