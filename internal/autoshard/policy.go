package autoshard

import (
	"time"
)

// Load is one partition's sampled signal for a policy tick: the op rate
// over the last sampling interval plus the current size, from the store's
// stats surface (store.PartitionStats).
type Load struct {
	// Partition is the committed partition index.
	Partition int
	// OpsRate is data operations per second over the last tick.
	OpsRate float64
	// Keys and Bytes are the partition's current size.
	Keys  uint64
	Bytes uint64
	// Mergeable reports that the deployment could merge this partition
	// away (it is off the global ring and has an adjacent survivor); the
	// policy never proposes merging a partition the engine must refuse.
	Mergeable bool
}

// ActionKind is what the policy wants done to a partition.
type ActionKind int

// Policy decisions.
const (
	// ActionNone: keep watching.
	ActionNone ActionKind = iota
	// ActionSplit: the partition is hot (or oversized); carve off the
	// upper half of its range at the median key.
	ActionSplit
	// ActionMerge: the partition is cold and small; merge it into an
	// adjacent survivor and retire its ring.
	ActionMerge
)

// Action is one policy decision.
type Action struct {
	Kind      ActionKind
	Partition int
}

// policy is the pure decision core of the controller: thresholds with
// hysteresis. It is deliberately free of clocks, clusters, and goroutines
// so the flapping properties can be unit-tested tick by tick.
//
// Hysteresis has three guards:
//
//   - Time-in-violation: a partition must violate its threshold for
//     ViolationTicks consecutive samples before the policy acts; one
//     oscillation below the threshold resets the streak.
//   - Cool-down: after any action (including a failed one) the policy is
//     silent for Cooldown, so one reconfiguration's transient — the
//     freeze-window dip, the post-split rate redistribution — cannot
//     trigger the next.
//   - Split-protect: the two sides of a recent split are never merge
//     candidates for SplitProtect, so a split followed by the load
//     disappearing does not immediately un-split (the flap the issue's
//     acceptance criterion forbids).
type policy struct {
	cfg Config

	splitStreak   map[int]int
	mergeStreak   map[int]int
	cooldownUntil time.Time
	protected     map[int]time.Time // split sides, by when the split happened
}

func newPolicy(cfg Config) *policy {
	return &policy{
		cfg:         cfg,
		splitStreak: make(map[int]int),
		mergeStreak: make(map[int]int),
		protected:   make(map[int]time.Time),
	}
}

// splitViolation reports whether a partition's sample crosses the split
// thresholds: hot by rate, or oversized by keys — and big enough that a
// median split is meaningful.
func (p *policy) splitViolation(l Load) bool {
	if l.Keys < p.cfg.MinSplitKeys {
		return false
	}
	if p.cfg.SplitOpsPerSec > 0 && l.OpsRate > p.cfg.SplitOpsPerSec {
		return true
	}
	return p.cfg.SplitMaxKeys > 0 && l.Keys > p.cfg.SplitMaxKeys
}

// mergeViolation reports whether a partition's sample crosses the merge
// thresholds: cold by rate and small by keys, mergeable by the engine, and
// not a side of a recent split.
func (p *policy) mergeViolation(now time.Time, l Load) bool {
	if !l.Mergeable || p.cfg.MergeOpsPerSec <= 0 {
		return false
	}
	if since, ok := p.protected[l.Partition]; ok && now.Sub(since) < p.cfg.SplitProtect {
		return false
	}
	if l.OpsRate >= p.cfg.MergeOpsPerSec {
		return false
	}
	return p.cfg.MergeMaxKeys == 0 || l.Keys <= p.cfg.MergeMaxKeys
}

// observe ingests one sampling tick and returns at most one action — the
// migration budget allows a single plan at a time, and the controller
// executes it synchronously before the next tick is even read. live is
// the committed live partition count, which the MaxPartitions cap is
// checked against — loads may be a subset (partitions with no rate
// baseline yet or no live replica are not sampled, but they still count
// toward the growth bound).
func (p *policy) observe(now time.Time, loads []Load, live int) Action {
	seen := make(map[int]bool, len(loads))
	var hottest, coldest *Load
	for i := range loads {
		l := loads[i]
		seen[l.Partition] = true
		if p.splitViolation(l) {
			p.splitStreak[l.Partition]++
			if p.splitStreak[l.Partition] >= p.cfg.ViolationTicks &&
				(hottest == nil || l.OpsRate > hottest.OpsRate) {
				hottest = &loads[i]
			}
		} else {
			delete(p.splitStreak, l.Partition)
		}
		if p.mergeViolation(now, l) {
			p.mergeStreak[l.Partition]++
			if p.mergeStreak[l.Partition] >= p.cfg.ViolationTicks &&
				(coldest == nil || l.OpsRate < coldest.OpsRate) {
				coldest = &loads[i]
			}
		} else {
			delete(p.mergeStreak, l.Partition)
		}
	}
	// Partitions that disappeared (merged away) drop their streaks.
	for part := range p.splitStreak {
		if !seen[part] {
			delete(p.splitStreak, part)
		}
	}
	for part := range p.mergeStreak {
		if !seen[part] {
			delete(p.mergeStreak, part)
		}
	}
	if now.Before(p.cooldownUntil) {
		return Action{}
	}
	if live < len(loads) {
		live = len(loads)
	}
	if hottest != nil && (p.cfg.MaxPartitions == 0 || live < p.cfg.MaxPartitions) {
		return Action{Kind: ActionSplit, Partition: hottest.Partition}
	}
	if coldest != nil {
		return Action{Kind: ActionMerge, Partition: coldest.Partition}
	}
	return Action{}
}

// acted records a completed action: cool-down starts, every streak resets,
// and a split's two sides become merge-protected.
func (p *policy) acted(now time.Time, a Action, newPart int) {
	p.cooldownUntil = now.Add(p.cfg.Cooldown)
	p.splitStreak = make(map[int]int)
	p.mergeStreak = make(map[int]int)
	if a.Kind == ActionSplit {
		p.protected[a.Partition] = now
		p.protected[newPart] = now
	}
}

// failed records a failed action: same cool-down, so a reconfiguration
// that cannot succeed (e.g. a stuck predecessor plan) is retried at the
// cool-down cadence instead of hot-looping every tick.
func (p *policy) failed(now time.Time) {
	p.cooldownUntil = now.Add(p.cfg.Cooldown)
	p.splitStreak = make(map[int]int)
	p.mergeStreak = make(map[int]int)
}

// reset clears all hysteresis state; a controller losing leadership resets
// so a later takeover starts from fresh observations.
func (p *policy) reset() {
	p.splitStreak = make(map[int]int)
	p.mergeStreak = make(map[int]int)
}
