package autoshard

import (
	"testing"
	"time"
)

// testPolicy builds a policy with explicit thresholds: hot above 100
// ops/s, cold below 10 ops/s, three ticks in violation, 1 s cool-down,
// 2 s split-protect.
func testPolicy() *policy {
	return newPolicy(Config{
		SplitOpsPerSec: 100,
		MergeOpsPerSec: 10,
		MinSplitKeys:   16,
		ViolationTicks: 3,
		Cooldown:       time.Second,
		SplitProtect:   2 * time.Second,
	})
}

func at(s float64) time.Time {
	return time.Unix(0, 0).Add(time.Duration(s * float64(time.Second)))
}

func hot(p int, rate float64) Load {
	return Load{Partition: p, OpsRate: rate, Keys: 1000}
}

func cold(p int) Load {
	return Load{Partition: p, OpsRate: 1, Keys: 100, Mergeable: true}
}

// TestPolicyOscillationDoesNotFlap feeds load oscillating around the split
// threshold: the violation streak resets on every dip, so the policy never
// acts no matter how long the oscillation lasts.
func TestPolicyOscillationDoesNotFlap(t *testing.T) {
	p := testPolicy()
	for i := 0; i < 50; i++ {
		rate := 150.0 // above
		if i%3 == 2 {
			rate = 50 // periodic dip below
		}
		if a := p.observe(at(float64(i)/10), []Load{hot(1, rate)}, 1); a.Kind != ActionNone {
			t.Fatalf("tick %d: oscillating load triggered %v", i, a.Kind)
		}
	}
}

// TestPolicySustainedViolationSplits checks the time-in-violation guard:
// exactly ViolationTicks consecutive hot samples trigger the split, not
// one fewer.
func TestPolicySustainedViolationSplits(t *testing.T) {
	p := testPolicy()
	for i := 0; i < 2; i++ {
		if a := p.observe(at(float64(i)/10), []Load{hot(1, 200)}, 1); a.Kind != ActionNone {
			t.Fatalf("tick %d: acted before the violation streak completed", i)
		}
	}
	a := p.observe(at(0.2), []Load{hot(1, 200)}, 1)
	if a.Kind != ActionSplit || a.Partition != 1 {
		t.Fatalf("third hot tick = %+v, want split of partition 1", a)
	}
}

// TestPolicyTooSmallToSplit: a hot partition below MinSplitKeys is never a
// split candidate (there is nothing worth carving off).
func TestPolicyTooSmallToSplit(t *testing.T) {
	p := testPolicy()
	for i := 0; i < 10; i++ {
		l := Load{Partition: 0, OpsRate: 500, Keys: 4}
		if a := p.observe(at(float64(i)/10), []Load{l}, 1); a.Kind != ActionNone {
			t.Fatalf("tick %d: split of a %d-key partition", i, l.Keys)
		}
	}
}

// TestPolicyCooldownHonored: after an action, a sustained violation stays
// unanswered until the cool-down expires.
func TestPolicyCooldownHonored(t *testing.T) {
	p := testPolicy()
	var a Action
	for i := 0; a.Kind == ActionNone && i < 5; i++ {
		a = p.observe(at(float64(i)/10), []Load{hot(1, 200)}, 1)
	}
	if a.Kind != ActionSplit {
		t.Fatalf("no split after sustained violation (got %+v)", a)
	}
	p.acted(at(0.5), a, 2)
	// Still hot through the whole 1 s cool-down: silence.
	for i := 0; i < 10; i++ {
		now := at(0.5 + float64(i)/10)
		if a := p.observe(now, []Load{hot(1, 200)}, 1); a.Kind != ActionNone {
			t.Fatalf("acted at %v, inside the cool-down", now)
		}
	}
	// First tick past the cool-down with the streak already full: act.
	if a := p.observe(at(1.6), []Load{hot(1, 200)}, 1); a.Kind != ActionSplit {
		t.Fatalf("no split after the cool-down expired (got %+v)", a)
	}
}

// TestPolicyBudgetOnePlanAtATime: two simultaneously hot partitions yield
// one decision — the hottest — and the second must wait out the cool-down
// of the first.
func TestPolicyBudgetOnePlanAtATime(t *testing.T) {
	p := testPolicy()
	loads := []Load{hot(0, 300), hot(1, 500)}
	var a Action
	for i := 0; a.Kind == ActionNone && i < 5; i++ {
		a = p.observe(at(float64(i)/10), loads, len(loads))
	}
	if a.Kind != ActionSplit || a.Partition != 1 {
		t.Fatalf("first decision = %+v, want split of the hottest (1)", a)
	}
	p.acted(at(0.4), a, 2)
	if a := p.observe(at(0.5), loads, len(loads)); a.Kind != ActionNone {
		t.Fatalf("second hot partition split inside the first's cool-down: %+v", a)
	}
	// After the cool-down — with the first split's load redistributed —
	// the other hot partition gets its turn.
	after := []Load{hot(0, 300), hot(1, 50), hot(2, 60)}
	var b Action
	for i := 0; b.Kind == ActionNone && i < 10; i++ {
		b = p.observe(at(1.5+float64(i)/10), after, len(after))
	}
	if b.Kind != ActionSplit || b.Partition != 0 {
		t.Fatalf("second decision = %+v, want split of partition 0", b)
	}
}

// TestPolicyMaxPartitionsCapsGrowth: the budget's partition cap blocks
// splits once the live partition count reaches it.
func TestPolicyMaxPartitionsCapsGrowth(t *testing.T) {
	cfg := Config{
		SplitOpsPerSec: 100, MinSplitKeys: 16,
		ViolationTicks: 2, Cooldown: time.Second, SplitProtect: 2 * time.Second,
		MaxPartitions: 2,
	}
	p := newPolicy(cfg)
	loads := []Load{hot(0, 300), hot(1, 500)}
	for i := 0; i < 10; i++ {
		if a := p.observe(at(float64(i)/10), loads, len(loads)); a.Kind != ActionNone {
			t.Fatalf("split beyond MaxPartitions: %+v", a)
		}
	}
}

// TestPolicyNeverMergesFreshSplit: the cold split-born partition stays
// merge-protected until SplitProtect has passed, then becomes a candidate.
func TestPolicyNeverMergesFreshSplit(t *testing.T) {
	p := testPolicy()
	p.acted(at(0), Action{Kind: ActionSplit, Partition: 1}, 2)
	// Partition 2 (just split off) goes cold immediately. Protected: the
	// policy must not merge it before SplitProtect (2 s) has passed, even
	// though the cool-down (1 s) expired earlier.
	for i := 0; i < 19; i++ {
		now := at(float64(i) / 10)
		if a := p.observe(now, []Load{cold(2)}, 1); a.Kind != ActionNone {
			t.Fatalf("merged a fresh split at %v: %+v", now, a)
		}
	}
	var a Action
	for i := 0; a.Kind == ActionNone && i < 10; i++ {
		a = p.observe(at(2.1+float64(i)/10), []Load{cold(2)}, 1)
	}
	if a.Kind != ActionMerge || a.Partition != 2 {
		t.Fatalf("protected partition never became a merge candidate (got %+v)", a)
	}
}

// TestPolicyUnmergeablePartitionIgnored: a cold partition the engine
// cannot merge (on the global ring, or no adjacent survivor) is never
// proposed.
func TestPolicyUnmergeablePartitionIgnored(t *testing.T) {
	p := testPolicy()
	l := cold(0)
	l.Mergeable = false
	for i := 0; i < 10; i++ {
		if a := p.observe(at(float64(i)/10), []Load{l}, 1); a.Kind != ActionNone {
			t.Fatalf("proposed merging an unmergeable partition: %+v", a)
		}
	}
}

// TestPolicySplitPriorityOverMerge: when a split and a merge are both due,
// the hot partition wins the single budget slot.
func TestPolicySplitPriorityOverMerge(t *testing.T) {
	p := testPolicy()
	loads := []Load{hot(0, 300), cold(1)}
	var a Action
	for i := 0; a.Kind == ActionNone && i < 5; i++ {
		a = p.observe(at(float64(i)/10), loads, len(loads))
	}
	if a.Kind != ActionSplit || a.Partition != 0 {
		t.Fatalf("decision = %+v, want the split to win the budget slot", a)
	}
}
