// Package baseline implements the comparator systems of the paper's
// evaluation on the same simulated substrate as MRP-Store and dLog:
//
//   - CassandraLike (Figure 4): a partitioned, replicated key-value store
//     with per-key coordinators and asynchronous replication — strong
//     consistency within nothing, no ordering across requests. It models
//     Apache Cassandra at consistency level ONE, which is how the paper
//     explains its throughput edge ("it does not impose any ordering on
//     requests") and its weakness on range scans (workload E).
//   - MySQLLike (Figure 4): a single server executing every operation on
//     one node with buffered writes — no replication, no partitioning.
//   - BookkeeperLike (Figure 5): a write-ahead log over an ensemble of
//     three bookies with an ack quorum of two and aggressive batch commits
//     ("its aggressive batching mechanism ... attempts to maximize disk use
//     by writing in large chunks"), trading latency for disk efficiency.
//
// All three speak the same client protocol as the SMR services (proposals
// in, responses out), so the benchmark harness drives them identically.
package baseline

import (
	"encoding/binary"
	"errors"

	"mrp/internal/msg"
	"mrp/internal/smr"
	"mrp/internal/transport"
)

// opKind tags baseline KV operations.
type opKind byte

const (
	opRead opKind = iota + 1
	opWrite
	opScan
	opReplicate // internal: async replication between replicas
	opAppend    // bookkeeper
)

var errBad = errors.New("baseline: bad encoding")

type op struct {
	kind  opKind
	key   string
	value []byte
	limit int
}

func (o op) encode() []byte {
	b := []byte{byte(o.kind)}
	b = binary.BigEndian.AppendUint16(b, uint16(len(o.key)))
	b = append(b, o.key...)
	b = binary.BigEndian.AppendUint32(b, uint32(len(o.value)))
	b = append(b, o.value...)
	b = binary.BigEndian.AppendUint32(b, uint32(o.limit))
	return b
}

func decodeOp(b []byte) (op, error) {
	if len(b) < 3 {
		return op{}, errBad
	}
	o := op{kind: opKind(b[0])}
	kn := int(binary.BigEndian.Uint16(b[1:]))
	b = b[3:]
	if len(b) < kn+4 {
		return op{}, errBad
	}
	o.key = string(b[:kn])
	b = b[kn:]
	vn := int(binary.BigEndian.Uint32(b))
	b = b[4:]
	if len(b) < vn+4 {
		return op{}, errBad
	}
	o.value = b[:vn]
	o.limit = int(binary.BigEndian.Uint32(b[vn:]))
	return o, nil
}

// server is a generic request loop: it decodes smr.Commands from incoming
// proposals, executes them through the handler, and replies to the client.
type server struct {
	ep     transport.Endpoint
	handle func(from transport.Addr, cmd smr.Command)
	done   chan struct{}
}

func newServer(ep transport.Endpoint, handle func(transport.Addr, smr.Command)) *server {
	s := &server{ep: ep, handle: handle, done: make(chan struct{})}
	go s.run()
	return s
}

func (s *server) run() {
	defer close(s.done)
	for env := range s.ep.Inbox() {
		p, ok := env.Msg.(*msg.Proposal)
		if !ok {
			continue
		}
		cmd, err := smr.DecodeCommand(p.Payload)
		if err != nil {
			continue
		}
		s.handle(env.From, cmd)
	}
}

func (s *server) reply(cmd smr.Command, result []byte) {
	if cmd.ReplyTo == "" {
		return
	}
	_ = s.ep.Send(cmd.ReplyTo, &msg.Response{
		ClientID: cmd.ClientID,
		Seq:      cmd.Seq,
		Result:   result,
	})
}

func (s *server) stop() {
	_ = s.ep.Close()
	<-s.done
}

// result encoding: status byte + payload (value or entries).
const (
	statusOK byte = iota + 1
	statusNotFound
)

func encodeEntries(entries []kvEntry) []byte {
	b := []byte{statusOK}
	b = binary.BigEndian.AppendUint32(b, uint32(len(entries)))
	for _, e := range entries {
		b = binary.BigEndian.AppendUint16(b, uint16(len(e.key)))
		b = append(b, e.key...)
		b = binary.BigEndian.AppendUint32(b, uint32(len(e.value)))
		b = append(b, e.value...)
	}
	return b
}

func decodeEntries(b []byte) ([]kvEntry, error) {
	if len(b) < 5 || b[0] != statusOK {
		return nil, errBad
	}
	n := int(binary.BigEndian.Uint32(b[1:]))
	b = b[5:]
	out := make([]kvEntry, 0, n)
	for i := 0; i < n; i++ {
		if len(b) < 2 {
			return nil, errBad
		}
		kn := int(binary.BigEndian.Uint16(b))
		b = b[2:]
		if len(b) < kn+4 {
			return nil, errBad
		}
		k := string(b[:kn])
		b = b[kn:]
		vn := int(binary.BigEndian.Uint32(b))
		b = b[4:]
		if len(b) < vn {
			return nil, errBad
		}
		out = append(out, kvEntry{key: k, value: append([]byte(nil), b[:vn]...)})
		b = b[vn:]
	}
	return out, nil
}

type kvEntry struct {
	key   string
	value []byte
}
