package baseline

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"

	"mrp/internal/netsim"
	"mrp/internal/storage"
)

func TestOpCodecRoundTrip(t *testing.T) {
	ops := []op{
		{kind: opRead, key: "k"},
		{kind: opWrite, key: "k", value: []byte("v")},
		{kind: opScan, key: "a", limit: 10},
		{kind: opAppend, value: []byte("entry")},
	}
	for _, o := range ops {
		got, err := decodeOp(o.encode())
		if err != nil {
			t.Fatal(err)
		}
		if got.kind != o.kind || got.key != o.key || !bytes.Equal(got.value, o.value) || got.limit != o.limit {
			t.Fatalf("round trip %+v -> %+v", o, got)
		}
	}
	if _, err := decodeOp(nil); err == nil {
		t.Fatal("nil should fail")
	}
	if _, err := decodeOp([]byte{1, 0xFF, 0xFF}); err == nil {
		t.Fatal("truncated should fail")
	}
}

func TestEntriesCodec(t *testing.T) {
	in := []kvEntry{{key: "a", value: []byte("1")}, {key: "b", value: nil}}
	got, err := decodeEntries(encodeEntries(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].key != "a" || string(got[0].value) != "1" {
		t.Fatalf("round trip = %+v", got)
	}
	if _, err := decodeEntries([]byte{statusNotFound}); err == nil {
		t.Fatal("bad status should fail")
	}
}

func newCass(t *testing.T) *Cassandra {
	t.Helper()
	net := netsim.New(netsim.WithUniformLatency(20 * time.Microsecond))
	c := NewCassandra(CassandraConfig{Net: net, Partitions: 3, Replicas: 3})
	t.Cleanup(func() {
		c.Stop()
		net.Close()
	})
	return c
}

func TestCassandraReadWrite(t *testing.T) {
	c := newCass(t)
	cl := c.NewClient()
	defer cl.Close()
	if err := cl.Insert("k1", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	v, err := cl.Read("k1")
	if err != nil || string(v) != "v1" {
		t.Fatalf("read = %q, %v", v, err)
	}
	if _, err := cl.Read("missing"); err != ErrNotFound {
		t.Fatalf("missing read = %v", err)
	}
	if err := cl.Update("k1", []byte("v2")); err != nil {
		t.Fatal(err)
	}
	// Consistency ONE: reads converge eventually, not immediately.
	deadline := time.Now().Add(5 * time.Second)
	for {
		v, err := cl.Read("k1")
		if err == nil && string(v) == "v2" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("update never visible: %q", v)
		}
		time.Sleep(2 * time.Millisecond)
	}
	if err := cl.ReadModifyWrite("k1", []byte("v3")); err != nil {
		t.Fatal(err)
	}
}

func TestCassandraAsyncReplication(t *testing.T) {
	c := newCass(t)
	cl := c.NewClient()
	defer cl.Close()
	if err := cl.Insert("key", []byte("val")); err != nil {
		t.Fatal(err)
	}
	// Eventually every replica of the owning partition holds the value.
	p := c.part.PartitionOf("key")
	deadline := time.Now().Add(5 * time.Second)
	for {
		all := true
		for _, s := range c.servers[p] {
			if _, ok := s.data.Get("key"); !ok {
				all = false
			}
		}
		if all {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("replication did not propagate")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestCassandraScan(t *testing.T) {
	c := newCass(t)
	cl := c.NewClient()
	defer cl.Close()
	for i := 0; i < 20; i++ {
		if err := cl.Insert(fmt.Sprintf("s%02d", i), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	entries, err := cl.Scan("s05", 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 10 {
		t.Fatalf("scan = %d entries", len(entries))
	}
	if entries[0].Key != "s05" {
		t.Fatalf("first = %q", entries[0].Key)
	}
	for i := 1; i < len(entries); i++ {
		if entries[i-1].Key >= entries[i].Key {
			t.Fatal("scan not sorted")
		}
	}
}

func TestMySQLBasic(t *testing.T) {
	net := netsim.New(netsim.WithUniformLatency(20 * time.Microsecond))
	m := NewMySQL(MySQLConfig{Net: net, DiskScale: 0.001})
	t.Cleanup(func() {
		m.Stop()
		net.Close()
	})
	cl := m.NewClient()
	defer cl.Close()
	if err := cl.Insert("a", []byte("1")); err != nil {
		t.Fatal(err)
	}
	v, err := cl.Read("a")
	if err != nil || string(v) != "1" {
		t.Fatalf("read = %q, %v", v, err)
	}
	if _, err := cl.Read("nope"); err != ErrNotFound {
		t.Fatal("missing key should be not found")
	}
	for i := 0; i < 10; i++ {
		if err := cl.Insert(fmt.Sprintf("m%02d", i), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	entries, err := cl.Scan("m00", 5)
	if err != nil || len(entries) != 5 {
		t.Fatalf("scan = %d, %v", len(entries), err)
	}
	if err := cl.ReadModifyWrite("a", []byte("2")); err != nil {
		t.Fatal(err)
	}
}

func TestBookkeeperAppendQuorum(t *testing.T) {
	net := netsim.New(netsim.WithUniformLatency(20 * time.Microsecond))
	bk := NewBookkeeper(BookkeeperConfig{
		Net:        net,
		FlushEvery: 5 * time.Millisecond,
		DiskModel:  storage.DiskModel{SyncLatency: 100 * time.Microsecond, Bandwidth: 1 << 40, BufferBytes: 1 << 30},
	})
	t.Cleanup(func() {
		bk.Stop()
		net.Close()
	})
	cl := bk.NewClient()
	defer cl.Close()
	start := time.Now()
	if err := cl.Append([]byte("entry-1")); err != nil {
		t.Fatal(err)
	}
	// Latency must include the batch wait (at least part of FlushEvery).
	if time.Since(start) > 5*time.Second {
		t.Fatal("append too slow")
	}
	// Concurrent appends all complete.
	var wg sync.WaitGroup
	errs := make(chan error, 50)
	for i := 0; i < 50; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs <- cl.Append(bytes.Repeat([]byte("x"), 1024))
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestBookkeeperBatchingAmortizesDisk(t *testing.T) {
	net := netsim.New(netsim.WithUniformLatency(20 * time.Microsecond))
	bk := NewBookkeeper(BookkeeperConfig{
		Net:        net,
		FlushEvery: 20 * time.Millisecond,
		DiskModel:  storage.DiskModel{SyncLatency: time.Millisecond, Bandwidth: 1 << 40, BufferBytes: 1 << 30},
	})
	t.Cleanup(func() {
		bk.Stop()
		net.Close()
	})
	cl := bk.NewClient()
	defer cl.Close()
	var wg sync.WaitGroup
	for i := 0; i < 40; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = cl.Append([]byte("e"))
		}()
	}
	wg.Wait()
	// 40 appends with aggressive batching must need far fewer than 40
	// journal writes per bookie.
	syncOps, _, _ := bk.bookies[0].disk.Stats()
	if syncOps == 0 || syncOps >= 40 {
		t.Fatalf("journal writes = %d, want batched (1..39)", syncOps)
	}
}
