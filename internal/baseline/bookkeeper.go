package baseline

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"mrp/internal/msg"
	"mrp/internal/netsim"
	"mrp/internal/smr"
	"mrp/internal/storage"
	"mrp/internal/transport"
)

// BookkeeperConfig parametrizes the Bookkeeper-like log comparator
// (Figure 5: an ensemble of three bookies, synchronous disk writes,
// aggressive batching).
type BookkeeperConfig struct {
	Net *netsim.Network
	// Bookies is the ensemble size (default 3, as in the paper).
	Bookies int
	// AckQuorum is how many bookie acks complete an append (default 2).
	AckQuorum int
	// FlushBytes is the journal chunk size that triggers a flush
	// (default 1 MB — "writing in large chunks").
	FlushBytes int
	// FlushEvery caps how long entries wait for a chunk to fill
	// (default 100 ms; this is what produces Bookkeeper's large latency
	// in Figure 5).
	FlushEvery time.Duration
	// DiskModel is the journal device (default HDD, as in Figure 5's
	// sync-disk comparison).
	DiskModel storage.DiskModel
	// DiskScale scales the journal device.
	DiskScale float64
}

// Bookkeeper is the running ensemble.
type Bookkeeper struct {
	cfg     BookkeeperConfig
	bookies []*bookie
	nextID  atomic.Uint64
}

// bookie journals entries in large synchronous chunks.
type bookie struct {
	*server
	disk *storage.Disk

	mu      sync.Mutex
	pending []pendingAck
	bytes   int
	flushC  chan struct{}
	done    chan struct{}
	cfg     BookkeeperConfig
}

type pendingAck struct {
	cmd smr.Command
}

// NewBookkeeper deploys the ensemble.
func NewBookkeeper(cfg BookkeeperConfig) *Bookkeeper {
	if cfg.Bookies <= 0 {
		cfg.Bookies = 3
	}
	if cfg.AckQuorum <= 0 {
		cfg.AckQuorum = 2
	}
	if cfg.FlushBytes <= 0 {
		cfg.FlushBytes = 1 << 20
	}
	if cfg.FlushEvery <= 0 {
		cfg.FlushEvery = 100 * time.Millisecond
	}
	if cfg.DiskModel.Bandwidth == 0 {
		cfg.DiskModel = storage.HDD
	}
	if cfg.DiskScale <= 0 {
		cfg.DiskScale = 1
	}
	bk := &Bookkeeper{cfg: cfg}
	for i := 0; i < cfg.Bookies; i++ {
		b := &bookie{
			disk:   storage.NewDisk(cfg.DiskModel.Scale(cfg.DiskScale)),
			flushC: make(chan struct{}, 1),
			done:   make(chan struct{}),
			cfg:    cfg,
		}
		b.server = newServer(cfg.Net.Endpoint(transport.Addr(fmt.Sprintf("bookie-%d", i))), b.handle)
		go b.flusher()
		bk.bookies = append(bk.bookies, b)
	}
	return bk
}

func (b *bookie) handle(_ transport.Addr, cmd smr.Command) {
	o, err := decodeOp(cmd.Op)
	if err != nil || o.kind != opAppend {
		return
	}
	b.mu.Lock()
	b.pending = append(b.pending, pendingAck{cmd: cmd})
	b.bytes += len(o.value)
	full := b.bytes >= b.cfg.FlushBytes
	b.mu.Unlock()
	if full {
		select {
		case b.flushC <- struct{}{}:
		default:
		}
	}
}

// flusher journals accumulated entries in one large synchronous write,
// then acknowledges all of them — maximal disk efficiency, batch-sized
// latency.
func (b *bookie) flusher() {
	ticker := time.NewTicker(b.cfg.FlushEvery)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
		case <-b.flushC:
		case <-b.done:
			return
		}
		b.mu.Lock()
		batch := b.pending
		n := b.bytes
		b.pending = nil
		b.bytes = 0
		b.mu.Unlock()
		if len(batch) == 0 {
			continue
		}
		b.disk.SyncWrite(n)
		for _, p := range batch {
			b.reply(p.cmd, []byte{statusOK})
		}
	}
}

func (b *bookie) stopBookie() {
	close(b.done)
	b.stop()
}

// Stop shuts the ensemble down.
func (bk *Bookkeeper) Stop() {
	for _, b := range bk.bookies {
		b.stopBookie()
	}
}

// NewClient creates an append client. Each append goes to the whole
// ensemble and completes after AckQuorum bookies acknowledge.
func (bk *Bookkeeper) NewClient() *BookkeeperClient {
	id := 5_000_000 + bk.nextID.Add(1)
	ep := bk.cfg.Net.Endpoint(transport.Addr(fmt.Sprintf("bk-client-%d", id)))
	var addrs []transport.Addr
	for i := 0; i < bk.cfg.Bookies; i++ {
		addrs = append(addrs, transport.Addr(fmt.Sprintf("bookie-%d", i)))
	}
	c := &BookkeeperClient{
		ep:     ep,
		addrs:  addrs,
		quorum: bk.cfg.AckQuorum,
		waits:  make(map[uint64]chan struct{}),
		acks:   make(map[uint64]int),
	}
	go c.readLoop()
	return c
}

// BookkeeperClient appends entries to the ensemble.
type BookkeeperClient struct {
	ep     transport.Endpoint
	addrs  []transport.Addr
	quorum int

	mu    sync.Mutex
	seq   uint64
	waits map[uint64]chan struct{}
	acks  map[uint64]int
}

func (c *BookkeeperClient) readLoop() {
	for env := range c.ep.Inbox() {
		resp, ok := env.Msg.(*msg.Response)
		if !ok {
			continue
		}
		c.mu.Lock()
		c.acks[resp.Seq]++
		if c.acks[resp.Seq] == c.quorum {
			if ch, ok := c.waits[resp.Seq]; ok {
				close(ch)
				delete(c.waits, resp.Seq)
			}
		}
		c.mu.Unlock()
	}
}

// Append journals one entry on the ensemble and waits for the ack quorum.
func (c *BookkeeperClient) Append(data []byte) error {
	c.mu.Lock()
	c.seq++
	seq := c.seq
	ch := make(chan struct{})
	c.waits[seq] = ch
	c.mu.Unlock()
	defer func() {
		c.mu.Lock()
		delete(c.waits, seq)
		delete(c.acks, seq)
		c.mu.Unlock()
	}()
	cmd := smr.Command{ClientID: 1, Seq: seq, ReplyTo: c.ep.Addr(), Op: op{kind: opAppend, value: data}.encode()}
	payload := cmd.Encode()
	for _, a := range c.addrs {
		_ = c.ep.Send(a, &msg.Proposal{Payload: payload})
	}
	select {
	case <-ch:
		return nil
	case <-time.After(20 * time.Second):
		return smr.ErrTimeout
	}
}

// Close releases the client.
func (c *BookkeeperClient) Close() { _ = c.ep.Close() }
