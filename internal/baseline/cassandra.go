package baseline

import (
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"mrp/internal/msg"
	"mrp/internal/netsim"
	"mrp/internal/smr"
	"mrp/internal/storage"
	"mrp/internal/store"
	"mrp/internal/transport"
)

// CassandraConfig parametrizes the Cassandra-like comparator: Figure 4
// uses three partitions with replication factor three.
type CassandraConfig struct {
	Net        *netsim.Network
	Partitions int
	Replicas   int
	// ScanPenalty models the per-returned-entry cost of a range scan over
	// an LSM store (SSTable merge + tombstone filtering); MRP-Store scans
	// an in-memory sorted map instead. This is the modeling assumption
	// behind Cassandra losing workload E in Figure 4 (documented in
	// DESIGN.md).
	ScanPenalty time.Duration
	// DiskScale scales the async commit-log device.
	DiskScale float64
}

// Cassandra is the running comparator cluster.
type Cassandra struct {
	cfg     CassandraConfig
	servers [][]*cassServer // [partition][replica]
	part    *store.HashPartitioner
	nextID  atomic.Uint64
}

type cassServer struct {
	*server
	data  *store.SortedMap
	disk  *storage.Disk
	peers []transport.Addr
	pen   time.Duration
}

// NewCassandra deploys the comparator.
func NewCassandra(cfg CassandraConfig) *Cassandra {
	if cfg.Partitions <= 0 {
		cfg.Partitions = 3
	}
	if cfg.Replicas <= 0 {
		cfg.Replicas = 3
	}
	if cfg.DiskScale <= 0 {
		cfg.DiskScale = 1
	}
	c := &Cassandra{cfg: cfg, part: store.NewHashPartitioner(cfg.Partitions)}
	addr := func(p, r int) transport.Addr {
		return transport.Addr(fmt.Sprintf("cass-p%d-r%d", p, r))
	}
	for p := 0; p < cfg.Partitions; p++ {
		var row []*cassServer
		for r := 0; r < cfg.Replicas; r++ {
			var peers []transport.Addr
			for rr := 0; rr < cfg.Replicas; rr++ {
				if rr != r {
					peers = append(peers, addr(p, rr))
				}
			}
			cs := &cassServer{
				data:  store.NewSortedMap(),
				disk:  storage.NewDisk(storage.SSD.Scale(cfg.DiskScale)),
				peers: peers,
				pen:   cfg.ScanPenalty,
			}
			cs.server = newServer(cfg.Net.Endpoint(addr(p, r)), cs.handle)
			row = append(row, cs)
		}
		c.servers = append(c.servers, row)
	}
	return c
}

func (s *cassServer) handle(_ transport.Addr, cmd smr.Command) {
	o, err := decodeOp(cmd.Op)
	if err != nil {
		return
	}
	switch o.kind {
	case opRead:
		// Consistency ONE: serve the local copy, whatever it is.
		v, ok := s.data.Get(o.key)
		if !ok {
			s.reply(cmd, []byte{statusNotFound})
			return
		}
		s.reply(cmd, append([]byte{statusOK}, v...))
	case opWrite:
		// Apply locally (memtable + async commit log), replicate in the
		// background, acknowledge immediately: no ordering, no quorum.
		s.data.Put(o.key, append([]byte(nil), o.value...))
		s.disk.AsyncWrite(len(o.value))
		rep := op{kind: opReplicate, key: o.key, value: o.value}
		for _, peer := range s.peers {
			_ = s.ep.Send(peer, &msg.Proposal{Payload: smr.Command{Op: rep.encode()}.Encode()})
		}
		s.reply(cmd, []byte{statusOK})
	case opReplicate:
		s.data.Put(o.key, append([]byte(nil), o.value...))
		s.disk.AsyncWrite(len(o.value))
	case opScan:
		entries := s.data.Scan(o.key, "", o.limit)
		if s.pen > 0 {
			time.Sleep(time.Duration(len(entries)) * s.pen)
		}
		out := make([]kvEntry, len(entries))
		for i, e := range entries {
			out[i] = kvEntry{key: e.Key, value: e.Value}
		}
		s.reply(cmd, encodeEntries(out))
	}
}

// Stop shuts the cluster down.
func (c *Cassandra) Stop() {
	for _, row := range c.servers {
		for _, s := range row {
			s.stop()
		}
	}
}

// NewClient creates a client. Clients route by key hash to a coordinator
// replica of the owning partition.
func (c *Cassandra) NewClient() *CassandraClient {
	id := 3_000_000 + c.nextID.Add(1)
	ep := c.cfg.Net.Endpoint(transport.Addr(fmt.Sprintf("cass-client-%d", id)))
	proposers := make(map[msg.RingID][]transport.Addr)
	for p := 0; p < c.cfg.Partitions; p++ {
		var addrs []transport.Addr
		for r := 0; r < c.cfg.Replicas; r++ {
			addrs = append(addrs, transport.Addr(fmt.Sprintf("cass-p%d-r%d", p, r)))
		}
		proposers[msg.RingID(p+1)] = addrs
	}
	// Writes are token-aware (routed to the key's primary replica, which
	// then replicates asynchronously); reads rotate across replicas — the
	// standard consistency-ONE access pattern.
	primaries := make(map[msg.RingID][]transport.Addr)
	for p := 0; p < c.cfg.Partitions; p++ {
		primaries[msg.RingID(p+1)] = []transport.Addr{transport.Addr(fmt.Sprintf("cass-p%d-r0", p))}
	}
	epW := c.cfg.Net.Endpoint(transport.Addr(fmt.Sprintf("cass-client-%d-w", id)))
	return &CassandraClient{
		smr:   smr.NewClient(smr.ClientConfig{ID: id, Endpoint: ep, Proposers: proposers, Timeout: 20 * time.Second}),
		write: smr.NewClient(smr.ClientConfig{ID: id + 500_000, Endpoint: epW, Proposers: primaries, Timeout: 20 * time.Second}),
		part:  c.part,
	}
}

// CassandraClient accesses the comparator with the Figure 4 operations.
// Reads may return stale values: the comparator is eventually consistent
// by design.
type CassandraClient struct {
	smr   *smr.Client // reads/scans: any replica
	write *smr.Client // writes: the key's primary
	part  *store.HashPartitioner
}

// ErrNotFound mirrors the store error for missing keys.
var ErrNotFound = errors.New("baseline: key not found")

// Close releases the client.
func (c *CassandraClient) Close() {
	c.smr.Close()
	c.write.Close()
}

func (c *CassandraClient) ringFor(key string) msg.RingID {
	return msg.RingID(c.part.PartitionOf(key) + 1)
}

// Read returns the (possibly stale) value of k.
func (c *CassandraClient) Read(k string) ([]byte, error) {
	raw, err := c.smr.Execute(c.ringFor(k), op{kind: opRead, key: k}.encode())
	if err != nil {
		return nil, err
	}
	if len(raw) < 1 || raw[0] == statusNotFound {
		return nil, ErrNotFound
	}
	return raw[1:], nil
}

// Update writes k=v (upsert; Cassandra has no read-before-write updates).
func (c *CassandraClient) Update(k string, v []byte) error { return c.put(k, v) }

// Insert writes k=v.
func (c *CassandraClient) Insert(k string, v []byte) error { return c.put(k, v) }

func (c *CassandraClient) put(k string, v []byte) error {
	_, err := c.write.Execute(c.ringFor(k), op{kind: opWrite, key: k, value: v}.encode())
	return err
}

// Scan fans out to every partition and merges (token-range scatter).
func (c *CassandraClient) Scan(from string, limit int) ([]store.Entry, error) {
	var all []store.Entry
	for p := 0; p < c.part.N(); p++ {
		raw, err := c.smr.Execute(msg.RingID(p+1), op{kind: opScan, key: from, limit: limit}.encode())
		if err != nil {
			return nil, err
		}
		entries, err := decodeEntries(raw)
		if err != nil {
			return nil, err
		}
		for _, e := range entries {
			all = append(all, store.Entry{Key: e.key, Value: e.value})
		}
	}
	sortEntries(all)
	if limit > 0 && len(all) > limit {
		all = all[:limit]
	}
	return all, nil
}

// ReadModifyWrite reads then writes (two round trips, like YCSB's RMW).
func (c *CassandraClient) ReadModifyWrite(k string, v []byte) error {
	if _, err := c.Read(k); err != nil && err != ErrNotFound {
		return err
	}
	return c.put(k, v)
}

func sortEntries(es []store.Entry) {
	for i := 1; i < len(es); i++ {
		for j := i; j > 0 && es[j-1].Key > es[j].Key; j-- {
			es[j-1], es[j] = es[j], es[j-1]
		}
	}
}

// Preload installs initial records on every replica of the owning
// partition (database initialization before the measured run).
func (c *Cassandra) Preload(entries []store.Entry) {
	for _, e := range entries {
		p := c.part.PartitionOf(e.Key)
		for _, s := range c.servers[p] {
			s.data.Put(e.Key, e.Value)
		}
	}
}
