package baseline

import (
	"fmt"
	"sync/atomic"
	"time"

	"mrp/internal/msg"
	"mrp/internal/netsim"
	"mrp/internal/smr"
	"mrp/internal/storage"
	"mrp/internal/store"
	"mrp/internal/transport"
)

// MySQLConfig parametrizes the single-server comparator (Figure 4 deploys
// MySQL on one machine, no replication, no partitioning).
type MySQLConfig struct {
	Net *netsim.Network
	// DiskScale scales the redo-log device (group commit on an SSD).
	DiskScale float64
	// GroupCommitEvery batches redo flushes (default 1 ms), modeling
	// InnoDB group commit.
	GroupCommitEvery time.Duration
	// OpsPerSec is the single node's query-processing capacity (parsing,
	// optimizer, buffer pool — work the simulator's bare map does not
	// perform). Default 22000, calibrated so the comparator lands where
	// the paper's Figure 4 places MySQL: near MRP-Store, below Cassandra.
	OpsPerSec int
}

// MySQL is the running comparator.
type MySQL struct {
	cfg    MySQLConfig
	srv    *mysqlServer
	nextID atomic.Uint64
}

type mysqlServer struct {
	*server
	data *store.SortedMap
	disk *storage.Disk
	// cpu is a rate limiter modeling single-node query capacity.
	cpu *storage.Disk
	// pendingBytes accumulates redo since the last group commit.
	pendingBytes int
	lastFlush    time.Time
	every        time.Duration
}

// NewMySQL deploys the comparator.
func NewMySQL(cfg MySQLConfig) *MySQL {
	if cfg.DiskScale <= 0 {
		cfg.DiskScale = 1
	}
	if cfg.GroupCommitEvery <= 0 {
		cfg.GroupCommitEvery = time.Millisecond
	}
	if cfg.OpsPerSec <= 0 {
		cfg.OpsPerSec = 22000
	}
	m := &MySQL{cfg: cfg}
	s := &mysqlServer{
		data: store.NewSortedMap(),
		disk: storage.NewDisk(storage.SSD.Scale(cfg.DiskScale)),
		// One "byte" per op against a bandwidth of OpsPerSec models a
		// fluid CPU with a small run queue.
		cpu:       storage.NewDisk(storage.DiskModel{Bandwidth: int64(cfg.OpsPerSec), BufferBytes: 64}),
		lastFlush: time.Now(),
		every:     cfg.GroupCommitEvery,
	}
	s.server = newServer(cfg.Net.Endpoint("mysql-0"), s.handle)
	m.srv = s
	return m
}

func (s *mysqlServer) handle(_ transport.Addr, cmd smr.Command) {
	o, err := decodeOp(cmd.Op)
	if err != nil {
		return
	}
	s.cpu.AsyncWrite(1) // query-processing service time
	switch o.kind {
	case opRead:
		v, ok := s.data.Get(o.key)
		if !ok {
			s.reply(cmd, []byte{statusNotFound})
			return
		}
		s.reply(cmd, append([]byte{statusOK}, v...))
	case opWrite:
		s.data.Put(o.key, append([]byte(nil), o.value...))
		// Group commit: redo accumulates and the flush cost is paid once
		// per interval by whoever crosses it.
		s.pendingBytes += len(o.value)
		if time.Since(s.lastFlush) >= s.every {
			s.disk.SyncWrite(s.pendingBytes)
			s.pendingBytes = 0
			s.lastFlush = time.Now()
		}
		s.reply(cmd, []byte{statusOK})
	case opScan:
		entries := s.data.Scan(o.key, "", o.limit)
		out := make([]kvEntry, len(entries))
		for i, e := range entries {
			out[i] = kvEntry{key: e.Key, value: e.Value}
		}
		s.reply(cmd, encodeEntries(out))
	}
}

// Stop shuts the server down.
func (m *MySQL) Stop() { m.srv.stop() }

// NewClient creates a client.
func (m *MySQL) NewClient() *MySQLClient {
	id := 4_000_000 + m.nextID.Add(1)
	ep := m.cfg.Net.Endpoint(transport.Addr(fmt.Sprintf("mysql-client-%d", id)))
	return &MySQLClient{
		smr: smr.NewClient(smr.ClientConfig{
			ID:        id,
			Endpoint:  ep,
			Proposers: map[msg.RingID][]transport.Addr{1: {"mysql-0"}},
			Timeout:   20 * time.Second,
		}),
	}
}

// MySQLClient accesses the comparator.
type MySQLClient struct {
	smr *smr.Client
}

// Close releases the client.
func (c *MySQLClient) Close() { c.smr.Close() }

// Read returns the value of k.
func (c *MySQLClient) Read(k string) ([]byte, error) {
	raw, err := c.smr.Execute(1, op{kind: opRead, key: k}.encode())
	if err != nil {
		return nil, err
	}
	if len(raw) < 1 || raw[0] == statusNotFound {
		return nil, ErrNotFound
	}
	return raw[1:], nil
}

// Update writes k=v.
func (c *MySQLClient) Update(k string, v []byte) error { return c.write(k, v) }

// Insert writes k=v.
func (c *MySQLClient) Insert(k string, v []byte) error { return c.write(k, v) }

func (c *MySQLClient) write(k string, v []byte) error {
	_, err := c.smr.Execute(1, op{kind: opWrite, key: k, value: v}.encode())
	return err
}

// Scan returns up to limit entries from key 'from'.
func (c *MySQLClient) Scan(from string, limit int) ([]store.Entry, error) {
	raw, err := c.smr.Execute(1, op{kind: opScan, key: from, limit: limit}.encode())
	if err != nil {
		return nil, err
	}
	entries, err := decodeEntries(raw)
	if err != nil {
		return nil, err
	}
	out := make([]store.Entry, len(entries))
	for i, e := range entries {
		out[i] = store.Entry{Key: e.key, Value: e.value}
	}
	return out, nil
}

// ReadModifyWrite reads then writes.
func (c *MySQLClient) ReadModifyWrite(k string, v []byte) error {
	if _, err := c.Read(k); err != nil && err != ErrNotFound {
		return err
	}
	return c.write(k, v)
}

// Preload installs initial records (database initialization before the
// measured run).
func (m *MySQL) Preload(entries []store.Entry) {
	for _, e := range entries {
		m.srv.data.Put(e.Key, e.Value)
	}
}
