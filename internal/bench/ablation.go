package bench

import (
	"time"

	"mrp/internal/storage"
)

// AblationRow compares a design choice on/off.
type AblationRow struct {
	Name      string
	Variant   string
	OpsPerSec float64
	MeanLat   time.Duration
}

// AblationBatching measures the effect of coordinator batching on small
// (512 B) requests over synchronous disks — the regime where one stable
// write per instance makes batching pay (it is the design choice behind
// the 32 KB packet batching in the paper's service experiments).
func AblationBatching(opts Options) []AblationRow {
	off := fig3Point(opts, storage.SyncHDD, 512)
	on := fig3PointBatched(opts, storage.SyncHDD, 512, 32<<10)
	return []AblationRow{
		{Name: "batching", Variant: "off (1 proposal/instance)",
			OpsPerSec: off.ThroughputMbps * 1e6 / 8 / 512, MeanLat: off.MeanLatency},
		{Name: "batching", Variant: "on (32 KB instances)",
			OpsPerSec: on.ThroughputMbps * 1e6 / 8 / 512, MeanLat: on.MeanLatency},
	}
}

// AblationTransportBatch measures transport-level write coalescing
// (transport.BatchPolicy) on small in-memory requests — the regime where
// per-packet overhead, not storage, bounds throughput. Unlike ring-level
// batching it groups whole protocol messages (Phase2, Decision, forwarded
// Proposals) into one packet per backlog, the "bigger packets before being
// forwarded" of the paper's Section 4.
func AblationTransportBatch(opts Options) []AblationRow {
	off := fig3Run(opts, storage.InMemory, 512, 0, false)
	on := fig3Run(opts, storage.InMemory, 512, 0, true)
	return []AblationRow{
		{Name: "transport batch", Variant: "off (1 packet/message)",
			OpsPerSec: off.ThroughputMbps * 1e6 / 8 / 512, MeanLat: off.MeanLatency},
		{Name: "transport batch", Variant: "on (coalesced packets)",
			OpsPerSec: on.ThroughputMbps * 1e6 / 8 / 512, MeanLat: on.MeanLatency},
	}
}

// AblationSkip measures rate leveling's effect on a two-ring learner with
// one idle ring: with skips the busy ring flows; without, the merge stalls
// (multicast delivery approaches zero).
func AblationSkip(opts Options) []AblationRow {
	withSkips := skipMergeThroughput(opts, true)
	withoutSkips := skipMergeThroughput(opts, false)
	return []AblationRow{
		{Name: "rate leveling", Variant: "on (Δ=5ms)", OpsPerSec: withSkips},
		{Name: "rate leveling", Variant: "off", OpsPerSec: withoutSkips},
	}
}
