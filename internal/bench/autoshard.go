package bench

import (
	"fmt"
	"io"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"mrp/internal/autoshard"
	"mrp/internal/metrics"
	"mrp/internal/netsim"
	"mrp/internal/rebalance"
	"mrp/internal/registry"
	"mrp/internal/storage"
	"mrp/internal/store"
	"mrp/internal/ycsb"
)

// AutoshardResult is the auto-sharding timeline: windowed throughput and
// latency under a skewed-then-shifting workload with a load-driven
// controller in charge of the topology. The claim completes the
// elasticity story: nobody calls SplitPartition or MergePartitions — the
// controller watches per-partition load through the stats surface, splits
// the hot partition at the median key of its range once the skew holds,
// and merges the cold split-born partition back (retiring its ring) after
// the skew shifts away, without flapping.
type AutoshardResult struct {
	Samples []metrics.Sample
	Events  []metrics.Event
	// SteadyOps is the pre-split throughput under the skew; ShiftedOps the
	// steady state after the skew moved and the topology settled back.
	SteadyOps, ShiftedOps float64
	// Splits and Merges are the controller-initiated reconfiguration
	// counts (1 and 1 for a clean run: no flapping).
	Splits, Merges int
	// HotRate is the calibrated hot-partition op rate the thresholds were
	// derived from.
	HotRate float64
}

// Autoshard measures the auto-sharding controller end to end: a
// two-partition range-partitioned MRP-Store serves a closed-loop workload
// whose heat sits on the top quarter of the key space; after 45% of the
// run the skew shifts to the bottom half at a moderate rate. The
// controller (thresholds calibrated against the measured hot rate) must
// split the hot partition mid-run and merge it back after the shift.
func Autoshard(opts Options) AutoshardResult {
	total := time.Duration(10 * opts.PointSeconds * float64(time.Second))
	shiftAt := total * 45 / 100
	window := total / 25

	net := netsim.New(
		netsim.WithUniformLatency(50*time.Microsecond),
		netsim.WithBandwidth(10<<30/8),
	)
	defer net.Close()
	records := opts.Records
	d, err := store.Deploy(store.DeployConfig{
		Net:         net,
		Partitions:  2,
		Replicas:    3,
		GlobalRing:  true,
		Partitioner: store.NewRangePartitioner([]string{ycsb.Key(records / 2)}),
		StorageMode: storage.InMemory,
		// Rate leveling at the paper's λ (Section 4), as in the other
		// elasticity scenarios.
		SkipInterval: 5 * time.Millisecond,
		SkipRate:     9000,
		RetryTimeout: 300 * time.Millisecond,
	})
	if err != nil {
		panic(err)
	}
	defer d.Stop()
	reg := registry.New()
	if err := d.PublishSchema(reg); err != nil {
		panic(err)
	}
	var recs []store.Entry
	for _, o := range ycsb.Load(ycsb.Config{RecordCount: records, ValueSize: 100}) {
		recs = append(recs, store.Entry{Key: o.Key, Value: o.Value})
	}
	d.Preload(recs)

	tl := metrics.NewTimeline(window)
	coord, err := rebalance.New(rebalance.Config{
		Store:         d,
		Registry:      reg,
		ChunkInterval: 200 * time.Microsecond, // migration budget: trickle, don't saturate
		OnStep:        func(s string) { tl.Mark(time.Now(), s) },
	})
	if err != nil {
		panic(err)
	}
	defer coord.Close()

	threads := opts.Clients / 4
	if threads < 4 {
		threads = 4
	}
	var (
		shifted atomic.Bool
		pace    atomic.Int64 // ns between ops after the shift
	)
	deadline := time.Now().Add(total)
	var wg sync.WaitGroup
	for ti := 0; ti < threads; ti++ {
		wg.Add(1)
		go func(ti int) {
			defer wg.Done()
			cl := d.NewClient()
			defer cl.Close()
			rng := rand.New(rand.NewSource(int64(ti)))
			for time.Now().Before(deadline) {
				var k string
				if !shifted.Load() {
					// Skew: all heat on the top quarter (partition 1).
					k = ycsb.Key(records*3/4 + rng.Intn(records/4))
				} else {
					// Shifted: moderate, paced load on the bottom half
					// (partition 0); the split-born partition goes cold.
					k = ycsb.Key(rng.Intn(records / 2))
					if p := pace.Load(); p > 0 {
						time.Sleep(time.Duration(p))
					}
				}
				start := time.Now()
				var err error
				if rng.Intn(2) == 0 {
					_, err = cl.Read(k)
				} else {
					err = cl.Update(k, []byte("autoshard"))
				}
				if err != nil {
					continue
				}
				tl.RecordOp(time.Now(), time.Since(start))
			}
		}(ti)
	}

	// Calibrate the thresholds against this host's actual hot rate, then
	// hand the topology to the controller.
	time.Sleep(total * 5 / 100)
	before, _ := d.PartitionStats(1)
	calib := total * 10 / 100
	time.Sleep(calib)
	after, _ := d.PartitionStats(1)
	hotRate := float64(after.Ops-before.Ops) / calib.Seconds()

	interval := window / 3
	if interval < 20*time.Millisecond {
		interval = 20 * time.Millisecond
	}
	if interval > 100*time.Millisecond {
		interval = 100 * time.Millisecond
	}
	ctrl, err := autoshard.New(autoshard.Config{
		Store:          d,
		Rebalancer:     coord,
		Registry:       reg,
		Interval:       interval,
		SplitOpsPerSec: 0.75 * hotRate,
		MergeOpsPerSec: 0.10 * hotRate,
		ViolationTicks: 3,
		Cooldown:       total / 20,
		SplitProtect:   total / 8,
		MaxPartitions:  3,
		OnAction:       func(a string) { tl.Mark(time.Now(), "autoshard: "+a) },
	})
	if err != nil {
		panic(err)
	}
	ctrl.Start()

	// Shift the skew mid-run.
	go func() {
		time.Sleep(time.Until(deadline) - (total - shiftAt))
		pace.Store(int64(float64(threads) / (0.3 * hotRate) * float64(time.Second)))
		shifted.Store(true)
		tl.Mark(time.Now(), "skew shifts to bottom half")
	}()

	wg.Wait()
	ctrl.Stop()

	res := AutoshardResult{HotRate: hotRate}
	res.Splits, res.Merges = ctrl.Splits(), ctrl.Merges()
	samples := tl.Samples()
	res.Samples = samples
	res.Events = tl.Events()
	shiftIdx := int(shiftAt / window)
	res.SteadyOps = meanThroughput(samples, 2, shiftIdx)
	res.ShiftedOps = meanThroughput(samples, shiftIdx+3, len(samples)-1)
	opts.logf("autoshard steady=%.0f shifted=%.0f ops/s (hot rate %.0f, %d splits, %d merges)",
		res.SteadyOps, res.ShiftedOps, hotRate, res.Splits, res.Merges)
	return res
}

// RenderAutoshard prints the auto-sharding timeline.
func RenderAutoshard(w io.Writer, res AutoshardResult) {
	fmt.Fprintln(w, "Autoshard — load-driven split and merge under a shifting skew")
	fmt.Fprintf(w, "steady=%.0f ops/s  shifted=%.0f ops/s  (calibrated hot rate %.0f ops/s, %d controller splits, %d controller merges)\n",
		res.SteadyOps, res.ShiftedOps, res.HotRate, res.Splits, res.Merges)
	fmt.Fprintln(w, "events:")
	for _, e := range res.Events {
		fmt.Fprintf(w, "  %8s  %s\n", e.At.Round(10*time.Millisecond), e.Label)
	}
	fmt.Fprintln(w, "timeline (window, ops/s, mean latency):")
	for _, s := range res.Samples {
		fmt.Fprintf(w, "  %8s %10.0f %12s\n",
			s.At.Round(10*time.Millisecond), s.Throughput, s.MeanLat.Round(100*time.Microsecond))
	}
}
