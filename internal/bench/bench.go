// Package bench is the experiment harness: one driver per table/figure of
// the paper's evaluation (Section 8), producing the same rows and series
// the paper reports.
//
//	Fig3     Multi-Ring Paxos baseline: storage modes × request sizes
//	Fig4     MRP-Store vs Cassandra-like vs MySQL-like under YCSB A-F
//	Fig5     dLog vs Bookkeeper-like, 1 KB synchronous appends
//	Fig6     dLog vertical scalability: 1-5 rings, one disk each
//	Fig7     MRP-Store horizontal scalability across 4 EC2 regions
//	Fig8     impact of replica failure and recovery over time
//	Rebalance impact of a live partition split (elastic rebalancing)
//	Merge    split → merge round trip with ring retirement (bidirectional
//	         elasticity)
//	Autoshard load-driven controller splitting a hot partition and merging
//	         it back after the skew shifts (auto-sharding policy)
//
// Absolute numbers differ from the paper (the substrate is a simulator on
// one host, not a 32-core cluster), but the shapes — who wins, by what
// factor, where the crossovers are — are the reproduction target; see
// EXPERIMENTS.md.
package bench

import (
	"fmt"
	"io"
	"os"
	"strconv"
	"time"
)

// Options control experiment scale so the full suite fits in CI while the
// same code can run much longer measurements.
type Options struct {
	// PointSeconds is the measured duration per data point.
	PointSeconds float64
	// Scale compresses simulated time: WAN latencies and disk service
	// times are multiplied by Scale (<1 means faster and smaller).
	Scale float64
	// Clients is the client-thread count for the YCSB comparison
	// (the paper uses 100).
	Clients int
	// Records is the preloaded record count for the YCSB comparison.
	Records int
	// Out receives progress lines (nil = silent).
	Out io.Writer
}

// FromEnv builds options from environment variables, falling back to CI
// scale: MRP_BENCH_SECONDS, MRP_BENCH_SCALE, MRP_BENCH_CLIENTS,
// MRP_BENCH_RECORDS.
func FromEnv() Options {
	o := Options{
		PointSeconds: envFloat("MRP_BENCH_SECONDS", 1.5),
		Scale:        envFloat("MRP_BENCH_SCALE", 0.25),
		Clients:      int(envFloat("MRP_BENCH_CLIENTS", 40)),
		Records:      int(envFloat("MRP_BENCH_RECORDS", 5000)),
	}
	return o
}

func envFloat(name string, def float64) float64 {
	if s := os.Getenv(name); s != "" {
		if v, err := strconv.ParseFloat(s, 64); err == nil && v > 0 {
			return v
		}
	}
	return def
}

func (o Options) point() time.Duration {
	return time.Duration(o.PointSeconds * float64(time.Second))
}

func (o Options) logf(format string, args ...any) {
	if o.Out != nil {
		fmt.Fprintf(o.Out, format+"\n", args...)
	}
}
