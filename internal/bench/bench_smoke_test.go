package bench

import (
	"bytes"
	"os"
	"strings"
	"testing"

	"mrp/internal/ycsb"
)

// tiny returns the smallest useful options for a smoke test.
func tiny() Options {
	return Options{PointSeconds: 0.3, Scale: 0.05, Clients: 6, Records: 300}
}

func TestFig3Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	opts := tiny()
	row := fig3Point(opts, Fig3Modes[4], 512) // in-memory
	if row.ThroughputMbps <= 0 {
		t.Fatalf("no throughput: %+v", row)
	}
	if row.MeanLatency <= 0 {
		t.Fatal("no latency recorded")
	}
	var buf bytes.Buffer
	RenderFig3(&buf, []Fig3Row{row})
	if !strings.Contains(buf.String(), "In Memory") {
		t.Fatalf("render output:\n%s", buf.String())
	}
}

func TestFig3SyncSlowerThanMemory(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	opts := tiny()
	mem := fig3Point(opts, Fig3Modes[4], 2048)  // in-memory
	sync := fig3Point(opts, Fig3Modes[0], 2048) // sync HDD
	if sync.ThroughputMbps >= mem.ThroughputMbps {
		t.Fatalf("sync HDD (%.1f Mbps) should be slower than in-memory (%.1f Mbps)",
			sync.ThroughputMbps, mem.ThroughputMbps)
	}
	if sync.MeanLatency <= mem.MeanLatency {
		t.Fatalf("sync HDD latency (%v) should exceed in-memory (%v)",
			sync.MeanLatency, mem.MeanLatency)
	}
}

func TestFig4Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	opts := tiny()
	for _, sys := range Fig4Systems {
		row := fig4Point(opts, sys, 'A')
		if row.OpsPerSec <= 0 {
			t.Fatalf("%s: no throughput", sys)
		}
		if row.Errors > uint64(row.OpsPerSec*opts.PointSeconds/10) {
			t.Fatalf("%s: too many errors: %d", sys, row.Errors)
		}
	}
}

func TestFig5Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	opts := tiny()
	dl := fig5DLog(opts, 10)
	bk := fig5Bookkeeper(opts, 10)
	if dl.OpsPerSec <= 0 || bk.OpsPerSec <= 0 {
		t.Fatalf("throughput: dlog=%.0f bk=%.0f", dl.OpsPerSec, bk.OpsPerSec)
	}
	var buf bytes.Buffer
	RenderFig5(&buf, []Fig5Row{dl, bk})
	if !strings.Contains(buf.String(), "dLog") {
		t.Fatal("render")
	}
}

func TestFig6Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	if raceEnabled {
		t.Skip("vertical-scaling ratio is timing-sensitive under the race detector")
	}
	opts := tiny()
	r1 := fig6Point(opts, 1)
	r2 := fig6Point(opts, 2)
	if r1.AggOpsPerSec <= 0 || r2.AggOpsPerSec <= 0 {
		t.Fatalf("throughput: %v %v", r1.AggOpsPerSec, r2.AggOpsPerSec)
	}
	// Two rings (two disks) must beat one ring meaningfully.
	if r2.AggOpsPerSec < r1.AggOpsPerSec*1.2 {
		t.Fatalf("no vertical scaling: 1 ring=%.0f, 2 rings=%.0f", r1.AggOpsPerSec, r2.AggOpsPerSec)
	}
}

func TestFig7Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	if raceEnabled {
		t.Skip("WAN scaling threshold is timing-sensitive under the race detector")
	}
	opts := tiny()
	opts.PointSeconds = 0.8 // WAN batches need a few round trips
	r1 := fig7Point(opts, 1)
	r2 := fig7Point(opts, 2)
	if r1.AggOpsPerSec <= 0 || r2.AggOpsPerSec <= 0 {
		t.Fatalf("throughput: %v %v", r1.AggOpsPerSec, r2.AggOpsPerSec)
	}
	if r2.AggOpsPerSec < r1.AggOpsPerSec*1.2 {
		t.Fatalf("no horizontal scaling: 1 region=%.0f, 2 regions=%.0f",
			r1.AggOpsPerSec, r2.AggOpsPerSec)
	}
}

func TestFig8Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	if raceEnabled {
		t.Skip("compressed recovery timeline is timing-sensitive under the race detector")
	}
	opts := tiny()
	opts.PointSeconds = 0.6 // total timeline = 6s
	res := Fig8(opts)
	if res.SteadyOps <= 0 {
		t.Fatal("no steady-state throughput")
	}
	// With ring leases on, every reply comes from the partition's holder, so
	// the post-recovery windows ride one replica's latency instead of the
	// min over three — under a loaded machine the compressed timeline can
	// end before that settles. Remeasure a failing run: fail only if the
	// recovered state is missing three runs in a row.
	for attempt := 1; res.RecoveredOps <= res.SteadyOps/4; attempt++ {
		if attempt == 3 {
			t.Fatalf("no recovery: steady=%.0f recovered=%.0f", res.SteadyOps, res.RecoveredOps)
		}
		t.Logf("attempt %d: steady=%.0f recovered=%.0f; remeasuring", attempt, res.SteadyOps, res.RecoveredOps)
		res = Fig8(opts)
	}
	// All five paper events must be present, plus the live split that
	// makes the crashed replica a split-partition one. "5:" only appears
	// when RecoverReplica succeeded — split-partition recovery is expected
	// to work, not to error.
	want := []string{"0:", "1:", "2:", "3:", "4:", "5:"}
	for _, prefix := range want {
		found := false
		for _, e := range res.Events {
			if strings.HasPrefix(e.Label, prefix) {
				found = true
			}
		}
		if !found {
			t.Fatalf("missing event %q in %v", prefix, res.Events)
		}
	}
}

func TestRebalanceSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	if raceEnabled {
		t.Skip("compressed split timeline is timing-sensitive under the race detector")
	}
	opts := tiny()
	opts.PointSeconds = 0.5 // total timeline = 3s
	res := Rebalance(opts)
	if res.SteadyOps <= 0 {
		t.Fatal("no steady-state throughput")
	}
	if res.RecoveredOps <= res.SteadyOps/4 {
		t.Fatalf("throughput did not recover after the split: steady=%.0f recovered=%.0f",
			res.SteadyOps, res.RecoveredOps)
	}
	if res.SplitDuration <= 0 || res.MovedKeys <= 0 {
		t.Fatalf("split did not run: %+v", res)
	}
	// All protocol steps must be marked on the timeline.
	for _, step := range []string{"provision", "prepare", "copy", "activate", "publish", "commit"} {
		found := false
		for _, e := range res.Events {
			if e.Label == step {
				found = true
			}
		}
		if !found {
			t.Fatalf("missing step %q in %v", step, res.Events)
		}
	}
	var buf bytes.Buffer
	RenderRebalance(&buf, res)
	if !strings.Contains(buf.String(), "live partition split") {
		t.Fatalf("render output:\n%s", buf.String())
	}
}

func TestAutoshardSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	if raceEnabled {
		t.Skip("compressed controller timeline is timing-sensitive under the race detector (the autoshard acceptance test covers -race)")
	}
	opts := tiny()
	opts.PointSeconds = 0.6 // total timeline = 6s
	res := Autoshard(opts)
	if res.HotRate <= 0 || res.SteadyOps <= 0 {
		t.Fatalf("no load measured: %+v", res)
	}
	// The controller must split under the skew and merge after the shift —
	// exactly once each (no flapping).
	if res.Splits != 1 || res.Merges != 1 {
		t.Fatalf("controller splits=%d merges=%d, want 1 and 1\nevents: %v",
			res.Splits, res.Merges, res.Events)
	}
	// Client throughput never collapses to zero for a full window: the
	// controller's migrations freeze only the moving range.
	for i, s := range res.Samples {
		if i == 0 || !s.Complete {
			continue
		}
		if s.Throughput == 0 {
			t.Fatalf("window %d (%v): throughput hit zero\nevents: %v", i, s.At, res.Events)
		}
	}
	var buf bytes.Buffer
	RenderAutoshard(&buf, res)
	if !strings.Contains(buf.String(), "load-driven split") {
		t.Fatalf("render output:\n%s", buf.String())
	}
}

func TestAblationSkipSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	opts := tiny()
	rows := AblationSkip(opts)
	on, off := rows[0].OpsPerSec, rows[1].OpsPerSec
	if off*5 > on {
		t.Fatalf("merge without skips should collapse: on=%.0f off=%.0f", on, off)
	}
}

func TestOptionsFromEnv(t *testing.T) {
	t.Setenv("MRP_BENCH_SECONDS", "2.5")
	t.Setenv("MRP_BENCH_SCALE", "0.5")
	o := FromEnv()
	if o.PointSeconds != 2.5 || o.Scale != 0.5 {
		t.Fatalf("opts = %+v", o)
	}
	t.Setenv("MRP_BENCH_SECONDS", "garbage")
	o = FromEnv()
	if o.PointSeconds != 1.5 {
		t.Fatalf("default not applied: %+v", o)
	}
}

func TestTxnSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	opts := tiny()
	multi := txnPoint(opts, TxnMulticast, 2, 16)
	global := txnPoint(opts, TxnGlobalAll, 2, 16)
	for _, r := range []TxnRow{multi, global} {
		if r.OpsPerSec <= 0 {
			t.Fatalf("%s: no throughput", r.Mode)
		}
		if r.P50 <= 0 || r.P99 < r.P50 {
			t.Fatalf("%s: implausible quantiles p50=%v p99=%v", r.Mode, r.P50, r.P99)
		}
		if r.Errors > uint64(r.OpsPerSec*opts.PointSeconds/10) {
			t.Fatalf("%s: too many errors: %d", r.Mode, r.Errors)
		}
	}
	var buf bytes.Buffer
	RenderTxn(&buf, []TxnRow{multi, global})
	if !strings.Contains(buf.String(), "multicast") {
		t.Fatalf("render output:\n%s", buf.String())
	}
	path := t.TempDir() + "/BENCH_txn.json"
	if err := WriteTxnJSON(path, []TxnRow{multi, global}); err != nil {
		t.Fatal(err)
	}
	if b, err := os.ReadFile(path); err != nil || !strings.Contains(string(b), "\"ops_per_sec\"") {
		t.Fatalf("json artifact: %v\n%s", err, b)
	}
	if raceEnabled {
		t.Log("race detector enabled; skipping throughput comparison")
		return
	}
	// The whole point of the minimal ring set: with >=2 partitions the
	// single-partition majority of the workload orders on independent
	// rings, so multicast routing must out-run the order-everything-
	// globally baseline. A sub-second point is at the mercy of whatever
	// the rest of the suite is doing to the machine, so remeasure a
	// losing pair: fail only if the baseline wins three pairs in a row.
	for attempt := 1; multi.OpsPerSec <= global.OpsPerSec; attempt++ {
		if attempt == 3 {
			t.Fatalf("multicast (%.0f txn/s) should beat the global-ring baseline (%.0f txn/s)",
				multi.OpsPerSec, global.OpsPerSec)
		}
		t.Logf("attempt %d: multicast %.0f <= global %.0f txn/s; remeasuring",
			attempt, multi.OpsPerSec, global.OpsPerSec)
		multi = txnPoint(opts, TxnMulticast, 2, 16)
		global = txnPoint(opts, TxnGlobalAll, 2, 16)
	}
}

func TestReadsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	opts := tiny()
	local := readsPoint(opts, ReadsLocal, ycsb.WorkloadC)
	ordered := readsPoint(opts, ReadsOrdered, ycsb.WorkloadC)
	for _, r := range []ReadsRow{local, ordered} {
		if r.OpsPerSec <= 0 {
			t.Fatalf("%s: no throughput", r.Mode)
		}
		if r.P50 <= 0 || r.P99 < r.P50 {
			t.Fatalf("%s: implausible quantiles p50=%v p99=%v", r.Mode, r.P50, r.P99)
		}
		if r.Errors > uint64(r.OpsPerSec*opts.PointSeconds/10) {
			t.Fatalf("%s: too many errors: %d", r.Mode, r.Errors)
		}
	}
	// The fast path must actually be exercised — and only where leases are
	// on. A local point with zero lease reads means every read silently
	// fell back to ordering, which is exactly the regression this test is
	// here to catch.
	if local.LeaseReads == 0 {
		t.Fatalf("local mode served no lease reads: %+v", local)
	}
	if ordered.LeaseReads != 0 {
		t.Fatalf("ordered mode served lease reads: %+v", ordered)
	}
	var buf bytes.Buffer
	RenderReads(&buf, []ReadsRow{local, ordered})
	if !strings.Contains(buf.String(), "ring leases") {
		t.Fatalf("render output:\n%s", buf.String())
	}
	path := t.TempDir() + "/BENCH_reads.json"
	if err := WriteReadsJSON(path, []ReadsRow{local, ordered}); err != nil {
		t.Fatal(err)
	}
	if b, err := os.ReadFile(path); err != nil || !strings.Contains(string(b), "\"lease_reads\"") {
		t.Fatalf("json artifact: %v\n%s", err, b)
	}
	if raceEnabled {
		t.Log("race detector enabled; skipping throughput comparison")
		return
	}
	// The acceptance claim: a lease read is one request/response against
	// the holder, an ordered read is a consensus instance plus the merge —
	// local must run at least 5x the ordered throughput with a lower p50.
	// Sub-second points are noisy under a loaded machine, so remeasure a
	// losing pair: fail only if the lease path loses three pairs in a row.
	for attempt := 1; local.OpsPerSec < 5*ordered.OpsPerSec || local.P50 >= ordered.P50; attempt++ {
		if attempt == 3 {
			t.Fatalf("local reads (%.0f op/s, p50=%v) should be >= 5x ordered (%.0f op/s, p50=%v) with lower p50",
				local.OpsPerSec, local.P50, ordered.OpsPerSec, ordered.P50)
		}
		t.Logf("attempt %d: local %.0f op/s p50=%v vs ordered %.0f op/s p50=%v; remeasuring",
			attempt, local.OpsPerSec, local.P50, ordered.OpsPerSec, ordered.P50)
		local = readsPoint(opts, ReadsLocal, ycsb.WorkloadC)
		ordered = readsPoint(opts, ReadsOrdered, ycsb.WorkloadC)
	}
}

func TestLatencySmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	// Saturation with enough workers per shared client that batches really
	// form, and enough disk cost per instance (sync SSD at quarter scale)
	// that amortizing it is measurable.
	opts := Options{PointSeconds: 0.3, Scale: 0.25, Clients: 64}
	batched := latencyPoint(opts, LatencyBatched, 16, 0)
	unbatched := latencyPoint(opts, LatencyUnbatched, 16, 0)
	paced := latencyPoint(opts, LatencyCoupled, 16, 1000)
	for _, r := range []LatencyRow{batched, unbatched, paced} {
		if r.OpsPerSec <= 0 {
			t.Fatalf("%s: no throughput", r.Mode)
		}
		if r.P50 <= 0 || r.P99 < r.P50 || r.P999 < r.P99 {
			t.Fatalf("%s: implausible quantiles p50=%v p99=%v p999=%v", r.Mode, r.P50, r.P99, r.P999)
		}
		if r.Errors > uint64(r.OpsPerSec*opts.PointSeconds/10) {
			t.Fatalf("%s: too many errors: %d", r.Mode, r.Errors)
		}
	}
	var buf bytes.Buffer
	RenderLatency(&buf, []LatencyRow{batched, unbatched, paced})
	for _, want := range []string{"batched", "unbatched", "sat", "1000"} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("render output missing %q:\n%s", want, buf.String())
		}
	}
	path := t.TempDir() + "/BENCH_latency.json"
	if err := WriteLatencyJSON(path, []LatencyRow{batched, unbatched, paced}); err != nil {
		t.Fatal(err)
	}
	if b, err := os.ReadFile(path); err != nil || !strings.Contains(string(b), "\"p999_us\"") {
		t.Fatalf("json artifact: %v\n%s", err, b)
	}
	if raceEnabled {
		t.Log("race detector enabled; skipping throughput comparison")
		return
	}
	// The acceptance claim: at saturation, command batching amortizes one
	// consensus instance (and its synchronous log write) over many
	// commands, so batched throughput must be at least twice unbatched.
	// Sub-second points are noisy under a loaded machine, so remeasure a
	// losing pair: fail only if batching loses three pairs in a row.
	for attempt := 1; batched.OpsPerSec < 2*unbatched.OpsPerSec; attempt++ {
		if attempt == 3 {
			t.Fatalf("batched (%.0f op/s) should be >= 2x unbatched (%.0f op/s) at saturation",
				batched.OpsPerSec, unbatched.OpsPerSec)
		}
		t.Logf("attempt %d: batched %.0f < 2x unbatched %.0f op/s; remeasuring",
			attempt, batched.OpsPerSec, unbatched.OpsPerSec)
		batched = latencyPoint(opts, LatencyBatched, 16, 0)
		unbatched = latencyPoint(opts, LatencyUnbatched, 16, 0)
	}
}
