package bench

import (
	"encoding/binary"
	"fmt"
	"sync"
	"time"

	"mrp/internal/metrics"
	"mrp/internal/msg"
	"mrp/internal/netsim"
	"mrp/internal/ringpaxos"
	"mrp/internal/storage"
	"mrp/internal/transport"
)

// Fig3Row is one point of Figure 3: a (storage mode, request size) pair
// with the four metrics the paper reports.
type Fig3Row struct {
	Mode storage.Mode
	Size int
	// ThroughputMbps is the delivered payload rate in megabits/s
	// (top-left graph).
	ThroughputMbps float64
	// MeanLatency is the propose-to-deliver latency (top-right graph).
	MeanLatency time.Duration
	// CoordProxyMBps is the coordinator's message-processing volume in
	// MB/s; the paper's coordinator-CPU graph (bottom-left) is proxied by
	// this figure since goroutine CPU cannot be attributed directly.
	CoordProxyMBps float64
	// LatencyCDF is the latency distribution (bottom-right graph reports
	// it for 32 KB requests).
	LatencyCDF []metrics.CDFPoint
	// FracUnder10ms backs the paper's claim that >90% of 32 KB sync-disk
	// requests complete within 10 ms.
	FracUnder10ms float64
}

// Fig3Sizes are the request sizes of the paper's sweep.
var Fig3Sizes = []int{512, 2048, 8192, 32768}

// Fig3Modes are the five storage modes of the paper's sweep.
var Fig3Modes = []storage.Mode{
	storage.SyncHDD, storage.SyncSSD, storage.AsyncHDD, storage.AsyncSSD, storage.InMemory,
}

// Fig3 reproduces the Multi-Ring Paxos baseline (Section 8.3.1): one ring,
// three processes that are all proposer+acceptor+learner, ten proposer
// threads, ring batching disabled, request sizes 512 B to 32 KB across the
// five storage modes.
func Fig3(opts Options) []Fig3Row {
	var rows []Fig3Row
	for _, mode := range Fig3Modes {
		for _, size := range Fig3Sizes {
			row := fig3Point(opts, mode, size)
			opts.logf("fig3 %-16s %6dB  %8.1f Mbps  %8s mean", mode, size,
				row.ThroughputMbps, row.MeanLatency.Round(10*time.Microsecond))
			rows = append(rows, row)
		}
	}
	return rows
}

// fig3Point measures one (mode, size) point with ring batching disabled,
// as in the paper's baseline.
func fig3Point(opts Options, mode storage.Mode, size int) Fig3Row {
	return fig3PointBatched(opts, mode, size, 0)
}

// fig3PointBatched is fig3Point with configurable coordinator batching
// (used by the batching ablation).
func fig3PointBatched(opts Options, mode storage.Mode, size, batchBytes int) Fig3Row {
	return fig3Run(opts, mode, size, batchBytes, false)
}

// fig3Run is the general driver: ring-level batching via batchBytes,
// transport-level write coalescing via transportBatch. The Figure 3
// baseline runs with both off, as in the paper ("batching is disabled");
// the ablations turn each on separately.
func fig3Run(opts Options, mode storage.Mode, size, batchBytes int, transportBatch bool) Fig3Row {
	const (
		nodes   = 3
		threads = 10 // "Proposers have 10 threads" (Section 8.3.1)
	)
	net := netsim.New(
		netsim.WithUniformLatency(50*time.Microsecond), // 0.1 ms RTT switch
		netsim.WithBandwidth(10<<30/8),                 // 10 Gbps NICs
		netsim.WithBatch(transport.BatchPolicy{Disabled: !transportBatch}),
	)
	defer net.Close()

	peers := make([]ringpaxos.Peer, nodes)
	for i := range peers {
		peers[i] = ringpaxos.Peer{
			ID:    msg.NodeID(i + 1),
			Addr:  transport.Addr(fmt.Sprintf("fig3-n%d", i)),
			Roles: ringpaxos.RoleProposer | ringpaxos.RoleAcceptor | ringpaxos.RoleLearner,
		}
	}
	procs := make([]*ringpaxos.Process, nodes)
	routers := make([]*transport.Router, nodes)
	for i := range peers {
		ep := net.Endpoint(peers[i].Addr)
		proc, err := ringpaxos.New(ringpaxos.Config{
			Ring:          1,
			Self:          peers[i].ID,
			Peers:         peers,
			Coordinator:   peers[0].ID,
			Log:           storage.NewLogOnDisk(mode, storage.NewDisk(mode.DiskFor().Scale(opts.Scale))),
			BatchMaxBytes: batchBytes, // 0: "Batching is disabled in the ring"
			BatchDelay:    500 * time.Microsecond,
			// Generous: the LAN is loss-free, and premature re-proposals
			// would double the sync-disk load exactly when it is slowest.
			RetryTimeout: 2 * time.Second,
			DeliverBuf:   1 << 15,
		}, ep)
		if err != nil {
			panic(err)
		}
		router := transport.NewRouter(ep)
		router.Ring(1, proc.In())
		router.Start()
		procs[i] = proc
		routers[i] = router
	}
	for _, p := range procs {
		p.Start()
	}
	defer func() {
		for i := range procs {
			procs[i].Stop()
			routers[i].Stop()
		}
	}()

	// Per-node delivery dispatch: payloads carry (thread, threadSeq) so the
	// proposing thread can be woken when its request is learned.
	type key struct {
		thread uint16
		seq    uint64
	}
	var mu sync.Mutex
	waiters := make(map[key]chan struct{})
	notify := func(k key) {
		mu.Lock()
		ch, ok := waiters[k]
		if ok {
			delete(waiters, k)
		}
		mu.Unlock()
		if ok {
			close(ch)
		}
	}
	stopDrain := make(chan struct{})
	var drainWG sync.WaitGroup
	for _, p := range procs {
		drainWG.Add(1)
		go func(p *ringpaxos.Process) {
			defer drainWG.Done()
			for {
				select {
				case d := <-p.Decisions():
					for _, e := range d.Value.Batch {
						if len(e.Data) >= 10 {
							notify(key{
								thread: binary.BigEndian.Uint16(e.Data),
								seq:    binary.BigEndian.Uint64(e.Data[2:]),
							})
						}
					}
				case <-stopDrain:
					return
				}
			}
		}(p)
	}

	hist := &metrics.Histogram{}
	counter := metrics.NewCounter()
	coordBase := procs[0].Stats().BytesIn.Load() + procs[0].Stats().BytesOut.Load()

	deadline := time.Now().Add(opts.point())
	var wg sync.WaitGroup
	for t := 0; t < threads; t++ {
		wg.Add(1)
		go func(t int) {
			defer wg.Done()
			payload := make([]byte, size)
			binary.BigEndian.PutUint16(payload, uint16(t))
			node := procs[t%nodes]
			var seq uint64
			for time.Now().Before(deadline) {
				seq++
				binary.BigEndian.PutUint64(payload[2:], seq)
				k := key{thread: uint16(t), seq: seq}
				ch := make(chan struct{})
				mu.Lock()
				waiters[k] = ch
				mu.Unlock()
				start := time.Now()
				buf := make([]byte, size)
				copy(buf, payload)
				if err := node.Propose(buf); err != nil {
					return
				}
				select {
				case <-ch:
					hist.Record(time.Since(start))
					counter.Add(1, uint64(size))
				case <-time.After(10 * time.Second):
					return
				}
			}
		}(t)
	}
	wg.Wait()
	close(stopDrain)
	drainWG.Wait()

	elapsed := opts.PointSeconds
	coordBytes := procs[0].Stats().BytesIn.Load() + procs[0].Stats().BytesOut.Load() - coordBase
	_, mbps := counter.Rates()
	return Fig3Row{
		Mode:           mode,
		Size:           size,
		ThroughputMbps: mbps,
		MeanLatency:    hist.Mean(),
		CoordProxyMBps: float64(coordBytes) / 1e6 / elapsed,
		LatencyCDF:     hist.CDF(),
		// Unscaled threshold: the host's ~2 ms timer floor dominates scaled
		// sync writes, so run Figure 3 at -scale 1 for latency fidelity
		// (see EXPERIMENTS.md).
		FracUnder10ms: hist.FractionBelow(10 * time.Millisecond),
	}
}
