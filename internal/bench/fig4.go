package bench

import (
	"sync"
	"time"

	"mrp/internal/baseline"
	"mrp/internal/metrics"
	"mrp/internal/netsim"
	"mrp/internal/storage"
	"mrp/internal/store"
	"mrp/internal/ycsb"
)

// Fig4System names the compared systems.
type Fig4System string

// The four systems of Figure 4.
const (
	SysCassandra Fig4System = "Cassandra-like"
	SysMRPIndep  Fig4System = "MRP-Store (indep. rings)"
	SysMRPStore  Fig4System = "MRP-Store"
	SysMySQL     Fig4System = "MySQL-like"
)

// Fig4Systems lists the systems in the paper's bar order.
var Fig4Systems = []Fig4System{SysCassandra, SysMRPIndep, SysMRPStore, SysMySQL}

// Fig4Row is one (system, workload) bar of Figure 4's top graph, plus the
// per-operation latencies of the bottom graph (populated for workload F).
type Fig4Row struct {
	System    Fig4System
	Workload  ycsb.Workload
	OpsPerSec float64
	// Workload F latency breakdown (bottom graph).
	ReadLat   time.Duration
	UpdateLat time.Duration
	RMWLat    time.Duration
	Errors    uint64
}

// kvIface is the operation surface all four systems expose.
type kvIface interface {
	Read(k string) ([]byte, error)
	Update(k string, v []byte) error
	Insert(k string, v []byte) error
	Scan(from string, limit int) ([]store.Entry, error)
	ReadModifyWrite(k string, v []byte) error
	Close()
}

// mrpKV adapts store.Client to kvIface.
type mrpKV struct{ c *store.Client }

func (a mrpKV) Read(k string) ([]byte, error)               { return a.c.Read(k) }
func (a mrpKV) Update(k string, v []byte) error             { return a.c.Update(k, v) }
func (a mrpKV) Insert(k string, v []byte) error             { return a.c.Insert(k, v) }
func (a mrpKV) Scan(f string, l int) ([]store.Entry, error) { return a.c.Scan(f, "", l) }
func (a mrpKV) ReadModifyWrite(k string, v []byte) error {
	if _, err := a.c.Read(k); err != nil && err != store.ErrNotFound {
		return err
	}
	return a.c.Update(k, v)
}
func (a mrpKV) Close() { a.c.Close() }

// Fig4 reproduces the YCSB comparison (Section 8.3.2): the four systems
// under workloads A-F with a preloaded database.
func Fig4(opts Options) []Fig4Row {
	var rows []Fig4Row
	for _, sys := range Fig4Systems {
		for _, w := range ycsb.Workloads {
			row := fig4Point(opts, sys, w)
			opts.logf("fig4 %-26s %v  %9.0f ops/s", sys, w, row.OpsPerSec)
			rows = append(rows, row)
		}
	}
	return rows
}

// fig4Point builds one system, preloads it, and drives one workload.
func fig4Point(opts Options, sys Fig4System, w ycsb.Workload) Fig4Row {
	net := netsim.New(
		netsim.WithUniformLatency(50*time.Microsecond),
		netsim.WithBandwidth(10<<30/8),
	)
	defer net.Close()

	records := make([]store.Entry, 0, opts.Records)
	for _, r := range ycsb.Load(ycsb.Config{RecordCount: opts.Records, ValueSize: 100}) {
		records = append(records, store.Entry{Key: r.Key, Value: r.Value})
	}

	var newClient func() kvIface
	switch sys {
	case SysCassandra:
		c := baseline.NewCassandra(baseline.CassandraConfig{
			Net:         net,
			Partitions:  3,
			Replicas:    3,
			ScanPenalty: 30 * time.Microsecond,
			DiskScale:   opts.Scale,
		})
		defer c.Stop()
		c.Preload(records)
		newClient = func() kvIface { return cassKV{c.NewClient()} }
	case SysMySQL:
		m := baseline.NewMySQL(baseline.MySQLConfig{Net: net, DiskScale: opts.Scale})
		defer m.Stop()
		m.Preload(records)
		newClient = func() kvIface { return mysqlKV{m.NewClient()} }
	case SysMRPStore, SysMRPIndep:
		d, err := store.Deploy(store.DeployConfig{
			Net:          net,
			Partitions:   3,
			Replicas:     3,
			GlobalRing:   sys == SysMRPStore,
			StorageMode:  storage.AsyncHDD, // "all of which write asynchronously to disk"
			DiskScale:    opts.Scale,
			SkipInterval: 5 * time.Millisecond, // Δ = 5 ms (local config)
			SkipRate:     9000,                 // λ = 9000 instances/s
			RetryTimeout: 300 * time.Millisecond,
		})
		if err != nil {
			panic(err)
		}
		defer d.Stop()
		d.Preload(records)
		newClient = func() kvIface { return mrpKV{d.NewClient()} }
	}

	var (
		ops     metrics.Counter
		errs    metrics.Counter
		readH   metrics.Histogram
		updateH metrics.Histogram
		rmwH    metrics.Histogram
	)
	deadline := time.Now().Add(opts.point())
	var wg sync.WaitGroup
	for t := 0; t < opts.Clients; t++ {
		wg.Add(1)
		go func(t int) {
			defer wg.Done()
			cl := newClient()
			defer cl.Close()
			gen := ycsb.New(ycsb.Config{
				Workload:    w,
				RecordCount: opts.Records,
				ValueSize:   100,
				Seed:        int64(t) + 1,
			})
			for time.Now().Before(deadline) {
				o := gen.Next()
				start := time.Now()
				var err error
				switch o.Kind {
				case ycsb.OpRead:
					_, err = cl.Read(o.Key)
					readH.Record(time.Since(start))
				case ycsb.OpUpdate:
					err = cl.Update(o.Key, o.Value)
					updateH.Record(time.Since(start))
				case ycsb.OpInsert:
					err = cl.Insert(o.Key, o.Value)
				case ycsb.OpScan:
					_, err = cl.Scan(o.Key, o.ScanLen)
				case ycsb.OpReadModifyWrite:
					err = cl.ReadModifyWrite(o.Key, o.Value)
					rmwH.Record(time.Since(start))
				}
				if err != nil && err != store.ErrNotFound && err != baseline.ErrNotFound {
					errs.Add(1, 0)
					continue
				}
				ops.Add(1, 0)
			}
		}(t)
	}
	wg.Wait()
	return Fig4Row{
		System:    sys,
		Workload:  w,
		OpsPerSec: float64(ops.Ops()) / opts.PointSeconds,
		ReadLat:   readH.Mean(),
		UpdateLat: updateH.Mean(),
		RMWLat:    rmwH.Mean(),
		Errors:    errs.Ops(),
	}
}

// cassKV and mysqlKV adapt the baseline clients to kvIface.
type cassKV struct{ c *baseline.CassandraClient }

func (a cassKV) Read(k string) ([]byte, error)               { return a.c.Read(k) }
func (a cassKV) Update(k string, v []byte) error             { return a.c.Update(k, v) }
func (a cassKV) Insert(k string, v []byte) error             { return a.c.Insert(k, v) }
func (a cassKV) Scan(f string, l int) ([]store.Entry, error) { return a.c.Scan(f, l) }
func (a cassKV) ReadModifyWrite(k string, v []byte) error    { return a.c.ReadModifyWrite(k, v) }
func (a cassKV) Close()                                      { a.c.Close() }

type mysqlKV struct{ c *baseline.MySQLClient }

func (a mysqlKV) Read(k string) ([]byte, error)               { return a.c.Read(k) }
func (a mysqlKV) Update(k string, v []byte) error             { return a.c.Update(k, v) }
func (a mysqlKV) Insert(k string, v []byte) error             { return a.c.Insert(k, v) }
func (a mysqlKV) Scan(f string, l int) ([]store.Entry, error) { return a.c.Scan(f, l) }
func (a mysqlKV) ReadModifyWrite(k string, v []byte) error    { return a.c.ReadModifyWrite(k, v) }
func (a mysqlKV) Close()                                      { a.c.Close() }
