package bench

import (
	"sync"
	"time"

	"mrp/internal/baseline"
	"mrp/internal/dlog"
	"mrp/internal/metrics"
	"mrp/internal/netsim"
	"mrp/internal/storage"
)

// Fig5Row is one point of Figure 5: (system, client threads) with
// throughput and mean latency for 1 KB synchronous appends.
type Fig5Row struct {
	System    string
	Clients   int
	OpsPerSec float64
	MeanLat   time.Duration
}

// Fig5Clients is the client-thread sweep (the paper sweeps 1..200).
var Fig5Clients = []int{1, 10, 50, 100, 200}

// Fig5 reproduces the dLog vs Bookkeeper comparison (Section 8.3.3): both
// systems durably journal 1 KB appends on the same disk model; dLog gets
// durability from the ring's synchronous acceptor writes (one write per
// batched consensus instance), the Bookkeeper-like ensemble from
// aggressively batched journal commits.
func Fig5(opts Options) []Fig5Row {
	var rows []Fig5Row
	for _, n := range Fig5Clients {
		r := fig5DLog(opts, n)
		opts.logf("fig5 %-16s %4d clients  %8.0f ops/s  %8s", r.System, n, r.OpsPerSec, r.MeanLat.Round(time.Millisecond))
		rows = append(rows, r)
	}
	for _, n := range Fig5Clients {
		r := fig5Bookkeeper(opts, n)
		opts.logf("fig5 %-16s %4d clients  %8.0f ops/s  %8s", r.System, n, r.OpsPerSec, r.MeanLat.Round(time.Millisecond))
		rows = append(rows, r)
	}
	return rows
}

func fig5DLog(opts Options, clients int) Fig5Row {
	net := netsim.New(
		netsim.WithUniformLatency(50*time.Microsecond),
		netsim.WithBandwidth(10<<30/8),
	)
	defer net.Close()
	// "The dLog service uses two rings with three acceptors per ring;
	// learners subscribe to both rings."
	d, err := dlog.Deploy(dlog.DeployConfig{
		Net:           net,
		Logs:          2,
		Servers:       3,
		SyncWrites:    false, // durability comes from the sync acceptor log
		StorageMode:   storage.SyncHDD,
		DiskModel:     storage.HDD,
		DiskScale:     opts.Scale,
		BatchMaxBytes: 32 << 10, // one sync journal write per 32 KB instance
		BatchDelay:    2 * time.Millisecond,
		SkipInterval:  5 * time.Millisecond,
		SkipRate:      9000,
		RetryTimeout:  500 * time.Millisecond,
	})
	if err != nil {
		panic(err)
	}
	defer d.Stop()

	hist := &metrics.Histogram{}
	counter := metrics.NewCounter()
	payload := make([]byte, 1024)
	deadline := time.Now().Add(opts.point())
	var wg sync.WaitGroup
	for t := 0; t < clients; t++ {
		wg.Add(1)
		go func(t int) {
			defer wg.Done()
			cl := d.NewClient()
			defer cl.Close()
			log := dlog.LogID(t % 2)
			for time.Now().Before(deadline) {
				start := time.Now()
				if _, err := cl.Append(log, payload); err != nil {
					return
				}
				hist.Record(time.Since(start))
				counter.Add(1, 1024)
			}
		}(t)
	}
	wg.Wait()
	return Fig5Row{
		System:    "dLog",
		Clients:   clients,
		OpsPerSec: float64(counter.Ops()) / opts.PointSeconds,
		MeanLat:   hist.Mean(),
	}
}

func fig5Bookkeeper(opts Options, clients int) Fig5Row {
	net := netsim.New(
		netsim.WithUniformLatency(50*time.Microsecond),
		netsim.WithBandwidth(10<<30/8),
	)
	defer net.Close()
	bk := baseline.NewBookkeeper(baseline.BookkeeperConfig{
		Net:       net,
		DiskModel: storage.HDD,
		DiskScale: opts.Scale,
		// Aggressive batching: large chunks or a long timer, whichever
		// first. This is a software policy, not hardware, so it does NOT
		// scale with opts.Scale — it is what produces Bookkeeper's large
		// latency in the paper.
		FlushBytes: 1 << 20,
		FlushEvery: 200 * time.Millisecond, // calibrated to the 150-250 ms append latency Figure 5 shows for Bookkeeper
	})
	defer bk.Stop()

	hist := &metrics.Histogram{}
	counter := metrics.NewCounter()
	payload := make([]byte, 1024)
	deadline := time.Now().Add(opts.point())
	var wg sync.WaitGroup
	for t := 0; t < clients; t++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			cl := bk.NewClient()
			defer cl.Close()
			for time.Now().Before(deadline) {
				start := time.Now()
				if err := cl.Append(payload); err != nil {
					return
				}
				hist.Record(time.Since(start))
				counter.Add(1, 1024)
			}
		}()
	}
	wg.Wait()
	return Fig5Row{
		System:    "Bookkeeper-like",
		Clients:   clients,
		OpsPerSec: float64(counter.Ops()) / opts.PointSeconds,
		MeanLat:   hist.Mean(),
	}
}
