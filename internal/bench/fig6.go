package bench

import (
	"sync"
	"time"

	"mrp/internal/dlog"
	"mrp/internal/metrics"
	"mrp/internal/netsim"
	"mrp/internal/storage"
)

// Fig6Row is one point of Figure 6: k synchronized rings (each with its
// own disk), aggregate and per-ring append throughput, and the latency
// distribution for writes to disk 1.
type Fig6Row struct {
	Rings        int
	AggOpsPerSec float64
	PerRing      []float64
	// ScalingPct is throughput relative to a linear extrapolation of the
	// previous row (the percentages printed in the paper's figure).
	ScalingPct float64
	// P50 and P99 of disk-1 append latency (the paper plots the CDF).
	P50, P99 time.Duration
	CDF      []metrics.CDFPoint
}

// Fig6 reproduces dLog vertical scalability (Section 8.4.1): the number of
// rings grows 1..5, each ring bound to its own disk, learners subscribe to
// all k rings plus a common ring, 1 KB appends batched into 32 KB packets.
// Throughput should grow near-linearly because each added ring brings its
// own disk and its own coordinator pipeline.
func Fig6(opts Options) []Fig6Row {
	var rows []Fig6Row
	var prev float64
	for k := 1; k <= 5; k++ {
		row := fig6Point(opts, k)
		if prev > 0 {
			expected := prev * float64(k) / float64(k-1)
			row.ScalingPct = 100 * row.AggOpsPerSec / expected
		} else {
			row.ScalingPct = 100
		}
		prev = row.AggOpsPerSec
		opts.logf("fig6 %d rings  %8.0f ops/s (%.0f%%)  p50=%s", k, row.AggOpsPerSec,
			row.ScalingPct, row.P50.Round(time.Millisecond))
		rows = append(rows, row)
	}
	return rows
}

// fig6Disk is the per-ring device: bandwidth low enough that the disk — not
// the simulator's CPU — is the binding constraint, preserving the paper's
// bottleneck structure. Scaled by opts.Scale like every other device.
var fig6Disk = storage.DiskModel{
	SyncLatency: 4 * time.Millisecond,
	Bandwidth:   8 << 20, // 8 MB/s per disk at scale 1
	BufferBytes: 256 << 10,
}

func fig6Point(opts Options, k int) Fig6Row {
	net := netsim.New(
		netsim.WithUniformLatency(50*time.Microsecond),
		netsim.WithBandwidth(10<<30/8),
	)
	defer net.Close()
	d, err := dlog.Deploy(dlog.DeployConfig{
		Net:           net,
		Logs:          k,
		Servers:       3,
		SyncWrites:    false,
		StorageMode:   storage.AsyncHDD, // "asynchronous mode"
		DiskModel:     fig6Disk,
		DiskScale:     opts.Scale,
		BatchMaxBytes: 32 << 10, // "batched into 32 KByte packets by a proxy"
		BatchDelay:    2 * time.Millisecond,
		SkipInterval:  5 * time.Millisecond, // Δ = 5 ms
		SkipRate:      9000,                 // λ
		RetryTimeout:  500 * time.Millisecond,
	})
	if err != nil {
		panic(err)
	}
	defer d.Stop()

	perRing := make([]*metrics.Counter, k)
	for i := range perRing {
		perRing[i] = metrics.NewCounter()
	}
	disk1Hist := &metrics.Histogram{}
	payload := make([]byte, 1024)
	deadline := time.Now().Add(opts.point())

	// The workload is append-only; enough client threads per ring to keep
	// each disk saturated.
	const threadsPerRing = 8
	var wg sync.WaitGroup
	for ring := 0; ring < k; ring++ {
		for t := 0; t < threadsPerRing; t++ {
			wg.Add(1)
			go func(ring int) {
				defer wg.Done()
				cl := d.NewClient()
				defer cl.Close()
				for time.Now().Before(deadline) {
					start := time.Now()
					if _, err := cl.Append(dlog.LogID(ring), payload); err != nil {
						return
					}
					if ring == 0 {
						disk1Hist.Record(time.Since(start))
					}
					perRing[ring].Add(1, 1024)
				}
			}(ring)
		}
	}
	wg.Wait()

	row := Fig6Row{
		Rings: k,
		P50:   disk1Hist.Quantile(0.50),
		P99:   disk1Hist.Quantile(0.99),
		CDF:   disk1Hist.CDF(),
	}
	for _, c := range perRing {
		ops := float64(c.Ops()) / opts.PointSeconds
		row.PerRing = append(row.PerRing, ops)
		row.AggOpsPerSec += ops
	}
	return row
}
