package bench

import (
	"fmt"
	"sync"
	"time"

	"mrp/internal/metrics"
	"mrp/internal/netsim"
	"mrp/internal/storage"
	"mrp/internal/store"
	"mrp/internal/transport"
)

// Fig7Regions are the four EC2 regions of the paper's global deployment,
// in deployment order.
var Fig7Regions = []string{"eu-west-1", "us-west-1", "us-east-1", "us-west-2"}

// Fig7Row is one point of Figure 7: the first k regions active, aggregate
// and per-region update throughput, and the latency distribution measured
// in us-west-2.
type Fig7Row struct {
	Regions      int
	AggOpsPerSec float64
	PerRegion    []float64
	ScalingPct   float64
	// P50/P99 of command latency at the us-west-2 client (the paper plots
	// this CDF); zero until us-west-2 joins the deployment.
	P50, P99 time.Duration
	CDF      []metrics.CDFPoint
}

// Fig7 reproduces MRP-Store horizontal scalability (Section 8.4.2): one
// partition (ring) per region with three replicas, all replicas also in a
// global ring, clients sending 1 KB update commands to their local
// partition batched into 32 KB packets.
//
// Each region's clients offer a fixed load; the paper's claim is that "the
// local throughput of a region is not influenced by other regions", so the
// reproduction target is (a) every region sustains its offered load as
// regions are added (aggregate grows ~linearly) and (b) latency stays
// bounded. A region failing to sustain its load under the global ring's
// WAN coupling would show up as collapsing per-region throughput and
// exploding latency.
func Fig7(opts Options) []Fig7Row {
	var rows []Fig7Row
	var prev float64
	for k := 1; k <= len(Fig7Regions); k++ {
		row := fig7Point(opts, k)
		if prev > 0 {
			expected := prev * float64(k) / float64(k-1)
			row.ScalingPct = 100 * row.AggOpsPerSec / expected
		} else {
			row.ScalingPct = 100
		}
		prev = row.AggOpsPerSec
		opts.logf("fig7 %d regions  %8.0f ops/s (%.0f%%)  p50@us-west-2=%s",
			k, row.AggOpsPerSec, row.ScalingPct, row.P50.Round(time.Millisecond))
		rows = append(rows, row)
	}
	return rows
}

func fig7Point(opts Options, k int) Fig7Row {
	regions := Fig7Regions[:k]
	net := netsim.New(
		netsim.WithLatency(netsim.WANLatency(500*time.Microsecond, opts.Scale)),
		netsim.WithBandwidth(1<<30/8), // 1 Gbps WAN paths
		netsim.WithInboxSize(1<<14),
	)
	defer net.Close()

	// Partition p lives entirely in region p; keys are region-prefixed so
	// clients write only to their local partition.
	bounds := make([]string, 0, k-1)
	for p := 1; p < k; p++ {
		bounds = append(bounds, fmt.Sprintf("p%d", p))
	}
	d, err := store.Deploy(store.DeployConfig{
		Net:         net,
		Partitions:  k,
		Replicas:    3,
		GlobalRing:  true,
		Partitioner: store.NewRangePartitioner(bounds),
		StorageMode: storage.AsyncHDD,
		DiskScale:   opts.Scale,
		AddrFor: func(p, r int) transport.Addr {
			return transport.Addr(fmt.Sprintf("%s/store-p%d-r%d", regions[p], p, r))
		},
		BatchMaxBytes: 32 << 10,
		BatchDelay:    4 * time.Millisecond,
		// WAN configuration (Section 8.2): Δ = 20 ms, λ = 2000.
		SkipInterval: time.Duration(float64(20*time.Millisecond) * opts.Scale),
		SkipRate:     2000,
		RetryTimeout: 2 * time.Second,
	})
	if err != nil {
		panic(err)
	}
	defer d.Stop()

	perRegion := make([]*metrics.Counter, k)
	for i := range perRegion {
		perRegion[i] = metrics.NewCounter()
	}
	latHist := &metrics.Histogram{} // measured at us-west-2 (paper) when present
	latRegion := -1
	for i, r := range regions {
		if r == "us-west-2" {
			latRegion = i
		}
	}
	if latRegion < 0 {
		latRegion = 0 // measure at the first region until us-west-2 joins
	}

	// "In each region there is ... one client running on a separate
	// machine": a multi-threaded client per region, 1 KB commands batched
	// into 32 KB packets (32 entries per WriteBatch). Each thread offers a
	// paced load; a thread whose batch latency exceeds its pacing interval
	// falls behind, which is how failure to scale would manifest.
	const threadsPerRegion = 48
	const entriesPerBatch = 32
	// The pacing interval exceeds the worst-case WAN command latency
	// (global-ring merge wait plus cross-region circulation), so a healthy
	// region sustains its offered load at any k; ~240 batches/s/region.
	pace := 200 * time.Millisecond
	value := make([]byte, 1024)
	deadline := time.Now().Add(opts.point())
	var wg sync.WaitGroup
	var clientSeq uint64
	var mu sync.Mutex
	for p := 0; p < k; p++ {
		for t := 0; t < threadsPerRegion; t++ {
			wg.Add(1)
			go func(p, t int) {
				defer wg.Done()
				mu.Lock()
				clientSeq++
				id := 7_000_000 + clientSeq
				mu.Unlock()
				ep := net.Endpoint(transport.Addr(fmt.Sprintf("%s/client-%d", regions[p], id)))
				cl := d.NewClientAt(ep, id)
				defer cl.Close()
				batchNo := 0
				for time.Now().Before(deadline) {
					next := time.Now().Add(pace)
					batch := make([]store.Entry, entriesPerBatch)
					for i := range batch {
						batch[i] = store.Entry{
							Key:   fmt.Sprintf("p%d-t%02d-%08d-%02d", p, t, batchNo, i),
							Value: value,
						}
					}
					batchNo++
					start := time.Now()
					n, err := cl.WriteBatch(batch)
					if err != nil {
						return
					}
					if p == latRegion {
						latHist.Record(time.Since(start))
					}
					perRegion[p].Add(uint64(n), uint64(n)*1024)
					if wait := time.Until(next); wait > 0 {
						time.Sleep(wait)
					}
				}
			}(p, t)
		}
	}
	wg.Wait()

	row := Fig7Row{
		Regions: k,
		P50:     latHist.Quantile(0.50),
		P99:     latHist.Quantile(0.99),
		CDF:     latHist.CDF(),
	}
	for _, c := range perRegion {
		ops := float64(c.Ops()) / opts.PointSeconds
		row.PerRegion = append(row.PerRegion, ops)
		row.AggOpsPerSec += ops
	}
	return row
}
