package bench

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"mrp/internal/metrics"
	"mrp/internal/msg"
	"mrp/internal/netsim"
	"mrp/internal/rebalance"
	"mrp/internal/storage"
	"mrp/internal/store"
)

// Fig8Result is the recovery timeline of Figure 8: windowed throughput and
// latency with the paper's five event markers — (1) replica terminated,
// (2) replica checkpoint, (3) acceptor log trimming, (4) replica recovery,
// (5) re-proposals due to recovery traffic. The reproduction goes one step
// beyond the paper's static deployment: the timeline opens with a live
// partition split ("0:live split"), and the replica that is terminated and
// later recovered belongs to the partition that split created — recovery
// is schema-driven, so an elastic deployment keeps its fault tolerance.
type Fig8Result struct {
	Samples []metrics.Sample
	Events  []metrics.Event
	// SteadyOps is the pre-failure throughput; DipOps is the minimum
	// throughput in the window around recovery; RecoveredOps is the
	// post-recovery steady state. The paper's claim is a short dip and a
	// return to steady state.
	SteadyOps, DipOps, RecoveredOps float64
}

// Fig8 reproduces the recovery experiment (Section 8.5) on an elastic
// deployment: a range-partitioned store (async disk) under a fixed
// fraction of peak load is split live early in the run; a replica of the
// new partition is terminated, the survivors keep checkpointing (allowing
// acceptor log trimming), and the replica later recovers by fetching a
// remote checkpoint — or replaying its runtime-subscribed ring from the
// partition's birth state — and replaying the suffix from the acceptors.
// The paper's 300 s timeline is compressed by opts.Scale.
func Fig8(opts Options) Fig8Result {
	// Timeline: total T, split at T*0.15, kill at T*0.3, recover at T*0.8 —
	// the paper's 300 s run terminates a replica early and restarts it at
	// 240 s; the split is added ahead of the kill so the crashed replica is
	// one the deployment grew at runtime.
	total := time.Duration(10 * opts.PointSeconds * float64(time.Second))
	splitAt := total * 15 / 100
	killAt := total * 3 / 10
	recoverAt := total * 8 / 10
	window := total / 30

	net := netsim.New(
		netsim.WithUniformLatency(50*time.Microsecond),
		netsim.WithBandwidth(10<<30/8),
	)
	defer net.Close()
	d, err := store.Deploy(store.DeployConfig{
		Net:          net,
		Partitions:   1,
		Replicas:     3,
		Partitioner:  store.NewRangePartitioner(nil),
		StorageMode:  storage.AsyncHDD,
		DiskScale:    opts.Scale,
		RetryTimeout: 300 * time.Millisecond,
		// Replicas checkpoint periodically; acceptors trim after a quorum
		// of checkpoints.
		CheckpointEvery: total / 8,
		TrimInterval:    total / 10,
	})
	if err != nil {
		panic(err)
	}
	defer d.Stop()

	tl := metrics.NewTimeline(window)
	// Mark trim events on the timeline.
	d.TrimCoordinators()[0].OnTrim(func(msg.Instance) {
		tl.Mark(time.Now(), "3:acceptor log trimming")
	})
	coord, err := rebalance.New(rebalance.Config{Store: d})
	if err != nil {
		panic(err)
	}
	defer coord.Close()

	// Track checkpoints by polling replica counters across all partitions,
	// including the one the split adds. Handles are read through
	// ReplicaAt: the recovery injection below replaces one concurrently.
	const replicasPer = 3
	stopPoll := make(chan struct{})
	var pollWG sync.WaitGroup
	pollWG.Add(1)
	go func() {
		defer pollWG.Done()
		last := uint64(0)
		t := time.NewTicker(window / 2)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				var sum uint64
				for p := 0; p < d.Partitions(); p++ {
					for r := 0; r < replicasPer; r++ {
						if h := d.ReplicaAt(p, r); h != nil {
							sum += h.Replica.Checkpoints()
						}
					}
				}
				if sum > last {
					tl.Mark(time.Now(), "2:replica checkpoint")
					last = sum
				}
			case <-stopPoll:
				return
			}
		}
	}()

	// Closed-loop clients at moderate parallelism approximate the paper's
	// "75% of peak load" single client. Threads 3-5 write keys the split
	// moves to the new partition.
	const threads = 6
	value := make([]byte, 1024)
	deadline := time.Now().Add(total)
	var wg sync.WaitGroup
	for t := 0; t < threads; t++ {
		wg.Add(1)
		go func(t int) {
			defer wg.Done()
			cl := d.NewClient()
			defer cl.Close()
			seq := 0
			for time.Now().Before(deadline) {
				key := fmt.Sprintf("t%02d-%07d", t, seq%2000)
				seq++
				start := time.Now()
				if err := cl.Insert(key, value); err != nil {
					continue
				}
				tl.RecordOp(time.Now(), time.Since(start))
			}
		}(t)
	}

	// Failure injection on schedule: live split, then crash and recovery
	// of a new-partition replica.
	var injectWG sync.WaitGroup
	injectWG.Add(1)
	go func() {
		defer injectWG.Done()
		time.Sleep(splitAt)
		tl.Mark(time.Now(), "0:live split")
		newPart, err := coord.SplitPartition(0, "t03")
		if err != nil {
			tl.Mark(time.Now(), "split failed: "+err.Error())
			return
		}
		time.Sleep(killAt - splitAt)
		tl.Mark(time.Now(), "1:replica terminated")
		d.CrashReplica(newPart, 2)
		time.Sleep(recoverAt - killAt)
		tl.Mark(time.Now(), "4:replica recovery")
		if err := d.RecoverReplica(newPart, 2); err != nil {
			tl.Mark(time.Now(), "recovery failed: "+err.Error())
			return
		}
		tl.Mark(time.Now(), "5:re-proposals due to recovery traffic")
	}()
	wg.Wait()
	injectWG.Wait()
	close(stopPoll)
	pollWG.Wait()

	samples := tl.Samples()
	res := Fig8Result{Samples: samples, Events: tl.Events()}
	// Windows are attributed by the *recorded* kill/recovery marks, not
	// the schedule: the injection goroutine slips by however long the
	// split (and the recovery exchange) took, which on a slow machine is
	// several windows.
	killT, recT := killAt, recoverAt
	for _, e := range res.Events {
		switch {
		case strings.HasPrefix(e.Label, "1:"):
			killT = e.At
		case strings.HasPrefix(e.Label, "4:"):
			recT = e.At
		}
	}
	// Steady state: windows strictly before the kill.
	killIdx := int(killT / window)
	recIdx := int(recT / window)
	res.SteadyOps = meanThroughput(samples, 1, killIdx)
	res.DipOps = minThroughput(samples, recIdx-1, recIdx+3)
	res.RecoveredOps = meanThroughput(samples, recIdx+3, len(samples)-1)
	opts.logf("fig8 steady=%.0f dip=%.0f recovered=%.0f ops/s (%d events)",
		res.SteadyOps, res.DipOps, res.RecoveredOps, len(res.Events))
	return res
}

func meanThroughput(s []metrics.Sample, lo, hi int) float64 {
	if lo < 0 {
		lo = 0
	}
	if hi > len(s) {
		hi = len(s)
	}
	if hi <= lo {
		return 0
	}
	sum := 0.0
	for _, x := range s[lo:hi] {
		sum += x.Throughput
	}
	return sum / float64(hi-lo)
}

func minThroughput(s []metrics.Sample, lo, hi int) float64 {
	if lo < 0 {
		lo = 0
	}
	if hi > len(s) {
		hi = len(s)
	}
	if hi <= lo {
		return 0
	}
	min := s[lo].Throughput
	for _, x := range s[lo:hi] {
		if x.Throughput < min {
			min = x.Throughput
		}
	}
	return min
}
