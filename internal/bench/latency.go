package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"
	"time"

	"mrp/internal/metrics"
	"mrp/internal/msg"
	"mrp/internal/multiring"
	"mrp/internal/netsim"
	"mrp/internal/ringpaxos"
	"mrp/internal/smr"
	"mrp/internal/storage"
	"mrp/internal/transport"
)

// LatencyMode names the three SMR submission paths the figure compares.
type LatencyMode string

// The compared paths: command batching with pipelined execution (the
// default), batching off (one consensus instance per command, the classic
// wire), and batching on but execution coupled to delivery (no pipeline).
const (
	LatencyBatched   LatencyMode = "batched"
	LatencyUnbatched LatencyMode = "unbatched"
	LatencyCoupled   LatencyMode = "coupled"
)

// LatencyModes lists the modes in report order.
var LatencyModes = []LatencyMode{LatencyBatched, LatencyUnbatched, LatencyCoupled}

// latencyPayloads and latencyRates are the sweep axes: command payload
// size and offered load (ops/s aggregate; 0 means closed-loop
// saturation).
var (
	latencyPayloads = []int{16, 1024}
	latencyRates    = []int{2000, 0}
)

// LatencyRow is one (mode, payload, rate) point of the latency figure.
type LatencyRow struct {
	Mode         LatencyMode
	PayloadBytes int
	// OfferedRate is the configured aggregate ops/s; 0 is saturation.
	OfferedRate int
	OpsPerSec   float64
	P50         time.Duration
	P99         time.Duration
	P999        time.Duration
	Errors      uint64
}

// latencySM is the replicated application under test: it acknowledges
// each command with a tiny deterministic receipt, so the measured cost is
// ordering + execution plumbing, not application work.
type latencySM struct {
	mu sync.Mutex
	n  uint64
}

func (s *latencySM) Execute(op []byte) []byte {
	s.mu.Lock()
	s.n++
	n := s.n
	s.mu.Unlock()
	return []byte(fmt.Sprintf("ack:%d", n))
}

func (s *latencySM) Snapshot() []byte {
	s.mu.Lock()
	defer s.mu.Unlock()
	return []byte(fmt.Sprint(s.n))
}

func (s *latencySM) Restore(b []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.n = 0
	fmt.Sscan(string(b), &s.n)
}

// Latency sweeps payload size × offered rate for each submission path and
// reports p50/p99/p999 command latency and throughput. The deployment is
// the paper's baseline shape — one ring, three replicas, synchronous SSD
// logs — where every consensus instance pays a disk write: with batching
// off that is one write per command, with batching on one write per
// batch, which is exactly the amortization the figure quantifies.
func Latency(opts Options) []LatencyRow {
	var rows []LatencyRow
	for _, mode := range LatencyModes {
		for _, payload := range latencyPayloads {
			for _, rate := range latencyRates {
				row := latencyPoint(opts, mode, payload, rate)
				rateLabel := fmt.Sprint(row.OfferedRate)
				if row.OfferedRate == 0 {
					rateLabel = "sat"
				}
				opts.logf("latency %-10s %5dB rate=%-5s %9.0f op/s  p50=%v p99=%v p999=%v",
					mode, payload, rateLabel, row.OpsPerSec,
					row.P50.Round(10*time.Microsecond), row.P99.Round(10*time.Microsecond),
					row.P999.Round(10*time.Microsecond))
				rows = append(rows, row)
			}
		}
	}
	return rows
}

// latencyPoint builds a fresh one-ring SMR deployment and drives one
// (mode, payload, rate) point.
func latencyPoint(opts Options, mode LatencyMode, payload, rate int) LatencyRow {
	const nodes = 3
	net := netsim.New(
		netsim.WithUniformLatency(50*time.Microsecond),
		netsim.WithBandwidth(10<<30/8),
	)
	defer net.Close()

	peers := make([]ringpaxos.Peer, nodes)
	for i := range peers {
		peers[i] = ringpaxos.Peer{
			ID:    msg.NodeID(i + 1),
			Addr:  transport.Addr(fmt.Sprintf("lat-n%d", i)),
			Roles: ringpaxos.RoleProposer | ringpaxos.RoleAcceptor | ringpaxos.RoleLearner,
		}
	}
	var stops []func()
	diskMode := storage.SyncSSD
	for i := range peers {
		node := multiring.NewNode(peers[i].ID, net.Endpoint(peers[i].Addr))
		proc, err := node.Join(ringpaxos.Config{
			Ring:        1,
			Peers:       peers,
			Coordinator: peers[0].ID,
			Log:         storage.NewLogOnDisk(diskMode, storage.NewDisk(diskMode.DiskFor().Scale(opts.Scale))),
			BatchDelay:  500 * time.Microsecond,
			// Generous: premature re-proposals would double the sync-disk
			// load exactly when it is slowest.
			RetryTimeout: 2 * time.Second,
			DeliverBuf:   1 << 15,
		})
		if err != nil {
			panic(err)
		}
		learner := multiring.NewLearner(1, proc)
		rep := smr.NewReplica(smr.ReplicaConfig{
			Node:     node,
			Learner:  learner,
			SM:       &latencySM{},
			Ckpt:     storage.NewCheckpointStore(storage.NewDisk(storage.NullDisk)),
			Pipeline: smr.PipelinePolicy{Disabled: mode == LatencyCoupled},
		})
		node.Service(rep.HandleService)
		node.Start()
		learner.Start()
		rep.Start()
		stops = append(stops, func() {
			rep.Stop()
			learner.Stop()
			node.Stop()
		})
	}
	defer func() {
		for _, stop := range stops {
			stop()
		}
	}()

	// A few shared proposer-side clients: the batcher lives in the client,
	// so workers must share clients for a backlog to form. Every worker
	// issuing through the same client is the "proposer thread" shape of
	// the paper's baseline.
	const sharedClients = 6
	addrs := []transport.Addr{peers[0].Addr, peers[1].Addr, peers[2].Addr}
	clients := make([]*smr.Client, sharedClients)
	for i := range clients {
		clients[i] = smr.NewClient(smr.ClientConfig{
			ID:           uint64(100 + i),
			Endpoint:     net.Endpoint(transport.Addr(fmt.Sprintf("lat-cl%d", i))),
			Proposers:    map[msg.RingID][]transport.Addr{1: addrs},
			RetryTimeout: 2 * time.Second,
			Timeout:      20 * time.Second,
			Batch: smr.BatchPolicy{
				Disabled: mode == LatencyUnbatched,
				MaxDelay: 200 * time.Microsecond,
			},
		})
	}
	defer func() {
		for _, cl := range clients {
			cl.Close()
		}
	}()

	workers := opts.Clients
	if workers < sharedClients {
		workers = sharedClients
	}
	var (
		ops  metrics.Counter
		errs metrics.Counter
		hist metrics.Histogram
	)
	op := make([]byte, payload)
	deadline := time.Now().Add(opts.point())
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			cl := clients[w%sharedClients]
			// Open-loop pacing: each worker owns 1/workers of the offered
			// rate and issues on its own schedule, so queueing delay shows
			// up in the measured latency instead of throttling the load.
			var next time.Time
			var interval time.Duration
			if rate > 0 {
				interval = time.Duration(float64(time.Second) * float64(workers) / float64(rate))
				next = time.Now()
			}
			for time.Now().Before(deadline) {
				if rate > 0 {
					if d := time.Until(next); d > 0 {
						time.Sleep(d)
					}
					next = next.Add(interval)
				}
				start := time.Now()
				if _, err := cl.Execute(1, op); err != nil {
					errs.Add(1, 0)
					continue
				}
				hist.Record(time.Since(start))
				ops.Add(1, uint64(payload))
			}
		}(w)
	}
	wg.Wait()

	return LatencyRow{
		Mode:         mode,
		PayloadBytes: payload,
		OfferedRate:  rate,
		OpsPerSec:    float64(ops.Ops()) / opts.PointSeconds,
		P50:          hist.Quantile(0.50),
		P99:          hist.Quantile(0.99),
		P999:         hist.Quantile(0.999),
		Errors:       errs.Ops(),
	}
}

// RenderLatency prints the latency figure.
func RenderLatency(w io.Writer, rows []LatencyRow) {
	fmt.Fprintln(w, "SMR command latency — batched+pipelined vs unbatched vs coupled execution")
	fmt.Fprintln(w, "(one ring, 3 replicas, sync-SSD logs; rate 0 = closed-loop saturation)")
	fmt.Fprintf(w, "%-11s %8s %8s %12s %10s %10s %10s %8s\n",
		"mode", "payload", "rate", "ops/s", "p50", "p99", "p999", "errors")
	for _, r := range rows {
		rateLabel := fmt.Sprint(r.OfferedRate)
		if r.OfferedRate == 0 {
			rateLabel = "sat"
		}
		fmt.Fprintf(w, "%-11s %7dB %8s %12.0f %10s %10s %10s %8d\n",
			r.Mode, r.PayloadBytes, rateLabel, r.OpsPerSec,
			r.P50.Round(10*time.Microsecond), r.P99.Round(10*time.Microsecond),
			r.P999.Round(10*time.Microsecond), r.Errors)
	}
}

// WriteLatencyJSON emits the machine-readable companion of the latency
// figure (BENCH_latency.json in CI).
func WriteLatencyJSON(path string, rows []LatencyRow) error {
	type jsonRow struct {
		Mode         LatencyMode `json:"mode"`
		PayloadBytes int         `json:"payload_bytes"`
		OfferedRate  int         `json:"offered_rate"`
		OpsPerSec    float64     `json:"ops_per_sec"`
		P50us        float64     `json:"p50_us"`
		P99us        float64     `json:"p99_us"`
		P999us       float64     `json:"p999_us"`
		Errors       uint64      `json:"errors"`
	}
	out := struct {
		Figure string    `json:"figure"`
		Rows   []jsonRow `json:"rows"`
	}{Figure: "latency"}
	for _, r := range rows {
		out.Rows = append(out.Rows, jsonRow{
			Mode:         r.Mode,
			PayloadBytes: r.PayloadBytes,
			OfferedRate:  r.OfferedRate,
			OpsPerSec:    r.OpsPerSec,
			P50us:        float64(r.P50) / float64(time.Microsecond),
			P99us:        float64(r.P99) / float64(time.Microsecond),
			P999us:       float64(r.P999) / float64(time.Microsecond),
			Errors:       r.Errors,
		})
	}
	b, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}
