package bench

import (
	"fmt"
	"io"
	"sync"
	"time"

	"mrp/internal/metrics"
	"mrp/internal/netsim"
	"mrp/internal/rebalance"
	"mrp/internal/registry"
	"mrp/internal/storage"
	"mrp/internal/store"
	"mrp/internal/ycsb"
)

// MergeResult is the bidirectional-elasticity timeline: windowed
// throughput and latency across a full split → merge round trip under
// YCSB-A load, with the reconfiguration engine's steps as event markers.
// The claim extends the Rebalance scenario to the shrink path: both
// reconfigurations cost a short dip while their range is frozen, the
// merged-back deployment returns to the pre-split steady state, and the
// donor's ring is fully retired (its ID recycled by the allocator).
type MergeResult struct {
	Samples []metrics.Sample
	Events  []metrics.Event
	// SteadyOps is pre-split throughput, MergedOps the steady state after
	// the merge returned the deployment to its original shape.
	SteadyOps, MergedOps float64
	// SplitDuration and MergeDuration are the wall times of the two
	// reconfigurations end to end.
	SplitDuration, MergeDuration time.Duration
	// MovedKeys is how many records changed ownership in the merge.
	MovedKeys int
	// RingRetired reports that the donor's ring left the topology.
	RingRetired bool
}

// Merge measures the split → merge round trip: a two-partition
// range-partitioned MRP-Store under a closed-loop YCSB-A workload splits
// partition 1 at the key-space three-quarter point, runs three-partition
// for a while, then merges the split-born partition back and retires its
// ring, all mid-run.
func Merge(opts Options) MergeResult {
	total := time.Duration(8 * opts.PointSeconds * float64(time.Second))
	splitAt := total * 3 / 10
	mergeAt := total * 6 / 10
	window := total / 24

	net := netsim.New(
		netsim.WithUniformLatency(50*time.Microsecond),
		netsim.WithBandwidth(10<<30/8),
	)
	defer net.Close()
	records := opts.Records
	d, err := store.Deploy(store.DeployConfig{
		Net:         net,
		Partitions:  2,
		Replicas:    3,
		GlobalRing:  true,
		Partitioner: store.NewRangePartitioner([]string{ycsb.Key(records / 2)}),
		StorageMode: storage.InMemory,
		// Rate leveling at the paper's λ (Section 4): the merge of busy
		// partition rings with the mostly idle global ring must advance at
		// least as fast as the offered load.
		SkipInterval: 5 * time.Millisecond,
		SkipRate:     9000,
		RetryTimeout: 300 * time.Millisecond,
	})
	if err != nil {
		panic(err)
	}
	defer d.Stop()
	reg := registry.New()
	if err := d.PublishSchema(reg); err != nil {
		panic(err)
	}
	var recs []store.Entry
	for _, o := range ycsb.Load(ycsb.Config{RecordCount: records, ValueSize: 100}) {
		recs = append(recs, store.Entry{Key: o.Key, Value: o.Value})
	}
	d.Preload(recs)

	tl := metrics.NewTimeline(window)
	coord, err := rebalance.New(rebalance.Config{
		Store:    d,
		Registry: reg,
		OnStep:   func(s string) { tl.Mark(time.Now(), s) },
	})
	if err != nil {
		panic(err)
	}
	defer coord.Close()

	threads := opts.Clients / 4
	if threads < 4 {
		threads = 4
	}
	deadline := time.Now().Add(total)
	var wg sync.WaitGroup
	for ti := 0; ti < threads; ti++ {
		wg.Add(1)
		go func(ti int) {
			defer wg.Done()
			cl := d.NewClient()
			defer cl.Close()
			gen := ycsb.New(ycsb.Config{Workload: ycsb.WorkloadA, RecordCount: records, ValueSize: 100, Seed: int64(ti)})
			for time.Now().Before(deadline) {
				o := gen.Next()
				start := time.Now()
				var err error
				switch o.Kind {
				case ycsb.OpRead:
					_, err = cl.Read(o.Key)
				case ycsb.OpUpdate:
					err = cl.Update(o.Key, o.Value)
				default:
					continue
				}
				if err != nil {
					continue
				}
				tl.RecordOp(time.Now(), time.Since(start))
			}
		}(ti)
	}

	res := MergeResult{}
	var injectWG sync.WaitGroup
	injectWG.Add(1)
	go func() {
		defer injectWG.Done()
		time.Sleep(splitAt)
		tl.Mark(time.Now(), "split initiated")
		start := time.Now()
		newPart, err := coord.SplitPartition(1, ycsb.Key(records*3/4))
		if err != nil {
			tl.Mark(time.Now(), "split failed: "+err.Error())
			return
		}
		res.SplitDuration = time.Since(start)

		time.Sleep(mergeAt - splitAt - res.SplitDuration)
		tl.Mark(time.Now(), "merge initiated")
		start = time.Now()
		if err := coord.MergePartitions(1, newPart); err != nil {
			tl.Mark(time.Now(), "merge failed: "+err.Error())
			return
		}
		res.MergeDuration = time.Since(start)
		res.MovedKeys = records - records*3/4
		res.RingRetired = d.PartitionRing(newPart) == 0
	}()
	wg.Wait()
	injectWG.Wait()

	samples := tl.Samples()
	res.Samples = samples
	res.Events = tl.Events()
	splitIdx := int(splitAt / window)
	mergeIdx := int(mergeAt / window)
	res.SteadyOps = meanThroughput(samples, 1, splitIdx)
	res.MergedOps = meanThroughput(samples, mergeIdx+3, len(samples)-1)
	opts.logf("merge round trip steady=%.0f merged=%.0f ops/s (split %v, merge %v, %d keys returned, ring retired=%v)",
		res.SteadyOps, res.MergedOps, res.SplitDuration, res.MergeDuration, res.MovedKeys, res.RingRetired)
	return res
}

// RenderMerge prints the split → merge elasticity timeline.
func RenderMerge(w io.Writer, res MergeResult) {
	fmt.Fprintln(w, "Merge — split → merge round trip under YCSB-A load (bidirectional elasticity)")
	fmt.Fprintf(w, "steady=%.0f ops/s  merged=%.0f ops/s  (split %s, merge %s, %d keys returned, ring retired=%v)\n",
		res.SteadyOps, res.MergedOps,
		res.SplitDuration.Round(time.Millisecond), res.MergeDuration.Round(time.Millisecond),
		res.MovedKeys, res.RingRetired)
	fmt.Fprintln(w, "events:")
	for _, e := range res.Events {
		fmt.Fprintf(w, "  %8s  %s\n", e.At.Round(10*time.Millisecond), e.Label)
	}
	fmt.Fprintln(w, "timeline (window, ops/s, mean latency):")
	for _, s := range res.Samples {
		fmt.Fprintf(w, "  %8s %10.0f %12s\n",
			s.At.Round(10*time.Millisecond), s.Throughput, s.MeanLat.Round(100*time.Microsecond))
	}
}
