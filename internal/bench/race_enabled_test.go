//go:build race

package bench

// raceEnabled reports that the binary was built with the race detector,
// whose 5-20x slowdown makes wall-clock throughput thresholds meaningless.
const raceEnabled = true
