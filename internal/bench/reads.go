package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"
	"time"

	"mrp/internal/metrics"
	"mrp/internal/netsim"
	"mrp/internal/storage"
	"mrp/internal/store"
	"mrp/internal/ycsb"
)

// ReadsMode names the two read paths the figure compares.
type ReadsMode string

// The compared paths: lease-served local reads (the default deployment
// behavior — a single request/response against the partition's lease
// holder, no consensus round) vs the pre-lease baseline that orders every
// read like a write.
const (
	ReadsLocal   ReadsMode = "local"
	ReadsOrdered ReadsMode = "ordered"
)

// ReadsModes lists the modes in report order.
var ReadsModes = []ReadsMode{ReadsLocal, ReadsOrdered}

// readsWorkloads are the sweep's read-dominated YCSB mixes: B (95% read,
// 5% update — the updates still pay for ordering, so the figure shows the
// fast path coexisting with writes) and C (read only).
var readsWorkloads = []ycsb.Workload{ycsb.WorkloadB, ycsb.WorkloadC}

// readsWarmup bounds how long a point waits for every partition's lease to
// be claimed, applied, and advertised before the measured window opens.
const readsWarmup = 5 * time.Second

// ReadsRow is one (mode, workload) point of the local-reads figure.
type ReadsRow struct {
	Mode       ReadsMode     `json:"mode"`
	Workload   string        `json:"workload"`
	OpsPerSec  float64       `json:"ops_per_sec"`
	P50        time.Duration `json:"p50_ns"`
	P99        time.Duration `json:"p99_ns"`
	P999       time.Duration `json:"p999_ns"`
	LeaseReads uint64        `json:"lease_reads"`
	Errors     uint64        `json:"errors"`
}

// Reads reproduces the lease-read comparison: the same read-dominated YCSB
// workloads against the same 3-partition deployment, once with ring leases
// (reads served consensus-free by each partition's lease holder) and once
// with leases disabled (every read ordered through its partition's ring,
// the pre-lease behavior). The LeaseReads column reports how many measured
// reads actually took the fast path, so a regression that silently falls
// back to ordering is visible in the rows, not just in the ratio.
func Reads(opts Options) []ReadsRow {
	var rows []ReadsRow
	for _, mode := range ReadsModes {
		for _, w := range readsWorkloads {
			row := readsPoint(opts, mode, w)
			opts.logf("reads %-8s ycsb-%s  %9.0f op/s  p50=%v  lease=%d",
				mode, w, row.OpsPerSec, row.P50.Round(10*time.Microsecond), row.LeaseReads)
			rows = append(rows, row)
		}
	}
	return rows
}

// readsPoint builds a fresh 3-partition deployment and drives one point.
func readsPoint(opts Options, mode ReadsMode, workload ycsb.Workload) ReadsRow {
	net := netsim.New(
		netsim.WithUniformLatency(50*time.Microsecond),
		netsim.WithBandwidth(10<<30/8),
	)
	defer net.Close()
	d, err := store.Deploy(store.DeployConfig{
		Net:          net,
		Partitions:   3,
		Replicas:     3,
		GlobalRing:   true,
		StorageMode:  storage.InMemory,
		SkipInterval: 5 * time.Millisecond,
		SkipRate:     9000,
		RetryTimeout: 300 * time.Millisecond,
		Lease:        store.LeasePolicy{Disabled: mode == ReadsOrdered},
	})
	if err != nil {
		panic(err)
	}
	defer d.Stop()

	records := make([]store.Entry, 0, opts.Records)
	for _, r := range ycsb.Load(ycsb.Config{RecordCount: opts.Records, ValueSize: 100}) {
		records = append(records, store.Entry{Key: r.Key, Value: r.Value})
	}
	d.Preload(records)

	if mode == ReadsLocal {
		waitForLeases(d, records)
	}

	var (
		ops   metrics.Counter
		errs  metrics.Counter
		lease metrics.Counter
		hist  metrics.Histogram
	)
	deadline := time.Now().Add(opts.point())
	var wg sync.WaitGroup
	for t := 0; t < opts.Clients; t++ {
		wg.Add(1)
		go func(t int) {
			defer wg.Done()
			cl := d.NewClient()
			defer cl.Close()
			gen := ycsb.New(ycsb.Config{
				Workload:    workload,
				RecordCount: opts.Records,
				ValueSize:   100,
				Seed:        int64(t) + 1,
			})
			for time.Now().Before(deadline) {
				o := gen.Next()
				start := time.Now()
				var err error
				switch o.Kind {
				case ycsb.OpRead:
					_, err = cl.Read(o.Key)
				case ycsb.OpUpdate:
					err = cl.Update(o.Key, o.Value)
				default:
					continue
				}
				if err != nil {
					errs.Add(1, 0)
					continue
				}
				hist.Record(time.Since(start))
				ops.Add(1, 0)
			}
			lease.Add(uint64(cl.LeaseReads()), 0)
		}(t)
	}
	wg.Wait()
	return ReadsRow{
		Mode:       mode,
		Workload:   workload.String(),
		OpsPerSec:  float64(ops.Ops()) / opts.PointSeconds,
		P50:        hist.Quantile(0.50),
		P99:        hist.Quantile(0.99),
		P999:       hist.Quantile(0.999),
		LeaseReads: lease.Ops(),
		Errors:     errs.Ops(),
	}
}

// waitForLeases blocks until every partition serves a lease read (claimed
// by its manager, applied by its holder, advertised in the routing view),
// so the measured window starts on the fast path instead of averaging over
// lease establishment. A partition that never comes up within the warmup
// bound is left to the fallback path — the point still measures, it just
// reports the miss through the LeaseReads column.
func waitForLeases(d *store.Deployment, records []store.Entry) {
	part := d.Partitioner()
	probe := make([]string, 3)
	for _, r := range records {
		probe[part.PartitionOf(r.Key)] = r.Key
	}
	cl := d.NewClient()
	defer cl.Close()
	deadline := time.Now().Add(readsWarmup)
	for _, key := range probe {
		if key == "" {
			continue
		}
		for {
			before := cl.LeaseReads()
			if _, err := cl.Read(key); err == nil && cl.LeaseReads() > before {
				break
			}
			if time.Now().After(deadline) {
				return
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
}

// RenderReads prints the local-reads comparison.
func RenderReads(w io.Writer, rows []ReadsRow) {
	fmt.Fprintln(w, "Local reads via ring leases — lease-served vs ordered-every-read baseline")
	fmt.Fprintln(w, "(read-dominated YCSB mixes; `lease` counts measured reads served consensus-free)")
	fmt.Fprintf(w, "%-9s %9s %12s %10s %10s %10s %10s %8s\n",
		"mode", "workload", "op/s", "p50", "p99", "p999", "lease", "errors")
	for _, r := range rows {
		fmt.Fprintf(w, "%-9s %8s %12.0f %10s %10s %10s %10d %8d\n",
			r.Mode, "ycsb-"+r.Workload, r.OpsPerSec,
			r.P50.Round(10*time.Microsecond), r.P99.Round(10*time.Microsecond),
			r.P999.Round(10*time.Microsecond), r.LeaseReads, r.Errors)
	}
}

// WriteReadsJSON emits the machine-readable companion of the local-reads
// figure (BENCH_reads.json in CI).
func WriteReadsJSON(path string, rows []ReadsRow) error {
	type jsonRow struct {
		Mode       ReadsMode `json:"mode"`
		Workload   string    `json:"workload"`
		OpsPerSec  float64   `json:"ops_per_sec"`
		P50us      float64   `json:"p50_us"`
		P99us      float64   `json:"p99_us"`
		P999us     float64   `json:"p999_us"`
		LeaseReads uint64    `json:"lease_reads"`
		Errors     uint64    `json:"errors"`
	}
	out := struct {
		Figure string    `json:"figure"`
		Rows   []jsonRow `json:"rows"`
	}{Figure: "reads"}
	for _, r := range rows {
		out.Rows = append(out.Rows, jsonRow{
			Mode:       r.Mode,
			Workload:   r.Workload,
			OpsPerSec:  r.OpsPerSec,
			P50us:      float64(r.P50) / float64(time.Microsecond),
			P99us:      float64(r.P99) / float64(time.Microsecond),
			P999us:     float64(r.P999) / float64(time.Microsecond),
			LeaseReads: r.LeaseReads,
			Errors:     r.Errors,
		})
	}
	b, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}
