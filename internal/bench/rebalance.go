package bench

import (
	"fmt"
	"io"
	"sync"
	"time"

	"mrp/internal/metrics"
	"mrp/internal/netsim"
	"mrp/internal/rebalance"
	"mrp/internal/registry"
	"mrp/internal/storage"
	"mrp/internal/store"
	"mrp/internal/ycsb"
)

// RebalanceResult is the elastic-rebalancing timeline: windowed throughput
// and latency around a live partition split, with the protocol steps
// (provision, prepare, copy, activate, publish, commit) as event markers.
// The claim mirrors Figure 8's shape for a planned topology change instead
// of a failure: a short dip while the moved range is frozen, then recovery
// to steady state with one more partition serving.
type RebalanceResult struct {
	Samples []metrics.Sample
	Events  []metrics.Event
	// SteadyOps is pre-split throughput, DipOps the minimum around the
	// split, RecoveredOps the post-split steady state.
	SteadyOps, DipOps, RecoveredOps float64
	// SplitDuration is the wall time SplitPartition took end to end.
	SplitDuration time.Duration
	// MovedKeys is how many records changed ownership.
	MovedKeys int
}

// Rebalance measures a live split: a two-partition range-partitioned
// MRP-Store under a closed-loop YCSB-A workload, with partition 1 split at
// the key-space three-quarter point onto a freshly subscribed ring
// mid-run.
func Rebalance(opts Options) RebalanceResult {
	total := time.Duration(6 * opts.PointSeconds * float64(time.Second))
	splitAt := total * 4 / 10
	window := total / 24

	net := netsim.New(
		netsim.WithUniformLatency(50*time.Microsecond),
		netsim.WithBandwidth(10<<30/8),
	)
	defer net.Close()
	records := opts.Records
	d, err := store.Deploy(store.DeployConfig{
		Net:         net,
		Partitions:  2,
		Replicas:    3,
		GlobalRing:  true,
		Partitioner: store.NewRangePartitioner([]string{ycsb.Key(records / 2)}),
		StorageMode: storage.InMemory,
		// Rate leveling at the paper's λ: the merge of a busy partition
		// ring with the mostly idle global ring advances at the global
		// ring's skip rate, so λ must exceed the offered load (Section 4).
		SkipInterval: 5 * time.Millisecond,
		SkipRate:     9000,
		RetryTimeout: 300 * time.Millisecond,
	})
	if err != nil {
		panic(err)
	}
	defer d.Stop()
	reg := registry.New()
	if err := d.PublishSchema(reg); err != nil {
		panic(err)
	}
	var recs []store.Entry
	for _, o := range ycsb.Load(ycsb.Config{RecordCount: records, ValueSize: 100}) {
		recs = append(recs, store.Entry{Key: o.Key, Value: o.Value})
	}
	d.Preload(recs)

	tl := metrics.NewTimeline(window)
	coord, err := rebalance.New(rebalance.Config{
		Store:    d,
		Registry: reg,
		OnStep:   func(s string) { tl.Mark(time.Now(), s) },
	})
	if err != nil {
		panic(err)
	}
	defer coord.Close()

	threads := opts.Clients / 4
	if threads < 4 {
		threads = 4
	}
	deadline := time.Now().Add(total)
	var wg sync.WaitGroup
	for ti := 0; ti < threads; ti++ {
		wg.Add(1)
		go func(ti int) {
			defer wg.Done()
			cl := d.NewClient()
			defer cl.Close()
			gen := ycsb.New(ycsb.Config{Workload: ycsb.WorkloadA, RecordCount: records, ValueSize: 100, Seed: int64(ti)})
			for time.Now().Before(deadline) {
				o := gen.Next()
				start := time.Now()
				var err error
				switch o.Kind {
				case ycsb.OpRead:
					_, err = cl.Read(o.Key)
				case ycsb.OpUpdate:
					err = cl.Update(o.Key, o.Value)
				default:
					continue
				}
				if err != nil {
					continue
				}
				tl.RecordOp(time.Now(), time.Since(start))
			}
		}(ti)
	}

	res := RebalanceResult{}
	var injectWG sync.WaitGroup
	injectWG.Add(1)
	go func() {
		defer injectWG.Done()
		time.Sleep(splitAt)
		tl.Mark(time.Now(), "split initiated")
		start := time.Now()
		if _, err := coord.SplitPartition(1, ycsb.Key(records*3/4)); err != nil {
			tl.Mark(time.Now(), "split failed: "+err.Error())
			return
		}
		res.SplitDuration = time.Since(start)
		res.MovedKeys = records - records*3/4
	}()
	wg.Wait()
	injectWG.Wait()

	samples := tl.Samples()
	res.Samples = samples
	res.Events = tl.Events()
	splitIdx := int(splitAt / window)
	res.SteadyOps = meanThroughput(samples, 1, splitIdx)
	res.DipOps = minThroughput(samples, splitIdx-1, splitIdx+3)
	res.RecoveredOps = meanThroughput(samples, splitIdx+3, len(samples)-1)
	opts.logf("rebalance steady=%.0f dip=%.0f recovered=%.0f ops/s (split %v, %d keys moved)",
		res.SteadyOps, res.DipOps, res.RecoveredOps, res.SplitDuration, res.MovedKeys)
	return res
}

// RenderRebalance prints the rebalancing timeline.
func RenderRebalance(w io.Writer, res RebalanceResult) {
	fmt.Fprintln(w, "Rebalance — live partition split under YCSB-A load")
	fmt.Fprintf(w, "steady=%.0f ops/s  dip=%.0f ops/s  recovered=%.0f ops/s  (split %s, %d keys moved)\n",
		res.SteadyOps, res.DipOps, res.RecoveredOps,
		res.SplitDuration.Round(time.Millisecond), res.MovedKeys)
	fmt.Fprintln(w, "events:")
	for _, e := range res.Events {
		fmt.Fprintf(w, "  %8s  %s\n", e.At.Round(10*time.Millisecond), e.Label)
	}
	fmt.Fprintln(w, "timeline (window, ops/s, mean latency):")
	for _, s := range res.Samples {
		fmt.Fprintf(w, "  %8s %10.0f %12s\n",
			s.At.Round(10*time.Millisecond), s.Throughput, s.MeanLat.Round(100*time.Microsecond))
	}
}
