package bench

import (
	"fmt"
	"io"
	"time"
)

// RenderFig3 prints the Figure 3 sweep as the paper's four metrics.
func RenderFig3(w io.Writer, rows []Fig3Row) {
	fmt.Fprintln(w, "Figure 3 — Multi-Ring Paxos baseline (1 ring, 3 processes, 10 proposer threads, no batching)")
	fmt.Fprintf(w, "%-18s %8s %14s %14s %16s %12s\n",
		"storage mode", "size", "Mbps", "mean latency", "coord MB/s*", "<10ms frac")
	for _, r := range rows {
		fmt.Fprintf(w, "%-18s %7dB %14.1f %14s %16.1f %12.2f\n",
			r.Mode, r.Size, r.ThroughputMbps, r.MeanLatency.Round(10*time.Microsecond),
			r.CoordProxyMBps, r.FracUnder10ms)
	}
	fmt.Fprintln(w, "  (*) coordinator CPU is proxied by its message-processing volume")
}

// RenderFig4 prints the YCSB comparison.
func RenderFig4(w io.Writer, rows []Fig4Row) {
	fmt.Fprintln(w, "Figure 4 — YCSB: throughput in ops/s (top graph)")
	fmt.Fprintf(w, "%-28s", "system")
	for _, wl := range []byte("ABCDEF") {
		fmt.Fprintf(w, "%10c", wl)
	}
	fmt.Fprintln(w)
	bySystem := map[Fig4System][]Fig4Row{}
	for _, r := range rows {
		bySystem[r.System] = append(bySystem[r.System], r)
	}
	for _, sys := range Fig4Systems {
		fmt.Fprintf(w, "%-28s", sys)
		for _, r := range bySystem[sys] {
			fmt.Fprintf(w, "%10.0f", r.OpsPerSec)
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w, "Workload F latency breakdown (bottom graph, mean)")
	fmt.Fprintf(w, "%-28s %12s %12s %16s\n", "system", "read", "update", "read-mod-write")
	for _, sys := range Fig4Systems {
		for _, r := range bySystem[sys] {
			if r.Workload != 'F' {
				continue
			}
			fmt.Fprintf(w, "%-28s %12s %12s %16s\n", sys,
				r.ReadLat.Round(10*time.Microsecond),
				r.UpdateLat.Round(10*time.Microsecond),
				r.RMWLat.Round(10*time.Microsecond))
		}
	}
}

// RenderFig5 prints the dLog vs Bookkeeper sweep.
func RenderFig5(w io.Writer, rows []Fig5Row) {
	fmt.Fprintln(w, "Figure 5 — dLog vs Bookkeeper-like (1 KB synchronous appends)")
	fmt.Fprintf(w, "%-18s %8s %12s %14s\n", "system", "clients", "ops/s", "mean latency")
	for _, r := range rows {
		fmt.Fprintf(w, "%-18s %8d %12.0f %14s\n",
			r.System, r.Clients, r.OpsPerSec, r.MeanLat.Round(100*time.Microsecond))
	}
}

// RenderFig6 prints the vertical-scalability sweep.
func RenderFig6(w io.Writer, rows []Fig6Row) {
	fmt.Fprintln(w, "Figure 6 — dLog vertical scalability (one disk per ring, 1 KB appends in 32 KB batches)")
	fmt.Fprintf(w, "%-8s %14s %10s %12s %12s\n", "rings", "agg ops/s", "scaling", "p50 (disk1)", "p99 (disk1)")
	for _, r := range rows {
		fmt.Fprintf(w, "%-8d %14.0f %9.0f%% %12s %12s\n",
			r.Rings, r.AggOpsPerSec, r.ScalingPct,
			r.P50.Round(100*time.Microsecond), r.P99.Round(100*time.Microsecond))
	}
}

// RenderFig7 prints the horizontal-scalability sweep.
func RenderFig7(w io.Writer, rows []Fig7Row) {
	fmt.Fprintln(w, "Figure 7 — MRP-Store across EC2 regions (1 KB updates in 32 KB batches)")
	fmt.Fprintf(w, "%-10s %14s %10s %14s %14s\n", "regions", "agg ops/s", "scaling", "p50 latency", "p99 latency")
	for _, r := range rows {
		fmt.Fprintf(w, "%-10d %14.0f %9.0f%% %14s %14s\n",
			r.Regions, r.AggOpsPerSec, r.ScalingPct,
			r.P50.Round(time.Millisecond), r.P99.Round(time.Millisecond))
	}
}

// RenderFig8 prints the recovery timeline.
func RenderFig8(w io.Writer, res Fig8Result) {
	fmt.Fprintln(w, "Figure 8 — impact of recovery on performance")
	fmt.Fprintf(w, "steady=%.0f ops/s  dip=%.0f ops/s  recovered=%.0f ops/s\n",
		res.SteadyOps, res.DipOps, res.RecoveredOps)
	fmt.Fprintln(w, "events:")
	for _, e := range res.Events {
		fmt.Fprintf(w, "  %8s  %s\n", e.At.Round(10*time.Millisecond), e.Label)
	}
	fmt.Fprintln(w, "timeline (window, ops/s, mean latency):")
	for _, s := range res.Samples {
		fmt.Fprintf(w, "  %8s %10.0f %12s\n",
			s.At.Round(10*time.Millisecond), s.Throughput, s.MeanLat.Round(100*time.Microsecond))
	}
}

// RenderAblations prints ablation rows.
func RenderAblations(w io.Writer, rows []AblationRow) {
	fmt.Fprintln(w, "Ablations")
	fmt.Fprintf(w, "%-16s %-28s %12s %14s\n", "choice", "variant", "ops/s", "mean latency")
	for _, r := range rows {
		fmt.Fprintf(w, "%-16s %-28s %12.0f %14s\n",
			r.Name, r.Variant, r.OpsPerSec, r.MeanLat.Round(10*time.Microsecond))
	}
}
