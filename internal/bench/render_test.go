package bench

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"mrp/internal/metrics"
	"mrp/internal/storage"
	"mrp/internal/ycsb"
)

func TestRenderFig4(t *testing.T) {
	rows := []Fig4Row{
		{System: SysCassandra, Workload: ycsb.WorkloadA, OpsPerSec: 100},
		{System: SysCassandra, Workload: ycsb.WorkloadF, OpsPerSec: 50,
			ReadLat: time.Millisecond, RMWLat: 2 * time.Millisecond},
		{System: SysMRPStore, Workload: ycsb.WorkloadA, OpsPerSec: 80},
		{System: SysMRPStore, Workload: ycsb.WorkloadF, OpsPerSec: 40},
	}
	var buf bytes.Buffer
	RenderFig4(&buf, rows)
	out := buf.String()
	for _, want := range []string{"Cassandra-like", "MRP-Store", "Workload F", "read-mod-write"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestRenderFig6AndFig7(t *testing.T) {
	var buf bytes.Buffer
	RenderFig6(&buf, []Fig6Row{{Rings: 1, AggOpsPerSec: 10, ScalingPct: 100, P50: time.Millisecond}})
	RenderFig7(&buf, []Fig7Row{{Regions: 2, AggOpsPerSec: 20, ScalingPct: 95, P50: 40 * time.Millisecond}})
	out := buf.String()
	if !strings.Contains(out, "vertical scalability") || !strings.Contains(out, "EC2 regions") {
		t.Fatalf("render output:\n%s", out)
	}
}

func TestRenderFig8(t *testing.T) {
	res := Fig8Result{
		Samples:   []metrics.Sample{{At: 0, Throughput: 100, MeanLat: time.Millisecond}},
		Events:    []metrics.Event{{At: time.Second, Label: "1:replica terminated"}},
		SteadyOps: 100, DipOps: 50, RecoveredOps: 90,
	}
	var buf bytes.Buffer
	RenderFig8(&buf, res)
	if !strings.Contains(buf.String(), "replica terminated") {
		t.Fatalf("render output:\n%s", buf.String())
	}
}

func TestRenderFig3AllModes(t *testing.T) {
	var rows []Fig3Row
	for _, m := range Fig3Modes {
		rows = append(rows, Fig3Row{Mode: m, Size: 512, ThroughputMbps: 1})
	}
	var buf bytes.Buffer
	RenderFig3(&buf, rows)
	for _, m := range []storage.Mode{storage.InMemory, storage.SyncHDD} {
		if !strings.Contains(buf.String(), m.String()) {
			t.Fatalf("missing mode %v", m)
		}
	}
}

func TestRenderAblationsAndFig5(t *testing.T) {
	var buf bytes.Buffer
	RenderAblations(&buf, []AblationRow{{Name: "x", Variant: "on", OpsPerSec: 1}})
	RenderFig5(&buf, []Fig5Row{{System: "dLog", Clients: 1, OpsPerSec: 2, MeanLat: time.Second}})
	if !strings.Contains(buf.String(), "Ablations") || !strings.Contains(buf.String(), "dLog") {
		t.Fatalf("render output:\n%s", buf.String())
	}
}
