package bench

import (
	"fmt"
	"time"

	"mrp/internal/msg"
	"mrp/internal/multiring"
	"mrp/internal/netsim"
	"mrp/internal/ringpaxos"
	"mrp/internal/storage"
	"mrp/internal/transport"
)

// skipMergeThroughput drives one busy ring and one idle ring through a
// two-ring learner and returns the delivered message rate. With rate
// leveling off, the deterministic merge blocks on the idle ring and the
// rate collapses — the negative control for the skip mechanism.
func skipMergeThroughput(opts Options, skips bool) float64 {
	net := netsim.New(netsim.WithUniformLatency(50 * time.Microsecond))
	defer net.Close()

	const nodes = 3
	rings := []msg.RingID{1, 2}
	peersFor := func() []ringpaxos.Peer {
		peers := make([]ringpaxos.Peer, nodes)
		for i := range peers {
			peers[i] = ringpaxos.Peer{
				ID:    msg.NodeID(i + 1),
				Addr:  transport.Addr(fmt.Sprintf("merge-n%d", i)),
				Roles: ringpaxos.RoleProposer | ringpaxos.RoleAcceptor | ringpaxos.RoleLearner,
			}
		}
		return peers
	}
	var nodesList []*multiring.Node
	for i := 0; i < nodes; i++ {
		node := multiring.NewNode(msg.NodeID(i+1), net.Endpoint(transport.Addr(fmt.Sprintf("merge-n%d", i))))
		for _, r := range rings {
			cfg := ringpaxos.Config{
				Ring:         r,
				Peers:        peersFor(),
				Coordinator:  1,
				Log:          storage.NewLog(storage.InMemory),
				BatchDelay:   time.Millisecond,
				RetryTimeout: 200 * time.Millisecond,
			}
			if skips {
				cfg.SkipInterval = 5 * time.Millisecond
				cfg.SkipRate = 2000
			}
			if _, err := node.Join(cfg); err != nil {
				panic(err)
			}
		}
		node.Start()
		nodesList = append(nodesList, node)
	}
	defer func() {
		for _, n := range nodesList {
			n.Stop()
		}
	}()

	p1, _ := nodesList[1].Process(1)
	p2, _ := nodesList[1].Process(2)
	learner := multiring.NewLearner(1, p1, p2)
	learner.Start()
	defer learner.Stop()

	deadline := time.Now().Add(opts.point())
	stop := make(chan struct{})
	delivered := 0
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			select {
			case d := <-learner.Deliveries():
				if !d.Skip {
					delivered++
				}
			case <-stop:
				return
			}
		}
	}()
	payload := make([]byte, 128)
	for time.Now().Before(deadline) {
		// Only ring 1 carries traffic; ring 2 stays idle.
		_ = nodesList[0].Multicast(1, payload)
		time.Sleep(200 * time.Microsecond)
	}
	time.Sleep(50 * time.Millisecond)
	close(stop)
	<-done
	return float64(delivered) / opts.PointSeconds
}
