package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"os"
	"sync"
	"time"

	"mrp/internal/metrics"
	"mrp/internal/netsim"
	"mrp/internal/storage"
	"mrp/internal/store"
	"mrp/internal/ycsb"
)

// TxnMode names the two routing strategies the figure compares.
type TxnMode string

// The compared strategies: minimal-ring-set multicast (the paper's
// design) vs the naive baseline that orders EVERY transaction on the
// global ring.
const (
	TxnMulticast TxnMode = "multicast"
	TxnGlobalAll TxnMode = "global-all"
)

// TxnModes lists the modes in report order.
var TxnModes = []TxnMode{TxnMulticast, TxnGlobalAll}

// txnParticipants and txnPayloads are the sweep axes: how many partitions
// a multi-key transaction spans, and how large each written value is.
var (
	txnParticipants = []int{1, 2, 3}
	txnPayloads     = []int{16, 128, 1024}
)

// txnMultiFraction is the YCSB-T style mix: most transactions touch a
// single partition; this fraction spans the row's participant count.
const txnMultiFraction = 0.1

// TxnRow is one (mode, participants, payload) point of the transaction
// figure.
type TxnRow struct {
	Mode         TxnMode       `json:"mode"`
	Participants int           `json:"participants"`
	PayloadBytes int           `json:"payload_bytes"`
	OpsPerSec    float64       `json:"ops_per_sec"`
	P50          time.Duration `json:"p50_ns"`
	P99          time.Duration `json:"p99_ns"`
	P999         time.Duration `json:"p999_ns"`
	Errors       uint64        `json:"errors"`
}

// Txn reproduces the cross-partition transaction comparison: a YCSB-T
// style workload (90% single-partition transactions, 10% spanning the
// row's participant count, half reads half writes) against a 3-partition
// deployment, once with minimal-ring-set multicast routing and once with
// the global-ring-everything baseline. The multicast side keeps
// single-partition traffic on the partitions' own rings, so the three
// rings order in parallel; the baseline serializes everything through one
// ring.
func Txn(opts Options) []TxnRow {
	var rows []TxnRow
	for _, mode := range TxnModes {
		for _, parts := range txnParticipants {
			for _, payload := range txnPayloads {
				row := txnPoint(opts, mode, parts, payload)
				opts.logf("txn %-10s parts=%d payload=%4dB  %9.0f txn/s  p99=%v",
					mode, parts, payload, row.OpsPerSec, row.P99.Round(10*time.Microsecond))
				rows = append(rows, row)
			}
		}
	}
	return rows
}

// txnPoint builds a fresh 3-partition deployment and drives one point.
func txnPoint(opts Options, mode TxnMode, participants, payload int) TxnRow {
	net := netsim.New(
		netsim.WithUniformLatency(50*time.Microsecond),
		netsim.WithBandwidth(10<<30/8),
	)
	defer net.Close()
	d, err := store.Deploy(store.DeployConfig{
		Net:          net,
		Partitions:   3,
		Replicas:     3,
		GlobalRing:   true,
		StorageMode:  storage.InMemory,
		SkipInterval: 5 * time.Millisecond,
		SkipRate:     9000,
		RetryTimeout: 300 * time.Millisecond,
	})
	if err != nil {
		panic(err)
	}
	defer d.Stop()

	records := make([]store.Entry, 0, opts.Records)
	for _, r := range ycsb.Load(ycsb.Config{RecordCount: opts.Records, ValueSize: payload}) {
		records = append(records, store.Entry{Key: r.Key, Value: r.Value})
	}
	d.Preload(records)

	// Pre-bucket the key space by partition so a transaction can pick
	// keys spanning exactly k partitions.
	part := d.Partitioner()
	byPart := make([][]string, 3)
	for _, r := range records {
		p := part.PartitionOf(r.Key)
		byPart[p] = append(byPart[p], r.Key)
	}

	var (
		ops  metrics.Counter
		errs metrics.Counter
		hist metrics.Histogram
	)
	deadline := time.Now().Add(opts.point())
	var wg sync.WaitGroup
	for t := 0; t < opts.Clients; t++ {
		wg.Add(1)
		go func(t int) {
			defer wg.Done()
			cl := d.NewClient()
			defer cl.Close()
			if mode == TxnGlobalAll {
				cl.ForceGlobal(true)
			}
			rng := rand.New(rand.NewSource(int64(t) + 1))
			value := make([]byte, payload)
			for time.Now().Before(deadline) {
				span := 1
				if participants > 1 && rng.Float64() < txnMultiFraction {
					span = participants
				}
				keys := make([]string, span)
				first := rng.Intn(3)
				for i := 0; i < span; i++ {
					bucket := byPart[(first+i)%3]
					keys[i] = bucket[rng.Intn(len(bucket))]
				}
				start := time.Now()
				var err error
				if rng.Intn(2) == 0 {
					_, err = cl.MultiGet(keys)
				} else {
					entries := make([]store.Entry, span)
					for i, k := range keys {
						entries[i] = store.Entry{Key: k, Value: value}
					}
					err = cl.MultiPut(entries)
				}
				if err != nil {
					errs.Add(1, 0)
					continue
				}
				hist.Record(time.Since(start))
				ops.Add(1, 0)
			}
		}(t)
	}
	wg.Wait()
	return TxnRow{
		Mode:         mode,
		Participants: participants,
		PayloadBytes: payload,
		OpsPerSec:    float64(ops.Ops()) / opts.PointSeconds,
		P50:          hist.Quantile(0.50),
		P99:          hist.Quantile(0.99),
		P999:         hist.Quantile(0.999),
		Errors:       errs.Ops(),
	}
}

// RenderTxn prints the transaction comparison.
func RenderTxn(w io.Writer, rows []TxnRow) {
	fmt.Fprintln(w, "Cross-partition transactions — minimal-ring-set multicast vs global-ring baseline")
	fmt.Fprintln(w, "(YCSB-T mix: 90% single-partition, 10% spanning `parts` partitions; txn/s aggregate)")
	fmt.Fprintf(w, "%-12s %6s %9s %12s %10s %10s %10s %8s\n",
		"mode", "parts", "payload", "txn/s", "p50", "p99", "p999", "errors")
	for _, r := range rows {
		fmt.Fprintf(w, "%-12s %6d %8dB %12.0f %10s %10s %10s %8d\n",
			r.Mode, r.Participants, r.PayloadBytes, r.OpsPerSec,
			r.P50.Round(10*time.Microsecond), r.P99.Round(10*time.Microsecond),
			r.P999.Round(10*time.Microsecond), r.Errors)
	}
}

// WriteTxnJSON emits the machine-readable companion of the transaction
// figure (BENCH_txn.json in CI).
func WriteTxnJSON(path string, rows []TxnRow) error {
	type jsonRow struct {
		Mode         TxnMode `json:"mode"`
		Participants int     `json:"participants"`
		PayloadBytes int     `json:"payload_bytes"`
		OpsPerSec    float64 `json:"ops_per_sec"`
		P50us        float64 `json:"p50_us"`
		P99us        float64 `json:"p99_us"`
		P999us       float64 `json:"p999_us"`
		Errors       uint64  `json:"errors"`
	}
	out := struct {
		Figure string    `json:"figure"`
		Rows   []jsonRow `json:"rows"`
	}{Figure: "txn"}
	for _, r := range rows {
		out.Rows = append(out.Rows, jsonRow{
			Mode:         r.Mode,
			Participants: r.Participants,
			PayloadBytes: r.PayloadBytes,
			OpsPerSec:    r.OpsPerSec,
			P50us:        float64(r.P50) / float64(time.Microsecond),
			P99us:        float64(r.P99) / float64(time.Microsecond),
			P999us:       float64(r.P999) / float64(time.Microsecond),
			Errors:       r.Errors,
		})
	}
	b, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}
