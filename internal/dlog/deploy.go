package dlog

import (
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"mrp/internal/msg"
	"mrp/internal/multiring"
	"mrp/internal/netsim"
	"mrp/internal/recovery"
	"mrp/internal/ringpaxos"
	"mrp/internal/smr"
	"mrp/internal/storage"
	"mrp/internal/transport"
)

// DeployConfig describes a dLog deployment: k logs, one ring per log, plus
// a common ring shared by all servers for multi-appends (the Figure 6
// topology: "learners subscribe to k rings and to a common ring shared by
// all learners"). Servers are co-located ring members.
type DeployConfig struct {
	// Net is the simulated network. Leave nil when providing EndpointFor.
	Net *netsim.Network
	// EndpointFor creates the endpoint for a server address; defaults to
	// Net.Endpoint.
	EndpointFor func(transport.Addr) (transport.Endpoint, error)
	// AddrFor names server endpoints; default "dlog-s<i>". Use real
	// host:port addresses for TCP deployments.
	AddrFor func(server int) transport.Addr
	// Logs is the number of logs (= rings).
	Logs int
	// Servers is the number of dLog servers (default 3).
	Servers int
	// SyncWrites selects synchronous service-level disk writes (Figure 5).
	SyncWrites bool
	// StorageMode is the acceptors' stable-storage mode.
	StorageMode storage.Mode
	// DiskModel is the per-(server, log) data disk; each log gets its own
	// device on each server, as in the vertical-scalability experiment.
	DiskModel storage.DiskModel
	// DiskScale scales disk service times.
	DiskScale float64

	// Ring tuning.
	BatchMaxBytes int
	BatchDelay    time.Duration
	SkipInterval  time.Duration
	SkipRate      int
	RetryTimeout  time.Duration
	MergeM        int

	// CacheBytes bounds each server's per-log cache.
	CacheBytes int
}

// ServerHandle bundles one dLog server.
type ServerHandle struct {
	Index   int
	Node    *multiring.Node
	Learner *multiring.Learner
	Replica *smr.Replica
	SM      *SM
	Disks   map[LogID]*storage.Disk

	ckpt    *storage.CheckpointStore
	logs    map[msg.RingID]*storage.Log
	stopped bool
}

// Deployment is a running dLog cluster.
type Deployment struct {
	cfg       DeployConfig
	Servers   []*ServerHandle
	ringPeers [][]ringpaxos.Peer
	nextID    atomic.Uint64
}

// LogRing returns the ring of one log.
func (d *Deployment) LogRing(l LogID) msg.RingID { return msg.RingID(int(l) + 1) }

// CommonRing returns the shared multi-append ring.
func (d *Deployment) CommonRing() msg.RingID { return msg.RingID(d.cfg.Logs + 1) }

// Deploy builds and starts a dLog cluster.
func Deploy(cfg DeployConfig) (*Deployment, error) {
	if cfg.Logs <= 0 {
		return nil, errors.New("dlog: need at least one log")
	}
	if cfg.Servers <= 0 {
		cfg.Servers = 3
	}
	if cfg.DiskScale <= 0 {
		cfg.DiskScale = 1
	}
	if cfg.RetryTimeout <= 0 {
		cfg.RetryTimeout = 100 * time.Millisecond
	}
	if cfg.BatchDelay <= 0 {
		cfg.BatchDelay = time.Millisecond
	}
	if cfg.MergeM <= 0 {
		cfg.MergeM = 1
	}
	if cfg.EndpointFor == nil && cfg.Net != nil {
		cfg.EndpointFor = func(a transport.Addr) (transport.Endpoint, error) {
			return cfg.Net.Endpoint(a), nil
		}
	}
	if cfg.AddrFor == nil {
		cfg.AddrFor = func(s int) transport.Addr {
			return transport.Addr(fmt.Sprintf("dlog-s%d", s))
		}
	}
	d := &Deployment{cfg: cfg}

	addrFor := cfg.AddrFor
	// All servers are members of every ring (logs + common).
	nRings := cfg.Logs + 1
	peers := make([][]ringpaxos.Peer, nRings)
	for ri := 0; ri < nRings; ri++ {
		for s := 0; s < cfg.Servers; s++ {
			peers[ri] = append(peers[ri], ringpaxos.Peer{
				ID:    msg.NodeID(s + 1),
				Addr:  addrFor(s),
				Roles: ringpaxos.RoleProposer | ringpaxos.RoleAcceptor | ringpaxos.RoleLearner,
			})
		}
	}

	d.ringPeers = peers
	for s := 0; s < cfg.Servers; s++ {
		h, err := d.buildServer(s, nil, nil)
		if err != nil {
			d.Stop()
			return nil, err
		}
		d.Servers = append(d.Servers, h)
	}
	return d, nil
}

// buildServer constructs (or rebuilds, after a crash) one dLog server.
func (d *Deployment) buildServer(s int, starts map[msg.RingID]msg.Instance, install *storage.Checkpoint) (*ServerHandle, error) {
	cfg := d.cfg
	nRings := cfg.Logs + 1
	ep, err := cfg.EndpointFor(cfg.AddrFor(s))
	if err != nil {
		return nil, err
	}
	node := multiring.NewNode(msg.NodeID(s+1), ep)
	disks := make(map[LogID]*storage.Disk)
	ckpt := storage.NewCheckpointStore(storage.NewDisk(storage.NullDisk))
	var oldLogs map[msg.RingID]*storage.Log
	if s < len(d.Servers) && d.Servers[s] != nil {
		// Stable storage survives a crash-recover cycle.
		disks = d.Servers[s].Disks
		ckpt = d.Servers[s].ckpt
		oldLogs = d.Servers[s].logs
	}
	logs := make(map[msg.RingID]*storage.Log, nRings)
	var procs []multiring.DecisionSource
	for ri := 0; ri < nRings; ri++ {
		ring := msg.RingID(ri + 1)
		// Each log ring gets its own disk per server; the common ring
		// (multi-appends) shares the first log's disk.
		var disk *storage.Disk
		if existing, ok := disks[LogID(ri)]; ok && ri < cfg.Logs {
			disk = existing
		} else if ri < cfg.Logs {
			disk = storage.NewDisk(cfg.DiskModel.Scale(cfg.DiskScale))
			disks[LogID(ri)] = disk
		} else {
			disk = disks[0]
		}
		var log *storage.Log
		if oldLogs != nil {
			log = oldLogs[ring]
		}
		if log == nil {
			log = storage.NewLogOnDisk(cfg.StorageMode, disk)
		}
		logs[ring] = log
		rcfg := ringpaxos.Config{
			Ring:          ring,
			Peers:         d.ringPeers[ri],
			Coordinator:   d.ringPeers[ri][0].ID,
			Log:           log,
			BatchMaxBytes: cfg.BatchMaxBytes,
			BatchDelay:    cfg.BatchDelay,
			SkipInterval:  cfg.SkipInterval,
			SkipRate:      cfg.SkipRate,
			RetryTimeout:  cfg.RetryTimeout,
		}
		if starts != nil {
			rcfg.StartInstance = starts[ring]
		}
		proc, err := node.Join(rcfg)
		if err != nil {
			return nil, err
		}
		procs = append(procs, proc)
	}
	learner := multiring.NewLearner(cfg.MergeM, procs...)
	sm := NewSM(SMConfig{Disks: disks, SyncWrites: cfg.SyncWrites, CacheBytes: cfg.CacheBytes})
	rep := smr.NewReplica(smr.ReplicaConfig{
		Node:    node,
		Learner: learner,
		SM:      sm,
		Ckpt:    ckpt,
	})
	if install != nil {
		rep.InstallCheckpoint(*install)
	}
	node.Service(rep.HandleService)
	node.Start()
	learner.Start()
	rep.Start()
	return &ServerHandle{
		Index: s, Node: node, Learner: learner, Replica: rep, SM: sm,
		Disks: disks, ckpt: ckpt, logs: logs,
	}, nil
}

// CrashServer stops a server and heals the rings around it.
func (d *Deployment) CrashServer(s int) {
	h := d.Servers[s]
	if h == nil || h.stopped {
		return
	}
	h.stopped = true
	h.Replica.Stop()
	h.Learner.Stop()
	h.Node.Stop()
	dead := msg.NodeID(s + 1)
	for _, other := range d.Servers {
		if other == nil || other.stopped {
			continue
		}
		for _, ring := range other.Node.Rings() {
			if proc, ok := other.Node.Process(ring); ok {
				proc.SetPeerDown(dead, true)
			}
		}
	}
}

// RecoverServer restarts a crashed server via the Section 5.2 protocol:
// checkpoint discovery from a quorum of peers, state transfer, and replay
// of the per-ring suffix from the acceptors.
func (d *Deployment) RecoverServer(s int) error {
	recEp, err := d.cfg.EndpointFor(d.cfg.AddrFor(s) + "-recovery")
	if err != nil {
		return err
	}
	var peers []transport.Addr
	for i, h := range d.Servers {
		if i != s && h != nil && !h.stopped {
			peers = append(peers, d.cfg.AddrFor(i))
		}
	}
	res, err := recovery.Recover(recovery.RecoverConfig{
		Endpoint: recEp,
		Peers:    peers,
		Local:    d.Servers[s].ckpt,
		Timeout:  10 * time.Second,
	})
	if err != nil {
		return err
	}
	_ = recEp.Close()
	starts := recovery.StartInstances(res.Checkpoint.Tuple)
	var install *storage.Checkpoint
	if res.Found {
		install = &res.Checkpoint
	}
	h, err := d.buildServer(s, starts, install)
	if err != nil {
		return err
	}
	d.Servers[s] = h
	recovered := msg.NodeID(s + 1)
	for i, other := range d.Servers {
		if i == s || other == nil || other.stopped {
			continue
		}
		for _, ring := range other.Node.Rings() {
			if proc, ok := other.Node.Process(ring); ok {
				proc.SetPeerDown(recovered, false)
			}
		}
	}
	return nil
}

// Stop shuts the deployment down.
func (d *Deployment) Stop() {
	for _, h := range d.Servers {
		if h == nil || h.stopped {
			continue
		}
		h.stopped = true
		h.Replica.Stop()
		h.Learner.Stop()
		h.Node.Stop()
	}
	d.Servers = nil
}

// NewClient creates a dLog client with a fresh endpoint.
func (d *Deployment) NewClient() *Client {
	id := 2_000_000 + d.nextID.Add(1)
	ep, err := d.cfg.EndpointFor(transport.Addr(fmt.Sprintf("dlog-client-%d", id)))
	if err != nil {
		panic(fmt.Sprintf("dlog: client endpoint: %v", err))
	}
	return d.NewClientAt(ep, id)
}

// NewClientAt creates a client on a caller-provided endpoint.
func (d *Deployment) NewClientAt(ep transport.Endpoint, id uint64) *Client {
	proposers := make(map[msg.RingID][]transport.Addr)
	var addrs []transport.Addr
	for s := 0; s < d.cfg.Servers; s++ {
		addrs = append(addrs, d.cfg.AddrFor(s))
	}
	for ri := 0; ri < d.cfg.Logs+1; ri++ {
		proposers[msg.RingID(ri+1)] = addrs
	}
	return &Client{
		smr: smr.NewClient(smr.ClientConfig{
			ID:        id,
			Endpoint:  ep,
			Proposers: proposers,
			Timeout:   20 * time.Second,
		}),
		d: d,
	}
}

// Client accesses a dLog deployment through the Table 2 operations.
type Client struct {
	smr *smr.Client
	d   *Deployment
}

// Close releases the client.
func (c *Client) Close() { c.smr.Close() }

func (c *Client) call(ring msg.RingID, o op) (result, error) {
	raw, err := c.smr.Execute(ring, o.encode())
	if err != nil {
		return result{}, err
	}
	res, err := decodeResult(raw)
	if err != nil {
		return result{}, err
	}
	if res.status == statusError {
		return res, errBadOp
	}
	return res, nil
}

// Append appends v to log l and returns the assigned position.
func (c *Client) Append(l LogID, v []byte) (uint64, error) {
	res, err := c.call(c.d.LogRing(l), op{kind: opAppend, log: l, data: v})
	if err != nil {
		return 0, err
	}
	if len(res.positions) != 1 {
		return 0, errBadOp
	}
	return res.positions[0].pos, nil
}

// MultiAppend atomically appends v to every log in logs and returns the
// position assigned in each. The command is multicast through the common
// ring so it is ordered against all single-log appends.
func (c *Client) MultiAppend(logs []LogID, v []byte) (map[LogID]uint64, error) {
	res, err := c.call(c.d.CommonRing(), op{kind: opMultiAppend, logs: logs, data: v})
	if err != nil {
		return nil, err
	}
	out := make(map[LogID]uint64, len(res.positions))
	for _, lp := range res.positions {
		out[lp.log] = lp.pos
	}
	return out, nil
}

// Read returns the value at position p of log l.
func (c *Client) Read(l LogID, p uint64) ([]byte, error) {
	res, err := c.call(c.d.LogRing(l), op{kind: opRead, log: l, pos: p})
	if err != nil {
		return nil, err
	}
	switch res.status {
	case statusTrimmed:
		return nil, ErrTrimmed
	case statusOutOfRange:
		return nil, ErrOutOfRange
	}
	return res.data, nil
}

// Trim trims log l up to position p.
func (c *Client) Trim(l LogID, p uint64) error {
	_, err := c.call(c.d.LogRing(l), op{kind: opTrim, log: l, pos: p})
	return err
}
