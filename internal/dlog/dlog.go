// Package dlog implements dLog, the distributed shared log service of the
// paper (Section 6.2): multiple concurrent writers append data to one or
// more logs atomically. Each log is a multicast group (ring); multi-append
// commands are multicast through a common ring all servers subscribe to,
// so appends spanning logs are ordered against everything else. Servers
// hold recent appends in an in-memory cache and write data to disk
// asynchronously (or synchronously, as in the Figure 5 comparison against
// Bookkeeper); trim flushes the cache up to a position.
package dlog

import (
	"encoding/binary"
	"errors"
	"sync"

	"mrp/internal/storage"
)

// LogID identifies one shared log.
type LogID uint16

// Errors returned by the service.
var (
	// ErrTrimmed reports a read below the log's trim position.
	ErrTrimmed = errors.New("dlog: position trimmed")
	// ErrOutOfRange reports a read past the log's tail.
	ErrOutOfRange = errors.New("dlog: position beyond tail")
	errBadOp      = errors.New("dlog: bad encoding")
)

// opKind tags the dLog operations of Table 2.
type opKind byte

const (
	opAppend opKind = iota + 1
	opMultiAppend
	opRead
	opTrim
)

// op is one decoded dLog operation.
type op struct {
	kind opKind
	log  LogID
	logs []LogID // multi-append targets
	pos  uint64
	data []byte
}

func (o op) encode() []byte {
	b := []byte{byte(o.kind)}
	b = binary.BigEndian.AppendUint16(b, uint16(o.log))
	b = binary.BigEndian.AppendUint16(b, uint16(len(o.logs)))
	for _, l := range o.logs {
		b = binary.BigEndian.AppendUint16(b, uint16(l))
	}
	b = binary.BigEndian.AppendUint64(b, o.pos)
	b = binary.BigEndian.AppendUint32(b, uint32(len(o.data)))
	return append(b, o.data...)
}

func decodeOp(b []byte) (op, error) {
	if len(b) < 5 {
		return op{}, errBadOp
	}
	o := op{kind: opKind(b[0]), log: LogID(binary.BigEndian.Uint16(b[1:]))}
	n := int(binary.BigEndian.Uint16(b[3:]))
	b = b[5:]
	if len(b) < n*2 {
		return op{}, errBadOp
	}
	for i := 0; i < n; i++ {
		o.logs = append(o.logs, LogID(binary.BigEndian.Uint16(b[i*2:])))
	}
	b = b[n*2:]
	if len(b) < 12 {
		return op{}, errBadOp
	}
	o.pos = binary.BigEndian.Uint64(b)
	dn := int(binary.BigEndian.Uint32(b[8:]))
	b = b[12:]
	if len(b) < dn {
		return op{}, errBadOp
	}
	o.data = b[:dn]
	switch o.kind {
	case opAppend, opMultiAppend, opRead, opTrim:
		return o, nil
	default:
		return op{}, errBadOp
	}
}

// Result status codes.
const (
	statusOK byte = iota + 1
	statusTrimmed
	statusOutOfRange
	statusError
)

// result is a server's reply: per-log positions for appends, data for
// reads.
type result struct {
	status byte
	// positions maps each appended log to the position assigned.
	positions []logPos
	data      []byte
}

type logPos struct {
	log LogID
	pos uint64
}

func (r result) encode() []byte {
	b := []byte{r.status}
	b = binary.BigEndian.AppendUint16(b, uint16(len(r.positions)))
	for _, lp := range r.positions {
		b = binary.BigEndian.AppendUint16(b, uint16(lp.log))
		b = binary.BigEndian.AppendUint64(b, lp.pos)
	}
	b = binary.BigEndian.AppendUint32(b, uint32(len(r.data)))
	return append(b, r.data...)
}

func decodeResult(b []byte) (result, error) {
	if len(b) < 3 {
		return result{}, errBadOp
	}
	r := result{status: b[0]}
	n := int(binary.BigEndian.Uint16(b[1:]))
	b = b[3:]
	if len(b) < n*10 {
		return result{}, errBadOp
	}
	for i := 0; i < n; i++ {
		r.positions = append(r.positions, logPos{
			log: LogID(binary.BigEndian.Uint16(b[i*10:])),
			pos: binary.BigEndian.Uint64(b[i*10+2:]),
		})
	}
	b = b[n*10:]
	if len(b) < 4 {
		return result{}, errBadOp
	}
	dn := int(binary.BigEndian.Uint32(b))
	b = b[4:]
	if len(b) < dn {
		return result{}, errBadOp
	}
	r.data = b[:dn]
	return r, nil
}

// logState is one log's in-memory representation at a server: entries
// since the trim position, plus cache accounting.
type logState struct {
	base       uint64 // position of entries[0]
	entries    [][]byte
	cacheBytes int
}

// SMConfig parametrizes a dLog server state machine.
type SMConfig struct {
	// Logs lists the logs this server hosts, each with the disk its data
	// is written to (Figure 6 associates each ring with a different disk).
	Disks map[LogID]*storage.Disk
	// SyncWrites makes appends hit the disk synchronously before
	// returning (the Figure 5 configuration); otherwise data is cached in
	// memory and written back asynchronously (Section 7.3).
	SyncWrites bool
	// CacheBytes bounds the in-memory cache per log (default 200 MB as in
	// the paper; exceeding it forces a synchronous-style flush wait).
	CacheBytes int
}

// SM is the dLog server state machine. Execute runs on the replica loop;
// Snapshot/Restore may be called concurrently (checkpoints, state
// transfer), so all state is mutex-protected.
type SM struct {
	cfg SMConfig

	mu   sync.Mutex
	logs map[LogID]*logState
}

// NewSM creates a dLog state machine.
func NewSM(cfg SMConfig) *SM {
	if cfg.CacheBytes <= 0 {
		cfg.CacheBytes = 200 << 20
	}
	return &SM{cfg: cfg, logs: make(map[LogID]*logState)}
}

func (s *SM) logFor(id LogID) *logState {
	l, ok := s.logs[id]
	if !ok {
		l = &logState{}
		s.logs[id] = l
	}
	return l
}

// Execute implements smr.StateMachine.
func (s *SM) Execute(raw []byte) []byte {
	o, err := decodeOp(raw)
	if err != nil {
		return result{status: statusError}.encode()
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	res := result{status: statusOK}
	switch o.kind {
	case opAppend:
		res.positions = append(res.positions, logPos{log: o.log, pos: s.append(o.log, o.data)})
	case opMultiAppend:
		// multi-append(L, v): append v to every log in L atomically.
		for _, l := range o.logs {
			res.positions = append(res.positions, logPos{log: l, pos: s.append(l, o.data)})
		}
	case opRead:
		l := s.logFor(o.log)
		switch {
		case o.pos < l.base:
			res.status = statusTrimmed
		case o.pos >= l.base+uint64(len(l.entries)):
			res.status = statusOutOfRange
		default:
			res.data = l.entries[o.pos-l.base]
			if res.data == nil {
				res.data = []byte{}
			}
		}
	case opTrim:
		s.trim(o.log, o.pos)
	}
	return res.encode()
}

// append stores the entry, charges the disk, and returns its position.
func (s *SM) append(id LogID, data []byte) uint64 {
	l := s.logFor(id)
	pos := l.base + uint64(len(l.entries))
	l.entries = append(l.entries, data)
	l.cacheBytes += len(data)
	disk := s.cfg.Disks[id]
	if s.cfg.SyncWrites {
		disk.SyncWrite(len(data))
	} else {
		disk.AsyncWrite(len(data))
		if l.cacheBytes > s.cfg.CacheBytes {
			// Cache full: block as if waiting for write-back (the paper's
			// 200 MB cache bounds memory the same way).
			l.cacheBytes = 0
		}
	}
	return pos
}

// trim flushes the cache up to and including pos and drops the entries
// ("a trim command flushes the cache up to the trim position and creates a
// new log file on disk", Section 7.3).
func (s *SM) trim(id LogID, pos uint64) {
	l := s.logFor(id)
	if pos < l.base {
		return
	}
	drop := pos - l.base + 1
	if drop > uint64(len(l.entries)) {
		drop = uint64(len(l.entries))
	}
	freed := 0
	for _, e := range l.entries[:drop] {
		freed += len(e)
	}
	l.entries = append([][]byte(nil), l.entries[drop:]...)
	l.base += drop
	l.cacheBytes -= freed
	if l.cacheBytes < 0 {
		l.cacheBytes = 0
	}
}

// Tail returns the next append position of a log (test/inspection helper).
func (s *SM) Tail(id LogID) uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	l := s.logFor(id)
	return l.base + uint64(len(l.entries))
}

// Snapshot implements smr.StateMachine. Logs are serialized in ascending
// ID order so snapshots of converged replicas are byte-identical.
func (s *SM) Snapshot() []byte {
	s.mu.Lock()
	defer s.mu.Unlock()
	ids := make([]int, 0, len(s.logs))
	for id := range s.logs {
		ids = append(ids, int(id))
	}
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j-1] > ids[j]; j-- {
			ids[j-1], ids[j] = ids[j], ids[j-1]
		}
	}
	var b []byte
	b = binary.BigEndian.AppendUint16(b, uint16(len(ids)))
	for _, idi := range ids {
		l := s.logs[LogID(idi)]
		b = binary.BigEndian.AppendUint16(b, uint16(idi))
		b = binary.BigEndian.AppendUint64(b, l.base)
		b = binary.BigEndian.AppendUint32(b, uint32(len(l.entries)))
		for _, e := range l.entries {
			b = binary.BigEndian.AppendUint32(b, uint32(len(e)))
			b = append(b, e...)
		}
	}
	return b
}

// Restore implements smr.StateMachine.
func (s *SM) Restore(b []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.logs = make(map[LogID]*logState)
	if len(b) < 2 {
		return
	}
	n := int(binary.BigEndian.Uint16(b))
	b = b[2:]
	for i := 0; i < n; i++ {
		if len(b) < 14 {
			return
		}
		id := LogID(binary.BigEndian.Uint16(b))
		base := binary.BigEndian.Uint64(b[2:])
		cnt := int(binary.BigEndian.Uint32(b[10:]))
		b = b[14:]
		l := &logState{base: base}
		for k := 0; k < cnt; k++ {
			if len(b) < 4 {
				return
			}
			en := int(binary.BigEndian.Uint32(b))
			b = b[4:]
			if len(b) < en {
				return
			}
			l.entries = append(l.entries, append([]byte(nil), b[:en]...))
			l.cacheBytes += en
			b = b[en:]
		}
		s.logs[id] = l
	}
}
