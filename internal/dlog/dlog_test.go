package dlog

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"mrp/internal/netsim"
	"mrp/internal/storage"
)

// --- codec ---

func TestOpCodecRoundTrip(t *testing.T) {
	ops := []op{
		{kind: opAppend, log: 3, data: []byte("entry")},
		{kind: opMultiAppend, logs: []LogID{0, 2, 5}, data: []byte("x")},
		{kind: opRead, log: 1, pos: 42},
		{kind: opTrim, log: 7, pos: 9},
	}
	for _, o := range ops {
		got, err := decodeOp(o.encode())
		if err != nil {
			t.Fatalf("%d: %v", o.kind, err)
		}
		if got.kind != o.kind || got.log != o.log || got.pos != o.pos ||
			!bytes.Equal(got.data, o.data) || len(got.logs) != len(o.logs) {
			t.Fatalf("round trip %+v -> %+v", o, got)
		}
	}
	if _, err := decodeOp(nil); err == nil {
		t.Fatal("nil should fail")
	}
	if _, err := decodeOp([]byte{0xFF, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0}); err == nil {
		t.Fatal("unknown kind should fail")
	}
}

func TestResultCodecRoundTrip(t *testing.T) {
	r := result{
		status:    statusOK,
		positions: []logPos{{log: 1, pos: 10}, {log: 2, pos: 3}},
		data:      []byte("d"),
	}
	got, err := decodeResult(r.encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.status != statusOK || len(got.positions) != 2 ||
		got.positions[1].pos != 3 || string(got.data) != "d" {
		t.Fatalf("round trip = %+v", got)
	}
	if _, err := decodeResult([]byte{1}); err == nil {
		t.Fatal("truncated should fail")
	}
}

// --- SM ---

func testSM(sync bool) *SM {
	fast := storage.DiskModel{SyncLatency: time.Microsecond, Bandwidth: 1 << 40, BufferBytes: 1 << 30}
	return NewSM(SMConfig{
		Disks:      map[LogID]*storage.Disk{0: storage.NewDisk(fast), 1: storage.NewDisk(fast)},
		SyncWrites: sync,
	})
}

func exec(t *testing.T, sm *SM, o op) result {
	t.Helper()
	res, err := decodeResult(sm.Execute(o.encode()))
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestSMAppendPositionsMonotone(t *testing.T) {
	sm := testSM(false)
	for i := uint64(0); i < 10; i++ {
		res := exec(t, sm, op{kind: opAppend, log: 0, data: []byte{byte(i)}})
		if res.positions[0].pos != i {
			t.Fatalf("pos = %d, want %d", res.positions[0].pos, i)
		}
	}
	if sm.Tail(0) != 10 {
		t.Fatalf("tail = %d", sm.Tail(0))
	}
	// Independent logs have independent positions.
	res := exec(t, sm, op{kind: opAppend, log: 1, data: []byte("x")})
	if res.positions[0].pos != 0 {
		t.Fatalf("log 1 pos = %d", res.positions[0].pos)
	}
}

func TestSMMultiAppend(t *testing.T) {
	sm := testSM(false)
	exec(t, sm, op{kind: opAppend, log: 0, data: []byte("a")})
	res := exec(t, sm, op{kind: opMultiAppend, logs: []LogID{0, 1}, data: []byte("m")})
	if len(res.positions) != 2 {
		t.Fatalf("positions = %+v", res.positions)
	}
	if res.positions[0].pos != 1 || res.positions[1].pos != 0 {
		t.Fatalf("positions = %+v", res.positions)
	}
}

func TestSMReadAndTrim(t *testing.T) {
	sm := testSM(false)
	for i := 0; i < 5; i++ {
		exec(t, sm, op{kind: opAppend, log: 0, data: []byte{byte('a' + i)}})
	}
	res := exec(t, sm, op{kind: opRead, log: 0, pos: 2})
	if res.status != statusOK || string(res.data) != "c" {
		t.Fatalf("read = %+v", res)
	}
	if exec(t, sm, op{kind: opRead, log: 0, pos: 99}).status != statusOutOfRange {
		t.Fatal("read past tail should be out of range")
	}
	exec(t, sm, op{kind: opTrim, log: 0, pos: 2})
	if exec(t, sm, op{kind: opRead, log: 0, pos: 2}).status != statusTrimmed {
		t.Fatal("read at trimmed position should fail")
	}
	res = exec(t, sm, op{kind: opRead, log: 0, pos: 3})
	if res.status != statusOK || string(res.data) != "d" {
		t.Fatalf("read after trim = %+v", res)
	}
	// Appends continue from the old tail.
	res = exec(t, sm, op{kind: opAppend, log: 0, data: []byte("f")})
	if res.positions[0].pos != 5 {
		t.Fatalf("pos after trim = %d", res.positions[0].pos)
	}
}

func TestSMSnapshotRestore(t *testing.T) {
	sm := testSM(false)
	for i := 0; i < 7; i++ {
		exec(t, sm, op{kind: opAppend, log: 0, data: []byte{byte(i)}})
	}
	exec(t, sm, op{kind: opTrim, log: 0, pos: 1})
	exec(t, sm, op{kind: opAppend, log: 1, data: []byte("z")})
	snap := sm.Snapshot()

	sm2 := testSM(false)
	sm2.Restore(snap)
	if sm2.Tail(0) != 7 || sm2.Tail(1) != 1 {
		t.Fatalf("restored tails = %d %d", sm2.Tail(0), sm2.Tail(1))
	}
	res := exec(t, sm2, op{kind: opRead, log: 0, pos: 2})
	if res.status != statusOK || res.data[0] != 2 {
		t.Fatalf("restored read = %+v", res)
	}
	if exec(t, sm2, op{kind: opRead, log: 0, pos: 0}).status != statusTrimmed {
		t.Fatal("trim position not restored")
	}
	if !bytes.Equal(sm2.Snapshot(), snap) {
		t.Fatal("snapshot unstable")
	}
}

func TestSMGarbageOp(t *testing.T) {
	sm := testSM(false)
	res, err := decodeResult(sm.Execute([]byte{0xFF}))
	if err != nil || res.status != statusError {
		t.Fatalf("garbage -> %+v, %v", res, err)
	}
}

// --- end-to-end ---

func testDeploy(t *testing.T, logs int, sync bool) *Deployment {
	t.Helper()
	net := netsim.New(netsim.WithUniformLatency(20 * time.Microsecond))
	d, err := Deploy(DeployConfig{
		Net:          net,
		Logs:         logs,
		Servers:      3,
		SyncWrites:   sync,
		StorageMode:  storage.InMemory,
		DiskModel:    storage.DiskModel{SyncLatency: 10 * time.Microsecond, Bandwidth: 1 << 40, BufferBytes: 1 << 30},
		SkipInterval: 5 * time.Millisecond,
		SkipRate:     200,
		RetryTimeout: 60 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		d.Stop()
		net.Close()
	})
	return d
}

func TestDLogEndToEnd(t *testing.T) {
	d := testDeploy(t, 2, false)
	cl := d.NewClient()
	defer cl.Close()

	p0, err := cl.Append(0, []byte("first"))
	if err != nil {
		t.Fatal(err)
	}
	if p0 != 0 {
		t.Fatalf("pos = %d", p0)
	}
	p1, err := cl.Append(0, []byte("second"))
	if err != nil || p1 != 1 {
		t.Fatalf("pos = %d, %v", p1, err)
	}
	v, err := cl.Read(0, 0)
	if err != nil || string(v) != "first" {
		t.Fatalf("read = %q, %v", v, err)
	}
	if _, err := cl.Read(0, 10); err != ErrOutOfRange {
		t.Fatalf("read past tail = %v", err)
	}
	if err := cl.Trim(0, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Read(0, 0); err != ErrTrimmed {
		t.Fatalf("read trimmed = %v", err)
	}
}

func TestDLogMultiAppendAtomic(t *testing.T) {
	d := testDeploy(t, 3, false)
	cl := d.NewClient()
	defer cl.Close()
	if _, err := cl.Append(1, []byte("pre")); err != nil {
		t.Fatal(err)
	}
	pos, err := cl.MultiAppend([]LogID{0, 1, 2}, []byte("multi"))
	if err != nil {
		t.Fatal(err)
	}
	if len(pos) != 3 {
		t.Fatalf("positions = %v", pos)
	}
	if pos[0] != 0 || pos[1] != 1 || pos[2] != 0 {
		t.Fatalf("positions = %v", pos)
	}
	// The multi-appended entry is readable in every log.
	for _, l := range []LogID{0, 1, 2} {
		v, err := cl.Read(l, pos[l])
		if err != nil || string(v) != "multi" {
			t.Fatalf("log %d read = %q, %v", l, v, err)
		}
	}
}

func TestDLogConcurrentWritersUniquePositions(t *testing.T) {
	d := testDeploy(t, 1, false)
	const writers = 3
	const perWriter = 20
	type res struct {
		pos uint64
		err error
	}
	results := make(chan res, writers*perWriter)
	for w := 0; w < writers; w++ {
		cl := d.NewClient()
		defer cl.Close()
		go func(cl *Client) {
			for i := 0; i < perWriter; i++ {
				p, err := cl.Append(0, []byte("w"))
				results <- res{p, err}
			}
		}(cl)
	}
	seen := make(map[uint64]bool)
	for i := 0; i < writers*perWriter; i++ {
		r := <-results
		if r.err != nil {
			t.Fatal(r.err)
		}
		if seen[r.pos] {
			t.Fatalf("duplicate position %d", r.pos)
		}
		seen[r.pos] = true
	}
	if len(seen) != writers*perWriter {
		t.Fatalf("positions = %d", len(seen))
	}
}

func TestDLogServersConverge(t *testing.T) {
	d := testDeploy(t, 2, false)
	cl := d.NewClient()
	defer cl.Close()
	for i := 0; i < 20; i++ {
		if _, err := cl.Append(LogID(i%2), []byte(fmt.Sprint(i))); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := cl.MultiAppend([]LogID{0, 1}, []byte("fin")); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		s0 := d.Servers[0].SM.Snapshot()
		s1 := d.Servers[1].SM.Snapshot()
		s2 := d.Servers[2].SM.Snapshot()
		if bytes.Equal(s0, s1) && bytes.Equal(s1, s2) {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("servers diverged")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestDLogSyncWritesCharged(t *testing.T) {
	d := testDeploy(t, 1, true)
	cl := d.NewClient()
	defer cl.Close()
	if _, err := cl.Append(0, []byte("sync")); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		syncOps, _, _ := d.Servers[0].Disks[0].Stats()
		if syncOps > 0 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("no sync disk write recorded")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestDLogTrimSurvivesRecovery is a regression test for trim state across
// crash recovery: a log is trimmed while a server is down, the survivors
// checkpoint (their snapshots carry the trim base), and after the server
// recovers from the transferred checkpoint a read below the trim position
// must still return ErrTrimmed — not resurrect dropped entries or report
// out-of-range.
func TestDLogTrimSurvivesRecovery(t *testing.T) {
	d := testDeploy(t, 1, false)
	cl := d.NewClient()
	defer cl.Close()

	for i := 0; i < 10; i++ {
		if _, err := cl.Append(0, []byte(fmt.Sprint(i))); err != nil {
			t.Fatal(err)
		}
	}
	d.CrashServer(2)
	// Trim happens while the server is down, so it can only learn the trim
	// through the recovered checkpoint (or replayed suffix).
	if err := cl.Trim(0, 4); err != nil {
		t.Fatal(err)
	}
	for i := 10; i < 15; i++ {
		if _, err := cl.Append(0, []byte(fmt.Sprint(i))); err != nil {
			t.Fatal(err)
		}
	}
	d.Servers[0].Replica.Checkpoint()
	d.Servers[1].Replica.Checkpoint()
	if err := d.RecoverServer(2); err != nil {
		t.Fatal(err)
	}
	// Wait for the recovered server to converge with a survivor.
	deadline := time.Now().Add(15 * time.Second)
	for !bytes.Equal(d.Servers[0].SM.Snapshot(), d.Servers[2].SM.Snapshot()) {
		if time.Now().After(deadline) {
			t.Fatal("recovered server diverged")
		}
		time.Sleep(10 * time.Millisecond)
	}
	// Ask the recovered server's state machine directly (a client read
	// keeps the first reply, which could come from a survivor).
	res := exec(t, d.Servers[2].SM, op{kind: opRead, log: 0, pos: 2})
	if res.status != statusTrimmed {
		t.Fatalf("read below trim on recovered server = %+v, want trimmed", res)
	}
	res = exec(t, d.Servers[2].SM, op{kind: opRead, log: 0, pos: 7})
	if res.status != statusOK || string(res.data) != "7" {
		t.Fatalf("read above trim on recovered server = %+v", res)
	}
	if tail := d.Servers[2].SM.Tail(0); tail != 15 {
		t.Fatalf("recovered tail = %d", tail)
	}
	// The end-to-end path agrees.
	if _, err := cl.Read(0, 1); err != ErrTrimmed {
		t.Fatalf("client read below trim = %v", err)
	}
}

// TestDLogCrashAndRecoverServer exercises the Section 5.2 recovery protocol
// on the log service: a server dies, appends continue on the majority, the
// survivors checkpoint, and the server recovers to an identical state.
func TestDLogCrashAndRecoverServer(t *testing.T) {
	d := testDeploy(t, 2, false)
	cl := d.NewClient()
	defer cl.Close()

	for i := 0; i < 10; i++ {
		if _, err := cl.Append(LogID(i%2), []byte(fmt.Sprint(i))); err != nil {
			t.Fatal(err)
		}
	}
	d.CrashServer(2)
	for i := 10; i < 25; i++ {
		if _, err := cl.Append(LogID(i%2), []byte(fmt.Sprint(i))); err != nil {
			t.Fatal(err)
		}
	}
	// Survivors checkpoint so the recovering server can transfer state.
	d.Servers[0].Replica.Checkpoint()
	d.Servers[1].Replica.Checkpoint()

	if err := d.RecoverServer(2); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.MultiAppend([]LogID{0, 1}, []byte("post-recovery")); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(15 * time.Second)
	for {
		s0 := d.Servers[0].SM.Snapshot()
		s2 := d.Servers[2].SM.Snapshot()
		if bytes.Equal(s0, s2) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("recovered server diverged")
		}
		time.Sleep(10 * time.Millisecond)
	}
	// The recovered server serves reads with correct positions.
	if tail := d.Servers[2].SM.Tail(0); tail != d.Servers[0].SM.Tail(0) {
		t.Fatalf("tails diverged: %d vs %d", tail, d.Servers[0].SM.Tail(0))
	}
}
