package lint

import (
	"go/ast"
	"go/types"
)

// Scope is the computed deterministic scope of a module: the set of
// functions that must be replica-deterministic, with a short provenance
// for each (how the function entered the scope).
//
// The scope starts from the marked roots (//mrp:deterministic on functions
// or package docs) and propagates through the call graph: a function
// statically called by a deterministic function is deterministic too, as
// is every concrete implementation of an interface method it calls (class
// hierarchy analysis over the marked packages — this is what carries the
// scope from smr.Replica.apply through smr.StateMachine.Execute into
// store.SM.apply). Propagation descends only into packages that carry at
// least one mrp marker: unmarked layers (transport, registry, netsim) are
// explicit boundaries whose nondeterminism is confined behind their API.
type Scope struct {
	inScope map[*types.Func]string
	bodies  map[*types.Func]*ast.FuncDecl
}

// Deterministic returns the provenance of fn in the scope and whether it
// is in scope. (The name predates the hot-path scope, which reuses the
// same propagation; Contains is the role-neutral alias.)
func (s *Scope) Deterministic(fn *types.Func) (string, bool) {
	why, ok := s.inScope[fn]
	return why, ok
}

// Contains returns the provenance of fn in the scope and whether it is in
// scope.
func (s *Scope) Contains(fn *types.Func) (string, bool) {
	why, ok := s.inScope[fn]
	return why, ok
}

// Body returns the declaration of a module function (nil for functions
// without bodies or outside the module).
func (s *Scope) Body(fn *types.Func) *ast.FuncDecl { return s.bodies[fn] }

// scopeSpec parameterizes marked-scope propagation: which functions are
// roots, which stop propagation, and which callees it may descend into.
type scopeSpec struct {
	root     func(fn *types.Func, pkg *Package) (string, bool)
	stop     func(fn *types.Func) bool
	eligible func(fn *types.Func) bool
}

// BuildScope computes the deterministic scope of the module.
func BuildScope(m *Module, mk *Markers) *Scope {
	return buildScope(m, mk, scopeSpec{
		root: func(fn *types.Func, pkg *Package) (string, bool) {
			switch {
			case mk.det[fn]:
				return "marked //mrp:deterministic", true
			case mk.pkgDet[pkg.Types]:
				return "package " + pkg.Types.Name() + " is marked //mrp:deterministic", true
			}
			return "", false
		},
		stop: func(fn *types.Func) bool { return mk.nondet[fn] },
		eligible: func(fn *types.Func) bool {
			if mk.det[fn] {
				return true
			}
			pkg := fn.Pkg()
			return pkg != nil && mk.eligible[pkg]
		},
	})
}

// BuildHotScope computes the hot-path scope: roots are //mrp:hotpath
// functions, //mrp:coldpath stops propagation (rare branches reached from
// a hot loop pay their allocations outside the steady state), and the
// graph descends only into packages that opted into the allocation
// discipline by carrying a hot-family marker.
func BuildHotScope(m *Module, mk *Markers) *Scope {
	return buildScope(m, mk, scopeSpec{
		root: func(fn *types.Func, pkg *Package) (string, bool) {
			if mk.hot[fn] {
				return "marked //mrp:hotpath", true
			}
			return "", false
		},
		stop: func(fn *types.Func) bool { return mk.cold[fn] },
		eligible: func(fn *types.Func) bool {
			if mk.hot[fn] {
				return true
			}
			pkg := fn.Pkg()
			return pkg != nil && mk.hotEligible[pkg]
		},
	})
}

// buildScope runs the worklist propagation shared by the deterministic
// and hot-path scopes.
func buildScope(m *Module, mk *Markers, spec scopeSpec) *Scope {
	s := &Scope{
		inScope: make(map[*types.Func]string),
		bodies:  make(map[*types.Func]*ast.FuncDecl),
	}
	var worklist []*types.Func
	add := func(fn *types.Func, why string) {
		if fn == nil || spec.stop(fn) {
			return
		}
		if _, ok := s.inScope[fn]; ok {
			return
		}
		s.inScope[fn] = why
		worklist = append(worklist, fn)
	}

	m.eachFuncDecl(func(pkg *Package, file *ast.File, decl *ast.FuncDecl) {
		fn := m.funcFor(decl)
		if fn == nil {
			return
		}
		if decl.Body != nil {
			s.bodies[fn] = decl
		}
		if why, ok := spec.root(fn, pkg); ok {
			add(fn, why)
		}
	})

	concrete := eligibleNamedTypes(m, mk)
	for len(worklist) > 0 {
		fn := worklist[len(worklist)-1]
		worklist = worklist[:len(worklist)-1]
		body := s.bodies[fn]
		if body == nil {
			continue
		}
		via := "reached from " + relName(fn)
		ast.Inspect(body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := calleeOf(m.Info, call)
			if callee == nil {
				return true
			}
			if iface := interfaceRecv(callee); iface != nil {
				for _, impl := range implementations(concrete, iface, callee) {
					if spec.eligible(impl) {
						add(impl, via+" (via "+relName(callee)+")")
					}
				}
				return true
			}
			if spec.eligible(callee) {
				add(callee, via)
			}
			return true
		})
	}
	return s
}

// interfaceRecv returns the interface type fn is declared on, or nil for
// concrete functions and methods.
func interfaceRecv(fn *types.Func) *types.Interface {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	iface, _ := sig.Recv().Type().Underlying().(*types.Interface)
	return iface
}

// eligibleNamedTypes collects the named (non-interface) types declared in
// marker-carrying packages — the candidate set for interface resolution.
func eligibleNamedTypes(m *Module, mk *Markers) []types.Type {
	var out []types.Type
	for _, pkg := range m.Pkgs {
		if !mk.eligible[pkg.Types] {
			continue
		}
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			if _, isIface := tn.Type().Underlying().(*types.Interface); isIface {
				continue
			}
			out = append(out, tn.Type())
		}
	}
	return out
}

// implementations finds the concrete methods that an interface method call
// can dispatch to among the candidate types.
func implementations(candidates []types.Type, iface *types.Interface, method *types.Func) []*types.Func {
	var out []*types.Func
	for _, t := range candidates {
		var impl types.Type
		switch {
		case types.Implements(t, iface):
			impl = t
		case types.Implements(types.NewPointer(t), iface):
			impl = types.NewPointer(t)
		default:
			continue
		}
		obj, _, _ := types.LookupFieldOrMethod(impl, true, method.Pkg(), method.Name())
		if f, ok := obj.(*types.Func); ok {
			out = append(out, f)
		}
	}
	return out
}

// relName renders a function name with its receiver but without the
// package path ("(*Replica).apply").
func relName(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if ok && sig.Recv() != nil {
		return types.TypeString(sig.Recv().Type(), func(*types.Package) string { return "" }) + "." + fn.Name()
	}
	return fn.Name()
}
