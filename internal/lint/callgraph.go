package lint

import (
	"go/ast"
	"go/types"
)

// Scope is the computed deterministic scope of a module: the set of
// functions that must be replica-deterministic, with a short provenance
// for each (how the function entered the scope).
//
// The scope starts from the marked roots (//mrp:deterministic on functions
// or package docs) and propagates through the call graph: a function
// statically called by a deterministic function is deterministic too, as
// is every concrete implementation of an interface method it calls (class
// hierarchy analysis over the marked packages — this is what carries the
// scope from smr.Replica.apply through smr.StateMachine.Execute into
// store.SM.apply). Propagation descends only into packages that carry at
// least one mrp marker: unmarked layers (transport, registry, netsim) are
// explicit boundaries whose nondeterminism is confined behind their API.
type Scope struct {
	deterministic map[*types.Func]string
	bodies        map[*types.Func]*ast.FuncDecl
}

// Deterministic returns the provenance of fn in the deterministic scope
// and whether it is in scope.
func (s *Scope) Deterministic(fn *types.Func) (string, bool) {
	why, ok := s.deterministic[fn]
	return why, ok
}

// Body returns the declaration of a module function (nil for functions
// without bodies or outside the module).
func (s *Scope) Body(fn *types.Func) *ast.FuncDecl { return s.bodies[fn] }

// BuildScope computes the deterministic scope of the module.
func BuildScope(m *Module, mk *Markers) *Scope {
	s := &Scope{
		deterministic: make(map[*types.Func]string),
		bodies:        make(map[*types.Func]*ast.FuncDecl),
	}
	var worklist []*types.Func
	add := func(fn *types.Func, why string) {
		if fn == nil || mk.nondet[fn] {
			return
		}
		if _, ok := s.deterministic[fn]; ok {
			return
		}
		s.deterministic[fn] = why
		worklist = append(worklist, fn)
	}

	m.eachFuncDecl(func(pkg *Package, file *ast.File, decl *ast.FuncDecl) {
		fn := m.funcFor(decl)
		if fn == nil {
			return
		}
		if decl.Body != nil {
			s.bodies[fn] = decl
		}
		switch {
		case mk.det[fn]:
			add(fn, "marked //mrp:deterministic")
		case mk.pkgDet[pkg.Types]:
			add(fn, "package "+pkg.Types.Name()+" is marked //mrp:deterministic")
		}
	})

	concrete := eligibleNamedTypes(m, mk)
	for len(worklist) > 0 {
		fn := worklist[len(worklist)-1]
		worklist = worklist[:len(worklist)-1]
		body := s.bodies[fn]
		if body == nil {
			continue
		}
		via := "reached from " + relName(fn)
		ast.Inspect(body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := calleeOf(m.Info, call)
			if callee == nil {
				return true
			}
			if iface := interfaceRecv(callee); iface != nil {
				for _, impl := range implementations(concrete, iface, callee) {
					if eligibleCallee(mk, impl) {
						add(impl, via+" (via "+relName(callee)+")")
					}
				}
				return true
			}
			if eligibleCallee(mk, callee) {
				add(callee, via)
			}
			return true
		})
	}
	return s
}

// eligibleCallee reports whether propagation may enter fn: its package
// carries mrp markers, or it is itself explicitly marked.
func eligibleCallee(mk *Markers, fn *types.Func) bool {
	if mk.det[fn] {
		return true
	}
	pkg := fn.Pkg()
	return pkg != nil && mk.eligible[pkg]
}

// interfaceRecv returns the interface type fn is declared on, or nil for
// concrete functions and methods.
func interfaceRecv(fn *types.Func) *types.Interface {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	iface, _ := sig.Recv().Type().Underlying().(*types.Interface)
	return iface
}

// eligibleNamedTypes collects the named (non-interface) types declared in
// marker-carrying packages — the candidate set for interface resolution.
func eligibleNamedTypes(m *Module, mk *Markers) []types.Type {
	var out []types.Type
	for _, pkg := range m.Pkgs {
		if !mk.eligible[pkg.Types] {
			continue
		}
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			if _, isIface := tn.Type().Underlying().(*types.Interface); isIface {
				continue
			}
			out = append(out, tn.Type())
		}
	}
	return out
}

// implementations finds the concrete methods that an interface method call
// can dispatch to among the candidate types.
func implementations(candidates []types.Type, iface *types.Interface, method *types.Func) []*types.Func {
	var out []*types.Func
	for _, t := range candidates {
		var impl types.Type
		switch {
		case types.Implements(t, iface):
			impl = t
		case types.Implements(types.NewPointer(t), iface):
			impl = types.NewPointer(t)
		default:
			continue
		}
		obj, _, _ := types.LookupFieldOrMethod(impl, true, method.Pkg(), method.Name())
		if f, ok := obj.(*types.Func); ok {
			out = append(out, f)
		}
	}
	return out
}

// relName renders a function name with its receiver but without the
// package path ("(*Replica).apply").
func relName(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if ok && sig.Recv() != nil {
		return types.TypeString(sig.Recv().Type(), func(*types.Package) string { return "" }) + "." + fn.Name()
	}
	return fn.Name()
}
