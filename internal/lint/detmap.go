package lint

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"
)

// DetMap flags `range` over a map inside a deterministic function: Go
// randomizes map iteration order per range, so any order-sensitive effect
// — bytes appended to a checkpoint encoding, commands applied to state, a
// hash, a reply payload — diverges between replicas executing the same
// command stream.
//
// A map range is accepted when the analyzer can see it is harmless:
//
//   - every iteration effect is order-insensitive (writes keyed by the
//     iteration key, commutative numeric accumulation, constant flag
//     sets, deletes), or
//   - the loop only collects keys/values into slices that are passed to a
//     sort.* / slices.Sort* call later in the same function before use.
//
// Anything else is reported with a mechanical sorted-keys rewrite when
// one applies. Iterations that are order-insensitive for reasons the
// analyzer cannot prove carry a "//mrp:orderinsensitive — reason" marker.
var DetMap = &Analyzer{
	Name: "detmap",
	Doc:  "flag nondeterministic map iteration in deterministic functions",
	Run:  runDetMap,
}

func runDetMap(p *Pass) {
	info := p.Module.Info
	p.Module.eachFuncDecl(func(pkg *Package, file *ast.File, decl *ast.FuncDecl) {
		fn := p.Module.funcFor(decl)
		if fn == nil || decl.Body == nil {
			return
		}
		why, ok := p.Scope.Deterministic(fn)
		if !ok {
			return
		}
		ast.Inspect(decl.Body, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := info.TypeOf(rs.X)
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return true
			}
			insens := classifyRangeBody(info, rs)
			if insens.orderInsensitive() {
				return true
			}
			if sortedAfter(info, decl, rs, insens.appended) {
				return true
			}
			fix := sortedKeysFix(p.Module, pkg, rs, t.Underlying().(*types.Map))
			msg := fmt.Sprintf("map iteration order reaches deterministic state (%s is deterministic: %s); sort the keys first or prove the loop order-insensitive", relName(fn), why)
			if fix != nil {
				p.ReportWithFix(rs.For, fix, "%s", msg)
			} else {
				p.Report(rs.For, "%s", msg)
			}
			return true
		})
	})
}

// rangeEffects summarizes what a map-range body does, conservatively.
type rangeEffects struct {
	// ok is false when the body contains an effect the analyzer cannot
	// classify (general calls, writes through builders, sends, ...).
	ok bool
	// accum is set when the body accumulates non-constant data (numeric
	// sums, map writes) — harmless alone, order-sensitive combined with an
	// early exit.
	accum bool
	// earlyExit is set for break / constant return inside the loop.
	earlyExit bool
	// appended collects slice variables the body appends to; they are
	// order-sensitive unless sorted later (see sortedAfter).
	appended map[types.Object]bool
}

func (e rangeEffects) orderInsensitive() bool {
	return e.ok && len(e.appended) == 0 && !(e.accum && e.earlyExit)
}

// classifyRangeBody classifies every statement of a map-range body.
func classifyRangeBody(info *types.Info, rs *ast.RangeStmt) rangeEffects {
	e := rangeEffects{ok: true, appended: make(map[types.Object]bool)}
	classifyStmts(info, rs.Body.List, &e)
	return e
}

func classifyStmts(info *types.Info, stmts []ast.Stmt, e *rangeEffects) {
	for _, s := range stmts {
		classifyStmt(info, s, e)
	}
}

func classifyStmt(info *types.Info, s ast.Stmt, e *rangeEffects) {
	switch s := s.(type) {
	case *ast.AssignStmt:
		classifyAssign(info, s, e)
	case *ast.IncDecStmt:
		e.accum = true
	case *ast.ExprStmt:
		call, ok := s.X.(*ast.CallExpr)
		if !ok || !isBuiltin(info, call, "delete") {
			e.ok = false
			return
		}
		e.accum = true
	case *ast.IfStmt:
		if exprBlocks(s.Cond) {
			e.ok = false
			return
		}
		classifyStmts(info, s.Body.List, e)
		if s.Else != nil {
			classifyStmt(info, s.Else, e)
		}
	case *ast.BlockStmt:
		classifyStmts(info, s.List, e)
	case *ast.BranchStmt:
		switch s.Tok {
		case token.CONTINUE:
		case token.BREAK:
			e.earlyExit = true
		default:
			e.ok = false
		}
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			if tv, ok := info.Types[r]; !ok || tv.Value == nil {
				e.ok = false // non-constant result: which element won depends on order
				return
			}
		}
		e.earlyExit = true
	case *ast.RangeStmt, *ast.ForStmt:
		// Nested loops: classify their bodies under the same rules.
		switch s := s.(type) {
		case *ast.RangeStmt:
			classifyStmts(info, s.Body.List, e)
		case *ast.ForStmt:
			classifyStmts(info, s.Body.List, e)
		}
	case *ast.DeclStmt:
	default:
		e.ok = false
	}
}

// classifyAssign accepts map-indexed writes, numeric compound assignment,
// constant flag sets, and slice appends (recorded for sortedAfter).
func classifyAssign(info *types.Info, s *ast.AssignStmt, e *rangeEffects) {
	// s = append(s, x) — record the slice for the sorted-after check.
	if len(s.Lhs) == 1 && len(s.Rhs) == 1 {
		if call, ok := s.Rhs[0].(*ast.CallExpr); ok && isBuiltin(info, call, "append") {
			if id, ok := ast.Unparen(s.Lhs[0]).(*ast.Ident); ok {
				if obj := info.ObjectOf(id); obj != nil {
					e.appended[obj] = true
					return
				}
			}
			e.ok = false
			return
		}
	}
	switch s.Tok {
	case token.ADD_ASSIGN, token.OR_ASSIGN, token.AND_ASSIGN, token.XOR_ASSIGN, token.MUL_ASSIGN:
		for _, l := range s.Lhs {
			if !isNumeric(info, l) {
				e.ok = false
				return
			}
		}
		e.accum = true
	case token.ASSIGN, token.DEFINE:
		for i, l := range s.Lhs {
			switch l := ast.Unparen(l).(type) {
			case *ast.IndexExpr:
				// A write keyed per iteration (m2[k] = v): insensitive.
				if t := info.TypeOf(l.X); t != nil {
					if _, isMap := t.Underlying().(*types.Map); isMap {
						e.accum = true
						continue
					}
				}
				e.ok = false
				return
			case *ast.Ident:
				if l.Name == "_" {
					continue
				}
				// Constant flag set (found = true): idempotent.
				if i < len(s.Rhs) {
					if tv, ok := info.Types[s.Rhs[i]]; ok && tv.Value != nil {
						continue
					}
				}
				e.ok = false
				return
			default:
				e.ok = false
				return
			}
		}
	default:
		e.ok = false
	}
}

// exprBlocks reports whether an expression contains a channel receive
// (which would also make the loop scheduling-dependent).
func exprBlocks(x ast.Expr) bool {
	blocks := false
	ast.Inspect(x, func(n ast.Node) bool {
		if u, ok := n.(*ast.UnaryExpr); ok && u.Op == token.ARROW {
			blocks = true
		}
		return !blocks
	})
	return blocks
}

func isBuiltin(info *types.Info, call *ast.CallExpr, name string) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, isBuiltin := info.Uses[id].(*types.Builtin)
	return isBuiltin
}

func isNumeric(info *types.Info, x ast.Expr) bool {
	t := info.TypeOf(x)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&(types.IsNumeric) != 0
}

// sortedAfter reports whether every slice the loop appends to is passed to
// a sort call later in the same function (the collect-then-sort idiom).
func sortedAfter(info *types.Info, decl *ast.FuncDecl, rs *ast.RangeStmt, appended map[types.Object]bool) bool {
	if len(appended) == 0 {
		return false
	}
	sorted := make(map[types.Object]bool)
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rs.End() {
			return true
		}
		callee := calleeOf(info, call)
		if callee == nil || callee.Pkg() == nil {
			return true
		}
		if path := callee.Pkg().Path(); path != "sort" && path != "slices" {
			return true
		}
		for _, arg := range call.Args {
			ast.Inspect(arg, func(an ast.Node) bool {
				if id, ok := an.(*ast.Ident); ok {
					if obj := info.ObjectOf(id); obj != nil && appended[obj] {
						sorted[obj] = true
					}
				}
				return true
			})
		}
		return true
	})
	for obj := range appended {
		if !sorted[obj] {
			return false
		}
	}
	return true
}

// sortedKeysFix builds the mechanical sorted-keys rewrite
//
//	for k, v := range m { ... }
//
// becomes
//
//	keys := make([]K, 0, len(m))
//	for k := range m {
//		keys = append(keys, k)
//	}
//	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
//	for _, k := range keys {
//		v := m[k]
//		...
//	}
//
// when the key is an identifier of an ordered basic type. Returns nil when
// the shape does not apply.
func sortedKeysFix(m *Module, pkg *Package, rs *ast.RangeStmt, mt *types.Map) *Fix {
	if rs.Tok != token.DEFINE {
		return nil
	}
	key, ok := rs.Key.(*ast.Ident)
	if !ok || key.Name == "_" {
		return nil
	}
	if !ordered(mt.Key()) {
		return nil
	}
	keysName := "keys"
	if usesName(rs, keysName) {
		keysName = "sortedKeys"
	}
	qual := func(p *types.Package) string {
		if p == pkg.Types {
			return ""
		}
		return p.Name()
	}
	keyType := types.TypeString(mt.Key(), qual)
	x := exprString(m.Fset, rs.X)
	var b bytes.Buffer
	fmt.Fprintf(&b, "%s := make([]%s, 0, len(%s))\n", keysName, keyType, x)
	fmt.Fprintf(&b, "for %s := range %s {\n%s = append(%s, %s)\n}\n", key.Name, x, keysName, keysName, key.Name)
	fmt.Fprintf(&b, "sort.Slice(%s, func(i, j int) bool { return %s[i] < %s[j] })\n", keysName, keysName, keysName)
	fmt.Fprintf(&b, "for _, %s := range %s {\n", key.Name, keysName)
	if v, ok := rs.Value.(*ast.Ident); ok && v.Name != "_" {
		fmt.Fprintf(&b, "%s := %s[%s]\n", v.Name, x, key.Name)
	}
	return &Fix{
		Message:     "iterate over sorted keys",
		NeedsImport: "sort",
		Edits: []TextEdit{{
			Pos:     rs.For,
			End:     rs.Body.Lbrace + 1,
			NewText: b.String(),
		}},
	}
}

// ordered reports whether < is defined and deterministic for the type.
func ordered(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&(types.IsOrdered) != 0
}

func usesName(n ast.Node, name string) bool {
	found := false
	ast.Inspect(n, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && id.Name == name {
			found = true
		}
		return !found
	})
	return found
}

// exprString renders an expression as source text.
func exprString(fset *token.FileSet, x ast.Expr) string {
	var b bytes.Buffer
	if err := printer.Fprint(&b, fset, x); err != nil {
		return "<expr>"
	}
	return b.String()
}
