package lint

import (
	"fmt"
	"go/ast"
	"go/format"
	"os"
	"sort"
	"strconv"
)

// ApplyFixes applies the suggested fixes of the given diagnostics to the
// files on disk (gofmt-formatting the result) and returns the changed
// file names. Diagnostics without fixes are ignored. Overlapping fixes in
// one file are applied first-wins.
func ApplyFixes(m *Module, diags []Diagnostic) ([]string, error) {
	type fileEdits struct {
		edits   []TextEdit
		imports map[string]bool
	}
	byFile := make(map[string]*fileEdits)
	for _, d := range diags {
		if d.Fix == nil {
			continue
		}
		for _, e := range d.Fix.Edits {
			name := m.Fset.Position(e.Pos).Filename
			fe := byFile[name]
			if fe == nil {
				fe = &fileEdits{imports: make(map[string]bool)}
				byFile[name] = fe
			}
			fe.edits = append(fe.edits, e)
			if d.Fix.NeedsImport != "" {
				fe.imports[d.Fix.NeedsImport] = true
			}
		}
	}
	var changed []string
	for name, fe := range byFile {
		src, err := os.ReadFile(name)
		if err != nil {
			return changed, err
		}
		tf := m.Fset.File(fe.edits[0].Pos)
		if tf == nil {
			return changed, fmt.Errorf("lint: no file for fix in %s", name)
		}
		sort.Slice(fe.edits, func(i, j int) bool { return fe.edits[i].Pos > fe.edits[j].Pos })
		out := src
		var lastStart int = len(out) + 1
		for _, e := range fe.edits {
			start, end := tf.Offset(e.Pos), tf.Offset(e.End)
			if end > lastStart {
				continue // overlapping fix: first (later-sorted) one wins
			}
			out = append(out[:start:start], append([]byte(e.NewText), out[end:]...)...)
			lastStart = start
		}
		for imp := range fe.imports {
			out = addImport(m, name, out, tf.Offset(fe.edits[len(fe.edits)-1].Pos), imp)
		}
		formatted, err := format.Source(out)
		if err != nil {
			return changed, fmt.Errorf("lint: fixed %s does not parse: %w", name, err)
		}
		if err := os.WriteFile(name, formatted, 0o644); err != nil {
			return changed, err
		}
		changed = append(changed, name)
	}
	sort.Strings(changed)
	return changed, nil
}

// addImport inserts an import into the edited source if the original file
// does not already import it. offsetHint is unused beyond locating the
// file's AST. The insertion is textual; format.Source normalizes it.
func addImport(m *Module, filename string, src []byte, offsetHint int, path string) []byte {
	var file *ast.File
	for _, pkg := range m.Pkgs {
		for _, f := range pkg.Files {
			if m.Fset.Position(f.Pos()).Filename == filename {
				file = f
			}
		}
	}
	if file == nil {
		return src
	}
	for _, imp := range file.Imports {
		if p, err := strconv.Unquote(imp.Path.Value); err == nil && p == path {
			return src
		}
	}
	tf := m.Fset.File(file.Pos())
	quoted := strconv.Quote(path)
	for _, d := range file.Decls {
		gd, ok := d.(*ast.GenDecl)
		if !ok || gd.Tok.String() != "import" {
			continue
		}
		if gd.Lparen.IsValid() {
			at := tf.Offset(gd.Lparen) + 1
			return append(src[:at:at], append([]byte("\n\t"+quoted), src[at:]...)...)
		}
		// Single-spec import: turn the insertion point into an extra line
		// before it; format.Source will merge.
		at := tf.Offset(gd.Pos())
		return append(src[:at:at], append([]byte("import "+quoted+"\n"), src[at:]...)...)
	}
	// No imports at all: insert after the package clause line.
	at := tf.Offset(file.Name.End())
	return append(src[:at:at], append([]byte("\n\nimport "+quoted), src[at:]...)...)
}
