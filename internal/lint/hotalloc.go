package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// HotAlloc flags heap allocations inside the hot-path scope — the
// delivery→execute→reply path in smr, the learner merge in multiring, and
// the SM apply path in store. PR 9's allocation sweep got the steady state
// down to fractions of an allocation per applied command; this analyzer is
// what keeps those B/op wins from silently regressing under later
// refactors (the pinned benchmarks catch the regression, hotalloc names
// the line).
//
// Scope is declared with "//mrp:hotpath" on a function's doc comment and
// propagated through the call graph exactly like the deterministic scope
// (static calls plus interface dispatch via class-hierarchy analysis),
// descending only into packages that carry at least one hot-family marker.
// "//mrp:coldpath" stops propagation into rare branches (reconfiguration,
// admin ops) whose allocations are paid outside the steady state.
//
// The analysis is conservative and syntactic — it has no escape analysis,
// so it flags the allocation shapes that matter on this code base:
//
//   - make, new, and &T{...} composite literals (assumed to escape);
//   - slice/map literals with elements (backing arrays);
//   - non-pointer-shaped values boxed into interface parameters, results,
//     or channel sends;
//   - string<->[]byte conversions, except the compiler-optimized map-read
//     index m[string(b)] and string comparisons;
//   - fmt formatting and errors.New calls;
//   - closures that capture enclosing variables, and method values;
//   - append growth on nil-initialized locals (no scratch reuse).
//
// A deliberate allocation is allowed with an "//mrp:alloc — reason" marker
// on the line (amortized arena refills, cold-entry scratch creation, state
// growth that must outlive the call).
var HotAlloc = &Analyzer{
	Name: "hotalloc",
	Doc:  "flag heap allocations in //mrp:hotpath scope",
	Run:  runHotAlloc,
}

// allocHint closes every hotalloc message with the allowance contract.
const allocHint = `; keep the steady state allocation-free or annotate "//mrp:alloc — reason"`

func runHotAlloc(p *Pass) {
	p.Module.eachFuncDecl(func(pkg *Package, file *ast.File, decl *ast.FuncDecl) {
		fn := p.Module.funcFor(decl)
		if fn == nil || decl.Body == nil {
			return
		}
		why, ok := p.Hot.Contains(fn)
		if !ok {
			return
		}
		w := &allocWalker{
			pass:    p,
			info:    p.Module.Info,
			decl:    decl,
			why:     why,
			parents: parentsOf(decl.Body),
		}
		w.collectNilSlices(decl.Body)
		ast.Inspect(decl.Body, w.visit)
	})
}

// parentsOf maps every node under root to its syntactic parent.
func parentsOf(root ast.Node) map[ast.Node]ast.Node {
	parents := make(map[ast.Node]ast.Node)
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if len(stack) > 0 {
			parents[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})
	return parents
}

type allocWalker struct {
	pass    *Pass
	info    *types.Info
	decl    *ast.FuncDecl
	why     string
	parents map[ast.Node]ast.Node
	// nilSlices holds slice locals declared without an initializer; the
	// first append to one is heap growth with no scratch to reuse.
	nilSlices map[types.Object]bool
	reported  map[types.Object]bool
}

func (w *allocWalker) report(pos token.Pos, format string, args ...any) {
	args = append(args, w.why, allocHint)
	w.pass.Report(pos, format+" in hot-path scope (%s)%s", args...)
}

// collectNilSlices records `var x []T` locals and forgets any that are
// later reassigned from something other than an append to themselves.
func (w *allocWalker) collectNilSlices(body *ast.BlockStmt) {
	w.nilSlices = make(map[types.Object]bool)
	w.reported = make(map[types.Object]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		gd, ok := n.(*ast.GenDecl)
		if !ok || gd.Tok != token.VAR {
			return true
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok || len(vs.Values) != 0 {
				continue
			}
			for _, name := range vs.Names {
				obj := w.info.Defs[name]
				if obj == nil {
					continue
				}
				if _, isSlice := obj.Type().Underlying().(*types.Slice); isSlice {
					w.nilSlices[obj] = true
				}
			}
		}
		return true
	})
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, lhs := range as.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok {
				continue
			}
			obj := w.info.Uses[id]
			if obj == nil || !w.nilSlices[obj] {
				continue
			}
			if i < len(as.Rhs) && isAppendTo(w.info, as.Rhs[i], obj) {
				continue
			}
			// Reassigned from elsewhere: the append rule no longer owns it
			// (the new source is checked at its own site).
			delete(w.nilSlices, obj)
		}
		return true
	})
}

// isAppendTo reports whether x is append(obj, ...).
func isAppendTo(info *types.Info, x ast.Expr, obj types.Object) bool {
	call, ok := ast.Unparen(x).(*ast.CallExpr)
	if !ok || !isBuiltin(info, call, "append") || len(call.Args) == 0 {
		return false
	}
	id, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
	return ok && info.Uses[id] == obj
}

func (w *allocWalker) visit(n ast.Node) bool {
	switch n := n.(type) {
	case *ast.CallExpr:
		w.call(n)
	case *ast.UnaryExpr:
		if n.Op == token.AND {
			if lit, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
				w.report(n.Pos(), "&%s composite literal escapes to the heap", litName(w.info, lit))
			}
		}
	case *ast.CompositeLit:
		w.composite(n)
	case *ast.FuncLit:
		if captured := w.captures(n); captured != "" {
			w.report(n.Pos(), "closure capturing %s allocates", captured)
		}
	case *ast.SelectorExpr:
		if sel, ok := w.info.Selections[n]; ok && sel.Kind() == types.MethodVal {
			if call, ok := w.parents[n].(*ast.CallExpr); !ok || call.Fun != n {
				w.report(n.Pos(), "method value %s allocates", exprString(w.pass.Module.Fset, n))
			}
		}
	case *ast.ReturnStmt:
		w.returns(n)
	case *ast.SendStmt:
		w.send(n)
	}
	return true
}

func (w *allocWalker) call(call *ast.CallExpr) {
	if tv, ok := w.info.Types[call.Fun]; ok && tv.IsType() {
		w.conversion(call, tv.Type)
		return
	}
	switch {
	case isBuiltin(w.info, call, "make"):
		w.report(call.Pos(), "make(%s) allocates", exprString(w.pass.Module.Fset, call.Args[0]))
		return
	case isBuiltin(w.info, call, "new"):
		w.report(call.Pos(), "new(%s) allocates", exprString(w.pass.Module.Fset, call.Args[0]))
		return
	case isBuiltin(w.info, call, "append"):
		w.append(call)
		return
	}
	callee := calleeOf(w.info, call)
	if callee != nil && callee.Pkg() != nil {
		switch path := callee.Pkg().Path(); {
		case path == "fmt":
			w.report(call.Pos(), "fmt.%s formats into fresh heap storage", callee.Name())
			return
		case path == "errors" && callee.Name() == "New":
			w.report(call.Pos(), "errors.New allocates; use a package-level sentinel error")
			return
		}
	}
	w.boxedArgs(call)
}

// conversion flags string<->byte-slice conversions, allowing the
// compiler-optimized no-copy contexts: a map-read index m[string(b)] and
// string comparisons.
func (w *allocWalker) conversion(call *ast.CallExpr, target types.Type) {
	if len(call.Args) != 1 {
		return
	}
	src := w.info.TypeOf(call.Args[0])
	if src == nil {
		return
	}
	toString := isStringType(target) && isByteLike(src)
	toSlice := isByteLike(target) && isStringType(src)
	if !toString && !toSlice {
		return
	}
	if toString && w.freeStringContext(call) {
		return
	}
	w.report(call.Pos(), "conversion %s copies its bytes", exprString(w.pass.Module.Fset, call))
}

// freeStringContext reports contexts where the compiler elides the
// string([]byte) copy: map-read indexes and string comparisons.
func (w *allocWalker) freeStringContext(call *ast.CallExpr) bool {
	switch parent := w.parents[call].(type) {
	case *ast.IndexExpr:
		if parent.Index != call {
			return false
		}
		if t := w.info.TypeOf(parent.X); t != nil {
			if _, isMap := t.Underlying().(*types.Map); isMap {
				// A map *read* with a converted key is copy-free; a map
				// write stores the key and must copy.
				if as, ok := w.parents[parent].(*ast.AssignStmt); ok {
					for _, lhs := range as.Lhs {
						if lhs == ast.Expr(parent) {
							return false
						}
					}
				}
				return true
			}
		}
	case *ast.BinaryExpr:
		switch parent.Op {
		case token.EQL, token.NEQ, token.LSS, token.LEQ, token.GTR, token.GEQ:
			return true
		}
	case *ast.SwitchStmt:
		return parent.Tag == ast.Expr(call)
	}
	return false
}

// append flags growth on nil-initialized locals: there is no scratch
// capacity to reuse, so every call grows on the heap. Appends to
// parameters, fields, and reslices are assumed to reuse caller-owned
// capacity (the make/literal that created them is flagged at its site).
func (w *allocWalker) append(call *ast.CallExpr) {
	if len(call.Args) == 0 {
		return
	}
	id, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
	if !ok {
		return
	}
	obj := w.info.Uses[id]
	if obj == nil || !w.nilSlices[obj] || w.reported[obj] {
		return
	}
	w.reported[obj] = true
	w.report(call.Pos(), "append to nil-initialized local %s grows on the heap", id.Name)
}

// boxedArgs flags non-pointer-shaped values passed to interface-typed
// parameters: the conversion boxes the value on the heap.
func (w *allocWalker) boxedArgs(call *ast.CallExpr) {
	tv, ok := w.info.Types[call.Fun]
	if !ok || tv.Type == nil {
		return
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case i < params.Len()-1 || (i == params.Len()-1 && !sig.Variadic()):
			pt = params.At(i).Type()
		case sig.Variadic() && call.Ellipsis == token.NoPos:
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		default:
			continue // f(xs...): no per-element boxing
		}
		w.boxed(arg, pt, "passed as")
	}
}

func (w *allocWalker) returns(ret *ast.ReturnStmt) {
	sig, ok := w.info.TypeOf(w.decl.Name).(*types.Signature)
	if !ok || sig.Results().Len() != len(ret.Results) {
		return
	}
	for i, res := range ret.Results {
		w.boxed(res, sig.Results().At(i).Type(), "returned as")
	}
}

func (w *allocWalker) send(s *ast.SendStmt) {
	t := w.info.TypeOf(s.Chan)
	if t == nil {
		return
	}
	ch, ok := t.Underlying().(*types.Chan)
	if !ok {
		return
	}
	w.boxed(s.Value, ch.Elem(), "sent as")
}

// boxed flags x when placing it into an interface-typed slot allocates.
func (w *allocWalker) boxed(x ast.Expr, slot types.Type, how string) {
	if slot == nil {
		return
	}
	if _, ok := slot.Underlying().(*types.Interface); !ok {
		return
	}
	t := w.info.TypeOf(x)
	if t == nil {
		return
	}
	if tv, ok := w.info.Types[x]; ok && tv.IsNil() {
		return
	}
	if _, isIface := t.Underlying().(*types.Interface); isIface {
		return
	}
	if pointerShaped(t) {
		return
	}
	w.report(x.Pos(), "%s %s interface %s boxes the value on the heap",
		exprString(w.pass.Module.Fset, x), how, types.TypeString(slot, relQualifier))
}

// captures names one enclosing variable the function literal captures
// ("" when it captures nothing and is a static, allocation-free closure).
func (w *allocWalker) captures(lit *ast.FuncLit) string {
	var captured string
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if captured != "" {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := w.info.Uses[id].(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		pos := v.Pos()
		if pos >= w.decl.Pos() && pos < w.decl.End() && (pos < lit.Pos() || pos >= lit.End()) {
			captured = id.Name
		}
		return true
	})
	return captured
}

// composite flags slice and map literals (their backing storage is heap
// allocated); struct and array value literals live on the stack unless
// boxed, which the interface checks cover. Literals under & are reported
// by the unary case; empty slice literals share the runtime's zero base.
func (w *allocWalker) composite(lit *ast.CompositeLit) {
	if parent, ok := w.parents[lit].(*ast.UnaryExpr); ok && parent.Op == token.AND {
		return
	}
	if parent, ok := w.parents[lit].(*ast.CompositeLit); ok && parent != nil {
		// Nested literals are part of the outer literal's storage.
		return
	}
	t := w.info.TypeOf(lit)
	if t == nil {
		return
	}
	switch t.Underlying().(type) {
	case *types.Slice:
		if len(lit.Elts) > 0 {
			w.report(lit.Pos(), "%s literal allocates its backing array", litName(w.info, lit))
		}
	case *types.Map:
		w.report(lit.Pos(), "%s literal allocates", litName(w.info, lit))
	}
}

// litName renders a composite literal's type for a message.
func litName(info *types.Info, lit *ast.CompositeLit) string {
	if t := info.TypeOf(lit); t != nil {
		return types.TypeString(t, relQualifier)
	}
	return "composite"
}

// relQualifier renders package names without their import paths.
func relQualifier(p *types.Package) string { return p.Name() }

// pointerShaped reports whether values of t fit in one pointer word, so
// boxing them into an interface stores the pointer directly (no heap
// copy). Slices, strings, structs, and scalars are not pointer-shaped.
func pointerShaped(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	case *types.Basic:
		return u.Kind() == types.UnsafePointer
	}
	return false
}

func isStringType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// isByteLike reports whether t is a []byte or []rune (the conversion
// partners of string).
func isByteLike(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune || b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}
