// Package lint is mrp-lint: a determinism and concurrency static-analysis
// suite for the Multi-Ring Paxos SMR core, in the spirit of go/analysis
// but self-contained (stdlib only) and module-scoped.
//
// The replicated state machine is only correct if every replica executes
// commands, encodes checkpoints, and merges rings identically. A single
// unsorted map iteration or wall-clock read inside that deterministic path
// silently diverges replicas in a way unit tests rarely catch. mrp-lint
// makes those invariants machine-checked:
//
//   - detmap flags ranging over a map inside a deterministic function
//     unless the loop is provably order-insensitive or its collected
//     results are sorted before use.
//   - wallclock forbids time.Now/Since/Until, timer channels, and the
//     unseeded global math/rand inside deterministic functions (explicitly
//     seeded *rand.Rand instances, like SortedMap's, stay allowed).
//   - lockedblock flags channel operations and other blocking calls made
//     while holding a sync.Mutex/RWMutex — the deadlock shape that has
//     bitten the executor and recovery paths before.
//   - orderedresult flags dropped errors and discarded typed-redirect
//     results (statusWrongEpoch) at ordered-command call sites.
//
// Deterministic scope is declared with a "//mrp:deterministic" marker on
// functions or package doc comments and propagated through the call graph
// (see markers.go), so the core packages need only annotate their entry
// points, not every helper.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Analyzer is one named check, mirroring golang.org/x/tools/go/analysis
// at module granularity.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass)
}

// Pass carries everything an analyzer needs for one module run.
type Pass struct {
	Analyzer *Analyzer
	Module   *Module
	Markers  *Markers
	// Scope is the deterministic scope (//mrp:deterministic roots).
	Scope *Scope
	// Hot is the hot-path scope (//mrp:hotpath roots).
	Hot *Scope

	diags *[]Diagnostic
}

// Diagnostic is one finding.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
	// Fix, when non-nil, is a mechanical rewrite that resolves the finding.
	Fix *Fix
}

// Fix is a set of textual edits within one file, plus an import the
// rewritten code needs (empty when none).
type Fix struct {
	Message     string
	Edits       []TextEdit
	NeedsImport string
}

// TextEdit replaces the source range [Pos, End) with NewText.
type TextEdit struct {
	Pos     token.Pos
	End     token.Pos
	NewText string
}

// Report records a finding. Findings on lines carrying a matching
// "//mrp:nolint analyzer" comment are dropped.
func (p *Pass) Report(pos token.Pos, format string, args ...any) {
	p.report(pos, nil, format, args...)
}

// ReportWithFix records a finding with a suggested mechanical rewrite.
func (p *Pass) ReportWithFix(pos token.Pos, fix *Fix, format string, args ...any) {
	p.report(pos, fix, format, args...)
}

func (p *Pass) report(pos token.Pos, fix *Fix, format string, args ...any) {
	position := p.Module.Fset.Position(pos)
	if p.Markers.suppressed(p.Analyzer.Name, position) {
		return
	}
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      position,
		Message:  fmt.Sprintf(format, args...),
		Fix:      fix,
	})
}

// Analyzers returns the full suite in a stable order.
func Analyzers() []*Analyzer {
	return []*Analyzer{DetMap, WallClock, LockedBlock, OrderedResult, HotAlloc, LockOrder, SnapCodec}
}

// Run executes the given analyzers over a loaded module and returns the
// findings sorted by position. Malformed markers (suppressions without a
// reason or naming unknown analyzers, bad //mrp:codec shapes) are
// reported under the "nolint" pseudo-analyzer regardless of which
// analyzers were selected — a suppression that doesn't parse is a hole
// in the gate, not a style nit.
func Run(m *Module, analyzers []*Analyzer) []Diagnostic {
	markers := CollectMarkers(m)
	scope := BuildScope(m, markers)
	hot := BuildHotScope(m, markers)
	var diags []Diagnostic
	known := make(map[string]bool)
	for _, a := range Analyzers() {
		known[a.Name] = true
	}
	markers.validate(known, func(pos token.Position, format string, args ...any) {
		diags = append(diags, Diagnostic{
			Analyzer: "nolint",
			Pos:      pos,
			Message:  fmt.Sprintf(format, args...),
		})
	})
	for _, a := range analyzers {
		pass := &Pass{Analyzer: a, Module: m, Markers: markers, Scope: scope, Hot: hot, diags: &diags}
		a.Run(pass)
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags
}

// funcFor resolves the *types.Func defined by a FuncDecl.
func (m *Module) funcFor(decl *ast.FuncDecl) *types.Func {
	if obj, ok := m.Info.Defs[decl.Name].(*types.Func); ok {
		return obj
	}
	return nil
}

// eachFuncDecl visits every function declaration of every package.
func (m *Module) eachFuncDecl(fn func(pkg *Package, file *ast.File, decl *ast.FuncDecl)) {
	for _, pkg := range m.Pkgs {
		for _, file := range pkg.Files {
			for _, d := range file.Decls {
				if fd, ok := d.(*ast.FuncDecl); ok {
					fn(pkg, file, fd)
				}
			}
		}
	}
}

// calleeOf resolves the statically known callee of a call expression:
// a declared function, a method (through a possibly embedded selection),
// or an interface method. Returns nil for builtins, conversions, and
// dynamic calls through function values.
func calleeOf(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := info.Uses[fun].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			if f, ok := sel.Obj().(*types.Func); ok {
				return f
			}
			return nil
		}
		// Package-qualified call (pkg.Func).
		if f, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return f
		}
	}
	return nil
}
