package lint

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// loadFixture type-checks fixture packages from testdata/src. Each name
// is both the directory and the import path, so fixtures can import each
// other by directory name.
func loadFixture(t *testing.T, names ...string) *Module {
	t.Helper()
	ld := newLoader(false)
	for _, name := range names {
		abs, err := filepath.Abs(filepath.Join("testdata", "src", name))
		if err != nil {
			t.Fatal(err)
		}
		ld.srcs[name] = abs
	}
	m := &Module{Fset: ld.fset, Info: ld.info, byPath: make(map[string]*Package)}
	for _, name := range names {
		pkg, err := ld.load(name, ld.srcs[name])
		if err != nil {
			t.Fatalf("loading fixture %s: %v", name, err)
		}
		if m.byPath[name] == nil {
			m.add(pkg)
		}
	}
	return m
}

// wantRE extracts the quoted expectations of one `// want "..." "..."`
// comment.
var wantRE = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)

// expectations scans fixture sources for `// want` comments and returns
// file:line -> pending expectation substrings.
func expectations(t *testing.T, m *Module) map[string][]string {
	t.Helper()
	wants := make(map[string][]string)
	seen := make(map[string]bool)
	for _, pkg := range m.Pkgs {
		for _, f := range pkg.Files {
			name := m.Fset.Position(f.Pos()).Filename
			if seen[name] {
				continue
			}
			seen[name] = true
			src, err := os.ReadFile(name)
			if err != nil {
				t.Fatal(err)
			}
			for i, line := range strings.Split(string(src), "\n") {
				_, spec, ok := strings.Cut(line, "// want ")
				if !ok {
					continue
				}
				key := lineKey(name, i+1)
				for _, match := range wantRE.FindAllStringSubmatch(spec, -1) {
					text, err := strconv.Unquote(`"` + match[1] + `"`)
					if err != nil {
						t.Fatalf("%s: bad want %q: %v", key, match[1], err)
					}
					wants[key] = append(wants[key], text)
				}
			}
		}
	}
	return wants
}

// runFixture runs analyzers over fixture packages and diffs the findings
// against the `// want` expectations.
func runFixture(t *testing.T, analyzers []*Analyzer, names ...string) {
	t.Helper()
	m := loadFixture(t, names...)
	wants := expectations(t, m)
	diags := Run(m, analyzers)
	for _, d := range diags {
		key := lineKey(d.Pos.Filename, d.Pos.Line)
		idx := -1
		for i, w := range wants[key] {
			if strings.Contains(d.Message, w) {
				idx = i
				break
			}
		}
		if idx < 0 {
			t.Errorf("unexpected finding at %s:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Analyzer, d.Message)
			continue
		}
		wants[key] = append(wants[key][:idx], wants[key][idx+1:]...)
	}
	for key, remaining := range wants {
		for _, w := range remaining {
			t.Errorf("missing finding at %s: want %q", key, w)
		}
	}
}

func TestDetMapFixture(t *testing.T) {
	runFixture(t, []*Analyzer{DetMap}, "detmapa")
}

func TestWallClockFixture(t *testing.T) {
	runFixture(t, []*Analyzer{WallClock}, "wallclocka")
}

// TestLeaseClockFixture pins the scoped //mrp:leaseclock allowance: one
// marked site may call time.Now, everything else in deterministic scope
// still fails, and a duplicate marker is flagged and unexempted.
func TestLeaseClockFixture(t *testing.T) {
	runFixture(t, []*Analyzer{WallClock}, "leaseclocka")
}

func TestLockedBlockFixture(t *testing.T) {
	runFixture(t, []*Analyzer{LockedBlock}, "lockedblocka")
}

func TestOrderedResultFixture(t *testing.T) {
	runFixture(t, []*Analyzer{OrderedResult}, "ordereda")
}

func TestOrderedTxnFixture(t *testing.T) {
	runFixture(t, []*Analyzer{OrderedResult}, "orderedtxn")
}

// TestBatchPipeFixture covers the SMR batching/pipelining shapes: the
// deterministic batch codec and the ordered batched-submit path.
func TestBatchPipeFixture(t *testing.T) {
	runFixture(t, []*Analyzer{DetMap, OrderedResult}, "batchpipe")
}

// TestPropagationFixture proves the scope crosses package boundaries
// through interfaces (CHA), descends only into marked packages, and
// stops at //mrp:nondeterministic.
func TestPropagationFixture(t *testing.T) {
	runFixture(t, []*Analyzer{DetMap, WallClock}, "propa", "propb", "propc")
}

// TestPropagationProvenance pins the scope computation itself: which
// functions ended up deterministic and why.
func TestPropagationProvenance(t *testing.T) {
	m := loadFixture(t, "propa", "propb", "propc")
	mk := CollectMarkers(m)
	scope := BuildScope(m, mk)
	got := make(map[string]bool)
	for fn := range scope.inScope {
		got[fn.Pkg().Name()+"."+relName(fn)] = true
	}
	for _, want := range []string{"propa.Apply", "propb.*Machine.Execute", "propb.*Machine.stamp"} {
		if !got[want] {
			t.Errorf("expected %s in deterministic scope; scope = %v", want, keysOf(got))
		}
	}
	for _, bad := range []string{"propb.*Machine.observe", "propc.Boundary"} {
		if got[bad] {
			t.Errorf("%s must not be in deterministic scope", bad)
		}
	}
}

func keysOf(m map[string]bool) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}

// TestHotAllocFixture covers every allocation shape hotalloc flags plus
// its escape hatches: a coldpath stop, a reasoned //mrp:alloc allowance,
// and the copy-free string contexts.
func TestHotAllocFixture(t *testing.T) {
	runFixture(t, []*Analyzer{HotAlloc}, "hotalloca")
}

// TestHotPropFixture proves hot-path scope crosses a package boundary
// through an interface (CHA), descends only into hot-eligible packages,
// and stops at //mrp:coldpath.
func TestHotPropFixture(t *testing.T) {
	runFixture(t, []*Analyzer{HotAlloc}, "hotpropa", "hotpropb")
}

// TestLockOrderFixture covers the in-package lock-graph shapes: the
// opposite-order cycle, same-class nesting, and an ordered submission
// under a held mutex.
func TestLockOrderFixture(t *testing.T) {
	runFixture(t, []*Analyzer{LockOrder}, "lockordera")
}

// TestLockIfaceFixture pins the cross-package interface-dispatch cycle:
// neither package alone contains one, so the finding exists only because
// the lock graph follows CHA-resolved calls.
func TestLockIfaceFixture(t *testing.T) {
	runFixture(t, []*Analyzer{LockOrder}, "lockifacea", "lockifaceb")
}

// TestSnapCodecFixture covers the codec contracts: unsorted map ranges
// reaching an encoder, version-tag groups missing decode arms, guard
// position sensitivity, closure propagation through static helper
// calls, and one-sided pairs.
func TestSnapCodecFixture(t *testing.T) {
	runFixture(t, []*Analyzer{SnapCodec}, "snapcodeca")
}

// TestNolintValidation pins suppression validation over the nolinta
// fixture with direct assertions (a `// want` comment cannot share a
// line with the marker it would re-parse): missing or empty reasons,
// unknown analyzer names, nameless nolints, and malformed codec markers
// are findings — and a failed-validation suppression still mutes, so
// silence stays silenced but never silent about itself.
func TestNolintValidation(t *testing.T) {
	m := loadFixture(t, "nolinta")
	file := ""
	for _, pkg := range m.Pkgs {
		file = m.Fset.Position(pkg.Files[0].Pos()).Filename
	}
	src, err := os.ReadFile(file)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(string(src), "\n")
	lineOf := func(sentinel string) int {
		t.Helper()
		for i, l := range lines {
			if strings.Contains(l, sentinel) {
				return i + 1
			}
		}
		t.Fatalf("sentinel %q not found in %s", sentinel, file)
		return 0
	}
	// emptyReason's marker is a strict prefix of the baseline's, so it is
	// identified by its line ending in the bare separator.
	emptyReasonLine := 0
	for i, l := range lines {
		if strings.HasSuffix(strings.TrimRight(l, " \t"), "//mrp:nolint wallclock —") {
			emptyReasonLine = i + 1
		}
	}
	if emptyReasonLine == 0 {
		t.Fatal("empty-reason marker line not found")
	}

	diags := Run(m, []*Analyzer{WallClock})
	type finding struct {
		line int
		sub  string
	}
	has := func(f finding) bool {
		for _, d := range diags {
			if d.Pos.Line == f.line && strings.Contains(d.Message, f.sub) {
				return true
			}
		}
		return false
	}
	for _, f := range []finding{
		{emptyReasonLine, "suppression has no reason"},
		{lineOf("because reasons need a separator"), "suppression has no reason"},
		{lineOf("the analyzer name is a typo"), `unknown analyzer "wallcheck"`},
		{lineOf("the analyzer name is a typo"), "time.Now reads the wall clock"},
		{lineOf("a dangling reason with nothing to suppress"), "names no analyzer"},
		{lineOf("//mrp:codec broken"), "malformed //mrp:codec marker"},
	} {
		if !has(f) {
			t.Errorf("missing finding at %s:%d containing %q; got %v", file, f.line, f.sub, diags)
		}
	}
	// The sanctioned suppression and the muted-but-flagged ones must not
	// leak wallclock findings; the nameless nolint must not be reported
	// as missing a reason (its reason is fine, its name list is not).
	for _, f := range []finding{
		{lineOf("the sanctioned baseline suppression"), ""},
		{emptyReasonLine, "wall clock"},
		{lineOf("because reasons need a separator"), "wall clock"},
		{lineOf("a dangling reason with nothing to suppress"), "no reason"},
	} {
		for _, d := range diags {
			if d.Pos.Line == f.line && (f.sub == "" || strings.Contains(d.Message, f.sub)) {
				t.Errorf("unwanted finding at %s:%d: [%s] %s", file, f.line, d.Analyzer, d.Message)
			}
		}
	}
}

// TestDetMapSuggestedFix pins the mechanical sorted-keys rewrite text.
func TestDetMapSuggestedFix(t *testing.T) {
	m := loadFixture(t, "detmapa")
	diags := Run(m, []*Analyzer{DetMap})
	var fixed *Diagnostic
	for i, d := range diags {
		if d.Fix != nil && strings.Contains(d.Pos.Filename, "detmapa") && d.Pos.Line < 20 {
			fixed = &diags[i]
			break
		}
	}
	if fixed == nil {
		t.Fatalf("no suggested fix produced for encode's map range; diags: %v", diags)
	}
	if fixed.Fix.NeedsImport != "sort" {
		t.Errorf("fix should need the sort import, got %q", fixed.Fix.NeedsImport)
	}
	text := fixed.Fix.Edits[0].NewText
	for _, want := range []string{
		"keys := make([]string, 0, len(m))",
		"keys = append(keys, k)",
		"sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })",
		"for _, k := range keys {",
		"v := m[k]",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("suggested fix missing %q:\n%s", want, text)
		}
	}
}

func ExampleAnalyzers() {
	for _, a := range Analyzers() {
		fmt.Println(a.Name)
	}
	// Output:
	// detmap
	// wallclock
	// lockedblock
	// orderedresult
	// hotalloc
	// lockorder
	// snapcodec
}
