package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Package is one type-checked package of the analyzed module.
type Package struct {
	// Path is the import path ("mrp/internal/smr").
	Path string
	// Dir is the directory holding the package's files.
	Dir string
	// Files are the parsed source files, in filename order.
	Files []*ast.File
	// Types is the type-checked package.
	Types *types.Package
}

// Module is a fully loaded and type-checked module: the unit the linter
// analyzes. Unlike go/analysis, which runs per package, the deterministic
// scope propagates through cross-package calls (Replica.apply executes a
// store.SM through an interface), so the whole module is loaded into one
// consistent type universe.
type Module struct {
	Fset *token.FileSet
	// Pkgs are the module's packages in dependency (topological) order.
	Pkgs []*Package
	// Info holds type information for every file of every package.
	Info *types.Info
	// byPath indexes Pkgs by import path.
	byPath map[string]*Package
}

// PackageAt returns the loaded package with the given import path.
func (m *Module) PackageAt(path string) *Package { return m.byPath[path] }

// loader type-checks a set of directories into one Module, resolving
// module-internal imports from its own set and everything else (stdlib)
// from source via go/importer. It needs no network and no go/packages.
type loader struct {
	fset    *token.FileSet
	std     types.Importer
	info    *types.Info
	pkgs    map[string]*Package
	loading map[string]bool
	// srcs maps import path -> directory, for lazy module-internal loads.
	srcs  map[string]string
	tests bool
}

func newLoader(tests bool) *loader {
	fset := token.NewFileSet()
	return &loader{
		fset: fset,
		std:  importer.ForCompiler(fset, "source", nil),
		info: &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
			Implicits:  make(map[ast.Node]types.Object),
			Scopes:     make(map[ast.Node]*types.Scope),
		},
		pkgs:    make(map[string]*Package),
		loading: make(map[string]bool),
		srcs:    make(map[string]string),
		tests:   tests,
	}
}

// Import implements types.Importer: module-internal packages come from the
// loader's own set (type-checking them on demand), everything else from the
// stdlib source importer.
func (ld *loader) Import(path string) (*types.Package, error) {
	if dir, ok := ld.srcs[path]; ok {
		p, err := ld.load(path, dir)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	return ld.std.Import(path)
}

// load parses and type-checks one module package (once).
func (ld *loader) load(path, dir string) (*Package, error) {
	if p, ok := ld.pkgs[path]; ok {
		return p, nil
	}
	if ld.loading[path] {
		return nil, fmt.Errorf("lint: import cycle through %s", path)
	}
	ld.loading[path] = true
	defer delete(ld.loading, path)

	names, err := goFilesIn(dir, ld.tests)
	if err != nil {
		return nil, err
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(ld.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		// External test packages (package foo_test) would need a second
		// type-check universe; skip them.
		if strings.HasSuffix(f.Name.Name, "_test") {
			continue
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: only external test files in %s", dir)
	}
	conf := types.Config{Importer: ld}
	tpkg, err := conf.Check(path, ld.fset, files, ld.info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", path, err)
	}
	p := &Package{Path: path, Dir: dir, Files: files, Types: tpkg}
	ld.pkgs[path] = p
	return p, nil
}

// goFilesIn lists the buildable Go files of a directory in sorted order.
func goFilesIn(dir string, tests bool) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		if !tests && strings.HasSuffix(name, "_test.go") {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	return names, nil
}

// LoadModule loads and type-checks the Go module rooted at root. Patterns
// select packages: "./..." (everything), "./dir/..." (a subtree), or a
// plain relative directory. Test files are included when tests is set
// (in-package tests only; external _test packages are always skipped).
//
// Non-module imports (the standard library) are resolved from compiled
// export data when `go list -export -deps` can provide it — CI shares
// the build cache between the build and lint steps, so this skips
// re-type-checking the stdlib from source — falling back to the source
// importer when the go tool or the export data is unavailable.
func LoadModule(root string, tests bool, patterns ...string) (*Module, error) {
	root, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	modName, err := moduleName(root)
	if err != nil {
		return nil, err
	}
	dirs, err := packageDirs(root)
	if err != nil {
		return nil, err
	}
	srcs := make(map[string]string, len(dirs))
	for _, dir := range dirs {
		rel, err := filepath.Rel(root, dir)
		if err != nil {
			return nil, err
		}
		path := modName
		if rel != "." {
			path = modName + "/" + filepath.ToSlash(rel)
		}
		srcs[path] = dir
	}
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	selected := make(map[string]bool)
	for _, pat := range patterns {
		if err := selectPattern(selected, srcs, modName, root, pat); err != nil {
			return nil, err
		}
	}
	var paths []string
	for p := range selected {
		paths = append(paths, p)
	}
	sort.Strings(paths)

	load := func(std types.Importer) (*Module, error) {
		ld := newLoader(tests)
		if std != nil {
			ld.std = std
		}
		for p, dir := range srcs {
			ld.srcs[p] = dir
		}
		m := &Module{Fset: ld.fset, Info: ld.info, byPath: make(map[string]*Package)}
		for _, p := range paths {
			pkg, err := ld.load(p, ld.srcs[p])
			if err != nil {
				return nil, err
			}
			m.add(pkg)
		}
		// Dependencies pulled in by the selection are part of the module
		// too (markers may live there); include every loaded module package.
		for p, pkg := range ld.pkgs {
			if _, ok := m.byPath[p]; !ok {
				m.add(pkg)
			}
		}
		sort.Slice(m.Pkgs, func(i, j int) bool { return m.Pkgs[i].Path < m.Pkgs[j].Path })
		return m, nil
	}

	// Try export data first and retry from source on any failure: a
	// stale or partial build cache must degrade, not break the lint.
	if files := exportFiles(root); files != nil {
		if m, err := load(exportImporter(files)); err == nil {
			return m, nil
		}
	}
	return load(nil)
}

// exportFiles runs one `go list -export -deps ./...` and maps import
// paths to their compiled export-data files (nil when the go tool, the
// module, or the cache cannot provide them).
func exportFiles(root string) map[string]string {
	cmd := exec.Command("go", "list", "-export", "-deps", "-f", "{{.ImportPath}}\t{{.Export}}", "./...")
	cmd.Dir = root
	out, err := cmd.Output()
	if err != nil {
		return nil
	}
	files := make(map[string]string)
	for _, line := range strings.Split(string(out), "\n") {
		path, file, ok := strings.Cut(line, "\t")
		if !ok || file == "" {
			continue
		}
		files[path] = file
	}
	if len(files) == 0 {
		return nil
	}
	return files
}

// exportImporter resolves imports from compiled export data.
func exportImporter(files map[string]string) types.Importer {
	lookup := func(path string) (io.ReadCloser, error) {
		file, ok := files[path]
		if !ok {
			return nil, fmt.Errorf("lint: no export data for %q", path)
		}
		return os.Open(file)
	}
	return importer.ForCompiler(token.NewFileSet(), "gc", lookup)
}

func (m *Module) add(pkg *Package) {
	m.Pkgs = append(m.Pkgs, pkg)
	m.byPath[pkg.Path] = pkg
}

// selectPattern resolves one package pattern against the known source dirs.
func selectPattern(out map[string]bool, srcs map[string]string, modName, root, pat string) error {
	switch {
	case pat == "./..." || pat == "...":
		for p := range srcs {
			out[p] = true
		}
	case strings.HasSuffix(pat, "/..."):
		base := strings.TrimSuffix(pat, "/...")
		base = strings.TrimPrefix(base, "./")
		prefix := modName
		if base != "" && base != "." {
			prefix = modName + "/" + filepath.ToSlash(base)
		}
		found := false
		for p := range srcs {
			if p == prefix || strings.HasPrefix(p, prefix+"/") {
				out[p] = true
				found = true
			}
		}
		if !found {
			return fmt.Errorf("lint: pattern %q matched no packages", pat)
		}
	default:
		rel := strings.TrimPrefix(pat, "./")
		path := modName
		if rel != "" && rel != "." {
			path = modName + "/" + filepath.ToSlash(rel)
		}
		if _, ok := srcs[path]; !ok {
			if _, ok := srcs[pat]; ok { // full import path given
				path = pat
			} else {
				return fmt.Errorf("lint: pattern %q matched no packages", pat)
			}
		}
		out[path] = true
	}
	return nil
}

// moduleName reads the module path from go.mod.
func moduleName(root string) (string, error) {
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			rest = strings.TrimSpace(rest)
			if unq, err := strconv.Unquote(rest); err == nil {
				rest = unq
			}
			return rest, nil
		}
	}
	return "", fmt.Errorf("lint: no module line in %s/go.mod", root)
}

// packageDirs walks the module tree for directories containing Go files,
// skipping testdata, hidden, and underscore-prefixed directories.
func packageDirs(root string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != root && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			has, err := hasGoFiles(path)
			if err != nil {
				return err
			}
			if has {
				dirs = append(dirs, path)
			}
		}
		return nil
	})
	return dirs, err
}

func hasGoFiles(dir string) (bool, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false, err
	}
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasPrefix(e.Name(), ".") && !strings.HasPrefix(e.Name(), "_") {
			return true, nil
		}
	}
	return false, nil
}
