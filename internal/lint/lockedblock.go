package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// LockedBlock flags blocking operations performed while holding a
// sync.Mutex / sync.RWMutex: channel sends and receives, selects without
// a default case, time.Sleep, and sync.WaitGroup.Wait. A goroutine parked
// on a channel while holding a lock is the classic SMR-executor deadlock:
// the goroutine that would drain the channel needs the same lock (the
// shape that has bitten the executor and recovery paths before).
//
// The analysis is intra-procedural and flow-aware along straight-line
// statement order: a Lock() opens a held region that a matching Unlock()
// on the same receiver closes; a deferred Unlock holds until function
// exit. Branch bodies are analyzed with a copy of the held set. Bodies of
// `go` statements and function literals run on other goroutines (or later)
// and are not charged to the enclosing lock region. Non-blocking channel
// use (select with default) is allowed. It runs over every function of
// the module, not only deterministic ones.
var LockedBlock = &Analyzer{
	Name: "lockedblock",
	Doc:  "flag blocking operations while holding a mutex",
	Run:  runLockedBlock,
}

func runLockedBlock(p *Pass) {
	p.Module.eachFuncDecl(func(pkg *Package, file *ast.File, decl *ast.FuncDecl) {
		if decl.Body == nil {
			return
		}
		lb := &lockWalker{pass: p, info: p.Module.Info}
		lb.stmts(decl.Body.List, make(heldLocks))
	})
}

// heldLocks maps the source text of a lock's receiver ("r.mu") to the
// position where it was acquired.
type heldLocks map[string]token.Pos

func (h heldLocks) clone() heldLocks {
	c := make(heldLocks, len(h))
	for k, v := range h {
		c[k] = v
	}
	return c
}

type lockWalker struct {
	pass *Pass
	info *types.Info
}

// stmts walks a statement list in order, threading the held-lock set.
func (w *lockWalker) stmts(list []ast.Stmt, held heldLocks) heldLocks {
	for _, s := range list {
		held = w.stmt(s, held)
	}
	return held
}

func (w *lockWalker) stmt(s ast.Stmt, held heldLocks) heldLocks {
	switch s := s.(type) {
	case *ast.ExprStmt:
		if recv, op, ok := w.lockOp(s.X); ok {
			switch op {
			case "Lock", "RLock":
				held[recv] = s.Pos()
			case "Unlock", "RUnlock":
				delete(held, recv)
			}
			return held
		}
		w.checkExpr(s.X, held)
	case *ast.DeferStmt:
		// A deferred Unlock keeps the lock held for the remainder of the
		// function (correct and idiomatic); a deferred anything-else runs
		// later and is not charged here.
	case *ast.GoStmt:
		// Runs on another goroutine without the caller's locks.
	case *ast.SendStmt:
		if len(held) > 0 {
			w.report(s.Pos(), held, "channel send")
		}
	case *ast.AssignStmt:
		for _, r := range s.Rhs {
			w.checkExpr(r, held)
		}
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			w.checkExpr(r, held)
		}
	case *ast.IfStmt:
		if s.Init != nil {
			held = w.stmt(s.Init, held)
		}
		w.checkExpr(s.Cond, held)
		w.stmts(s.Body.List, held.clone())
		if s.Else != nil {
			w.stmt(s.Else, held.clone())
		}
	case *ast.BlockStmt:
		held = w.stmts(s.List, held)
	case *ast.ForStmt:
		if s.Cond != nil {
			w.checkExpr(s.Cond, held)
		}
		w.stmts(s.Body.List, held.clone())
	case *ast.RangeStmt:
		if t := w.info.TypeOf(s.X); t != nil {
			if _, isChan := t.Underlying().(*types.Chan); isChan && len(held) > 0 {
				w.report(s.Pos(), held, "range over channel")
			}
		}
		w.stmts(s.Body.List, held.clone())
	case *ast.SelectStmt:
		if len(held) > 0 && !hasDefault(s) {
			w.report(s.Pos(), held, "select without default")
		}
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				w.stmts(cc.Body, held.clone())
			}
		}
	case *ast.SwitchStmt:
		if s.Init != nil {
			held = w.stmt(s.Init, held)
		}
		if s.Tag != nil {
			w.checkExpr(s.Tag, held)
		}
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				w.stmts(cc.Body, held.clone())
			}
		}
	case *ast.TypeSwitchStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				w.stmts(cc.Body, held.clone())
			}
		}
	case *ast.LabeledStmt:
		held = w.stmt(s.Stmt, held)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						w.checkExpr(v, held)
					}
				}
			}
		}
	}
	return held
}

// checkExpr scans an expression for blocking operations while locks are
// held, skipping function literals (they run later / elsewhere).
func (w *lockWalker) checkExpr(x ast.Expr, held heldLocks) {
	if len(held) == 0 || x == nil {
		return
	}
	ast.Inspect(x, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				w.report(n.Pos(), held, "channel receive")
			}
		case *ast.CallExpr:
			if callee := calleeOf(w.info, n); callee != nil && callee.Pkg() != nil {
				switch {
				case callee.Pkg().Path() == "time" && callee.Name() == "Sleep":
					w.report(n.Pos(), held, "time.Sleep")
				case callee.Pkg().Path() == "sync" && callee.Name() == "Wait" && recvNamed(callee) == "WaitGroup":
					w.report(n.Pos(), held, "sync.WaitGroup.Wait")
				}
			}
		}
		return true
	})
}

func (w *lockWalker) report(pos token.Pos, held heldLocks, what string) {
	// Name one held lock (the map is tiny; pick deterministically).
	var lock string
	var lockPos token.Pos
	for name, p := range held {
		if lock == "" || name < lock {
			lock, lockPos = name, p
		}
	}
	at := w.pass.Module.Fset.Position(lockPos)
	w.pass.Report(pos, "%s while holding %s (locked at %s:%d); blocking under a mutex is the executor-deadlock shape — release the lock first or make the operation non-blocking",
		what, lock, at.Filename, at.Line)
}

// lockOp recognizes m.Lock / m.RLock / m.Unlock / m.RUnlock calls on
// sync.Mutex, sync.RWMutex, and sync.Locker receivers (including locks
// embedded in structs) and returns the receiver's source text.
func (w *lockWalker) lockOp(x ast.Expr) (recv, op string, ok bool) {
	call, isCall := ast.Unparen(x).(*ast.CallExpr)
	if !isCall {
		return "", "", false
	}
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	name := sel.Sel.Name
	switch name {
	case "Lock", "RLock", "Unlock", "RUnlock":
	default:
		return "", "", false
	}
	callee := calleeOf(w.info, call)
	if callee == nil || callee.Pkg() == nil || callee.Pkg().Path() != "sync" {
		return "", "", false
	}
	return exprString(w.pass.Module.Fset, sel.X), name, true
}

func hasDefault(s *ast.SelectStmt) bool {
	for _, c := range s.Body.List {
		if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
			return true
		}
	}
	return false
}

// recvNamed returns the name of a method's receiver named type ("" for
// functions).
func recvNamed(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return ""
}
