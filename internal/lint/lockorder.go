package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// LockOrder builds the module's lock graph and reports cycles — the
// whole-module deadlock analysis that lockedblock's intra-procedural
// blocking check cannot do. Locks are identified by class, not instance:
// a named type's mutex field ("smr.Replica.mu"), a package-level mutex
// var, or a named type that embeds a mutex. Acquiring lock B while
// holding lock A adds the edge A→B; edges also follow the cross-package
// call graph (including interface dispatch via class-hierarchy analysis
// over every module type), so a function that calls into another package
// while holding its own lock inherits that package's acquisitions as
// nested. Any cycle in the graph is an ordering that can deadlock under
// the right interleaving.
//
// Same-class nesting (A→A) is reported too: locking a second instance of
// the same class while one is held deadlocks unless every path orders
// the instances identically, which the analyzer cannot verify.
//
// The analyzer additionally reports ordered-command submissions made
// while holding any lock: an //mrp:ordered call blocks on a consensus
// round-trip, and parking that under a mutex stalls every other path
// through the lock (and deadlocks outright if the delivery path needs
// it). Held regions are tracked flow-aware along statement order, the
// same discipline as lockedblock: a deferred Unlock holds to function
// exit, `go` statements and function literals run without the caller's
// locks.
var LockOrder = &Analyzer{
	Name: "lockorder",
	Doc:  "report lock-order cycles and lock-held ordered submissions",
	Run:  runLockOrder,
}

// lockCall is one resolvable call site with the lock set held around it.
type lockCall struct {
	callee *types.Func
	held   map[string]token.Pos
	pos    token.Pos
}

// lockSummary is the per-function result of the held-region walk.
type lockSummary struct {
	fn *types.Func
	// acquires maps lock class -> first acquisition site in the function.
	acquires map[string]token.Pos
	calls    []lockCall
}

// lockEdge is one lock-order edge A→B with its provenance.
type lockEdge struct {
	from, to string
	pos      token.Pos
	via      string // callee carrying the nested acquisition ("" if direct)
}

func runLockOrder(p *Pass) {
	lo := &lockOrder{
		pass:    p,
		info:    p.Module.Info,
		byFunc:  make(map[*types.Func]*lockSummary),
		edges:   make(map[string]map[string]lockEdge),
		ordered: make(map[*types.Func]bool),
	}
	lo.concrete = allNamedTypes(p.Module)
	p.Module.eachFuncDecl(func(pkg *Package, file *ast.File, decl *ast.FuncDecl) {
		fn := p.Module.funcFor(decl)
		if fn == nil || decl.Body == nil {
			return
		}
		s := &lockSummary{fn: fn, acquires: make(map[string]token.Pos)}
		lo.byFunc[fn] = s
		lo.order = append(lo.order, s)
		w := &lockOrderWalker{lo: lo, sum: s}
		w.stmts(decl.Body.List, make(map[string]token.Pos))
	})
	lo.closeOrdered()
	trans := lo.closeAcquires()
	lo.callEdges(trans)
	lo.reportCycles()
}

type lockOrder struct {
	pass     *Pass
	info     *types.Info
	concrete []types.Type
	byFunc   map[*types.Func]*lockSummary
	order    []*lockSummary
	edges    map[string]map[string]lockEdge
	// ordered marks functions that are (or transitively make) an
	// //mrp:ordered submission.
	ordered map[*types.Func]bool
}

// addEdge records A→B once (first site wins; the walk order is
// deterministic, so so is the kept site).
func (lo *lockOrder) addEdge(e lockEdge) {
	m := lo.edges[e.from]
	if m == nil {
		m = make(map[string]lockEdge)
		lo.edges[e.from] = m
	}
	if _, ok := m[e.to]; !ok {
		m[e.to] = e
	}
}

// closeOrdered propagates //mrp:ordered through the call graph: a
// function that calls an ordered function anywhere submits ordered
// commands itself.
func (lo *lockOrder) closeOrdered() {
	for _, s := range lo.order {
		if _, ok := lo.pass.Markers.OrderedArg(s.fn); ok {
			lo.ordered[s.fn] = true
		}
	}
	for changed := true; changed; {
		changed = false
		for _, s := range lo.order {
			if lo.ordered[s.fn] {
				continue
			}
			for _, c := range s.calls {
				if _, ok := lo.pass.Markers.OrderedArg(c.callee); ok || lo.ordered[c.callee] {
					lo.ordered[s.fn] = true
					changed = true
					break
				}
			}
		}
	}
}

// closeAcquires computes the transitive lock acquisitions of every
// function: its own plus those of everything it can call.
func (lo *lockOrder) closeAcquires() map[*types.Func]map[string]token.Pos {
	trans := make(map[*types.Func]map[string]token.Pos, len(lo.order))
	for _, s := range lo.order {
		t := make(map[string]token.Pos, len(s.acquires))
		for id, pos := range s.acquires {
			t[id] = pos
		}
		trans[s.fn] = t
	}
	for changed := true; changed; {
		changed = false
		for _, s := range lo.order {
			t := trans[s.fn]
			for _, c := range s.calls {
				for id, pos := range trans[c.callee] {
					if _, ok := t[id]; !ok {
						t[id] = pos
						changed = true
					}
				}
			}
		}
	}
	return trans
}

// callEdges turns lock-held call sites into graph edges (held lock →
// every lock the callee transitively acquires) and reports lock-held
// ordered submissions.
func (lo *lockOrder) callEdges(trans map[*types.Func]map[string]token.Pos) {
	for _, s := range lo.order {
		for _, c := range s.calls {
			if len(c.held) == 0 {
				continue
			}
			heldIDs := sortedLockIDs(c.held)
			if lo.ordered[c.callee] {
				at := lo.pass.Module.Fset.Position(c.held[heldIDs[0]])
				lo.pass.Report(c.pos,
					"ordered-command submission %s while holding %s (acquired at %s:%d): a consensus round-trip under a mutex stalls every other path through the lock",
					relName(c.callee), heldIDs[0], at.Filename, at.Line)
			}
			acquired := trans[c.callee]
			if len(acquired) == 0 {
				continue
			}
			for _, to := range sortedLockIDs(acquired) {
				for _, from := range heldIDs {
					lo.addEdge(lockEdge{from: from, to: to, pos: c.pos, via: relName(c.callee)})
				}
			}
		}
	}
}

// reportCycles finds strongly connected components of the lock graph and
// reports one representative cycle per component, plus same-class
// self-edges.
func (lo *lockOrder) reportCycles() {
	nodes := make([]string, 0, len(lo.edges))
	for from := range lo.edges {
		nodes = append(nodes, from)
	}
	sort.Strings(nodes)

	for _, from := range nodes {
		if e, ok := lo.edges[from][from]; ok {
			via := ""
			if e.via != "" {
				via = " (inside " + e.via + ")"
			}
			lo.pass.Report(e.pos,
				"lock %s acquired%s while an instance of %s is already held: same-class nesting deadlocks unless every path orders the instances identically",
				from, via, from)
		}
	}

	seen := make(map[string]bool)
	for _, start := range nodes {
		if seen[start] {
			continue
		}
		cycle := lo.findCycle(start)
		if cycle == nil {
			continue
		}
		for _, n := range cycle {
			seen[n] = true
		}
		lo.reportCycle(cycle)
	}
}

// findCycle returns the lexicographically-first simple cycle through
// start (nil if none), excluding self-edges (reported separately).
func (lo *lockOrder) findCycle(start string) []string {
	var path []string
	onPath := make(map[string]bool)
	var dfs func(node string) []string
	dfs = func(node string) []string {
		path = append(path, node)
		onPath[node] = true
		for _, next := range sortedEdgeTargets(lo.edges[node]) {
			if next == node {
				continue
			}
			if next == start && len(path) > 1 {
				return append([]string(nil), path...)
			}
			if onPath[next] {
				continue
			}
			if c := dfs(next); c != nil {
				return c
			}
		}
		path = path[:len(path)-1]
		onPath[node] = false
		return nil
	}
	return dfs(start)
}

// reportCycle renders one cycle with the site of every edge.
func (lo *lockOrder) reportCycle(cycle []string) {
	fset := lo.pass.Module.Fset
	var arrows, sites []string
	for i, from := range cycle {
		to := cycle[(i+1)%len(cycle)]
		arrows = append(arrows, from)
		e := lo.edges[from][to]
		at := fset.Position(e.pos)
		site := fmt.Sprintf("%s → %s at %s:%d", from, to, at.Filename, at.Line)
		if e.via != "" {
			site += " via " + e.via
		}
		sites = append(sites, site)
	}
	arrows = append(arrows, cycle[0])
	first := lo.edges[cycle[0]][cycle[1%len(cycle)]]
	lo.pass.Report(first.pos, "lock-order cycle: %s (%s): two goroutines taking these locks in opposite order deadlock",
		strings.Join(arrows, " → "), strings.Join(sites, "; "))
}

func sortedLockIDs(m map[string]token.Pos) []string {
	out := make([]string, 0, len(m))
	for id := range m {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

func sortedEdgeTargets(m map[string]lockEdge) []string {
	out := make([]string, 0, len(m))
	for id := range m {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// lockOrderWalker threads the held-lock set through a function body in
// statement order (the same flow discipline as lockedblock's walker),
// recording acquisitions, direct nested edges, and lock-held call sites.
type lockOrderWalker struct {
	lo  *lockOrder
	sum *lockSummary
}

func (w *lockOrderWalker) stmts(list []ast.Stmt, held map[string]token.Pos) map[string]token.Pos {
	for _, s := range list {
		held = w.stmt(s, held)
	}
	return held
}

func cloneHeld(h map[string]token.Pos) map[string]token.Pos {
	c := make(map[string]token.Pos, len(h))
	for k, v := range h {
		c[k] = v
	}
	return c
}

func (w *lockOrderWalker) stmt(s ast.Stmt, held map[string]token.Pos) map[string]token.Pos {
	switch s := s.(type) {
	case *ast.ExprStmt:
		if id, op, ok := w.lockOp(s.X); ok {
			switch op {
			case "Lock", "RLock":
				for _, from := range sortedLockIDs(held) {
					w.lo.addEdge(lockEdge{from: from, to: id, pos: s.Pos()})
				}
				if _, ok := w.sum.acquires[id]; !ok {
					w.sum.acquires[id] = s.Pos()
				}
				held[id] = s.Pos()
			case "Unlock", "RUnlock":
				delete(held, id)
			}
			return held
		}
		w.scanCalls(s.X, held)
	case *ast.DeferStmt:
		// A deferred Unlock keeps the lock held for the remainder of the
		// function; other deferred calls run at exit and are walked
		// without the current held set.
		if _, op, ok := w.lockOp(s.Call); !ok || (op != "Unlock" && op != "RUnlock") {
			w.scanCalls(s.Call, nil)
		}
	case *ast.GoStmt:
		// Runs on another goroutine without the caller's locks.
		w.scanCalls(s.Call, nil)
	case *ast.SendStmt:
		w.scanCalls(s.Chan, held)
		w.scanCalls(s.Value, held)
	case *ast.AssignStmt:
		for _, r := range s.Rhs {
			w.scanCalls(r, held)
		}
		for _, l := range s.Lhs {
			w.scanCalls(l, held)
		}
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			w.scanCalls(r, held)
		}
	case *ast.IfStmt:
		if s.Init != nil {
			held = w.stmt(s.Init, held)
		}
		w.scanCalls(s.Cond, held)
		w.stmts(s.Body.List, cloneHeld(held))
		if s.Else != nil {
			w.stmt(s.Else, cloneHeld(held))
		}
	case *ast.BlockStmt:
		held = w.stmts(s.List, held)
	case *ast.ForStmt:
		if s.Init != nil {
			held = w.stmt(s.Init, held)
		}
		if s.Cond != nil {
			w.scanCalls(s.Cond, held)
		}
		w.stmts(s.Body.List, cloneHeld(held))
	case *ast.RangeStmt:
		w.scanCalls(s.X, held)
		w.stmts(s.Body.List, cloneHeld(held))
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				w.stmts(cc.Body, cloneHeld(held))
			}
		}
	case *ast.SwitchStmt:
		if s.Init != nil {
			held = w.stmt(s.Init, held)
		}
		if s.Tag != nil {
			w.scanCalls(s.Tag, held)
		}
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				w.stmts(cc.Body, cloneHeld(held))
			}
		}
	case *ast.TypeSwitchStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				w.stmts(cc.Body, cloneHeld(held))
			}
		}
	case *ast.LabeledStmt:
		held = w.stmt(s.Stmt, held)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						w.scanCalls(v, held)
					}
				}
			}
		}
	}
	return held
}

// scanCalls records every resolvable call inside an expression with the
// current held set. Function literal bodies run later or elsewhere; they
// are walked with no held locks so their own acquisitions still enter the
// enclosing function's summary.
func (w *lockOrderWalker) scanCalls(x ast.Expr, held map[string]token.Pos) {
	if x == nil {
		return
	}
	var snapshot map[string]token.Pos
	if len(held) > 0 {
		snapshot = cloneHeld(held)
	}
	ast.Inspect(x, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			w.stmts(n.Body.List, make(map[string]token.Pos))
			return false
		case *ast.CallExpr:
			w.recordCall(n, snapshot)
		}
		return true
	})
}

func (w *lockOrderWalker) recordCall(call *ast.CallExpr, held map[string]token.Pos) {
	callee := calleeOf(w.lo.info, call)
	if callee == nil {
		return
	}
	if iface := interfaceRecv(callee); iface != nil {
		for _, impl := range implementations(w.lo.concrete, iface, callee) {
			w.sum.calls = append(w.sum.calls, lockCall{callee: impl, held: held, pos: call.Pos()})
		}
		return
	}
	w.sum.calls = append(w.sum.calls, lockCall{callee: callee, held: held, pos: call.Pos()})
}

// lockOp recognizes Lock/RLock/Unlock/RUnlock calls on sync mutexes
// (including embedded ones) and returns the canonical lock class.
func (w *lockOrderWalker) lockOp(x ast.Expr) (id, op string, ok bool) {
	call, isCall := ast.Unparen(x).(*ast.CallExpr)
	if !isCall {
		return "", "", false
	}
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	name := sel.Sel.Name
	switch name {
	case "Lock", "RLock", "Unlock", "RUnlock":
	default:
		return "", "", false
	}
	callee := calleeOf(w.lo.info, call)
	if callee == nil || callee.Pkg() == nil || callee.Pkg().Path() != "sync" {
		return "", "", false
	}
	id, ok = w.lo.lockClass(sel.X)
	if !ok {
		return "", "", false
	}
	return id, name, true
}

// lockClass canonicalizes the receiver of a lock operation into a lock
// class: "pkg.Type.field" for a mutex field, "pkg.Type" for a named type
// embedding a mutex, "pkg.var" for a package-level mutex. Locks it cannot
// identify (function-local mutexes, anonymous struct fields) are skipped
// rather than conflated.
func (lo *lockOrder) lockClass(x ast.Expr) (string, bool) {
	x = ast.Unparen(x)
	switch x := x.(type) {
	case *ast.SelectorExpr:
		if sel, ok := lo.info.Selections[x]; ok && sel.Kind() == types.FieldVal {
			owner := namedOf(sel.Recv())
			if owner == nil {
				return "", false
			}
			return qualifiedName(owner) + "." + sel.Obj().Name(), true
		}
		// Package-qualified var (pkg.mu).
		if v, ok := lo.info.Uses[x.Sel].(*types.Var); ok && v.Pkg() != nil {
			return v.Pkg().Name() + "." + v.Name(), true
		}
	case *ast.Ident:
		v, ok := lo.info.Uses[x].(*types.Var)
		if !ok {
			return "", false
		}
		if v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
			return v.Pkg().Name() + "." + v.Name(), true
		}
		// A local whose type is a named lock-bearing struct is still
		// classed by its type; a bare local sync.Mutex is unidentifiable.
		if owner := namedOf(v.Type()); owner != nil && owner.Obj().Pkg() != nil && owner.Obj().Pkg().Path() != "sync" {
			return qualifiedName(owner), true
		}
	}
	// Embedded mutex promoted through a named receiver (x.Lock() where x
	// is the struct): class by the receiver's named type.
	if owner := namedOf(lo.info.TypeOf(x)); owner != nil && owner.Obj().Pkg() != nil && owner.Obj().Pkg().Path() != "sync" {
		return qualifiedName(owner), true
	}
	return "", false
}

// namedOf strips pointers and returns the named type of t (nil if
// unnamed).
func namedOf(t types.Type) *types.Named {
	if t == nil {
		return nil
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, _ := t.(*types.Named)
	return n
}

func qualifiedName(n *types.Named) string {
	if pkg := n.Obj().Pkg(); pkg != nil {
		return pkg.Name() + "." + n.Obj().Name()
	}
	return n.Obj().Name()
}

// allNamedTypes collects every named non-interface type of the module —
// the candidate set for interface resolution across all packages (the
// lock graph does not stop at marker boundaries; deadlocks don't either).
func allNamedTypes(m *Module) []types.Type {
	var out []types.Type
	for _, pkg := range m.Pkgs {
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			if _, isIface := tn.Type().Underlying().(*types.Interface); isIface {
				continue
			}
			out = append(out, tn.Type())
		}
	}
	return out
}
