package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strconv"
	"strings"
)

// Marker comments understood by the suite. Markers are ordinary line
// comments with no space after "//", mirroring "//go:" directives:
//
//	//mrp:deterministic
//	    On a function's doc comment: the function is a deterministic
//	    root — it and everything it (statically) calls inside marked
//	    packages must be replica-deterministic. On a package doc
//	    comment: every function of the package is a root.
//
//	//mrp:nondeterministic
//	    On a function's doc comment: stop propagation here. Used for
//	    deliberate boundaries (e.g. a scheduling loop whose timing is
//	    free but whose callees are not).
//
//	//mrp:ordered [status]
//	    On a function's doc comment: calls to it are ordered-command
//	    submissions. Callers must consume its error result; with the
//	    "status" argument they must also consume its first result
//	    (the reply carrying typed redirects such as statusWrongEpoch).
//
//	//mrp:leaseclock
//	    On a function's doc comment: the function is the module's single
//	    sanctioned wall-clock read inside deterministic scope (the lease
//	    protocol's local liveness clock). wallclock permits time.Now in
//	    its body — nothing else, nowhere else — and flags every site
//	    beyond the first.
//
//	//mrp:hotpath
//	    On a function's doc comment: the function is a hot-path root —
//	    it and everything it (statically) calls inside hot-eligible
//	    packages must not allocate per operation. hotalloc flags heap
//	    allocations in the propagated scope.
//
//	//mrp:coldpath
//	    On a function's doc comment: stop hot-path propagation here.
//	    Used for rare branches reached from a hot loop (reconfiguration,
//	    admin ops, subscription changes) whose allocations are paid
//	    outside the steady state.
//
//	//mrp:codec name encode|decode
//	    On a function's doc comment: the function is one side of the
//	    named checkpoint/snapshot codec pair. snapcodec checks encoders
//	    for unsorted map-sourced output and decoders (plus their static
//	    helpers) for unguarded wire-length reads and missing version
//	    arms.
//
//	//mrp:nolint analyzer[,analyzer] — reason
//	    On the offending line, or alone on the line above: suppress the
//	    named analyzers' findings there. A non-empty reason after the
//	    "—" separator is mandatory, and every named analyzer must
//	    exist; malformed markers are themselves findings.
//
//	//mrp:orderinsensitive — reason
//	    Sugar for "//mrp:nolint detmap": asserts a map iteration is
//	    order-insensitive for a reason the analyzer cannot prove.
//
//	//mrp:alloc — reason
//	    Sugar for "//mrp:nolint hotalloc": allows one deliberate heap
//	    allocation inside hot-path scope (amortized arena refills,
//	    cold-entry scratch creation, state growth that must escape).
const markerPrefix = "//mrp:"

// Markers is the parsed marker set of a module.
type Markers struct {
	// det holds explicitly marked deterministic roots.
	det map[*types.Func]bool
	// nondet holds explicit propagation stops.
	nondet map[*types.Func]bool
	// ordered maps marked ordered-command functions to their argument
	// ("" or "status").
	ordered map[*types.Func]string
	// leaseClock lists //mrp:leaseclock-marked functions in collection
	// order; the wallclock analyzer admits exactly one.
	leaseClock []*types.Func
	// pkgDet marks packages whose package doc declares //mrp:deterministic.
	pkgDet map[*types.Package]bool
	// hot holds explicitly marked hot-path roots; cold holds explicit
	// hot-path propagation stops.
	hot  map[*types.Func]bool
	cold map[*types.Func]bool
	// codec maps //mrp:codec-marked functions to their codec name/role.
	codec map[*types.Func]codecMark
	// eligible marks packages containing at least one mrp marker: the
	// deterministic call graph only descends into eligible packages, so
	// unmarked layers (transport, registry) are propagation boundaries.
	eligible map[*types.Package]bool
	// hotEligible marks packages carrying at least one hot-family marker
	// (hotpath, coldpath, alloc): the hot-path call graph only descends
	// into these, so packages that never opted into the allocation
	// discipline are boundaries even when they carry determinism markers.
	hotEligible map[*types.Package]bool
	// suppress maps analyzer name -> "file:line" keys where findings are
	// muted by //mrp:nolint (or its sugar forms).
	suppress map[string]map[string]bool
	// marks records every suppression marker for validation, and bad
	// collects malformed non-suppression markers found during parsing.
	marks []suppressionMark
	bad   []markerProblem
}

// codecMark is one side of a named checkpoint codec pair.
type codecMark struct {
	name string
	role string // "encode" or "decode"
}

// suppressionMark is one //mrp:nolint / //mrp:orderinsensitive /
// //mrp:alloc comment, kept for Run-level validation.
type suppressionMark struct {
	verb   string
	names  []string
	reason string
	hasSep bool
	pos    token.Position
}

// markerProblem is a malformed marker detected at parse time.
type markerProblem struct {
	pos token.Position
	msg string
}

// CollectMarkers parses every marker comment of the module.
func CollectMarkers(m *Module) *Markers {
	mk := &Markers{
		det:         make(map[*types.Func]bool),
		nondet:      make(map[*types.Func]bool),
		ordered:     make(map[*types.Func]string),
		pkgDet:      make(map[*types.Package]bool),
		hot:         make(map[*types.Func]bool),
		cold:        make(map[*types.Func]bool),
		codec:       make(map[*types.Func]codecMark),
		eligible:    make(map[*types.Package]bool),
		hotEligible: make(map[*types.Package]bool),
		suppress:    make(map[string]map[string]bool),
	}
	for _, pkg := range m.Pkgs {
		for _, file := range pkg.Files {
			if hasMarker(file.Doc, "deterministic") {
				mk.pkgDet[pkg.Types] = true
				mk.eligible[pkg.Types] = true
			}
			for _, d := range file.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok {
					continue
				}
				fn := m.funcFor(fd)
				if fn == nil {
					continue
				}
				if hasMarker(fd.Doc, "deterministic") {
					mk.det[fn] = true
					mk.eligible[pkg.Types] = true
				}
				if hasMarker(fd.Doc, "nondeterministic") {
					mk.nondet[fn] = true
					mk.eligible[pkg.Types] = true
				}
				if arg, ok := markerArg(fd.Doc, "ordered"); ok {
					mk.ordered[fn] = arg
					mk.eligible[pkg.Types] = true
				}
				if hasMarker(fd.Doc, "leaseclock") {
					mk.leaseClock = append(mk.leaseClock, fn)
					mk.eligible[pkg.Types] = true
				}
				if hasMarker(fd.Doc, "hotpath") {
					mk.hot[fn] = true
					mk.eligible[pkg.Types] = true
					mk.hotEligible[pkg.Types] = true
				}
				if hasMarker(fd.Doc, "coldpath") {
					mk.cold[fn] = true
					mk.eligible[pkg.Types] = true
					mk.hotEligible[pkg.Types] = true
				}
				if hasMarker(fd.Doc, "codec") {
					mk.collectCodec(m, pkg, fd, fn)
				}
			}
			mk.collectSuppressions(m, pkg, file)
		}
	}
	return mk
}

// collectCodec records a //mrp:codec marker, validating its shape.
func (mk *Markers) collectCodec(m *Module, pkg *Package, fd *ast.FuncDecl, fn *types.Func) {
	args, pos := markerArgs(m, fd.Doc, "codec")
	if len(args) != 2 || (args[1] != "encode" && args[1] != "decode") {
		mk.bad = append(mk.bad, markerProblem{pos,
			`malformed //mrp:codec marker: want "//mrp:codec name encode|decode"`})
		return
	}
	mk.codec[fn] = codecMark{name: args[0], role: args[1]}
	mk.eligible[pkg.Types] = true
}

// reasonSep separates a suppression's analyzer list from its mandatory
// human reason.
const reasonSep = "—"

// cutReason splits the tail of a suppression marker at the — separator.
func cutReason(s string) (reason string, hasSep bool) {
	after, ok := strings.CutPrefix(strings.TrimSpace(s), reasonSep)
	if !ok {
		return "", false
	}
	return strings.TrimSpace(after), true
}

// collectSuppressions records //mrp:nolint comments and their sugar forms
// //mrp:orderinsensitive (detmap) and //mrp:alloc (hotalloc): they mute
// the named analyzers on their own line and on the following line
// (covering both trailing and preceding placement). Each marker is also
// recorded verbatim so Run can validate it: the reason after the "—"
// separator must be non-empty, and every named analyzer must exist.
func (mk *Markers) collectSuppressions(m *Module, pkg *Package, file *ast.File) {
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			text, ok := strings.CutPrefix(c.Text, markerPrefix)
			if !ok {
				continue
			}
			verb, rest, _ := strings.Cut(text, " ")
			var names []string
			var reason string
			var hasSep bool
			switch verb {
			case "nolint":
				args, tail, _ := strings.Cut(strings.TrimSpace(rest), " ")
				if args == reasonSep {
					// "//mrp:nolint — reason": no analyzer named; keep the
					// separator with the tail so the reason still parses and
					// only the names-no-analyzer finding fires.
					args, tail = "", reasonSep+" "+tail
				}
				for _, name := range strings.Split(args, ",") {
					if name = strings.TrimSpace(name); name != "" {
						names = append(names, name)
					}
				}
				reason, hasSep = cutReason(tail)
			case "orderinsensitive":
				names = []string{"detmap"}
				reason, hasSep = cutReason(rest)
			case "alloc":
				names = []string{"hotalloc"}
				reason, hasSep = cutReason(rest)
				mk.hotEligible[pkg.Types] = true
			default:
				continue
			}
			pos := m.Fset.Position(c.Pos())
			mk.marks = append(mk.marks, suppressionMark{
				verb: verb, names: names, reason: reason, hasSep: hasSep, pos: pos,
			})
			for _, name := range names {
				set := mk.suppress[name]
				if set == nil {
					set = make(map[string]bool)
					mk.suppress[name] = set
				}
				set[lineKey(pos.Filename, pos.Line)] = true
				set[lineKey(pos.Filename, pos.Line+1)] = true
			}
		}
	}
}

// validate reports malformed markers: suppressions with a missing or
// empty reason (an empty reason after the separator — e.g. a comment
// ending in "— " — counts as missing), suppressions naming analyzers
// that don't exist (which would otherwise silently suppress nothing),
// nolint markers naming no analyzer at all, and malformed //mrp:codec
// markers. known holds the full analyzer registry.
func (mk *Markers) validate(known map[string]bool, report func(pos token.Position, format string, args ...any)) {
	for _, b := range mk.bad {
		report(b.pos, "%s", b.msg)
	}
	for _, s := range mk.marks {
		if s.verb == "nolint" && len(s.names) == 0 {
			report(s.pos, `//mrp:nolint names no analyzer: want "//mrp:nolint analyzer[,analyzer] — reason"`)
		}
		if !s.hasSep || s.reason == "" {
			report(s.pos, "//mrp:%s suppression has no reason: a non-empty reason after the %s separator is mandatory", s.verb, reasonSep)
		}
		if s.verb != "nolint" {
			continue
		}
		for _, name := range s.names {
			if !known[name] {
				report(s.pos, "//mrp:nolint names unknown analyzer %q (known: %s); it suppresses nothing", name, knownNames(known))
			}
		}
	}
}

// knownNames renders the analyzer registry for an error message.
func knownNames(known map[string]bool) string {
	names := make([]string, 0, len(known))
	for name := range known {
		names = append(names, name)
	}
	sort.Strings(names)
	return strings.Join(names, ", ")
}

func lineKey(file string, line int) string {
	return file + ":" + strconv.Itoa(line)
}

// suppressed reports whether a finding of the analyzer at the position is
// muted by a nolint marker.
func (mk *Markers) suppressed(analyzer string, pos token.Position) bool {
	set := mk.suppress[analyzer]
	if set == nil {
		return false
	}
	return set[lineKey(pos.Filename, pos.Line)]
}

// hasMarker reports whether a comment group contains the marker verb with
// no argument required.
func hasMarker(doc *ast.CommentGroup, verb string) bool {
	_, ok := markerArg(doc, verb)
	return ok
}

// markerArg returns the argument of a marker comment ("//mrp:verb arg")
// within a doc comment group, and whether the marker is present.
func markerArg(doc *ast.CommentGroup, verb string) (string, bool) {
	if doc == nil {
		return "", false
	}
	for _, c := range doc.List {
		text, ok := strings.CutPrefix(c.Text, markerPrefix)
		if !ok {
			continue
		}
		v, rest, _ := strings.Cut(text, " ")
		if v != verb {
			continue
		}
		arg, _, _ := strings.Cut(strings.TrimSpace(rest), " ")
		return arg, true
	}
	return "", false
}

// markerArgs returns every whitespace-separated argument of a marker
// comment within a doc comment group, plus the comment's position.
func markerArgs(m *Module, doc *ast.CommentGroup, verb string) ([]string, token.Position) {
	for _, c := range doc.List {
		text, ok := strings.CutPrefix(c.Text, markerPrefix)
		if !ok {
			continue
		}
		v, rest, _ := strings.Cut(text, " ")
		if v != verb {
			continue
		}
		return strings.Fields(rest), m.Fset.Position(c.Pos())
	}
	return nil, token.Position{}
}

// LeaseClockSites returns the //mrp:leaseclock-marked functions in
// collection order.
func (mk *Markers) LeaseClockSites() []*types.Func {
	return append([]*types.Func(nil), mk.leaseClock...)
}

// OrderedArg returns the //mrp:ordered argument for fn ("" when unmarked;
// use the second result to distinguish).
func (mk *Markers) OrderedArg(fn *types.Func) (string, bool) {
	arg, ok := mk.ordered[fn]
	return arg, ok
}

// Codec returns the //mrp:codec marker of fn, if any.
func (mk *Markers) Codec(fn *types.Func) (name, role string, ok bool) {
	c, ok := mk.codec[fn]
	return c.name, c.role, ok
}
