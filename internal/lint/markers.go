package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
	"strings"
)

// Marker comments understood by the suite. Markers are ordinary line
// comments with no space after "//", mirroring "//go:" directives:
//
//	//mrp:deterministic
//	    On a function's doc comment: the function is a deterministic
//	    root — it and everything it (statically) calls inside marked
//	    packages must be replica-deterministic. On a package doc
//	    comment: every function of the package is a root.
//
//	//mrp:nondeterministic
//	    On a function's doc comment: stop propagation here. Used for
//	    deliberate boundaries (e.g. a scheduling loop whose timing is
//	    free but whose callees are not).
//
//	//mrp:ordered [status]
//	    On a function's doc comment: calls to it are ordered-command
//	    submissions. Callers must consume its error result; with the
//	    "status" argument they must also consume its first result
//	    (the reply carrying typed redirects such as statusWrongEpoch).
//
//	//mrp:leaseclock
//	    On a function's doc comment: the function is the module's single
//	    sanctioned wall-clock read inside deterministic scope (the lease
//	    protocol's local liveness clock). wallclock permits time.Now in
//	    its body — nothing else, nowhere else — and flags every site
//	    beyond the first.
//
//	//mrp:nolint analyzer[,analyzer] — reason
//	    On the offending line, or alone on the line above: suppress the
//	    named analyzers' findings there. A reason is required.
//
//	//mrp:orderinsensitive — reason
//	    Sugar for "//mrp:nolint detmap": asserts a map iteration is
//	    order-insensitive for a reason the analyzer cannot prove.
const markerPrefix = "//mrp:"

// Markers is the parsed marker set of a module.
type Markers struct {
	// det holds explicitly marked deterministic roots.
	det map[*types.Func]bool
	// nondet holds explicit propagation stops.
	nondet map[*types.Func]bool
	// ordered maps marked ordered-command functions to their argument
	// ("" or "status").
	ordered map[*types.Func]string
	// leaseClock lists //mrp:leaseclock-marked functions in collection
	// order; the wallclock analyzer admits exactly one.
	leaseClock []*types.Func
	// pkgDet marks packages whose package doc declares //mrp:deterministic.
	pkgDet map[*types.Package]bool
	// eligible marks packages containing at least one mrp marker: the
	// deterministic call graph only descends into eligible packages, so
	// unmarked layers (transport, registry) are propagation boundaries.
	eligible map[*types.Package]bool
	// suppress maps analyzer name -> "file:line" keys where findings are
	// muted by //mrp:nolint (or //mrp:orderinsensitive).
	suppress map[string]map[string]bool
}

// CollectMarkers parses every marker comment of the module.
func CollectMarkers(m *Module) *Markers {
	mk := &Markers{
		det:      make(map[*types.Func]bool),
		nondet:   make(map[*types.Func]bool),
		ordered:  make(map[*types.Func]string),
		pkgDet:   make(map[*types.Package]bool),
		eligible: make(map[*types.Package]bool),
		suppress: make(map[string]map[string]bool),
	}
	for _, pkg := range m.Pkgs {
		for _, file := range pkg.Files {
			if hasMarker(file.Doc, "deterministic") {
				mk.pkgDet[pkg.Types] = true
				mk.eligible[pkg.Types] = true
			}
			for _, d := range file.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok {
					continue
				}
				fn := m.funcFor(fd)
				if fn == nil {
					continue
				}
				if hasMarker(fd.Doc, "deterministic") {
					mk.det[fn] = true
					mk.eligible[pkg.Types] = true
				}
				if hasMarker(fd.Doc, "nondeterministic") {
					mk.nondet[fn] = true
					mk.eligible[pkg.Types] = true
				}
				if arg, ok := markerArg(fd.Doc, "ordered"); ok {
					mk.ordered[fn] = arg
					mk.eligible[pkg.Types] = true
				}
				if hasMarker(fd.Doc, "leaseclock") {
					mk.leaseClock = append(mk.leaseClock, fn)
					mk.eligible[pkg.Types] = true
				}
			}
			mk.collectSuppressions(m, file)
		}
	}
	return mk
}

// collectSuppressions records //mrp:nolint and //mrp:orderinsensitive
// comments: they mute the named analyzers on their own line and on the
// following line (covering both trailing and preceding placement).
func (mk *Markers) collectSuppressions(m *Module, file *ast.File) {
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			text, ok := strings.CutPrefix(c.Text, markerPrefix)
			if !ok {
				continue
			}
			verb, rest, _ := strings.Cut(text, " ")
			var names []string
			switch verb {
			case "nolint":
				args, _, _ := strings.Cut(strings.TrimSpace(rest), " ")
				names = strings.Split(args, ",")
			case "orderinsensitive":
				names = []string{"detmap"}
			default:
				continue
			}
			pos := m.Fset.Position(c.Pos())
			for _, name := range names {
				name = strings.TrimSpace(name)
				if name == "" {
					continue
				}
				set := mk.suppress[name]
				if set == nil {
					set = make(map[string]bool)
					mk.suppress[name] = set
				}
				set[lineKey(pos.Filename, pos.Line)] = true
				set[lineKey(pos.Filename, pos.Line+1)] = true
			}
		}
	}
}

func lineKey(file string, line int) string {
	return file + ":" + strconv.Itoa(line)
}

// suppressed reports whether a finding of the analyzer at the position is
// muted by a nolint marker.
func (mk *Markers) suppressed(analyzer string, pos token.Position) bool {
	set := mk.suppress[analyzer]
	if set == nil {
		return false
	}
	return set[lineKey(pos.Filename, pos.Line)]
}

// hasMarker reports whether a comment group contains the marker verb with
// no argument required.
func hasMarker(doc *ast.CommentGroup, verb string) bool {
	_, ok := markerArg(doc, verb)
	return ok
}

// markerArg returns the argument of a marker comment ("//mrp:verb arg")
// within a doc comment group, and whether the marker is present.
func markerArg(doc *ast.CommentGroup, verb string) (string, bool) {
	if doc == nil {
		return "", false
	}
	for _, c := range doc.List {
		text, ok := strings.CutPrefix(c.Text, markerPrefix)
		if !ok {
			continue
		}
		v, rest, _ := strings.Cut(text, " ")
		if v != verb {
			continue
		}
		arg, _, _ := strings.Cut(strings.TrimSpace(rest), " ")
		return arg, true
	}
	return "", false
}

// LeaseClockSites returns the //mrp:leaseclock-marked functions in
// collection order.
func (mk *Markers) LeaseClockSites() []*types.Func {
	return append([]*types.Func(nil), mk.leaseClock...)
}

// OrderedArg returns the //mrp:ordered argument for fn ("" when unmarked;
// use the second result to distinguish).
func (mk *Markers) OrderedArg(fn *types.Func) (string, bool) {
	arg, ok := mk.ordered[fn]
	return arg, ok
}
