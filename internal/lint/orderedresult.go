package lint

import (
	"go/ast"
	"go/types"
)

// OrderedResult guards the call sites of ordered commands — submissions
// that go through consensus and come back with an error and, for some
// calls, a typed reply carrying redirects (statusWrongEpoch). Dropping
// either silently loses a redirect or a failed reconfiguration step:
// exactly the mistakes that turn a clean schema change into divergence.
//
// Functions opt in with "//mrp:ordered" on their doc comment. At every
// call site of a marked function the analyzer flags:
//
//   - the whole call used as a statement, or behind go/defer (every
//     result dropped),
//   - the error result assigned to the blank identifier,
//   - with the "status" marker argument ("//mrp:ordered status"), the
//     first result (the reply) assigned to the blank identifier.
var OrderedResult = &Analyzer{
	Name: "orderedresult",
	Doc:  "flag dropped errors and discarded replies at ordered-command call sites",
	Run:  runOrderedResult,
}

func runOrderedResult(p *Pass) {
	info := p.Module.Info
	p.Module.eachFuncDecl(func(pkg *Package, file *ast.File, decl *ast.FuncDecl) {
		if decl.Body == nil {
			return
		}
		ast.Inspect(decl.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				if call, ok := n.X.(*ast.CallExpr); ok {
					p.orderedDropped(info, call, "all results of ordered command %s are dropped")
				}
			case *ast.GoStmt:
				p.orderedDropped(info, n.Call, "all results of ordered command %s are dropped (go statement)")
			case *ast.DeferStmt:
				p.orderedDropped(info, n.Call, "all results of ordered command %s are dropped (deferred)")
			case *ast.AssignStmt:
				p.orderedAssign(info, n)
			}
			return true
		})
	})
}

// orderedDropped reports a call whose results are discarded wholesale.
func (p *Pass) orderedDropped(info *types.Info, call *ast.CallExpr, format string) {
	callee := calleeOf(info, call)
	if callee == nil {
		return
	}
	if _, ok := p.Markers.OrderedArg(callee); !ok {
		return
	}
	p.Report(call.Pos(), format+"; handle the error (and any typed redirect)", relName(callee))
}

// orderedAssign reports blank-assigned error (and, for "status" markers,
// blank-assigned reply) results of an ordered call.
func (p *Pass) orderedAssign(info *types.Info, s *ast.AssignStmt) {
	if len(s.Rhs) != 1 {
		return
	}
	call, ok := ast.Unparen(s.Rhs[0]).(*ast.CallExpr)
	if !ok {
		return
	}
	callee := calleeOf(info, call)
	if callee == nil {
		return
	}
	arg, ok := p.Markers.OrderedArg(callee)
	if !ok {
		return
	}
	sig, ok := callee.Type().(*types.Signature)
	if !ok || sig.Results().Len() != len(s.Lhs) {
		return
	}
	for i := 0; i < sig.Results().Len(); i++ {
		id, isIdent := ast.Unparen(s.Lhs[i]).(*ast.Ident)
		if !isIdent || id.Name != "_" {
			continue
		}
		rt := sig.Results().At(i).Type()
		switch {
		case isErrorType(rt):
			p.Report(s.Pos(), "error of ordered command %s assigned to _; a dropped error hides a failed ordered step", relName(callee))
		case i == 0 && arg == "status":
			p.Report(s.Pos(), "reply of ordered command %s assigned to _; the reply carries typed redirects (statusWrongEpoch) that must be checked", relName(callee))
		}
	}
}

var errorType = types.Universe.Lookup("error").Type()

func isErrorType(t types.Type) bool {
	return types.Identical(t, errorType)
}
