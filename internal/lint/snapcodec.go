package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strconv"
)

// SnapCodec checks the checkpoint/snapshot codecs for canonical-encoding
// violations. Replicas compare and exchange checkpoints by content (the
// recovery protocol and the checkpoint-tuple alignment both depend on
// byte-identical snapshots), and every decoder runs on bytes that crossed
// the network — so the codec pairs carry three machine-checked contracts:
//
//   - encoders must not let map iteration order reach the output: a
//     map-sourced loop that feeds the encode sink must collect and sort
//     first (the same discipline detmap enforces in deterministic scope,
//     enforced here even if marker drift ever pulls a codec out of it);
//   - a version tag written by the encoder must have a decode arm for
//     every version constant of its group — bumping snapshotV4 to V5
//     without teaching Restore the new arm is a finding, not a crash on
//     the next rolling upgrade;
//   - a length or count read from the wire must be checked against the
//     remaining input (or a constant cap) before it reaches make, a slice
//     bound, or an index — an unguarded u32 count is an allocation bomb
//     (or a make-cap panic) fed by one corrupt checkpoint.
//
// Codec pairs are declared with "//mrp:codec name encode|decode" on the
// function doc. Both sides propagate through static calls into their
// helpers (Restore's checks cover takePartitioner), and every marked
// encoder must have a matching decoder and vice versa.
var SnapCodec = &Analyzer{
	Name: "snapcodec",
	Doc:  "check checkpoint codecs: sorted output, version arms, guarded lengths",
	Run:  runSnapCodec,
}

func runSnapCodec(p *Pass) {
	sc := &snapCodec{pass: p, info: p.Module.Info}
	sc.gather()
	sc.checkPairs()
	for _, side := range sc.sides {
		for _, fn := range side.fnOrder {
			decl := p.Scope.Body(fn)
			if decl == nil {
				continue
			}
			switch side.role {
			case "encode":
				sc.checkEncode(side, fn, decl)
			case "decode":
				sc.checkDecode(side, fn, decl)
			}
		}
	}
	sc.checkVersions()
}

// codecSide is one closure of a codec: the marked roots of one (name,
// role) pair plus every module function statically reachable from them.
type codecSide struct {
	name, role string
	roots      []*types.Func
	fns        map[*types.Func]string // provenance
	fnOrder    []*types.Func
}

type snapCodec struct {
	pass  *Pass
	info  *types.Info
	sides []*codecSide
}

// gather collects the marked codec roots in declaration order and closes
// each side over static calls into module functions.
func (sc *snapCodec) gather() {
	bySide := make(map[string]*codecSide)
	sc.pass.Module.eachFuncDecl(func(pkg *Package, file *ast.File, decl *ast.FuncDecl) {
		fn := sc.pass.Module.funcFor(decl)
		if fn == nil {
			return
		}
		name, role, ok := sc.pass.Markers.Codec(fn)
		if !ok {
			return
		}
		key := name + "\x00" + role
		side := bySide[key]
		if side == nil {
			side = &codecSide{name: name, role: role, fns: make(map[*types.Func]string)}
			bySide[key] = side
			sc.sides = append(sc.sides, side)
		}
		side.roots = append(side.roots, fn)
	})
	for _, side := range sc.sides {
		var worklist []*types.Func
		add := func(fn *types.Func, why string) {
			if _, ok := side.fns[fn]; ok {
				return
			}
			side.fns[fn] = why
			side.fnOrder = append(side.fnOrder, fn)
			worklist = append(worklist, fn)
		}
		for _, root := range side.roots {
			add(root, "marked //mrp:codec "+side.name+" "+side.role)
		}
		for len(worklist) > 0 {
			fn := worklist[len(worklist)-1]
			worklist = worklist[:len(worklist)-1]
			body := sc.pass.Scope.Body(fn)
			if body == nil {
				continue
			}
			via := side.role + "r " + relName(fn)
			ast.Inspect(body.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				callee := calleeOf(sc.info, call)
				if callee == nil || interfaceRecv(callee) != nil {
					return true
				}
				if sc.pass.Scope.Body(callee) != nil {
					add(callee, "reached from "+via)
				}
				return true
			})
		}
	}
}

// checkPairs reports codecs with only one side marked.
func (sc *snapCodec) checkPairs() {
	roles := make(map[string]map[string]*types.Func) // name -> role -> first root
	var names []string
	for _, side := range sc.sides {
		m := roles[side.name]
		if m == nil {
			m = make(map[string]*types.Func)
			roles[side.name] = m
			names = append(names, side.name)
		}
		if _, ok := m[side.role]; !ok && len(side.roots) > 0 {
			m[side.role] = side.roots[0]
		}
	}
	sort.Strings(names)
	for _, name := range names {
		m := roles[name]
		if enc, ok := m["encode"]; ok && m["decode"] == nil {
			sc.pass.Report(enc.Pos(), "codec %s has an encoder but no //mrp:codec %s decode counterpart", name, name)
		}
		if dec, ok := m["decode"]; ok && m["encode"] == nil {
			sc.pass.Report(dec.Pos(), "codec %s has a decoder but no //mrp:codec %s encode counterpart", name, name)
		}
	}
}

// checkEncode flags map iterations whose order can reach the encoder's
// output without a collect-and-sort step.
func (sc *snapCodec) checkEncode(side *codecSide, fn *types.Func, decl *ast.FuncDecl) {
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		rs, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		t := sc.info.TypeOf(rs.X)
		if t == nil {
			return true
		}
		if _, isMap := t.Underlying().(*types.Map); !isMap {
			return true
		}
		eff := classifyRangeBody(sc.info, rs)
		if eff.orderInsensitive() {
			return true
		}
		if sortedAfter(sc.info, decl, rs, eff.appended) {
			return true
		}
		sc.pass.Report(rs.For,
			"map iteration order reaches the %s encoder (%s): checkpoints are compared by content, so collect the keys and sort before encoding",
			side.name, side.fns[fn])
		return true
	})
}

// wireRead is one variable assigned from a binary length/count read.
type wireRead struct {
	obj types.Object
	pos token.Pos
}

// checkDecode flags wire-length variables that reach make, a slice bound,
// or an index before any bounds check against the remaining input.
func (sc *snapCodec) checkDecode(side *codecSide, fn *types.Func, decl *ast.FuncDecl) {
	reads := sc.wireReads(decl.Body)
	if len(reads) == 0 {
		return
	}
	guards := sc.guardPositions(decl.Body, reads)
	check := func(x ast.Expr, what string, at token.Pos) {
		if x == nil {
			return
		}
		for _, r := range reads {
			if !mentions(sc.info, x, r.obj) {
				continue
			}
			if guarded(guards[r.obj], at) {
				continue
			}
			readAt := sc.pass.Module.Fset.Position(r.pos)
			sc.pass.Report(at,
				"wire-sourced length %s (read at %s:%d) reaches %s before any bounds check in the %s decoder (%s): a corrupt checkpoint drives the allocation",
				r.obj.Name(), readAt.Filename, readAt.Line, what, side.name, side.fns[fn])
		}
	}
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if isBuiltin(sc.info, n, "make") {
				for _, arg := range n.Args[1:] {
					check(arg, "make", n.Pos())
				}
			}
		case *ast.SliceExpr:
			check(n.Low, "a slice bound", n.Pos())
			check(n.High, "a slice bound", n.Pos())
			check(n.Max, "a slice bound", n.Pos())
		case *ast.IndexExpr:
			if t := sc.info.TypeOf(n.X); t != nil {
				if _, isMap := t.Underlying().(*types.Map); !isMap {
					check(n.Index, "an index", n.Pos())
				}
			}
		}
		return true
	})
}

// wireReads finds locals assigned from binary.*.Uint16/32/64 reads
// (possibly through integer conversions) — the wire-sourced lengths and
// counts a decoder must validate.
func (sc *snapCodec) wireReads(body *ast.BlockStmt) []wireRead {
	var reads []wireRead
	seen := make(map[types.Object]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, lhs := range as.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok {
				continue
			}
			var obj types.Object
			if as.Tok == token.DEFINE {
				obj = sc.info.Defs[id]
			} else {
				obj = sc.info.Uses[id]
			}
			if obj == nil || seen[obj] || !isBinaryUintRead(sc.info, as.Rhs[i]) {
				continue
			}
			seen[obj] = true
			reads = append(reads, wireRead{obj: obj, pos: as.Pos()})
		}
		return true
	})
	return reads
}

// isBinaryUintRead reports whether x is (a conversion of) a
// binary.ByteOrder Uint16/Uint32/Uint64 call.
func isBinaryUintRead(info *types.Info, x ast.Expr) bool {
	call, ok := ast.Unparen(x).(*ast.CallExpr)
	if !ok {
		return false
	}
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		return isBinaryUintRead(info, call.Args[0])
	}
	callee := calleeOf(info, call)
	if callee == nil || callee.Pkg() == nil || callee.Pkg().Path() != "encoding/binary" {
		return false
	}
	switch callee.Name() {
	case "Uint16", "Uint32", "Uint64":
		return true
	}
	return false
}

// guardPositions finds, per wire-read variable, the positions of
// comparisons that validate it: any comparison mentioning the variable
// together with a len(...) call, or comparing it against a constant cap.
func (sc *snapCodec) guardPositions(body *ast.BlockStmt, reads []wireRead) map[types.Object][]token.Pos {
	guards := make(map[types.Object][]token.Pos)
	ast.Inspect(body, func(n ast.Node) bool {
		be, ok := n.(*ast.BinaryExpr)
		if !ok {
			return true
		}
		switch be.Op {
		case token.LSS, token.LEQ, token.GTR, token.GEQ, token.EQL, token.NEQ:
		default:
			return true
		}
		validating := mentionsLen(sc.info, be) || isConstExpr(sc.info, be.X) || isConstExpr(sc.info, be.Y)
		if !validating {
			return true
		}
		for _, r := range reads {
			if mentions(sc.info, be, r.obj) {
				guards[r.obj] = append(guards[r.obj], be.Pos())
			}
		}
		return true
	})
	return guards
}

func guarded(positions []token.Pos, use token.Pos) bool {
	for _, p := range positions {
		if p < use {
			return true
		}
	}
	return false
}

// mentions reports whether x references obj.
func mentions(info *types.Info, x ast.Node, obj types.Object) bool {
	found := false
	ast.Inspect(x, func(n ast.Node) bool {
		if found {
			return false
		}
		if id, ok := n.(*ast.Ident); ok && info.Uses[id] == obj {
			found = true
		}
		return true
	})
	return found
}

// mentionsLen reports whether x contains a len(...) call.
func mentionsLen(info *types.Info, x ast.Node) bool {
	found := false
	ast.Inspect(x, func(n ast.Node) bool {
		if found {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok && isBuiltin(info, call, "len") {
			found = true
		}
		return true
	})
	return found
}

// isConstExpr reports whether x is a compile-time constant (a cap like
// voteTableCap, or a literal).
func isConstExpr(info *types.Info, x ast.Expr) bool {
	tv, ok := info.Types[x]
	return ok && tv.Value != nil
}

// versionConstRE matches version-tag constant names: a group prefix
// followed by V<digits> ("snapshotV4" -> group "snapshotV", version 4).
var versionConstRE = regexp.MustCompile(`^(.*[Vv])(\d+)$`)

// checkVersions verifies that every version constant of a group whose tag
// an encoder writes has a matching arm in the paired decoder closure.
func (sc *snapCodec) checkVersions() {
	decodeRefs := make(map[string]map[types.Object]bool) // codec name -> consts referenced
	decodeRoot := make(map[string]*types.Func)
	for _, side := range sc.sides {
		if side.role != "decode" {
			continue
		}
		refs := decodeRefs[side.name]
		if refs == nil {
			refs = make(map[types.Object]bool)
			decodeRefs[side.name] = refs
		}
		if decodeRoot[side.name] == nil && len(side.roots) > 0 {
			decodeRoot[side.name] = side.roots[0]
		}
		for _, fn := range side.fnOrder {
			if decl := sc.pass.Scope.Body(fn); decl != nil {
				for obj := range constRefs(sc.info, decl.Body) {
					refs[obj] = true
				}
			}
		}
	}
	for _, side := range sc.sides {
		if side.role != "encode" {
			continue
		}
		for _, fn := range side.fnOrder {
			decl := sc.pass.Scope.Body(fn)
			if decl == nil {
				continue
			}
			for obj := range constRefs(sc.info, decl.Body) {
				m := versionConstRE.FindStringSubmatch(obj.Name())
				if m == nil || obj.Pkg() == nil {
					continue
				}
				sc.checkVersionGroup(side, fn, obj, m[1])
			}
		}
	}
}

// checkVersionGroup reports group members missing from the decoder.
func (sc *snapCodec) checkVersionGroup(side *codecSide, enc *types.Func, ref types.Object, prefix string) {
	group := versionGroup(ref.Pkg(), prefix)
	if len(group) < 2 {
		return // a lone version constant has no prior arms to cover
	}
	refs := sc.decodeRefsFor(side.name)
	for _, member := range group {
		if refs == nil || !refs[member] {
			sc.pass.Report(enc.Pos(),
				"encoder %s writes version-tag group %s* but the %s decoder has no arm for %s: every prior version must stay decodable",
				relName(enc), prefix, side.name, member.Name())
		}
	}
}

func (sc *snapCodec) decodeRefsFor(name string) map[types.Object]bool {
	for _, side := range sc.sides {
		if side.name == name && side.role == "decode" {
			refs := make(map[types.Object]bool)
			for _, fn := range side.fnOrder {
				if decl := sc.pass.Scope.Body(fn); decl != nil {
					for obj := range constRefs(sc.info, decl.Body) {
						refs[obj] = true
					}
				}
			}
			return refs
		}
	}
	return nil
}

// versionGroup lists the package's constants sharing a version prefix,
// sorted by version number.
func versionGroup(pkg *types.Package, prefix string) []types.Object {
	type member struct {
		obj types.Object
		n   int
	}
	var members []member
	scope := pkg.Scope()
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok {
			continue
		}
		m := versionConstRE.FindStringSubmatch(name)
		if m == nil || m[1] != prefix {
			continue
		}
		n, err := strconv.Atoi(m[2])
		if err != nil {
			continue
		}
		members = append(members, member{obj: c, n: n})
	}
	sort.Slice(members, func(i, j int) bool { return members[i].n < members[j].n })
	out := make([]types.Object, len(members))
	for i, m := range members {
		out[i] = m.obj
	}
	return out
}

// constRefs collects the constant objects referenced in a body.
func constRefs(info *types.Info, body *ast.BlockStmt) map[types.Object]bool {
	out := make(map[types.Object]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if c, ok := info.Uses[id].(*types.Const); ok {
				out[c] = true
			}
		}
		return true
	})
	return out
}
