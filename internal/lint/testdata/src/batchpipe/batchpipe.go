// Package batchpipe is the golden fixture for the SMR batching and
// pipelining paths: the batch codec is //mrp:deterministic (every replica
// must slice a delivered entry into the same commands), and submitting
// through the batcher is //mrp:ordered (a dropped result is a lost reply,
// exactly like the unbatched path). The shapes below mirror the real
// code so analyzer regressions surface here before they surface in CI.
package batchpipe

import (
	"errors"
	"sort"
)

// encodeBatch is the true positive the batch codec must never become:
// packing a flush's pending commands in map iteration order would give
// every proposer — and every replay — a differently laid-out entry.
//
//mrp:deterministic
func encodeBatch(pending map[uint64][]byte) []byte {
	out := []byte{0xFF}
	for _, payload := range pending { // want "map iteration order reaches deterministic state"
		out = append(out, byte(len(payload)))
		out = append(out, payload...)
	}
	return out
}

// encodeBatchSorted is the fixed form: flush order pinned by sequence
// number before the bytes are laid out.
//
//mrp:deterministic
func encodeBatchSorted(pending map[uint64][]byte) []byte {
	seqs := make([]uint64, 0, len(pending))
	for seq := range pending {
		seqs = append(seqs, seq)
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	out := []byte{0xFF}
	for _, seq := range seqs {
		out = append(out, byte(len(pending[seq])))
		out = append(out, pending[seq]...)
	}
	return out
}

// batchBytes accumulates commutatively — a size bound check is order-
// insensitive, so the analyzer stays quiet.
//
//mrp:deterministic
func batchBytes(pending map[uint64][]byte) int {
	n := 0
	for _, payload := range pending {
		n += len(payload)
	}
	return n
}

// SubmitBatched hands one command to the ring's batcher and returns the
// executed reply. Losing the reply loses the only proof the command's
// position in the merged order was observed.
//
//mrp:ordered
func SubmitBatched(ring uint32, op []byte) ([]byte, error) {
	return nil, errors.New("x")
}

func goodSubmit() []byte {
	res, err := SubmitBatched(1, []byte("op"))
	if err != nil {
		return nil
	}
	return res
}

func badSubmit() {
	SubmitBatched(1, []byte("op"))           // want "all results of ordered command SubmitBatched are dropped"
	res, _ := SubmitBatched(1, []byte("op")) // want "error of ordered command SubmitBatched assigned to _"
	_ = res
	go SubmitBatched(1, []byte("op")) // want "go statement"
}

func justifiedSubmit() {
	//mrp:nolint orderedresult — warm-up traffic, replies measured elsewhere
	SubmitBatched(1, []byte("op"))
}
