// Package detmapa exercises the detmap analyzer: map ranges in
// deterministic functions, the order-insensitive allowlist, and the
// collect-then-sort idiom.
package detmapa

import "sort"

// encode is the canonical true positive: checkpoint bytes built in map
// iteration order.
//
//mrp:deterministic
func encode(m map[string]uint64) []byte {
	var out []byte
	for k, v := range m { // want "map iteration order reaches deterministic state"
		out = append(out, byte(len(k)), byte(v))
	}
	return out
}

// encodeSorted is the fixed form: collect keys, sort, then iterate.
//
//mrp:deterministic
func encodeSorted(m map[string]uint64) []byte {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var out []byte
	for _, k := range keys {
		out = append(out, byte(m[k]))
	}
	return out
}

// count accumulates commutatively: order-insensitive, allowed.
//
//mrp:deterministic
func count(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}

// invert writes keyed by the iteration variable: allowed.
//
//mrp:deterministic
func invert(m map[string]int) map[int]string {
	out := make(map[int]string, len(m))
	for k, v := range m {
		out[v] = k
	}
	return out
}

// has sets a constant flag and breaks: membership is order-insensitive.
//
//mrp:deterministic
func has(m map[string]int, want string) bool {
	found := false
	for k := range m {
		if k == want {
			found = true
			break
		}
	}
	return found
}

// collectThenSort is the storage.Log idiom: keys gathered then sorted
// before use.
//
//mrp:deterministic
func collectThenSort(m map[uint64]int) []uint64 {
	var ids []uint64
	for id := range m {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// sumUntil accumulates AND exits early: the sum depends on visit order.
//
//mrp:deterministic
func sumUntil(m map[string]int, limit int) int {
	n := 0
	for _, v := range m { // want "map iteration order reaches deterministic state"
		n += v
		if n > limit {
			break
		}
	}
	return n
}

// unmarked is outside the deterministic scope: no findings.
func unmarked(m map[string]int) []int {
	var out []int
	for _, v := range m {
		out = append(out, v)
	}
	return out
}

// justified shows the escape hatch for order-insensitivity the analyzer
// cannot prove.
//
//mrp:deterministic
func justified(m map[string]func()) {
	//mrp:orderinsensitive — callbacks are independent and effect-free
	for _, fn := range m {
		fn()
	}
}
