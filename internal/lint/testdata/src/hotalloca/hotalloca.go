// Package hotalloca exercises every allocation shape the hotalloc
// analyzer flags inside hot-path scope — builtin allocators, escaping
// literals, closures and method values, fmt/errors helpers, string
// copies, nil-slice growth, and interface boxing — plus the three ways
// out: a //mrp:coldpath stop, a reasoned //mrp:alloc allowance, and the
// copy-free string contexts the compiler elides.
package hotalloca

import (
	"errors"
	"fmt"
)

// Pair is scratch state for the literal shapes below.
type Pair struct {
	K string
	V int
}

// Writer mirrors a transport endpoint: its interface-typed parameter
// slot is what boxes concrete arguments.
type Writer interface {
	Write(v interface{})
}

// sink consumes values so the fixture compiles; assignments to an
// interface variable are deliberately not an alloc shape.
var sink interface{}

// index is read with a converted key in the one copy-free index context.
var index map[string]int

// events is the interface-typed channel of the send-boxing shape.
var events chan interface{}

// Apply is the marked hot root: every line below is in hot-path scope.
//
//mrp:hotpath
func Apply(w Writer, key string, raw []byte) {
	buf := make([]byte, 8)      // want "make([]byte) allocates"
	p := new(Pair)              // want "new(Pair) allocates"
	q := &Pair{K: key}          // want "&hotalloca.Pair composite literal escapes to the heap"
	s := []int{1, 2}            // want "[]int literal allocates its backing array"
	set := map[string]int{}     // want "map[string]int literal allocates"
	f := func() { sink = key }  // want "closure capturing key allocates"
	g := w.Write                // want "method value w.Write allocates"
	sink = fmt.Sprintf("%d", 1) // want "fmt.Sprintf formats into fresh heap storage"
	sink = errors.New("boom")   // want "errors.New allocates"
	k := string(raw)            // want "conversion string(raw) copies its bytes"
	var accum []byte
	accum = append(accum, raw...) // want "append to nil-initialized local accum grows on the heap"
	w.Write(len(raw))             // want "passed as interface"
	events <- len(buf)            // want "sent as interface"

	// Copy-free contexts: a string comparison and a map-read index elide
	// the conversion copy, so neither line is a finding.
	if string(raw) == key {
		sink = index[string(raw)]
	}

	f()
	g(nil)
	sink = boxedReturn(len(accum))
	_, _, _, _, _ = p, q, s, set, k
	_ = helper(len(raw))
	_ = grow()
	_ = rebuild()
}

// helper carries no marker of its own: it inherits hot scope
// transitively from Apply.
func helper(n int) []int {
	return make([]int, n) // want "make([]int) allocates"
}

// boxedReturn returns a concrete int through an interface result, which
// boxes on every call.
func boxedReturn(n int) interface{} {
	return n // want "returned as interface"
}

// grow demonstrates the sanctioned escape hatch: a trailing //mrp:alloc
// allowance with a reason mutes the finding on its line.
func grow() []byte {
	return make([]byte, 64) //mrp:alloc — fixture: sanctioned amortized scratch growth
}

// rebuild is checkpoint-shaped work: //mrp:coldpath stops hot-path
// propagation, so its allocations are free.
//
//mrp:coldpath
func rebuild() map[string]int {
	return map[string]int{"a": 1}
}
