// Package hotpropa exercises hot-path propagation across a package
// boundary through an interface: the marked root calls Executor.Exec,
// class hierarchy analysis resolves it to hotpropb.Machine, and the
// allocation discipline follows the call into that package.
package hotpropa

import "hotpropb"

// Executor mirrors the replica's state-machine interface.
type Executor interface {
	Exec(op []byte) []byte
}

// New wires the concrete machine in. It is NOT in hot scope, so the
// escaping composite literal here is free — construction happens once,
// delivery happens per command.
func New() Executor { return &hotpropb.Machine{} }

// Deliver is the marked hot root; the interface call below carries the
// scope into hotpropb.
//
//mrp:hotpath
func Deliver(e Executor, op []byte) []byte {
	return e.Exec(op)
}
