// Package hotpropb is the concrete executor reached from
// hotpropa.Deliver through the Executor interface. The //mrp:coldpath
// marker on rare opts the package into the hot-path discipline (making
// it hot-eligible), so class hierarchy analysis descends into it; Exec
// itself carries no marker and enters the scope purely via the call
// graph.
package hotpropb

// Machine implements hotpropa.Executor.
type Machine struct {
	scratch []byte
}

// Exec enters hot scope via CHA from hotpropa.Deliver.
func (m *Machine) Exec(op []byte) []byte {
	out := make([]byte, len(op)) // want "make([]byte) allocates"
	copy(out, op)
	return m.tag(out)
}

// tag is reached transitively (Exec -> tag): the scope follows static
// calls inside the package too.
func (m *Machine) tag(b []byte) []byte {
	var out []byte
	out = append(out, b...) // want "append to nil-initialized local out grows on the heap"
	return out
}

// rare is a reconfiguration-time slow path: //mrp:coldpath makes its
// allocation free — and opts this package into hot-eligibility in the
// first place.
//
//mrp:coldpath
func (m *Machine) rare() {
	m.scratch = make([]byte, 1<<16)
}
