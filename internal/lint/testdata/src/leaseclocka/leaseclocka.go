// Package leaseclocka exercises the scoped //mrp:leaseclock allowance:
// exactly one marked function may call time.Now inside deterministic
// scope; the clock stays banned everywhere else, the allowance never
// extends past Now, and a second marked site is itself a finding.
package leaseclocka

import "time"

// clockNow mirrors smr.leaseClockNow: the module's one sanctioned
// wall-clock read. First marked site in source order, so it holds the
// allowance — no finding on the Now call below.
//
//mrp:leaseclock
func clockNow() time.Time {
	return time.Now()
}

// gate pulls clockNow into deterministic scope through the call graph,
// the same way the replica's apply path reaches leaseClockNow.
//
//mrp:deterministic
func gate(deadline time.Time) bool {
	return clockNow().Before(deadline)
}

// leak proves the allowance did not widen the rules for anyone else.
//
//mrp:deterministic
func leak() (int64, time.Duration) {
	t := time.Now().UnixNano()        // want "time.Now reads the wall clock"
	return t, time.Since(time.Time{}) // want "time.Since reads the wall clock"
}

// second tries to mint a second allowance: the declaration is flagged,
// and its body gets no exemption.
//
//mrp:leaseclock
//mrp:deterministic
func second() time.Time { // want "duplicate //mrp:leaseclock"
	<-time.After(time.Millisecond) // want "timer channel"
	return time.Now()              // want "time.Now reads the wall clock"
}
