// Package lockedblocka exercises the lockedblock analyzer: blocking
// operations under a held mutex, with the non-blocking and
// other-goroutine allowances.
package lockedblocka

import (
	"sync"
	"time"
)

type box struct {
	mu sync.Mutex
	ch chan int
	wg sync.WaitGroup
}

func (b *box) sendLocked() {
	b.mu.Lock()
	b.ch <- 1 // want "channel send while holding b.mu"
	b.mu.Unlock()
}

func (b *box) sendAfterUnlock() {
	b.mu.Lock()
	b.mu.Unlock()
	b.ch <- 1
}

func (b *box) deferred() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return <-b.ch // want "channel receive while holding b.mu"
}

func (b *box) nonBlocking() {
	b.mu.Lock()
	defer b.mu.Unlock()
	select {
	case b.ch <- 1:
	default:
	}
}

func (b *box) blockingSelect() {
	b.mu.Lock()
	defer b.mu.Unlock()
	select { // want "select without default while holding b.mu"
	case v := <-b.ch:
		_ = v
	}
}

func (b *box) sleepy() {
	b.mu.Lock()
	time.Sleep(time.Millisecond) // want "time.Sleep while holding b.mu"
	b.mu.Unlock()
}

func (b *box) waits() {
	b.mu.Lock()
	b.wg.Wait() // want "sync.WaitGroup.Wait while holding b.mu"
	b.mu.Unlock()
}

func (b *box) spawns() {
	b.mu.Lock()
	go func() { b.ch <- 1 }()
	b.mu.Unlock()
}

func (b *box) branchUnlockReturn(x bool) {
	b.mu.Lock()
	if x {
		b.mu.Unlock()
		return
	}
	v := <-b.ch // want "channel receive while holding b.mu"
	_ = v
	b.mu.Unlock()
}

// embedded locks through promotion are recognized too.
type embeds struct {
	sync.Mutex
	ch chan int
}

func (e *embeds) locked() {
	e.Lock()
	<-e.ch // want "channel receive while holding e"
	e.Unlock()
}

type rw struct {
	mu sync.RWMutex
	ch chan int
}

func (r *rw) readLocked() {
	r.mu.RLock()
	<-r.ch // want "channel receive while holding r.mu"
	r.mu.RUnlock()
}

func (r *rw) justified() {
	r.mu.RLock()
	//mrp:nolint lockedblock — buffered diagnostics channel sized for worst case
	r.ch <- 1
	r.mu.RUnlock()
}
