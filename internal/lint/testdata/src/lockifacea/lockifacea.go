// Package lockifacea holds Guard.mu across an interface-dispatched
// flush into lockifaceb, which takes DB.mu — while lockifaceb.DB.Commit
// holds DB.mu across a Notifier callback that takes Guard.mu. Neither
// package alone contains a cycle; only class hierarchy analysis over
// both finds the opposite-order pair.
package lockifacea

import (
	"sync"

	"lockifaceb"
)

// Flusher is satisfied by lockifaceb.DB.
type Flusher interface {
	Flush()
}

// Guard serializes updates and implements lockifaceb.Notifier.
type Guard struct {
	mu sync.Mutex
	f  Flusher
}

var _ lockifaceb.Notifier = (*Guard)(nil)

// Update holds Guard.mu across the interface-dispatched flush, whose
// concrete implementation acquires DB.mu.
func (g *Guard) Update() {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.f.Flush() // want "lock-order cycle: lockifacea.Guard.mu → lockifaceb.DB.mu → lockifacea.Guard.mu"
}

// Notify implements lockifaceb.Notifier by taking the guard lock — the
// back edge of the cycle when called under DB.mu.
func (g *Guard) Notify() {
	g.mu.Lock()
	defer g.mu.Unlock()
}
