// Package lockifaceb is the flush target: DB.Flush takes DB.mu, and
// DB.Commit holds it across a callback through the Notifier interface —
// implemented on the other side by lockifacea.Guard, which takes
// Guard.mu. See lockifacea for the full cycle.
package lockifaceb

import "sync"

// Notifier is implemented by lockifacea.Guard.
type Notifier interface {
	Notify()
}

// DB owns the storage lock.
type DB struct {
	mu sync.Mutex
	n  Notifier
}

// Flush takes DB.mu; reached from lockifacea.Guard.Update through the
// Flusher interface while Guard.mu is held.
func (d *DB) Flush() {
	d.mu.Lock()
	defer d.mu.Unlock()
}

// Commit holds DB.mu across the notifier callback, which acquires
// Guard.mu on the other side: the opposite order.
func (d *DB) Commit() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.n.Notify()
}
