// Package lockordera exercises the lock-order analyzer's in-package
// shapes: an opposite-order two-lock cycle, same-class nesting, and an
// ordered-command submission made under a mutex.
package lockordera

import "sync"

var (
	muA sync.Mutex
	muB sync.Mutex
	muC sync.Mutex
)

// abOrder takes muA then muB. The cycle is reported once, at the edge
// leaving the lexicographically-first lock — this acquisition.
func abOrder() {
	muA.Lock()
	defer muA.Unlock()
	muB.Lock() // want "lock-order cycle: lockordera.muA → lockordera.muB → lockordera.muA"
	defer muB.Unlock()
}

// baOrder takes muB then muA: the opposite order that closes the cycle.
func baOrder() {
	muB.Lock()
	defer muB.Unlock()
	muA.Lock()
	muA.Unlock()
}

// sequential takes the same two locks but never nested: no edge, no
// finding.
func sequential() {
	muA.Lock()
	muA.Unlock()
	muB.Lock()
	muB.Unlock()
}

// Shard is a lock-per-shard table: nesting two instances of the same
// lock class deadlocks unless every path orders them identically.
type Shard struct {
	mu   sync.Mutex
	keys map[string]bool
}

// merge locks two shards of the same class.
func merge(a, b *Shard) {
	a.mu.Lock()
	defer a.mu.Unlock()
	b.mu.Lock() // want "same-class nesting"
	defer b.mu.Unlock()
	for k := range a.keys {
		b.keys[k] = true
	}
}

// Submit mirrors ring submission: an //mrp:ordered call blocks on a
// consensus round-trip.
//
//mrp:ordered
func Submit(op []byte) error {
	_ = op
	return nil
}

// flush proposes while holding muC: the round-trip stalls every other
// path through the lock.
func flush(op []byte) error {
	muC.Lock()
	defer muC.Unlock()
	return Submit(op) // want "ordered-command submission Submit while holding lockordera.muC"
}

// flushUnlocked proposes outside the critical section: fine.
func flushUnlocked(op []byte) error {
	muC.Lock()
	muC.Unlock()
	return Submit(op)
}
