// Package nolinta exercises suppression-marker validation: the reason
// after the — separator is mandatory, analyzer names must exist, a
// nolint must name at least one analyzer, and codec markers must parse.
// The markers below are deliberately malformed; TestNolintValidation in
// lint_test.go asserts the exact findings directly, because a `// want`
// comment cannot share a line with the marker it would re-parse.
package nolinta

import "time"

// baseline is the one sanctioned suppression — named analyzer,
// non-empty reason — and must produce no validation finding.
//
//mrp:deterministic
func baseline() int64 {
	return time.Now().UnixNano() //mrp:nolint wallclock — fixture: the sanctioned baseline suppression
}

// emptyReason ends in the separator with nothing after it. The finding
// fires, but the suppression still mutes wallclock: silence stays
// silenced, it just never stays silent about itself.
//
//mrp:deterministic
func emptyReason() int64 {
	return time.Now().UnixNano() //mrp:nolint wallclock —
}

// noSeparator has trailing prose but no — separator at all.
//
//mrp:deterministic
func noSeparator() int64 {
	return time.Now().UnixNano() //mrp:nolint wallclock because reasons need a separator
}

// unknownName suppresses a nonexistent analyzer: flagged, and the
// wallclock finding underneath still fires because nothing real was
// suppressed.
//
//mrp:deterministic
func unknownName() int64 {
	return time.Now().UnixNano() //mrp:nolint wallcheck — reasoned, but the analyzer name is a typo
}

// noNames gives a reason but names no analyzer.
//
//mrp:deterministic
func noNames() int64 {
	return 0 //mrp:nolint — a dangling reason with nothing to suppress
}

// badCodec carries a codec marker missing its role argument.
//
//mrp:codec broken
func badCodec() {}
