// Package ordereda exercises the orderedresult analyzer: dropped errors
// and discarded replies at marked ordered-command call sites.
package ordereda

import "errors"

type reply struct{ status byte }

// Submit orders one command and returns the typed reply.
//
//mrp:ordered status
func Submit(op []byte) (reply, error) { return reply{}, errors.New("x") }

// Fire orders one command, error-only.
//
//mrp:ordered
func Fire(op []byte) error { return errors.New("x") }

// plain is unmarked: dropping its results is fine.
func plain() error { return nil }

func good() bool {
	r, err := Submit(nil)
	if err != nil {
		return false
	}
	if err := Fire(nil); err != nil {
		return false
	}
	plain()
	return r.status == 0
}

func dropped() {
	Fire(nil)           // want "all results of ordered command Fire are dropped"
	_ = Fire(nil)       // want "error of ordered command Fire assigned to _"
	r, _ := Submit(nil) // want "error of ordered command Submit assigned to _"
	_ = r
	_, err := Submit(nil) // want "reply of ordered command Submit assigned to _"
	_ = err
	go Fire(nil)    // want "go statement"
	defer Fire(nil) // want "deferred"
}

func doubleBlank() {
	_, _ = Submit(nil) // want "error of ordered command Submit" "reply of ordered command Submit"
}

func justified() {
	//mrp:nolint orderedresult — fire-and-forget load generation
	Fire(nil)
}
