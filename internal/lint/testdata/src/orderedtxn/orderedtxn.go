// Package orderedtxn exercises the orderedresult analyzer over
// transaction-verb shapes: multi-key ordered commands whose replies carry
// the applied/aborted verdict and the balances read at the delivery
// position. Dropping either loses the one consistent view the multicast
// paid for.
package orderedtxn

import "errors"

// Transfer moves amount between two balances as one multicast command and
// returns the balances read at the transaction's own delivery position.
//
//mrp:ordered
func Transfer(from, to string, amount int64) (int64, int64, error) {
	return 0, 0, errors.New("x")
}

// CompareAndSwapAcross applies a conditional multi-key swap and reports
// whether it was applied.
//
//mrp:ordered status
func CompareAndSwapAcross(keys []string) (bool, error) { return false, errors.New("x") }

func good() bool {
	fromBal, toBal, err := Transfer("x", "y", 7)
	if err != nil {
		return false
	}
	applied, err := CompareAndSwapAcross(nil)
	if err != nil {
		return false
	}
	return applied && fromBal+toBal == 0
}

func dropped() {
	Transfer("x", "y", 7)                  // want "all results of ordered command Transfer are dropped"
	fromBal, _, _ := Transfer("x", "y", 7) // want "error of ordered command Transfer assigned to _"
	_ = fromBal
	var err error
	_, err = CompareAndSwapAcross(nil) // want "reply of ordered command CompareAndSwapAcross assigned to _"
	_ = err
	applied, _ := CompareAndSwapAcross(nil) // want "error of ordered command CompareAndSwapAcross assigned to _"
	_ = applied
	go CompareAndSwapAcross(nil) // want "go statement"
}

// blankBalances drops only the returned balances of a non-status verb:
// the error is still checked, so the analyzer stays quiet (the balances
// are a convenience, not a typed redirect channel).
func blankBalances() error {
	_, _, err := Transfer("x", "y", 7)
	return err
}

func justified() bool {
	//mrp:nolint orderedresult — example fire-and-forget
	Transfer("x", "y", 1)
	applied, err := CompareAndSwapAcross(nil)
	return err == nil && applied
}
