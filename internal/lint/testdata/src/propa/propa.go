// Package propa exercises deterministic-scope propagation: a marked root
// whose calls cross a package boundary through an interface (class
// hierarchy analysis) into propb, while unmarked propc stays a boundary.
package propa

import (
	"propb"
	"propc"
)

// SM mirrors smr.StateMachine.
type SM interface {
	Execute(op []byte) []byte
}

// NewSM wires the concrete machine in, mirroring replica construction.
func NewSM() SM { return &propb.Machine{} }

// Apply mirrors the replica executor entry point.
//
//mrp:deterministic
func Apply(sm SM, op []byte) []byte {
	propc.Boundary() // unmarked package: propagation stops here
	return sm.Execute(op)
}
