// Package propb is the concrete state machine reached from propa.Apply
// through the SM interface; its helpers inherit the deterministic scope
// transitively, except where //mrp:nondeterministic stops propagation.
package propb

import "time"

// Machine implements propa.SM.
type Machine struct {
	state map[string]int
}

// Execute is never annotated: it enters the scope via CHA from
// propa.Apply's sm.Execute call.
func (m *Machine) Execute(op []byte) []byte {
	var out []byte
	for k := range m.state { // want "map iteration order reaches deterministic state"
		out = append(out, k...)
	}
	out = append(out, m.stamp()...)
	m.observe()
	return out
}

// stamp is reached transitively (Execute -> stamp).
func (m *Machine) stamp() []byte {
	return []byte(time.Now().String()) // want "time.Now reads the wall clock"
}

// observe is a deliberate boundary: its timing is free.
//
//mrp:nondeterministic
func (m *Machine) observe() {
	_ = time.Now()
}
