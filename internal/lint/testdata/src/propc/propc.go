// Package propc carries no mrp markers: deterministic propagation must
// not descend into it.
package propc

import "time"

// Boundary would be a wallclock finding if propagation crossed into an
// unmarked package.
func Boundary() int64 {
	return time.Now().UnixNano()
}
