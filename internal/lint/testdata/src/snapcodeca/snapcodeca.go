// Package snapcodeca exercises the checkpoint-codec analyzer: map
// iteration order reaching an encoder, version-tag groups with missing
// decode arms, wire-sourced lengths used before their bounds check
// (including position sensitivity and propagation through a static
// helper call), and one-sided codec pairs.
package snapcodeca

import (
	"encoding/binary"
	"sort"
)

// The table codec's version tags: the encoder writes tableV2, and the
// decoder below deliberately forgets the tableV1 arm.
const (
	tableV1 = 1
	tableV2 = 2
)

// EncodeTable writes the current version tag and then the entries in
// map iteration order — both findings live here: the missing V1 decode
// arm reports at this declaration, the unsorted range at its loop.
//
//mrp:codec table encode
func EncodeTable(m map[string]uint32) []byte { // want "no arm for tableV1"
	out := []byte{tableV2}
	for k, v := range m { // want "map iteration order reaches the table encoder"
		out = append(out, k...)
		out = binary.BigEndian.AppendUint32(out, v)
	}
	return out
}

// DecodeTable only knows the current version: bumping tableV1 to
// tableV2 without keeping the old arm is exactly the rolling-upgrade
// break the version check exists for.
//
//mrp:codec table decode
func DecodeTable(b []byte) bool {
	if len(b) < 1 {
		return false
	}
	return b[0] == tableV2
}

// EncodeSorted is the clean shape: collect the keys, sort, then encode.
//
//mrp:codec sorted encode
func EncodeSorted(m map[string]uint32) []byte {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var out []byte
	out = binary.BigEndian.AppendUint32(out, uint32(len(keys)))
	for _, k := range keys {
		out = append(out, k...)
		out = binary.BigEndian.AppendUint32(out, m[k])
	}
	return out
}

// DecodeSorted validates the wire count against the remaining input
// before it sizes anything: no finding.
//
//mrp:codec sorted decode
func DecodeSorted(b []byte) []uint32 {
	if len(b) < 4 {
		return nil
	}
	n := int(binary.BigEndian.Uint32(b))
	if len(b) < 4+4*n {
		return nil
	}
	out := make([]uint32, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, binary.BigEndian.Uint32(b[4+4*i:]))
	}
	return out
}

// EncodeLate writes a count-prefixed list.
//
//mrp:codec late encode
func EncodeLate(vals []uint16) []byte {
	var out []byte
	out = binary.BigEndian.AppendUint16(out, uint16(len(vals)))
	for _, v := range vals {
		out = binary.BigEndian.AppendUint16(out, v)
	}
	return out
}

// DecodeLate checks the count — but only AFTER the make it sizes: the
// guard position matters, not its existence.
//
//mrp:codec late decode
func DecodeLate(b []byte) []uint16 {
	n := int(binary.BigEndian.Uint16(b))
	out := make([]uint16, 0, n) // want "before any bounds check in the late decoder"
	if len(b) < 2+2*n {
		return nil
	}
	for i := 0; i < n; i++ {
		out = append(out, binary.BigEndian.Uint16(b[2+2*i:]))
	}
	return out
}

// EncodeVia writes a count-prefixed list for the propagation case.
//
//mrp:codec via encode
func EncodeVia(vals []uint32) []byte {
	var out []byte
	out = binary.BigEndian.AppendUint32(out, uint32(len(vals)))
	for _, v := range vals {
		out = binary.BigEndian.AppendUint32(out, v)
	}
	return out
}

// DecodeVia delegates to an unmarked helper: the codec closure follows
// the static call, so the unguarded make inside it is still a finding.
//
//mrp:codec via decode
func DecodeVia(b []byte) []uint32 {
	if len(b) < 4 {
		return nil
	}
	return decodeInner(b[4:], int(binary.BigEndian.Uint32(b)))
}

// decodeInner sizes its output from the wire count it was handed a
// sibling of — and reads another one itself, unguarded.
func decodeInner(b []byte, n int) []uint32 {
	if n == 0 {
		return nil
	}
	per := int(binary.BigEndian.Uint32(b))
	out := make([]uint32, per) // want "before any bounds check in the via decoder"
	for i := range out {
		out[i] = binary.BigEndian.Uint32(b[4+4*i:])
	}
	return out
}

// EncodeOrphan has no decode counterpart: the pairing finding reports
// at this declaration.
//
//mrp:codec orphan encode
func EncodeOrphan(v uint64) []byte { // want "codec orphan has an encoder but no //mrp:codec orphan decode counterpart"
	var out []byte
	return binary.BigEndian.AppendUint64(out, v)
}
