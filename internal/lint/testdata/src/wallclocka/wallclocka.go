// Package wallclocka exercises the wallclock analyzer: wall-clock reads
// and unseeded randomness in deterministic functions, with the
// seeded-generator allowlist.
package wallclocka

import (
	"math/rand"
	"time"
)

// levels mirrors store.SortedMap: an explicitly seeded generator and its
// methods are allowed.
//
//mrp:deterministic
func levels() int {
	rng := rand.New(rand.NewSource(1))
	return rng.Intn(4)
}

//mrp:deterministic
func bad() (int64, int) {
	t := time.Now().UnixNano() // want "time.Now reads the wall clock"
	n := rand.Intn(4)          // want "unseeded process-global generator"
	return t, n
}

//mrp:deterministic
func elapsed(start time.Time) time.Duration {
	return time.Since(start) // want "time.Since reads the wall clock"
}

//mrp:deterministic
func timers(stop chan struct{}) {
	select {
	case <-time.After(time.Second): // want "timer channel"
	case <-stop:
	}
}

// freeRunning is outside the deterministic scope: no findings.
func freeRunning() int64 {
	return time.Now().UnixNano()
}

// pause only affects timing, never state: allowed.
//
//mrp:deterministic
func pause() {
	time.Sleep(time.Millisecond)
}
