package lint

import (
	"go/ast"
	"go/types"
	"sort"
)

// WallClock forbids reading the wall clock or drawing from the unseeded
// global math/rand inside deterministic functions: both produce values
// that differ between replicas executing the same command. Flagged:
//
//   - time.Now / time.Since / time.Until (clock values),
//   - time.After / time.Tick / time.NewTimer / time.NewTicker /
//     time.AfterFunc (timer channels steer control flow by real time),
//   - package-level math/rand and math/rand/v2 draws (Int, Intn,
//     Float64, Perm, Shuffle, ...), which use the randomly seeded
//     process-global generator.
//
// Allowed: time.Sleep (affects timing, never state), rand.New /
// rand.NewSource / rand.NewPCG / rand.NewChaCha8 / rand.NewZipf
// (construction from an explicit seed), and every method on an explicitly
// constructed *rand.Rand — which is exactly the seeded generator
// store.SortedMap uses for skiplist levels.
//
// One scoped exception: the module's single //mrp:leaseclock-marked
// function may call time.Now. The lease protocol needs exactly one local
// liveness clock (smr.leaseClockNow) whose value feeds "may I serve" /
// "must I stay silent" decisions but never replicated state; funneling
// every read through one audited site keeps that property checkable. The
// allowance covers time.Now only — timers and Since/Until stay banned
// even there — and a second marked site is itself a finding.
var WallClock = &Analyzer{
	Name: "wallclock",
	Doc:  "forbid wall-clock reads and unseeded randomness in deterministic functions",
	Run:  runWallClock,
}

var wallClockBanned = map[string]string{
	"Now":       "reads the wall clock",
	"Since":     "reads the wall clock",
	"Until":     "reads the wall clock",
	"After":     "creates a real-time timer channel",
	"Tick":      "creates a real-time ticker channel",
	"NewTimer":  "creates a real-time timer",
	"NewTicker": "creates a real-time ticker",
	"AfterFunc": "schedules by real time",
}

var randAllowed = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true,
	"NewChaCha8": true,
}

func runWallClock(p *Pass) {
	info := p.Module.Info
	leaseClock := leaseClockHolder(p)
	p.Module.eachFuncDecl(func(pkg *Package, file *ast.File, decl *ast.FuncDecl) {
		fn := p.Module.funcFor(decl)
		if fn == nil || decl.Body == nil {
			return
		}
		why, ok := p.Scope.Deterministic(fn)
		if !ok {
			return
		}
		ast.Inspect(decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := calleeOf(info, call)
			if callee == nil || callee.Pkg() == nil {
				return true
			}
			sig, _ := callee.Type().(*types.Signature)
			isMethod := sig != nil && sig.Recv() != nil
			switch callee.Pkg().Path() {
			case "time":
				if isMethod {
					return true
				}
				if callee.Name() == "Now" && fn == leaseClock {
					return true // the single sanctioned read (//mrp:leaseclock)
				}
				if what, banned := wallClockBanned[callee.Name()]; banned {
					p.Report(call.Pos(), "time.%s %s inside deterministic function %s (%s)",
						callee.Name(), what, relName(fn), why)
				}
			case "math/rand", "math/rand/v2":
				if isMethod || randAllowed[callee.Name()] {
					return true // methods run on an explicitly seeded generator
				}
				p.Report(call.Pos(), "rand.%s draws from the unseeded process-global generator inside deterministic function %s (%s); use an explicitly seeded *rand.Rand",
					callee.Name(), relName(fn), why)
			}
			return true
		})
	})
}

// leaseClockHolder resolves the one function granted the //mrp:leaseclock
// allowance: the first marked site in source order. Every further site is
// reported and receives no allowance — the exception stays auditable only
// while it is singular.
func leaseClockHolder(p *Pass) *types.Func {
	sites := p.Markers.LeaseClockSites()
	if len(sites) == 0 {
		return nil
	}
	sort.Slice(sites, func(i, j int) bool {
		a := p.Module.Fset.Position(sites[i].Pos())
		b := p.Module.Fset.Position(sites[j].Pos())
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		return a.Offset < b.Offset
	})
	for _, fn := range sites[1:] {
		p.Report(fn.Pos(), "duplicate //mrp:leaseclock on %s: the wall-clock allowance is scoped to a single site module-wide (held by %s)",
			relName(fn), relName(sites[0]))
	}
	return sites[0]
}
