// Package metrics provides latency histograms, CDF extraction, and windowed
// throughput timelines used by the benchmark harness to reproduce the
// figures of the Multi-Ring Paxos paper (MIDDLEWARE 2014).
//
// The histogram is log-bucketed (HDR-style): sub-microsecond resolution at
// the low end, ~2% relative error at the high end, fixed memory, and safe
// for concurrent recording.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"time"
)

// bucketCount covers latencies from 1µs to ~1000s with 64 buckets per
// power of two of microseconds.
const (
	subBuckets  = 32
	maxExponent = 31 // 2^31 µs ≈ 2147 s
	bucketCount = subBuckets * maxExponent
)

// Histogram records durations into log-spaced buckets. The zero value is
// ready to use. All methods are safe for concurrent use.
type Histogram struct {
	mu      sync.Mutex
	buckets [bucketCount]uint64
	count   uint64
	sum     time.Duration
	min     time.Duration
	max     time.Duration
}

// bucketIndex maps a duration to its bucket.
func bucketIndex(d time.Duration) int {
	us := d.Microseconds()
	if us < 1 {
		us = 1
	}
	exp := 63 - leadingZeros(uint64(us))
	if exp >= maxExponent {
		return bucketCount - 1
	}
	// Position within the power-of-two range, scaled to subBuckets.
	base := uint64(1) << uint(exp)
	frac := us - int64(base)
	sub := int(uint64(frac) * subBuckets / base)
	if sub >= subBuckets {
		sub = subBuckets - 1
	}
	return exp*subBuckets + sub
}

// bucketValue returns a representative duration (upper edge) for a bucket.
func bucketValue(i int) time.Duration {
	exp := i / subBuckets
	sub := i % subBuckets
	base := uint64(1) << uint(exp)
	us := base + (base*uint64(sub+1))/subBuckets
	return time.Duration(us) * time.Microsecond
}

func leadingZeros(x uint64) int {
	n := 0
	if x == 0 {
		return 64
	}
	for x&(1<<63) == 0 {
		x <<= 1
		n++
	}
	return n
}

// Record adds one observation.
func (h *Histogram) Record(d time.Duration) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.buckets[bucketIndex(d)]++
	h.count++
	h.sum += d
	if h.count == 1 || d < h.min {
		h.min = d
	}
	if d > h.max {
		h.max = d
	}
}

// Count returns the number of recorded observations.
func (h *Histogram) Count() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Mean returns the average of recorded observations (0 if empty).
func (h *Histogram) Mean() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	return h.sum / time.Duration(h.count)
}

// Min returns the smallest recorded observation (0 if empty).
func (h *Histogram) Min() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.min
}

// Max returns the largest recorded observation (0 if empty).
func (h *Histogram) Max() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.max
}

// Quantile returns the latency at quantile q in [0,1]. It returns 0 when the
// histogram is empty.
func (h *Histogram) Quantile(q float64) time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := uint64(math.Ceil(q * float64(h.count)))
	if target == 0 {
		target = 1
	}
	var cum uint64
	for i := 0; i < bucketCount; i++ {
		cum += h.buckets[i]
		if cum >= target {
			return bucketValue(i)
		}
	}
	return h.max
}

// CDFPoint is a single (latency, cumulative fraction) pair.
type CDFPoint struct {
	Latency  time.Duration
	Fraction float64
}

// CDF extracts the cumulative distribution as a series of points, one per
// non-empty bucket, suitable for plotting (paper Figures 3, 6, 7).
func (h *Histogram) CDF() []CDFPoint {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return nil
	}
	var pts []CDFPoint
	var cum uint64
	for i := 0; i < bucketCount; i++ {
		if h.buckets[i] == 0 {
			continue
		}
		cum += h.buckets[i]
		pts = append(pts, CDFPoint{
			Latency:  bucketValue(i),
			Fraction: float64(cum) / float64(h.count),
		})
	}
	return pts
}

// FractionBelow returns the fraction of observations at or below d.
func (h *Histogram) FractionBelow(d time.Duration) float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	idx := bucketIndex(d)
	var cum uint64
	for i := 0; i <= idx; i++ {
		cum += h.buckets[i]
	}
	return float64(cum) / float64(h.count)
}

// Snapshot returns an immutable copy of the histogram.
func (h *Histogram) Snapshot() *Histogram {
	h.mu.Lock()
	defer h.mu.Unlock()
	s := &Histogram{
		count: h.count,
		sum:   h.sum,
		min:   h.min,
		max:   h.max,
	}
	s.buckets = h.buckets
	return s
}

// Merge adds all observations of other into h.
func (h *Histogram) Merge(other *Histogram) {
	o := other.Snapshot()
	h.mu.Lock()
	defer h.mu.Unlock()
	for i, c := range o.buckets {
		h.buckets[i] += c
	}
	if o.count > 0 {
		if h.count == 0 || o.min < h.min {
			h.min = o.min
		}
		if o.max > h.max {
			h.max = o.max
		}
	}
	h.count += o.count
	h.sum += o.sum
}

// String summarizes the histogram.
func (h *Histogram) String() string {
	return fmt.Sprintf("n=%d mean=%v p50=%v p99=%v max=%v",
		h.Count(), h.Mean(), h.Quantile(0.50), h.Quantile(0.99), h.Max())
}

// Percentiles is a convenience that reports a standard set of quantiles.
func (h *Histogram) Percentiles() map[string]time.Duration {
	return map[string]time.Duration{
		"p50":  h.Quantile(0.50),
		"p90":  h.Quantile(0.90),
		"p95":  h.Quantile(0.95),
		"p99":  h.Quantile(0.99),
		"p999": h.Quantile(0.999),
	}
}

// SortDurations sorts a slice of durations ascending (helper for tests).
func SortDurations(ds []time.Duration) {
	sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
}
