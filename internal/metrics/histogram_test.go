package metrics

import (
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	if h.Count() != 0 {
		t.Fatalf("empty count = %d", h.Count())
	}
	if h.Mean() != 0 || h.Quantile(0.5) != 0 {
		t.Fatalf("empty mean/quantile not zero")
	}
	if h.CDF() != nil {
		t.Fatalf("empty CDF not nil")
	}
}

func TestHistogramSingle(t *testing.T) {
	var h Histogram
	h.Record(5 * time.Millisecond)
	if h.Count() != 1 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Mean() != 5*time.Millisecond {
		t.Fatalf("mean = %v", h.Mean())
	}
	q := h.Quantile(0.5)
	if q < 5*time.Millisecond || q > 6*time.Millisecond {
		t.Fatalf("p50 = %v, want ~5ms", q)
	}
}

func TestHistogramQuantileOrdering(t *testing.T) {
	var h Histogram
	for i := 1; i <= 1000; i++ {
		h.Record(time.Duration(i) * time.Millisecond)
	}
	p50 := h.Quantile(0.50)
	p90 := h.Quantile(0.90)
	p99 := h.Quantile(0.99)
	if !(p50 <= p90 && p90 <= p99) {
		t.Fatalf("quantiles not monotone: %v %v %v", p50, p90, p99)
	}
	// p50 should be near 500ms (within bucket error ~6%).
	if p50 < 450*time.Millisecond || p50 > 560*time.Millisecond {
		t.Fatalf("p50 = %v, want ~500ms", p50)
	}
	if p99 < 900*time.Millisecond || p99 > 1100*time.Millisecond {
		t.Fatalf("p99 = %v, want ~990ms", p99)
	}
}

func TestHistogramMinMax(t *testing.T) {
	var h Histogram
	h.Record(3 * time.Millisecond)
	h.Record(1 * time.Millisecond)
	h.Record(9 * time.Millisecond)
	if h.Min() != time.Millisecond {
		t.Fatalf("min = %v", h.Min())
	}
	if h.Max() != 9*time.Millisecond {
		t.Fatalf("max = %v", h.Max())
	}
}

func TestHistogramCDFMonotone(t *testing.T) {
	var h Histogram
	for i := 0; i < 500; i++ {
		h.Record(time.Duration(i%37+1) * time.Millisecond)
	}
	pts := h.CDF()
	if len(pts) == 0 {
		t.Fatal("no CDF points")
	}
	prevF := 0.0
	prevL := time.Duration(0)
	for _, p := range pts {
		if p.Fraction < prevF {
			t.Fatalf("CDF fraction decreased: %v after %v", p.Fraction, prevF)
		}
		if p.Latency < prevL {
			t.Fatalf("CDF latency decreased")
		}
		prevF, prevL = p.Fraction, p.Latency
	}
	if pts[len(pts)-1].Fraction != 1.0 {
		t.Fatalf("final CDF fraction = %v, want 1", pts[len(pts)-1].Fraction)
	}
}

func TestHistogramFractionBelow(t *testing.T) {
	var h Histogram
	for i := 0; i < 90; i++ {
		h.Record(time.Millisecond)
	}
	for i := 0; i < 10; i++ {
		h.Record(time.Second)
	}
	f := h.FractionBelow(10 * time.Millisecond)
	if f < 0.89 || f > 0.91 {
		t.Fatalf("FractionBelow(10ms) = %v, want 0.9", f)
	}
}

func TestHistogramMerge(t *testing.T) {
	var a, b Histogram
	a.Record(time.Millisecond)
	b.Record(2 * time.Millisecond)
	b.Record(3 * time.Millisecond)
	a.Merge(&b)
	if a.Count() != 3 {
		t.Fatalf("merged count = %d", a.Count())
	}
	if a.Min() != time.Millisecond || a.Max() != 3*time.Millisecond {
		t.Fatalf("merged min/max = %v/%v", a.Min(), a.Max())
	}
}

func TestHistogramConcurrent(t *testing.T) {
	var h Histogram
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Record(time.Duration(i+1) * time.Microsecond)
			}
		}()
	}
	wg.Wait()
	if h.Count() != 8000 {
		t.Fatalf("count = %d, want 8000", h.Count())
	}
}

// Property: bucketValue(bucketIndex(d)) is within ~7% above d for the
// supported range (bucket upper edges bound the value from above).
func TestBucketRoundTripProperty(t *testing.T) {
	f := func(us uint32) bool {
		us = us%(1<<30) + 1 // stay within the histogram's supported range
		d := time.Duration(us) * time.Microsecond
		v := bucketValue(bucketIndex(d))
		if v < d {
			return false
		}
		return float64(v) <= float64(d)*1.07+float64(2*time.Microsecond)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// Property: quantiles are monotone in q for arbitrary data.
func TestQuantileMonotoneProperty(t *testing.T) {
	f := func(samples []uint16) bool {
		var h Histogram
		for _, s := range samples {
			h.Record(time.Duration(s+1) * time.Microsecond)
		}
		last := time.Duration(0)
		for _, q := range []float64{0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1} {
			v := h.Quantile(q)
			if v < last {
				return false
			}
			last = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestQuantileClamping(t *testing.T) {
	var h Histogram
	h.Record(time.Millisecond)
	if h.Quantile(-1) == 0 {
		t.Fatal("q=-1 should clamp to 0 and return first bucket")
	}
	if h.Quantile(2) == 0 {
		t.Fatal("q=2 should clamp to 1")
	}
}
