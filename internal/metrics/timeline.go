package metrics

import (
	"sync"
	"time"
)

// Timeline records per-window throughput and latency over the run of an
// experiment, producing the time-series needed for Figure 8 (impact of
// recovery on performance).
type Timeline struct {
	mu     sync.Mutex
	start  time.Time
	window time.Duration
	ops    []uint64
	lat    []*Histogram
	skew   []bool // slots that absorbed clamped far-future records
	events []Event
	// skewedOps counts records whose timestamp lay beyond the wall-clock
	// present (a skewed caller clock); they are folded into the newest
	// legitimate window instead of allocating one histogram per bogus
	// window in between.
	skewedOps uint64
}

// Event marks a point in time with a label (e.g. "replica terminated",
// "checkpoint", "log trimming", "replica recovery").
type Event struct {
	At    time.Duration // offset from timeline start
	Label string
}

// NewTimeline creates a timeline with the given aggregation window.
func NewTimeline(window time.Duration) *Timeline {
	if window <= 0 {
		window = time.Second
	}
	return &Timeline{start: time.Now(), window: window}
}

// Start returns the timeline origin.
func (t *Timeline) Start() time.Time {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.start
}

// slotSlack is how far past the wall-clock present a record's window may
// lie before it is treated as clock skew. Small synthetic lookahead (tests
// and simulators stamp ops a few windows ahead) stays allocatable; a badly
// skewed clock cannot make the timeline allocate one histogram (~8 KB)
// per window between now and the bogus timestamp.
const slotSlack = 64

func (t *Timeline) slotLocked(at time.Time) int {
	idx := int(at.Sub(t.start) / t.window)
	if idx < 0 {
		idx = 0
	}
	clamped := false
	if limit := int(time.Since(t.start)/t.window) + slotSlack; idx > limit {
		// Far-future timestamp: clamp into the newest legitimate window and
		// mark that slot as skew-polluted instead of allocating gigabytes.
		t.skewedOps++
		idx = limit
		clamped = true
	}
	for len(t.ops) <= idx {
		t.ops = append(t.ops, 0)
		t.lat = append(t.lat, &Histogram{})
		t.skew = append(t.skew, false)
	}
	if clamped {
		t.skew[idx] = true
	}
	return idx
}

// SkewedOps reports how many records carried a timestamp so far past the
// wall clock that they were clamped into an error-marked slot.
func (t *Timeline) SkewedOps() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.skewedOps
}

// RecordOp records one completed operation with its latency at time now.
func (t *Timeline) RecordOp(now time.Time, latency time.Duration) {
	t.mu.Lock()
	defer t.mu.Unlock()
	i := t.slotLocked(now)
	t.ops[i]++
	t.lat[i].Record(latency)
}

// Mark records a labeled event at time now.
func (t *Timeline) Mark(now time.Time, label string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.events = append(t.events, Event{At: now.Sub(t.start), Label: label})
}

// Sample is one aggregated window of the timeline.
type Sample struct {
	At         time.Duration // window start offset
	Throughput float64       // ops per second
	MeanLat    time.Duration
	P99Lat     time.Duration
	// Complete reports that the window's full duration had elapsed when it
	// was sampled. The final window is usually still in progress; its
	// throughput is computed over the elapsed fraction, but consumers
	// comparing windows (or asserting "never zero for a full window")
	// should filter on Complete.
	Complete bool
	// Skewed marks a slot that absorbed records clamped from a far-future
	// timestamp (see SkewedOps); its numbers are not trustworthy.
	Skewed bool
}

// Samples returns all aggregated windows. Windows before the last cover
// their full duration; the last window's throughput is computed over the
// time actually elapsed within it — dividing a barely-started window's op
// count by the full window length would under-report the current rate
// exactly when a load controller samples it.
func (t *Timeline) Samples() []Sample {
	t.mu.Lock()
	defer t.mu.Unlock()
	now := time.Now()
	out := make([]Sample, len(t.ops))
	for i := range t.ops {
		div := t.window
		complete := true
		if i == len(t.ops)-1 {
			elapsed := now.Sub(t.start) - time.Duration(i)*t.window
			if elapsed < t.window {
				complete = false
				// elapsed <= 0 means the window's records carry synthetic
				// future timestamps (simulated clocks); keep the full-window
				// divisor rather than dividing by a nonsense wall duration.
				if elapsed > 0 {
					div = elapsed
				}
			}
		}
		out[i] = Sample{
			At:         time.Duration(i) * t.window,
			Throughput: float64(t.ops[i]) / div.Seconds(),
			MeanLat:    t.lat[i].Mean(),
			P99Lat:     t.lat[i].Quantile(0.99),
			Complete:   complete,
			Skewed:     t.skew[i],
		}
	}
	return out
}

// Events returns all recorded events in insertion order.
func (t *Timeline) Events() []Event {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Event, len(t.events))
	copy(out, t.events)
	return out
}

// Counter is a monotonically increasing concurrent counter with byte
// accounting, used to compute throughput in ops/s and Mbps.
type Counter struct {
	mu    sync.Mutex
	ops   uint64
	bytes uint64
	since time.Time
}

// NewCounter creates a counter with the clock started now.
func NewCounter() *Counter {
	return &Counter{since: time.Now()}
}

// Add records n operations carrying total payload bytes.
func (c *Counter) Add(n, bytes uint64) {
	c.mu.Lock()
	c.ops += n
	c.bytes += bytes
	c.mu.Unlock()
}

// Ops returns the operation count so far.
func (c *Counter) Ops() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ops
}

// Bytes returns the byte count so far.
func (c *Counter) Bytes() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bytes
}

// Rates returns (ops/s, Mbps) since the counter was created or last reset.
func (c *Counter) Rates() (opsPerSec, mbps float64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el := time.Since(c.since).Seconds()
	if el <= 0 {
		return 0, 0
	}
	return float64(c.ops) / el, float64(c.bytes) * 8 / 1e6 / el
}

// Reset zeroes the counter and restarts its clock.
func (c *Counter) Reset() {
	c.mu.Lock()
	c.ops, c.bytes = 0, 0
	c.since = time.Now()
	c.mu.Unlock()
}
