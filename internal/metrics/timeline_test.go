package metrics

import (
	"testing"
	"time"
)

func TestTimelineWindows(t *testing.T) {
	tl := NewTimeline(10 * time.Millisecond)
	start := tl.Start()
	// Two ops in window 0, one in window 2.
	tl.RecordOp(start, time.Millisecond)
	tl.RecordOp(start.Add(5*time.Millisecond), 2*time.Millisecond)
	tl.RecordOp(start.Add(25*time.Millisecond), 3*time.Millisecond)
	s := tl.Samples()
	if len(s) != 3 {
		t.Fatalf("len(samples) = %d, want 3", len(s))
	}
	if s[0].Throughput != 200 { // 2 ops / 0.01s
		t.Fatalf("window0 throughput = %v, want 200", s[0].Throughput)
	}
	if s[1].Throughput != 0 {
		t.Fatalf("window1 throughput = %v, want 0", s[1].Throughput)
	}
	if s[2].Throughput != 100 {
		t.Fatalf("window2 throughput = %v, want 100", s[2].Throughput)
	}
}

func TestTimelineEvents(t *testing.T) {
	tl := NewTimeline(time.Second)
	start := tl.Start()
	tl.Mark(start.Add(3*time.Second), "replica terminated")
	tl.Mark(start.Add(9*time.Second), "replica recovery")
	ev := tl.Events()
	if len(ev) != 2 {
		t.Fatalf("len(events) = %d", len(ev))
	}
	if ev[0].Label != "replica terminated" || ev[0].At != 3*time.Second {
		t.Fatalf("event0 = %+v", ev[0])
	}
}

func TestTimelineBeforeStartClamps(t *testing.T) {
	tl := NewTimeline(time.Second)
	tl.RecordOp(tl.Start().Add(-5*time.Second), time.Millisecond)
	s := tl.Samples()
	if len(s) != 1 {
		t.Fatalf("len(samples) = %d, want 1 (clamped)", len(s))
	}
}

func TestCounterRates(t *testing.T) {
	c := NewCounter()
	c.Add(10, 1000)
	c.Add(5, 500)
	if c.Ops() != 15 || c.Bytes() != 1500 {
		t.Fatalf("ops=%d bytes=%d", c.Ops(), c.Bytes())
	}
	time.Sleep(10 * time.Millisecond)
	ops, mbps := c.Rates()
	if ops <= 0 || mbps <= 0 {
		t.Fatalf("rates = %v, %v", ops, mbps)
	}
	c.Reset()
	if c.Ops() != 0 || c.Bytes() != 0 {
		t.Fatal("reset did not zero")
	}
}
