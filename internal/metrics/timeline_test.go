package metrics

import (
	"testing"
	"time"
)

func TestTimelineWindows(t *testing.T) {
	tl := NewTimeline(10 * time.Millisecond)
	start := tl.Start()
	// Two ops in window 0, one in window 2.
	tl.RecordOp(start, time.Millisecond)
	tl.RecordOp(start.Add(5*time.Millisecond), 2*time.Millisecond)
	tl.RecordOp(start.Add(25*time.Millisecond), 3*time.Millisecond)
	s := tl.Samples()
	if len(s) != 3 {
		t.Fatalf("len(samples) = %d, want 3", len(s))
	}
	if s[0].Throughput != 200 { // 2 ops / 0.01s
		t.Fatalf("window0 throughput = %v, want 200", s[0].Throughput)
	}
	if s[1].Throughput != 0 {
		t.Fatalf("window1 throughput = %v, want 0", s[1].Throughput)
	}
	if s[2].Throughput != 100 {
		t.Fatalf("window2 throughput = %v, want 100", s[2].Throughput)
	}
}

func TestTimelineEvents(t *testing.T) {
	tl := NewTimeline(time.Second)
	start := tl.Start()
	tl.Mark(start.Add(3*time.Second), "replica terminated")
	tl.Mark(start.Add(9*time.Second), "replica recovery")
	ev := tl.Events()
	if len(ev) != 2 {
		t.Fatalf("len(events) = %d", len(ev))
	}
	if ev[0].Label != "replica terminated" || ev[0].At != 3*time.Second {
		t.Fatalf("event0 = %+v", ev[0])
	}
}

// TestTimelinePartialFinalWindow is the regression test for the windowed-
// rate bug: ops recorded in a window that has barely started must be
// divided by the elapsed fraction, not the full window length — otherwise
// the current rate is under-reported exactly when a controller samples it.
func TestTimelinePartialFinalWindow(t *testing.T) {
	tl := NewTimeline(10 * time.Second)
	for i := 0; i < 100; i++ {
		tl.RecordOp(time.Now(), time.Millisecond)
	}
	time.Sleep(20 * time.Millisecond)
	s := tl.Samples()
	if len(s) != 1 {
		t.Fatalf("len(samples) = %d, want 1", len(s))
	}
	// The naive ops/window computation would report 100/10s = 10 ops/s; the
	// elapsed-time divisor reports the true current rate (>> 100 ops/s even
	// on a slow host, since well under a second has elapsed).
	if s[0].Throughput <= 100 {
		t.Fatalf("partial-window throughput = %.1f ops/s, want the elapsed-time rate (> 100)", s[0].Throughput)
	}
	if s[0].Complete {
		t.Fatal("in-progress window reported Complete")
	}
}

// TestTimelineCompleteWindows checks the completeness flag: every window
// before the last is complete, and the last becomes complete once its full
// duration has elapsed.
func TestTimelineCompleteWindows(t *testing.T) {
	tl := NewTimeline(5 * time.Millisecond)
	tl.RecordOp(time.Now(), time.Millisecond)
	time.Sleep(12 * time.Millisecond)
	tl.RecordOp(time.Now(), time.Millisecond)
	time.Sleep(7 * time.Millisecond)
	s := tl.Samples()
	for i, x := range s {
		if !x.Complete {
			t.Fatalf("window %d not complete after its duration fully elapsed", i)
		}
	}
}

// TestTimelineSkewedClockClamped is the regression test for the unbounded
// slot growth bug: a record stamped in the far future (a bad clock) must
// not allocate one histogram per window between now and the bogus
// timestamp — it is clamped into an error-marked slot instead.
func TestTimelineSkewedClockClamped(t *testing.T) {
	tl := NewTimeline(time.Millisecond)
	tl.RecordOp(tl.Start().Add(365*24*time.Hour), time.Millisecond) // one year ahead
	s := tl.Samples()
	// Unclamped, this would be ~3e10 slots (~250 TB of histograms). The
	// clamp bounds growth to the wall-clock present plus a small slack.
	if len(s) > 10*slotSlack {
		t.Fatalf("skewed record grew the timeline to %d slots", len(s))
	}
	if tl.SkewedOps() != 1 {
		t.Fatalf("SkewedOps = %d, want 1", tl.SkewedOps())
	}
	last := s[len(s)-1]
	if !last.Skewed {
		t.Fatal("clamped slot not marked Skewed")
	}
	if last.Throughput <= 0 {
		t.Fatal("clamped record not counted anywhere")
	}
	// Legitimate records keep flowing into unmarked slots.
	tl.RecordOp(time.Now(), time.Millisecond)
	if got := tl.SkewedOps(); got != 1 {
		t.Fatalf("legitimate record counted as skewed (SkewedOps = %d)", got)
	}
}

func TestTimelineBeforeStartClamps(t *testing.T) {
	tl := NewTimeline(time.Second)
	tl.RecordOp(tl.Start().Add(-5*time.Second), time.Millisecond)
	s := tl.Samples()
	if len(s) != 1 {
		t.Fatalf("len(samples) = %d, want 1 (clamped)", len(s))
	}
}

func TestCounterRates(t *testing.T) {
	c := NewCounter()
	c.Add(10, 1000)
	c.Add(5, 500)
	if c.Ops() != 15 || c.Bytes() != 1500 {
		t.Fatalf("ops=%d bytes=%d", c.Ops(), c.Bytes())
	}
	time.Sleep(10 * time.Millisecond)
	ops, mbps := c.Rates()
	if ops <= 0 || mbps <= 0 {
		t.Fatalf("rates = %v, %v", ops, mbps)
	}
	c.Reset()
	if c.Ops() != 0 || c.Bytes() != 0 {
		t.Fatal("reset did not zero")
	}
}
