package msg

import (
	"bytes"
	"testing"
)

func sampleMsgs() []Message {
	return []Message{
		&TrimQuery{Ring: 1, Seq: 7},
		&Proposal{Ring: 2, ProposerID: 3, Seq: 9, Payload: []byte("payload")},
		&Phase2{Ring: 1, Ballot: 4, Instance: 11, Votes: 2,
			Value: Value{Batch: []Entry{{Proposer: 3, Seq: 9, Data: []byte("v")}}}},
		&Decision{Ring: 1, Instance: 11, Origin: 2,
			Value: Value{Batch: []Entry{{Proposer: 3, Seq: 9, Data: []byte("v")}}}},
	}
}

func TestMarshalToMatchesMarshal(t *testing.T) {
	for _, m := range sampleMsgs() {
		want := Marshal(m)
		got := MarshalTo(nil, m)
		if !bytes.Equal(got, want) {
			t.Fatalf("%T: MarshalTo != Marshal", m)
		}
		// Appending to a non-empty prefix extends in place.
		prefix := []byte{0xde, 0xad}
		got = MarshalTo(prefix, m)
		if !bytes.Equal(got[:2], prefix) || !bytes.Equal(got[2:], want) {
			t.Fatalf("%T: MarshalTo with prefix corrupted encoding", m)
		}
		if len(want) != m.Size() {
			t.Fatalf("%T: Size() = %d, encoded %d", m, m.Size(), len(want))
		}
	}
}

func TestAppendBatchMatchesBatchMarshal(t *testing.T) {
	msgs := sampleMsgs()
	b := &Batch{Msgs: msgs}
	want := Marshal(b)
	got := AppendBatch(nil, msgs)
	if !bytes.Equal(got, want) {
		t.Fatalf("AppendBatch != Marshal(&Batch{...}):\n got %x\nwant %x", got, want)
	}
	if BatchSize(msgs) != b.Size() {
		t.Fatalf("BatchSize = %d, Batch.Size = %d", BatchSize(msgs), b.Size())
	}
	// Round trip through the decoder.
	dec, err := Unmarshal(got)
	if err != nil {
		t.Fatal(err)
	}
	db, ok := dec.(*Batch)
	if !ok || len(db.Msgs) != len(msgs) {
		t.Fatalf("decoded %T with %d msgs", dec, len(db.Msgs))
	}
	for i := range msgs {
		if !bytes.Equal(Marshal(db.Msgs[i]), Marshal(msgs[i])) {
			t.Fatalf("sub-message %d does not round trip", i)
		}
	}
}

func TestBufferPoolRoundTrip(t *testing.T) {
	b := GetBuffer()
	if len(*b) != 0 {
		t.Fatalf("fresh buffer has length %d", len(*b))
	}
	*b = MarshalTo(*b, &TrimQuery{Ring: 1, Seq: 2})
	PutBuffer(b)
	b2 := GetBuffer()
	if len(*b2) != 0 {
		t.Fatalf("recycled buffer not reset: length %d", len(*b2))
	}
	PutBuffer(b2)
	// Oversized buffers are dropped, not pooled.
	huge := make([]byte, 0, maxPooledBuf+1)
	PutBuffer(&huge)
}
