package msg

import "encoding/binary"

// writer appends big-endian primitives to a byte slice.
type writer struct {
	buf []byte
}

func (w *writer) u8(v uint8) { w.buf = append(w.buf, v) }

func (w *writer) bool(v bool) {
	if v {
		w.u8(1)
	} else {
		w.u8(0)
	}
}

func (w *writer) u16(v uint16) {
	w.buf = binary.BigEndian.AppendUint16(w.buf, v)
}

func (w *writer) u32(v uint32) {
	w.buf = binary.BigEndian.AppendUint32(w.buf, v)
}

func (w *writer) u64(v uint64) {
	w.buf = binary.BigEndian.AppendUint64(w.buf, v)
}

// bytes writes a length-prefixed byte slice.
func (w *writer) bytes(b []byte) {
	w.u32(uint32(len(b)))
	w.buf = append(w.buf, b...)
}

// reader consumes big-endian primitives from a byte slice, latching the
// first error so callers can check once at the end.
type reader struct {
	buf []byte
	off int
	err error
}

func (r *reader) fail() {
	if r.err == nil {
		r.err = ErrBadMessage
	}
}

func (r *reader) remaining() int { return len(r.buf) - r.off }

func (r *reader) need(n int) bool {
	if r.err != nil {
		return false
	}
	if r.remaining() < n {
		r.fail()
		return false
	}
	return true
}

func (r *reader) u8() uint8 {
	if !r.need(1) {
		return 0
	}
	v := r.buf[r.off]
	r.off++
	return v
}

// bool accepts only canonical encodings (0 or 1), so every accepted
// message re-encodes to the exact bytes it was decoded from.
func (r *reader) bool() bool {
	v := r.u8()
	if v > 1 {
		r.fail()
	}
	return v == 1
}

func (r *reader) u16() uint16 {
	if !r.need(2) {
		return 0
	}
	v := binary.BigEndian.Uint16(r.buf[r.off:])
	r.off += 2
	return v
}

func (r *reader) u32() uint32 {
	if !r.need(4) {
		return 0
	}
	v := binary.BigEndian.Uint32(r.buf[r.off:])
	r.off += 4
	return v
}

func (r *reader) u64() uint64 {
	if !r.need(8) {
		return 0
	}
	v := binary.BigEndian.Uint64(r.buf[r.off:])
	r.off += 8
	return v
}

// bytes reads a length-prefixed byte slice. The returned slice aliases the
// input buffer; callers that retain it must copy.
func (r *reader) bytes() []byte {
	n := int(r.u32())
	if r.err != nil || n < 0 {
		return nil
	}
	if !r.need(n) {
		return nil
	}
	v := r.buf[r.off : r.off+n : r.off+n]
	r.off += n
	return v
}

// raw consumes n bytes without a length prefix.
func (r *reader) raw(n int) []byte {
	if !r.need(n) {
		return nil
	}
	v := r.buf[r.off : r.off+n : r.off+n]
	r.off += n
	return v
}
