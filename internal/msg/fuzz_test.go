package msg

import (
	"bytes"
	"testing"
)

// FuzzUnmarshal hardens the codec against arbitrary bytes: it must never
// panic, and anything it accepts must re-encode to the same bytes
// (canonical encoding).
func FuzzUnmarshal(f *testing.F) {
	for _, m := range allSamples() {
		f.Add(Marshal(m))
	}
	f.Add([]byte{})
	f.Add([]byte{0xFF})
	f.Add([]byte{byte(TPhase2), 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Unmarshal(data)
		if err != nil {
			return
		}
		re := Marshal(m)
		if !bytes.Equal(re, data) {
			t.Fatalf("non-canonical encoding accepted:\n in: %x\nout: %x", data, re)
		}
	})
}

// FuzzBatchUnmarshal hardens messages nested in Batch packets: decoding
// arbitrary batch bodies must never panic or hang, and — as FuzzUnmarshal
// already guarantees for top-level messages — any batch the codec accepts
// must re-encode to the exact bytes it was decoded from (canonical
// encoding, including the nested per-message size prefixes).
func FuzzBatchUnmarshal(f *testing.F) {
	f.Add(Marshal(&Batch{Msgs: []Message{
		&Proposal{Ring: 1, ProposerID: 2, Seq: 3, Payload: []byte("p")},
		&Decision{Ring: 1, Instance: 9, Value: Value{Skip: true, SkipTo: 12}},
	}})[1:])
	f.Add(Marshal(&Batch{})[1:])
	f.Add([]byte{0, 0, 0, 1, 0, 0, 0, 2, byte(TCkptFetch), 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		wrapped := append([]byte{byte(TBatch)}, data...)
		m, err := Unmarshal(wrapped)
		if err != nil {
			return
		}
		re := Marshal(m)
		if !bytes.Equal(re, wrapped) {
			t.Fatalf("non-canonical batch accepted:\n in: %x\nout: %x", wrapped, re)
		}
	})
}
