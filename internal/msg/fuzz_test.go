package msg

import (
	"bytes"
	"testing"
)

// FuzzUnmarshal hardens the codec against arbitrary bytes: it must never
// panic, and anything it accepts must re-encode to the same bytes
// (canonical encoding).
func FuzzUnmarshal(f *testing.F) {
	for _, m := range allSamples() {
		f.Add(Marshal(m))
	}
	f.Add([]byte{})
	f.Add([]byte{0xFF})
	f.Add([]byte{byte(TPhase2), 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Unmarshal(data)
		if err != nil {
			return
		}
		re := Marshal(m)
		if !bytes.Equal(re, data) {
			t.Fatalf("non-canonical encoding accepted:\n in: %x\nout: %x", data, re)
		}
	})
}

// FuzzCommandPayload hardens Value batches nested in Batch messages.
func FuzzBatchUnmarshal(f *testing.F) {
	f.Add(Marshal(&Batch{Msgs: []Message{
		&Proposal{Ring: 1, ProposerID: 2, Seq: 3, Payload: []byte("p")},
		&Decision{Ring: 1, Instance: 9, Value: Value{Skip: true, SkipTo: 12}},
	}}))
	f.Fuzz(func(t *testing.T, data []byte) {
		wrapped := append([]byte{byte(TBatch)}, data...)
		_, _ = Unmarshal(wrapped) // must not panic or hang
	})
}
