// Package msg defines the wire messages exchanged by Ring Paxos,
// Multi-Ring Paxos, the recovery protocol, and the services built on top
// (MRP-Store, dLog), together with a compact binary codec.
//
// The message set follows Section 4 and 5 of the paper:
//
//   - Proposal: a value multicast to a group, forwarded along the ring
//     until it reaches the coordinator.
//   - Phase1A / Phase1B: the pre-executed Paxos Phase 1 for a window of
//     consensus instances.
//   - Phase2: the combined Phase 2A/2B message circulating the ring and
//     accumulating acceptor votes.
//   - Decision: produced by the last acceptor once a majority voted;
//     circulates until every ring member has received it.
//   - LearnReq / LearnResp: retransmission of decided instances, used by
//     recovering learners (Section 5.1, acceptor recovery).
//   - TrimQuery / TrimReply / TrimCmd: the log-trimming protocol between a
//     ring coordinator, the replicas, and the acceptors (Section 5.2).
//   - CkptQuery / CkptReply / CkptFetch / CkptData: remote checkpoint
//     discovery and state transfer between replicas of a partition.
//   - Response: a service reply sent from a replica back to a client.
//   - LeaseRead / LeaseReply: a consensus-free local read served by a
//     lease-holding replica from its applied state (see internal/smr's
//     lease commands), and its answer or refusal.
//   - TxnVote: a vote exchanged between the replicas of the participant
//     partitions of a conditional cross-partition transaction (S-SMR-style
//     execution atomicity; see internal/txn).
//   - Batch: transport-level packing of several messages into one packet.
//     Both transports (internal/tcpnet, internal/netsim) coalesce queued
//     writes into Batch packets; see transport.BatchPolicy.
package msg

import (
	"errors"
	"fmt"
	"sync"
)

// RingID identifies a Ring Paxos instance; one multicast group maps to one
// ring, so RingID doubles as the multicast group identifier.
type RingID uint16

// NodeID identifies a process.
type NodeID uint32

// Ballot is a Paxos round number. Ballots are partitioned across potential
// coordinators so that two coordinators never share a ballot.
type Ballot uint32

// Instance is a consensus instance number within a ring, starting at 1.
type Instance uint64

// Type discriminates the concrete message kinds on the wire.
type Type uint8

// Message type tags.
const (
	TProposal Type = iota + 1
	TPhase1A
	TPhase1B
	TPhase2
	TDecision
	TLearnReq
	TLearnResp
	TTrimQuery
	TTrimReply
	TTrimCmd
	TCkptQuery
	TCkptReply
	TCkptFetch
	TCkptData
	TResponse
	TBatch
	TTxnVote
	TLeaseRead
	TLeaseReply
	maxType
)

// Message is implemented by every protocol message.
type Message interface {
	// Type returns the wire tag of the message.
	Type() Type
	// Size returns the exact encoded size in bytes, including the tag.
	Size() int
	marshal(w *writer)
	unmarshal(r *reader)
}

// ErrBadMessage reports a malformed or truncated encoding.
var ErrBadMessage = errors.New("msg: bad message encoding")

// Proposal carries a value multicast to group Ring. It travels along the
// ring until it reaches the coordinator. (ProposerID, Seq) identify the
// proposal so the coordinator can deduplicate retransmissions.
type Proposal struct {
	Ring       RingID
	ProposerID NodeID
	Seq        uint64
	Payload    []byte
}

// Type implements Message.
func (*Proposal) Type() Type { return TProposal }

// Size implements Message.
func (m *Proposal) Size() int { return 1 + 2 + 4 + 8 + 4 + len(m.Payload) }

func (m *Proposal) marshal(w *writer) {
	w.u16(uint16(m.Ring))
	w.u32(uint32(m.ProposerID))
	w.u64(m.Seq)
	w.bytes(m.Payload)
}

func (m *Proposal) unmarshal(r *reader) {
	m.Ring = RingID(r.u16())
	m.ProposerID = NodeID(r.u32())
	m.Seq = r.u64()
	m.Payload = r.bytes()
}

// Phase1A asks the acceptors to promise ballot Ballot for every instance in
// [From, To). It is pre-executed for a whole window of instances.
type Phase1A struct {
	Ring   RingID
	Ballot Ballot
	From   Instance
	To     Instance
}

// Type implements Message.
func (*Phase1A) Type() Type { return TPhase1A }

// Size implements Message.
func (m *Phase1A) Size() int { return 1 + 2 + 4 + 8 + 8 }

func (m *Phase1A) marshal(w *writer) {
	w.u16(uint16(m.Ring))
	w.u32(uint32(m.Ballot))
	w.u64(uint64(m.From))
	w.u64(uint64(m.To))
}

func (m *Phase1A) unmarshal(r *reader) {
	m.Ring = RingID(r.u16())
	m.Ballot = Ballot(r.u32())
	m.From = Instance(r.u64())
	m.To = Instance(r.u64())
}

// VotedValue reports, inside a Phase1B, the highest-ballot value an acceptor
// has voted for in one instance of the promised window.
type VotedValue struct {
	Instance Instance
	VRnd     Ballot
	Value    Value
}

// Phase1B circulates the ring accumulating promises. Each acceptor that
// promises increments Promises and merges its voted values; the coordinator
// consumes the message when it returns with a majority.
type Phase1B struct {
	Ring     RingID
	Ballot   Ballot
	From     Instance
	To       Instance
	Promises uint8
	Voted    []VotedValue
}

// Type implements Message.
func (*Phase1B) Type() Type { return TPhase1B }

// Size implements Message.
func (m *Phase1B) Size() int {
	n := 1 + 2 + 4 + 8 + 8 + 1 + 4
	for i := range m.Voted {
		n += 8 + 4 + m.Voted[i].Value.size()
	}
	return n
}

func (m *Phase1B) marshal(w *writer) {
	w.u16(uint16(m.Ring))
	w.u32(uint32(m.Ballot))
	w.u64(uint64(m.From))
	w.u64(uint64(m.To))
	w.u8(m.Promises)
	w.u32(uint32(len(m.Voted)))
	for i := range m.Voted {
		w.u64(uint64(m.Voted[i].Instance))
		w.u32(uint32(m.Voted[i].VRnd))
		m.Voted[i].Value.marshal(w)
	}
}

func (m *Phase1B) unmarshal(r *reader) {
	m.Ring = RingID(r.u16())
	m.Ballot = Ballot(r.u32())
	m.From = Instance(r.u64())
	m.To = Instance(r.u64())
	m.Promises = r.u8()
	n := int(r.u32())
	if n > r.remaining() {
		r.fail()
		return
	}
	if n == 0 {
		return
	}
	m.Voted = make([]VotedValue, n)
	for i := 0; i < n && r.err == nil; i++ {
		m.Voted[i].Instance = Instance(r.u64())
		m.Voted[i].VRnd = Ballot(r.u32())
		m.Voted[i].Value.unmarshal(r)
	}
}

// Entry is one application payload inside a decided Value, tagged with the
// proposer that multicast it and the proposer's sequence number. The tag
// lets the coordinator deduplicate proposals retransmitted over lossy links
// and lets a proposer detect that its proposal was learned.
type Entry struct {
	Proposer NodeID
	Seq      uint64
	Data     []byte
}

// Value is the unit a consensus instance decides on: either a batch of
// application payloads, or a "skip" covering a range of instances used by
// rate leveling (Section 4). A skip Value decides instances
// [Instance, SkipTo) of the enclosing Phase2/Decision as null.
type Value struct {
	Skip   bool
	SkipTo Instance // exclusive upper bound of the skipped range, if Skip
	Batch  []Entry  // application payloads, if !Skip
}

// IsEmpty reports whether the value carries no payloads and is not a skip.
func (v *Value) IsEmpty() bool { return !v.Skip && len(v.Batch) == 0 }

// PayloadBytes returns the total number of payload bytes in the batch.
func (v *Value) PayloadBytes() int {
	n := 0
	for i := range v.Batch {
		n += len(v.Batch[i].Data)
	}
	return n
}

func (v *Value) size() int {
	n := 1 + 8 + 4
	for i := range v.Batch {
		n += 4 + 8 + 4 + len(v.Batch[i].Data)
	}
	return n
}

func (v *Value) marshal(w *writer) {
	w.bool(v.Skip)
	w.u64(uint64(v.SkipTo))
	w.u32(uint32(len(v.Batch)))
	for i := range v.Batch {
		w.u32(uint32(v.Batch[i].Proposer))
		w.u64(v.Batch[i].Seq)
		w.bytes(v.Batch[i].Data)
	}
}

func (v *Value) unmarshal(r *reader) {
	v.Skip = r.bool()
	v.SkipTo = Instance(r.u64())
	n := int(r.u32())
	if n > r.remaining() {
		r.fail()
		return
	}
	if n == 0 {
		return
	}
	v.Batch = make([]Entry, n)
	for i := 0; i < n && r.err == nil; i++ {
		v.Batch[i].Proposer = NodeID(r.u32())
		v.Batch[i].Seq = r.u64()
		v.Batch[i].Data = r.bytes()
	}
}

// Phase2 is the combined Phase 2A/2B message. The coordinator emits it with
// Votes=1 (its own vote); each acceptor persists its vote, increments Votes
// and forwards. The last acceptor in the ring turns it into a Decision when
// Votes reaches a majority.
type Phase2 struct {
	Ring     RingID
	Ballot   Ballot
	Instance Instance
	Value    Value
	Votes    uint8
}

// Type implements Message.
func (*Phase2) Type() Type { return TPhase2 }

// Size implements Message.
func (m *Phase2) Size() int { return 1 + 2 + 4 + 8 + 1 + m.Value.size() }

func (m *Phase2) marshal(w *writer) {
	w.u16(uint16(m.Ring))
	w.u32(uint32(m.Ballot))
	w.u64(uint64(m.Instance))
	w.u8(m.Votes)
	m.Value.marshal(w)
}

func (m *Phase2) unmarshal(r *reader) {
	m.Ring = RingID(r.u16())
	m.Ballot = Ballot(r.u32())
	m.Instance = Instance(r.u64())
	m.Votes = r.u8()
	m.Value.unmarshal(r)
}

// Decision announces that Instance decided Value. Origin is the ring
// position (NodeID) of the last acceptor that produced the decision, so
// forwarding can stop once the message has gone all the way around.
type Decision struct {
	Ring     RingID
	Instance Instance
	Origin   NodeID
	Value    Value
}

// Type implements Message.
func (*Decision) Type() Type { return TDecision }

// Size implements Message.
func (m *Decision) Size() int { return 1 + 2 + 8 + 4 + m.Value.size() }

func (m *Decision) marshal(w *writer) {
	w.u16(uint16(m.Ring))
	w.u64(uint64(m.Instance))
	w.u32(uint32(m.Origin))
	m.Value.marshal(w)
}

func (m *Decision) unmarshal(r *reader) {
	m.Ring = RingID(r.u16())
	m.Instance = Instance(r.u64())
	m.Origin = NodeID(r.u32())
	m.Value.unmarshal(r)
}

// LearnReq asks an acceptor to retransmit the decided values of instances
// [From, To) of Ring to the requesting node.
type LearnReq struct {
	Ring RingID
	From Instance
	To   Instance
}

// Type implements Message.
func (*LearnReq) Type() Type { return TLearnReq }

// Size implements Message.
func (m *LearnReq) Size() int { return 1 + 2 + 8 + 8 }

func (m *LearnReq) marshal(w *writer) {
	w.u16(uint16(m.Ring))
	w.u64(uint64(m.From))
	w.u64(uint64(m.To))
}

func (m *LearnReq) unmarshal(r *reader) {
	m.Ring = RingID(r.u16())
	m.From = Instance(r.u64())
	m.To = Instance(r.u64())
}

// DecidedItem is one retransmitted decided instance.
type DecidedItem struct {
	Instance Instance
	Value    Value
}

// LearnResp carries retransmitted decided instances. Trimmed reports the
// acceptor's low watermark: instances below it were trimmed and can only be
// obtained via a checkpoint (Section 5.2).
type LearnResp struct {
	Ring    RingID
	Trimmed Instance
	Items   []DecidedItem
}

// Type implements Message.
func (*LearnResp) Type() Type { return TLearnResp }

// Size implements Message.
func (m *LearnResp) Size() int {
	n := 1 + 2 + 8 + 4
	for i := range m.Items {
		n += 8 + m.Items[i].Value.size()
	}
	return n
}

func (m *LearnResp) marshal(w *writer) {
	w.u16(uint16(m.Ring))
	w.u64(uint64(m.Trimmed))
	w.u32(uint32(len(m.Items)))
	for i := range m.Items {
		w.u64(uint64(m.Items[i].Instance))
		m.Items[i].Value.marshal(w)
	}
}

func (m *LearnResp) unmarshal(r *reader) {
	m.Ring = RingID(r.u16())
	m.Trimmed = Instance(r.u64())
	n := int(r.u32())
	if n > r.remaining() {
		r.fail()
		return
	}
	if n == 0 {
		return
	}
	m.Items = make([]DecidedItem, n)
	for i := 0; i < n && r.err == nil; i++ {
		m.Items[i].Instance = Instance(r.u64())
		m.Items[i].Value.unmarshal(r)
	}
}

// TrimQuery is sent by a ring coordinator to the replicas subscribing to the
// ring, asking for the highest consensus instance each has safely
// checkpointed (Section 5.2). Seq matches replies to queries.
type TrimQuery struct {
	Ring RingID
	Seq  uint64
}

// Type implements Message.
func (*TrimQuery) Type() Type { return TTrimQuery }

// Size implements Message.
func (m *TrimQuery) Size() int { return 1 + 2 + 8 }

func (m *TrimQuery) marshal(w *writer) {
	w.u16(uint16(m.Ring))
	w.u64(m.Seq)
}

func (m *TrimQuery) unmarshal(r *reader) {
	m.Ring = RingID(r.u16())
	m.Seq = r.u64()
}

// TrimReply reports replica Replica's highest safe instance k[x]p for ring
// Ring: the replica has checkpointed a state reflecting all commands decided
// up to SafeInstance.
type TrimReply struct {
	Ring         RingID
	Seq          uint64
	Replica      NodeID
	SafeInstance Instance
}

// Type implements Message.
func (*TrimReply) Type() Type { return TTrimReply }

// Size implements Message.
func (m *TrimReply) Size() int { return 1 + 2 + 8 + 4 + 8 }

func (m *TrimReply) marshal(w *writer) {
	w.u16(uint16(m.Ring))
	w.u64(m.Seq)
	w.u32(uint32(m.Replica))
	w.u64(uint64(m.SafeInstance))
}

func (m *TrimReply) unmarshal(r *reader) {
	m.Ring = RingID(r.u16())
	m.Seq = r.u64()
	m.Replica = NodeID(r.u32())
	m.SafeInstance = Instance(r.u64())
}

// TrimCmd instructs the acceptors of Ring to delete data about all consensus
// instances up to and including UpTo (the K[x]_T of Predicate 2).
type TrimCmd struct {
	Ring RingID
	UpTo Instance
}

// Type implements Message.
func (*TrimCmd) Type() Type { return TTrimCmd }

// Size implements Message.
func (m *TrimCmd) Size() int { return 1 + 2 + 8 }

func (m *TrimCmd) marshal(w *writer) {
	w.u16(uint16(m.Ring))
	w.u64(uint64(m.UpTo))
}

func (m *TrimCmd) unmarshal(r *reader) {
	m.Ring = RingID(r.u16())
	m.UpTo = Instance(r.u64())
}

// RingInstance is one entry of a checkpoint tuple k_p: the highest applied
// instance of one ring. Tuples are ordered by ring identifier (Predicate 1).
type RingInstance struct {
	Ring     RingID
	Instance Instance
}

// CkptQuery asks a peer replica for the identifier of its most recent
// checkpoint. Seq matches replies to queries.
type CkptQuery struct {
	Seq uint64
}

// Type implements Message.
func (*CkptQuery) Type() Type { return TCkptQuery }

// Size implements Message.
func (m *CkptQuery) Size() int { return 1 + 8 }

func (m *CkptQuery) marshal(w *writer) { w.u64(m.Seq) }

func (m *CkptQuery) unmarshal(r *reader) { m.Seq = r.u64() }

// CkptReply reports the identifier (tuple k_q) of the replying replica's
// most up-to-date checkpoint. Epoch is the schema epoch that checkpoint
// was taken under (0 when the service is unversioned or no checkpoint
// exists); recovery surfaces the quorum's highest epoch as
// recovery.Result.Epoch — informational for the caller, since the actual
// schema catch-up happens by replaying the totally-ordered split commands
// after the checkpoint is installed.
type CkptReply struct {
	Seq     uint64
	Replica NodeID
	Epoch   uint64
	Tuple   []RingInstance
}

// Type implements Message.
func (*CkptReply) Type() Type { return TCkptReply }

// Size implements Message.
func (m *CkptReply) Size() int { return 1 + 8 + 4 + 8 + 4 + len(m.Tuple)*(2+8) }

func (m *CkptReply) marshal(w *writer) {
	w.u64(m.Seq)
	w.u32(uint32(m.Replica))
	w.u64(m.Epoch)
	w.u32(uint32(len(m.Tuple)))
	for _, t := range m.Tuple {
		w.u16(uint16(t.Ring))
		w.u64(uint64(t.Instance))
	}
}

func (m *CkptReply) unmarshal(r *reader) {
	m.Seq = r.u64()
	m.Replica = NodeID(r.u32())
	m.Epoch = r.u64()
	n := int(r.u32())
	if n > r.remaining() {
		r.fail()
		return
	}
	if n > 0 {
		m.Tuple = make([]RingInstance, n)
	}
	for i := 0; i < n && r.err == nil; i++ {
		m.Tuple[i].Ring = RingID(r.u16())
		m.Tuple[i].Instance = Instance(r.u64())
	}
}

// CkptFetch asks a peer replica to transfer its most recent checkpoint.
type CkptFetch struct {
	Seq uint64
}

// Type implements Message.
func (*CkptFetch) Type() Type { return TCkptFetch }

// Size implements Message.
func (m *CkptFetch) Size() int { return 1 + 8 }

func (m *CkptFetch) marshal(w *writer) { w.u64(m.Seq) }

func (m *CkptFetch) unmarshal(r *reader) { m.Seq = r.u64() }

// CkptData transfers a full checkpoint: the tuple identifying it, the
// schema epoch it was taken under (0 for unversioned services), and the
// serialized service state.
type CkptData struct {
	Seq   uint64
	Epoch uint64
	Tuple []RingInstance
	State []byte
}

// Type implements Message.
func (*CkptData) Type() Type { return TCkptData }

// Size implements Message.
func (m *CkptData) Size() int {
	return 1 + 8 + 8 + 4 + len(m.Tuple)*(2+8) + 4 + len(m.State)
}

func (m *CkptData) marshal(w *writer) {
	w.u64(m.Seq)
	w.u64(m.Epoch)
	w.u32(uint32(len(m.Tuple)))
	for _, t := range m.Tuple {
		w.u16(uint16(t.Ring))
		w.u64(uint64(t.Instance))
	}
	w.bytes(m.State)
}

func (m *CkptData) unmarshal(r *reader) {
	m.Seq = r.u64()
	m.Epoch = r.u64()
	n := int(r.u32())
	if n > r.remaining() {
		r.fail()
		return
	}
	if n > 0 {
		m.Tuple = make([]RingInstance, n)
	}
	for i := 0; i < n && r.err == nil; i++ {
		m.Tuple[i].Ring = RingID(r.u16())
		m.Tuple[i].Instance = Instance(r.u64())
	}
	m.State = r.bytes()
}

// Response carries a service reply from a replica back to a client.
// (ClientID, Seq) match it to the originating request; replicas all reply
// and the client keeps the first response (paper Section 7.2).
type Response struct {
	ClientID uint64
	Seq      uint64
	Result   []byte
}

// Type implements Message.
func (*Response) Type() Type { return TResponse }

// Size implements Message.
func (m *Response) Size() int { return 1 + 8 + 8 + 4 + len(m.Result) }

func (m *Response) marshal(w *writer) {
	w.u64(m.ClientID)
	w.u64(m.Seq)
	w.bytes(m.Result)
}

func (m *Response) unmarshal(r *reader) {
	m.ClientID = r.u64()
	m.Seq = r.u64()
	m.Result = r.bytes()
}

// TxnVote carries one participant partition's vote on a conditional
// cross-partition transaction between replicas (internal/txn). (ClientID,
// Seq) identify the transaction — the same pair that identifies the
// ordered command carrying it — Part is the voting partition and Vote its
// verdict. Want set asks the receiver to send its own vote back: the vote
// exchange is a pull-push protocol, so a replica that lost a vote (crash,
// late subscribe, replay after recovery) can always re-request it.
type TxnVote struct {
	ClientID uint64
	Seq      uint64
	Part     uint16
	Vote     uint8
	Want     bool
}

// Type implements Message.
func (*TxnVote) Type() Type { return TTxnVote }

// Size implements Message.
func (m *TxnVote) Size() int { return 1 + 8 + 8 + 2 + 1 + 1 }

func (m *TxnVote) marshal(w *writer) {
	w.u64(m.ClientID)
	w.u64(m.Seq)
	w.u16(m.Part)
	w.u8(m.Vote)
	w.bool(m.Want)
}

func (m *TxnVote) unmarshal(r *reader) {
	m.ClientID = r.u64()
	m.Seq = r.u64()
	m.Part = r.u16()
	m.Vote = r.u8()
	m.Want = r.bool()
}

// LeaseRead asks a lease-holding replica to serve a read-only operation
// from its applied state without ordering it (consensus-free local read).
// (ClientID, Seq) match the reply to the request; unlike ordered commands
// the pair never enters replicated state — a lease read is answered by
// exactly one replica or not at all, and the client falls back to the
// ordered path on timeout.
type LeaseRead struct {
	ClientID uint64
	Seq      uint64
	Op       []byte
}

// Type implements Message.
func (*LeaseRead) Type() Type { return TLeaseRead }

// Size implements Message.
func (m *LeaseRead) Size() int { return 1 + 8 + 8 + 4 + len(m.Op) }

func (m *LeaseRead) marshal(w *writer) {
	w.u64(m.ClientID)
	w.u64(m.Seq)
	w.bytes(m.Op)
}

func (m *LeaseRead) unmarshal(r *reader) {
	m.ClientID = r.u64()
	m.Seq = r.u64()
	m.Op = r.bytes()
}

// LeaseReply answers a LeaseRead. OK=false means the replica declined to
// serve locally — it holds no active lease, its frontier has not covered
// the lease's grant position yet, or its read queue was full — and carries
// no result; the client falls back to the ordered read path. OK=true
// carries the service result bytes exactly as an ordered execution of the
// same op would have produced them (including typed redirects).
type LeaseReply struct {
	ClientID uint64
	Seq      uint64
	OK       bool
	Result   []byte
}

// Type implements Message.
func (*LeaseReply) Type() Type { return TLeaseReply }

// Size implements Message.
func (m *LeaseReply) Size() int { return 1 + 8 + 8 + 1 + 4 + len(m.Result) }

func (m *LeaseReply) marshal(w *writer) {
	w.u64(m.ClientID)
	w.u64(m.Seq)
	w.bool(m.OK)
	w.bytes(m.Result)
}

func (m *LeaseReply) unmarshal(r *reader) {
	m.ClientID = r.u64()
	m.Seq = r.u64()
	m.OK = r.bool()
	m.Result = r.bytes()
}

// Batch packs several messages into one packet to amortize per-message
// transport overhead (paper Section 4: "different types of messages ... are
// often grouped into bigger packets before being forwarded").
type Batch struct {
	Msgs []Message
}

// Type implements Message.
func (*Batch) Type() Type { return TBatch }

// Size implements Message.
func (m *Batch) Size() int {
	n := 1 + 4
	for _, sub := range m.Msgs {
		n += 4 + sub.Size()
	}
	return n
}

func (m *Batch) marshal(w *writer) {
	w.u32(uint32(len(m.Msgs)))
	for _, sub := range m.Msgs {
		w.u32(uint32(sub.Size()))
		w.u8(uint8(sub.Type()))
		sub.marshal(w)
	}
}

func (m *Batch) unmarshal(r *reader) {
	n := int(r.u32())
	if n > r.remaining() {
		r.fail()
		return
	}
	if n == 0 {
		return
	}
	m.Msgs = make([]Message, 0, n)
	for i := 0; i < n && r.err == nil; i++ {
		size := int(r.u32())
		if size < 1 || size > r.remaining() {
			r.fail()
			return
		}
		sub, err := Unmarshal(r.raw(size))
		if err != nil {
			r.fail()
			return
		}
		m.Msgs = append(m.Msgs, sub)
	}
}

// New returns a zero message of the given type, or nil for unknown types.
func New(t Type) Message {
	switch t {
	case TProposal:
		return &Proposal{}
	case TPhase1A:
		return &Phase1A{}
	case TPhase1B:
		return &Phase1B{}
	case TPhase2:
		return &Phase2{}
	case TDecision:
		return &Decision{}
	case TLearnReq:
		return &LearnReq{}
	case TLearnResp:
		return &LearnResp{}
	case TTrimQuery:
		return &TrimQuery{}
	case TTrimReply:
		return &TrimReply{}
	case TTrimCmd:
		return &TrimCmd{}
	case TCkptQuery:
		return &CkptQuery{}
	case TCkptReply:
		return &CkptReply{}
	case TCkptFetch:
		return &CkptFetch{}
	case TCkptData:
		return &CkptData{}
	case TResponse:
		return &Response{}
	case TBatch:
		return &Batch{}
	case TTxnVote:
		return &TxnVote{}
	case TLeaseRead:
		return &LeaseRead{}
	case TLeaseReply:
		return &LeaseReply{}
	default:
		return nil
	}
}

// Marshal encodes m with a leading type tag.
func Marshal(m Message) []byte {
	return MarshalTo(make([]byte, 0, m.Size()), m)
}

// MarshalTo appends the encoding of m (leading type tag included) to dst and
// returns the extended slice. With a dst of sufficient capacity it performs
// no allocation; pair it with GetBuffer/PutBuffer to reuse encode buffers
// across messages on a transport's hot send path.
func MarshalTo(dst []byte, m Message) []byte {
	w := writer{buf: dst}
	w.u8(uint8(m.Type()))
	m.marshal(&w)
	return w.buf
}

// AppendBatch appends the encoding of a Batch containing msgs to dst without
// constructing a Batch value, and returns the extended slice. The result is
// byte-identical to MarshalTo(dst, &Batch{Msgs: msgs}).
func AppendBatch(dst []byte, msgs []Message) []byte {
	w := writer{buf: dst}
	w.u8(uint8(TBatch))
	w.u32(uint32(len(msgs)))
	for _, sub := range msgs {
		w.u32(uint32(sub.Size()))
		w.u8(uint8(sub.Type()))
		sub.marshal(&w)
	}
	return w.buf
}

// BatchSize returns the encoded size of a Batch containing msgs, i.e. what
// (&Batch{Msgs: msgs}).Size() would report, without building the value.
func BatchSize(msgs []Message) int {
	n := 1 + 4
	for _, sub := range msgs {
		n += 4 + sub.Size()
	}
	return n
}

// bufPool recycles encode buffers for MarshalTo-based hot paths.
var bufPool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 4096)
		return &b
	},
}

// maxPooledBuf bounds the capacity of buffers returned to the pool, so one
// oversized message does not pin a huge allocation forever.
const maxPooledBuf = 1 << 20

// GetBuffer returns a reusable encode buffer of zero length. Return it with
// PutBuffer when the encoded bytes are no longer referenced.
func GetBuffer() *[]byte {
	b := bufPool.Get().(*[]byte)
	*b = (*b)[:0]
	return b
}

// PutBuffer recycles a buffer obtained from GetBuffer. The caller must not
// retain any slice of it afterwards.
func PutBuffer(b *[]byte) {
	if cap(*b) > maxPooledBuf {
		return
	}
	bufPool.Put(b)
}

// Unmarshal decodes one message from b. The entire slice must be consumed.
func Unmarshal(b []byte) (Message, error) {
	if len(b) < 1 {
		return nil, ErrBadMessage
	}
	t := Type(b[0])
	m := New(t)
	if m == nil {
		return nil, fmt.Errorf("msg: unknown type %d: %w", t, ErrBadMessage)
	}
	r := reader{buf: b, off: 1}
	m.unmarshal(&r)
	if r.err != nil {
		return nil, r.err
	}
	if r.off != len(b) {
		return nil, fmt.Errorf("msg: %d trailing bytes: %w", len(b)-r.off, ErrBadMessage)
	}
	return m, nil
}
