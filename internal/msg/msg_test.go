package msg

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// allSamples returns one representative populated value of every message type.
func allSamples() []Message {
	return []Message{
		&Proposal{Ring: 3, ProposerID: 7, Seq: 42, Payload: []byte("hello")},
		&Phase1A{Ring: 1, Ballot: 9, From: 10, To: 20},
		&Phase1B{Ring: 1, Ballot: 9, From: 10, To: 20, Promises: 2,
			Voted: []VotedValue{{Instance: 11, VRnd: 3,
				Value: Value{Batch: []Entry{{Proposer: 1, Seq: 2, Data: []byte("x")}}}}}},
		&Phase2{Ring: 2, Ballot: 1, Instance: 5, Votes: 1,
			Value: Value{Batch: []Entry{{Proposer: 1, Seq: 1, Data: []byte("a")}, {Proposer: 2, Seq: 9, Data: []byte("bb")}}}},
		&Phase2{Ring: 2, Ballot: 1, Instance: 6, Votes: 2,
			Value: Value{Skip: true, SkipTo: 100}},
		&Decision{Ring: 2, Instance: 5, Origin: 3,
			Value: Value{Batch: []Entry{{Proposer: 3, Seq: 4, Data: []byte("a")}}}},
		&LearnReq{Ring: 4, From: 1, To: 99},
		&LearnResp{Ring: 4, Trimmed: 7, Items: []DecidedItem{
			{Instance: 8, Value: Value{Batch: []Entry{{Proposer: 5, Seq: 6, Data: []byte("v")}}}},
			{Instance: 9, Value: Value{Skip: true, SkipTo: 12}},
		}},
		&TrimQuery{Ring: 5, Seq: 77},
		&TrimReply{Ring: 5, Seq: 77, Replica: 2, SafeInstance: 1000},
		&TrimCmd{Ring: 5, UpTo: 900},
		&CkptQuery{Seq: 1},
		&CkptReply{Seq: 1, Replica: 9, Epoch: 3, Tuple: []RingInstance{{1, 10}, {2, 5}}},
		&CkptFetch{Seq: 2},
		&CkptData{Seq: 2, Epoch: 3, Tuple: []RingInstance{{1, 10}}, State: []byte("state")},
		&Response{ClientID: 1, Seq: 2, Result: []byte("ok")},
		&TxnVote{ClientID: 1, Seq: 2, Part: 3, Vote: 1, Want: true},
		&Batch{Msgs: []Message{
			&TrimCmd{Ring: 1, UpTo: 5},
			&Proposal{Ring: 1, ProposerID: 2, Seq: 3, Payload: []byte("p")},
		}},
	}
}

func TestRoundTripAllTypes(t *testing.T) {
	for _, m := range allSamples() {
		b := Marshal(m)
		got, err := Unmarshal(b)
		if err != nil {
			t.Fatalf("%T: unmarshal: %v", m, err)
		}
		if !reflect.DeepEqual(m, got) {
			t.Errorf("%T round trip mismatch:\n in: %+v\nout: %+v", m, m, got)
		}
	}
}

func TestSizeMatchesEncoding(t *testing.T) {
	for _, m := range allSamples() {
		b := Marshal(m)
		if m.Size() != len(b) {
			t.Errorf("%T: Size()=%d but len(Marshal)=%d", m, m.Size(), len(b))
		}
	}
}

func TestEmptyPayloads(t *testing.T) {
	cases := []Message{
		&Proposal{},
		&Phase1B{},
		&Phase2{},
		&Decision{},
		&LearnResp{},
		&CkptReply{},
		&CkptData{},
		&Response{},
		&Batch{},
	}
	for _, m := range cases {
		b := Marshal(m)
		got, err := Unmarshal(b)
		if err != nil {
			t.Fatalf("%T: unmarshal empty: %v", m, err)
		}
		if got.Type() != m.Type() {
			t.Errorf("%T: type mismatch", m)
		}
		if m.Size() != len(b) {
			t.Errorf("%T: empty Size()=%d len=%d", m, m.Size(), len(b))
		}
	}
}

func TestUnmarshalErrors(t *testing.T) {
	if _, err := Unmarshal(nil); err == nil {
		t.Error("nil input should fail")
	}
	if _, err := Unmarshal([]byte{0}); err == nil {
		t.Error("type 0 should fail")
	}
	if _, err := Unmarshal([]byte{byte(maxType)}); err == nil {
		t.Error("out-of-range type should fail")
	}
	// Truncations of every sample must fail, never panic.
	for _, m := range allSamples() {
		b := Marshal(m)
		for cut := 1; cut < len(b); cut++ {
			if _, err := Unmarshal(b[:cut]); err == nil {
				// Truncation may still parse if trailing bytes were part of a
				// slice length... but our codec requires full consumption.
				t.Errorf("%T: truncation at %d/%d did not fail", m, cut, len(b))
			}
		}
	}
}

func TestTrailingBytesRejected(t *testing.T) {
	b := Marshal(&TrimCmd{Ring: 1, UpTo: 2})
	b = append(b, 0xFF)
	if _, err := Unmarshal(b); err == nil {
		t.Error("trailing bytes should fail")
	}
}

func TestUnmarshalHugeLengthPrefix(t *testing.T) {
	// A LearnResp claiming 2^31 items must not allocate or panic.
	w := writer{}
	w.u8(uint8(TLearnResp))
	w.u16(1)
	w.u64(0)
	w.u32(1 << 31)
	if _, err := Unmarshal(w.buf); err == nil {
		t.Error("huge length prefix should fail")
	}
}

// Property: random proposals round-trip exactly and Size matches encoding.
func TestProposalRoundTripProperty(t *testing.T) {
	f := func(ring uint16, node uint32, seq uint64, payload []byte) bool {
		m := &Proposal{Ring: RingID(ring), ProposerID: NodeID(node), Seq: seq, Payload: payload}
		b := Marshal(m)
		if len(b) != m.Size() {
			return false
		}
		got, err := Unmarshal(b)
		if err != nil {
			return false
		}
		g := got.(*Proposal)
		return g.Ring == m.Ring && g.ProposerID == m.ProposerID &&
			g.Seq == m.Seq && bytes.Equal(g.Payload, m.Payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: random batched Phase2 values round-trip.
func TestPhase2RoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 300; i++ {
		nb := rng.Intn(5)
		batch := make([]Entry, nb)
		for j := range batch {
			batch[j] = Entry{Proposer: NodeID(rng.Uint32()), Seq: rng.Uint64(), Data: make([]byte, rng.Intn(64))}
			rng.Read(batch[j].Data)
		}
		m := &Phase2{
			Ring:     RingID(rng.Intn(100)),
			Ballot:   Ballot(rng.Intn(1000)),
			Instance: Instance(rng.Uint64()),
			Votes:    uint8(rng.Intn(8)),
			Value:    Value{Batch: batch},
		}
		b := Marshal(m)
		if len(b) != m.Size() {
			t.Fatalf("size mismatch: %d vs %d", len(b), m.Size())
		}
		got, err := Unmarshal(b)
		if err != nil {
			t.Fatalf("unmarshal: %v", err)
		}
		g := got.(*Phase2)
		if g.Instance != m.Instance || len(g.Value.Batch) != nb {
			t.Fatalf("mismatch: %+v vs %+v", g, m)
		}
		for j := range batch {
			if !bytes.Equal(g.Value.Batch[j].Data, batch[j].Data) ||
				g.Value.Batch[j].Proposer != batch[j].Proposer ||
				g.Value.Batch[j].Seq != batch[j].Seq {
				t.Fatalf("batch[%d] mismatch", j)
			}
		}
	}
}

func TestValueHelpers(t *testing.T) {
	v := Value{}
	if !v.IsEmpty() {
		t.Error("zero value should be empty")
	}
	if v.PayloadBytes() != 0 {
		t.Error("zero value payload bytes != 0")
	}
	v = Value{Batch: []Entry{{Data: []byte("ab")}, {Data: []byte("c")}}}
	if v.IsEmpty() {
		t.Error("non-empty batch reported empty")
	}
	if v.PayloadBytes() != 3 {
		t.Errorf("payload bytes = %d, want 3", v.PayloadBytes())
	}
	v = Value{Skip: true, SkipTo: 9}
	if v.IsEmpty() {
		t.Error("skip value reported empty")
	}
}

func TestNestedBatch(t *testing.T) {
	inner := &Batch{Msgs: []Message{&TrimCmd{Ring: 1, UpTo: 1}}}
	outer := &Batch{Msgs: []Message{inner, &CkptQuery{Seq: 5}}}
	b := Marshal(outer)
	if len(b) != outer.Size() {
		t.Fatalf("size mismatch: %d vs %d", len(b), outer.Size())
	}
	got, err := Unmarshal(b)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(outer, got) {
		t.Fatalf("nested batch mismatch")
	}
}

func TestNewUnknownType(t *testing.T) {
	if New(0) != nil || New(maxType) != nil || New(200) != nil {
		t.Error("New should return nil for unknown types")
	}
}
