package msg

// RingOf returns the ring a message is scoped to, if any. Ring-scoped
// messages are routed to the Ring Paxos process for that ring; the rest
// (checkpoint RPCs, client responses) go to the node's service handler.
func RingOf(m Message) (RingID, bool) {
	switch v := m.(type) {
	case *Proposal:
		return v.Ring, true
	case *Phase1A:
		return v.Ring, true
	case *Phase1B:
		return v.Ring, true
	case *Phase2:
		return v.Ring, true
	case *Decision:
		return v.Ring, true
	case *LearnReq:
		return v.Ring, true
	case *LearnResp:
		return v.Ring, true
	case *TrimQuery:
		return v.Ring, true
	case *TrimReply:
		return v.Ring, true
	case *TrimCmd:
		return v.Ring, true
	default:
		return 0, false
	}
}
