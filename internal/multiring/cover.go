package multiring

import (
	"fmt"
	"sort"

	"mrp/internal/msg"
)

// Cover selects the minimal set of rings a single multicast must be
// proposed to so that every listed group member delivers it — the ring-
// set planning step of a cross-partition command (paper Section 3: a
// message multicast to several groups is delivered in the same relative
// order by every process subscribed to them).
//
//   - one member: its own ring, trivially minimal;
//   - a shared ring (the store's global ring) that every member
//     subscribes to: that one ring — every participant's learner merges
//     it, so one proposal reaches them all in one total order;
//   - otherwise: each member's own ring, deduplicated and sorted — the
//     fan-out fallback for members outside the shared ring (the paper's
//     weaker Figure 4 configuration; split-created store partitions are
//     born in it).
//
// single reports whether one ring covers every member, which is the
// precondition for conditional (vote-exchange) transactions: only a
// shared total order makes the exchange deadlock-free. ringOf resolves a
// member's own ring against the caller's (versioned) schema view and
// reports false for unknown members, in which case Cover fails and the
// caller must refresh its view.
func Cover(members []int, ringOf func(int) (msg.RingID, bool), shared msg.RingID, onShared func(int) bool) (rings []msg.RingID, single bool, err error) {
	if len(members) == 0 {
		return nil, false, fmt.Errorf("multiring: empty member set")
	}
	seen := make(map[int]bool, len(members))
	all := shared != 0
	for _, m := range members {
		if seen[m] {
			continue
		}
		seen[m] = true
		r, ok := ringOf(m)
		if !ok || r == 0 {
			return nil, false, fmt.Errorf("multiring: no ring known for group member %d", m)
		}
		if all && (onShared == nil || !onShared(m)) {
			all = false
		}
		found := false
		for _, have := range rings {
			if have == r {
				found = true
				break
			}
		}
		if !found {
			rings = append(rings, r)
		}
	}
	if len(seen) == 1 {
		return rings, true, nil
	}
	if all {
		return []msg.RingID{shared}, true, nil
	}
	sort.Slice(rings, func(i, j int) bool { return rings[i] < rings[j] })
	return rings, len(rings) == 1, nil
}
