package multiring

import (
	"fmt"
	"testing"
	"time"

	"mrp/internal/msg"
	"mrp/internal/netsim"
	"mrp/internal/ringpaxos"
	"mrp/internal/storage"
	"mrp/internal/transport"
)

// fakeSource is a replayed decision stream for one ring.
type fakeSource struct {
	ring msg.RingID
	ch   chan ringpaxos.Decided
}

func newFakeSource(ring msg.RingID, cap int) *fakeSource {
	return &fakeSource{ring: ring, ch: make(chan ringpaxos.Decided, cap)}
}

func (f *fakeSource) Ring() msg.RingID                    { return f.ring }
func (f *fakeSource) Decisions() <-chan ringpaxos.Decided { return f.ch }

func (f *fakeSource) decide(inst msg.Instance, payload string) {
	f.ch <- ringpaxos.Decided{Ring: f.ring, Instance: inst, Value: msg.Value{
		Batch: []msg.Entry{{Proposer: 1, Seq: uint64(inst), Data: []byte(payload)}},
	}}
}

func (f *fakeSource) skip(inst, to msg.Instance) {
	f.ch <- ringpaxos.Decided{Ring: f.ring, Instance: inst, Value: msg.Value{Skip: true, SkipTo: to}}
}

// feed describes one scripted decision, replayable into several sources.
type feed struct {
	ring    msg.RingID
	inst    msg.Instance
	payload string
	skipTo  msg.Instance // > 0 for a skip decision
}

func replay(t *testing.T, script []feed, rings ...msg.RingID) map[msg.RingID]*fakeSource {
	t.Helper()
	srcs := make(map[msg.RingID]*fakeSource, len(rings))
	for _, r := range rings {
		srcs[r] = newFakeSource(r, len(script)+1)
	}
	for _, f := range script {
		if f.skipTo > 0 {
			srcs[f.ring].skip(f.inst, f.skipTo)
		} else {
			srcs[f.ring].decide(f.inst, f.payload)
		}
	}
	return srcs
}

func collect(t *testing.T, l *Learner, n int) []string {
	t.Helper()
	var out []string
	deadline := time.After(10 * time.Second)
	for len(out) < n {
		select {
		case d := <-l.Deliveries():
			if d.Skip {
				out = append(out, fmt.Sprintf("r%d:skip@%d-%d", d.Ring, d.Instance, d.SkipTo))
			} else {
				out = append(out, fmt.Sprintf("r%d:%s", d.Ring, d.Entry.Data))
			}
		case <-deadline:
			t.Fatalf("timed out after %d deliveries: %v", len(out), out)
		}
	}
	return out
}

// collectData gathers n non-skip deliveries (rate-leveling skips filtered).
func collectData(t *testing.T, l *Learner, n int) []string {
	t.Helper()
	var out []string
	deadline := time.After(10 * time.Second)
	for len(out) < n {
		select {
		case d := <-l.Deliveries():
			if d.Skip {
				continue
			}
			out = append(out, fmt.Sprintf("r%d:%s", d.Ring, d.Entry.Data))
		case <-deadline:
			t.Fatalf("timed out after %d data deliveries: %v", len(out), out)
		}
	}
	return out
}

// script3 is the shared scenario: rings 1 and 2 active from the start,
// ring 3 spliced in at activation {Ring 1, Instance 3}. Ring 1's instance 3
// is covered by a skip range (2-4), exercising skip-aligned activation.
// The skip's over-consumption carries across rounds, so ring 1 sits out
// two turns after it; the merged order is
// a1 b1 skip b2 b3 c1 b4 c2 a5 (9 deliveries).
func script3() []feed {
	return []feed{
		{ring: 1, inst: 1, payload: "a1"},
		{ring: 1, inst: 2, skipTo: 5}, // skip 2,3,4: frontier jumps over the trigger
		{ring: 1, inst: 5, payload: "a5"},
		{ring: 2, inst: 1, payload: "b1"},
		{ring: 2, inst: 2, payload: "b2"},
		{ring: 2, inst: 3, payload: "b3"},
		{ring: 2, inst: 4, payload: "b4"},
		{ring: 3, inst: 1, payload: "c1"},
		{ring: 3, inst: 2, payload: "c2"},
	}
}

// TestLearnerSubscribeDeterministicAcrossLearners replays identical
// decision streams into two learners. One subscribes the new ring before
// starting, the other mid-flight; both use the same activation point, so
// both must deliver the exact same global sequence.
func TestLearnerSubscribeDeterministicAcrossLearners(t *testing.T) {
	const total = 9
	act := Activation{Ring: 1, Instance: 3}

	srcA := replay(t, script3(), 1, 2, 3)
	la := NewLearner(1, srcA[1], srcA[2])
	la.Subscribe(srcA[3], act)
	la.Start()
	defer la.Stop()
	seqA := collect(t, la, total)

	// Learner B subscribes while the merge is already running. Per the
	// Activation contract the trigger instance must still be in the merge's
	// future at request time, so only a prefix (below the trigger) is fed
	// before subscribing; the rest — including ring 1's skip that covers
	// the trigger instance — arrives afterwards.
	script := script3()
	srcB := replay(t, script[:1], 1, 2, 3) // just {ring 1, inst 1}
	lb := NewLearner(1, srcB[1], srcB[2])
	lb.Start()
	defer lb.Stop()
	first := collect(t, lb, 1)
	lb.Subscribe(srcB[3], act)
	for _, f := range script[1:] {
		if f.skipTo > 0 {
			srcB[f.ring].skip(f.inst, f.skipTo)
		} else {
			srcB[f.ring].decide(f.inst, f.payload)
		}
	}
	seqB := append(first, collect(t, lb, total-1)...)

	if fmt.Sprint(seqA) != fmt.Sprint(seqB) {
		t.Fatalf("merge diverged:\n A: %v\n B: %v", seqA, seqB)
	}
	// The new ring must not deliver before the activation point.
	for i, s := range seqA {
		if s == "r3:c1" {
			if i < 2 {
				t.Fatalf("ring 3 activated too early: %v", seqA)
			}
			break
		}
	}
}

// TestLearnerUnsubscribeDeterministic splices a ring out at an agreed
// activation point on two learners and checks both deliver the same
// sequence, with no ring-2 deliveries after the splice.
func TestLearnerUnsubscribeDeterministic(t *testing.T) {
	script := []feed{
		{ring: 1, inst: 1, payload: "a1"},
		{ring: 1, inst: 2, payload: "a2"},
		{ring: 1, inst: 3, payload: "a3"},
		{ring: 1, inst: 4, payload: "a4"},
		{ring: 2, inst: 1, payload: "b1"},
		{ring: 2, inst: 2, payload: "b2"},
	}
	act := Activation{Ring: 2, Instance: 2}
	const total = 6 // a1 b1 a2 b2 a3 a4

	run := func() []string {
		srcs := replay(t, script, 1, 2)
		l := NewLearner(1, srcs[1], srcs[2])
		l.Unsubscribe(2, act)
		l.Start()
		defer l.Stop()
		return collect(t, l, total)
	}
	s1, s2 := run(), run()
	if fmt.Sprint(s1) != fmt.Sprint(s2) {
		t.Fatalf("merge diverged:\n 1: %v\n 2: %v", s1, s2)
	}
	want := "[r1:a1 r2:b1 r1:a2 r2:b2 r1:a3 r1:a4]"
	if fmt.Sprint(s1) != want {
		t.Fatalf("sequence = %v, want %s", s1, want)
	}
}

// TestLearnerStartsEmpty checks a learner created with no sources blocks
// until a subscription arrives, then delivers.
func TestLearnerStartsEmpty(t *testing.T) {
	l := NewLearner(1)
	l.Start()
	defer l.Stop()
	select {
	case d := <-l.Deliveries():
		t.Fatalf("unexpected delivery %+v", d)
	case <-time.After(20 * time.Millisecond):
	}
	src := newFakeSource(7, 4)
	src.decide(1, "x1")
	l.Subscribe(src, Activation{})
	got := collect(t, l, 1)
	if got[0] != "r7:x1" {
		t.Fatalf("delivery = %v", got)
	}
	if rings := l.Rings(); len(rings) != 1 || rings[0] != 7 {
		t.Fatalf("rings = %v", rings)
	}
}

// TestNodeSubscribeUnsubscribeRuntime exercises the end-to-end runtime
// path: three running nodes subscribe to a second ring, multicast on it,
// deliver through spliced learners, then unsubscribe again.
func TestNodeSubscribeUnsubscribeRuntime(t *testing.T) {
	net := netsim.New(netsim.WithUniformLatency(20 * time.Microsecond))
	defer net.Close()

	const n = 3
	mkPeers := func() []ringpaxos.Peer {
		peers := make([]ringpaxos.Peer, n)
		for i := range peers {
			peers[i] = ringpaxos.Peer{
				ID:    msg.NodeID(i + 1),
				Addr:  transport.Addr(fmt.Sprintf("dyn-%d", i)),
				Roles: ringpaxos.RoleProposer | ringpaxos.RoleAcceptor | ringpaxos.RoleLearner,
			}
		}
		return peers
	}
	peers := mkPeers()

	ringCfg := func(ring msg.RingID) ringpaxos.Config {
		return ringpaxos.Config{
			Ring: ring, Peers: peers, Coordinator: peers[0].ID,
			Log:          storage.NewLog(storage.InMemory),
			RetryTimeout: 50 * time.Millisecond,
			// Rate leveling: an idle ring still completes merge turns, which
			// is what lets an unsubscription reach its round boundary.
			SkipInterval: 2 * time.Millisecond,
			SkipRate:     500,
		}
	}

	var nodes []*Node
	var learners []*Learner
	for i := 0; i < n; i++ {
		node := NewNode(peers[i].ID, net.Endpoint(peers[i].Addr))
		p1, err := node.Join(ringCfg(1))
		if err != nil {
			t.Fatal(err)
		}
		node.Start()
		l := NewLearner(1, p1)
		l.Start()
		nodes = append(nodes, node)
		learners = append(learners, l)
		defer node.Stop()
		defer l.Stop()
	}

	if err := nodes[0].Multicast(1, []byte("pre")); err != nil {
		t.Fatal(err)
	}
	for i := range learners {
		if got := collectData(t, learners[i], 1); got[0] != "r1:pre" {
			t.Fatalf("learner %d pre = %v", i, got)
		}
	}

	// Runtime subscription to a fresh ring on every node.
	for i, node := range nodes {
		p2, err := node.Subscribe(ringCfg(2))
		if err != nil {
			t.Fatal(err)
		}
		learners[i].Subscribe(p2, Activation{})
		if got := len(node.Rings()); got != 2 {
			t.Fatalf("node rings = %d", got)
		}
	}
	if err := nodes[1].Multicast(2, []byte("dyn")); err != nil {
		t.Fatal(err)
	}
	if err := nodes[0].Multicast(1, []byte("post")); err != nil {
		t.Fatal(err)
	}
	for i := range learners {
		got := collectData(t, learners[i], 2)
		seen := map[string]bool{got[0]: true, got[1]: true}
		if !seen["r1:post"] || !seen["r2:dyn"] {
			t.Fatalf("learner %d post-subscribe = %v", i, got)
		}
	}

	// Runtime unsubscription: every learner splices ring 2 out of its merge
	// first — the ring's skips (driven by its still-running coordinator)
	// keep the merge turning until the splice lands — and only then do the
	// nodes leave the ring.
	for i := range learners {
		learners[i].Unsubscribe(2, Activation{})
	}
	for i := range learners {
		deadline := time.Now().Add(10 * time.Second)
		for len(learners[i].Rings()) != 1 {
			if time.Now().After(deadline) {
				t.Fatalf("learner %d still merging ring 2", i)
			}
			// Drain rate-leveling skips so a full delivery buffer cannot
			// keep the merge from reaching its round boundary.
			select {
			case <-learners[i].Deliveries():
			default:
				time.Sleep(time.Millisecond)
			}
		}
	}
	for _, node := range nodes {
		if err := node.Unsubscribe(2); err != nil {
			t.Fatal(err)
		}
		if err := node.Unsubscribe(2); err == nil {
			t.Fatal("double unsubscribe should fail")
		}
	}
	if err := nodes[2].Multicast(1, []byte("after")); err != nil {
		t.Fatal(err)
	}
	for i := range learners {
		if got := collectData(t, learners[i], 1); got[0] != "r1:after" {
			t.Fatalf("learner %d after-unsubscribe = %v", i, got)
		}
	}
	for _, node := range nodes {
		if _, ok := node.Process(2); ok {
			t.Fatal("ring 2 process still registered")
		}
	}
}
