package multiring

import (
	"sort"
	"sync"

	"mrp/internal/msg"
	"mrp/internal/ringpaxos"
)

// Delivery is one atomically multicast message (or skip marker) handed to
// the application in the global deterministic-merge order.
//
// Batched instances are unpacked into one Delivery per entry; the last
// entry of an instance has EndOfInstance set, which is when a replica may
// advance its checkpoint tuple entry for the ring (Section 5.2: a
// checkpoint identified by tuple k_p reflects commands decided up to
// k[x]_p for each group x).
type Delivery struct {
	Ring          msg.RingID
	Instance      msg.Instance
	Skip          bool
	SkipTo        msg.Instance // exclusive upper bound of skipped range
	Entry         msg.Entry    // valid when !Skip
	EndOfInstance bool
}

// DecisionSource is what the learner consumes: an ordered, gap-free
// stream of decided instances for one ring. *ringpaxos.Process implements
// it; tests may substitute replayed streams.
type DecisionSource interface {
	Ring() msg.RingID
	Decisions() <-chan ringpaxos.Decided
}

// Activation names the logical point in the merged stream at which a
// subscription change takes effect: the first merge-round boundary after
// the learner has consumed instance Instance of ring Ring. Because the
// consumed frontier is a pure function of the delivered sequence, every
// learner that requests the same change with the same Activation splices
// the ring in (or out) at exactly the same position of the global order —
// even when the trigger instance is covered by a skip range (the frontier
// jumps over it, "skip-aligned" activation).
//
// The zero Activation (Ring == 0) takes effect at the next round boundary.
// That is only deterministic across learners if they cannot have diverged
// yet (e.g. a freshly built learner that has consumed nothing). For a
// running group of learners, callers must pick a trigger instance that no
// learner has consumed at request time — the rebalance coordinator does
// this by using the instance that decided the change command itself.
type Activation struct {
	Ring     msg.RingID
	Instance msg.Instance
}

// subChange is a pending Subscribe/Unsubscribe applied at round boundaries.
type subChange struct {
	src   DecisionSource // nil for unsubscribe
	ring  msg.RingID
	after Activation
}

// Learner merges the decision streams of the rings a node subscribes to
// using the paper's deterministic merge: rings are visited round-robin in
// ascending ring-identifier order, consuming M consensus instances from
// each before moving to the next. All learners subscribed to the same set
// of rings therefore deliver the exact same global sequence, which is what
// makes Multi-Ring Paxos an atomic multicast rather than a bundle of
// independent broadcasts.
//
// Subscriptions are dynamic: Subscribe and Unsubscribe splice a ring into
// or out of the rotation at an agreed Activation point, which is how a
// running deployment grows onto new rings (Section 5 of the paper: servers
// subscribe to any groups they are interested in).
//
// The merge deliberately blocks on a ring with no decided instances —
// replicas advance at the pace of the slowest subscribed group — which is
// why coordinators run rate leveling (skip instances) on idle rings.
type Learner struct {
	m   int
	out chan Delivery

	mu      sync.Mutex
	sources []DecisionSource // active set, owned by run(); mu guards Rings()
	pending []subChange
	// pub is the published copy of the merge's consumed frontier,
	// refreshed at round boundaries; Frontier() reads it. The merge's own
	// frontier map stays goroutine-local — determinism does not depend on
	// this copy, it only serves observers (lease catch-up waits, stats).
	pub  map[msg.RingID]msg.Instance
	kick chan struct{}

	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
}

// NewLearner creates a deterministic-merge learner over the given ring
// decision sources (typically ring processes the node is a learner member
// of); it may start empty and be populated with Subscribe. M is the number
// of consensus instances consumed per ring per round-robin turn (the
// paper's local experiments use M=1).
func NewLearner(m int, procs ...DecisionSource) *Learner {
	if m <= 0 {
		m = 1
	}
	sources := append([]DecisionSource(nil), procs...)
	sort.Slice(sources, func(i, j int) bool { return sources[i].Ring() < sources[j].Ring() })
	return &Learner{
		m:       m,
		sources: sources,
		out:     make(chan Delivery, 8192),
		pub:     make(map[msg.RingID]msg.Instance),
		kick:    make(chan struct{}, 1),
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
	}
}

// Deliveries returns the merged delivery stream.
func (l *Learner) Deliveries() <-chan Delivery { return l.out }

// Rings returns the currently active ring identifiers in merge order.
func (l *Learner) Rings() []msg.RingID {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]msg.RingID, len(l.sources))
	for i, s := range l.sources {
		out[i] = s.Ring()
	}
	return out
}

// Frontier returns the merge's consumed frontier — per subscribed ring,
// the highest instance the deterministic merge has taken in (inclusive;
// skip ranges advance it), as of the last round boundary. This is the
// applied-frontier position lease machinery and recovery waits observe:
// everything at or below it has been emitted toward the replica (though
// the replica may still be draining the pipeline). Ordered by ring ID.
func (l *Learner) Frontier() []msg.RingInstance {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]msg.RingInstance, 0, len(l.pub))
	for ring, inst := range l.pub {
		out = append(out, msg.RingInstance{Ring: ring, Instance: inst})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Ring < out[j].Ring })
	return out
}

// Subscribe splices src into the deterministic merge once the Activation
// point is reached (see Activation for the determinism contract). It may be
// called before or after Start, and on a learner that currently has no
// sources.
func (l *Learner) Subscribe(src DecisionSource, after Activation) {
	l.enqueue(subChange{src: src, ring: src.Ring(), after: after})
}

// Unsubscribe removes the ring from the merge once the Activation point is
// reached. Instances of the ring already consumed are still delivered;
// nothing is consumed from it afterwards.
func (l *Learner) Unsubscribe(ring msg.RingID, after Activation) {
	l.enqueue(subChange{ring: ring, after: after})
}

func (l *Learner) enqueue(c subChange) {
	l.mu.Lock()
	l.pending = append(l.pending, c)
	l.mu.Unlock()
	select {
	case l.kick <- struct{}{}:
	default:
	}
}

// Start launches the merge goroutine.
func (l *Learner) Start() {
	go l.run()
}

// Stop terminates the merge.
func (l *Learner) Stop() {
	l.stopOnce.Do(func() { close(l.stop) })
	<-l.done
}

// run is the deterministic merge (Algorithm 1): every learner subscribed
// to the same rings with the same M consumes decisions in the same
// round-robin order, so the delivery sequence — the input to every
// replica's state machine — is identical across the group. The merge loop
// runs once per delivered instance, so it is also a hot-path scope root.
//
//mrp:deterministic
//mrp:hotpath
func (l *Learner) run() {
	defer close(l.done)
	// frontier[r] is the highest instance of ring r the merge has consumed
	// (inclusive; skips advance it to SkipTo-1). carry[r] counts instances
	// ring r over-consumed in earlier turns (a single skip decision can
	// cover many instances).
	frontier := make(map[msg.RingID]msg.Instance) //mrp:alloc — once per learner lifetime, before the merge loop starts
	carry := make(map[msg.RingID]uint64)          //mrp:alloc — once per learner lifetime, before the merge loop starts
	for {
		l.applyPending(frontier, carry)
		// l.sources is mutated only by applyPending, on this goroutine, so
		// the rotation can be walked without copying it per round (the
		// mutex only orders those writes with Rings()'s reads).
		if len(l.sources) == 0 {
			select {
			case <-l.kick:
				continue
			case <-l.stop:
				return
			}
		}
		for _, src := range l.sources {
			ring := src.Ring()
			quota := uint64(l.m)
			if carry[ring] >= quota {
				carry[ring] -= quota
				continue
			}
			quota -= carry[ring]
			carry[ring] = 0
			for quota > 0 {
				var d ringpaxos.Decided
				select {
				case d = <-src.Decisions():
				case <-l.stop:
					return
				}
				consumed := uint64(1)
				if d.Value.Skip && d.Value.SkipTo > d.Instance {
					consumed = uint64(d.Value.SkipTo - d.Instance)
					if frontier[ring] < d.Value.SkipTo-1 {
						frontier[ring] = d.Value.SkipTo - 1
					}
					if !l.emit(Delivery{
						Ring:          d.Ring,
						Instance:      d.Instance,
						Skip:          true,
						SkipTo:        d.Value.SkipTo,
						EndOfInstance: true,
					}) {
						return
					}
				} else {
					if frontier[ring] < d.Instance {
						frontier[ring] = d.Instance
					}
					for k := range d.Value.Batch {
						if !l.emit(Delivery{
							Ring:          d.Ring,
							Instance:      d.Instance,
							Entry:         d.Value.Batch[k],
							EndOfInstance: k == len(d.Value.Batch)-1,
						}) {
							return
						}
					}
					if len(d.Value.Batch) == 0 {
						// An empty decided value (e.g. single-instance skip)
						// still consumes its instance slot.
						if !l.emit(Delivery{
							Ring:          d.Ring,
							Instance:      d.Instance,
							Skip:          true,
							SkipTo:        d.Instance + 1,
							EndOfInstance: true,
						}) {
							return
						}
					}
				}
				if consumed >= quota {
					carry[ring] = consumed - quota
					quota = 0
				} else {
					quota -= consumed
				}
			}
		}
	}
}

// applyPending activates subscription changes whose trigger instance has
// been consumed. It runs only at round boundaries, so every learner that
// issued the same requests mutates its rotation at the same position of
// the merged sequence — and reconfigurations are rare, so the hot-path
// allocation discipline stops here.
//
//mrp:coldpath
func (l *Learner) applyPending(frontier map[msg.RingID]msg.Instance, carry map[msg.RingID]uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	// Publish the consumed frontier for Frontier() readers while the lock
	// is held anyway (once per merge round, into a reused map).
	for ring, inst := range frontier {
		l.pub[ring] = inst
	}
	if len(l.pending) == 0 {
		return
	}
	var remain []subChange
	for _, c := range l.pending {
		if c.after.Ring != 0 && frontier[c.after.Ring] < c.after.Instance {
			remain = append(remain, c)
			continue
		}
		if c.src != nil {
			replaced := false
			for i, s := range l.sources {
				if s.Ring() == c.ring {
					l.sources[i] = c.src
					replaced = true
					break
				}
			}
			if !replaced {
				l.sources = append(l.sources, c.src)
				sort.Slice(l.sources, func(i, j int) bool {
					return l.sources[i].Ring() < l.sources[j].Ring()
				})
			}
		} else {
			for i, s := range l.sources {
				if s.Ring() == c.ring {
					l.sources = append(l.sources[:i], l.sources[i+1:]...)
					break
				}
			}
			delete(frontier, c.ring)
			delete(carry, c.ring)
			delete(l.pub, c.ring)
		}
	}
	l.pending = remain
}

func (l *Learner) emit(d Delivery) bool {
	select {
	case l.out <- d:
		return true
	case <-l.stop:
		return false
	}
}
