package multiring

import (
	"sort"
	"sync"

	"mrp/internal/msg"
	"mrp/internal/ringpaxos"
)

// Delivery is one atomically multicast message (or skip marker) handed to
// the application in the global deterministic-merge order.
//
// Batched instances are unpacked into one Delivery per entry; the last
// entry of an instance has EndOfInstance set, which is when a replica may
// advance its checkpoint tuple entry for the ring (Section 5.2: a
// checkpoint identified by tuple k_p reflects commands decided up to
// k[x]_p for each group x).
type Delivery struct {
	Ring          msg.RingID
	Instance      msg.Instance
	Skip          bool
	SkipTo        msg.Instance // exclusive upper bound of skipped range
	Entry         msg.Entry    // valid when !Skip
	EndOfInstance bool
}

// DecisionSource is what the learner consumes: an ordered, gap-free
// stream of decided instances for one ring. *ringpaxos.Process implements
// it; tests may substitute replayed streams.
type DecisionSource interface {
	Ring() msg.RingID
	Decisions() <-chan ringpaxos.Decided
}

// Learner merges the decision streams of the rings a node subscribes to
// using the paper's deterministic merge: rings are visited round-robin in
// ascending ring-identifier order, consuming M consensus instances from
// each before moving to the next. All learners subscribed to the same set
// of rings therefore deliver the exact same global sequence, which is what
// makes Multi-Ring Paxos an atomic multicast rather than a bundle of
// independent broadcasts.
//
// The merge deliberately blocks on a ring with no decided instances —
// replicas advance at the pace of the slowest subscribed group — which is
// why coordinators run rate leveling (skip instances) on idle rings.
type Learner struct {
	m       int
	sources []DecisionSource
	out     chan Delivery

	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
}

// NewLearner creates a deterministic-merge learner over the given ring
// decision sources (typically ring processes the node is a learner member
// of). M is the number of consensus instances consumed per ring per
// round-robin turn (the paper's local experiments use M=1).
func NewLearner(m int, procs ...DecisionSource) *Learner {
	if m <= 0 {
		m = 1
	}
	sources := append([]DecisionSource(nil), procs...)
	sort.Slice(sources, func(i, j int) bool { return sources[i].Ring() < sources[j].Ring() })
	return &Learner{
		m:       m,
		sources: sources,
		out:     make(chan Delivery, 8192),
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
	}
}

// Deliveries returns the merged delivery stream.
func (l *Learner) Deliveries() <-chan Delivery { return l.out }

// Rings returns the subscribed ring identifiers in merge order.
func (l *Learner) Rings() []msg.RingID {
	out := make([]msg.RingID, len(l.sources))
	for i, s := range l.sources {
		out[i] = s.Ring()
	}
	return out
}

// Start launches the merge goroutine.
func (l *Learner) Start() {
	go l.run()
}

// Stop terminates the merge.
func (l *Learner) Stop() {
	l.stopOnce.Do(func() { close(l.stop) })
	<-l.done
}

func (l *Learner) run() {
	defer close(l.done)
	if len(l.sources) == 0 {
		<-l.stop
		return
	}
	// carry[i] counts instances ring i over-consumed in earlier turns
	// (a single skip decision can cover many instances).
	carry := make([]uint64, len(l.sources))
	for {
		for i, src := range l.sources {
			quota := uint64(l.m)
			if carry[i] >= quota {
				carry[i] -= quota
				continue
			}
			quota -= carry[i]
			carry[i] = 0
			for quota > 0 {
				var d ringpaxos.Decided
				select {
				case d = <-src.Decisions():
				case <-l.stop:
					return
				}
				consumed := uint64(1)
				if d.Value.Skip && d.Value.SkipTo > d.Instance {
					consumed = uint64(d.Value.SkipTo - d.Instance)
					if !l.emit(Delivery{
						Ring:          d.Ring,
						Instance:      d.Instance,
						Skip:          true,
						SkipTo:        d.Value.SkipTo,
						EndOfInstance: true,
					}) {
						return
					}
				} else {
					for k := range d.Value.Batch {
						if !l.emit(Delivery{
							Ring:          d.Ring,
							Instance:      d.Instance,
							Entry:         d.Value.Batch[k],
							EndOfInstance: k == len(d.Value.Batch)-1,
						}) {
							return
						}
					}
					if len(d.Value.Batch) == 0 {
						// An empty decided value (e.g. single-instance skip)
						// still consumes its instance slot.
						if !l.emit(Delivery{
							Ring:          d.Ring,
							Instance:      d.Instance,
							Skip:          true,
							SkipTo:        d.Instance + 1,
							EndOfInstance: true,
						}) {
							return
						}
					}
				}
				if consumed >= quota {
					carry[i] = consumed - quota
					quota = 0
				} else {
					quota -= consumed
				}
			}
		}
	}
}

func (l *Learner) emit(d Delivery) bool {
	select {
	case l.out <- d:
		return true
	case <-l.stop:
		return false
	}
}
