package multiring

import (
	"fmt"
	"strconv"
	"sync"

	"mrp/internal/msg"
	"mrp/internal/registry"
)

// Manager connects a node to the coordination service (the paper uses
// Zookeeper, Section 7.1): it advertises the node's liveness with ephemeral
// nodes, enrolls its acceptors in per-ring coordinator elections, and
// reacts to membership changes by healing ring overlays (SetPeerDown) and
// promoting the elected coordinator (BecomeCoordinator).
type Manager struct {
	reg  *registry.Registry
	node *Node
	sess *registry.Session

	mu        sync.Mutex
	elections map[msg.RingID]*registry.Election
	wasLeader map[msg.RingID]bool

	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
}

// memberPath is the ephemeral liveness node for one ring member.
func memberPath(ring msg.RingID, id msg.NodeID) string {
	return fmt.Sprintf("/rings/%d/members/%d", ring, id)
}

func electionPrefix(ring msg.RingID) string {
	return fmt.Sprintf("/rings/%d/coordinator", ring)
}

// NewManager creates a manager for the node backed by the registry. Call
// Start after the node's rings are joined (before or after Node.Start).
func NewManager(reg *registry.Registry, node *Node) *Manager {
	return &Manager{
		reg:       reg,
		node:      node,
		sess:      reg.NewSession(),
		elections: make(map[msg.RingID]*registry.Election),
		wasLeader: make(map[msg.RingID]bool),
		stop:      make(chan struct{}),
		done:      make(chan struct{}),
	}
}

// Start advertises liveness, enrolls in elections, and begins watching.
func (m *Manager) Start() {
	events := m.reg.WatchPrefix("/rings/")
	for _, ring := range m.node.Rings() {
		m.sess.CreateEphemeral(memberPath(ring, m.node.ID()), []byte(strconv.Itoa(int(m.node.ID()))))
		e := m.reg.NewElection(electionPrefix(ring))
		e.Enroll(m.sess, strconv.Itoa(int(m.node.ID())))
		m.mu.Lock()
		m.elections[ring] = e
		m.mu.Unlock()
	}
	go m.run(events)
}

// Stop expires the manager's session (peers observe the node's death) and
// stops watching.
func (m *Manager) Stop() {
	m.stopOnce.Do(func() {
		m.sess.Close()
		close(m.stop)
	})
	<-m.done
}

func (m *Manager) run(events <-chan registry.Event) {
	defer close(m.done)
	m.react()
	for {
		select {
		case <-events:
			m.react()
		case <-m.stop:
			return
		}
	}
}

// react re-reads registry state: marks dead members down in every joined
// ring and promotes this node where it now leads the election.
func (m *Manager) react() {
	for _, ring := range m.node.Rings() {
		proc, ok := m.node.Process(ring)
		if !ok {
			continue
		}
		alive := make(map[msg.NodeID]bool)
		for _, path := range m.reg.Children(fmt.Sprintf("/rings/%d/members/", ring)) {
			data, _, ok := m.reg.Get(path)
			if !ok {
				continue
			}
			if id, err := strconv.Atoi(string(data)); err == nil {
				alive[msg.NodeID(id)] = true
			}
		}
		// A configured member that is not advertising liveness is down.
		for _, peer := range m.peersOf(ring) {
			if peer == m.node.ID() {
				continue
			}
			proc.SetPeerDown(peer, !alive[peer])
		}
		m.mu.Lock()
		e := m.elections[ring]
		was := m.wasLeader[ring]
		m.mu.Unlock()
		if e == nil {
			continue
		}
		leader, ok := e.Leader()
		if !ok {
			continue
		}
		isSelf := leader == strconv.Itoa(int(m.node.ID()))
		if isSelf && !was {
			proc.BecomeCoordinator()
		}
		m.mu.Lock()
		m.wasLeader[ring] = isSelf
		m.mu.Unlock()
	}
}

// peersOf lists the configured member IDs of a ring; the registry only
// reports liveness, membership comes from the joined ring configuration.
func (m *Manager) peersOf(ring msg.RingID) []msg.NodeID {
	return m.node.ringPeers(ring)
}

// ringPeers returns the configured peer IDs of a joined ring.
func (n *Node) ringPeers(ring msg.RingID) []msg.NodeID {
	n.mu.Lock()
	defer n.mu.Unlock()
	p, ok := n.peersByRing[ring]
	if !ok {
		return nil
	}
	return p
}
