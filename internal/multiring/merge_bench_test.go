package multiring

import (
	"testing"

	"mrp/internal/msg"
	"mrp/internal/ringpaxos"
)

// BenchmarkLearnerMerge measures the deterministic merge's per-delivery
// cost on the steady-state path: two subscribed rings, one single-entry
// instance consumed per turn. Run with -benchmem; docs/ARCHITECTURE.md
// records the allocation sweep's before/after.

// benchSource is a DecisionSource fed by the benchmark.
type benchSource struct {
	ring msg.RingID
	ch   chan ringpaxos.Decided
}

func (s *benchSource) Ring() msg.RingID                    { return s.ring }
func (s *benchSource) Decisions() <-chan ringpaxos.Decided { return s.ch }

func BenchmarkLearnerMerge(b *testing.B) {
	srcs := []*benchSource{
		{ring: 1, ch: make(chan ringpaxos.Decided, 1024)},
		{ring: 2, ch: make(chan ringpaxos.Decided, 1024)},
	}
	l := NewLearner(1, srcs[0], srcs[1])
	l.Start()
	defer l.Stop()

	stop := make(chan struct{})
	defer close(stop)
	for _, s := range srcs {
		go func(s *benchSource) {
			entry := []msg.Entry{{Proposer: 1, Seq: 1, Data: []byte("op")}}
			for inst := msg.Instance(1); ; inst++ {
				select {
				case s.ch <- ringpaxos.Decided{Ring: s.ring, Instance: inst, Value: msg.Value{Batch: entry}}:
				case <-stop:
					return
				}
			}
		}(s)
	}

	out := l.Deliveries()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		<-out
	}
}
