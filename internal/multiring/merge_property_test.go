package multiring

import (
	"fmt"
	"testing"
	"testing/quick"
	"time"

	"mrp/internal/msg"
	"mrp/internal/ringpaxos"
)

// replaySource is a DecisionSource replaying a fixed decided stream.
type replaySource struct {
	ring msg.RingID
	ch   chan ringpaxos.Decided
}

func newReplaySource(ring msg.RingID, seq []ringpaxos.Decided) *replaySource {
	ch := make(chan ringpaxos.Decided, len(seq))
	for _, d := range seq {
		ch <- d
	}
	return &replaySource{ring: ring, ch: ch}
}

func (r *replaySource) Ring() msg.RingID                    { return r.ring }
func (r *replaySource) Decisions() <-chan ringpaxos.Decided { return r.ch }

// TestMergeDeterminismProperty: two learners over identical replayed ring
// streams produce identical delivery sequences for any stream content and
// any M — the deterministic merge is a pure function of its inputs.
func TestMergeDeterminismProperty(t *testing.T) {
	f := func(seed1, seed2 []byte, mRaw uint8) bool {
		m := int(mRaw%3) + 1
		run := func() []string {
			l := NewLearner(m,
				newReplaySource(1, decidedSeq(1, seed1)),
				newReplaySource(2, decidedSeq(2, seed2)))
			l.Start()
			defer l.Stop()
			var out []string
			for {
				select {
				case d := <-l.Deliveries():
					if !d.Skip {
						out = append(out, string(d.Entry.Data))
					}
				case <-time.After(50 * time.Millisecond):
					return out
				}
			}
		}
		a, b := run(), run()
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestMergeRoundRobinOrderExact pins the merge order for a known input:
// with M=1 the learner alternates ring 1, ring 2, consuming skip credit
// where a range covers multiple turns.
func TestMergeRoundRobinOrderExact(t *testing.T) {
	seq1 := []ringpaxos.Decided{
		payload(1, 1, "a1"),
		payload(1, 2, "a2"),
		payload(1, 3, "a3"),
	}
	seq2 := []ringpaxos.Decided{
		{Ring: 2, Instance: 1, Value: msg.Value{Skip: true, SkipTo: 3}}, // covers 2 turns
		payload(2, 3, "b3"),
	}
	l := NewLearner(1, newReplaySource(1, seq1), newReplaySource(2, seq2))
	l.Start()
	defer l.Stop()
	var got []string
	for len(got) < 4 {
		select {
		case d := <-l.Deliveries():
			if !d.Skip {
				got = append(got, string(d.Entry.Data))
			}
		case <-time.After(2 * time.Second):
			t.Fatalf("timeout; got %v", got)
		}
	}
	want := []string{"a1", "a2", "a3", "b3"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("merge order = %v, want %v", got, want)
		}
	}
}

func payload(ring msg.RingID, inst msg.Instance, data string) ringpaxos.Decided {
	return ringpaxos.Decided{
		Ring: ring, Instance: inst,
		Value: msg.Value{Batch: []msg.Entry{{
			Proposer: msg.NodeID(ring), Seq: uint64(inst), Data: []byte(data),
		}}},
	}
}

// decidedSeq turns random bytes into a gap-free decided stream: each byte
// becomes either a payload instance or a short skip range.
func decidedSeq(ring msg.RingID, seed []byte) []ringpaxos.Decided {
	var out []ringpaxos.Decided
	inst := msg.Instance(1)
	for i, b := range seed {
		if i >= 12 {
			break
		}
		if b%4 == 0 {
			width := msg.Instance(b%7) + 2
			out = append(out, ringpaxos.Decided{
				Ring: ring, Instance: inst,
				Value: msg.Value{Skip: true, SkipTo: inst + width},
			})
			inst += width
			continue
		}
		out = append(out, payload(ring, inst, fmt.Sprintf("r%d-i%d-%d", ring, inst, b)))
		inst++
	}
	return out
}
