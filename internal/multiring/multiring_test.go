package multiring

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"mrp/internal/msg"
	"mrp/internal/netsim"
	"mrp/internal/registry"
	"mrp/internal/ringpaxos"
	"mrp/internal/storage"
	"mrp/internal/transport"
)

// cluster builds nNodes nodes that are all members (proposer+acceptor+
// learner) of every ring in rings, over one simulated network.
type cluster struct {
	t     *testing.T
	net   *netsim.Network
	nodes []*Node
	reg   *registry.Registry
	mgrs  []*Manager
}

func ringPeers(rings []msg.RingID, nNodes int) map[msg.RingID][]ringpaxos.Peer {
	out := make(map[msg.RingID][]ringpaxos.Peer)
	for _, r := range rings {
		peers := make([]ringpaxos.Peer, nNodes)
		for i := 0; i < nNodes; i++ {
			peers[i] = ringpaxos.Peer{
				ID:    msg.NodeID(i + 1),
				Addr:  transport.Addr(fmt.Sprintf("node-%d", i)),
				Roles: ringpaxos.RoleProposer | ringpaxos.RoleAcceptor | ringpaxos.RoleLearner,
			}
		}
		out[r] = peers
	}
	return out
}

func newCluster(t *testing.T, nNodes int, rings []msg.RingID, mutate func(ring msg.RingID, c *ringpaxos.Config)) *cluster {
	t.Helper()
	net := netsim.New(netsim.WithUniformLatency(20 * time.Microsecond))
	c := &cluster{t: t, net: net, reg: registry.New()}
	peers := ringPeers(rings, nNodes)
	for i := 0; i < nNodes; i++ {
		ep := net.Endpoint(transport.Addr(fmt.Sprintf("node-%d", i)))
		node := NewNode(msg.NodeID(i+1), ep)
		for _, r := range rings {
			cfg := ringpaxos.Config{
				Ring:         r,
				Peers:        peers[r],
				Coordinator:  peers[r][0].ID,
				Log:          storage.NewLog(storage.InMemory),
				BatchDelay:   time.Millisecond,
				RetryTimeout: 50 * time.Millisecond,
			}
			if mutate != nil {
				mutate(r, &cfg)
			}
			if _, err := node.Join(cfg); err != nil {
				t.Fatal(err)
			}
		}
		c.nodes = append(c.nodes, node)
	}
	for _, n := range c.nodes {
		n.Start()
	}
	t.Cleanup(func() {
		for _, m := range c.mgrs {
			m.Stop()
		}
		for _, n := range c.nodes {
			n.Stop()
		}
		net.Close()
	})
	return c
}

// learnerFor builds a deterministic-merge learner at node i over the given
// rings.
func (c *cluster) learnerFor(i int, m int, rings ...msg.RingID) *Learner {
	c.t.Helper()
	var procs []DecisionSource
	for _, r := range rings {
		p, ok := c.nodes[i].Process(r)
		if !ok {
			c.t.Fatalf("node %d not in ring %d", i, r)
		}
		procs = append(procs, p)
	}
	l := NewLearner(m, procs...)
	l.Start()
	c.t.Cleanup(l.Stop)
	return l
}

// collectPayloads drains a learner until n non-skip deliveries arrive.
func collectPayloads(t *testing.T, l *Learner, n int, timeout time.Duration) []string {
	t.Helper()
	var out []string
	deadline := time.After(timeout)
	for len(out) < n {
		select {
		case d := <-l.Deliveries():
			if !d.Skip {
				out = append(out, string(d.Entry.Data))
			}
		case <-deadline:
			t.Fatalf("timeout: got %d/%d deliveries", len(out), n)
		}
	}
	return out
}

func TestMulticastSingleGroup(t *testing.T) {
	c := newCluster(t, 3, []msg.RingID{1}, nil)
	l := c.learnerFor(2, 1, 1)
	if err := c.nodes[0].Multicast(1, []byte("m1")); err != nil {
		t.Fatal(err)
	}
	got := collectPayloads(t, l, 1, 5*time.Second)
	if got[0] != "m1" {
		t.Fatalf("delivered %q", got[0])
	}
}

func TestMulticastUnknownGroupFails(t *testing.T) {
	c := newCluster(t, 3, []msg.RingID{1}, nil)
	if err := c.nodes[0].Multicast(9, []byte("x")); err == nil {
		t.Fatal("multicast to unjoined group should fail")
	}
}

// TestDeterministicMergeIdenticalOrder is the core atomic multicast
// property across groups: two learners subscribed to the same two rings
// must deliver the exact same merged sequence.
func TestDeterministicMergeIdenticalOrder(t *testing.T) {
	c := newCluster(t, 3, []msg.RingID{1, 2}, func(_ msg.RingID, cfg *ringpaxos.Config) {
		cfg.SkipInterval = 5 * time.Millisecond
		cfg.SkipRate = 50
	})
	l1 := c.learnerFor(1, 1, 1, 2)
	l2 := c.learnerFor(2, 1, 1, 2)
	const total = 120
	for k := 0; k < total; k++ {
		ring := msg.RingID(k%2 + 1)
		if err := c.nodes[k%3].Multicast(ring, []byte(fmt.Sprintf("g%d-%03d", ring, k))); err != nil {
			t.Fatal(err)
		}
	}
	got1 := collectPayloads(t, l1, total, 20*time.Second)
	got2 := collectPayloads(t, l2, total, 20*time.Second)
	for i := range got1 {
		if got1[i] != got2[i] {
			t.Fatalf("merge divergence at %d: %q vs %q", i, got1[i], got2[i])
		}
	}
}

// TestPartialSubscription reproduces Figure 2(c): learners L1, L2 subscribe
// to rings 1 and 2; learner L3 subscribes only to ring 2. L3 must deliver
// exactly the ring-2 messages, in the same relative order L1/L2 deliver
// them.
func TestPartialSubscription(t *testing.T) {
	c := newCluster(t, 3, []msg.RingID{1, 2}, func(_ msg.RingID, cfg *ringpaxos.Config) {
		cfg.SkipInterval = 5 * time.Millisecond
		cfg.SkipRate = 50
	})
	l12 := c.learnerFor(0, 1, 1, 2)
	l2only := c.learnerFor(2, 1, 2)
	const perRing = 30
	for k := 0; k < perRing; k++ {
		if err := c.nodes[0].Multicast(1, []byte(fmt.Sprintf("r1-%03d", k))); err != nil {
			t.Fatal(err)
		}
		if err := c.nodes[1].Multicast(2, []byte(fmt.Sprintf("r2-%03d", k))); err != nil {
			t.Fatal(err)
		}
	}
	all := collectPayloads(t, l12, 2*perRing, 20*time.Second)
	only2 := collectPayloads(t, l2only, perRing, 20*time.Second)
	// Filter ring-2 messages from the full merge; relative order must match.
	var filtered []string
	for _, v := range all {
		if v[:2] == "r2" {
			filtered = append(filtered, v)
		}
	}
	if len(filtered) != perRing {
		t.Fatalf("ring-2 messages in merge = %d", len(filtered))
	}
	for i := range filtered {
		if filtered[i] != only2[i] {
			t.Fatalf("relative order violation at %d: %q vs %q", i, filtered[i], only2[i])
		}
	}
}

// TestRateLevelingUnblocksIdleRing: with ring 2 idle, the merge of a
// subscriber to both rings must still advance thanks to skip instances.
func TestRateLevelingUnblocksIdleRing(t *testing.T) {
	c := newCluster(t, 3, []msg.RingID{1, 2}, func(_ msg.RingID, cfg *ringpaxos.Config) {
		cfg.SkipInterval = 5 * time.Millisecond
		cfg.SkipRate = 20
	})
	l := c.learnerFor(1, 1, 1, 2)
	const total = 40
	for k := 0; k < total; k++ {
		if err := c.nodes[0].Multicast(1, []byte(fmt.Sprintf("busy-%03d", k))); err != nil {
			t.Fatal(err)
		}
	}
	got := collectPayloads(t, l, total, 20*time.Second)
	for k := 0; k < total; k++ {
		if got[k] != fmt.Sprintf("busy-%03d", k) {
			t.Fatalf("position %d = %q", k, got[k])
		}
	}
}

// TestMergeStallsWithoutRateLeveling is the negative control (the ablation
// DESIGN.md calls out): without skips, a learner of two rings cannot
// advance past M instances while one ring is idle.
func TestMergeStallsWithoutRateLeveling(t *testing.T) {
	c := newCluster(t, 3, []msg.RingID{1, 2}, nil) // no SkipInterval
	l := c.learnerFor(1, 1, 1, 2)
	for k := 0; k < 10; k++ {
		if err := c.nodes[0].Multicast(1, []byte(fmt.Sprintf("stuck-%d", k))); err != nil {
			t.Fatal(err)
		}
	}
	// Ring 1's first instance can be consumed (it is ring 1's turn first),
	// but the merge must then block on idle ring 2.
	var got []string
	timeout := time.After(300 * time.Millisecond)
drain:
	for {
		select {
		case d := <-l.Deliveries():
			if !d.Skip {
				got = append(got, string(d.Entry.Data))
			}
		case <-timeout:
			break drain
		}
	}
	if len(got) >= 10 {
		t.Fatalf("merge delivered all %d messages despite idle ring 2", len(got))
	}
	// Unblock by multicasting to ring 2; everything must now flow.
	for k := 0; k < 10; k++ {
		if err := c.nodes[0].Multicast(2, []byte(fmt.Sprintf("unblock-%d", k))); err != nil {
			t.Fatal(err)
		}
	}
	rest := collectPayloads(t, l, 20-len(got), 10*time.Second)
	if len(got)+len(rest) != 20 {
		t.Fatalf("total = %d", len(got)+len(rest))
	}
}

// TestMergeQuotaM verifies the merge consumes M instances per ring per
// turn: with M=2 and batching disabled, deliveries alternate in pairs.
func TestMergeQuotaM(t *testing.T) {
	c := newCluster(t, 3, []msg.RingID{1, 2}, nil)
	l := c.learnerFor(1, 2, 1, 2)
	const perRing = 8
	// Pre-load both rings before reading anything.
	for k := 0; k < perRing; k++ {
		if err := c.nodes[0].Multicast(1, []byte(fmt.Sprintf("a%d", k))); err != nil {
			t.Fatal(err)
		}
		if err := c.nodes[0].Multicast(2, []byte(fmt.Sprintf("b%d", k))); err != nil {
			t.Fatal(err)
		}
	}
	var rings []msg.RingID
	deadline := time.After(10 * time.Second)
	for len(rings) < 2*perRing {
		select {
		case d := <-l.Deliveries():
			if !d.Skip {
				rings = append(rings, d.Ring)
			}
		case <-deadline:
			t.Fatalf("timeout: %d deliveries", len(rings))
		}
	}
	// Expected pattern with M=2: 1,1,2,2,1,1,2,2,...
	for i, r := range rings {
		want := msg.RingID(1)
		if (i/2)%2 == 1 {
			want = 2
		}
		if r != want {
			t.Fatalf("delivery %d from ring %d, want %d (pattern %v)", i, r, want, rings)
		}
	}
}

func TestEndOfInstanceMarks(t *testing.T) {
	c := newCluster(t, 3, []msg.RingID{1}, func(_ msg.RingID, cfg *ringpaxos.Config) {
		cfg.BatchMaxBytes = 1 << 20
		cfg.BatchDelay = 20 * time.Millisecond
	})
	l := c.learnerFor(1, 1, 1)
	for k := 0; k < 5; k++ {
		if err := c.nodes[0].Multicast(1, []byte{byte(k)}); err != nil {
			t.Fatal(err)
		}
	}
	seen := 0
	var lastEnd bool
	deadline := time.After(5 * time.Second)
	for seen < 5 {
		select {
		case d := <-l.Deliveries():
			if d.Skip {
				continue
			}
			seen++
			lastEnd = d.EndOfInstance
		case <-deadline:
			t.Fatal("timeout")
		}
	}
	if !lastEnd {
		t.Fatal("final delivery of an instance must carry EndOfInstance")
	}
}

// TestManagerFailover drives a coordinator crash entirely through the
// coordination service: the session expires, survivors heal the ring and
// the next elected node takes over coordination.
func TestManagerFailover(t *testing.T) {
	c := newCluster(t, 3, []msg.RingID{1}, func(_ msg.RingID, cfg *ringpaxos.Config) {
		cfg.RetryTimeout = 30 * time.Millisecond
	})
	// Managers enroll in node order, so node 0 (the configured coordinator)
	// leads the election initially.
	for _, n := range c.nodes {
		m := NewManager(c.reg, n)
		m.Start()
		c.mgrs = append(c.mgrs, m)
	}
	l := c.learnerFor(2, 1, 1)
	for k := 0; k < 5; k++ {
		if err := c.nodes[0].Multicast(1, []byte(fmt.Sprintf("pre-%d", k))); err != nil {
			t.Fatal(err)
		}
	}
	pre := collectPayloads(t, l, 5, 5*time.Second)

	// Crash node 0: manager session expires first (failure detection),
	// then the node goes down.
	c.mgrs[0].Stop()
	c.nodes[0].Stop()

	// Survivors should elect node 1 and continue.
	var okAfter bool
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if err := c.nodes[1].Multicast(1, []byte("post")); err != nil {
			t.Fatal(err)
		}
		select {
		case d := <-l.Deliveries():
			if !d.Skip && string(d.Entry.Data) == "post" {
				okAfter = true
			}
		case <-time.After(300 * time.Millisecond):
		}
		if okAfter {
			break
		}
	}
	if !okAfter {
		t.Fatal("no delivery after coordinator failover")
	}
	_ = pre
}

func TestNodeJoinErrors(t *testing.T) {
	net := netsim.New()
	defer net.Close()
	node := NewNode(1, net.Endpoint("n"))
	peers := []ringpaxos.Peer{{ID: 1, Addr: "n", Roles: ringpaxos.RoleAcceptor | ringpaxos.RoleLearner}}
	cfg := ringpaxos.Config{Ring: 1, Peers: peers, Coordinator: 1, Log: storage.NewLog(storage.InMemory)}
	if _, err := node.Join(cfg); err != nil {
		t.Fatal(err)
	}
	if _, err := node.Join(cfg); err == nil {
		t.Fatal("duplicate join should fail")
	}
	node.Start()
	// Joining after start is allowed (recovery flow) and starts the process.
	cfg.Ring = 2
	if _, err := node.Join(cfg); err != nil {
		t.Fatalf("join after start: %v", err)
	}
	node.Stop()
	cfg.Ring = 3
	if _, err := node.Join(cfg); err == nil {
		t.Fatal("join after stop should fail")
	}
}

func TestLearnerNoSources(t *testing.T) {
	l := NewLearner(1)
	l.Start()
	done := make(chan struct{})
	go func() {
		l.Stop()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("learner with no sources did not stop")
	}
}

func TestConcurrentMulticast(t *testing.T) {
	c := newCluster(t, 3, []msg.RingID{1, 2, 3}, func(_ msg.RingID, cfg *ringpaxos.Config) {
		cfg.SkipInterval = 5 * time.Millisecond
		cfg.SkipRate = 50
	})
	l := c.learnerFor(0, 1, 1, 2, 3)
	const perRing = 20
	var wg sync.WaitGroup
	for r := msg.RingID(1); r <= 3; r++ {
		wg.Add(1)
		go func(r msg.RingID) {
			defer wg.Done()
			for k := 0; k < perRing; k++ {
				if err := c.nodes[int(r)%3].Multicast(r, []byte(fmt.Sprintf("r%d-%d", r, k))); err != nil {
					t.Errorf("multicast: %v", err)
					return
				}
			}
		}(r)
	}
	wg.Wait()
	got := collectPayloads(t, l, 3*perRing, 20*time.Second)
	if len(got) != 3*perRing {
		t.Fatalf("delivered %d", len(got))
	}
}
