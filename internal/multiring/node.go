// Package multiring implements Multi-Ring Paxos, the atomic multicast
// protocol of the paper (Section 4): a collection of coordinated Ring
// Paxos instances, one per multicast group, merged deterministically at
// the learners.
//
// A process subscribes to a group by joining the corresponding ring as a
// learner ("inverted" group addressing, Section 3: servers subscribe to any
// groups they are interested in). Messages multicast to a group are
// proposed to that group's ring; learners subscribed to several groups
// deliver messages from their rings in round-robin order, M consensus
// instances at a time, which yields the acyclic global order required by
// atomic multicast. Rate leveling (Δ, λ — implemented in the ring layer as
// skip instances) keeps lightly loaded rings from stalling the merge.
package multiring

import (
	"fmt"
	"sort"
	"sync"

	"mrp/internal/msg"
	"mrp/internal/ringpaxos"
	"mrp/internal/transport"
)

// Node is one process participating in Multi-Ring Paxos: a single network
// endpoint demultiplexed across the rings the process is a member of, plus
// an optional service handler for non-ring messages (client responses,
// checkpoint RPCs).
type Node struct {
	id     msg.NodeID
	ep     transport.Endpoint
	router *transport.Router

	mu          sync.Mutex
	procs       map[msg.RingID]*ringpaxos.Process
	peersByRing map[msg.RingID][]msg.NodeID
	started     bool
	stopped     bool
}

// NewNode creates a node over the endpoint.
func NewNode(id msg.NodeID, ep transport.Endpoint) *Node {
	return &Node{
		id:          id,
		ep:          ep,
		router:      transport.NewRouter(ep),
		procs:       make(map[msg.RingID]*ringpaxos.Process),
		peersByRing: make(map[msg.RingID][]msg.NodeID),
	}
}

// ID returns the node's identifier.
func (n *Node) ID() msg.NodeID { return n.id }

// Addr returns the node's network address.
func (n *Node) Addr() transport.Addr { return n.ep.Addr() }

// Endpoint returns the node's transport endpoint.
func (n *Node) Endpoint() transport.Endpoint { return n.ep }

// Join makes the node a member of a ring with the given configuration.
// cfg.Self is forced to the node's ID. Joining after Start is allowed (a
// recovering replica first contacts its partition peers for a checkpoint,
// then joins its rings with the recovered StartInstance); in that case the
// ring process is started immediately.
func (n *Node) Join(cfg ringpaxos.Config) (*ringpaxos.Process, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.stopped {
		return nil, fmt.Errorf("multiring: node %d stopped", n.id)
	}
	if _, dup := n.procs[cfg.Ring]; dup {
		return nil, fmt.Errorf("multiring: node %d already joined ring %d", n.id, cfg.Ring)
	}
	cfg.Self = n.id
	proc, err := ringpaxos.New(cfg, n.ep)
	if err != nil {
		return nil, err
	}
	n.procs[cfg.Ring] = proc
	ids := make([]msg.NodeID, len(cfg.Peers))
	for i, peer := range cfg.Peers {
		ids[i] = peer.ID
	}
	n.peersByRing[cfg.Ring] = ids
	n.router.Ring(cfg.Ring, proc.In())
	if n.started {
		proc.Start()
	}
	return proc, nil
}

// Subscribe joins a ring at runtime — the paper's inverted group
// addressing (Section 3: processes subscribe to any groups they are
// interested in). It is Join with dynamic-membership intent spelled out:
// the ring process starts immediately when the node is already running,
// and the router begins feeding it ring-scoped traffic right away. Wire
// the returned process into the node's Learner (Learner.Subscribe) to
// splice the ring into the deterministic merge.
func (n *Node) Subscribe(cfg ringpaxos.Config) (*ringpaxos.Process, error) {
	return n.Join(cfg)
}

// Unsubscribe leaves a ring at runtime: the ring process is stopped and
// the router stops feeding it. The overlay heals around this node when the
// remaining members mark it down (ring manager / SetPeerDown), exactly as
// for a crashed member. Pair it with Learner.Unsubscribe so the merge
// stops expecting the ring.
func (n *Node) Unsubscribe(ring msg.RingID) error {
	n.mu.Lock()
	proc, ok := n.procs[ring]
	if !ok {
		n.mu.Unlock()
		return fmt.Errorf("multiring: node %d is not subscribed to ring %d", n.id, ring)
	}
	delete(n.procs, ring)
	delete(n.peersByRing, ring)
	started := n.started
	n.mu.Unlock()
	n.router.Unring(ring)
	if started {
		proc.Stop()
	}
	return nil
}

// Service registers the handler for non-ring messages. It runs on the
// router goroutine and must not block. Must be called before Start.
func (n *Node) Service(fn func(transport.Envelope)) {
	n.router.Service(fn)
}

// Process returns the node's process for a ring, if joined.
func (n *Node) Process(ring msg.RingID) (*ringpaxos.Process, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	p, ok := n.procs[ring]
	return p, ok
}

// Rings returns the identifiers of all joined rings in ascending order.
func (n *Node) Rings() []msg.RingID {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]msg.RingID, 0, len(n.procs))
	for r := range n.procs {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Multicast proposes a payload to the given group (ring). The node must be
// a proposer member of that ring.
func (n *Node) Multicast(group msg.RingID, payload []byte) error {
	p, ok := n.Process(group)
	if !ok {
		return fmt.Errorf("multiring: node %d is not a member of group %d", n.id, group)
	}
	return p.Propose(payload)
}

// Start launches the router and all ring processes.
func (n *Node) Start() {
	n.mu.Lock()
	if n.started {
		n.mu.Unlock()
		return
	}
	n.started = true
	procs := make([]*ringpaxos.Process, 0, len(n.procs))
	for _, p := range n.procs {
		procs = append(procs, p)
	}
	n.mu.Unlock()
	n.router.Start()
	for _, p := range procs {
		p.Start()
	}
}

// Stop terminates all ring processes and the router, then closes the
// endpoint (simulating a process crash when injected mid-experiment).
func (n *Node) Stop() {
	n.mu.Lock()
	if n.stopped || !n.started {
		n.stopped = true
		n.mu.Unlock()
		_ = n.ep.Close()
		return
	}
	n.stopped = true
	procs := make([]*ringpaxos.Process, 0, len(n.procs))
	for _, p := range n.procs {
		procs = append(procs, p)
	}
	n.mu.Unlock()
	for _, p := range procs {
		p.Stop()
	}
	n.router.Stop()
	_ = n.ep.Close()
}
