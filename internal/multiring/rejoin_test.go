package multiring

import (
	"fmt"
	"testing"
)

// These tests pin the merge-level contract crash recovery relies on
// (store.RecoverReplica): a learner rebuilt from a checkpoint tuple and
// fed each ring's decided suffix from the recovered frontier delivers
// exactly the suffix a continuously running learner delivers after that
// frontier — including when the ring was subscribed at runtime and the
// frontier is the edge of a rate-leveling skip range.

// TestLearnerRejoinAtFrontierDeterministic replays a two-ring stream into
// a continuous learner A, then rebuilds a learner B the way a recovered
// replica does: fresh, with each ring's source starting just past a
// round-aligned checkpoint frontier {r1: 2, r2: 2}. B's delivery sequence
// must equal A's suffix after that frontier.
func TestLearnerRejoinAtFrontierDeterministic(t *testing.T) {
	script := []feed{
		{ring: 1, inst: 1, payload: "a1"},
		{ring: 1, inst: 2, payload: "a2"},
		{ring: 1, inst: 3, payload: "a3"},
		{ring: 1, inst: 4, payload: "a4"},
		{ring: 2, inst: 1, payload: "b1"},
		{ring: 2, inst: 2, payload: "b2"},
		{ring: 2, inst: 3, payload: "b3"},
		{ring: 2, inst: 4, payload: "b4"},
	}
	srcA := replay(t, script, 1, 2)
	la := NewLearner(1, srcA[1], srcA[2])
	la.Start()
	defer la.Stop()
	full := collect(t, la, 8)

	// The recovered learner consumes only the post-checkpoint suffix: each
	// ring's decision stream resumes at frontier+1, as ringpaxos does with
	// Config.StartInstance.
	var suffix []feed
	for _, f := range script {
		if f.inst > 2 {
			suffix = append(suffix, f)
		}
	}
	srcB := replay(t, suffix, 1, 2)
	lb := NewLearner(1, srcB[1], srcB[2])
	lb.Start()
	defer lb.Stop()
	got := collect(t, lb, 4)

	want := full[4:]
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("rejoined merge diverged from the continuous suffix:\n got: %v\nwant: %v", got, want)
	}
}

// TestLearnerResubscribeRuntimeRingAtFrontier models a recovered replica
// of a split partition: its ring was joined at runtime (empty learner +
// Subscribe), its checkpoint frontier sits at the edge of a skip range,
// and the resubscribed source replays only the instances after it. The
// deliveries must equal the continuous learner's data suffix.
func TestLearnerResubscribeRuntimeRingAtFrontier(t *testing.T) {
	script := []feed{
		{ring: 7, inst: 1, payload: "c1"},
		{ring: 7, inst: 2, skipTo: 5}, // rate leveling skips 2,3,4
		{ring: 7, inst: 5, payload: "c5"},
		{ring: 7, inst: 6, payload: "c6"},
	}
	srcA := replay(t, script, 7)
	la := NewLearner(1)
	la.Subscribe(srcA[7], Activation{})
	la.Start()
	defer la.Stop()
	full := collectData(t, la, 3)

	// The replica applied c1 and the skip: its frontier is 4 (SkipTo-1),
	// so the rebuilt ring process starts delivery at instance 5.
	var suffix []feed
	for _, f := range script {
		if f.inst >= 5 {
			suffix = append(suffix, f)
		}
	}
	srcB := replay(t, suffix, 7)
	lb := NewLearner(1)
	lb.Start()
	defer lb.Stop()
	lb.Subscribe(srcB[7], Activation{})
	got := collectData(t, lb, 2)

	want := full[1:]
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("resubscribed merge diverged:\n got: %v\nwant: %v", got, want)
	}
	if rings := lb.Rings(); len(rings) != 1 || rings[0] != 7 {
		t.Fatalf("rings after runtime resubscribe = %v", rings)
	}
}
