package multiring

import (
	"fmt"
	"testing"

	"mrp/internal/msg"
)

// TestLearnerUnsubscribeSpliceTimingIndependent mirrors the rejoin
// determinism tests for the splice-out path ring retirement relies on:
// learners that request Unsubscribe at different wall-clock times — one
// before consuming anything, one mid-stream — but with the same Activation
// point must deliver identical global orders, with nothing consumed from
// the ring after the splice.
func TestLearnerUnsubscribeSpliceTimingIndependent(t *testing.T) {
	script := []feed{
		{ring: 1, inst: 1, payload: "a1"},
		{ring: 1, inst: 2, payload: "a2"},
		{ring: 1, inst: 3, payload: "a3"},
		{ring: 1, inst: 4, payload: "a4"},
		{ring: 2, inst: 1, payload: "b1"},
		{ring: 2, inst: 2, payload: "b2"},
		{ring: 2, inst: 3, payload: "b3"},
	}
	act := Activation{Ring: 2, Instance: 2}
	const total = 6 // a1 b1 a2 b2 a3 a4

	// Learner A requests the splice before its merge starts.
	srcA := replay(t, script, 1, 2)
	la := NewLearner(1, srcA[1], srcA[2])
	la.Unsubscribe(2, act)
	la.Start()
	defer la.Stop()
	seqA := collect(t, la, total)

	// Learner B requests it while the merge is mid-flight: a prefix below
	// the trigger instance is consumed first (per the Activation contract
	// the trigger must still be in the merge's future at request time),
	// then the splice is requested, then the rest of the stream arrives.
	srcB := map[msg.RingID]*fakeSource{
		1: newFakeSource(1, len(script)+1),
		2: newFakeSource(2, len(script)+1),
	}
	lb := NewLearner(1, srcB[1], srcB[2])
	lb.Start()
	defer lb.Stop()
	srcB[1].decide(1, "a1")
	srcB[2].decide(1, "b1")
	prefix := collect(t, lb, 2)
	lb.Unsubscribe(2, act)
	for _, f := range script {
		if f.inst == 1 {
			continue // already fed
		}
		srcB[f.ring].decide(f.inst, f.payload)
	}
	seqB := append(prefix, collect(t, lb, total-2)...)

	if fmt.Sprint(seqA) != fmt.Sprint(seqB) {
		t.Fatalf("splice-out order depends on request time:\n A: %v\n B: %v", seqA, seqB)
	}
	// Nothing of ring 2 past the activation point is delivered, and the
	// ring leaves the rotation on both learners.
	for _, s := range seqA {
		if s == "r2:b3" {
			t.Fatalf("ring 2 delivered past the splice: %v", seqA)
		}
	}
	for i, l := range []*Learner{la, lb} {
		if rings := l.Rings(); len(rings) != 1 || rings[0] != 1 {
			t.Fatalf("learner %d rings after splice = %v", i, rings)
		}
	}
}
