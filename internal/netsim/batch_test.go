package netsim

import (
	"testing"
	"time"

	"mrp/internal/msg"
	"mrp/internal/transport"
)

// TestCoalescedBurstFIFO pushes a burst through tight coalescing bounds:
// everything must arrive, individually and in order, exactly as on the
// unbatched path.
func TestCoalescedBurstFIFO(t *testing.T) {
	n := New(
		WithUniformLatency(time.Millisecond),
		WithBatch(transport.BatchPolicy{MaxBytes: 256, MaxCount: 4}),
	)
	defer n.Close()
	a := n.Endpoint("a")
	b := n.Endpoint("b")
	const N = 500
	for i := uint64(0); i < N; i++ {
		if err := a.Send("b", ping(i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := uint64(0); i < N; i++ {
		select {
		case env := <-b.Inbox():
			if _, ok := env.Msg.(*msg.Batch); ok {
				t.Fatal("batch leaked into the inbox")
			}
			if got := env.Msg.(*msg.TrimQuery).Seq; got != i {
				t.Fatalf("out of order: got %d want %d", got, i)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("timeout at %d", i)
		}
	}
}

// TestCoalescingChargesBatchOnce: on a slow link, a burst of k messages
// coalesced into one packet pays the batch's serialization once, so total
// delivery time stays near k*msgSize/bandwidth regardless of per-packet
// latency cost — and must not exceed the unbatched bound.
func TestCoalescingChargesBatchOnce(t *testing.T) {
	const (
		k       = 20
		payload = 10 * 1024
		bw      = 1 << 20 // 1 MB/s
	)
	n := New(WithUniformLatency(0), WithBandwidth(bw))
	defer n.Close()
	a := n.Endpoint("a")
	b := n.Endpoint("b")
	body := make([]byte, payload)
	start := time.Now()
	for i := 0; i < k; i++ {
		_ = a.Send("b", &msg.Proposal{Ring: 1, Payload: body})
	}
	for i := 0; i < k; i++ {
		<-b.Inbox()
	}
	el := time.Since(start)
	serialized := time.Duration(k*payload) * time.Second / bw
	if el < serialized/2 {
		t.Fatalf("%d x %dB over 1MB/s took %v, want >= %v (bandwidth not charged)",
			k, payload, el, serialized/2)
	}
	if el > 3*serialized {
		t.Fatalf("coalesced burst took %v, want <= %v", el, 3*serialized)
	}
}

// TestCoalescingDisabledMatchesSeedPath exercises the opt-out knob end to
// end.
func TestCoalescingDisabledMatchesSeedPath(t *testing.T) {
	n := New(WithUniformLatency(0), WithBatch(transport.BatchPolicy{Disabled: true}))
	defer n.Close()
	a := n.Endpoint("a")
	b := n.Endpoint("b")
	const N = 100
	for i := uint64(0); i < N; i++ {
		if err := a.Send("b", ping(i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := uint64(0); i < N; i++ {
		select {
		case env := <-b.Inbox():
			if got := env.Msg.(*msg.TrimQuery).Seq; got != i {
				t.Fatalf("out of order: got %d want %d", got, i)
			}
		case <-time.After(2 * time.Second):
			t.Fatalf("timeout at %d", i)
		}
	}
}

// TestCoalescerCrashRecoverIncarnation: messages queued to a crashed
// receiver's old incarnation must not reach its recovered replacement, even
// when both sit in the same coalescing queue.
func TestCoalescerCrashRecoverIncarnation(t *testing.T) {
	n := New(WithUniformLatency(0))
	defer n.Close()
	a := n.Endpoint("a")
	b := n.Endpoint("b")
	_ = b.Close() // crash b: sends resolve to the dead incarnation
	_ = a.Send("b", ping(1))
	b2 := n.Endpoint("b")
	_ = a.Send("b", ping(2))
	select {
	case env := <-b2.Inbox():
		if env.Msg.(*msg.TrimQuery).Seq != 2 {
			t.Fatal("recovered endpoint got a stale message")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("timeout after recovery")
	}
}
