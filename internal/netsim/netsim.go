// Package netsim implements an in-process simulated network with per-link
// one-way latency, bandwidth serialization delay, message loss, link
// blocking, and crash injection.
//
// The simulator substitutes for the paper's testbed (a 10 Gbps datacenter
// switch and Amazon EC2 WAN links across four regions, Section 8.1). The
// behaviour Multi-Ring Paxos is sensitive to — ring circulation time,
// merge stalls across groups, WAN latency floors, bandwidth ceilings — is a
// function of link latency and bandwidth, both of which are modeled here.
//
// Delivery model: each ordered (sender, receiver) pair is a link with a
// dedicated delivery goroutine. A packet of size s sent at time t arrives
// at max(t, linkFree) + s/bandwidth + latency; linkFree advances by the
// serialization time, so a burst of large packets queues behind itself
// exactly as it would on a NIC. Messages on one link are delivered FIFO.
//
// Write coalescing: unless disabled by WithBatch, each sender runs a
// per-destination coalescing loop mirroring the TCP transport
// (internal/tcpnet): the queue backlog becomes one simulated packet whose
// bandwidth cost is the encoded msg.Batch size, so simulation and real
// sockets stay behaviorally aligned. Delivered envelopes always carry
// individual messages, exactly as tcpnet unpacks batches before its inbox.
//
// Messages are passed by pointer without copying; see transport.Endpoint
// for the immutability convention.
package netsim

import (
	"math/rand"
	"strings"
	"sync"
	"time"

	"mrp/internal/msg"
	"mrp/internal/transport"
)

// Option configures a Network.
type Option func(*Network)

// WithLatency sets the one-way propagation delay function. The default is a
// uniform 50µs LAN (0.1 ms round trip, as in the paper's local cluster).
func WithLatency(f func(from, to transport.Addr) time.Duration) Option {
	return func(n *Network) { n.latency = f }
}

// WithUniformLatency sets a constant one-way delay for every link.
func WithUniformLatency(d time.Duration) Option {
	return WithLatency(func(_, _ transport.Addr) time.Duration { return d })
}

// WithBandwidth sets the per-link bandwidth in bytes per second
// (0 = infinite). The paper's local cluster used 10 Gbps NICs.
func WithBandwidth(bytesPerSec int64) Option {
	return func(n *Network) { n.bandwidth = bytesPerSec }
}

// WithJitter adds uniformly distributed extra delay in [0, frac*latency].
func WithJitter(frac float64) Option {
	return func(n *Network) { n.jitter = frac }
}

// WithSeed seeds the simulator's randomness (loss, jitter).
func WithSeed(seed int64) Option {
	return func(n *Network) { n.rng = rand.New(rand.NewSource(seed)) }
}

// WithInboxSize sets the per-endpoint inbox buffer (default 4096).
func WithInboxSize(size int) Option {
	return func(n *Network) { n.inboxSize = size }
}

// WithBatch sets the write-coalescing policy applied by every endpoint's
// per-destination sender, mirroring tcpnet.WithBatch. The default is the
// zero transport.BatchPolicy: coalescing enabled with default bounds. Pass
// transport.BatchPolicy{Disabled: true} to model one packet per message
// (the paper's Figure 3 baseline).
func WithBatch(p transport.BatchPolicy) Option {
	return func(n *Network) { n.batch = p }
}

// WithMinSleep sets the shortest delay the simulator actually sleeps for.
// Delays below it are delivered immediately: OS timer granularity (often
// 1-4 ms in containers) makes shorter sleeps both inaccurate and far more
// expensive than the LAN latencies they would model. The default is 2.5 ms.
func WithMinSleep(d time.Duration) Option {
	return func(n *Network) { n.minSleep = d }
}

// Network is the simulated fabric. Create endpoints with Endpoint, then use
// them through the transport.Endpoint interface.
type Network struct {
	latency   func(from, to transport.Addr) time.Duration
	bandwidth int64
	jitter    float64
	inboxSize int
	minSleep  time.Duration
	batch     transport.BatchPolicy

	mu        sync.Mutex
	rng       *rand.Rand
	endpoints map[transport.Addr]*Endpoint
	links     map[linkKey]*link
	blocked   map[linkKey]bool
	lossRate  map[linkKey]float64
	closed    bool
}

type linkKey struct {
	from, to transport.Addr
}

// New creates a simulated network.
func New(opts ...Option) *Network {
	n := &Network{
		latency:   func(_, _ transport.Addr) time.Duration { return 50 * time.Microsecond },
		inboxSize: 4096,
		minSleep:  2500 * time.Microsecond,
		rng:       rand.New(rand.NewSource(1)),
		endpoints: make(map[transport.Addr]*Endpoint),
		links:     make(map[linkKey]*link),
		blocked:   make(map[linkKey]bool),
		lossRate:  make(map[linkKey]float64),
	}
	for _, o := range opts {
		o(n)
	}
	n.batch = n.batch.WithDefaults()
	return n
}

// Endpoint attaches a new endpoint with the given address. Attaching an
// address that already exists replaces the crashed instance (recovery):
// the old endpoint must have been closed first.
func (n *Network) Endpoint(addr transport.Addr) *Endpoint {
	n.mu.Lock()
	defer n.mu.Unlock()
	if old, ok := n.endpoints[addr]; ok && !old.isClosed() {
		panic("netsim: duplicate live endpoint " + string(addr))
	}
	ep := &Endpoint{
		net:   n,
		addr:  addr,
		inbox: make(chan transport.Envelope, n.inboxSize),
		done:  make(chan struct{}),
	}
	n.endpoints[addr] = ep
	return ep
}

// BlockLink blocks or unblocks the directed link from→to (partition
// injection). Blocked messages are dropped.
func (n *Network) BlockLink(from, to transport.Addr, blocked bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if blocked {
		n.blocked[linkKey{from, to}] = true
	} else {
		delete(n.blocked, linkKey{from, to})
	}
}

// PartitionBoth blocks both directions between two addresses.
func (n *Network) PartitionBoth(a, b transport.Addr, blocked bool) {
	n.BlockLink(a, b, blocked)
	n.BlockLink(b, a, blocked)
}

// SetLoss sets the drop probability for the directed link from→to.
func (n *Network) SetLoss(from, to transport.Addr, p float64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if p <= 0 {
		delete(n.lossRate, linkKey{from, to})
	} else {
		n.lossRate[linkKey{from, to}] = p
	}
}

// Close shuts down the network and all endpoints.
func (n *Network) Close() {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return
	}
	n.closed = true
	eps := make([]*Endpoint, 0, len(n.endpoints))
	for _, ep := range n.endpoints {
		eps = append(eps, ep)
	}
	links := make([]*link, 0, len(n.links))
	for _, l := range n.links {
		links = append(links, l)
	}
	n.mu.Unlock()
	for _, ep := range eps {
		_ = ep.Close()
	}
	for _, l := range links {
		l.stop()
	}
}

// linkFor returns (creating if needed) the delivery link for (from, to).
func (n *Network) linkFor(from, to transport.Addr) *link {
	k := linkKey{from, to}
	n.mu.Lock()
	defer n.mu.Unlock()
	if l, ok := n.links[k]; ok {
		return l
	}
	l := &link{
		net:  n,
		to:   to,
		ch:   make(chan timedMsg, 1024),
		done: make(chan struct{}),
	}
	n.links[k] = l
	go l.run()
	return l
}

type timedMsg struct {
	arriveAt time.Time
	envs     []transport.Envelope // one coalesced packet, delivered in order
	ep       *Endpoint            // receiver instance resolved at send time (TCP-like:
	// messages in flight to a crashed process are lost, never delivered to
	// its recovered reincarnation)
}

// link delivers messages for one ordered (from, to) pair in FIFO order.
type link struct {
	net      *Network
	to       transport.Addr
	ch       chan timedMsg
	done     chan struct{}
	stopOnce sync.Once

	mu       sync.Mutex
	linkFree time.Time
}

func (l *link) stop() {
	l.stopOnce.Do(func() { close(l.done) })
}

// enqueue computes the arrival time for a packet of the given encoded size
// and queues its envelopes for delivery to the given endpoint instance.
func (l *link) enqueue(envs []transport.Envelope, ep *Endpoint, size int, latency time.Duration) {
	now := time.Now()
	var tx time.Duration
	if l.net.bandwidth > 0 {
		tx = time.Duration(float64(size) / float64(l.net.bandwidth) * float64(time.Second))
	}
	l.mu.Lock()
	start := now
	if l.linkFree.After(start) {
		start = l.linkFree
	}
	depart := start.Add(tx)
	l.linkFree = depart
	l.mu.Unlock()
	arrive := depart.Add(latency)
	select {
	case l.ch <- timedMsg{arriveAt: arrive, envs: envs, ep: ep}:
	case <-l.done:
	}
}

func (l *link) run() {
	for {
		select {
		case tm := <-l.ch:
			if d := time.Until(tm.arriveAt); d > l.net.minSleep {
				timer := time.NewTimer(d)
				select {
				case <-timer.C:
				case <-l.done:
					timer.Stop()
					return
				}
			}
			for _, env := range tm.envs {
				tm.ep.deliver(env)
			}
		case <-l.done:
			return
		}
	}
}

// Endpoint is a node's attachment to the simulated network.
type Endpoint struct {
	net   *Network
	addr  transport.Addr
	inbox chan transport.Envelope
	done  chan struct{}

	mu       sync.Mutex
	closed   bool
	senders  map[transport.Addr]chan queuedMsg // per-destination coalescers
	inflight sync.WaitGroup                    // delivering goroutines currently sending
}

// queuedMsg is one message waiting in a per-destination coalescing queue,
// with its receiver instance and latency resolved at Send time.
type queuedMsg struct {
	env transport.Envelope
	ep  *Endpoint
	lat time.Duration
}

var _ transport.Endpoint = (*Endpoint)(nil)

// Addr implements transport.Endpoint.
func (e *Endpoint) Addr() transport.Addr { return e.addr }

// Inbox implements transport.Endpoint.
func (e *Endpoint) Inbox() <-chan transport.Envelope { return e.inbox }

func (e *Endpoint) isClosed() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.closed
}

// Send implements transport.Endpoint.
func (e *Endpoint) Send(to transport.Addr, m msg.Message) error {
	if e.isClosed() {
		return transport.ErrClosed
	}
	n := e.net
	k := linkKey{e.addr, to}
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return transport.ErrClosed
	}
	if n.blocked[k] {
		n.mu.Unlock()
		return nil // dropped by partition
	}
	if p := n.lossRate[k]; p > 0 && n.rng.Float64() < p {
		n.mu.Unlock()
		return nil // dropped by loss
	}
	dst, ok := n.endpoints[to]
	if !ok {
		n.mu.Unlock()
		return nil // unknown destination: dropped, as on a real network
	}
	lat := n.latency(e.addr, to)
	if n.jitter > 0 {
		lat += time.Duration(n.rng.Float64() * n.jitter * float64(lat))
	}
	n.mu.Unlock()
	env := transport.Envelope{From: e.addr, Msg: m}
	if n.batch.Disabled {
		l := n.linkFor(e.addr, to)
		l.enqueue([]transport.Envelope{env}, dst, m.Size(), lat)
		return nil
	}
	select {
	case e.senderFor(to) <- queuedMsg{env: env, ep: dst, lat: lat}:
		return nil
	case <-e.done:
		return transport.ErrClosed
	}
}

// senderFor returns (creating if needed) the coalescing queue for one
// destination.
func (e *Endpoint) senderFor(to transport.Addr) chan queuedMsg {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.senders == nil {
		e.senders = make(map[transport.Addr]chan queuedMsg)
	}
	ch, ok := e.senders[to]
	if !ok {
		ch = make(chan queuedMsg, 1024)
		e.senders[to] = ch
		go e.coalesceLoop(to, ch)
	}
	return ch
}

// coalesceLoop models transport-level write coalescing for one destination,
// mirroring tcpnet's sendLoop: the queue backlog present when a message is
// dequeued becomes one simulated packet whose bandwidth cost is the encoded
// msg.Batch size. Coalescing never delays a message — an empty queue sends
// immediately. A backlog message bound for a different receiver incarnation
// (the destination crashed and recovered mid-queue) flushes the current
// packet first, preserving per-incarnation delivery.
func (e *Endpoint) coalesceLoop(to transport.Addr, ch chan queuedMsg) {
	l := e.net.linkFor(e.addr, to)
	maxBytes := e.net.batch.MaxBytes
	maxCount := e.net.batch.MaxCount
	var carry *queuedMsg
	for {
		var q queuedMsg
		if carry != nil {
			q, carry = *carry, nil
		} else {
			select {
			case q = <-ch:
			case <-e.done:
				return
			}
		}
		envs := []transport.Envelope{q.env}
		// Track the would-be msg.Batch encoding exactly as tcpnet does:
		// the empty-batch envelope from BatchSize, plus a 4-byte size
		// prefix per packed message (matching Batch.marshal).
		size := msg.BatchSize(nil) + 4 + q.env.Msg.Size()
	drain:
		for len(envs) < maxCount {
			select {
			case q2 := <-ch:
				if q2.ep != q.ep || size+4+q2.env.Msg.Size() > maxBytes {
					carry = &q2
					break drain
				}
				envs = append(envs, q2.env)
				size += 4 + q2.env.Msg.Size()
			default:
				break drain
			}
		}
		if len(envs) == 1 {
			size = q.env.Msg.Size() // sent alone: no batch envelope on the wire
		}
		l.enqueue(envs, q.ep, size, q.lat)
	}
}

// deliver pushes an envelope into the inbox, dropping it if the endpoint is
// closed. Delivery blocks when the inbox is full, modeling TCP backpressure;
// a concurrent Close aborts blocked deliveries through the done channel.
func (e *Endpoint) deliver(env transport.Envelope) {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return
	}
	e.inflight.Add(1)
	e.mu.Unlock()
	defer e.inflight.Done()
	select {
	case e.inbox <- env:
	case <-e.done:
	}
}

// Close implements transport.Endpoint. The endpoint's address becomes free
// for re-attachment (crash-recover). The inbox channel is closed once all
// in-flight deliveries have drained, so consumers ranging over it exit.
func (e *Endpoint) Close() error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil
	}
	e.closed = true
	e.mu.Unlock()
	close(e.done)     // abort blocked deliveries
	e.inflight.Wait() // no sender is inside the channel send anymore
	close(e.inbox)
	return nil
}

// Region extracts the "region/" prefix of a structured address, or "" when
// the address has none.
func Region(a transport.Addr) string {
	s := string(a)
	if i := strings.IndexByte(s, '/'); i >= 0 {
		return s[:i]
	}
	return ""
}

// EC2Latencies holds approximate one-way inter-region delays for the four
// Amazon EC2 regions used in the paper's horizontal-scalability experiment
// (Section 8.4.2): eu-west-1, us-east-1, us-west-1, us-west-2.
var EC2Latencies = map[[2]string]time.Duration{
	{"eu-west-1", "us-east-1"}: 40 * time.Millisecond,
	{"eu-west-1", "us-west-1"}: 70 * time.Millisecond,
	{"eu-west-1", "us-west-2"}: 65 * time.Millisecond,
	{"us-east-1", "us-west-1"}: 35 * time.Millisecond,
	{"us-east-1", "us-west-2"}: 32 * time.Millisecond,
	{"us-west-1", "us-west-2"}: 10 * time.Millisecond,
}

// WANLatency returns a latency function that charges intraRegion delay
// within a region and the EC2Latencies matrix across regions, scaled by
// scale (use scale < 1 to shrink wall-clock time while preserving ratios).
func WANLatency(intraRegion time.Duration, scale float64) func(from, to transport.Addr) time.Duration {
	return func(from, to transport.Addr) time.Duration {
		rf, rt := Region(from), Region(to)
		var d time.Duration
		if rf == rt {
			d = intraRegion
		} else if v, ok := EC2Latencies[[2]string{rf, rt}]; ok {
			d = v
		} else if v, ok := EC2Latencies[[2]string{rt, rf}]; ok {
			d = v
		} else {
			d = 50 * time.Millisecond // unknown pair: generic WAN
		}
		return time.Duration(float64(d) * scale)
	}
}
