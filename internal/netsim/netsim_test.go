package netsim

import (
	"testing"
	"time"

	"mrp/internal/msg"
	"mrp/internal/transport"
)

func ping(seq uint64) msg.Message {
	return &msg.TrimQuery{Ring: 1, Seq: seq}
}

func TestDeliverBasic(t *testing.T) {
	n := New(WithUniformLatency(0))
	defer n.Close()
	a := n.Endpoint("a")
	b := n.Endpoint("b")
	if err := a.Send("b", ping(7)); err != nil {
		t.Fatal(err)
	}
	select {
	case env := <-b.Inbox():
		if env.From != "a" {
			t.Fatalf("from = %q", env.From)
		}
		q := env.Msg.(*msg.TrimQuery)
		if q.Seq != 7 {
			t.Fatalf("seq = %d", q.Seq)
		}
	case <-time.After(time.Second):
		t.Fatal("timeout")
	}
}

func TestFIFOPerLink(t *testing.T) {
	n := New(WithUniformLatency(time.Millisecond), WithJitter(0.5), WithSeed(42))
	defer n.Close()
	a := n.Endpoint("a")
	b := n.Endpoint("b")
	const N = 100
	for i := uint64(0); i < N; i++ {
		if err := a.Send("b", ping(i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := uint64(0); i < N; i++ {
		select {
		case env := <-b.Inbox():
			got := env.Msg.(*msg.TrimQuery).Seq
			if got != i {
				t.Fatalf("out of order: got %d want %d", got, i)
			}
		case <-time.After(2 * time.Second):
			t.Fatalf("timeout at %d", i)
		}
	}
}

func TestLatencyApplied(t *testing.T) {
	const lat = 20 * time.Millisecond
	n := New(WithUniformLatency(lat))
	defer n.Close()
	a := n.Endpoint("a")
	b := n.Endpoint("b")
	start := time.Now()
	_ = a.Send("b", ping(1))
	<-b.Inbox()
	el := time.Since(start)
	if el < lat {
		t.Fatalf("delivered in %v, want >= %v", el, lat)
	}
	if el > 10*lat {
		t.Fatalf("delivered in %v, too slow", el)
	}
}

func TestBandwidthSerialization(t *testing.T) {
	// 1 MB/s link; 10 messages of ~10KB each should take ~100ms total.
	n := New(WithUniformLatency(0), WithBandwidth(1<<20))
	defer n.Close()
	a := n.Endpoint("a")
	b := n.Endpoint("b")
	payload := make([]byte, 10*1024)
	start := time.Now()
	for i := 0; i < 10; i++ {
		_ = a.Send("b", &msg.Proposal{Ring: 1, Payload: payload})
	}
	for i := 0; i < 10; i++ {
		<-b.Inbox()
	}
	el := time.Since(start)
	want := time.Duration(10*10*1024) * time.Second / (1 << 20)
	if el < want/2 {
		t.Fatalf("10x10KB over 1MB/s took %v, want >= %v", el, want/2)
	}
}

func TestBlockedLinkDrops(t *testing.T) {
	n := New(WithUniformLatency(0))
	defer n.Close()
	a := n.Endpoint("a")
	b := n.Endpoint("b")
	n.BlockLink("a", "b", true)
	_ = a.Send("b", ping(1))
	select {
	case <-b.Inbox():
		t.Fatal("message crossed blocked link")
	case <-time.After(50 * time.Millisecond):
	}
	n.BlockLink("a", "b", false)
	_ = a.Send("b", ping(2))
	select {
	case env := <-b.Inbox():
		if env.Msg.(*msg.TrimQuery).Seq != 2 {
			t.Fatal("wrong message after unblock")
		}
	case <-time.After(time.Second):
		t.Fatal("timeout after unblock")
	}
}

func TestLossDropsSome(t *testing.T) {
	n := New(WithUniformLatency(0), WithSeed(7))
	defer n.Close()
	a := n.Endpoint("a")
	b := n.Endpoint("b")
	n.SetLoss("a", "b", 0.5)
	const N = 200
	for i := uint64(0); i < N; i++ {
		_ = a.Send("b", ping(i))
	}
	time.Sleep(100 * time.Millisecond)
	got := 0
	for {
		select {
		case <-b.Inbox():
			got++
			continue
		default:
		}
		break
	}
	if got == 0 || got == N {
		t.Fatalf("with 50%% loss got %d/%d", got, N)
	}
}

func TestCrashAndRecover(t *testing.T) {
	n := New(WithUniformLatency(0))
	defer n.Close()
	a := n.Endpoint("a")
	b := n.Endpoint("b")
	_ = b.Close() // crash b
	if err := a.Send("b", ping(1)); err != nil {
		t.Fatalf("send to crashed node should be silently dropped: %v", err)
	}
	// Recover b under the same address.
	b2 := n.Endpoint("b")
	_ = a.Send("b", ping(2))
	select {
	case env := <-b2.Inbox():
		if env.Msg.(*msg.TrimQuery).Seq != 2 {
			t.Fatal("recovered endpoint got stale message")
		}
	case <-time.After(time.Second):
		t.Fatal("timeout after recovery")
	}
}

func TestSendAfterCloseFails(t *testing.T) {
	n := New()
	defer n.Close()
	a := n.Endpoint("a")
	_ = a.Close()
	if err := a.Send("b", ping(1)); err != transport.ErrClosed {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
}

func TestDuplicateLiveEndpointPanics(t *testing.T) {
	n := New()
	defer n.Close()
	n.Endpoint("a")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on duplicate live endpoint")
		}
	}()
	n.Endpoint("a")
}

func TestRegionParsing(t *testing.T) {
	if r := Region("eu-west-1/node-3"); r != "eu-west-1" {
		t.Fatalf("region = %q", r)
	}
	if r := Region("plain"); r != "" {
		t.Fatalf("region = %q", r)
	}
}

func TestWANLatencyMatrix(t *testing.T) {
	f := WANLatency(time.Millisecond, 1.0)
	local := f("us-east-1/a", "us-east-1/b")
	if local != time.Millisecond {
		t.Fatalf("intra-region latency = %v", local)
	}
	cross := f("eu-west-1/a", "us-east-1/b")
	if cross != 40*time.Millisecond {
		t.Fatalf("eu-west->us-east = %v", cross)
	}
	// Symmetric lookup.
	if f("us-east-1/b", "eu-west-1/a") != cross {
		t.Fatal("WAN latency not symmetric")
	}
	// Scaled.
	f2 := WANLatency(time.Millisecond, 0.1)
	if f2("eu-west-1/a", "us-east-1/b") != 4*time.Millisecond {
		t.Fatalf("scaled latency = %v", f2("eu-west-1/a", "us-east-1/b"))
	}
}

func TestNetworkCloseIdempotent(t *testing.T) {
	n := New()
	a := n.Endpoint("a")
	b := n.Endpoint("b")
	_ = a.Send("b", ping(1))
	_ = b
	n.Close()
	n.Close()
	if err := a.Send("b", ping(2)); err == nil {
		t.Fatal("send after network close should fail")
	}
}
