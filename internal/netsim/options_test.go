package netsim

import (
	"testing"
	"time"

	"mrp/internal/msg"
)

func TestJitterAddsDelayVariance(t *testing.T) {
	// With a 10 ms base and 100% jitter, deliveries spread over [10, 20] ms.
	n := New(WithUniformLatency(10*time.Millisecond), WithJitter(1.0), WithSeed(3))
	defer n.Close()
	a := n.Endpoint("a")
	b := n.Endpoint("b")
	var ds []time.Duration
	for i := 0; i < 10; i++ {
		start := time.Now()
		_ = a.Send("b", &msg.TrimQuery{Ring: 1, Seq: uint64(i)})
		<-b.Inbox()
		ds = append(ds, time.Since(start))
	}
	min, max := ds[0], ds[0]
	for _, d := range ds {
		if d < min {
			min = d
		}
		if d > max {
			max = d
		}
	}
	if min < 10*time.Millisecond {
		t.Fatalf("min %v below base latency", min)
	}
	if max-min < time.Millisecond {
		t.Fatalf("no jitter spread: min=%v max=%v", min, max)
	}
}

func TestMinSleepDeliversShortDelaysImmediately(t *testing.T) {
	// A 2 ms modeled latency is below the default MinSleep: delivery must
	// not pay the host's timer granularity.
	n := New(WithUniformLatency(2 * time.Millisecond))
	defer n.Close()
	a := n.Endpoint("a")
	b := n.Endpoint("b")
	start := time.Now()
	const N = 50
	for i := 0; i < N; i++ {
		_ = a.Send("b", &msg.TrimQuery{Ring: 1, Seq: uint64(i)})
		<-b.Inbox()
	}
	// 50 round trips at ~2 ms timer floor each would take >= 100 ms if the
	// simulator slept; immediate delivery completes far faster.
	if el := time.Since(start); el > 80*time.Millisecond {
		t.Fatalf("%d short-latency deliveries took %v; MinSleep not applied", N, el)
	}
}

func TestWithMinSleepZeroSleepsForEverything(t *testing.T) {
	n := New(WithUniformLatency(5*time.Millisecond), WithMinSleep(0))
	defer n.Close()
	a := n.Endpoint("a")
	b := n.Endpoint("b")
	start := time.Now()
	_ = a.Send("b", &msg.TrimQuery{Ring: 1})
	<-b.Inbox()
	if el := time.Since(start); el < 5*time.Millisecond {
		t.Fatalf("delivered in %v, want >= 5ms with MinSleep(0)", el)
	}
}

func TestSendToUnknownAddressDropped(t *testing.T) {
	n := New()
	defer n.Close()
	a := n.Endpoint("a")
	if err := a.Send("never-registered", &msg.TrimQuery{}); err != nil {
		t.Fatalf("send to unknown address should drop silently: %v", err)
	}
}
