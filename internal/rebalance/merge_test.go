package rebalance

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"mrp/internal/registry"
	"mrp/internal/store"
	"mrp/internal/ycsb"
)

// TestLiveMergeUnderConcurrentWorkload is the acceptance scenario of
// bidirectional elasticity: the deployment splits under a concurrent
// YCSB-A + read-your-writes workload, then merges the split-born partition
// back while the workload keeps running. It verifies that (a) no client op
// is lost and no stale value is read across either reconfiguration, (b)
// the published schema drops the donor partition (CAS), and (c) the
// donor's ring is fully retired — processes stopped, topology tombstoned —
// and its ring ID recycled by a subsequent split.
func TestLiveMergeUnderConcurrentWorkload(t *testing.T) {
	d, reg := deploySplitStore(t, true)
	coord, err := New(Config{Store: d, Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()

	var (
		stop    atomic.Bool
		opCount atomic.Uint64
		wg      sync.WaitGroup
		failMu  sync.Mutex
		fails   []string
	)
	failf := func(format string, args ...any) {
		failMu.Lock()
		fails = append(fails, fmt.Sprintf(format, args...))
		failMu.Unlock()
		stop.Store(true)
	}

	// Read-your-writes workers on both sides of the split point, one
	// routed via the registry watch, the rest via the live topology.
	const workers = 3
	for w := 0; w < workers; w++ {
		var cl *store.Client
		if w == 0 {
			cl, err = d.NewRegistryClient(reg)
			if err != nil {
				t.Fatal(err)
			}
		} else {
			cl = d.NewClient()
		}
		keys := []string{
			fmt.Sprintf("%s-w%d", ycsb.Key(200), w), // partition 0, untouched
			fmt.Sprintf("%s-w%d", ycsb.Key(600), w), // partition 1, stays
			fmt.Sprintf("%s-w%d", ycsb.Key(800), w), // moved out, then back
		}
		wg.Add(1)
		go func(w int, cl *store.Client) {
			defer wg.Done()
			defer cl.Close()
			for seq := 0; !stop.Load(); seq++ {
				for _, k := range keys {
					want := []byte(fmt.Sprintf("w%d-seq%d", w, seq))
					if err := cl.Insert(k, want); err != nil {
						failf("worker %d: insert %s: %v", w, k, err)
						return
					}
					got, err := cl.Read(k)
					if err != nil {
						failf("worker %d: read %s: %v", w, k, err)
						return
					}
					if !bytes.Equal(got, want) {
						failf("worker %d: stale read %s: got %q want %q", w, k, got, want)
						return
					}
					opCount.Add(2)
				}
			}
		}(w, cl)
	}

	// YCSB workload-A over the whole preloaded key space.
	wg.Add(1)
	go func() {
		defer wg.Done()
		cl := d.NewClient()
		defer cl.Close()
		gen := ycsb.New(ycsb.Config{Workload: ycsb.WorkloadA, RecordCount: records, ValueSize: 64, Seed: 11})
		for !stop.Load() {
			o := gen.Next()
			var err error
			switch o.Kind {
			case ycsb.OpRead:
				_, err = cl.Read(o.Key)
			case ycsb.OpUpdate:
				err = cl.Update(o.Key, o.Value)
			}
			if err != nil {
				failf("ycsb %s %s: %v", o.Kind, o.Key, err)
				return
			}
			opCount.Add(1)
		}
	}()

	// Steady state → split → steady → merge back → steady.
	time.Sleep(300 * time.Millisecond)
	newPart, err := coord.SplitPartition(1, ycsb.Key(750))
	if err != nil {
		t.Fatal(err)
	}
	splitRing := d.PartitionRing(newPart)
	time.Sleep(300 * time.Millisecond)

	preMerge := opCount.Load()
	if err := coord.MergePartitions(1, newPart); err != nil {
		t.Fatal(err)
	}
	time.Sleep(400 * time.Millisecond)
	stop.Store(true)
	wg.Wait()

	if len(fails) > 0 {
		t.Fatalf("workload failures (first of %d): %s", len(fails), fails[0])
	}
	if got := opCount.Load(); got <= preMerge {
		t.Fatalf("no ops completed after the merge (pre=%d total=%d)", preMerge, got)
	}
	if coord.Splits() != 1 || coord.Merges() != 1 {
		t.Fatalf("splits=%d merges=%d", coord.Splits(), coord.Merges())
	}

	// (b) the published schema dropped the donor partition via CAS.
	sc, err := store.LoadSchema(reg)
	if err != nil {
		t.Fatal(err)
	}
	if sc.Epoch != 3 || sc.Partitions != 2 {
		t.Fatalf("published schema epoch=%d partitions=%d", sc.Epoch, sc.Partitions)
	}
	part, err := sc.PartitionerFor()
	if err != nil {
		t.Fatal(err)
	}
	if p := part.PartitionOf(ycsb.Key(800)); p != 1 {
		t.Fatalf("merged-back key routed to %d, want 1", p)
	}

	// (c) the donor ring is fully retired and the survivor owns the data.
	if ring := d.PartitionRing(newPart); ring != 0 {
		t.Fatalf("donor ring %d still in topology", ring)
	}
	if h := d.ReplicaAt(newPart, 0); h != nil {
		t.Fatal("donor replicas still registered")
	}
	if err := d.RecoverReplica(newPart, 0); err == nil {
		t.Fatal("recovery of the retired donor succeeded")
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, ok := d.ReplicaAt(1, 0).SM.Data().Get(ycsb.Key(800)); ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("survivor never installed the donor's range")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// A fresh client reads and scans the merged range through new routing.
	cl := d.NewClient()
	defer cl.Close()
	v, err := cl.Read(ycsb.Key(801))
	if err != nil || len(v) == 0 {
		t.Fatalf("post-merge read of returned key: %q, %v", v, err)
	}
	entries, err := cl.Scan(ycsb.Key(700), ycsb.Key(850), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 151+workers {
		t.Fatalf("post-merge scan returned %d entries, want %d", len(entries), 151+workers)
	}

	// The retired ring ID is recycled by the next split.
	again, err := coord.SplitPartition(1, ycsb.Key(750))
	if err != nil {
		t.Fatal(err)
	}
	if ring := d.PartitionRing(again); ring != splitRing {
		t.Fatalf("recycled ring = %d, want %d", ring, splitRing)
	}
}

// TestMergeWithoutGlobalRing merges a seed partition on an
// independent-rings deployment down to a single partition.
func TestMergeWithoutGlobalRing(t *testing.T) {
	d, reg := deploySplitStore(t, false)
	coord, err := New(Config{Store: d, Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()

	cl := d.NewClient()
	defer cl.Close()
	if err := cl.Insert(ycsb.Key(900), []byte("pre-merge")); err != nil {
		t.Fatal(err)
	}
	if err := coord.MergePartitions(0, 1); err != nil {
		t.Fatal(err)
	}
	if d.Partitions() != 1 || d.Epoch() != 2 {
		t.Fatalf("after merge: partitions=%d epoch=%d", d.Partitions(), d.Epoch())
	}
	v, err := cl.Read(ycsb.Key(900))
	if err != nil || string(v) != "pre-merge" {
		t.Fatalf("read after merge = %q, %v", v, err)
	}
	if err := cl.Update(ycsb.Key(900), []byte("post-merge")); err != nil {
		t.Fatal(err)
	}
	entries, err := cl.Scan(ycsb.Key(0), ycsb.Key(999), 0)
	if err != nil || len(entries) != records {
		t.Fatalf("full scan after merge = %d entries, %v", len(entries), err)
	}
}

// TestMergeValidation covers coordinator input checks, including the
// global-ring-donor restriction.
func TestMergeValidation(t *testing.T) {
	d, reg := deploySplitStore(t, true)
	coord, err := New(Config{Store: d, Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	if err := coord.MergePartitions(0, 0); err == nil {
		t.Fatal("self merge succeeded")
	}
	if err := coord.MergePartitions(0, 7); err == nil {
		t.Fatal("merge of missing partition succeeded")
	}
	// Seed partitions subscribe to the global ring: not mergeable there.
	if err := coord.MergePartitions(0, 1); err == nil || !strings.Contains(err.Error(), "global ring") {
		t.Fatalf("global-ring donor merge = %v", err)
	}
}

// TestCopyFailureRoutedThroughOrderedAbort injects failures during the
// copy phase of both plans and checks the engine rolls back with the
// ordered abort instead of leaving the range frozen and the topology
// half-applied: writes to the affected range succeed again, the epoch is
// unchanged, and a subsequent reconfiguration works.
func TestCopyFailureRoutedThroughOrderedAbort(t *testing.T) {
	d, reg := deploySplitStore(t, true)
	coord, err := New(Config{Store: d, Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	cl := d.NewClient()
	defer cl.Close()

	boom := errors.New("injected copy failure")
	coord.failpoint = func(step string) error {
		if step == "copy" {
			return boom
		}
		return nil
	}
	if _, err := coord.SplitPartition(1, ycsb.Key(750)); !errors.Is(err, boom) {
		t.Fatalf("split error = %v", err)
	}
	if coord.Aborts() != 1 {
		t.Fatalf("aborts = %d", coord.Aborts())
	}
	// The frozen range serves again at the old epoch; the provisioned
	// partition is gone.
	if d.Epoch() != 1 || d.Partitions() != 2 {
		t.Fatalf("after aborted split: epoch=%d partitions=%d", d.Epoch(), d.Partitions())
	}
	if err := cl.Insert(ycsb.Key(800), []byte("post-abort")); err != nil {
		t.Fatalf("write to unfrozen range: %v", err)
	}

	// With the failpoint cleared the same split succeeds, recycling the
	// aborted provision's ring.
	coord.failpoint = nil
	newPart, err := coord.SplitPartition(1, ycsb.Key(750))
	if err != nil {
		t.Fatal(err)
	}

	// Now abort a merge mid-copy: donor unfreezes, survivor drops the
	// half-transferred chunks, and the retry completes.
	coord.failpoint = func(step string) error {
		if step == "copy" {
			return boom
		}
		return nil
	}
	if err := coord.MergePartitions(1, newPart); !errors.Is(err, boom) {
		t.Fatalf("merge error = %v", err)
	}
	if d.Epoch() != 2 || d.PartitionRing(newPart) == 0 {
		t.Fatalf("aborted merge mutated topology: epoch=%d ring=%d", d.Epoch(), d.PartitionRing(newPart))
	}
	if err := cl.Insert(ycsb.Key(820), []byte("post-merge-abort")); err != nil {
		t.Fatalf("write to unfrozen donor: %v", err)
	}
	coord.failpoint = nil
	if err := coord.MergePartitions(1, newPart); err != nil {
		t.Fatal(err)
	}
	v, err := cl.Read(ycsb.Key(820))
	if err != nil || string(v) != "post-merge-abort" {
		t.Fatalf("read after retried merge = %q, %v", v, err)
	}
}

// TestResolvePendingAbortsCrashedCoordinator kills the coordinator (via
// the crash failpoint) between prepare and commit and has a successor
// coordinator resolve the intent record from the registry: the ordered
// abort unfreezes the range, removes the orphan partition, and the
// deployment is immediately reusable.
func TestResolvePendingAbortsCrashedCoordinator(t *testing.T) {
	d, reg := deploySplitStore(t, true)
	coord, err := New(Config{Store: d, Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	coord.failpoint = func(step string) error {
		if step == "prepare" {
			return errCrash
		}
		return nil
	}
	if _, err := coord.SplitPartition(1, ycsb.Key(750)); !errors.Is(err, errCrash) {
		t.Fatalf("split error = %v", err)
	}
	coord.Close() // the dead coordinator

	// The range is frozen: a short-deadline probe write must redirect
	// forever. (Prove the freeze is real before resolving it.)
	probe := d.NewClient()
	probeErr := make(chan error, 1)
	go func() {
		probeErr <- probe.Insert(ycsb.Key(800), []byte("frozen?"))
	}()
	select {
	case err := <-probeErr:
		t.Fatalf("write to frozen range completed: %v", err)
	case <-time.After(300 * time.Millisecond):
	}

	// A successor coordinator (fresh process state) must refuse new plans
	// while the crashed plan's intent is unresolved — starting one would
	// overwrite the record and strand the frozen range.
	succ, err := New(Config{Store: d, Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer succ.Close()
	if _, err := succ.SplitPartition(0, ycsb.Key(200)); err == nil || !strings.Contains(err.Error(), "ResolvePending") {
		t.Fatalf("new plan over unresolved intent = %v", err)
	}
	plan, err := succ.ResolvePending()
	if err != nil {
		t.Fatal(err)
	}
	if plan == nil || plan.Kind != PlanSplit || plan.Phase == phasePublished {
		t.Fatalf("resolved plan = %+v", plan)
	}
	// The frozen probe write completes once the abort unfreezes the range.
	if err := <-probeErr; err != nil {
		t.Fatalf("probe write after abort: %v", err)
	}
	probe.Close()
	if d.Epoch() != 1 || d.Partitions() != 2 {
		t.Fatalf("after resolve: epoch=%d partitions=%d", d.Epoch(), d.Partitions())
	}
	// Nothing left pending; the next split works.
	if plan, err := succ.ResolvePending(); err != nil || plan != nil {
		t.Fatalf("second resolve = %+v, %v", plan, err)
	}
	if _, err := succ.SplitPartition(1, ycsb.Key(750)); err != nil {
		t.Fatal(err)
	}
}

// TestResolvePendingRollsForwardPublishedPlan crashes the coordinator
// after the schema CAS but before the commit: the successor must roll the
// plan forward (re-order the commit, finish the merge teardown), not abort
// a schema the world can already see.
func TestResolvePendingRollsForwardPublishedPlan(t *testing.T) {
	d, reg := deploySplitStore(t, true)
	coord, err := New(Config{Store: d, Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	coord.failpoint = func(step string) error {
		if step == "publish" {
			return errCrash
		}
		return nil
	}
	if _, err := coord.SplitPartition(1, ycsb.Key(750)); !errors.Is(err, errCrash) {
		t.Fatalf("split error = %v", err)
	}
	coord.Close()

	succ, err := New(Config{Store: d, Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer succ.Close()
	plan, err := succ.ResolvePending()
	if err != nil {
		t.Fatal(err)
	}
	if plan == nil || plan.Phase != phasePublished {
		t.Fatalf("resolved plan = %+v", plan)
	}
	// The split is fully committed: schema, routing, and data movement.
	sc, err := store.LoadSchema(reg)
	if err != nil || sc.Epoch != 2 || sc.Partitions != 3 {
		t.Fatalf("schema after roll-forward: %+v, %v", sc, err)
	}
	cl := d.NewClient()
	defer cl.Close()
	v, err := cl.Read(ycsb.Key(801))
	if err != nil || len(v) == 0 {
		t.Fatalf("read of moved key after roll-forward: %q, %v", v, err)
	}

	// Same crash point on the merge path: the successor re-commits and
	// completes the donor teardown.
	succ.failpoint = func(step string) error {
		if step == "publish" {
			return errCrash
		}
		return nil
	}
	if err := succ.MergePartitions(1, 2); !errors.Is(err, errCrash) {
		t.Fatalf("merge error = %v", err)
	}
	succ.failpoint = nil
	plan, err = succ.ResolvePending()
	if err != nil {
		t.Fatal(err)
	}
	if plan == nil || plan.Kind != PlanMerge {
		t.Fatalf("resolved merge plan = %+v", plan)
	}
	if d.PartitionRing(2) != 0 {
		t.Fatal("donor ring survived the resumed teardown")
	}
	v, err = cl.Read(ycsb.Key(801))
	if err != nil || len(v) == 0 {
		t.Fatalf("read after resumed merge: %q, %v", v, err)
	}
}

// TestSchemaVersionErrorSurfaced: a corrupt schema node in the registry
// must fail the reconfiguration up front instead of silently zeroing the
// CAS token and producing a confusing publish failure later.
func TestSchemaVersionErrorSurfaced(t *testing.T) {
	d, reg := deploySplitStore(t, true)
	coord, err := New(Config{Store: d, Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	reg.Set(store.SchemaPath, []byte("not json"))
	if _, err := coord.SplitPartition(1, ycsb.Key(750)); err == nil || !strings.Contains(err.Error(), "schema") {
		t.Fatalf("corrupt schema node: err = %v", err)
	}
	if err := coord.MergePartitions(0, 1); err == nil {
		t.Fatal("merge with corrupt schema node succeeded")
	}
	// An absent schema, by contrast, is a legitimate zero token.
	reg2 := registry.New()
	coord2, err := New(Config{Store: d, Registry: reg2})
	if err != nil {
		t.Fatal(err)
	}
	defer coord2.Close()
	if _, err := coord2.SplitPartition(1, ycsb.Key(750)); err != nil {
		t.Fatalf("split with unpublished schema: %v", err)
	}
}
