// Package rebalance implements bidirectional elasticity for MRP-Store: an
// ordered reconfiguration engine that repartitions a live deployment with
// zero downtime and no consistency loss — the growth and shrink paths
// behind the paper's scalability claim (Sections 5 and 7.2: processes
// subscribe to additional rings, and services are repartitioned across
// them, while the partitioning schema lives in the coordination service).
//
// # The reconfiguration engine
//
// Every topology change is one Plan executed in ordered phases:
//
//  1. Provision — (splits) build the destination partition's replicas on a
//     ring from the allocator (recycling retired ring IDs) via the runtime
//     subscription path (multiring.Node.Subscribe, Learner.Subscribe).
//     Their state machines start "warming": they reject every client
//     command. Merges skip this phase — their destination already serves.
//  2. Prepare — ordered opPrepareReconfig commands freeze the donor side
//     at one logical point of the delivery order: a split freezes the
//     moved range [splitKey, hi) and installs the post-split mapping on
//     every replica of the ordering ring; a merge first arms the survivor
//     to accept migrate chunks (destination prepare on its ring), then
//     freezes the donor's whole range (donor prepare on its ring). The
//     frozen entries come back with the donor's reply.
//  3. Copy — the frozen entries are streamed in chunks as opMigrate
//     commands on the destination's ring, replicating them through
//     consensus to all destination replicas.
//  4. Activate — (splits) an opActivatePart command on the new ring,
//     ordered after every chunk, ends warming: any replica that serves a
//     client command has installed the complete range first. A merge's
//     activation is its commit (below), ordered the same way.
//  5. Publish — the deployment adopts the new partitioner/epoch and the
//     schema is republished to the registry with compare-and-set, so a
//     concurrent publisher is detected instead of overwritten. Watching
//     clients refresh; stale clients keep self-correcting via redirects.
//  6. Commit — an ordered opCommitReconfig flips ownership: a split's
//     source drops the moved range; a merge's survivor adopts the merged
//     mapping — the donor's partition index falls out of the assignment
//     without renumbering anyone — and starts serving the donor's range.
//  7. Teardown — (merges) the drained donor ring is retired cluster-wide:
//     every donor replica splices the ring out of its deterministic merge
//     (Learner.Unsubscribe), unsubscribes it at the node
//     (Node.Unsubscribe), and stops; the ring ID returns to the allocator
//     for the next split to recycle (store.Deployment.RetirePartition).
//
// Between Prepare and Commit, commands on the frozen range are redirected
// and retried by the client (a freeze window proportional to the moved
// data, not downtime: every command eventually succeeds and all other
// ranges are served throughout). No client op is lost and no stale value
// is served: writes to the frozen range are impossible while frozen, and
// reads are only served by the new owner after it holds the full range.
//
// # Ordered abort
//
// The inverse of Prepare is the ordered opAbortReconfig command: replicas
// holding pending state at the aborted epoch restore the pre-prepare
// mapping, unfreeze frozen ranges, and drop half-transferred entries;
// everyone else treats it as an idempotent duplicate. A failure during
// copy or activation therefore rolls the whole plan back instead of
// leaving the range frozen forever. Before its first ordered command the
// engine records the plan as an intent record in the coordination service;
// a coordinator that dies between prepare and commit is recovered by a
// successor calling ResolvePending, which aborts an uncommitted plan (or
// rolls a published one forward). Electing that successor automatically is
// the auto-sharding controller's leader lease (internal/autoshard): the
// elected controller drives exactly one coordinator, and a takeover runs
// ResolvePending before the policy resumes.
//
// # Crash recovery of replicas
//
// Committed partitions — seed, split-born, and merge survivors alike —
// recover through store.Deployment.RecoverReplica, which derives ring
// membership from the schema. Because every schema transition (prepare,
// commit, abort) is an ordered command, a replica replaying its ring
// reproduces the exact same state — including a prepare that was later
// aborted. Only a provisioned-but-uncommitted partition is unrecoverable:
// its membership is not part of any schema yet; roll it back with
// ResolvePending (or store.Deployment.RemovePartition).
package rebalance

import (
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"time"

	"mrp/internal/msg"
	"mrp/internal/registry"
	"mrp/internal/store"
)

// reconfigPath is where the engine's intent record lives in the
// coordination service: the plan of the reconfiguration currently in
// flight, recorded before its first ordered command so a successor
// coordinator can resolve it after a crash.
const reconfigPath = "/mrp-store/reconfig"

// PlanKind names the two reconfigurations the engine executes.
type PlanKind string

const (
	// PlanSplit carves a key range out of a partition onto a freshly
	// provisioned partition and ring.
	PlanSplit PlanKind = "split"
	// PlanMerge streams a donor partition into an adjacent survivor and
	// retires the donor's ring.
	PlanMerge PlanKind = "merge"
)

// Plan phases recorded in the intent record.
const (
	// phasePrepared: ordered prepares may have happened, the commit has
	// not; resolving this plan means aborting it.
	phasePrepared = "prepared"
	// phasePublished: the schema CAS succeeded; resolving this plan means
	// rolling it forward (commit, and for merges the donor teardown).
	phasePublished = "published"
)

// Plan is one reconfiguration: the donor range being frozen, the
// destination receiving it, the rings ordering each phase, and the schema
// transition being published. It doubles as the intent record persisted to
// the coordination service, so it carries everything a successor
// coordinator needs to abort or finish the plan — including the
// pre-reconfiguration mapping for the rollback.
type Plan struct {
	Kind  PlanKind `json:"kind"`
	Epoch uint64   `json:"epoch"`
	// Donor is the partition losing a range: the split source, or the
	// merge partition being drained and retired.
	Donor int `json:"donor"`
	// Dest is the partition gaining the range: the split's new partition,
	// or the merge survivor.
	Dest int `json:"dest"`
	// SplitKey is the lower bound of the moved range (splits only).
	SplitKey string `json:"splitKey,omitempty"`
	// DonorVia is the ring ordering the donor's prepare/abort/commit: the
	// global ring when the donor subscribes to it, else the donor's own.
	DonorVia uint16 `json:"donorVia"`
	// DestRing is the destination's ring: migrate chunks, activation, and
	// (merges) the commit are ordered on it.
	DestRing uint16 `json:"destRing"`
	// SchemaVersion is the registry CAS token the publish supersedes.
	SchemaVersion uint64 `json:"schemaVersion"`
	// Provisioned records that the plan created Dest (aborts remove it).
	Provisioned bool `json:"provisioned"`
	// Phase is the recovery watermark: phasePrepared until the schema CAS,
	// phasePublished after.
	Phase string `json:"phase"`
	// PrevBounds/PrevAssign record the pre-reconfiguration mapping, so an
	// abort can revert the deployment even from a successor process.
	PrevBounds []string `json:"prevBounds"`
	PrevAssign []int    `json:"prevAssign"`
}

// prevPartitioner rebuilds the pre-reconfiguration mapping.
func (p *Plan) prevPartitioner() (store.Partitioner, error) {
	return store.NewRangePartitionerAssigned(p.PrevBounds, p.PrevAssign)
}

// nextPartitioner rebuilds the post-reconfiguration mapping from the
// recorded pre-reconfiguration one — what a successor rolling the plan
// forward must carry in the ordered commit.
func (p *Plan) nextPartitioner() (store.Partitioner, error) {
	prev, err := store.NewRangePartitionerAssigned(p.PrevBounds, p.PrevAssign)
	if err != nil {
		return nil, err
	}
	switch p.Kind {
	case PlanSplit:
		return prev.Split(p.SplitKey, p.Dest)
	case PlanMerge:
		return prev.Merge(p.Donor, p.Dest)
	}
	return nil, fmt.Errorf("rebalance: unknown plan kind %q", p.Kind)
}

// Config parametrizes a rebalance coordinator.
type Config struct {
	// Store is the deployment to rebalance.
	Store *store.Deployment
	// Registry is the coordination service the schema and the intent
	// record are published to. Optional: without it, clients refresh from
	// the deployment's live topology only and crashed plans can only be
	// resolved by the same process.
	Registry *registry.Registry
	// ChunkEntries bounds how many entries one migration command carries
	// (default 256 — the paper's clients batch commands the same way,
	// Section 7.2).
	ChunkEntries int
	// ChunkInterval, when > 0, pauses between consecutive migrate chunks —
	// the migration budget's rate limit: a large range copy trickles onto
	// the destination ring instead of saturating it, so client commands
	// keep interleaving with the migration. The freeze window grows
	// accordingly; frozen-range commands retry until the commit either
	// way.
	ChunkInterval time.Duration
	// OnStep, when set, observes protocol steps ("prepare", "copy", ...)
	// as they complete; benchmarks mark them on a metrics.Timeline.
	OnStep func(step string)
}

// Coordinator orders online repartitioning commands for one deployment.
// At most one plan runs at a time (CAS on the published schema would
// reject a concurrent coordinator on another process).
type Coordinator struct {
	cfg Config

	mu     sync.Mutex
	client *store.Client
	splits int
	merges int
	aborts int
	// pending is the in-memory intent record (the registry holds the
	// durable copy when configured).
	pending *Plan

	// failpoint, when set (tests), is consulted after each completed step;
	// returning an error injects a failure there, and errCrash simulates
	// the coordinator process dying on the spot (no abort runs).
	failpoint func(step string) error
}

// errCrash is the test failpoint's "the coordinator process died here"
// signal: the engine returns immediately without running its abort path,
// leaving the intent record for ResolvePending.
var errCrash = errors.New("rebalance: simulated coordinator crash")

// CrashAfter arms a one-shot simulated coordinator crash: the next plan
// returns mid-protocol after the named step completes, without running its
// abort path, leaving the intent record for a successor's ResolvePending.
// It exists for failover tests of packages built on the coordinator (the
// auto-sharding controller kills its leader mid-plan this way); production
// code has no reason to call it.
func (c *Coordinator) CrashAfter(step string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.failpoint = func(s string) error {
		if s == step {
			c.failpoint = nil
			return errCrash
		}
		return nil
	}
}

// New creates a coordinator for the deployment.
func New(cfg Config) (*Coordinator, error) {
	if cfg.Store == nil {
		return nil, errors.New("rebalance: nil store deployment")
	}
	if cfg.ChunkEntries <= 0 {
		cfg.ChunkEntries = 256
	}
	return &Coordinator{cfg: cfg, client: cfg.Store.NewClient()}, nil
}

// Close releases the coordinator's admin client.
func (c *Coordinator) Close() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.client.Close()
}

// Splits returns how many splits completed.
func (c *Coordinator) Splits() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.splits
}

// Merges returns how many merges completed.
func (c *Coordinator) Merges() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.merges
}

// Aborts returns how many plans were rolled back with the ordered abort.
func (c *Coordinator) Aborts() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.aborts
}

// step reports a completed protocol step and consults the test failpoint.
func (c *Coordinator) step(s string) error {
	if c.cfg.OnStep != nil {
		c.cfg.OnStep(s)
	}
	if c.failpoint != nil {
		return c.failpoint(s)
	}
	return nil
}

// schemaVersion captures the CAS token for the next publish. A registry
// without a published schema is a legitimate zero token; every other load
// failure (corrupt node) is surfaced — swallowing it here used to turn a
// registry hiccup into a confusing publish failure much later.
func (c *Coordinator) schemaVersion() (uint64, error) {
	if c.cfg.Registry == nil {
		return 0, nil
	}
	_, v, err := store.LoadSchemaAt(c.cfg.Registry)
	if err != nil && !errors.Is(err, store.ErrNoSchema) {
		return 0, fmt.Errorf("rebalance: reading schema version: %w", err)
	}
	return v, nil
}

// orderingRing returns the ring that orders a partition's reconfiguration
// commands: the global ring when the deployment has one and the partition
// subscribes to it, so every partition applies the change at the same
// logical point of the merged delivery order; a partition off the global
// ring (born from a split) orders them through its own ring — other
// partitions' ownership is unaffected, so that is sufficient.
func (c *Coordinator) orderingRing(p int) msg.RingID {
	d := c.cfg.Store
	via := d.GlobalRingID()
	if via == 0 || !d.PartitionOnGlobal(p) {
		via = d.PartitionRing(p)
	}
	return via
}

// recordIntent persists the plan (memory always, registry when
// configured) so a successor coordinator can resolve it after a crash.
func (c *Coordinator) recordIntent(p *Plan) {
	c.pending = p
	if c.cfg.Registry == nil {
		return
	}
	if data, err := json.Marshal(p); err == nil {
		c.cfg.Registry.Set(reconfigPath, data)
	}
}

// clearIntent removes the intent record once the plan is fully resolved.
func (c *Coordinator) clearIntent() {
	c.pending = nil
	if c.cfg.Registry != nil {
		c.cfg.Registry.Delete(reconfigPath)
	}
}

// checkNoPending refuses to start a plan while an unresolved intent
// record exists — a crashed or abort-failed predecessor. Starting anyway
// would overwrite the record, making the stuck plan (and its frozen
// range) unrecoverable.
func (c *Coordinator) checkNoPending() error {
	p, err := c.loadIntent()
	if err != nil {
		return err
	}
	if p != nil {
		return fmt.Errorf("rebalance: unresolved %s reconfiguration at epoch %d (phase %s); run ResolvePending first",
			p.Kind, p.Epoch, p.Phase)
	}
	return nil
}

// loadIntent returns the plan to resolve: the in-memory record, else the
// registry's.
func (c *Coordinator) loadIntent() (*Plan, error) {
	if c.pending != nil {
		cp := *c.pending
		return &cp, nil
	}
	if c.cfg.Registry == nil {
		return nil, nil
	}
	data, _, ok := c.cfg.Registry.Get(reconfigPath)
	if !ok || len(data) == 0 {
		return nil, nil
	}
	var p Plan
	if err := json.Unmarshal(data, &p); err != nil {
		return nil, fmt.Errorf("rebalance: corrupt intent record: %w", err)
	}
	return &p, nil
}

// SplitPartition splits the key range [splitKey, hi) out of partition src
// into a new partition on a new ring, live. It returns the new partition's
// index. The deployment must be range-partitioned.
func (c *Coordinator) SplitPartition(src int, splitKey string) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	d := c.cfg.Store

	if err := c.checkNoPending(); err != nil {
		return 0, err
	}
	cur, ok := d.Partitioner().(*store.RangePartitioner)
	if !ok {
		return 0, fmt.Errorf("rebalance: split requires range partitioning, deployment uses %T", d.Partitioner())
	}
	if src < 0 || src >= cur.N() {
		return 0, fmt.Errorf("rebalance: no partition %d", src)
	}
	if cur.PartitionOf(splitKey) != src {
		return 0, fmt.Errorf("rebalance: split key %q is owned by partition %d, not %d",
			splitKey, cur.PartitionOf(splitKey), src)
	}
	epoch := d.Epoch() + 1
	newPart := cur.N()
	next, err := cur.Split(splitKey, newPart)
	if err != nil {
		return 0, err
	}
	version, err := c.schemaVersion()
	if err != nil {
		return 0, err
	}
	plan := &Plan{
		Kind: PlanSplit, Epoch: epoch, Donor: src, Dest: newPart,
		SplitKey: splitKey, DonorVia: uint16(c.orderingRing(src)),
		SchemaVersion: version, Phase: phasePrepared,
		PrevBounds: cur.Bounds(), PrevAssign: cur.Assignments(),
	}

	// 1. Provision the new partition's replicas on a ring from the
	// allocator (recycling retired ring IDs before minting new ones).
	ring, addrs, err := d.AddPartition(next, newPart, epoch) //mrp:nolint lockorder — the coordinator mutex deliberately serializes whole reconfigurations end to end; it is control-plane-only, no data-plane path takes it
	if err != nil {
		return 0, err
	}
	plan.DestRing = uint16(ring)
	plan.Provisioned = true
	c.client.AddRoute(ring, addrs)
	c.recordIntent(plan)
	if err := c.step("provision"); err != nil {
		return 0, c.failed(plan, "provision", err) //mrp:nolint lockorder — the coordinator mutex deliberately serializes whole reconfigurations end to end; it is control-plane-only, no data-plane path takes it
	}

	if err := c.runSplit(plan, next); err != nil { //mrp:nolint lockorder — the coordinator mutex deliberately serializes whole reconfigurations end to end; it is control-plane-only, no data-plane path takes it
		return 0, err
	}
	c.splits++
	return newPart, nil
}

// runSplit executes the ordered phases of a recorded split plan.
func (c *Coordinator) runSplit(plan *Plan, next store.Partitioner) error {
	d := c.cfg.Store
	via := msg.RingID(plan.DonorVia)
	ring := msg.RingID(plan.DestRing)

	// 2. Prepare: freeze and collect the moved range. The command carries
	// the authoritative post-split mapping: replicas install it instead of
	// deriving it from views that reconfigurations on other rings may have
	// left stale. A lease revocation is ordered on the same ring first so
	// no read lease granted against the pre-freeze state spans the freeze.
	if err := c.client.RevokeLease(via); err != nil {
		return c.failed(plan, "prepare", err)
	}
	moved, err := c.client.PrepareSplit(via, plan.Donor, plan.SplitKey, plan.Dest, plan.Epoch, next)
	if err != nil {
		return c.failed(plan, "prepare", err)
	}
	if err := c.step("prepare"); err != nil {
		return c.failed(plan, "prepare", err)
	}

	// 3. Copy the range onto the new ring, chunked.
	if err := c.copyChunks(ring, plan.Dest, plan.Epoch, moved); err != nil {
		return c.failed(plan, "copy", err)
	}
	if err := c.step("copy"); err != nil {
		return c.failed(plan, "copy", err)
	}

	// 4. Activate the new partition.
	if err := c.client.ActivatePartition(ring, plan.Dest, plan.Epoch); err != nil {
		return c.failed(plan, "activate", err)
	}
	if err := c.step("activate"); err != nil {
		return c.failed(plan, "activate", err)
	}

	// 5. Publish the new schema (CAS) and adopt it locally.
	d.AdoptReconfig(plan.Epoch, next)
	if err := c.publish(plan); err != nil {
		return c.failed(plan, "publish", err)
	}
	if err := c.step("publish"); err != nil {
		return c.failed(plan, "publish", err)
	}

	// 6. Commit: flip ownership and drop the frozen range at the source.
	if err := c.client.CommitSplit(via, plan.Donor, plan.Epoch); err != nil {
		return fmt.Errorf("rebalance: commit: %w (schema already published; resolve with ResolvePending)", err)
	}
	if err := c.step("commit"); err != nil && !errors.Is(err, errCrash) {
		return err
	}
	c.clearIntent()
	return nil
}

// MergePartitions streams partition donor into the adjacent partition
// survivor, live, then retires the donor's ring: the inverse of
// SplitPartition. The donor's index drops out of the published assignment
// without renumbering any surviving partition, and its ring ID returns to
// the allocator for the next split to recycle. The donor must not
// subscribe to the global ring (its nodes are torn down whole; partitions
// born from a split never subscribe, and deployments without a global ring
// are unrestricted).
func (c *Coordinator) MergePartitions(survivor, donor int) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	d := c.cfg.Store

	if err := c.checkNoPending(); err != nil {
		return err
	}
	cur, ok := d.Partitioner().(*store.RangePartitioner)
	if !ok {
		return fmt.Errorf("rebalance: merge requires range partitioning, deployment uses %T", d.Partitioner())
	}
	next, err := cur.Merge(donor, survivor)
	if err != nil {
		return fmt.Errorf("rebalance: %w", err)
	}
	if d.GlobalRingID() != 0 && d.PartitionOnGlobal(donor) {
		return fmt.Errorf("rebalance: donor partition %d subscribes to the global ring; only partitions off it (e.g. born from a split) can be merged away", donor)
	}
	epoch := d.Epoch() + 1
	version, err := c.schemaVersion()
	if err != nil {
		return err
	}
	plan := &Plan{
		Kind: PlanMerge, Epoch: epoch, Donor: donor, Dest: survivor,
		DonorVia: uint16(d.PartitionRing(donor)), DestRing: uint16(d.PartitionRing(survivor)),
		SchemaVersion: version, Phase: phasePrepared,
		PrevBounds: cur.Bounds(), PrevAssign: cur.Assignments(),
	}
	c.recordIntent(plan)

	if err := c.runMerge(plan, next); err != nil { //mrp:nolint lockorder — the coordinator mutex deliberately serializes whole reconfigurations end to end; it is control-plane-only, no data-plane path takes it
		return err
	}
	c.merges++
	return nil
}

// runMerge executes the ordered phases of a recorded merge plan.
func (c *Coordinator) runMerge(plan *Plan, next store.Partitioner) error {
	d := c.cfg.Store
	donorRing := msg.RingID(plan.DonorVia)
	destRing := msg.RingID(plan.DestRing)

	// 2a. Prepare the survivor: arm it to accept epoch-tagged chunks. As
	// with a split, each prepare is preceded by a lease revocation ordered
	// on its own ring, so neither side's read lease spans the freeze.
	if err := c.client.RevokeLease(destRing); err != nil {
		return c.failed(plan, "prepare", err)
	}
	if err := c.client.PrepareMergeDest(destRing, plan.Donor, plan.Dest, plan.Epoch); err != nil {
		return c.failed(plan, "prepare", err)
	}
	// 2b. Prepare the donor: freeze its whole range and collect it.
	if err := c.client.RevokeLease(donorRing); err != nil {
		return c.failed(plan, "prepare", err)
	}
	moved, err := c.client.PrepareMergeDonor(donorRing, plan.Donor, plan.Dest, plan.Epoch)
	if err != nil {
		return c.failed(plan, "prepare", err)
	}
	if err := c.step("prepare"); err != nil {
		return c.failed(plan, "prepare", err)
	}

	// 3. Copy the donor's range onto the survivor's ring, chunked.
	if err := c.copyChunks(destRing, plan.Dest, plan.Epoch, moved); err != nil {
		return c.failed(plan, "copy", err)
	}
	if err := c.step("copy"); err != nil {
		return c.failed(plan, "copy", err)
	}

	// 5. Publish the post-merge schema (CAS) and adopt it locally. (A
	// merge has no separate activation: the commit below, ordered on the
	// survivor's ring behind every chunk, plays that role.)
	d.AdoptReconfig(plan.Epoch, next)
	if err := c.publish(plan); err != nil {
		return c.failed(plan, "publish", err)
	}
	if err := c.step("publish"); err != nil {
		return c.failed(plan, "publish", err)
	}

	// 6. Commit: the survivor adopts the merged mapping (carried with the
	// command) and serves the donor's range; the donor stays frozen until
	// its teardown.
	if err := c.client.CommitMerge(destRing, plan.Donor, plan.Dest, plan.Epoch, next); err != nil {
		return fmt.Errorf("rebalance: commit: %w (schema already published; resolve with ResolvePending)", err)
	}
	if err := c.step("commit"); err != nil && !errors.Is(err, errCrash) {
		return err
	}

	// 7. Teardown: retire the drained donor ring cluster-wide.
	if err := d.RetirePartition(plan.Donor); err != nil {
		return fmt.Errorf("rebalance: retire: %w (merge committed; resolve with ResolvePending)", err)
	}
	if err := c.step("retire"); err != nil && !errors.Is(err, errCrash) {
		return err
	}
	c.clearIntent()
	return nil
}

// publish compare-and-sets the deployment's (already adopted) schema into
// the registry and advances the plan's recovery watermark.
func (c *Coordinator) publish(plan *Plan) error {
	if c.cfg.Registry != nil {
		if _, ok, err := c.cfg.Store.PublishSchemaCAS(c.cfg.Registry, plan.SchemaVersion); err != nil {
			return err
		} else if !ok {
			return fmt.Errorf("concurrent schema publisher detected (expected version %d)", plan.SchemaVersion)
		}
	}
	plan.Phase = phasePublished
	c.recordIntent(plan)
	return nil
}

// copyChunks streams the frozen entries to the destination ring, pacing
// consecutive chunks by the configured migration budget.
func (c *Coordinator) copyChunks(ring msg.RingID, dest int, epoch uint64, moved []store.Entry) error {
	for lo := 0; lo < len(moved); lo += c.cfg.ChunkEntries {
		if lo > 0 && c.cfg.ChunkInterval > 0 {
			time.Sleep(c.cfg.ChunkInterval)
		}
		hi := lo + c.cfg.ChunkEntries
		if hi > len(moved) {
			hi = len(moved)
		}
		if err := c.client.MigrateChunk(ring, dest, epoch, moved[lo:hi]); err != nil {
			return err
		}
	}
	return nil
}

// failed handles a phase failure: a simulated coordinator crash returns
// immediately (the intent record stays for ResolvePending); every real
// failure between prepare and commit is routed through the ordered abort,
// so the frozen range unfreezes and orphaned state is removed instead of
// being left half-applied.
func (c *Coordinator) failed(plan *Plan, phase string, err error) error {
	if errors.Is(err, errCrash) {
		return err
	}
	if aerr := c.abortPlan(plan); aerr != nil {
		return fmt.Errorf("rebalance: %s: %w (abort also failed: %v)", phase, err, aerr)
	}
	return fmt.Errorf("rebalance: %s: %w (rolled back with ordered abort)", phase, err)
}

// abortPlan rolls a prepared plan back: ordered opAbortReconfig commands
// unfreeze the donor and disarm/clean the destination, the deployment's
// adopted mapping (and a published schema) is reverted if the plan got
// that far, and a provisioned split partition is removed. Every step is
// idempotent against replicas that never saw the prepare, so it is safe
// after a crash at any phase before the commit.
func (c *Coordinator) abortPlan(plan *Plan) error {
	d := c.cfg.Store
	var errs []error
	if err := c.client.AbortReconfig(msg.RingID(plan.DonorVia), plan.Epoch); err != nil {
		errs = append(errs, fmt.Errorf("donor abort: %w", err))
	}
	if plan.Kind == PlanMerge {
		if err := c.client.AbortReconfig(msg.RingID(plan.DestRing), plan.Epoch); err != nil {
			errs = append(errs, fmt.Errorf("destination abort: %w", err))
		}
	}
	if prev, err := plan.prevPartitioner(); err == nil {
		d.RevertReconfig(plan.Epoch, prev)
	} else {
		errs = append(errs, fmt.Errorf("intent record mapping: %w", err))
	}
	if c.cfg.Registry != nil {
		// Reconcile a schema that was already published at the aborted
		// epoch back to the reverted mapping — republished under the
		// aborted epoch itself, because clients that saw it refuse (by
		// design) to install an older one.
		if s, v, err := store.LoadSchemaAt(c.cfg.Registry); err == nil && s.Epoch == plan.Epoch {
			if _, ok, err := d.PublishSchemaAsCAS(c.cfg.Registry, plan.Epoch, v); err != nil || !ok {
				errs = append(errs, fmt.Errorf("republishing reverted schema: %v (cas ok=%v)", err, ok))
			}
		}
	}
	if plan.Kind == PlanSplit && plan.Provisioned {
		if err := d.RemovePartition(plan.Dest); err != nil {
			errs = append(errs, fmt.Errorf("removing provisioned partition: %w", err))
		}
	}
	if len(errs) > 0 {
		return errors.Join(errs...)
	}
	c.clearIntent()
	c.aborts++
	if c.cfg.OnStep != nil {
		c.cfg.OnStep("abort")
	}
	return nil
}

// ResolvePending inspects the recorded reconfiguration intent — of this
// coordinator or a crashed predecessor — and finishes it: a plan that
// died before its commit is rolled back with the ordered abort (the
// frozen range unfreezes, a provisioned partition is removed), and a plan
// that died after publishing its schema is rolled forward (the commit is
// re-ordered and, for merges, the donor teardown completed; both are
// idempotent). It returns the plan it resolved, or nil when nothing was
// pending.
func (c *Coordinator) ResolvePending() (*Plan, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	plan, err := c.loadIntent()
	if err != nil || plan == nil {
		return nil, err
	}
	if plan.Phase != phasePublished {
		if err := c.abortPlan(plan); err != nil { //mrp:nolint lockorder — the coordinator mutex deliberately serializes whole reconfigurations end to end; it is control-plane-only, no data-plane path takes it
			return plan, err
		}
		return plan, nil
	}
	// Published: roll forward.
	switch plan.Kind {
	case PlanSplit:
		if err := c.client.CommitSplit(msg.RingID(plan.DonorVia), plan.Donor, plan.Epoch); err != nil { //mrp:nolint lockorder — the coordinator mutex deliberately serializes whole reconfigurations end to end; it is control-plane-only, no data-plane path takes it
			return plan, fmt.Errorf("rebalance: resuming commit: %w", err)
		}
	case PlanMerge:
		next, err := plan.nextPartitioner()
		if err != nil {
			return plan, fmt.Errorf("rebalance: resuming commit: %w", err)
		}
		if err := c.client.CommitMerge(msg.RingID(plan.DestRing), plan.Donor, plan.Dest, plan.Epoch, next); err != nil { //mrp:nolint lockorder — the coordinator mutex deliberately serializes whole reconfigurations end to end; it is control-plane-only, no data-plane path takes it
			return plan, fmt.Errorf("rebalance: resuming commit: %w", err)
		}
		if err := c.cfg.Store.RetirePartition(plan.Donor); err != nil {
			return plan, fmt.Errorf("rebalance: resuming teardown: %w", err)
		}
	}
	c.clearIntent()
	return plan, nil
}
