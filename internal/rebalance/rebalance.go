// Package rebalance implements elastic rebalancing for MRP-Store: an
// online repartitioning coordinator that splits a partition onto a freshly
// subscribed ring with zero downtime and no consistency loss — the growth
// path behind the paper's scalability claim (Sections 5 and 7.2: processes
// subscribe to additional rings, and services are repartitioned across
// them, while the partitioning schema lives in the coordination service).
//
// # Protocol
//
// SplitPartition(src, splitKey) moves the key range [splitKey, hi) of
// partition src to a brand-new partition in six totally-ordered steps:
//
//  1. Provision — build the new partition's replicas on a freshly
//     allocated ring via the runtime subscription path
//     (multiring.Node.Subscribe, Learner.Subscribe). Their state machines
//     start "warming": they reject every client command.
//  2. Prepare — an opPrepareSplit command ordered through the global ring
//     (or the source partition's ring when no global ring is deployed)
//     makes every replica adopt the post-split key mapping at the same
//     logical point. The source partition freezes the moved range —
//     commands addressing it now get the typed wrong-epoch redirect — and
//     returns its entries.
//  3. Copy — the frozen entries are streamed in chunks as opMigrate
//     commands on the new ring, replicating them through consensus to all
//     new replicas.
//  4. Activate — an opActivatePart command on the new ring, ordered after
//     every chunk, ends warming: any replica that serves a client command
//     has installed the complete range first.
//  5. Publish — the deployment adopts the new partitioner/epoch and the
//     schema is republished to the registry with compare-and-set, so a
//     concurrent publisher is detected instead of overwritten. Watching
//     clients refresh; stale clients keep self-correcting via redirects.
//  6. Commit — an opCommitSplit command ordered through the same ring as
//     Prepare flips ownership: the source drops the moved range and all
//     replicas adopt the new epoch.
//
// Between Prepare and Publish, commands on the moved range are redirected
// and retried by the client (a freeze window proportional to the moved
// data, not downtime: every command eventually succeeds and all other
// ranges are served throughout). No client op is lost and no stale value
// is served: writes to the moved range are impossible while frozen, and
// reads are only served by the new partition after it holds the full
// range.
//
// # Crash recovery after a split
//
// Once a split commits, the new partition is a first-class member of the
// schema, and its replicas recover exactly like seed replicas: the store's
// recovery path (store.Deployment.RecoverReplica) derives ring membership,
// roles, and subscription points from the schema rather than the static
// deploy config, gathers a checkpoint from a quorum Q_R of partition
// peers (internal/recovery), re-subscribes the runtime ring at the
// recovered frontier, and replays the suffix from the acceptors. A
// replica with no usable checkpoint replays the full ring from the
// partition's deterministic birth state — warming, at the split's epoch —
// so the replayed migration chunks and activation command apply exactly
// as they originally did. The acceptance test kills and recovers a
// new-partition replica under the concurrent YCSB-A workload to pin this
// down. Only a provisioned-but-uncommitted partition (a split that died
// mid-protocol) is unrecoverable: its membership is not part of any
// schema yet; roll it back with RemovePartition instead.
package rebalance

import (
	"errors"
	"fmt"
	"sync"

	"mrp/internal/registry"
	"mrp/internal/store"
)

// Config parametrizes a rebalance coordinator.
type Config struct {
	// Store is the deployment to rebalance.
	Store *store.Deployment
	// Registry is the coordination service the schema is published to.
	// Optional: without it, clients refresh from the deployment's live
	// topology only.
	Registry *registry.Registry
	// ChunkEntries bounds how many entries one migration command carries
	// (default 256 — the paper's clients batch commands the same way,
	// Section 7.2).
	ChunkEntries int
	// OnStep, when set, observes protocol steps ("prepare", "copy", ...)
	// as they complete; benchmarks mark them on a metrics.Timeline.
	OnStep func(step string)
}

// Coordinator orders online repartitioning commands for one deployment.
// At most one split runs at a time (CAS on the published schema would
// reject a concurrent coordinator on another process).
type Coordinator struct {
	cfg Config

	mu     sync.Mutex
	client *store.Client
	splits int
}

// New creates a coordinator for the deployment.
func New(cfg Config) (*Coordinator, error) {
	if cfg.Store == nil {
		return nil, errors.New("rebalance: nil store deployment")
	}
	if cfg.ChunkEntries <= 0 {
		cfg.ChunkEntries = 256
	}
	return &Coordinator{cfg: cfg, client: cfg.Store.NewClient()}, nil
}

// Close releases the coordinator's admin client.
func (c *Coordinator) Close() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.client.Close()
}

// Splits returns how many splits completed.
func (c *Coordinator) Splits() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.splits
}

func (c *Coordinator) step(s string) {
	if c.cfg.OnStep != nil {
		c.cfg.OnStep(s)
	}
}

// SplitPartition splits the key range [splitKey, hi) out of partition src
// into a new partition on a new ring, live. It returns the new partition's
// index. The deployment must be range-partitioned.
func (c *Coordinator) SplitPartition(src int, splitKey string) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	d := c.cfg.Store

	cur, ok := d.Partitioner().(*store.RangePartitioner)
	if !ok {
		return 0, fmt.Errorf("rebalance: split requires range partitioning, deployment uses %T", d.Partitioner())
	}
	if src < 0 || src >= cur.N() {
		return 0, fmt.Errorf("rebalance: no partition %d", src)
	}
	if cur.PartitionOf(splitKey) != src {
		return 0, fmt.Errorf("rebalance: split key %q is owned by partition %d, not %d",
			splitKey, cur.PartitionOf(splitKey), src)
	}
	epoch := d.Epoch() + 1
	newPart := cur.N()
	next, err := cur.Split(splitKey, newPart)
	if err != nil {
		return 0, err
	}
	// The CAS token: the schema version this split supersedes.
	var schemaVersion uint64
	if c.cfg.Registry != nil {
		if _, v, err := store.LoadSchemaAt(c.cfg.Registry); err == nil {
			schemaVersion = v
		}
	}

	// 1. Provision the new partition's replicas on a fresh ring.
	part, ring, addrs, err := d.AddPartition(next, epoch)
	if err != nil {
		return 0, err
	}
	if part != newPart {
		// A previous failed split left an orphan partition behind; wiring
		// this one up would route the moved range to the wrong replicas.
		_ = d.RemovePartition(part)
		return 0, fmt.Errorf("rebalance: deployment has %d partitions provisioned but %d committed; resolve the stale partition first",
			part, newPart)
	}
	c.client.AddRoute(ring, addrs)
	c.step("provision")

	// Splits and commits are ordered through the global ring when the
	// deployment has one and the source subscribes to it, so every
	// partition applies them at the same logical point of the merged
	// delivery order. A source off the global ring (itself born from a
	// split) orders them through its own ring — other partitions'
	// ownership is unaffected by this split, so that is sufficient.
	via := d.GlobalRingID()
	if via == 0 || !d.PartitionOnGlobal(src) {
		via = d.PartitionRing(src)
	}

	// 2. Prepare: freeze and collect the moved range. A failure here means
	// the freeze was (almost certainly) never ordered — validation errors
	// and unreachable rings, against a 20 s deadline that dwarfs ordering
	// latency — so the provisioned partition is rolled back. Failures
	// after this point leave the split half-applied on purpose: undoing a
	// frozen range needs an ordered abort command (future work, like
	// split-partition recovery), not a silent local rollback.
	moved, err := c.client.PrepareSplit(via, src, splitKey, newPart, epoch)
	if err != nil {
		_ = d.RemovePartition(newPart)
		return 0, fmt.Errorf("rebalance: prepare: %w", err)
	}
	c.step("prepare")

	// 3. Copy the range onto the new ring, chunked.
	for lo := 0; lo < len(moved); lo += c.cfg.ChunkEntries {
		hi := lo + c.cfg.ChunkEntries
		if hi > len(moved) {
			hi = len(moved)
		}
		if err := c.client.MigrateChunk(ring, epoch, moved[lo:hi]); err != nil {
			return 0, fmt.Errorf("rebalance: copy: %w", err)
		}
	}
	c.step("copy")

	// 4. Activate the new partition.
	if err := c.client.ActivatePartition(ring, newPart, epoch); err != nil {
		return 0, fmt.Errorf("rebalance: activate: %w", err)
	}
	c.step("activate")

	// 5. Publish the new schema (CAS) and adopt it locally.
	d.AdoptSplit(epoch, next)
	if c.cfg.Registry != nil {
		if _, ok, err := d.PublishSchemaCAS(c.cfg.Registry, schemaVersion); err != nil {
			return 0, fmt.Errorf("rebalance: publish: %w", err)
		} else if !ok {
			return 0, fmt.Errorf("rebalance: concurrent schema publisher detected (expected version %d)", schemaVersion)
		}
	}
	c.step("publish")

	// 6. Commit: flip ownership and drop the frozen range at the source.
	if err := c.client.CommitSplit(via, src, epoch); err != nil {
		return 0, fmt.Errorf("rebalance: commit: %w", err)
	}
	c.step("commit")
	c.splits++
	return newPart, nil
}
