package rebalance

import (
	"bytes"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"mrp/internal/metrics"
	"mrp/internal/netsim"
	"mrp/internal/registry"
	"mrp/internal/storage"
	"mrp/internal/store"
	"mrp/internal/ycsb"
)

const records = 1000

func deploySplitStore(t *testing.T, global bool) (*store.Deployment, *registry.Registry) {
	t.Helper()
	net := netsim.New(netsim.WithUniformLatency(20 * time.Microsecond))
	d, err := store.Deploy(store.DeployConfig{
		Net:        net,
		Partitions: 2,
		Replicas:   3,
		GlobalRing: global,
		// Initial split of the YCSB key space: partition 0 below user500,
		// partition 1 from user500 up.
		Partitioner: store.NewRangePartitioner([]string{ycsb.Key(500)}),
		StorageMode: storage.InMemory,
		// λ must exceed the offered load or the global ring's skips pace
		// the merge below it (Section 4 rate leveling).
		SkipInterval: 5 * time.Millisecond,
		SkipRate:     9000,
		RetryTimeout: 60 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		d.Stop()
		net.Close()
	})
	reg := registry.New()
	if err := d.PublishSchema(reg); err != nil {
		t.Fatal(err)
	}
	var recs []store.Entry
	for _, o := range ycsb.Load(ycsb.Config{RecordCount: records, ValueSize: 64}) {
		recs = append(recs, store.Entry{Key: o.Key, Value: o.Value})
	}
	d.Preload(recs)
	return d, reg
}

// TestLiveSplitUnderConcurrentWorkload is the acceptance scenario of the
// elastic-rebalancing subsystem: an MRP-Store deployment serves a
// concurrent YCSB-style workload while partition 1 is split at user750
// onto a freshly subscribed ring. It verifies that (a) no client op is
// lost or observes a stale value across the migration, (b) post-split
// reads of migrated keys are served by the new partition, and (c) the
// bench timeline shows throughput recovering after the split.
func TestLiveSplitUnderConcurrentWorkload(t *testing.T) {
	d, reg := deploySplitStore(t, true)
	tl := metrics.NewTimeline(100 * time.Millisecond)

	coord, err := New(Config{
		Store:    d,
		Registry: reg,
		OnStep:   func(s string) { tl.Mark(time.Now(), s) },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()

	var (
		stop    atomic.Bool
		opCount atomic.Uint64
		wg      sync.WaitGroup
		failMu  sync.Mutex
		fails   []string
	)
	failf := func(format string, args ...any) {
		failMu.Lock()
		fails = append(fails, fmt.Sprintf(format, args...))
		failMu.Unlock()
		stop.Store(true)
	}

	// Read-your-writes workers: each owns disjoint keys on both sides of
	// the coming split point (user750), writes a monotonically increasing
	// value and immediately reads it back. Any lost write or stale read
	// trips the harness. Worker 0 routes via the registry-published schema
	// (watch-refreshed); the others via the deployment's live topology.
	const workers = 3
	for w := 0; w < workers; w++ {
		var cl *store.Client
		if w == 0 {
			cl, err = d.NewRegistryClient(reg)
			if err != nil {
				t.Fatal(err)
			}
		} else {
			cl = d.NewClient()
		}
		// Suffixed keys sort right after their YCSB neighbor (routing to
		// the same partition) but are disjoint from the concurrent YCSB
		// updater's keyspace, so read-your-writes holds per worker.
		keys := []string{
			fmt.Sprintf("%s-w%d", ycsb.Key(200), w), // partition 0, untouched by the split
			fmt.Sprintf("%s-w%d", ycsb.Key(600), w), // partition 1, stays after the split
			fmt.Sprintf("%s-w%d", ycsb.Key(800), w), // partition 1, moved to the new partition
		}
		wg.Add(1)
		go func(w int, cl *store.Client) {
			defer wg.Done()
			defer cl.Close()
			for seq := 0; !stop.Load(); seq++ {
				for _, k := range keys {
					want := []byte(fmt.Sprintf("w%d-seq%d", w, seq))
					start := time.Now()
					if err := cl.Insert(k, want); err != nil {
						failf("worker %d: insert %s: %v", w, k, err)
						return
					}
					got, err := cl.Read(k)
					if err != nil {
						failf("worker %d: read %s: %v", w, k, err)
						return
					}
					if !bytes.Equal(got, want) {
						failf("worker %d: stale read %s: got %q want %q", w, k, got, want)
						return
					}
					tl.RecordOp(time.Now(), time.Since(start))
					opCount.Add(2)
				}
			}
		}(w, cl)
	}

	// A YCSB workload-A client (50% read / 50% update, zipfian) over the
	// whole preloaded key space.
	wg.Add(1)
	go func() {
		defer wg.Done()
		cl := d.NewClient()
		defer cl.Close()
		gen := ycsb.New(ycsb.Config{Workload: ycsb.WorkloadA, RecordCount: records, ValueSize: 64, Seed: 7})
		for !stop.Load() {
			o := gen.Next()
			start := time.Now()
			var err error
			switch o.Kind {
			case ycsb.OpRead:
				_, err = cl.Read(o.Key)
			case ycsb.OpUpdate:
				err = cl.Update(o.Key, o.Value)
			}
			if err != nil {
				failf("ycsb %s %s: %v", o.Kind, o.Key, err)
				return
			}
			tl.RecordOp(time.Now(), time.Since(start))
			opCount.Add(1)
		}
	}()

	// Steady state, then the live split, then recovery.
	time.Sleep(500 * time.Millisecond)
	preOps := opCount.Load()
	splitStart := time.Now()
	tl.Mark(splitStart, "split initiated")
	newPart, err := coord.SplitPartition(1, ycsb.Key(750))
	if err != nil {
		t.Fatal(err)
	}
	splitDone := time.Now()

	// Crash a replica of the just-created partition while the workload
	// keeps running, then recover it: recovery derives the partition's
	// ring membership from the schema, so a deployment that grew by a live
	// split keeps its fault tolerance.
	d.CrashReplica(newPart, 2)
	time.Sleep(150 * time.Millisecond)
	if err := d.RecoverReplica(newPart, 2); err != nil {
		t.Fatalf("crash+recover of split-partition replica: %v", err)
	}

	time.Sleep(500 * time.Millisecond)
	stop.Store(true)
	wg.Wait()

	// The recovered replica replays the ring (migration chunks, activation,
	// workload commands) and converges with its surviving peers.
	recDeadline := time.Now().Add(10 * time.Second)
	for {
		s0 := d.ReplicaAt(newPart, 0).Replica.StateSnapshot()
		s2 := d.ReplicaAt(newPart, 2).Replica.StateSnapshot()
		if bytes.Equal(s0, s2) {
			break
		}
		if time.Now().After(recDeadline) {
			t.Fatal("recovered split-partition replica did not converge")
		}
		time.Sleep(10 * time.Millisecond)
	}

	if len(fails) > 0 {
		t.Fatalf("workload failures (first of %d): %s", len(fails), fails[0])
	}
	if got := opCount.Load(); got <= preOps {
		t.Fatalf("no ops completed after the split (pre=%d total=%d)", preOps, got)
	}

	// (b) migrated keys are owned and served by the new partition.
	if newPart != 2 {
		t.Fatalf("new partition = %d", newPart)
	}
	sc, err := store.LoadSchema(reg)
	if err != nil {
		t.Fatal(err)
	}
	if sc.Epoch != 2 || sc.Partitions != 3 {
		t.Fatalf("published schema epoch=%d partitions=%d", sc.Epoch, sc.Partitions)
	}
	part, err := sc.PartitionerFor()
	if err != nil {
		t.Fatal(err)
	}
	if p := part.PartitionOf(ycsb.Key(800)); p != 2 {
		t.Fatalf("user000000000800 routed to %d, want 2", p)
	}
	if p := part.PartitionOf(ycsb.Key(600)); p != 1 {
		t.Fatalf("user000000000600 routed to %d, want 1", p)
	}
	// The new partition's replicas hold the moved range; after the commit
	// the source eventually drops it (the commit is ordered behind the
	// last workload commands, so poll briefly).
	deadline := time.Now().Add(5 * time.Second)
	for {
		_, newHas := d.ReplicaAt(2, 0).SM.Data().Get(ycsb.Key(800))
		_, oldHas := d.ReplicaAt(1, 0).SM.Data().Get(ycsb.Key(800))
		if newHas && !oldHas {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("ownership flip incomplete: new=%v old=%v", newHas, oldHas)
		}
		time.Sleep(5 * time.Millisecond)
	}
	// A fresh client reads a migrated key through the new routing.
	cl := d.NewClient()
	defer cl.Close()
	v, err := cl.Read(ycsb.Key(801))
	if err != nil || len(v) == 0 {
		t.Fatalf("post-split read of migrated key: %q, %v", v, err)
	}
	// Post-split scans fan out across old and new partitions and must see
	// exactly the preloaded keys of the range (151) plus the three worker
	// keys suffixed onto user...800.
	entries, err := cl.Scan(ycsb.Key(700), ycsb.Key(850), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 151+workers {
		t.Fatalf("post-split scan returned %d entries, want %d", len(entries), 151+workers)
	}

	// (c) throughput recovers after the split.
	samples := tl.Samples()
	window := 100 * time.Millisecond
	origin := tl.Start()
	steady := meanThroughput(samples, 1, int(splitStart.Sub(origin)/window))
	recovered := meanThroughput(samples, int(splitDone.Sub(origin)/window)+1, len(samples)-1)
	t.Logf("steady=%.0f ops/s recovered=%.0f ops/s split took %v (%d timeline events)",
		steady, recovered, splitDone.Sub(splitStart), len(tl.Events()))
	if steady <= 0 || recovered <= 0 {
		t.Fatalf("timeline has no throughput: steady=%.0f recovered=%.0f", steady, recovered)
	}
	if recovered < steady/4 {
		t.Fatalf("throughput did not recover: steady=%.0f recovered=%.0f", steady, recovered)
	}
}

func meanThroughput(s []metrics.Sample, lo, hi int) float64 {
	if lo < 0 {
		lo = 0
	}
	if hi > len(s) {
		hi = len(s)
	}
	if hi <= lo {
		return 0
	}
	sum := 0.0
	for _, x := range s[lo:hi] {
		sum += x.Throughput
	}
	return sum / float64(hi-lo)
}

// TestSplitWithoutGlobalRing runs the split protocol on an
// independent-rings deployment: prepare/commit are ordered through the
// source partition's own ring.
func TestSplitWithoutGlobalRing(t *testing.T) {
	d, reg := deploySplitStore(t, false)
	coord, err := New(Config{Store: d, Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()

	cl := d.NewClient()
	defer cl.Close()
	if err := cl.Insert(ycsb.Key(900), []byte("pre-split")); err != nil {
		t.Fatal(err)
	}
	newPart, err := coord.SplitPartition(1, ycsb.Key(750))
	if err != nil {
		t.Fatal(err)
	}
	if newPart != 2 {
		t.Fatalf("new partition = %d", newPart)
	}
	v, err := cl.Read(ycsb.Key(900))
	if err != nil || string(v) != "pre-split" {
		t.Fatalf("read after split = %q, %v", v, err)
	}
	if err := cl.Update(ycsb.Key(900), []byte("post-split")); err != nil {
		t.Fatal(err)
	}
	if d.Epoch() != 2 {
		t.Fatalf("epoch = %d", d.Epoch())
	}
	if coord.Splits() != 1 {
		t.Fatalf("splits = %d", coord.Splits())
	}
}

// TestChainedSplit splits a partition that was itself created by a split.
// The second split's source is not a global-ring member, so its
// prepare/commit must be ordered through the source's own ring.
func TestChainedSplit(t *testing.T) {
	d, reg := deploySplitStore(t, true)
	coord, err := New(Config{Store: d, Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()

	cl := d.NewClient()
	defer cl.Close()
	first, err := coord.SplitPartition(1, ycsb.Key(750))
	if err != nil {
		t.Fatal(err)
	}
	second, err := coord.SplitPartition(first, ycsb.Key(900))
	if err != nil {
		t.Fatal(err)
	}
	if second != 3 {
		t.Fatalf("second split partition = %d", second)
	}
	// Keys across all four ranges stay readable and writable.
	for i, want := range map[int]int{100: 0, 600: 1, 800: 2, 950: 3} {
		v, err := cl.Read(ycsb.Key(i))
		if err != nil || len(v) == 0 {
			t.Fatalf("read %s after chained split: %q, %v", ycsb.Key(i), v, err)
		}
		if err := cl.Update(ycsb.Key(i), []byte("post-chain")); err != nil {
			t.Fatalf("update %s after chained split: %v", ycsb.Key(i), err)
		}
		if p := d.Partitioner().PartitionOf(ycsb.Key(i)); p != want {
			t.Fatalf("%s owned by %d, want %d", ycsb.Key(i), p, want)
		}
	}
	sc, err := store.LoadSchema(reg)
	if err != nil {
		t.Fatal(err)
	}
	if sc.Epoch != 3 || sc.Partitions != 4 {
		t.Fatalf("schema after chained split: epoch=%d partitions=%d", sc.Epoch, sc.Partitions)
	}
	// Scans spanning all partitions fan out (two of them off the global
	// ring) and stay complete.
	entries, err := cl.Scan(ycsb.Key(0), ycsb.Key(999), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != records {
		t.Fatalf("full scan after chained split = %d entries", len(entries))
	}
}

// TestSplitRollbackOnPrepareFailure checks a split that cannot prepare
// rolls its provisioned partition back, leaving the topology reusable.
func TestSplitRollbackOnPrepareFailure(t *testing.T) {
	d, reg := deploySplitStore(t, true)
	coord, err := New(Config{Store: d, Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()

	// Force provisioning to succeed but leave an uncommitted partition
	// behind, simulating a split that died mid-protocol.
	next, err := d.Partitioner().(*store.RangePartitioner).Split(ycsb.Key(750), 2)
	if err != nil {
		t.Fatal(err)
	}
	part := 2
	if _, _, err := d.AddPartition(next, part, d.Epoch()+1); err != nil {
		t.Fatal(err)
	}
	// The coordinator must refuse to wire a new split onto the skewed
	// index space rather than silently mis-routing the moved range.
	if _, err := coord.SplitPartition(1, ycsb.Key(800)); err == nil {
		t.Fatal("split over a stale provisioned partition succeeded")
	}
	// After removing the stale partition, splits work again.
	if err := d.RemovePartition(part); err != nil {
		t.Fatal(err)
	}
	if _, err := coord.SplitPartition(1, ycsb.Key(750)); err != nil {
		t.Fatal(err)
	}
}

// TestSplitValidation covers coordinator input checks.
func TestSplitValidation(t *testing.T) {
	d, reg := deploySplitStore(t, true)
	coord, err := New(Config{Store: d, Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	if _, err := coord.SplitPartition(5, ycsb.Key(750)); err == nil {
		t.Fatal("split of missing partition succeeded")
	}
	if _, err := coord.SplitPartition(0, ycsb.Key(750)); err == nil {
		t.Fatal("split with key owned elsewhere succeeded")
	}
	if _, err := coord.SplitPartition(1, ycsb.Key(500)); err == nil {
		t.Fatal("split at existing boundary succeeded")
	}
}
