package rebalance

import (
	"testing"

	"mrp/internal/ycsb"
)

// Review scratch: split p1 -> p2, merge p2 back into p1, then try to split
// partition 0 (a global-ring partition uninvolved in the merge).
func TestReviewSplitOtherPartitionAfterMerge(t *testing.T) {
	d, reg := deploySplitStore(t, true)
	coord, err := New(Config{Store: d, Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()

	newPart, err := coord.SplitPartition(1, ycsb.Key(750))
	if err != nil {
		t.Fatal(err)
	}
	if err := coord.MergePartitions(1, newPart); err != nil {
		t.Fatal(err)
	}
	if _, err := coord.SplitPartition(0, ycsb.Key(200)); err != nil {
		t.Fatalf("split of partition 0 after merge: %v", err)
	}
}
