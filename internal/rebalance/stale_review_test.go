package rebalance

import (
	"testing"

	"mrp/internal/ycsb"
)

// TestSplitOtherPartitionAfterMerge is the regression test for the
// stale-mapping bug: split p1 -> p2, merge p2 back into p1, then split
// partition 0. Partition 0's replicas saw neither merge command (both
// rode rings they don't subscribe to), so deriving the post-split mapping
// locally from their view — still the three-partition one — used to fail
// the next-free-index check and time the prepare out. The ordered
// prepare/commit now carry the authoritative mapping instead.
func TestSplitOtherPartitionAfterMerge(t *testing.T) {
	d, reg := deploySplitStore(t, true)
	coord, err := New(Config{Store: d, Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()

	newPart, err := coord.SplitPartition(1, ycsb.Key(750))
	if err != nil {
		t.Fatal(err)
	}
	if err := coord.MergePartitions(1, newPart); err != nil {
		t.Fatal(err)
	}
	again, err := coord.SplitPartition(0, ycsb.Key(200))
	if err != nil {
		t.Fatalf("split of partition 0 after merge: %v", err)
	}

	// The moved range serves from the new partition and nothing was lost.
	cl := d.NewClient()
	defer cl.Close()
	for _, i := range []int{100, 200, 350, 600, 800} {
		if _, err := cl.Read(ycsb.Key(i)); err != nil {
			t.Fatalf("read %s after the third reconfiguration: %v", ycsb.Key(i), err)
		}
	}
	if p := d.Partitioner().PartitionOf(ycsb.Key(350)); p != again {
		t.Fatalf("moved key owned by partition %d, want %d", p, again)
	}
}
