// Package recovery implements Multi-Ring Paxos's recovery protocol
// (Section 5 of the paper): coordinated log trimming between replicas and
// acceptors, and checkpoint-based replica recovery.
//
// Trimming (Section 5.2): periodically, the coordinator of a multicast
// group asks the replicas subscribing to the group for the highest
// consensus instance each has durably checkpointed (k[x]_p). After a
// quorum Q_T of answers it computes K[x]_T = min over the quorum
// (Predicate 2) and commands the ring's acceptors to trim their logs up to
// K[x]_T.
//
// Replica recovery: a recovering replica contacts the replicas of its
// partition, waits for a recovery quorum Q_R of checkpoint identifiers
// (CkptQuery/CkptReply), picks the most up-to-date one (Predicate 3),
// transfers it (CkptFetch/CkptData) if it beats the local checkpoint, and
// installs it. The checkpoint's tuple k_p converts into per-ring delivery
// start points (StartInstances: k[x] + 1 for each subscribed group x), at
// which the replica rejoins its rings; each ring then replays the decided
// suffix from the acceptors. Because Q_T and Q_R intersect, K_T <= K_R
// (Predicates 4-5): the instances after the best checkpoint are still in
// the acceptor logs.
//
// Schema handoff: services with a versioned partitioning schema
// (MRP-Store) stamp each checkpoint with the schema epoch it was taken
// under, and both CkptReply and CkptData carry that epoch. Result.Epoch
// reports the highest epoch seen across the quorum, so a recovering
// replica learns that a repartitioning happened — and that its snapshot
// predates it — before replay begins; the schema state itself (partition
// mapping, frozen ranges) travels inside the snapshot and is brought up to
// date by replaying the totally-ordered split commands, exactly like any
// other state. Replicas of partitions created by a live split recover
// through the same protocol: their ring memberships are derived from the
// published schema rather than any static configuration (see
// store.RecoverReplica).
package recovery

import (
	"sync"
	"time"

	"mrp/internal/msg"
	"mrp/internal/storage"
	"mrp/internal/transport"
)

// TrimConfig parametrizes a trim coordinator for one ring.
type TrimConfig struct {
	// Ring is the multicast group whose log is being trimmed.
	Ring msg.RingID
	// Endpoint sends queries and trim commands (typically the ring
	// coordinator's node endpoint).
	Endpoint transport.Endpoint
	// Replicas are the addresses of the replicas subscribing to the ring.
	Replicas []transport.Addr
	// Acceptors are the addresses of the ring's acceptors.
	Acceptors []transport.Addr
	// Quorum is |Q_T| (default: majority of Replicas). It must be chosen
	// so that it intersects every recovery quorum Q_R.
	Quorum int
	// Interval between trim rounds.
	Interval time.Duration
}

// TrimCoordinator runs the trimming protocol. Wire HandleReply into the
// ring process's Aux handler on the coordinator's node so TrimReply
// messages reach it.
type TrimCoordinator struct {
	cfg TrimConfig

	mu       sync.Mutex
	seq      uint64
	replies  map[msg.NodeID]msg.Instance
	lastTrim msg.Instance
	rounds   uint64
	trims    uint64
	onTrim   func(msg.Instance)

	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
}

// NewTrimCoordinator creates a trim coordinator.
func NewTrimCoordinator(cfg TrimConfig) *TrimCoordinator {
	if cfg.Quorum <= 0 {
		cfg.Quorum = len(cfg.Replicas)/2 + 1
	}
	return &TrimCoordinator{
		cfg:     cfg,
		replies: make(map[msg.NodeID]msg.Instance),
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
	}
}

// OnTrim registers a hook invoked with K[x]_T after each trim command
// (used by the Figure 8 experiment to mark the timeline). Must be set
// before Start.
func (tc *TrimCoordinator) OnTrim(fn func(msg.Instance)) { tc.onTrim = fn }

// Trims returns how many trim commands were issued.
func (tc *TrimCoordinator) Trims() uint64 {
	tc.mu.Lock()
	defer tc.mu.Unlock()
	return tc.trims
}

// LastTrim returns the highest K[x]_T commanded so far.
func (tc *TrimCoordinator) LastTrim() msg.Instance {
	tc.mu.Lock()
	defer tc.mu.Unlock()
	return tc.lastTrim
}

// Start begins periodic trim rounds.
func (tc *TrimCoordinator) Start() {
	go tc.run()
}

// Stop terminates the coordinator.
func (tc *TrimCoordinator) Stop() {
	tc.stopOnce.Do(func() { close(tc.stop) })
	<-tc.done
}

func (tc *TrimCoordinator) run() {
	defer close(tc.done)
	ticker := time.NewTicker(tc.cfg.Interval)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			tc.round()
		case <-tc.stop:
			return
		}
	}
}

// round starts a new query round, discarding stale replies.
func (tc *TrimCoordinator) round() {
	tc.mu.Lock()
	tc.seq++
	seq := tc.seq
	tc.replies = make(map[msg.NodeID]msg.Instance)
	tc.rounds++
	tc.mu.Unlock()
	for _, addr := range tc.cfg.Replicas {
		_ = tc.cfg.Endpoint.Send(addr, &msg.TrimQuery{Ring: tc.cfg.Ring, Seq: seq})
	}
}

// HandleReply ingests a TrimReply; once a quorum Q_T has answered, it
// computes K[x]_T (Predicate 2) and commands the acceptors to trim.
func (tc *TrimCoordinator) HandleReply(env transport.Envelope) {
	m, ok := env.Msg.(*msg.TrimReply)
	if !ok || m.Ring != tc.cfg.Ring {
		return
	}
	tc.mu.Lock()
	if m.Seq != tc.seq {
		tc.mu.Unlock()
		return // stale round
	}
	tc.replies[m.Replica] = m.SafeInstance
	if len(tc.replies) < tc.cfg.Quorum {
		tc.mu.Unlock()
		return
	}
	// K[x]_T = min over the quorum: every quorum member has checkpointed
	// at least up to K, so trimming below K loses nothing any of them
	// might need (Predicate 2).
	var k msg.Instance
	first := true
	for _, safe := range tc.replies {
		if first || safe < k {
			k = safe
			first = false
		}
	}
	if k <= tc.lastTrim {
		tc.mu.Unlock()
		return
	}
	tc.lastTrim = k
	tc.trims++
	onTrim := tc.onTrim
	tc.replies = make(map[msg.NodeID]msg.Instance)
	tc.mu.Unlock()
	for _, addr := range tc.cfg.Acceptors {
		_ = tc.cfg.Endpoint.Send(addr, &msg.TrimCmd{Ring: tc.cfg.Ring, UpTo: k})
	}
	if onTrim != nil {
		onTrim(k)
	}
}

// RecoverConfig parametrizes replica recovery.
type RecoverConfig struct {
	// Endpoint is a dedicated endpoint for the recovery conversation (not
	// yet wired to a router).
	Endpoint transport.Endpoint
	// Peers are the other replicas of the recovering replica's partition.
	// Only replicas in the same partition evolve through the same sequence
	// of states, so only their checkpoints are installable (Section 5.2).
	Peers []transport.Addr
	// Quorum is |Q_R| (default: majority of Peers+self, i.e. len(Peers)/2+1
	// when the recovering replica counts itself).
	Quorum int
	// Local is the recovering replica's own checkpoint store (may hold an
	// older checkpoint that avoids a state transfer if fresh enough).
	Local *storage.CheckpointStore
	// Timeout bounds the whole recovery conversation.
	Timeout time.Duration
	// RetryEvery re-sends queries to unresponsive peers.
	RetryEvery time.Duration
}

// Result reports how a recovery concluded.
type Result struct {
	// Checkpoint is the state to install (zero-valued if none was found
	// anywhere, i.e. a cold start).
	Checkpoint storage.Checkpoint
	// Found reports whether any checkpoint (local or remote) was found.
	Found bool
	// Transferred reports whether a remote state transfer happened.
	Transferred bool
	// Epoch is the highest schema epoch observed across the quorum's
	// checkpoint replies and the local checkpoint (0 when the service is
	// unversioned or no peer has checkpointed). When it exceeds the
	// installed checkpoint's epoch, the snapshot predates a repartitioning
	// and ring replay will deliver the split commands that catch it up.
	Epoch uint64
}

// Recover runs the recovering-replica protocol: gather checkpoint
// identifiers from a quorum Q_R, select the most up-to-date (Predicate 3),
// and fetch it if it beats the local checkpoint.
func Recover(cfg RecoverConfig) (Result, error) {
	if cfg.Quorum <= 0 {
		cfg.Quorum = (len(cfg.Peers)+1)/2 + 1
		if cfg.Quorum > len(cfg.Peers) {
			cfg.Quorum = len(cfg.Peers)
		}
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 10 * time.Second
	}
	if cfg.RetryEvery <= 0 {
		cfg.RetryEvery = 200 * time.Millisecond
	}
	var res Result
	if cfg.Local != nil {
		if ck, ok := cfg.Local.Load(); ok {
			res.Checkpoint = ck
			res.Found = true
			res.Epoch = ck.Epoch
		}
	}
	if len(cfg.Peers) == 0 {
		return res, nil
	}

	query := func(seq uint64) {
		for _, p := range cfg.Peers {
			_ = cfg.Endpoint.Send(p, &msg.CkptQuery{Seq: seq})
		}
	}
	const querySeq = 1
	query(querySeq)

	deadline := time.NewTimer(cfg.Timeout)
	defer deadline.Stop()
	retry := time.NewTicker(cfg.RetryEvery)
	defer retry.Stop()

	// Phase 1: collect checkpoint identifiers from Q_R peers.
	tuples := make(map[msg.NodeID][]msg.RingInstance)
	var bestPeer transport.Addr
	var bestTuple []msg.RingInstance
	gotQuorum := false
	for !gotQuorum {
		select {
		case env, ok := <-cfg.Endpoint.Inbox():
			if !ok {
				return res, transport.ErrClosed
			}
			reply, isReply := env.Msg.(*msg.CkptReply)
			if !isReply || reply.Seq != querySeq {
				continue
			}
			if reply.Epoch > res.Epoch {
				res.Epoch = reply.Epoch
			}
			tuples[reply.Replica] = reply.Tuple
			// An empty tuple means the peer has never checkpointed; it
			// still counts toward the quorum but is not a fetch candidate
			// (it has no state to transfer — fetching would hang).
			if len(reply.Tuple) > 0 && (bestTuple == nil || storage.TupleLE(bestTuple, reply.Tuple)) {
				bestTuple = reply.Tuple
				bestPeer = env.From
			}
			if len(tuples) >= cfg.Quorum {
				gotQuorum = true
			}
		case <-retry.C:
			query(querySeq)
		case <-deadline.C:
			return res, ErrNoQuorum
		}
	}

	// Predicate 3: the selected checkpoint dominates every quorum member's.
	if bestTuple == nil || (res.Found && storage.TupleLE(bestTuple, res.Checkpoint.Tuple)) {
		return res, nil // local checkpoint is at least as fresh
	}

	// Phase 2: transfer the state from the best peer.
	const fetchSeq = 2
	_ = cfg.Endpoint.Send(bestPeer, &msg.CkptFetch{Seq: fetchSeq})
	for {
		select {
		case env, ok := <-cfg.Endpoint.Inbox():
			if !ok {
				return res, transport.ErrClosed
			}
			data, isData := env.Msg.(*msg.CkptData)
			if !isData || data.Seq != fetchSeq {
				continue
			}
			res.Checkpoint = storage.Checkpoint{Tuple: data.Tuple, Epoch: data.Epoch, State: data.State}
			res.Found = true
			res.Transferred = true
			if data.Epoch > res.Epoch {
				res.Epoch = data.Epoch
			}
			return res, nil
		case <-retry.C:
			_ = cfg.Endpoint.Send(bestPeer, &msg.CkptFetch{Seq: fetchSeq})
		case <-deadline.C:
			return res, ErrNoQuorum
		}
	}
}

// StartInstances converts a checkpoint tuple into per-ring delivery start
// points (k[x] + 1) for rejoining the rings.
func StartInstances(tuple []msg.RingInstance) map[msg.RingID]msg.Instance {
	out := make(map[msg.RingID]msg.Instance, len(tuple))
	for _, e := range tuple {
		out[e.Ring] = e.Instance + 1
	}
	return out
}

// ErrNoQuorum reports that recovery could not assemble a quorum in time.
var ErrNoQuorum = errQuorum{}

type errQuorum struct{}

func (errQuorum) Error() string { return "recovery: no quorum of checkpoint replies" }
