package recovery

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"mrp/internal/msg"
	"mrp/internal/multiring"
	"mrp/internal/netsim"
	"mrp/internal/ringpaxos"
	"mrp/internal/smr"
	"mrp/internal/storage"
	"mrp/internal/transport"
)

// kvSM is a deterministic map state machine ("k=v" set ops).
type kvSM struct {
	mu sync.Mutex
	m  map[string]string
}

func newKvSM() *kvSM { return &kvSM{m: make(map[string]string)} }

func (s *kvSM) Execute(op []byte) []byte {
	i := bytes.IndexByte(op, '=')
	if i < 0 {
		return []byte("err")
	}
	s.mu.Lock()
	s.m[string(op[:i])] = string(op[i+1:])
	s.mu.Unlock()
	return []byte("ok")
}

func (s *kvSM) Snapshot() []byte {
	s.mu.Lock()
	defer s.mu.Unlock()
	b, _ := json.Marshal(s.m)
	return b
}

func (s *kvSM) Restore(b []byte) {
	m := make(map[string]string)
	_ = json.Unmarshal(b, &m)
	s.mu.Lock()
	s.m = m
	s.mu.Unlock()
}

// member bundles everything one replica node runs.
type member struct {
	node    *multiring.Node
	proc    *ringpaxos.Process
	learner *multiring.Learner
	rep     *smr.Replica
	sm      *kvSM
	log     *storage.Log
	ckpt    *storage.CheckpointStore
	aux     *transport.HandlerMux
}

// env is a 3-replica deployment with trim coordination, built for crash
// and recovery injection.
type env struct {
	t       *testing.T
	net     *netsim.Network
	peers   []ringpaxos.Peer
	members []*member
	tc      *TrimCoordinator
}

func addrOf(i int) transport.Addr { return transport.Addr(fmt.Sprintf("replica-%d", i)) }

func newEnv(t *testing.T) *env {
	t.Helper()
	net := netsim.New(netsim.WithUniformLatency(20 * time.Microsecond))
	e := &env{t: t, net: net}
	for i := 0; i < 3; i++ {
		e.peers = append(e.peers, ringpaxos.Peer{
			ID:    msg.NodeID(i + 1),
			Addr:  addrOf(i),
			Roles: ringpaxos.RoleProposer | ringpaxos.RoleAcceptor | ringpaxos.RoleLearner,
		})
	}
	for i := 0; i < 3; i++ {
		e.members = append(e.members, e.buildMember(i, 0, nil))
	}
	// Trim coordination runs at node 0 (the ring coordinator).
	e.tc = NewTrimCoordinator(TrimConfig{
		Ring:      1,
		Endpoint:  e.members[0].node.Endpoint(),
		Replicas:  []transport.Addr{addrOf(0), addrOf(1), addrOf(2)},
		Acceptors: []transport.Addr{addrOf(0), addrOf(1), addrOf(2)},
		Quorum:    2,
		Interval:  25 * time.Millisecond,
	})
	// Node 0's ring Aux must serve both trim queries (it is a replica) and
	// trim replies (it is the trim coordinator).
	rep0 := e.members[0].rep
	e.members[0].aux.Set(func(envp transport.Envelope) {
		switch envp.Msg.(type) {
		case *msg.TrimQuery:
			rep0.HandleTrimQuery(envp)
		case *msg.TrimReply:
			e.tc.HandleReply(envp)
		}
	})
	e.tc.Start()
	t.Cleanup(func() {
		e.tc.Stop()
		for _, m := range e.members {
			if m != nil {
				m.stopAll()
			}
		}
		net.Close()
	})
	return e
}

// buildMember constructs (or rebuilds, for recovery) replica i. start is
// the ring delivery start instance; install, when non-nil, is the
// checkpoint to restore before starting.
func (e *env) buildMember(i int, start msg.Instance, install *storage.Checkpoint) *member {
	e.t.Helper()
	m := &member{
		sm:  newKvSM(),
		aux: &transport.HandlerMux{},
	}
	if old := e.membersAt(i); old != nil {
		m.ckpt = old.ckpt // stable storage survives the crash
	} else {
		m.ckpt = storage.NewCheckpointStore(storage.NewDisk(storage.NullDisk))
	}
	m.log = storage.NewLog(storage.InMemory)
	if old := e.membersAt(i); old != nil {
		m.log = old.log // acceptor stable storage also survives
	}
	node := multiring.NewNode(e.peers[i].ID, e.net.Endpoint(addrOf(i)))
	proc, err := node.Join(ringpaxos.Config{
		Ring:          1,
		Peers:         e.peers,
		Coordinator:   e.peers[0].ID,
		Log:           m.log,
		BatchDelay:    time.Millisecond,
		RetryTimeout:  30 * time.Millisecond,
		StartInstance: start,
		Aux:           m.aux.Handle,
	})
	if err != nil {
		e.t.Fatal(err)
	}
	learner := multiring.NewLearner(1, proc)
	rep := smr.NewReplica(smr.ReplicaConfig{
		Node:    node,
		Learner: learner,
		SM:      m.sm,
		Ckpt:    m.ckpt,
	})
	if install != nil {
		rep.InstallCheckpoint(*install)
	}
	m.aux.Set(rep.HandleTrimQuery)
	node.Service(rep.HandleService)
	node.Start()
	learner.Start()
	rep.Start()
	m.node, m.proc, m.learner, m.rep = node, proc, learner, rep
	return m
}

func (e *env) membersAt(i int) *member {
	if i < len(e.members) {
		return e.members[i]
	}
	return nil
}

func (m *member) stopAll() {
	m.rep.Stop()
	m.learner.Stop()
	m.node.Stop()
}

func (e *env) client(id uint64) *smr.Client {
	ep := e.net.Endpoint(transport.Addr(fmt.Sprintf("client-%d", id)))
	cl := smr.NewClient(smr.ClientConfig{
		ID:       id,
		Endpoint: ep,
		Proposers: map[msg.RingID][]transport.Addr{
			1: {addrOf(0), addrOf(1)},
		},
		Timeout: 10 * time.Second,
	})
	e.t.Cleanup(cl.Close)
	return cl
}

func (e *env) waitExecuted(idx int, n uint64, timeout time.Duration) {
	e.t.Helper()
	deadline := time.Now().Add(timeout)
	for e.members[idx].rep.Executed() < n {
		if time.Now().After(deadline) {
			e.t.Fatalf("replica %d executed %d, want >= %d", idx, e.members[idx].rep.Executed(), n)
		}
		time.Sleep(3 * time.Millisecond)
	}
}

func TestTrimAfterQuorumCheckpoints(t *testing.T) {
	e := newEnv(t)
	cl := e.client(500)
	for i := 0; i < 20; i++ {
		if _, err := cl.Execute(1, []byte(fmt.Sprintf("k%d=v%d", i, i))); err != nil {
			t.Fatal(err)
		}
	}
	// Before any checkpoint the acceptors must not trim.
	time.Sleep(80 * time.Millisecond)
	if lw := e.members[0].log.LowWatermark(); lw != 0 {
		t.Fatalf("trim before checkpoints: low=%d", lw)
	}
	// Two replicas checkpoint (a quorum); trimming may now advance to the
	// minimum of their safe instances.
	e.members[0].rep.Checkpoint()
	e.members[1].rep.Checkpoint()
	deadline := time.Now().Add(5 * time.Second)
	for e.tc.Trims() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no trim after quorum of checkpoints")
		}
		time.Sleep(5 * time.Millisecond)
	}
	k := e.tc.LastTrim()
	safe0 := e.members[0].rep.SafeTuple()[0].Instance
	safe1 := e.members[1].rep.SafeTuple()[0].Instance
	min := safe0
	if safe1 < min {
		min = safe1
	}
	if k > min {
		t.Fatalf("K_T = %d exceeds quorum min %d (Predicate 2 violated)", k, min)
	}
	// Acceptor logs actually trimmed.
	deadline = time.Now().Add(2 * time.Second)
	for e.members[2].log.LowWatermark() < k {
		if time.Now().After(deadline) {
			t.Fatalf("acceptor 2 low=%d, want >= %d", e.members[2].log.LowWatermark(), k)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestCrashRecoveryEndToEnd reproduces the Section 8.5 scenario at test
// scale: a replica is terminated, the others keep serving and checkpoint,
// acceptors trim, and the replica recovers by installing a remote
// checkpoint and replaying the missing instances from the acceptors.
func TestCrashRecoveryEndToEnd(t *testing.T) {
	e := newEnv(t)
	cl := e.client(500)
	put := func(lo, hi int) {
		for i := lo; i < hi; i++ {
			if _, err := cl.Execute(1, []byte(fmt.Sprintf("k%d=v%d", i, i))); err != nil {
				t.Fatal(err)
			}
		}
	}
	put(0, 15)
	e.waitExecuted(2, 15, 5*time.Second)

	// Replica 2 is terminated. Survivors heal the ring around it.
	e.members[2].stopAll()
	e.members[0].proc.SetPeerDown(3, true)
	e.members[1].proc.SetPeerDown(3, true)

	// Traffic continues; the survivors checkpoint so acceptors can trim
	// beyond what replica 2 ever saw.
	put(15, 40)
	e.waitExecuted(0, 40, 10*time.Second)
	e.members[0].rep.Checkpoint()
	e.members[1].rep.Checkpoint()
	deadline := time.Now().Add(5 * time.Second)
	for e.tc.Trims() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no trim while replica down")
		}
		time.Sleep(5 * time.Millisecond)
	}
	trimmedTo := e.tc.LastTrim()
	if trimmedTo == 0 {
		t.Fatal("expected a positive trim point")
	}
	put(40, 50)
	e.waitExecuted(0, 50, 10*time.Second)

	// Replica 2 recovers: first the checkpoint conversation on a dedicated
	// endpoint, then rejoin the ring at the recovered start instance.
	recEp := e.net.Endpoint("replica-2-recovery")
	res, err := Recover(RecoverConfig{
		Endpoint: recEp,
		Peers:    []transport.Addr{addrOf(0), addrOf(1)},
		Quorum:   2,
		Local:    e.members[2].ckpt,
		Timeout:  5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found || !res.Transferred {
		t.Fatalf("recovery result = %+v, want remote transfer", res)
	}
	start := StartInstances(res.Checkpoint.Tuple)[1]
	if start == 0 {
		t.Fatal("no start instance for ring 1")
	}
	// The checkpoint must cover everything the acceptors trimmed
	// (K_T <= K_R, Predicate 5) or recovery would be impossible.
	if start <= trimmedTo {
		t.Fatalf("checkpoint start %d does not cover trim point %d", start, trimmedTo)
	}

	e.members[2] = e.buildMember(2, start, &res.Checkpoint)
	e.members[0].proc.SetPeerDown(3, false)
	e.members[1].proc.SetPeerDown(3, false)

	// More traffic lands after recovery; the recovered replica must reach
	// the exact same state as the survivors.
	put(50, 60)
	deadline = time.Now().Add(15 * time.Second)
	for {
		s0 := e.members[0].sm.Snapshot()
		s2 := e.members[2].sm.Snapshot()
		if bytes.Equal(s0, s2) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("recovered replica diverged:\nsurvivor: %s\nrecovered: %s", s0, s2)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestRecoverColdStartNoPeers(t *testing.T) {
	net := netsim.New()
	defer net.Close()
	res, err := Recover(RecoverConfig{
		Endpoint: net.Endpoint("lonely"),
		Peers:    nil,
		Timeout:  time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Found {
		t.Fatal("cold start should find nothing")
	}
}

func TestRecoverPrefersFreshLocal(t *testing.T) {
	net := netsim.New(netsim.WithUniformLatency(0))
	defer net.Close()
	// Peer with an OLD checkpoint.
	peerEp := net.Endpoint("peer")
	go func() {
		for env := range peerEp.Inbox() {
			switch m := env.Msg.(type) {
			case *msg.CkptQuery:
				_ = peerEp.Send(env.From, &msg.CkptReply{
					Seq: m.Seq, Replica: 9,
					Tuple: []msg.RingInstance{{Ring: 1, Instance: 5}},
				})
			case *msg.CkptFetch:
				_ = peerEp.Send(env.From, &msg.CkptData{
					Seq: m.Seq, Tuple: []msg.RingInstance{{Ring: 1, Instance: 5}}, State: []byte("old"),
				})
			}
		}
	}()
	local := storage.NewCheckpointStore(storage.NewDisk(storage.NullDisk))
	local.Save(storage.Checkpoint{Tuple: []msg.RingInstance{{Ring: 1, Instance: 50}}, State: []byte("new")})
	res, err := Recover(RecoverConfig{
		Endpoint: net.Endpoint("rec"),
		Peers:    []transport.Addr{"peer"},
		Quorum:   1,
		Local:    local,
		Timeout:  2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Transferred {
		t.Fatal("should not transfer an older remote checkpoint")
	}
	if string(res.Checkpoint.State) != "new" {
		t.Fatalf("state = %q", res.Checkpoint.State)
	}
}

// TestRecoverSchemaEpochHandoff checks the schema handoff of the
// checkpoint exchange: replies and transferred checkpoints carry the epoch
// they were taken under, so a recovering replica whose own snapshot
// predates a repartitioning learns the current epoch from its quorum.
func TestRecoverSchemaEpochHandoff(t *testing.T) {
	net := netsim.New(netsim.WithUniformLatency(0))
	defer net.Close()
	peerEp := net.Endpoint("peer")
	go func() {
		for env := range peerEp.Inbox() {
			switch m := env.Msg.(type) {
			case *msg.CkptQuery:
				_ = peerEp.Send(env.From, &msg.CkptReply{
					Seq: m.Seq, Replica: 9, Epoch: 3,
					Tuple: []msg.RingInstance{{Ring: 1, Instance: 50}},
				})
			case *msg.CkptFetch:
				_ = peerEp.Send(env.From, &msg.CkptData{
					Seq: m.Seq, Epoch: 3,
					Tuple: []msg.RingInstance{{Ring: 1, Instance: 50}},
					State: []byte("post-split"),
				})
			}
		}
	}()
	// The local checkpoint predates the split (epoch 1) and is older.
	local := storage.NewCheckpointStore(storage.NewDisk(storage.NullDisk))
	local.Save(storage.Checkpoint{
		Tuple: []msg.RingInstance{{Ring: 1, Instance: 5}},
		Epoch: 1,
		State: []byte("pre-split"),
	})
	res, err := Recover(RecoverConfig{
		Endpoint: net.Endpoint("rec"),
		Peers:    []transport.Addr{"peer"},
		Quorum:   1,
		Local:    local,
		Timeout:  2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Transferred || string(res.Checkpoint.State) != "post-split" {
		t.Fatalf("transfer = %v, state %q", res.Transferred, res.Checkpoint.State)
	}
	if res.Epoch != 3 || res.Checkpoint.Epoch != 3 {
		t.Fatalf("epoch handoff: result=%d checkpoint=%d, want 3", res.Epoch, res.Checkpoint.Epoch)
	}
}

func TestRecoverTimeoutWithoutQuorum(t *testing.T) {
	net := netsim.New()
	defer net.Close()
	_ = net.Endpoint("silent-peer") // exists but never answers
	_, err := Recover(RecoverConfig{
		Endpoint:   net.Endpoint("rec"),
		Peers:      []transport.Addr{"silent-peer"},
		Quorum:     1,
		Timeout:    200 * time.Millisecond,
		RetryEvery: 50 * time.Millisecond,
	})
	if err == nil {
		t.Fatal("expected ErrNoQuorum")
	}
}

func TestStartInstances(t *testing.T) {
	m := StartInstances([]msg.RingInstance{{Ring: 1, Instance: 10}, {Ring: 3, Instance: 0}})
	if m[1] != 11 || m[3] != 1 {
		t.Fatalf("starts = %v", m)
	}
}

// TestTrimRecoveryQuorumIntersectionProperty checks Predicates 2-5
// abstractly: for any checkpoint states and intersecting quorums,
// K_T <= K_R, so a recovering replica can always replay the suffix.
func TestTrimRecoveryQuorumIntersectionProperty(t *testing.T) {
	f := func(safes [5]uint16, bitsT, bitsR uint8) bool {
		// Build quorums of size 3 out of 5 replicas from the random bits;
		// any two size-3 subsets of 5 intersect.
		qt := pickQuorum(bitsT)
		qr := pickQuorum(bitsR)
		// K_T = min over Q_T.
		kt := uint16(65535)
		for _, i := range qt {
			if safes[i] < kt {
				kt = safes[i]
			}
		}
		// K_R = max over Q_R (the most up-to-date checkpoint, Predicate 3).
		kr := uint16(0)
		for _, i := range qr {
			if safes[i] > kr {
				kr = safes[i]
			}
		}
		return kt <= kr // Predicate 5
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// pickQuorum deterministically picks 3 of 5 indices from random bits.
func pickQuorum(bits uint8) []int {
	var q []int
	for i := 0; i < 5 && len(q) < 3; i++ {
		if bits&(1<<i) != 0 {
			q = append(q, i)
		}
	}
	for i := 0; len(q) < 3; i++ {
		dup := false
		for _, x := range q {
			if x == i {
				dup = true
			}
		}
		if !dup {
			q = append(q, i)
		}
	}
	return q
}
