// Package registry is the coordination service substituting for Zookeeper
// in the paper's deployment (Section 7.1: "Automatic ring management and
// configuration management is handled by Zookeeper").
//
// It provides the same primitives Multi-Ring Paxos needs from Zookeeper:
// versioned configuration nodes, watches, ephemeral nodes tied to sessions
// (for failure detection), and leader election among ring acceptors. It is
// in-process and strongly consistent, which matches how a Zookeeper
// ensemble appears to its clients.
package registry

import (
	"bytes"
	"sort"
	"strings"
	"sync"
)

// Event notifies a watcher of a change to a node.
type Event struct {
	Path    string
	Data    []byte
	Version uint64
	Deleted bool
}

type node struct {
	data      []byte
	version   uint64
	ephemeral *Session // non-nil if the node dies with this session
}

// Registry is an in-process coordination service. The zero value is not
// usable; call New.
type Registry struct {
	mu       sync.Mutex
	nodes    map[string]*node
	watchers map[string][]chan Event // exact-path watchers
	prefixW  map[string][]chan Event // prefix watchers (children)
	seq      uint64
}

// New creates an empty registry.
func New() *Registry {
	return &Registry{
		nodes:    make(map[string]*node),
		watchers: make(map[string][]chan Event),
		prefixW:  make(map[string][]chan Event),
	}
}

// notifyLocked fires watch events for path. Callers hold r.mu. Delivery is
// strictly non-blocking so a slow watcher can never stall registry
// mutations (watches are a hot path during rebalancing): when a watcher's
// buffer is full the oldest buffered event is evicted in favor of the new
// one, coalescing like a Zookeeper watch — a watcher that wakes up late
// still observes the most recent change and re-reads current state.
func (r *Registry) notifyLocked(ev Event) {
	for _, ch := range r.watchers[ev.Path] {
		offer(ch, ev)
	}
	for prefix, chans := range r.prefixW {
		if strings.HasPrefix(ev.Path, prefix) {
			for _, ch := range chans {
				offer(ch, ev)
			}
		}
	}
}

// offer delivers ev without ever blocking: on a full buffer it drops the
// oldest pending event to make room for the newest (latest-wins mailbox).
func offer(ch chan Event, ev Event) {
	select {
	case ch <- ev:
		return
	default:
	}
	select {
	case <-ch: // evict the stalest pending event
	default:
	}
	select {
	case ch <- ev:
	default: // raced with a concurrent producer that refilled the buffer
	}
}

// Set creates or replaces a node and returns its new version.
func (r *Registry) Set(path string, data []byte) uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.setLocked(path, data, nil)
}

// SetIfChanged replaces a node's data only when it differs from what is
// stored, returning the node's (possibly unchanged) version and whether a
// write happened. Periodic advertisers — lease-holder renewal being the
// canonical case — use it so watches fire on transitions, not heartbeats.
func (r *Registry) SetIfChanged(path string, data []byte) (uint64, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if n, ok := r.nodes[path]; ok && bytes.Equal(n.data, data) {
		return n.version, false
	}
	return r.setLocked(path, data, nil), true
}

func (r *Registry) setLocked(path string, data []byte, owner *Session) uint64 {
	n, ok := r.nodes[path]
	if !ok {
		n = &node{}
		r.nodes[path] = n
	}
	n.data = append([]byte(nil), data...)
	n.version++
	n.ephemeral = owner
	r.notifyLocked(Event{Path: path, Data: n.data, Version: n.version})
	return n.version
}

// CompareAndSet atomically replaces a node's data if its current version
// equals expect, returning the new version. expect == 0 requires that the
// node does not exist yet (versioned create). This is the primitive epoch
// publishers use: a rebalance coordinator bumping the partitioning schema
// can detect a concurrent publisher instead of silently overwriting it.
func (r *Registry) CompareAndSet(path string, data []byte, expect uint64) (uint64, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	n, ok := r.nodes[path]
	switch {
	case expect == 0:
		if ok {
			return n.version, false
		}
	case !ok:
		return 0, false
	case n.version != expect:
		return n.version, false
	}
	return r.setLocked(path, data, nil), true
}

// Create creates a node, failing (returning false) if it already exists.
func (r *Registry) Create(path string, data []byte) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.nodes[path]; ok {
		return false
	}
	r.setLocked(path, data, nil)
	return true
}

// Get returns a node's data and version.
func (r *Registry) Get(path string) (data []byte, version uint64, ok bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	n, ok := r.nodes[path]
	if !ok {
		return nil, 0, false
	}
	return append([]byte(nil), n.data...), n.version, true
}

// Delete removes a node if present.
func (r *Registry) Delete(path string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.deleteLocked(path)
}

func (r *Registry) deleteLocked(path string) {
	if _, ok := r.nodes[path]; !ok {
		return
	}
	delete(r.nodes, path)
	r.notifyLocked(Event{Path: path, Deleted: true})
}

// Children returns the sorted paths of all nodes under prefix.
func (r *Registry) Children(prefix string) []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []string
	for p := range r.nodes {
		if strings.HasPrefix(p, prefix) {
			out = append(out, p)
		}
	}
	sort.Strings(out)
	return out
}

// Watch returns a channel of events for the exact path. The channel has a
// small buffer; events are dropped rather than blocking the registry
// (watchers must re-read state on wakeup, as with Zookeeper watches).
func (r *Registry) Watch(path string) <-chan Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	ch := make(chan Event, 16)
	r.watchers[path] = append(r.watchers[path], ch)
	return ch
}

// WatchPrefix returns a channel of events for every path under prefix.
func (r *Registry) WatchPrefix(prefix string) <-chan Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	ch := make(chan Event, 64)
	r.prefixW[prefix] = append(r.prefixW[prefix], ch)
	return ch
}

// Session groups ephemeral nodes that are deleted together when the session
// closes, modeling a process's Zookeeper session expiring on crash.
type Session struct {
	r  *Registry
	mu sync.Mutex

	paths  map[string]struct{}
	closed bool
}

// NewSession opens a session.
func (r *Registry) NewSession() *Session {
	return &Session{r: r, paths: make(map[string]struct{})}
}

// CreateEphemeral creates a node owned by the session. It returns false if
// the node already exists or the session is closed.
func (s *Session) CreateEphemeral(path string, data []byte) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false
	}
	s.r.mu.Lock()
	defer s.r.mu.Unlock()
	if _, ok := s.r.nodes[path]; ok {
		return false
	}
	s.r.setLocked(path, data, s)
	s.paths[path] = struct{}{}
	return true
}

// Close expires the session, deleting all its ephemeral nodes and firing
// their watches (this is how peers detect the process's failure).
func (s *Session) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	paths := make([]string, 0, len(s.paths))
	for p := range s.paths {
		paths = append(paths, p)
	}
	s.mu.Unlock()
	s.r.mu.Lock()
	defer s.r.mu.Unlock()
	for _, p := range paths {
		if n, ok := s.r.nodes[p]; ok && n.ephemeral == s {
			s.r.deleteLocked(p)
		}
	}
}

// Election is a leader election under a path prefix, built on sequential
// ephemeral nodes as in the standard Zookeeper recipe: the candidate with
// the lowest sequence number leads; when its session expires the next
// candidate takes over.
type Election struct {
	r      *Registry
	prefix string
}

// NewElection creates an election rooted at prefix.
func (r *Registry) NewElection(prefix string) *Election {
	return &Election{r: r, prefix: prefix}
}

// Enroll registers a candidate under the election with the given session
// and returns its sequence number.
func (e *Election) Enroll(s *Session, candidate string) uint64 {
	e.r.mu.Lock()
	e.r.seq++
	seq := e.r.seq
	e.r.mu.Unlock()
	path := e.prefix + "/" + seqString(seq) + "-" + candidate
	s.CreateEphemeral(path, []byte(candidate))
	return seq
}

// Leader returns the current leader's candidate name, if any.
func (e *Election) Leader() (string, bool) {
	children := e.r.Children(e.prefix + "/")
	if len(children) == 0 {
		return "", false
	}
	data, _, ok := e.r.Get(children[0])
	if !ok {
		return "", false
	}
	return string(data), true
}

// Watch returns a channel that fires whenever election membership changes.
func (e *Election) Watch() <-chan Event {
	return e.r.WatchPrefix(e.prefix + "/")
}

// seqString zero-pads so lexicographic order equals numeric order.
func seqString(seq uint64) string {
	const digits = 12
	buf := make([]byte, digits)
	for i := digits - 1; i >= 0; i-- {
		buf[i] = byte('0' + seq%10)
		seq /= 10
	}
	return string(buf)
}
