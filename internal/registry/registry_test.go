package registry

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestSetGetDelete(t *testing.T) {
	r := New()
	v1 := r.Set("/a", []byte("1"))
	if v1 != 1 {
		t.Fatalf("version = %d", v1)
	}
	data, v, ok := r.Get("/a")
	if !ok || string(data) != "1" || v != 1 {
		t.Fatalf("get = %q %d %v", data, v, ok)
	}
	v2 := r.Set("/a", []byte("2"))
	if v2 != 2 {
		t.Fatalf("version = %d", v2)
	}
	r.Delete("/a")
	if _, _, ok := r.Get("/a"); ok {
		t.Fatal("deleted node still present")
	}
	r.Delete("/a") // idempotent
}

func TestCreateExclusive(t *testing.T) {
	r := New()
	if !r.Create("/a", []byte("x")) {
		t.Fatal("first create failed")
	}
	if r.Create("/a", []byte("y")) {
		t.Fatal("second create succeeded")
	}
	data, _, _ := r.Get("/a")
	if string(data) != "x" {
		t.Fatal("create overwrote")
	}
}

func TestGetReturnsCopy(t *testing.T) {
	r := New()
	r.Set("/a", []byte("abc"))
	data, _, _ := r.Get("/a")
	data[0] = 'X'
	data2, _, _ := r.Get("/a")
	if string(data2) != "abc" {
		t.Fatal("Get aliases internal buffer")
	}
}

func TestChildrenSorted(t *testing.T) {
	r := New()
	r.Set("/ring/2", nil)
	r.Set("/ring/1", nil)
	r.Set("/other/x", nil)
	kids := r.Children("/ring/")
	if len(kids) != 2 || kids[0] != "/ring/1" || kids[1] != "/ring/2" {
		t.Fatalf("children = %v", kids)
	}
}

func TestWatchFires(t *testing.T) {
	r := New()
	ch := r.Watch("/a")
	r.Set("/a", []byte("v"))
	ev := <-ch
	if ev.Path != "/a" || string(ev.Data) != "v" || ev.Deleted {
		t.Fatalf("event = %+v", ev)
	}
	r.Delete("/a")
	ev = <-ch
	if !ev.Deleted {
		t.Fatalf("event = %+v, want deletion", ev)
	}
}

func TestWatchPrefix(t *testing.T) {
	r := New()
	ch := r.WatchPrefix("/ring/")
	r.Set("/ring/a", nil)
	r.Set("/elsewhere", nil)
	ev := <-ch
	if ev.Path != "/ring/a" {
		t.Fatalf("event = %+v", ev)
	}
	select {
	case ev := <-ch:
		t.Fatalf("unexpected event %+v", ev)
	default:
	}
}

func TestEphemeralDeletedOnSessionClose(t *testing.T) {
	r := New()
	s := r.NewSession()
	if !s.CreateEphemeral("/live/n1", []byte("x")) {
		t.Fatal("create ephemeral failed")
	}
	ch := r.Watch("/live/n1")
	s.Close()
	ev := <-ch
	if !ev.Deleted {
		t.Fatalf("event = %+v, want deletion", ev)
	}
	if _, _, ok := r.Get("/live/n1"); ok {
		t.Fatal("ephemeral survived session close")
	}
	// Closed session cannot create.
	if s.CreateEphemeral("/live/n2", nil) {
		t.Fatal("create on closed session succeeded")
	}
	s.Close() // idempotent
}

func TestEphemeralNotDeletedIfReplaced(t *testing.T) {
	r := New()
	s1 := r.NewSession()
	s1.CreateEphemeral("/n", []byte("a"))
	r.Delete("/n")
	// Another owner takes the path.
	s2 := r.NewSession()
	s2.CreateEphemeral("/n", []byte("b"))
	s1.Close() // must not delete s2's node
	if _, _, ok := r.Get("/n"); !ok {
		t.Fatal("closing old session deleted new owner's node")
	}
}

func TestElection(t *testing.T) {
	r := New()
	e := r.NewElection("/coord/ring1")
	if _, ok := e.Leader(); ok {
		t.Fatal("leader before any candidate")
	}
	s1 := r.NewSession()
	s2 := r.NewSession()
	e.Enroll(s1, "node-1")
	e.Enroll(s2, "node-2")
	leader, ok := e.Leader()
	if !ok || leader != "node-1" {
		t.Fatalf("leader = %q %v", leader, ok)
	}
	// First candidate's session expires: leadership moves.
	watch := e.Watch()
	s1.Close()
	<-watch
	leader, ok = e.Leader()
	if !ok || leader != "node-2" {
		t.Fatalf("leader after failover = %q %v", leader, ok)
	}
}

func TestElectionOrderIsNumeric(t *testing.T) {
	// With enough enrollments, lexicographic ordering of unpadded numbers
	// would break; seqString must zero-pad.
	r := New()
	e := r.NewElection("/e")
	sessions := make([]*Session, 0, 12)
	for i := 0; i < 12; i++ {
		s := r.NewSession()
		sessions = append(sessions, s)
		e.Enroll(s, fmt.Sprintf("node-%d", i))
	}
	leader, _ := e.Leader()
	if leader != "node-0" {
		t.Fatalf("leader = %q, want node-0", leader)
	}
	for _, s := range sessions[:11] {
		s.Close()
	}
	leader, _ = e.Leader()
	if leader != "node-11" {
		t.Fatalf("leader = %q, want node-11", leader)
	}
}

func TestConcurrentAccess(t *testing.T) {
	r := New()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				path := fmt.Sprintf("/n/%d", g)
				r.Set(path, []byte{byte(i)})
				r.Get(path)
				r.Children("/n/")
			}
		}(g)
	}
	wg.Wait()
	if len(r.Children("/n/")) != 8 {
		t.Fatalf("children = %v", r.Children("/n/"))
	}
}

func TestSlowWatcherDoesNotBlock(t *testing.T) {
	r := New()
	_ = r.Watch("/a") // never read
	for i := 0; i < 100; i++ {
		r.Set("/a", []byte{byte(i)}) // must not deadlock
	}
}

// TestSlowWatcherCannotStallMutations floods watchers far past their
// buffer capacity without a single read and requires mutations to finish
// promptly; afterwards the stalled watcher must still be able to observe
// the most recent change (latest-wins coalescing), not only stale ones.
func TestSlowWatcherCannotStallMutations(t *testing.T) {
	r := New()
	exact := r.Watch("/hot")
	prefix := r.WatchPrefix("/hot")
	done := make(chan struct{})
	const writes = 50_000
	go func() {
		defer close(done)
		for i := 0; i < writes; i++ {
			r.Set("/hot", []byte("v"))
		}
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("mutations stalled behind a slow watcher")
	}
	// Drain: the newest buffered event must be the final version.
	last := func(ch <-chan Event) (ev Event) {
		for {
			select {
			case ev = <-ch:
			default:
				return ev
			}
		}
	}
	if ev := last(exact); ev.Version != writes {
		t.Fatalf("exact watcher last version = %d, want %d", ev.Version, writes)
	}
	if ev := last(prefix); ev.Version != writes {
		t.Fatalf("prefix watcher last version = %d, want %d", ev.Version, writes)
	}
}

func TestCompareAndSet(t *testing.T) {
	r := New()
	// expect 0 = versioned create.
	v, ok := r.CompareAndSet("/s", []byte("a"), 0)
	if !ok || v != 1 {
		t.Fatalf("create CAS = %d %v", v, ok)
	}
	if cur, ok := r.CompareAndSet("/s", []byte("b"), 0); ok || cur != 1 {
		t.Fatalf("create CAS on existing = %d %v", cur, ok)
	}
	// Matching version succeeds and bumps.
	v, ok = r.CompareAndSet("/s", []byte("b"), 1)
	if !ok || v != 2 {
		t.Fatalf("CAS = %d %v", v, ok)
	}
	// Stale version fails and reports the current one.
	if cur, ok := r.CompareAndSet("/s", []byte("c"), 1); ok || cur != 2 {
		t.Fatalf("stale CAS = %d %v", cur, ok)
	}
	data, v, _ := r.Get("/s")
	if string(data) != "b" || v != 2 {
		t.Fatalf("state = %q %d", data, v)
	}
	// Missing node with nonzero expectation.
	if _, ok := r.CompareAndSet("/missing", nil, 3); ok {
		t.Fatal("CAS on missing node succeeded")
	}
}
