// Package ringpaxos implements Ring Paxos, the atomic broadcast substrate
// of Multi-Ring Paxos (Section 4 of the paper), without relying on
// network-level optimizations such as IP-multicast: all communication
// follows a unidirectional TCP-like ring overlay.
//
// Roles follow Paxos: proposers submit values, acceptors vote, learners
// deliver. One acceptor acts as coordinator. A proposed value circulates
// the ring until it reaches the coordinator, which assigns it a consensus
// instance and emits a combined Phase 2A/2B message carrying its own vote.
// Each subsequent acceptor adds its vote; the last acceptor in the ring
// replaces the message with a Decision once a majority has voted, and the
// decision keeps circulating until every ring member has received it.
// Phase 1 is pre-executed for windows of instances, and consensus instances
// can be decided as "skips" for rate leveling (Section 4).
package ringpaxos

import (
	"errors"
	"fmt"
	"time"

	"mrp/internal/msg"
	"mrp/internal/storage"
	"mrp/internal/transport"
)

// Role is a bitmask of the Paxos roles a ring member plays. The paper's
// deployments combine roles freely (e.g. Figure 3 runs three processes
// that are all proposers, acceptors, and learners).
type Role uint8

// Role bits.
const (
	RoleProposer Role = 1 << iota
	RoleAcceptor
	RoleLearner
)

// Has reports whether r includes all bits of q.
func (r Role) Has(q Role) bool { return r&q == q }

// String implements fmt.Stringer.
func (r Role) String() string {
	s := ""
	if r.Has(RoleProposer) {
		s += "P"
	}
	if r.Has(RoleAcceptor) {
		s += "A"
	}
	if r.Has(RoleLearner) {
		s += "L"
	}
	if s == "" {
		return "-"
	}
	return s
}

// Peer describes one ring member. Peers are listed in ring order: the
// successor of Peers[i] is Peers[(i+1) % len(Peers)].
type Peer struct {
	ID    msg.NodeID
	Addr  transport.Addr
	Roles Role
}

// Config parametrizes a ring process.
type Config struct {
	// Ring is the ring (= multicast group) identifier.
	Ring msg.RingID
	// Self is this process's node ID; it must appear in Peers.
	Self msg.NodeID
	// Peers lists all ring members in ring order.
	Peers []Peer
	// Coordinator is the initial coordinator's node ID (must be an
	// acceptor). Ring configuration and election are handled by the
	// coordination service (internal/registry) above this package.
	Coordinator msg.NodeID
	// Log is the acceptor's stable storage; required when Self is an
	// acceptor.
	Log *storage.Log

	// BatchMaxBytes caps how many payload bytes the coordinator groups
	// into one consensus instance; 0 disables batching (one proposal per
	// instance, as in the Figure 3 baseline).
	//
	// This is ring-level batching: several proposals decided as one
	// consensus instance, paying one stable-storage write. It is
	// independent of transport-level write coalescing
	// (transport.BatchPolicy), which packs already-formed protocol
	// messages into one network packet and is configured on the endpoint
	// (tcpnet.WithBatch / netsim.WithBatch), not here.
	BatchMaxBytes int
	// BatchDelay is how long the coordinator waits to fill a batch.
	BatchDelay time.Duration

	// Phase1Window is how many consensus instances each pre-executed
	// Phase 1 covers.
	Phase1Window int

	// SkipInterval is the rate-leveling interval Δ: every Δ the
	// coordinator compares the number of instances started in the interval
	// against the expected count (SkipRate x Δ) and proposes skips for the
	// difference. Zero disables rate leveling.
	SkipInterval time.Duration
	// SkipRate is λ expressed as instances per second (the paper gives λ
	// per interval; a per-second rate keeps the semantics stable when
	// experiments compress Δ).
	SkipRate int

	// RetryTimeout bounds how long the coordinator waits for a decision
	// before re-proposing, and how long a learner tolerates a delivery gap
	// before requesting retransmission.
	RetryTimeout time.Duration

	// DeliverBuf is the capacity of the decisions channel (default 8192).
	DeliverBuf int

	// StartInstance, when > 0, makes the learner begin delivery at this
	// instance instead of 1 (used by recovering replicas that restored a
	// checkpoint covering the prefix).
	StartInstance msg.Instance

	// Aux receives ring-scoped messages the process itself does not consume
	// (TrimQuery arriving at a replica, TrimReply arriving at the trim
	// coordinator — Section 5.2). It runs on the event loop and must not
	// block.
	Aux func(transport.Envelope)
}

// Decided is one delivered consensus instance. Skip values are delivered
// too (with Value.Skip set): the deterministic merge layer needs them to
// advance its per-ring instance counters, but they carry no payloads.
type Decided struct {
	Ring     msg.RingID
	Instance msg.Instance
	Value    msg.Value
}

// validate checks the configuration and computes derived indexes.
func (c *Config) validate() (selfIdx int, err error) {
	if len(c.Peers) == 0 {
		return 0, errors.New("ringpaxos: no peers")
	}
	selfIdx = -1
	coordIdx := -1
	acceptors := 0
	seen := make(map[msg.NodeID]bool, len(c.Peers))
	for i, p := range c.Peers {
		if seen[p.ID] {
			return 0, fmt.Errorf("ringpaxos: duplicate peer ID %d", p.ID)
		}
		seen[p.ID] = true
		if p.ID == c.Self {
			selfIdx = i
		}
		if p.ID == c.Coordinator {
			coordIdx = i
			if !p.Roles.Has(RoleAcceptor) {
				return 0, fmt.Errorf("ringpaxos: coordinator %d is not an acceptor", p.ID)
			}
		}
		if p.Roles.Has(RoleAcceptor) {
			acceptors++
		}
	}
	if selfIdx < 0 {
		return 0, fmt.Errorf("ringpaxos: self %d not in peers", c.Self)
	}
	if coordIdx < 0 {
		return 0, fmt.Errorf("ringpaxos: coordinator %d not in peers", c.Coordinator)
	}
	if acceptors == 0 {
		return 0, errors.New("ringpaxos: no acceptors")
	}
	self := c.Peers[selfIdx]
	if self.Roles.Has(RoleAcceptor) && c.Log == nil {
		return 0, errors.New("ringpaxos: acceptor requires a storage log")
	}
	return selfIdx, nil
}

// withDefaults fills zero fields with defaults.
func (c *Config) withDefaults() {
	if c.Phase1Window <= 0 {
		c.Phase1Window = 1 << 20
	}
	if c.RetryTimeout <= 0 {
		c.RetryTimeout = 200 * time.Millisecond
	}
	if c.DeliverBuf <= 0 {
		c.DeliverBuf = 8192
	}
	if c.BatchDelay <= 0 {
		c.BatchDelay = 2 * time.Millisecond
	}
}

// majorityOf returns the quorum size for n acceptors.
func majorityOf(n int) int { return n/2 + 1 }

// ballotFor builds a ballot owned by the coordinator at ring index idx:
// ballots are partitioned across ring positions so two coordinators never
// share one.
func ballotFor(round int, idx, n int) msg.Ballot {
	return msg.Ballot(round*n + idx + 1)
}

// coordIdxOf recovers the ring index of the coordinator owning a ballot.
func coordIdxOf(b msg.Ballot, n int) int {
	return int((b - 1) % msg.Ballot(n))
}
