package ringpaxos

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"mrp/internal/msg"
	"mrp/internal/storage"
	"mrp/internal/transport"
)

// Process is one ring member. All protocol state is owned by a single
// event-loop goroutine; interaction happens through channels (proposals,
// decisions) and the control queue.
type Process struct {
	cfg     Config
	ep      transport.Endpoint
	selfIdx int
	n       int
	nAcc    int
	maj     int

	in        chan transport.Envelope
	proposeCh chan []byte
	ctl       chan func()
	out       chan Decided
	stop      chan struct{}
	done      chan struct{}
	stopOnce  sync.Once

	// Coordinator state (loop-owned).
	isCoord      bool
	ballot       msg.Ballot
	round        int
	winTo        msg.Instance // exclusive upper bound of the promised window
	winPending   bool         // a Phase 1 is in flight
	winPendTo    msg.Instance
	winPendSince time.Time
	next         msg.Instance // next free instance
	reserved     map[msg.Instance]bool
	pending      []msg.Entry
	pendingBytes int
	inflight     map[msg.Instance]*flight
	intervalOps  int                  // instances started in the current Δ interval
	seen         map[propKey]struct{} // proposal dedup (bounded FIFO)
	seenQ        []propKey

	// Proposer state (loop-owned).
	proposeSeq  uint64
	outstanding map[uint64]*outProp

	// Ring healing: peers marked down are skipped when forwarding.
	down map[msg.NodeID]bool

	// Acceptor state (loop-owned).
	promised msg.Ballot

	// Learner state (loop-owned).
	nextDeliver  msg.Instance
	decidedBuf   map[msg.Instance]msg.Value
	maxSeen      msg.Instance
	lastProgress msg.Instance
	retransAcc   int // round-robin acceptor cursor for LearnReqs

	stats Stats
}

// flight tracks one undecided instance proposed by this coordinator.
type flight struct {
	value   msg.Value
	sentAt  time.Time
	decided bool
}

// propKey identifies a proposal for coordinator-side deduplication.
type propKey struct {
	proposer msg.NodeID
	seq      uint64
}

// outProp tracks a local proposal not yet observed as learned, for
// proposer-side retransmission over lossy links.
type outProp struct {
	payload []byte
	sentAt  time.Time
}

// seenCap bounds the coordinator's proposal dedup memory.
const seenCap = 1 << 16

// Stats counts protocol activity; all fields are atomically updated and
// safe to read concurrently. BytesIn/BytesOut approximate the process's
// network processing volume and serve as the CPU proxy for Figure 3's
// coordinator-CPU graph.
type Stats struct {
	MsgsIn      atomic.Uint64
	MsgsOut     atomic.Uint64
	BytesIn     atomic.Uint64
	BytesOut    atomic.Uint64
	Proposals   atomic.Uint64
	Instances   atomic.Uint64
	Skips       atomic.Uint64
	Decisions   atomic.Uint64
	Delivered   atomic.Uint64
	Retransmits atomic.Uint64
}

// New creates a ring process attached to the endpoint. The process does not
// read the endpoint's inbox: feed ring-scoped envelopes into In() via a
// transport.Router.
func New(cfg Config, ep transport.Endpoint) (*Process, error) {
	selfIdx, err := cfg.validate()
	if err != nil {
		return nil, err
	}
	cfg.withDefaults()
	nAcc := 0
	for _, p := range cfg.Peers {
		if p.Roles.Has(RoleAcceptor) {
			nAcc++
		}
	}
	start := msg.Instance(1)
	if cfg.StartInstance > 0 {
		start = cfg.StartInstance
	}
	p := &Process{
		cfg:         cfg,
		ep:          ep,
		selfIdx:     selfIdx,
		n:           len(cfg.Peers),
		nAcc:        nAcc,
		maj:         majorityOf(nAcc),
		in:          make(chan transport.Envelope, 4096),
		proposeCh:   make(chan []byte, 1024),
		ctl:         make(chan func(), 16),
		out:         make(chan Decided, cfg.DeliverBuf),
		stop:        make(chan struct{}),
		done:        make(chan struct{}),
		reserved:    make(map[msg.Instance]bool),
		inflight:    make(map[msg.Instance]*flight),
		seen:        make(map[propKey]struct{}),
		outstanding: make(map[uint64]*outProp),
		down:        make(map[msg.NodeID]bool),
		next:        1,
		nextDeliver: start,
		decidedBuf:  make(map[msg.Instance]msg.Value),
	}
	return p, nil
}

// In returns the channel the node's router feeds ring-scoped messages into.
func (p *Process) In() chan<- transport.Envelope { return p.in }

// Decisions returns the ordered, gap-free stream of decided instances
// (including skips) for this ring, starting at StartInstance.
func (p *Process) Decisions() <-chan Decided { return p.out }

// Stats returns the process's counters.
func (p *Process) Stats() *Stats { return &p.stats }

// Ring returns the ring identifier.
func (p *Process) Ring() msg.RingID { return p.cfg.Ring }

// Start launches the event loop. If this process is the configured
// coordinator it immediately pre-executes Phase 1 for the first window.
func (p *Process) Start() {
	go p.run()
}

// Stop terminates the event loop. It does not close the endpoint.
func (p *Process) Stop() {
	p.stopOnce.Do(func() { close(p.stop) })
	<-p.done
}

// Propose multicasts a payload to this ring's group. If this process is not
// the coordinator, the proposal is forwarded along the ring until it
// reaches it (Section 4). Propose never blocks on consensus; delivery
// happens through the Decisions stream.
func (p *Process) Propose(payload []byte) error {
	if !p.self().Roles.Has(RoleProposer) {
		return fmt.Errorf("ringpaxos: node %d is not a proposer", p.cfg.Self)
	}
	select {
	case p.proposeCh <- payload:
		return nil
	case <-p.stop:
		return transport.ErrClosed
	}
}

// BecomeCoordinator makes this process take over coordination with a fresh,
// higher ballot, pre-executing Phase 1. Called by the ring manager when the
// coordination service elects a new coordinator.
func (p *Process) BecomeCoordinator() {
	select {
	case p.ctl <- func() { p.becomeCoordinator() }:
	case <-p.stop:
	}
}

func (p *Process) self() Peer { return p.cfg.Peers[p.selfIdx] }

// succ returns the next live ring member after this one (ring healing:
// crashed members, reported via SetPeerDown by the ring manager, are
// skipped so circulation continues around them).
func (p *Process) succ() Peer {
	for d := 1; d < p.n; d++ {
		peer := p.cfg.Peers[(p.selfIdx+d)%p.n]
		if !p.down[peer.ID] {
			return peer
		}
	}
	return p.self()
}

func (p *Process) succAddr() transport.Addr { return p.succ().Addr }

func (p *Process) succID() msg.NodeID { return p.succ().ID }

// lastAcceptorIdx returns the ring index of the last live acceptor a
// Phase 2 message reaches when circulating from the coordinator at
// coordIdx.
func (p *Process) lastAcceptorIdx(coordIdx int) int {
	last := coordIdx
	for d := 1; d < p.n; d++ {
		i := (coordIdx + d) % p.n
		peer := p.cfg.Peers[i]
		if peer.Roles.Has(RoleAcceptor) && !p.down[peer.ID] {
			last = i
		}
	}
	return last
}

// SetPeerDown marks a ring member as crashed (or recovered), healing the
// ring overlay around it. Failure detection itself lives in the ring
// manager, which watches the coordination service's ephemeral nodes.
func (p *Process) SetPeerDown(id msg.NodeID, isDown bool) {
	select {
	case p.ctl <- func() {
		if isDown {
			p.down[id] = true
		} else {
			delete(p.down, id)
		}
	}:
	case <-p.stop:
	}
}

func (p *Process) send(to transport.Addr, m msg.Message) {
	p.stats.MsgsOut.Add(1)
	p.stats.BytesOut.Add(uint64(m.Size()))
	_ = p.ep.Send(to, m)
}

func (p *Process) forward(m msg.Message) {
	if p.n > 1 {
		p.send(p.succAddr(), m)
	}
}

// run is the event loop.
func (p *Process) run() {
	defer close(p.done)
	if p.cfg.Coordinator == p.cfg.Self {
		// Take coordination before consuming any input so local proposals
		// are never needlessly routed around the ring.
		p.becomeCoordinator()
	}
	batch := time.NewTicker(p.cfg.BatchDelay)
	defer batch.Stop()
	retry := time.NewTicker(p.cfg.RetryTimeout)
	defer retry.Stop()
	var skipC <-chan time.Time
	if p.cfg.SkipInterval > 0 {
		skip := time.NewTicker(p.cfg.SkipInterval)
		defer skip.Stop()
		skipC = skip.C
	}
	for {
		select {
		case env := <-p.in:
			p.stats.MsgsIn.Add(1)
			p.stats.BytesIn.Add(uint64(env.Msg.Size()))
			p.handle(env)
		case payload := <-p.proposeCh:
			p.handlePropose(payload)
		case fn := <-p.ctl:
			fn()
		case <-batch.C:
			if p.isCoord && len(p.pending) > 0 {
				p.flush()
			}
		case <-skipC:
			p.skipTick()
		case <-retry.C:
			p.retryTick()
		case <-p.stop:
			return
		}
	}
}

func (p *Process) handle(env transport.Envelope) {
	switch m := env.Msg.(type) {
	case *msg.Proposal:
		p.handleProposal(m)
	case *msg.Phase1B:
		p.handlePhase1B(m)
	case *msg.Phase2:
		p.handlePhase2(m)
	case *msg.Decision:
		p.handleDecision(m, false)
	case *msg.LearnReq:
		p.handleLearnReq(m, env.From)
	case *msg.LearnResp:
		p.handleLearnResp(m)
	case *msg.TrimCmd:
		if p.self().Roles.Has(RoleAcceptor) && p.cfg.Log != nil {
			p.cfg.Log.Trim(m.UpTo)
		}
	case *msg.TrimQuery, *msg.TrimReply:
		if p.cfg.Aux != nil {
			p.cfg.Aux(env)
		}
	case *msg.Phase1A:
		// Phase 1A/1B are combined into the circulating Phase1B; a bare
		// Phase1A is not used by this implementation.
	}
}

// --- Proposer / coordinator ---

func (p *Process) handlePropose(payload []byte) {
	p.stats.Proposals.Add(1)
	p.proposeSeq++
	seq := p.proposeSeq
	if p.self().Roles.Has(RoleLearner) {
		// Track until observed as learned so it can be retransmitted over
		// lossy links; the coordinator deduplicates retransmissions.
		p.outstanding[seq] = &outProp{payload: payload, sentAt: time.Now()}
	}
	p.submit(msg.Entry{Proposer: p.cfg.Self, Seq: seq, Data: payload})
}

// submit routes a proposal entry: enqueue locally when coordinating,
// otherwise circulate it along the ring.
func (p *Process) submit(e msg.Entry) {
	if p.isCoord {
		p.enqueue(e)
		return
	}
	p.forward(&msg.Proposal{
		Ring:       p.cfg.Ring,
		ProposerID: e.Proposer,
		Seq:        e.Seq,
		Payload:    e.Data,
	})
}

func (p *Process) handleProposal(m *msg.Proposal) {
	if p.isCoord {
		p.enqueue(msg.Entry{Proposer: m.ProposerID, Seq: m.Seq, Data: m.Payload})
		return
	}
	p.forward(m)
}

func (p *Process) enqueue(e msg.Entry) {
	k := propKey{proposer: e.Proposer, seq: e.Seq}
	if _, dup := p.seen[k]; dup {
		return
	}
	p.seen[k] = struct{}{}
	p.seenQ = append(p.seenQ, k)
	if len(p.seenQ) > seenCap {
		delete(p.seen, p.seenQ[0])
		p.seenQ = p.seenQ[1:]
	}
	p.pending = append(p.pending, e)
	p.pendingBytes += len(e.Data)
	if p.cfg.BatchMaxBytes == 0 || p.pendingBytes >= p.cfg.BatchMaxBytes {
		p.flush()
	}
}

// flush starts consensus instances for the pending proposals: one instance
// per proposal with batching disabled, or one instance per BatchMaxBytes
// batch otherwise.
func (p *Process) flush() {
	if !p.isCoord {
		return
	}
	for len(p.pending) > 0 {
		if !p.ensureWindow() {
			return // stalled until Phase 1 extends the window
		}
		take := 1
		if p.cfg.BatchMaxBytes > 0 {
			size := 0
			take = 0
			for take < len(p.pending) {
				if take > 0 && size+len(p.pending[take].Data) > p.cfg.BatchMaxBytes {
					break
				}
				size += len(p.pending[take].Data)
				take++
			}
		}
		// Copy: the batch outlives this flush inside inflight/Phase2
		// messages, while the pending queue's backing array keeps growing.
		batch := append([]msg.Entry(nil), p.pending[:take]...)
		p.pending = p.pending[take:]
		for i := range batch {
			p.pendingBytes -= len(batch[i].Data)
		}
		p.startInstance(msg.Value{Batch: batch})
	}
	if len(p.pending) == 0 {
		p.pending = nil
	}
}

// ensureWindow makes sure at least one instance is available in the
// promised window, requesting a Phase 1 extension when the window runs low.
// It returns false when the coordinator must wait for Phase 1 to complete.
func (p *Process) ensureWindow() bool {
	if p.winTo == 0 { // not yet coordinator-initialized
		return false
	}
	low := p.winTo - msg.Instance(p.cfg.Phase1Window/4)
	if p.next >= low && !p.winPending {
		p.sendPhase1(p.winTo, p.winTo+msg.Instance(p.cfg.Phase1Window))
	}
	return p.next < p.winTo
}

// startInstance assigns the next free instance to a value and emits the
// Phase 2A/2B message with the coordinator's own vote.
func (p *Process) startInstance(v msg.Value) {
	for p.reserved[p.next] {
		p.next++
	}
	inst := p.next
	if v.Skip {
		p.next = v.SkipTo
	} else {
		p.next++
	}
	p.intervalOps++
	p.stats.Instances.Add(1)
	p.propose2(inst, v)
}

// propose2 persists the coordinator's vote and circulates Phase 2A/2B.
func (p *Process) propose2(inst msg.Instance, v msg.Value) {
	if err := p.cfg.Log.Put(inst, storage.Record{Rnd: p.ballot, VRnd: p.ballot, Value: v}); err != nil {
		return // instance already trimmed: long decided
	}
	p.inflight[inst] = &flight{value: v, sentAt: time.Now()}
	m := &msg.Phase2{Ring: p.cfg.Ring, Ballot: p.ballot, Instance: inst, Value: v, Votes: 1}
	if p.lastAcceptorIdx(p.selfIdx) == p.selfIdx {
		// Single-acceptor ring: the coordinator is also the last acceptor.
		if 1 >= p.maj {
			p.decide(inst, v)
		}
		return
	}
	p.forward(m)
}

// stepDown stops coordinating after observing a higher ballot from another
// coordinator. Pending proposals are pushed back into the ring so the new
// coordinator picks them up.
func (p *Process) stepDown() {
	if !p.isCoord {
		return
	}
	p.isCoord = false
	pending := p.pending
	p.pending = nil
	p.pendingBytes = 0
	for _, e := range pending {
		p.forward(&msg.Proposal{Ring: p.cfg.Ring, ProposerID: e.Proposer, Seq: e.Seq, Payload: e.Data})
	}
}

// becomeCoordinator adopts a fresh ballot and pre-executes Phase 1.
func (p *Process) becomeCoordinator() {
	if !p.self().Roles.Has(RoleAcceptor) {
		return
	}
	p.isCoord = true
	p.round++
	p.ballot = ballotFor(p.round, p.selfIdx, p.n)
	if p.promised < p.ballot {
		p.promised = p.ballot
	}
	// Start the window at the lowest instance that might be undecided:
	// everything below the local learner's delivery point is decided, and
	// everything at or below the log's low watermark is trimmed.
	from := p.nextDeliver
	if p.cfg.Log != nil {
		if lw := p.cfg.Log.LowWatermark(); lw+1 > from {
			from = lw + 1
		}
	}
	if p.next < from {
		p.next = from
	}
	p.winTo = 0
	p.sendPhase1(p.next, p.next+msg.Instance(p.cfg.Phase1Window))
}

// sendPhase1 emits the circulating combined Phase 1A/1B message for
// instances [from, to).
func (p *Process) sendPhase1(from, to msg.Instance) {
	p.winPending = true
	p.winPendTo = to
	p.winPendSince = time.Now()
	m := &msg.Phase1B{
		Ring:     p.cfg.Ring,
		Ballot:   p.ballot,
		From:     from,
		To:       to,
		Promises: 1, // the coordinator's own promise
		Voted:    p.votedIn(from, to),
	}
	p.chargePromise()
	if p.n == 1 {
		p.acceptWindow(m)
		return
	}
	p.forward(m)
}

// votedIn collects this acceptor's voted values in [from, to) for merging
// into a circulating Phase1B.
func (p *Process) votedIn(from, to msg.Instance) []msg.VotedValue {
	if p.cfg.Log == nil {
		return nil
	}
	var out []msg.VotedValue
	p.cfg.Log.Range(from, to, func(i msg.Instance, r storage.Record) {
		if r.VRnd > 0 {
			out = append(out, msg.VotedValue{Instance: i, VRnd: r.VRnd, Value: r.Value})
		}
	})
	return out
}

// chargePromise accounts the stable write of a promise.
func (p *Process) chargePromise() {
	if p.cfg.Log == nil {
		return
	}
	switch p.cfg.Log.Mode() {
	case storage.SyncHDD, storage.SyncSSD:
		p.cfg.Log.Disk().SyncWrite(16)
	case storage.AsyncHDD, storage.AsyncSSD:
		p.cfg.Log.Disk().AsyncWrite(16)
	}
}

func (p *Process) handlePhase1B(m *msg.Phase1B) {
	owner := coordIdxOf(m.Ballot, p.n)
	if owner == p.selfIdx {
		// Our own Phase 1 message returned after the full circle (or a
		// stale one from a previous ballot of ours: consume either way).
		if p.isCoord && m.Ballot == p.ballot && int(m.Promises) >= p.maj {
			p.acceptWindow(m)
		}
		// Otherwise the retry ticker re-runs Phase 1 with a higher ballot.
		return
	}
	if m.Ballot > p.ballot && owner != p.selfIdx {
		p.stepDown() // another coordinator took over
	}
	if p.self().Roles.Has(RoleAcceptor) && m.Ballot >= p.promised {
		p.promised = m.Ballot
		p.chargePromise()
		c := *m
		c.Promises++
		c.Voted = append(append([]msg.VotedValue(nil), m.Voted...), p.votedIn(m.From, m.To)...)
		p.forward(&c)
		return
	}
	p.forward(m)
}

// acceptWindow installs a promised window and re-proposes any values
// acceptors had voted for in it (Paxos safety across coordinator changes).
// Note that next is NOT advanced to m.From: window extensions are requested
// ahead of the instance frontier (at the window's 3/4 mark), and jumping
// would orphan the instances between the frontier and the old window edge —
// they would never be proposed and delivery would stall on the gap forever.
// becomeCoordinator positions next before the initial Phase 1 instead.
func (p *Process) acceptWindow(m *msg.Phase1B) {
	p.winPending = false
	p.winTo = m.To
	// Reduce merged votes: keep the highest-VRnd value per instance.
	highest := make(map[msg.Instance]msg.VotedValue)
	for _, vv := range m.Voted {
		if cur, ok := highest[vv.Instance]; !ok || vv.VRnd > cur.VRnd {
			highest[vv.Instance] = vv
		}
	}
	for inst, vv := range highest {
		if inst < p.nextDeliver {
			continue // already delivered: decided long ago
		}
		if _, ok := p.inflight[inst]; ok {
			continue // already being re-proposed
		}
		p.reserved[inst] = true
		p.stats.Instances.Add(1)
		p.propose2(inst, vv.Value)
	}
	p.flush()
}

// --- Acceptor ---

func (p *Process) handlePhase2(m *msg.Phase2) {
	owner := coordIdxOf(m.Ballot, p.n)
	if owner == p.selfIdx {
		// Our own Phase 2 came full circle without deciding (some acceptor
		// refused); the retry ticker will re-propose.
		return
	}
	if m.Ballot > p.ballot {
		p.stepDown()
	}
	// Any Phase 2 is a hint about the highest outstanding instance; it
	// feeds gap detection so even trailing losses trigger retransmission.
	p.noteSeen(m.Instance, m.Value)
	isLast := p.lastAcceptorIdx(owner) == p.selfIdx
	if isLast && int(m.Votes) >= p.maj {
		// The majority already voted: the last acceptor converts the
		// message into a decision without adding (and persisting) its own
		// vote — the decision is backed by the majority's stable storage.
		p.decide(m.Instance, m.Value)
		return
	}
	votes := m.Votes
	voted := false
	if p.self().Roles.Has(RoleAcceptor) && m.Ballot >= p.promised {
		rec := storage.Record{Rnd: m.Ballot, VRnd: m.Ballot, Value: m.Value}
		if err := p.cfg.Log.Put(m.Instance, rec); err == nil {
			votes++
			voted = true
		}
	}
	if isLast && int(votes) >= p.maj {
		p.decide(m.Instance, m.Value)
		return
	}
	if voted {
		c := *m
		c.Votes = votes
		p.forward(&c)
		return
	}
	p.forward(m)
}

// decide originates a Decision at this (last) acceptor and processes it
// locally.
func (p *Process) decide(inst msg.Instance, v msg.Value) {
	p.stats.Decisions.Add(1)
	d := &msg.Decision{Ring: p.cfg.Ring, Instance: inst, Origin: p.cfg.Self, Value: v}
	p.handleDecision(d, true)
}

// --- Decisions and learning ---

func (p *Process) handleDecision(d *msg.Decision, local bool) {
	fresh := p.learn(d.Instance, d.Value)
	if !local && !fresh {
		return // duplicate after a full circle: stop forwarding
	}
	if p.succID() != d.Origin && p.n > 1 {
		p.forward(d)
	}
}

// learn records a decided instance, updates acceptor retransmission state,
// tracks inflight bookkeeping, and advances in-order delivery. It reports
// whether the decision was new to this process.
func (p *Process) learn(inst msg.Instance, v msg.Value) bool {
	if inst < p.nextDeliver {
		return false
	}
	if _, dup := p.decidedBuf[inst]; dup {
		return false
	}
	if p.self().Roles.Has(RoleAcceptor) && p.cfg.Log != nil {
		p.cfg.Log.MarkDecided(inst, v)
	}
	if f, ok := p.inflight[inst]; ok {
		f.decided = true
		delete(p.inflight, inst)
	}
	delete(p.reserved, inst)
	p.noteSeen(inst, v)
	for i := range v.Batch {
		if v.Batch[i].Proposer == p.cfg.Self {
			delete(p.outstanding, v.Batch[i].Seq)
		}
	}
	p.decidedBuf[inst] = v
	p.advance()
	return true
}

// noteSeen tracks the highest instance this process has heard of, for
// delivery-gap detection.
func (p *Process) noteSeen(inst msg.Instance, v msg.Value) {
	if inst > p.maxSeen {
		p.maxSeen = inst
	}
	if v.Skip && v.SkipTo > 0 && v.SkipTo-1 > p.maxSeen {
		p.maxSeen = v.SkipTo - 1
	}
}

// advance delivers contiguous decided instances to the learner stream.
func (p *Process) advance() {
	for {
		v, ok := p.decidedBuf[p.nextDeliver]
		if !ok {
			return
		}
		delete(p.decidedBuf, p.nextDeliver)
		inst := p.nextDeliver
		if v.Skip && v.SkipTo > p.nextDeliver {
			p.nextDeliver = v.SkipTo
			p.stats.Skips.Add(1)
		} else {
			p.nextDeliver++
		}
		if p.self().Roles.Has(RoleLearner) {
			p.stats.Delivered.Add(1)
			select {
			case p.out <- Decided{Ring: p.cfg.Ring, Instance: inst, Value: v}:
			case <-p.stop:
				return
			}
		}
	}
}

// --- Retransmission ---

const (
	learnRespMaxItems = 2048
	learnRespMaxBytes = 1 << 20
)

func (p *Process) handleLearnReq(m *msg.LearnReq, from transport.Addr) {
	if !p.self().Roles.Has(RoleAcceptor) || p.cfg.Log == nil {
		return
	}
	resp := &msg.LearnResp{Ring: p.cfg.Ring, Trimmed: p.cfg.Log.LowWatermark()}
	bytes := 0
	p.cfg.Log.Range(m.From, m.To, func(i msg.Instance, r storage.Record) {
		if !r.Decided || len(resp.Items) >= learnRespMaxItems || bytes >= learnRespMaxBytes {
			return
		}
		resp.Items = append(resp.Items, msg.DecidedItem{Instance: i, Value: r.Value})
		bytes += r.Value.PayloadBytes()
	})
	p.stats.Retransmits.Add(1)
	p.send(from, resp)
}

func (p *Process) handleLearnResp(m *msg.LearnResp) {
	for _, it := range m.Items {
		p.learn(it.Instance, it.Value)
	}
}

// requestRetransmission asks an acceptor for the missing delivery gap.
func (p *Process) requestRetransmission() {
	to := p.maxSeen + 1
	if to > p.nextDeliver+learnRespMaxItems {
		to = p.nextDeliver + learnRespMaxItems
	}
	// Round-robin over remote acceptors.
	for tries := 0; tries < p.n; tries++ {
		p.retransAcc = (p.retransAcc + 1) % p.n
		peer := p.cfg.Peers[p.retransAcc]
		if peer.ID == p.cfg.Self || !peer.Roles.Has(RoleAcceptor) {
			continue
		}
		p.send(peer.Addr, &msg.LearnReq{Ring: p.cfg.Ring, From: p.nextDeliver, To: to})
		return
	}
}

// --- Timers ---

func (p *Process) skipTick() {
	if !p.isCoord || p.cfg.SkipRate <= 0 {
		return
	}
	count := p.intervalOps
	p.intervalOps = 0
	// λ is a per-second rate; the per-interval target is λ x Δ.
	target := int(float64(p.cfg.SkipRate) * p.cfg.SkipInterval.Seconds())
	if target < 1 {
		target = 1
	}
	if count >= target {
		return
	}
	if !p.ensureWindow() {
		return
	}
	n := msg.Instance(target - count)
	to := p.next + n
	if to > p.winTo {
		to = p.winTo
	}
	if to <= p.next {
		return
	}
	p.startInstance(msg.Value{Skip: true, SkipTo: to})
}

func (p *Process) retryTick() {
	now := time.Now()
	if p.isCoord {
		if p.winPending && now.Sub(p.winPendSince) > p.cfg.RetryTimeout {
			// Phase 1 lost or refused: raise the ballot and retry.
			p.round++
			p.ballot = ballotFor(p.round, p.selfIdx, p.n)
			if p.promised < p.ballot {
				p.promised = p.ballot
			}
			from := p.next
			p.sendPhase1(from, p.winPendTo)
		}
		for inst, f := range p.inflight {
			if f.decided {
				delete(p.inflight, inst)
				continue
			}
			if now.Sub(f.sentAt) > p.cfg.RetryTimeout {
				f.sentAt = now
				p.propose2re(inst, f.value)
			}
		}
		p.flush()
	}
	// Proposer: retransmit proposals not yet observed as learned. The
	// coordinator deduplicates, so this is safe over lossy links.
	for seq, op := range p.outstanding {
		if now.Sub(op.sentAt) > p.cfg.RetryTimeout {
			op.sentAt = now
			p.submit(msg.Entry{Proposer: p.cfg.Self, Seq: seq, Data: op.payload})
		}
	}
	// Learner gap detection.
	if p.self().Roles.Has(RoleLearner) && p.maxSeen >= p.nextDeliver && p.nextDeliver == p.lastProgress {
		p.requestRetransmission()
	}
	p.lastProgress = p.nextDeliver
}

// propose2re re-circulates Phase 2 for an undecided inflight instance at
// the current ballot.
func (p *Process) propose2re(inst msg.Instance, v msg.Value) {
	rec := storage.Record{Rnd: p.ballot, VRnd: p.ballot, Value: v}
	if err := p.cfg.Log.Put(inst, rec); err != nil {
		delete(p.inflight, inst)
		return
	}
	m := &msg.Phase2{Ring: p.cfg.Ring, Ballot: p.ballot, Instance: inst, Value: v, Votes: 1}
	if p.lastAcceptorIdx(p.selfIdx) == p.selfIdx && 1 >= p.maj {
		p.decide(inst, v)
		return
	}
	p.forward(m)
}
