package ringpaxos

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"mrp/internal/msg"
	"mrp/internal/netsim"
	"mrp/internal/storage"
	"mrp/internal/transport"
)

// testRing wires n processes (all proposer+acceptor+learner by default)
// into one ring over a simulated network and collects every node's
// delivered payload sequence.
type testRing struct {
	t       *testing.T
	net     *netsim.Network
	procs   []*Process
	routers []*transport.Router
	eps     []*netsim.Endpoint
	logs    []*storage.Log

	mu        sync.Mutex
	delivered [][]string // per node, non-skip payloads in delivery order
	collectWG sync.WaitGroup
}

func newTestRing(t *testing.T, n int, mutate func(i int, c *Config)) *testRing {
	t.Helper()
	net := netsim.New(netsim.WithUniformLatency(20 * time.Microsecond))
	tr := &testRing{
		t:         t,
		net:       net,
		delivered: make([][]string, n),
	}
	peers := make([]Peer, n)
	for i := 0; i < n; i++ {
		peers[i] = Peer{
			ID:    msg.NodeID(i + 1),
			Addr:  transport.Addr(fmt.Sprintf("node-%d", i)),
			Roles: RoleProposer | RoleAcceptor | RoleLearner,
		}
	}
	for i := 0; i < n; i++ {
		ep := net.Endpoint(peers[i].Addr)
		log := storage.NewLog(storage.InMemory)
		cfg := Config{
			Ring:         1,
			Self:         peers[i].ID,
			Peers:        peers,
			Coordinator:  peers[0].ID,
			Log:          log,
			BatchDelay:   time.Millisecond,
			RetryTimeout: 50 * time.Millisecond,
		}
		if mutate != nil {
			mutate(i, &cfg)
		}
		proc, err := New(cfg, ep)
		if err != nil {
			t.Fatal(err)
		}
		router := transport.NewRouter(ep)
		router.Ring(cfg.Ring, proc.In())
		router.Start()
		tr.procs = append(tr.procs, proc)
		tr.routers = append(tr.routers, router)
		tr.eps = append(tr.eps, ep)
		tr.logs = append(tr.logs, log)
	}
	for i, proc := range tr.procs {
		proc.Start()
		tr.collect(i, proc)
	}
	t.Cleanup(tr.close)
	return tr
}

func (tr *testRing) collect(i int, proc *Process) {
	tr.collectWG.Add(1)
	go func() {
		defer tr.collectWG.Done()
		for d := range proc.Decisions() {
			if d.Value.Skip {
				continue
			}
			tr.mu.Lock()
			for _, e := range d.Value.Batch {
				tr.delivered[i] = append(tr.delivered[i], string(e.Data))
			}
			tr.mu.Unlock()
		}
	}()
}

func (tr *testRing) close() {
	for _, proc := range tr.procs {
		proc.Stop()
	}
	for _, r := range tr.routers {
		r.Stop()
	}
	tr.net.Close()
}

// crash stops node i's process and closes its endpoint.
func (tr *testRing) crash(i int) {
	tr.procs[i].Stop()
	tr.routers[i].Stop()
	_ = tr.eps[i].Close()
}

func (tr *testRing) seq(i int) []string {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	return append([]string(nil), tr.delivered[i]...)
}

// waitDelivered waits until every node in idxs has delivered at least n
// payloads.
func (tr *testRing) waitDelivered(idxs []int, n int, timeout time.Duration) {
	tr.t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		ok := true
		for _, i := range idxs {
			if len(tr.seq(i)) < n {
				ok = false
				break
			}
		}
		if ok {
			return
		}
		if time.Now().After(deadline) {
			counts := make([]int, len(tr.delivered))
			for i := range tr.delivered {
				counts[i] = len(tr.seq(i))
			}
			tr.t.Fatalf("timeout waiting for %d deliveries; got %v", n, counts)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// assertPrefixAgreement checks the atomic broadcast order property: every
// pair of delivery sequences must agree on their common prefix.
func (tr *testRing) assertPrefixAgreement(idxs []int) {
	tr.t.Helper()
	for a := 0; a < len(idxs); a++ {
		for b := a + 1; b < len(idxs); b++ {
			sa, sb := tr.seq(idxs[a]), tr.seq(idxs[b])
			n := len(sa)
			if len(sb) < n {
				n = len(sb)
			}
			for k := 0; k < n; k++ {
				if sa[k] != sb[k] {
					tr.t.Fatalf("order violation at %d: node%d=%q node%d=%q",
						k, idxs[a], sa[k], idxs[b], sb[k])
				}
			}
		}
	}
}

func TestSingleValueDeliveredEverywhere(t *testing.T) {
	tr := newTestRing(t, 3, nil)
	if err := tr.procs[0].Propose([]byte("v1")); err != nil {
		t.Fatal(err)
	}
	tr.waitDelivered([]int{0, 1, 2}, 1, 5*time.Second)
	for i := 0; i < 3; i++ {
		if got := tr.seq(i); got[0] != "v1" {
			t.Fatalf("node %d delivered %q", i, got[0])
		}
	}
}

func TestProposeFromNonCoordinator(t *testing.T) {
	tr := newTestRing(t, 3, nil)
	// Node 2 is not the coordinator: the proposal must circulate the ring.
	if err := tr.procs[2].Propose([]byte("ring-forwarded")); err != nil {
		t.Fatal(err)
	}
	tr.waitDelivered([]int{0, 1, 2}, 1, 5*time.Second)
	if got := tr.seq(1)[0]; got != "ring-forwarded" {
		t.Fatalf("delivered %q", got)
	}
}

func TestManyProposersTotalOrder(t *testing.T) {
	tr := newTestRing(t, 3, nil)
	const perNode = 50
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for k := 0; k < perNode; k++ {
				if err := tr.procs[i].Propose([]byte(fmt.Sprintf("n%d-%d", i, k))); err != nil {
					t.Errorf("propose: %v", err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	tr.waitDelivered([]int{0, 1, 2}, 3*perNode, 10*time.Second)
	tr.assertPrefixAgreement([]int{0, 1, 2})
	// Validity: everything proposed was delivered exactly once.
	seen := make(map[string]int)
	for _, v := range tr.seq(0) {
		seen[v]++
	}
	if len(seen) != 3*perNode {
		t.Fatalf("distinct values = %d, want %d", len(seen), 3*perNode)
	}
	for v, c := range seen {
		if c != 1 {
			t.Fatalf("value %q delivered %d times", v, c)
		}
	}
}

func TestBatchingGroupsProposals(t *testing.T) {
	tr := newTestRing(t, 3, func(_ int, c *Config) {
		c.BatchMaxBytes = 1024
		c.BatchDelay = 5 * time.Millisecond
	})
	for k := 0; k < 40; k++ {
		if err := tr.procs[0].Propose([]byte(fmt.Sprintf("b-%02d", k))); err != nil {
			t.Fatal(err)
		}
	}
	tr.waitDelivered([]int{0, 1, 2}, 40, 5*time.Second)
	tr.assertPrefixAgreement([]int{0, 1, 2})
	// Batching must use far fewer instances than proposals.
	inst := tr.procs[0].Stats().Instances.Load()
	if inst >= 40 {
		t.Fatalf("instances = %d, want < 40 with batching", inst)
	}
	// FIFO from a single proposer through one coordinator.
	got := tr.seq(1)
	for k := 0; k < 40; k++ {
		if got[k] != fmt.Sprintf("b-%02d", k) {
			t.Fatalf("position %d = %q", k, got[k])
		}
	}
}

func TestSkipInstancesAdvanceWhenIdle(t *testing.T) {
	tr := newTestRing(t, 3, func(_ int, c *Config) {
		c.SkipInterval = 5 * time.Millisecond
		c.SkipRate = 100
	})
	// No proposals at all: rate leveling must still decide skip instances.
	deadline := time.Now().Add(5 * time.Second)
	for tr.procs[2].Stats().Skips.Load() < 3 {
		if time.Now().After(deadline) {
			t.Fatalf("skips at learner = %d, want >= 3", tr.procs[2].Stats().Skips.Load())
		}
		time.Sleep(2 * time.Millisecond)
	}
	// And values proposed between skips still get through.
	if err := tr.procs[0].Propose([]byte("amid-skips")); err != nil {
		t.Fatal(err)
	}
	tr.waitDelivered([]int{0, 1, 2}, 1, 5*time.Second)
	if tr.seq(2)[0] != "amid-skips" {
		t.Fatalf("delivered %q", tr.seq(2)[0])
	}
}

func TestLossyLinksEventuallyDeliver(t *testing.T) {
	tr := newTestRing(t, 3, func(_ int, c *Config) {
		c.RetryTimeout = 30 * time.Millisecond
	})
	// 20% loss on every ring link.
	for i := 0; i < 3; i++ {
		from := transport.Addr(fmt.Sprintf("node-%d", i))
		to := transport.Addr(fmt.Sprintf("node-%d", (i+1)%3))
		tr.net.SetLoss(from, to, 0.2)
	}
	const total = 30
	for k := 0; k < total; k++ {
		if err := tr.procs[k%3].Propose([]byte(fmt.Sprintf("lossy-%d", k))); err != nil {
			t.Fatal(err)
		}
	}
	tr.waitDelivered([]int{0, 1, 2}, total, 20*time.Second)
	tr.assertPrefixAgreement([]int{0, 1, 2})
}

func TestCoordinatorFailover(t *testing.T) {
	tr := newTestRing(t, 3, func(_ int, c *Config) {
		c.RetryTimeout = 30 * time.Millisecond
	})
	for k := 0; k < 10; k++ {
		if err := tr.procs[0].Propose([]byte(fmt.Sprintf("pre-%d", k))); err != nil {
			t.Fatal(err)
		}
	}
	tr.waitDelivered([]int{1, 2}, 10, 5*time.Second)

	// Coordinator crashes; the survivors heal the ring around it and node 1
	// takes over (in production the registry election triggers both).
	tr.crash(0)
	tr.procs[1].SetPeerDown(1, true)
	tr.procs[2].SetPeerDown(1, true)
	tr.procs[1].BecomeCoordinator()
	time.Sleep(50 * time.Millisecond)

	for k := 0; k < 10; k++ {
		if err := tr.procs[1].Propose([]byte(fmt.Sprintf("post-%d", k))); err != nil {
			t.Fatal(err)
		}
	}
	tr.waitDelivered([]int{1, 2}, 20, 10*time.Second)
	tr.assertPrefixAgreement([]int{1, 2})
	// No duplicates across the failover.
	seen := make(map[string]int)
	for _, v := range tr.seq(1) {
		seen[v]++
	}
	for v, c := range seen {
		if c != 1 {
			t.Fatalf("value %q delivered %d times across failover", v, c)
		}
	}
}

func TestLearnerOnlyNodeDelivers(t *testing.T) {
	tr := newTestRing(t, 4, func(i int, c *Config) {
		if i == 3 {
			// Node 3 is a pure learner (no acceptor vote, no proposals).
			peers := append([]Peer(nil), c.Peers...)
			peers[3].Roles = RoleLearner
			c.Peers = peers
			c.Log = nil
		} else {
			peers := append([]Peer(nil), c.Peers...)
			peers[3].Roles = RoleLearner
			c.Peers = peers
		}
	})
	for k := 0; k < 20; k++ {
		if err := tr.procs[0].Propose([]byte(fmt.Sprintf("v-%d", k))); err != nil {
			t.Fatal(err)
		}
	}
	tr.waitDelivered([]int{0, 1, 2, 3}, 20, 5*time.Second)
	tr.assertPrefixAgreement([]int{0, 1, 2, 3})
	if err := tr.procs[3].Propose([]byte("x")); err == nil {
		t.Fatal("non-proposer Propose should fail")
	}
}

func TestLateLearnerCatchesUpViaRetransmission(t *testing.T) {
	tr := newTestRing(t, 3, func(_ int, c *Config) {
		c.RetryTimeout = 20 * time.Millisecond
	})
	for k := 0; k < 15; k++ {
		if err := tr.procs[0].Propose([]byte(fmt.Sprintf("early-%d", k))); err != nil {
			t.Fatal(err)
		}
	}
	tr.waitDelivered([]int{0, 1, 2}, 15, 5*time.Second)

	// A new learner-only node joins the ring's network and asks an acceptor
	// for the decided prefix directly (this is the acceptor-retransmission
	// path used by recovering replicas, Section 5.1).
	ep := tr.net.Endpoint("late-learner")
	done := make(chan []string)
	go func() {
		var got []string
		next := msg.Instance(1)
		for {
			_ = ep.Send("node-1", &msg.LearnReq{Ring: 1, From: next, To: next + 100})
			timeout := time.After(200 * time.Millisecond)
		drain:
			for {
				select {
				case env, ok := <-ep.Inbox():
					if !ok {
						return
					}
					resp, isResp := env.Msg.(*msg.LearnResp)
					if !isResp {
						continue
					}
					for _, it := range resp.Items {
						if it.Instance != next {
							continue
						}
						for _, e := range it.Value.Batch {
							got = append(got, string(e.Data))
						}
						if it.Value.Skip {
							next = it.Value.SkipTo
						} else {
							next++
						}
					}
					if len(got) >= 15 {
						done <- got
						return
					}
					break drain
				case <-timeout:
					break drain
				}
			}
		}
	}()
	select {
	case got := <-done:
		want := tr.seq(1)
		for i := 0; i < 15; i++ {
			if got[i] != want[i] {
				t.Fatalf("catch-up mismatch at %d: %q vs %q", i, got[i], want[i])
			}
		}
	case <-time.After(10 * time.Second):
		t.Fatal("late learner did not catch up")
	}
}

func TestConfigValidation(t *testing.T) {
	ep := netsim.New().Endpoint("x")
	peers := []Peer{{ID: 1, Addr: "x", Roles: RoleAcceptor | RoleLearner}}
	cases := []struct {
		name string
		cfg  Config
	}{
		{"no peers", Config{Self: 1, Coordinator: 1}},
		{"self missing", Config{Self: 9, Coordinator: 1, Peers: peers}},
		{"coordinator missing", Config{Self: 1, Coordinator: 9, Peers: peers}},
		{"acceptor without log", Config{Self: 1, Coordinator: 1, Peers: peers}},
		{"coordinator not acceptor", Config{Self: 1, Coordinator: 1,
			Peers: []Peer{{ID: 1, Addr: "x", Roles: RoleLearner}}}},
		{"duplicate IDs", Config{Self: 1, Coordinator: 1,
			Peers: []Peer{{ID: 1, Addr: "x", Roles: RoleAcceptor}, {ID: 1, Addr: "y", Roles: RoleAcceptor}}}},
	}
	for _, tc := range cases {
		if _, err := New(tc.cfg, ep); err == nil {
			t.Errorf("%s: expected error", tc.name)
		}
	}
}

func TestRoleString(t *testing.T) {
	if (RoleProposer | RoleAcceptor | RoleLearner).String() != "PAL" {
		t.Fatal("PAL")
	}
	if Role(0).String() != "-" {
		t.Fatal("empty role")
	}
}

func TestBallotOwnership(t *testing.T) {
	for n := 1; n <= 5; n++ {
		for idx := 0; idx < n; idx++ {
			for round := 1; round < 4; round++ {
				b := ballotFor(round, idx, n)
				if coordIdxOf(b, n) != idx {
					t.Fatalf("ballot %d (n=%d): owner %d != %d", b, n, coordIdxOf(b, n), idx)
				}
			}
		}
	}
}

// TestAcceptorCrashMajorityContinues: a non-coordinator acceptor crashes;
// after the ring heals around it, the remaining majority keeps deciding.
func TestAcceptorCrashMajorityContinues(t *testing.T) {
	tr := newTestRing(t, 3, func(_ int, c *Config) {
		c.RetryTimeout = 30 * time.Millisecond
	})
	for k := 0; k < 5; k++ {
		if err := tr.procs[0].Propose([]byte(fmt.Sprintf("pre-%d", k))); err != nil {
			t.Fatal(err)
		}
	}
	tr.waitDelivered([]int{0, 1}, 5, 5*time.Second)

	// Node 2 (an acceptor, also the last acceptor for coordinator 0) dies.
	tr.crash(2)
	tr.procs[0].SetPeerDown(3, true)
	tr.procs[1].SetPeerDown(3, true)

	for k := 0; k < 5; k++ {
		if err := tr.procs[0].Propose([]byte(fmt.Sprintf("post-%d", k))); err != nil {
			t.Fatal(err)
		}
	}
	tr.waitDelivered([]int{0, 1}, 10, 10*time.Second)
	tr.assertPrefixAgreement([]int{0, 1})
}

// TestPartitionHeals: a transient partition between two ring members stalls
// decisions; when it heals, retries push everything through.
func TestPartitionHeals(t *testing.T) {
	tr := newTestRing(t, 3, func(_ int, c *Config) {
		c.RetryTimeout = 30 * time.Millisecond
	})
	// Cut the coordinator's outbound ring link.
	tr.net.BlockLink("node-0", "node-1", true)
	for k := 0; k < 5; k++ {
		if err := tr.procs[0].Propose([]byte(fmt.Sprintf("stalled-%d", k))); err != nil {
			t.Fatal(err)
		}
	}
	time.Sleep(100 * time.Millisecond)
	if n := len(tr.seq(1)); n != 0 {
		t.Fatalf("node 1 delivered %d during partition", n)
	}
	tr.net.BlockLink("node-0", "node-1", false)
	tr.waitDelivered([]int{0, 1, 2}, 5, 10*time.Second)
	tr.assertPrefixAgreement([]int{0, 1, 2})
}

// TestStatsCounters sanity-checks the process statistics used as the
// Figure 3 CPU proxy.
func TestStatsCounters(t *testing.T) {
	tr := newTestRing(t, 3, nil)
	for k := 0; k < 10; k++ {
		if err := tr.procs[0].Propose([]byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	tr.waitDelivered([]int{0, 1, 2}, 10, 5*time.Second)
	st := tr.procs[0].Stats()
	if st.Proposals.Load() != 10 {
		t.Fatalf("proposals = %d", st.Proposals.Load())
	}
	if st.Instances.Load() == 0 || st.Delivered.Load() == 0 {
		t.Fatalf("instances=%d delivered=%d", st.Instances.Load(), st.Delivered.Load())
	}
	if st.BytesOut.Load() == 0 || st.MsgsOut.Load() == 0 {
		t.Fatal("no outbound traffic recorded at coordinator")
	}
}

// TestPhase1WindowExtensionUnderLoad crosses many Phase 1 window
// boundaries while proposals are flowing; the coordinator must extend its
// promised window without stalling the ring.
func TestPhase1WindowExtensionUnderLoad(t *testing.T) {
	tr := newTestRing(t, 3, func(_ int, c *Config) {
		c.Phase1Window = 64 // force frequent extensions
		c.RetryTimeout = 50 * time.Millisecond
	})
	const total = 500
	for k := 0; k < total; k++ {
		if err := tr.procs[k%3].Propose([]byte(fmt.Sprintf("w-%03d", k))); err != nil {
			t.Fatal(err)
		}
	}
	tr.waitDelivered([]int{0, 1, 2}, total, 20*time.Second)
	tr.assertPrefixAgreement([]int{0, 1, 2})
}

// TestPhase1WindowExtensionWithSkips drives window churn with skip ranges
// (rate leveling consumes instance space much faster than proposals).
func TestPhase1WindowExtensionWithSkips(t *testing.T) {
	tr := newTestRing(t, 3, func(_ int, c *Config) {
		c.Phase1Window = 256
		c.SkipInterval = 2 * time.Millisecond
		c.SkipRate = 20000 // ~40+ skips per tick: a window lasts a few ticks
		c.RetryTimeout = 50 * time.Millisecond
	})
	deadline := time.Now().Add(10 * time.Second)
	sent := 0
	for time.Now().Before(deadline) && sent < 60 {
		if err := tr.procs[0].Propose([]byte(fmt.Sprintf("s-%02d", sent))); err != nil {
			t.Fatal(err)
		}
		sent++
		time.Sleep(10 * time.Millisecond)
	}
	tr.waitDelivered([]int{0, 1, 2}, 60, 20*time.Second)
	tr.assertPrefixAgreement([]int{0, 1, 2})
}
