package smr

import (
	"encoding/binary"
	"errors"
	"time"

	"mrp/internal/transport"
)

// SMR-level command batching: the client (the proposer of the paper's
// Section 6 deployment) packs several encoded Commands into ONE atomic
// multicast payload, so a single consensus instance orders and pays the
// per-instance cost — proposal circulation, stable-storage write, merge
// position — for N application commands. The replica unpacks the batch at
// delivery and applies each inner command through the ordinary per-client
// dedup window and reply routing, so exactly-once semantics and the
// determinism invariants are unchanged (docs/DETERMINISM.md, invariant 8:
// batch cut points are never observable in state).
//
// This is the third and highest batching layer, independent of the two
// below it: ring-level batching (ringpaxos.Config.BatchMaxBytes) groups
// several already-formed entries into one instance, and transport-level
// coalescing (transport.BatchPolicy) packs protocol messages into one
// network write. Command batching is the only one that reduces the number
// of entries — and with it the per-entry proposal/dedup overhead — rather
// than just the number of instances or packets.

// batchMagic marks a batch payload. The first eight bytes of a plain
// Command encoding are the ClientID, and client IDs must fit in 32 bits
// (ClientConfig.ID), so a first word with the high 32 bits set can never
// collide with a compliant command.
const batchMagic uint64 = 0xFFFFFFFF4D524231 // low word "MRB1"

// batchSeqBit is OR-ed into the proposal sequence number of a batch.
// Command sequence numbers are small counters, and the coordinator
// deduplicates proposals by (proposer, seq): the top bit keeps a batch's
// proposal identity disjoint from every inner command's own identity, so
// a later direct retry of an inner command is never mistaken for a
// duplicate of the batch that carried the original.
const batchSeqBit = uint64(1) << 63

// ErrBadBatch reports a malformed or non-canonical batch encoding,
// including the empty batch: a batch carries at least one command.
var ErrBadBatch = errors.New("smr: bad batch encoding")

// batchHeaderLen is the fixed prefix: magic (8) + command count (2).
const batchHeaderLen = 10

// EncodeBatch packs encoded commands (Command.Encode outputs) into one
// canonical batch payload: magic, u16 count, then each command
// length-prefixed with a u32. The encoding is strict — DecodeBatch accepts
// exactly the bytes EncodeBatch produces, and re-encoding the decoded
// commands reproduces the input byte for byte (the fuzz target pins this).
//
//mrp:deterministic
func EncodeBatch(payloads [][]byte) []byte {
	n := batchHeaderLen
	for _, p := range payloads {
		n += 4 + len(p)
	}
	buf := make([]byte, 0, n)
	buf = binary.BigEndian.AppendUint64(buf, batchMagic)
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(payloads)))
	for _, p := range payloads {
		buf = binary.BigEndian.AppendUint32(buf, uint32(len(p)))
		buf = append(buf, p...)
	}
	return buf
}

// IsBatch reports whether b carries the batch magic. A replica checks this
// before DecodeCommand; everything else is a single command (or a foreign
// payload on a shared ring).
func IsBatch(b []byte) bool {
	return len(b) >= 8 && binary.BigEndian.Uint64(b) == batchMagic
}

// DecodeBatch parses a batch payload. The decode is strict: the count must
// be at least one (zero-command batches are rejected), every inner payload
// must be a well-formed Command, and no trailing bytes may follow the last
// command — anything non-canonical is ErrBadBatch, so a batch accepted
// here re-encodes to the identical byte string.
//
//mrp:deterministic
func DecodeBatch(b []byte) ([]Command, error) {
	return decodeBatchInto(nil, b, nil)
}

// decodeBatchInto is DecodeBatch appending into dst (which may be a reused
// scratch slice) and interning reply addresses through intern when
// non-nil; the replica's delivery path passes both so a steady-state batch
// decode allocates nothing. On error dst's contents are unspecified.
//
//mrp:deterministic
func decodeBatchInto(dst []Command, b []byte, intern func([]byte) transport.Addr) ([]Command, error) {
	if len(b) < batchHeaderLen || binary.BigEndian.Uint64(b) != batchMagic {
		return nil, ErrBadBatch
	}
	count := int(binary.BigEndian.Uint16(b[8:]))
	if count == 0 {
		return nil, ErrBadBatch
	}
	if dst == nil {
		dst = make([]Command, 0, count) //mrp:alloc — first delivery only: the scratch is handed back to the caller and reused by every later batch
	}
	off := batchHeaderLen
	for i := 0; i < count; i++ {
		if len(b)-off < 4 {
			return nil, ErrBadBatch
		}
		clen := int(binary.BigEndian.Uint32(b[off:]))
		off += 4
		if len(b)-off < clen {
			return nil, ErrBadBatch
		}
		cmd, err := decodeCommandWith(b[off:off+clen], intern)
		if err != nil {
			return nil, ErrBadBatch
		}
		dst = append(dst, cmd)
		off += clen
	}
	if off != len(b) {
		return nil, ErrBadBatch
	}
	return dst, nil
}

// BatchPolicy controls SMR-level command batching on the client. The zero
// value enables batching with the defaults; set Disabled to opt out, which
// preserves the unbatched wire behavior byte for byte (every command is
// its own proposal, exactly as before batching existed).
//
// The batcher never delays a lone command: with MaxDelay zero a batch is
// exactly the backlog present when the batching loop dequeues (the same
// contract as transport.BatchPolicy's write coalescing), and a batch of
// one is sent as a plain unwrapped command. Batches therefore form only
// under concurrent load, where the amortization is worth having.
type BatchPolicy struct {
	// Disabled turns command batching off entirely.
	Disabled bool
	// MaxCmds caps the commands per batch (default 64; hard cap 65535,
	// the width of the codec's count field).
	MaxCmds int
	// MaxBytes caps the summed command bytes per batch (default 64 KB).
	MaxBytes int
	// MaxDelay is how long the batcher may hold the first command of a
	// batch waiting for more (default 0: never wait, drain the backlog
	// only). Raising it trades first-command latency for larger batches
	// at moderate load.
	MaxDelay time.Duration
}

// WithDefaults fills unset fields.
func (p BatchPolicy) WithDefaults() BatchPolicy {
	if p.MaxCmds <= 0 {
		p.MaxCmds = 64
	}
	if p.MaxCmds > 65535 {
		p.MaxCmds = 65535
	}
	if p.MaxBytes <= 0 {
		p.MaxBytes = 64 << 10
	}
	return p
}
