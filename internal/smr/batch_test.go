package smr

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"mrp/internal/msg"
	"mrp/internal/netsim"
	"mrp/internal/transport"
)

func TestBatchCodecRoundTrip(t *testing.T) {
	var payloads [][]byte
	var want []Command
	for i := uint64(1); i <= 5; i++ {
		c := Command{ClientID: 100 + i, Seq: i, ReplyTo: transport.Addr(fmt.Sprintf("cl-%d", i)), Op: []byte(fmt.Sprintf("op-%d", i))}
		payloads = append(payloads, c.Encode())
		want = append(want, c)
	}
	enc := EncodeBatch(payloads)
	if !IsBatch(enc) {
		t.Fatal("encoded batch not recognized")
	}
	got, err := DecodeBatch(enc)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("decoded %d commands, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i].ClientID != want[i].ClientID || got[i].Seq != want[i].Seq ||
			got[i].ReplyTo != want[i].ReplyTo || !bytes.Equal(got[i].Op, want[i].Op) {
			t.Fatalf("command %d = %+v, want %+v", i, got[i], want[i])
		}
	}
	// Canonical: re-encoding the decoded commands reproduces the input.
	re := make([][]byte, len(got))
	for i, c := range got {
		re[i] = c.Encode()
	}
	if !bytes.Equal(EncodeBatch(re), enc) {
		t.Fatal("re-encode diverged from the original batch bytes")
	}
}

func TestBatchDecodeRejects(t *testing.T) {
	one := Command{ClientID: 1, Seq: 1, Op: []byte("x")}.Encode()
	valid := EncodeBatch([][]byte{one})
	cases := map[string][]byte{
		"nil":              nil,
		"short":            valid[:9],
		"zero commands":    EncodeBatch(nil),
		"trailing bytes":   append(append([]byte{}, valid...), 0),
		"truncated inner":  valid[:len(valid)-1],
		"bad inner":        EncodeBatch([][]byte{{1, 2, 3}}),
		"not a batch":      one,
		"count overstated": func() []byte { b := append([]byte{}, valid...); b[9] = 2; return b }(),
	}
	for name, b := range cases {
		if _, err := DecodeBatch(b); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	// A single command is not a batch: the replica must route it through
	// DecodeCommand unchanged.
	if IsBatch(one) {
		t.Fatal("plain command misdetected as batch")
	}
}

// TestBatchOptOutWireEquivalence pins the opt-out contract: with batching
// disabled — and equally for a batch of one on the enabled drain-style
// path — the proposal hitting the wire is byte-for-byte the classic
// unbatched one: the command's own (proposer, seq) identity and its plain
// Command encoding, no wrapper.
func TestBatchOptOutWireEquivalence(t *testing.T) {
	for _, disabled := range []bool{true, false} {
		name := "enabled-single"
		if disabled {
			name = "disabled"
		}
		t.Run(name, func(t *testing.T) {
			net := netsim.New()
			defer net.Close()
			prop := net.Endpoint("proposer")
			cl := NewClient(ClientConfig{
				ID:        42,
				Endpoint:  net.Endpoint("client"),
				Proposers: map[msg.RingID][]transport.Addr{1: {prop.Addr()}},
				Timeout:   300 * time.Millisecond,
				Batch:     BatchPolicy{Disabled: disabled},
			})
			defer cl.Close()
			go cl.Execute(1, []byte("payload")) //nolint // times out: nobody replies
			select {
			case env := <-prop.Inbox():
				p, ok := env.Msg.(*msg.Proposal)
				if !ok {
					t.Fatalf("got %T, want *msg.Proposal", env.Msg)
				}
				wantCmd := Command{ClientID: 42, Seq: 1, ReplyTo: "client", Op: []byte("payload")}
				if !bytes.Equal(p.Payload, wantCmd.Encode()) {
					t.Fatalf("payload diverged from the unbatched encoding:\n got %x\nwant %x", p.Payload, wantCmd.Encode())
				}
				if p.ProposerID != 42 || p.Seq != 1 || p.Ring != 1 {
					t.Fatalf("proposal identity = (%d, %d) ring %d, want (42, 1) ring 1", p.ProposerID, p.Seq, p.Ring)
				}
				if IsBatch(p.Payload) {
					t.Fatal("lone command was wrapped in a batch")
				}
			case <-time.After(2 * time.Second):
				t.Fatal("no proposal reached the proposer")
			}
		})
	}
}

// TestBatcherAggregatesConcurrentCommands proves batches actually form: a
// stalled proposer lets a backlog accumulate, and the drained backlog must
// arrive as one batch proposal under the client's batch identity.
func TestBatcherAggregatesConcurrentCommands(t *testing.T) {
	net := netsim.New()
	defer net.Close()
	prop := net.Endpoint("proposer")
	cl := NewClient(ClientConfig{
		ID:        7,
		Endpoint:  net.Endpoint("client"),
		Proposers: map[msg.RingID][]transport.Addr{1: {prop.Addr()}},
		Timeout:   time.Second,
		// MaxDelay gives the concurrent submitters below a window to pile
		// up before the first flush.
		Batch: BatchPolicy{MaxDelay: 50 * time.Millisecond},
	})
	defer cl.Close()
	const n = 8
	for i := 0; i < n; i++ {
		go cl.Execute(1, []byte(fmt.Sprintf("op-%d", i))) //nolint // times out: nobody replies
	}
	deadline := time.After(2 * time.Second)
	got, batched := 0, 0
	for got < n {
		select {
		case env := <-prop.Inbox():
			p, ok := env.Msg.(*msg.Proposal)
			if !ok {
				continue
			}
			if !IsBatch(p.Payload) {
				got++ // a straggler that missed the batch window
				continue
			}
			if p.Seq&batchSeqBit == 0 {
				t.Fatalf("batch proposal seq %#x lacks the batch identity bit", p.Seq)
			}
			cmds, err := DecodeBatch(p.Payload)
			if err != nil {
				t.Fatal(err)
			}
			got += len(cmds)
			batched += len(cmds)
		case <-deadline:
			t.Fatalf("saw %d of %d commands before the deadline", got, n)
		}
	}
	if batched < 2 {
		t.Fatalf("no aggregation: %d of %d commands rode batches", batched, n)
	}
}
