package smr

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"mrp/internal/msg"
	"mrp/internal/transport"
)

// ClientConfig parametrizes a client.
type ClientConfig struct {
	// ID must be unique across all clients and ring nodes (it doubles as
	// the proposer identity for coordinator-side deduplication, so IDs
	// must fit in 32 bits).
	ID uint64
	// Endpoint receives replica responses (the paper uses UDP here).
	Endpoint transport.Endpoint
	// Proposers lists, per ring, the addresses of ring members accepting
	// proposals. Requests are submitted to one of them and failed over to
	// the next on timeout.
	Proposers map[msg.RingID][]transport.Addr
	// RetryTimeout is how long to wait for a response before retrying
	// (default 100 ms).
	RetryTimeout time.Duration
	// Timeout bounds one Execute end to end (default 15 s).
	Timeout time.Duration
	// Batch controls SMR-level command batching (see BatchPolicy): the
	// zero value batches with defaults, Disabled opts out. First sends go
	// through the per-ring batcher; retries always go direct under the
	// command's own proposal identity, so the retry path is identical to
	// the unbatched one.
	Batch BatchPolicy
}

// ErrTimeout reports that a command did not complete within the deadline.
var ErrTimeout = errors.New("smr: request timed out")

// Client submits commands to a replicated service and waits for replica
// responses: the first response for single-partition commands, one
// response per partition for multi-partition commands such as range scans
// (paper Section 7.2).
type Client struct {
	cfg ClientConfig

	mu           sync.Mutex
	seq          uint64
	batchSeq     uint64
	leaseSeq     uint64
	pending      map[uint64]chan *msg.Response
	leasePending map[uint64]chan *msg.LeaseReply
	cursor       map[msg.RingID]int
	batchers     map[msg.RingID]*ringBatcher
	closed       bool

	batchWG  sync.WaitGroup
	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
}

// ringBatcher queues one ring's outgoing commands for the batching loop.
type ringBatcher struct {
	ring msg.RingID
	ch   chan batchCmd
}

// batchCmd is one encoded command awaiting batching, with the sequence
// number that identifies it when it is flushed alone.
type batchCmd struct {
	seq     uint64
	payload []byte
}

// batcherBuf bounds a ring batcher's queue; an enqueue finding it full
// falls back to a direct send instead of blocking the caller.
const batcherBuf = 1024

// NewClient creates and starts a client.
func NewClient(cfg ClientConfig) *Client {
	if cfg.RetryTimeout <= 0 {
		cfg.RetryTimeout = 100 * time.Millisecond
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 15 * time.Second
	}
	cfg.Batch = cfg.Batch.WithDefaults()
	c := &Client{
		cfg:          cfg,
		pending:      make(map[uint64]chan *msg.Response),
		leasePending: make(map[uint64]chan *msg.LeaseReply),
		cursor:       make(map[msg.RingID]int),
		batchers:     make(map[msg.RingID]*ringBatcher),
		stop:         make(chan struct{}),
		done:         make(chan struct{}),
	}
	go c.readLoop()
	return c
}

// Close shuts the client down.
func (c *Client) Close() {
	c.stopOnce.Do(func() {
		c.mu.Lock()
		c.closed = true
		c.mu.Unlock()
		close(c.stop)
	})
	<-c.done
	c.batchWG.Wait()
}

func (c *Client) readLoop() {
	defer close(c.done)
	inbox := c.cfg.Endpoint.Inbox()
	for {
		select {
		case env, ok := <-inbox:
			if !ok {
				return
			}
			switch resp := env.Msg.(type) {
			case *msg.Response:
				if resp.ClientID != c.cfg.ID {
					continue
				}
				c.mu.Lock()
				ch := c.pending[resp.Seq]
				c.mu.Unlock()
				if ch != nil {
					select {
					case ch <- resp:
					default: // gather buffer full: extra duplicate, drop
					}
				}
			case *msg.LeaseReply:
				if resp.ClientID != c.cfg.ID {
					continue
				}
				c.mu.Lock()
				ch := c.leasePending[resp.Seq]
				c.mu.Unlock()
				if ch != nil {
					select {
					case ch <- resp:
					default: // late duplicate, drop
					}
				}
			}
		case <-c.stop:
			return
		}
	}
}

// SetProposers installs (or replaces) the proposer addresses of a ring at
// runtime. Elastic rebalancing adds rings while clients are live; a client
// refreshing its schema view uses this to learn the routes of partitions
// that did not exist when it was created.
func (c *Client) SetProposers(ring msg.RingID, addrs []transport.Addr) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.cfg.Proposers == nil {
		c.cfg.Proposers = make(map[msg.RingID][]transport.Addr)
	}
	c.cfg.Proposers[ring] = append([]transport.Addr(nil), addrs...)
}

// proposerFor returns the ring's current proposer. Clients stick to one
// proposer (like the paper's Thrift connections) and fail over to the next
// only when a request times out (rotate=true), so a crashed proposer stops
// receiving traffic after one retry interval.
func (c *Client) proposerFor(ring msg.RingID, rotate bool) (transport.Addr, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	addrs := c.cfg.Proposers[ring]
	if len(addrs) == 0 {
		return "", fmt.Errorf("smr: no proposers for ring %d", ring)
	}
	if rotate {
		c.cursor[ring]++
	}
	return addrs[c.cursor[ring]%len(addrs)], nil
}

// Execute multicasts op to the group (ring) and returns the first replica
// response (single-partition command).
//
//mrp:ordered
func (c *Client) Execute(ring msg.RingID, op []byte) ([]byte, error) {
	results, err := c.execute(ring, op, 1, nil)
	if err != nil {
		return nil, err
	}
	for _, r := range results {
		return r, nil
	}
	return nil, ErrTimeout
}

// ExecuteGather multicasts op and collects responses until classify has
// produced `want` distinct classes (e.g. one response per partition for a
// scan). classify returns the class of a result and whether it counts.
//
//mrp:ordered
func (c *Client) ExecuteGather(ring msg.RingID, op []byte, want int, classify func([]byte) (int, bool)) (map[int][]byte, error) {
	return c.execute(ring, op, want, classify)
}

// ID returns the client's unique identity (the ClientID its ordered
// commands carry).
func (c *Client) ID() uint64 { return c.cfg.ID }

// Reserve allocates the next command sequence number without submitting
// anything. A caller that must retry the SAME logical command — a
// cross-partition transaction whose first attempt timed out ambiguously —
// resubmits under the reserved number, and the replicas' per-client dedup
// bitmaps make the re-execution idempotent.
func (c *Client) Reserve() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.seq++
	return c.seq
}

// ExecuteGatherAt multicasts op under a previously Reserved sequence
// number to EVERY listed ring — the multi-ring proposal of a cross-
// partition command (paper Section 3): each participant's learner merges
// the ring it subscribes to, so one submission is delivered, in the same
// relative order, at every replica of every participant. Responses are
// gathered like ExecuteGather. Calling it again with the same seq (and
// the same op) is the ambiguous-timeout retry path; replicas that already
// executed the command answer from their dedup cache.
//
//mrp:ordered
func (c *Client) ExecuteGatherAt(seq uint64, rings []msg.RingID, op []byte, want int, classify func([]byte) (int, bool)) (map[int][]byte, error) {
	return c.executeAt(seq, rings, op, want, classify)
}

// LeaseRead asks the replica at addr to serve a read-only op from its
// applied state without ordering it (consensus-free local read; see
// lease.go). It returns served=false — with no error — when the replica
// declined (no active lease, frontier behind the grant, queue full) or no
// reply arrived within timeout; the caller is expected to fall back to
// the ordered path. A lease read is fire-once: there is no retry loop,
// because the fallback IS the retry.
func (c *Client) LeaseRead(addr transport.Addr, op []byte, timeout time.Duration) (result []byte, served bool, err error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, false, transport.ErrClosed
	}
	c.leaseSeq++
	seq := c.leaseSeq
	ch := make(chan *msg.LeaseReply, 1)
	c.leasePending[seq] = ch
	c.mu.Unlock()
	defer func() {
		c.mu.Lock()
		delete(c.leasePending, seq)
		c.mu.Unlock()
	}()
	if err := c.cfg.Endpoint.Send(addr, &msg.LeaseRead{
		ClientID: c.cfg.ID, Seq: seq, Op: op,
	}); err != nil {
		return nil, false, err
	}
	deadline := time.NewTimer(timeout)
	defer deadline.Stop()
	select {
	case reply := <-ch:
		if !reply.OK {
			return nil, false, nil
		}
		return reply.Result, true, nil
	case <-deadline.C:
		return nil, false, nil
	case <-c.stop:
		return nil, false, transport.ErrClosed
	}
}

// enqueueBatch hands one encoded command to the ring's batcher, starting
// the batching loop on first use. A full queue falls back to a direct
// send: backpressure degrades to the unbatched path instead of blocking
// the caller or growing without bound.
func (c *Client) enqueueBatch(ring msg.RingID, seq uint64, payload []byte) error {
	// Fail fast when the ring has no route, like the direct path does.
	addr, err := c.proposerFor(ring, false)
	if err != nil {
		return err
	}
	c.mu.Lock()
	b := c.batchers[ring]
	if b == nil {
		b = &ringBatcher{ring: ring, ch: make(chan batchCmd, batcherBuf)}
		c.batchers[ring] = b
		c.batchWG.Add(1)
		go c.runBatcher(b)
	}
	c.mu.Unlock()
	select {
	case b.ch <- batchCmd{seq: seq, payload: payload}:
		return nil
	default:
		return c.cfg.Endpoint.Send(addr, &msg.Proposal{
			Ring:       ring,
			ProposerID: msg.NodeID(c.cfg.ID),
			Seq:        seq,
			Payload:    payload,
		})
	}
}

// runBatcher is one ring's batching loop. With MaxDelay zero it never
// waits: a batch is exactly the backlog present once the first command is
// dequeued, so a lone synchronous caller sees no added latency and batches
// form only under concurrent load. With MaxDelay set, the first command of
// a batch may be held that long waiting for company.
func (c *Client) runBatcher(b *ringBatcher) {
	defer c.batchWG.Done()
	pol := c.cfg.Batch
	for {
		var first batchCmd
		select {
		case first = <-b.ch:
		case <-c.stop:
			return
		}
		cmds := []batchCmd{first}
		size := len(first.payload)
		var timer *time.Timer
		var delay <-chan time.Time
		if pol.MaxDelay > 0 {
			timer = time.NewTimer(pol.MaxDelay)
			delay = timer.C
		}
	fill:
		for len(cmds) < pol.MaxCmds && size < pol.MaxBytes {
			if delay == nil {
				select {
				case cmd := <-b.ch:
					cmds = append(cmds, cmd)
					size += len(cmd.payload)
				default:
					break fill
				}
				continue
			}
			select {
			case cmd := <-b.ch:
				cmds = append(cmds, cmd)
				size += len(cmd.payload)
			case <-delay:
				break fill
			case <-c.stop:
				return
			}
		}
		if timer != nil {
			timer.Stop()
		}
		c.flushBatch(b.ring, cmds)
	}
}

// flushBatch proposes one formed batch. A batch of one is sent exactly as
// the unbatched path would send it — same proposal identity, same payload
// bytes — so batching degenerates to the status quo at low concurrency. A
// real batch is proposed under the client's batch identity (batchSeqBit);
// send errors are left to the per-command retry tickers, which re-send
// direct and surface the error to the caller.
func (c *Client) flushBatch(ring msg.RingID, cmds []batchCmd) {
	addr, err := c.proposerFor(ring, false)
	if err != nil {
		return
	}
	if len(cmds) == 1 {
		_ = c.cfg.Endpoint.Send(addr, &msg.Proposal{
			Ring:       ring,
			ProposerID: msg.NodeID(c.cfg.ID),
			Seq:        cmds[0].seq,
			Payload:    cmds[0].payload,
		})
		return
	}
	payloads := make([][]byte, len(cmds))
	for i, cmd := range cmds {
		payloads[i] = cmd.payload
	}
	c.mu.Lock()
	c.batchSeq++
	bseq := batchSeqBit | c.batchSeq
	c.mu.Unlock()
	_ = c.cfg.Endpoint.Send(addr, &msg.Proposal{
		Ring:       ring,
		ProposerID: msg.NodeID(c.cfg.ID),
		Seq:        bseq,
		Payload:    EncodeBatch(payloads),
	})
}

func (c *Client) execute(ring msg.RingID, op []byte, want int, classify func([]byte) (int, bool)) (map[int][]byte, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, transport.ErrClosed
	}
	c.seq++
	seq := c.seq
	c.mu.Unlock()
	return c.executeAt(seq, []msg.RingID{ring}, op, want, classify)
}

func (c *Client) executeAt(seq uint64, rings []msg.RingID, op []byte, want int, classify func([]byte) (int, bool)) (map[int][]byte, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, transport.ErrClosed
	}
	ch := make(chan *msg.Response, want+8)
	c.pending[seq] = ch
	c.mu.Unlock()
	defer func() {
		c.mu.Lock()
		delete(c.pending, seq)
		c.mu.Unlock()
	}()

	cmd := Command{ClientID: c.cfg.ID, Seq: seq, ReplyTo: c.cfg.Endpoint.Addr(), Op: op}
	payload := cmd.Encode()
	send := func(rotate bool) error {
		for _, ring := range rings {
			// First sends ride the ring's batcher; retries (rotate) go
			// direct under the command's own identity, exactly as an
			// unbatched client would, so the coordinator's (proposer, seq)
			// dedup still absorbs retransmissions of the original.
			if !rotate && !c.cfg.Batch.Disabled {
				if err := c.enqueueBatch(ring, seq, payload); err != nil {
					return err
				}
				continue
			}
			addr, err := c.proposerFor(ring, rotate)
			if err != nil {
				return err
			}
			if err := c.cfg.Endpoint.Send(addr, &msg.Proposal{
				Ring:       ring,
				ProposerID: msg.NodeID(c.cfg.ID),
				Seq:        seq,
				Payload:    payload,
			}); err != nil {
				return err
			}
		}
		return nil
	}
	if err := send(false); err != nil {
		return nil, err
	}

	results := make(map[int][]byte, want)
	deadline := time.NewTimer(c.cfg.Timeout)
	defer deadline.Stop()
	retry := time.NewTicker(c.cfg.RetryTimeout)
	defer retry.Stop()
	for {
		select {
		case resp := <-ch:
			if classify == nil {
				results[0] = resp.Result
				return results, nil
			}
			class, ok := classify(resp.Result)
			if !ok {
				continue
			}
			if _, dup := results[class]; !dup {
				results[class] = resp.Result
				if len(results) >= want {
					return results, nil
				}
			}
		case <-retry.C:
			if err := send(true); err != nil {
				return nil, err
			}
		case <-deadline.C:
			return nil, ErrTimeout
		case <-c.stop:
			return nil, transport.ErrClosed
		}
	}
}
