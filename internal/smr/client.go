package smr

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"mrp/internal/msg"
	"mrp/internal/transport"
)

// ClientConfig parametrizes a client.
type ClientConfig struct {
	// ID must be unique across all clients and ring nodes (it doubles as
	// the proposer identity for coordinator-side deduplication, so IDs
	// must fit in 32 bits).
	ID uint64
	// Endpoint receives replica responses (the paper uses UDP here).
	Endpoint transport.Endpoint
	// Proposers lists, per ring, the addresses of ring members accepting
	// proposals. Requests are submitted to one of them and failed over to
	// the next on timeout.
	Proposers map[msg.RingID][]transport.Addr
	// RetryTimeout is how long to wait for a response before retrying
	// (default 100 ms).
	RetryTimeout time.Duration
	// Timeout bounds one Execute end to end (default 15 s).
	Timeout time.Duration
}

// ErrTimeout reports that a command did not complete within the deadline.
var ErrTimeout = errors.New("smr: request timed out")

// Client submits commands to a replicated service and waits for replica
// responses: the first response for single-partition commands, one
// response per partition for multi-partition commands such as range scans
// (paper Section 7.2).
type Client struct {
	cfg ClientConfig

	mu      sync.Mutex
	seq     uint64
	pending map[uint64]chan *msg.Response
	cursor  map[msg.RingID]int
	closed  bool

	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
}

// NewClient creates and starts a client.
func NewClient(cfg ClientConfig) *Client {
	if cfg.RetryTimeout <= 0 {
		cfg.RetryTimeout = 100 * time.Millisecond
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 15 * time.Second
	}
	c := &Client{
		cfg:     cfg,
		pending: make(map[uint64]chan *msg.Response),
		cursor:  make(map[msg.RingID]int),
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
	}
	go c.readLoop()
	return c
}

// Close shuts the client down.
func (c *Client) Close() {
	c.stopOnce.Do(func() {
		c.mu.Lock()
		c.closed = true
		c.mu.Unlock()
		close(c.stop)
	})
	<-c.done
}

func (c *Client) readLoop() {
	defer close(c.done)
	inbox := c.cfg.Endpoint.Inbox()
	for {
		select {
		case env, ok := <-inbox:
			if !ok {
				return
			}
			resp, isResp := env.Msg.(*msg.Response)
			if !isResp || resp.ClientID != c.cfg.ID {
				continue
			}
			c.mu.Lock()
			ch := c.pending[resp.Seq]
			c.mu.Unlock()
			if ch != nil {
				select {
				case ch <- resp:
				default: // gather buffer full: extra duplicate, drop
				}
			}
		case <-c.stop:
			return
		}
	}
}

// SetProposers installs (or replaces) the proposer addresses of a ring at
// runtime. Elastic rebalancing adds rings while clients are live; a client
// refreshing its schema view uses this to learn the routes of partitions
// that did not exist when it was created.
func (c *Client) SetProposers(ring msg.RingID, addrs []transport.Addr) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.cfg.Proposers == nil {
		c.cfg.Proposers = make(map[msg.RingID][]transport.Addr)
	}
	c.cfg.Proposers[ring] = append([]transport.Addr(nil), addrs...)
}

// proposerFor returns the ring's current proposer. Clients stick to one
// proposer (like the paper's Thrift connections) and fail over to the next
// only when a request times out (rotate=true), so a crashed proposer stops
// receiving traffic after one retry interval.
func (c *Client) proposerFor(ring msg.RingID, rotate bool) (transport.Addr, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	addrs := c.cfg.Proposers[ring]
	if len(addrs) == 0 {
		return "", fmt.Errorf("smr: no proposers for ring %d", ring)
	}
	if rotate {
		c.cursor[ring]++
	}
	return addrs[c.cursor[ring]%len(addrs)], nil
}

// Execute multicasts op to the group (ring) and returns the first replica
// response (single-partition command).
//
//mrp:ordered
func (c *Client) Execute(ring msg.RingID, op []byte) ([]byte, error) {
	results, err := c.execute(ring, op, 1, nil)
	if err != nil {
		return nil, err
	}
	for _, r := range results {
		return r, nil
	}
	return nil, ErrTimeout
}

// ExecuteGather multicasts op and collects responses until classify has
// produced `want` distinct classes (e.g. one response per partition for a
// scan). classify returns the class of a result and whether it counts.
//
//mrp:ordered
func (c *Client) ExecuteGather(ring msg.RingID, op []byte, want int, classify func([]byte) (int, bool)) (map[int][]byte, error) {
	return c.execute(ring, op, want, classify)
}

// ID returns the client's unique identity (the ClientID its ordered
// commands carry).
func (c *Client) ID() uint64 { return c.cfg.ID }

// Reserve allocates the next command sequence number without submitting
// anything. A caller that must retry the SAME logical command — a
// cross-partition transaction whose first attempt timed out ambiguously —
// resubmits under the reserved number, and the replicas' per-client dedup
// bitmaps make the re-execution idempotent.
func (c *Client) Reserve() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.seq++
	return c.seq
}

// ExecuteGatherAt multicasts op under a previously Reserved sequence
// number to EVERY listed ring — the multi-ring proposal of a cross-
// partition command (paper Section 3): each participant's learner merges
// the ring it subscribes to, so one submission is delivered, in the same
// relative order, at every replica of every participant. Responses are
// gathered like ExecuteGather. Calling it again with the same seq (and
// the same op) is the ambiguous-timeout retry path; replicas that already
// executed the command answer from their dedup cache.
//
//mrp:ordered
func (c *Client) ExecuteGatherAt(seq uint64, rings []msg.RingID, op []byte, want int, classify func([]byte) (int, bool)) (map[int][]byte, error) {
	return c.executeAt(seq, rings, op, want, classify)
}

func (c *Client) execute(ring msg.RingID, op []byte, want int, classify func([]byte) (int, bool)) (map[int][]byte, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, transport.ErrClosed
	}
	c.seq++
	seq := c.seq
	c.mu.Unlock()
	return c.executeAt(seq, []msg.RingID{ring}, op, want, classify)
}

func (c *Client) executeAt(seq uint64, rings []msg.RingID, op []byte, want int, classify func([]byte) (int, bool)) (map[int][]byte, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, transport.ErrClosed
	}
	ch := make(chan *msg.Response, want+8)
	c.pending[seq] = ch
	c.mu.Unlock()
	defer func() {
		c.mu.Lock()
		delete(c.pending, seq)
		c.mu.Unlock()
	}()

	cmd := Command{ClientID: c.cfg.ID, Seq: seq, ReplyTo: c.cfg.Endpoint.Addr(), Op: op}
	payload := cmd.Encode()
	send := func(rotate bool) error {
		for _, ring := range rings {
			addr, err := c.proposerFor(ring, rotate)
			if err != nil {
				return err
			}
			if err := c.cfg.Endpoint.Send(addr, &msg.Proposal{
				Ring:       ring,
				ProposerID: msg.NodeID(c.cfg.ID),
				Seq:        seq,
				Payload:    payload,
			}); err != nil {
				return err
			}
		}
		return nil
	}
	if err := send(false); err != nil {
		return nil, err
	}

	results := make(map[int][]byte, want)
	deadline := time.NewTimer(c.cfg.Timeout)
	defer deadline.Stop()
	retry := time.NewTicker(c.cfg.RetryTimeout)
	defer retry.Stop()
	for {
		select {
		case resp := <-ch:
			if classify == nil {
				results[0] = resp.Result
				return results, nil
			}
			class, ok := classify(resp.Result)
			if !ok {
				continue
			}
			if _, dup := results[class]; !dup {
				results[class] = resp.Result
				if len(results) >= want {
					return results, nil
				}
			}
		case <-retry.C:
			if err := send(true); err != nil {
				return nil, err
			}
		case <-deadline.C:
			return nil, ErrTimeout
		case <-c.stop:
			return nil, transport.ErrClosed
		}
	}
}
