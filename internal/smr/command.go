// Package smr implements state-machine replication on top of Multi-Ring
// Paxos atomic multicast, the pattern both MRP-Store and dLog use (paper
// Sections 6 and 7): clients submit commands to proposers of the ring
// owning the addressed partition; replicas are learners that execute the
// delivered commands in the deterministic merge order and reply directly
// to the client, which keeps the first response.
package smr

import (
	"encoding/binary"
	"errors"

	"mrp/internal/transport"
)

// Command is the unit clients multicast: an operation plus the identity
// needed for exactly-once execution ((ClientID, Seq) deduplication at the
// replicas) and for routing the response back (ReplyTo; the paper's
// replicas reply over UDP).
type Command struct {
	ClientID uint64
	Seq      uint64
	ReplyTo  transport.Addr
	Op       []byte
}

// ErrBadCommand reports a malformed command encoding.
var ErrBadCommand = errors.New("smr: bad command encoding")

// Encode serializes the command into an atomic multicast payload.
func (c Command) Encode() []byte {
	buf := make([]byte, 0, 8+8+2+len(c.ReplyTo)+len(c.Op))
	buf = binary.BigEndian.AppendUint64(buf, c.ClientID)
	buf = binary.BigEndian.AppendUint64(buf, c.Seq)
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(c.ReplyTo)))
	buf = append(buf, c.ReplyTo...)
	buf = append(buf, c.Op...)
	return buf
}

// DecodeCommand parses a payload produced by Encode.
func DecodeCommand(b []byte) (Command, error) {
	return decodeCommandWith(b, nil)
}

// decodeCommandWith parses a payload, materializing the ReplyTo string
// through intern when non-nil. Every delivered command pays a []byte →
// string conversion for its reply address otherwise; the replica's hot
// path passes its address cache so steady-state decoding allocates
// nothing (clients reuse one address across their whole session).
func decodeCommandWith(b []byte, intern func([]byte) transport.Addr) (Command, error) {
	if len(b) < 18 {
		return Command{}, ErrBadCommand
	}
	c := Command{
		ClientID: binary.BigEndian.Uint64(b),
		Seq:      binary.BigEndian.Uint64(b[8:]),
	}
	alen := int(binary.BigEndian.Uint16(b[16:]))
	if len(b) < 18+alen {
		return Command{}, ErrBadCommand
	}
	raw := b[18 : 18+alen]
	if intern != nil {
		c.ReplyTo = intern(raw)
	} else {
		c.ReplyTo = transport.Addr(raw) //mrp:alloc — internless callers (tests, tools) own the copy; the replica's delivery path always passes intern
	}
	c.Op = b[18+alen:]
	return c, nil
}
