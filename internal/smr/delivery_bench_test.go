package smr

import (
	"encoding/binary"
	"testing"

	"mrp/internal/msg"
	"mrp/internal/multiring"
	"mrp/internal/transport"
)

// Allocation benchmarks for the steady-state delivery path: what one
// delivered entry costs in Replica.apply once the system is warm (dedup
// entry exists, lease inactive, no checkpoint due). Run with -benchmem;
// docs/ARCHITECTURE.md records the before/after of the allocation sweep.

// benchNullEndpoint discards sends: the benchmark measures the apply path,
// not the transport.
type benchNullEndpoint struct{}

func (benchNullEndpoint) Addr() transport.Addr                   { return "bench-null" }
func (benchNullEndpoint) Send(transport.Addr, msg.Message) error { return nil }
func (benchNullEndpoint) Inbox() <-chan transport.Envelope       { return nil }
func (benchNullEndpoint) Close() error                           { return nil }

// benchSM executes without allocating.
type benchSM struct{}

func (benchSM) Execute(op []byte) []byte { return op }
func (benchSM) Snapshot() []byte         { return nil }
func (benchSM) Restore([]byte)           {}

func newBenchReplica() *Replica {
	return NewReplica(ReplicaConfig{
		Node: multiring.NewNode(1, benchNullEndpoint{}),
		SM:   benchSM{},
	})
}

// benchPayload encodes one command whose Seq field (offset 8) the loop
// patches in place, so every delivery is a fresh, non-duplicate command
// without re-encoding.
func benchPayload() []byte {
	return Command{ClientID: 7, Seq: 0, ReplyTo: "bench-client", Op: []byte("op-payload")}.Encode()
}

// BenchmarkApplySingle is one single-command delivery per op: decode,
// dedup, execute, reply.
func BenchmarkApplySingle(b *testing.B) {
	r := newBenchReplica()
	payload := benchPayload()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		binary.BigEndian.PutUint64(payload[8:], uint64(i+1))
		r.apply(multiring.Delivery{
			Ring:          1,
			Instance:      msg.Instance(i + 1),
			Entry:         msg.Entry{Data: payload},
			EndOfInstance: true,
		})
	}
}

// TestApplyAllocationPin pins the steady-state delivery cost: after the
// response-arena pass a warm single-command delivery performs zero heap
// allocations and at most 48 amortized bytes per op (the arena slab and
// the occasional cmdScratch growth, spread over their lifetimes).
// Re-introducing a per-reply allocation — e.g. a fresh &msg.Response in
// applyCommand — fails this test AND is flagged by mrp-lint's hotalloc.
func TestApplyAllocationPin(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark-backed pin")
	}
	res := testing.Benchmark(func(b *testing.B) {
		r := newBenchReplica()
		payload := benchPayload()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			binary.BigEndian.PutUint64(payload[8:], uint64(i+1))
			r.apply(multiring.Delivery{
				Ring:          1,
				Instance:      msg.Instance(i + 1),
				Entry:         msg.Entry{Data: payload},
				EndOfInstance: true,
			})
		}
	})
	if got := res.AllocsPerOp(); got > 0 {
		t.Errorf("steady-state apply allocates: %d allocs/op, want 0", got)
	}
	if got := res.AllocedBytesPerOp(); got > 48 {
		t.Errorf("steady-state apply allocates %d B/op, want <= 48 (amortized arena refill)", got)
	}
}

// BenchmarkApplyBatch16 is one 16-command batch delivery per op (the
// shape SMR-level batching produces under load); divide by 16 for
// per-command cost.
func BenchmarkApplyBatch16(b *testing.B) {
	const inner = 16
	r := newBenchReplica()
	payloads := make([][]byte, inner)
	for k := range payloads {
		payloads[k] = benchPayload()
	}
	batch := EncodeBatch(payloads)
	// Seq field offsets of the inner commands within the batch payload.
	seqOffs := make([]int, inner)
	off := batchHeaderLen
	for k := range seqOffs {
		clen := int(binary.BigEndian.Uint32(batch[off:]))
		seqOffs[k] = off + 4 + 8
		off += 4 + clen
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for k, so := range seqOffs {
			binary.BigEndian.PutUint64(batch[so:], uint64(i*inner+k+1))
		}
		r.apply(multiring.Delivery{
			Ring:          1,
			Instance:      msg.Instance(i + 1),
			Entry:         msg.Entry{Data: batch},
			EndOfInstance: true,
		})
	}
}
