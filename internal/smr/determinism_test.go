package smr

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"mrp/internal/msg"
	"mrp/internal/multiring"
	"mrp/internal/storage"
)

// TestCheckpointDeterminism drives two fresh replicas with the identical
// delivery stream and requires their persisted checkpoints to be
// byte-identical. Checkpoints are compared by content during recovery and
// collision handling, so any map-iteration order leaking into the encoding
// (the dedup table holds one entry per client) is a real divergence, not a
// cosmetic one. With 64 clients, two independently built maps iterate in
// the same order with vanishing probability — this test fails almost
// surely if encodeDedup ever regresses to unsorted iteration.
func TestCheckpointDeterminism(t *testing.T) {
	mk := func() (*Replica, *storage.CheckpointStore) {
		ck := storage.NewCheckpointStore(storage.NewDisk(storage.NullDisk))
		r := NewReplica(ReplicaConfig{SM: newRegSM(), Ckpt: ck})
		return r, ck
	}
	r1, ck1 := mk()
	r2, ck2 := mk()

	// 64 clients, 3 commands each, alternating over two rings. ReplyTo is
	// left empty so apply never needs a transport.
	var deliveries []multiring.Delivery
	next := map[msg.RingID]msg.Instance{}
	for seq := uint64(1); seq <= 3; seq++ {
		for client := uint64(1); client <= 64; client++ {
			op, err := json.Marshal(regOp{Kind: "set", K: fmt.Sprintf("k%03d", client), V: fmt.Sprintf("v%d.%d", client, seq)})
			if err != nil {
				t.Fatal(err)
			}
			ring := msg.RingID(1 + client%2)
			next[ring]++
			cmd := Command{ClientID: client, Seq: seq, Op: op}
			deliveries = append(deliveries, multiring.Delivery{
				Ring:          ring,
				Instance:      next[ring],
				Entry:         msg.Entry{Data: cmd.Encode()},
				EndOfInstance: true,
			})
		}
	}
	for _, d := range deliveries {
		r1.apply(d)
		r2.apply(d)
	}
	r1.checkpoint()
	r2.checkpoint()

	c1, ok := ck1.Load()
	if !ok {
		t.Fatal("replica 1 saved no checkpoint")
	}
	c2, ok := ck2.Load()
	if !ok {
		t.Fatal("replica 2 saved no checkpoint")
	}
	if !reflect.DeepEqual(c1.Tuple, c2.Tuple) {
		t.Fatalf("checkpoint tuples diverged:\n  r1: %v\n  r2: %v", c1.Tuple, c2.Tuple)
	}
	if !bytes.Equal(c1.State, c2.State) {
		t.Fatalf("checkpoint state diverged: %d vs %d bytes (same delivery stream)", len(c1.State), len(c2.State))
	}

	// Re-encoding the same replica state must also be stable: Go
	// re-randomizes map iteration on every range statement, so even a
	// single replica checkpointing twice diverges from itself if the
	// encoding walks a map unsorted.
	r1.checkpoint()
	c1b, ok := ck1.Load()
	if !ok {
		t.Fatal("replica 1 lost its checkpoint")
	}
	if !bytes.Equal(c1.State, c1b.State) {
		t.Fatal("re-encoding the same replica state produced different checkpoint bytes")
	}
}

// TestBatchCutDeterminism pins DETERMINISM invariant 8: where the batcher
// cuts the command stream into entries must never be observable in state.
// The same logical client stream is fed to three replicas under different
// cuts — every command its own entry (batch=1, the unbatched wire), each
// client's whole run as one batch (batch=N), and randomized cuts — and the
// replicas must produce byte-identical checkpoint *state* and identical
// replies. Only the applied tuple may differ: cuts change how many
// instances carried the stream, never what executed. The regSM results
// embed the global execution index ("ok:<n>"), so any reordering or
// double-execution shows up in the reply stream, not just the snapshot.
func TestBatchCutDeterminism(t *testing.T) {
	const clients, seqs = 48, 4

	// The logical stream: client-major, sequence order, each client pinned
	// to one of two rings. Client-major order keeps each client's run
	// contiguous on its ring, so a cut can group any prefix of the run
	// into one entry without changing the global command order.
	type logical struct {
		ring msg.RingID
		cmd  Command
	}
	var stream []logical
	for client := uint64(1); client <= clients; client++ {
		for seq := uint64(1); seq <= seqs; seq++ {
			op, err := json.Marshal(regOp{Kind: "set", K: fmt.Sprintf("k%03d", client), V: fmt.Sprintf("v%d.%d", client, seq)})
			if err != nil {
				t.Fatal(err)
			}
			stream = append(stream, logical{
				ring: msg.RingID(1 + client%2),
				cmd:  Command{ClientID: client, Seq: seq, Op: op},
			})
		}
	}

	// cut turns the logical stream into a delivery stream, grouping up to
	// next() consecutive same-ring commands into one batch entry. A group
	// of one stays a plain command payload, exactly like the wire.
	cut := func(next func() int) []multiring.Delivery {
		var out []multiring.Delivery
		inst := map[msg.RingID]msg.Instance{}
		for i := 0; i < len(stream); {
			n := next()
			if n < 1 {
				n = 1
			}
			var group [][]byte
			ring := stream[i].ring
			for i < len(stream) && stream[i].ring == ring && len(group) < n {
				group = append(group, stream[i].cmd.Encode())
				i++
			}
			data := group[0]
			if len(group) > 1 {
				data = EncodeBatch(group)
			}
			inst[ring]++
			out = append(out, multiring.Delivery{
				Ring:          ring,
				Instance:      inst[ring],
				Entry:         msg.Entry{Data: data},
				EndOfInstance: true,
			})
		}
		return out
	}
	rng := rand.New(rand.NewSource(8)) // fixed seed: reproducible cuts
	variants := map[string][]multiring.Delivery{
		"batch=1": cut(func() int { return 1 }),
		"batch=N": cut(func() int { return seqs }),
		"random":  cut(func() int { return 1 + rng.Intn(seqs) }),
	}

	type replyRec struct {
		Client uint64
		Seq    uint64
		Result string
	}
	type outcome struct {
		state   []byte
		replies []replyRec
		ckpts   int
	}
	outcomes := make(map[string]outcome)
	for name, deliveries := range variants {
		ck := storage.NewCheckpointStore(storage.NewDisk(storage.NullDisk))
		r := NewReplica(ReplicaConfig{SM: newRegSM(), Ckpt: ck})
		var replies []replyRec
		r.OnExecute(func(cmd Command, result []byte) {
			replies = append(replies, replyRec{Client: cmd.ClientID, Seq: cmd.Seq, Result: string(result)})
		})
		for _, d := range deliveries {
			r.apply(d)
		}
		r.checkpoint()
		c, ok := ck.Load()
		if !ok {
			t.Fatalf("%s: no checkpoint", name)
		}
		outcomes[name] = outcome{state: c.State, replies: replies, ckpts: len(deliveries)}
	}

	base := outcomes["batch=1"]
	if len(base.replies) != clients*seqs {
		t.Fatalf("batch=1 executed %d commands, want %d", len(base.replies), clients*seqs)
	}
	for name, o := range outcomes {
		if !bytes.Equal(o.state, base.state) {
			t.Errorf("%s: checkpoint state diverged from batch=1 (%d vs %d bytes)", name, len(o.state), len(base.state))
		}
		if !reflect.DeepEqual(o.replies, base.replies) {
			t.Errorf("%s: reply stream diverged from batch=1", name)
		}
	}
	// The cuts must actually have differed — fewer entries under larger
	// batches — or the test proved nothing.
	if n := outcomes["batch=N"].ckpts; n >= outcomes["batch=1"].ckpts {
		t.Fatalf("batch=N produced %d entries, batch=1 %d: cuts did not differ", n, outcomes["batch=1"].ckpts)
	}
}
