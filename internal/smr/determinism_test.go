package smr

import (
	"bytes"
	"encoding/json"
	"fmt"
	"reflect"
	"testing"

	"mrp/internal/msg"
	"mrp/internal/multiring"
	"mrp/internal/storage"
)

// TestCheckpointDeterminism drives two fresh replicas with the identical
// delivery stream and requires their persisted checkpoints to be
// byte-identical. Checkpoints are compared by content during recovery and
// collision handling, so any map-iteration order leaking into the encoding
// (the dedup table holds one entry per client) is a real divergence, not a
// cosmetic one. With 64 clients, two independently built maps iterate in
// the same order with vanishing probability — this test fails almost
// surely if encodeDedup ever regresses to unsorted iteration.
func TestCheckpointDeterminism(t *testing.T) {
	mk := func() (*Replica, *storage.CheckpointStore) {
		ck := storage.NewCheckpointStore(storage.NewDisk(storage.NullDisk))
		r := NewReplica(ReplicaConfig{SM: newRegSM(), Ckpt: ck})
		return r, ck
	}
	r1, ck1 := mk()
	r2, ck2 := mk()

	// 64 clients, 3 commands each, alternating over two rings. ReplyTo is
	// left empty so apply never needs a transport.
	var deliveries []multiring.Delivery
	next := map[msg.RingID]msg.Instance{}
	for seq := uint64(1); seq <= 3; seq++ {
		for client := uint64(1); client <= 64; client++ {
			op, err := json.Marshal(regOp{Kind: "set", K: fmt.Sprintf("k%03d", client), V: fmt.Sprintf("v%d.%d", client, seq)})
			if err != nil {
				t.Fatal(err)
			}
			ring := msg.RingID(1 + client%2)
			next[ring]++
			cmd := Command{ClientID: client, Seq: seq, Op: op}
			deliveries = append(deliveries, multiring.Delivery{
				Ring:          ring,
				Instance:      next[ring],
				Entry:         msg.Entry{Data: cmd.Encode()},
				EndOfInstance: true,
			})
		}
	}
	for _, d := range deliveries {
		r1.apply(d)
		r2.apply(d)
	}
	r1.checkpoint()
	r2.checkpoint()

	c1, ok := ck1.Load()
	if !ok {
		t.Fatal("replica 1 saved no checkpoint")
	}
	c2, ok := ck2.Load()
	if !ok {
		t.Fatal("replica 2 saved no checkpoint")
	}
	if !reflect.DeepEqual(c1.Tuple, c2.Tuple) {
		t.Fatalf("checkpoint tuples diverged:\n  r1: %v\n  r2: %v", c1.Tuple, c2.Tuple)
	}
	if !bytes.Equal(c1.State, c2.State) {
		t.Fatalf("checkpoint state diverged: %d vs %d bytes (same delivery stream)", len(c1.State), len(c2.State))
	}

	// Re-encoding the same replica state must also be stable: Go
	// re-randomizes map iteration on every range statement, so even a
	// single replica checkpointing twice diverges from itself if the
	// encoding walks a map unsorted.
	r1.checkpoint()
	c1b, ok := ck1.Load()
	if !ok {
		t.Fatal("replica 1 lost its checkpoint")
	}
	if !bytes.Equal(c1.State, c1b.State) {
		t.Fatal("re-encoding the same replica state produced different checkpoint bytes")
	}
}
