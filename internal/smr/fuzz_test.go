package smr

import (
	"bytes"
	"testing"
)

// FuzzSMRBatchDecode fuzzes the SMR batch codec with the same canonical
// contract the msg codecs enforce: any input DecodeBatch accepts must
// re-encode — via each inner Command's own canonical encoding — to the
// identical byte string, and a batch never carries zero commands. The
// strictness is load-bearing: replicas of a partition must agree on
// whether a delivered payload is a batch, how many commands it carries,
// and what their bytes are, or their dedup windows and state fork.
func FuzzSMRBatchDecode(f *testing.F) {
	one := Command{ClientID: 1, Seq: 9, ReplyTo: "cl", Op: []byte("op")}.Encode()
	two := Command{ClientID: 2, Seq: 1, Op: []byte("x")}.Encode()
	f.Add(EncodeBatch([][]byte{one}))
	f.Add(EncodeBatch([][]byte{one, two}))
	f.Add(EncodeBatch(nil))                     // zero commands: must be rejected
	f.Add(one)                                  // plain command: not a batch
	f.Add([]byte{})                             // empty
	f.Add(EncodeBatch([][]byte{one, two})[:12]) // truncated
	f.Fuzz(func(t *testing.T, b []byte) {
		cmds, err := DecodeBatch(b)
		if err != nil {
			return
		}
		if len(cmds) == 0 {
			t.Fatal("zero-command batch accepted")
		}
		if !IsBatch(b) {
			t.Fatal("DecodeBatch accepted a payload IsBatch rejects")
		}
		payloads := make([][]byte, len(cmds))
		for i, c := range cmds {
			payloads[i] = c.Encode()
		}
		if re := EncodeBatch(payloads); !bytes.Equal(re, b) {
			t.Fatalf("accepted batch is not canonical:\n in  %x\n out %x", b, re)
		}
	})
}
