package smr

import (
	"encoding/binary"
	"time"

	"mrp/internal/msg"
	"mrp/internal/transport"
)

// Ring leases: consensus-free local reads.
//
// Every read used to be a fully ordered command paying the same multicast +
// consensus + merge latency as a write. A ring lease lets one replica — the
// holder — answer read-only operations from its applied state without
// proposing anything. Correctness rests on two mechanisms, neither of which
// depends on clock agreement between processes:
//
//  1. Lease grant/renew ("claim") and revoke are themselves ORDERED
//     commands on the ring, so the lease state every replica carries is a
//     pure function of the delivery stream: totally ordered with writes,
//     identical on all replicas, checkpointed and recovered like any other
//     replicated state (DETERMINISM invariant 9).
//
//  2. While the replicated lease state says "active", only the holder
//     sends client responses for data commands; the other replicas execute
//     everything (their state and dedup caches stay current) but stay
//     silent. A client therefore cannot observe a write acknowledged
//     before the holder applied it, which is exactly what makes the
//     holder's local state a linearizable read source.
//
// Wall-clock time appears only as a conservative LIVENESS bound, in the
// Gray & Cheriton style: the holder serves local reads until
// T_send + D − margin, measured from its own clock at the moment it
// PROPOSED the claim (before any replica applied it), while a non-holder
// stays silent until T_apply + D, measured from its own clock when it
// APPLIED the claim. Since a command is proposed before it is applied
// anywhere, the holder's window provably closes before any non-holder
// resumes acknowledging, regardless of how the two clocks disagree on
// absolute time; the margin covers clock-rate drift over one duration D.
// If the holder crashes, writes stall at most D until the survivors'
// windows lapse and they resume replying — no fencing or failover protocol
// is needed for safety, only for restoring read locality.
//
// None of the wall-clock readings above ever enters replicated state,
// checkpoints, or replies: a recovered replica restores the replicated
// lease table exactly but deliberately NOT the local serve window, so a
// recovered holder serves nothing until a fresh claim of its own
// round-trips through the ring.

// leaseMagic marks a lease command inside Command.Op. Like batchMagic it
// sets the high 32 bits, which no service op encoding produced by the
// store begins with (op kinds are small bytes), so interception before
// StateMachine.Execute cannot swallow an application command.
const leaseMagic uint64 = 0xFFFFFFFF4D524C31 // low word "MRL1"

const (
	leaseOpClaim  = 1
	leaseOpRevoke = 2
)

// leaseClaimLen is magic (8) + opcode (1) + holder (4) + duration ms (8).
const leaseClaimLen = 21

// leaseRevokeLen is magic (8) + opcode (1).
const leaseRevokeLen = 9

// EncodeLeaseClaim builds the ordered command op that grants (or renews)
// the ring's read lease to holder for the given duration. The duration
// rides in the command so every replica arms its silence window from the
// same D, whoever proposed it.
func EncodeLeaseClaim(holder msg.NodeID, d time.Duration) []byte {
	buf := make([]byte, 0, leaseClaimLen)
	buf = binary.BigEndian.AppendUint64(buf, leaseMagic)
	buf = append(buf, leaseOpClaim)
	buf = binary.BigEndian.AppendUint32(buf, uint32(holder))
	buf = binary.BigEndian.AppendUint64(buf, uint64(d.Milliseconds()))
	return buf
}

// EncodeLeaseRevoke builds the ordered command op that deactivates the
// ring's read lease. Replies resume from every replica at the revoke's
// delivery position; reconfiguration orders one before each prepare so
// frozen ranges never depend on lease expiry for progress.
func EncodeLeaseRevoke() []byte {
	buf := make([]byte, 0, leaseRevokeLen)
	buf = binary.BigEndian.AppendUint64(buf, leaseMagic)
	buf = append(buf, leaseOpRevoke)
	return buf
}

// isLeaseOp reports whether an op payload carries the lease magic.
func isLeaseOp(b []byte) bool {
	return len(b) >= leaseRevokeLen && binary.BigEndian.Uint64(b) == leaseMagic
}

// LeaseAck is the decoded reply of a lease claim or revoke command: the
// replicated lease table as of the command's delivery position.
type LeaseAck struct {
	Holder msg.NodeID
	Seq    uint64
	Active bool
}

// DecodeLeaseAck parses a lease command's response payload.
func DecodeLeaseAck(b []byte) (LeaseAck, bool) {
	if len(b) != 13 {
		return LeaseAck{}, false
	}
	return LeaseAck{
		Holder: msg.NodeID(binary.BigEndian.Uint32(b)),
		Seq:    binary.BigEndian.Uint64(b[4:]),
		Active: b[12] != 0,
	}, true
}

func encodeLeaseAck(a LeaseAck) []byte {
	buf := make([]byte, 13)
	binary.BigEndian.PutUint32(buf, uint32(a.Holder))
	binary.BigEndian.PutUint64(buf[4:], a.Seq)
	if a.Active {
		buf[12] = 1
	}
	return buf
}

// leaseTable is the REPLICATED half of the lease: a pure function of the
// delivery stream, identical on every replica, carried by checkpoints.
type leaseTable struct {
	holder msg.NodeID // 0 when no lease was ever granted
	seq    uint64     // increments on every applied claim/revoke
	active bool
	durMs  uint64
	// grant is the applied tuple at the moment the current claim applied —
	// the frontier a serving replica must have covered (it trivially has,
	// having applied the claim; the check guards recovered state).
	grant []msg.RingInstance
}

// LocalReader is optionally implemented by state machines that can serve
// read-only operations against their current applied state. ExecuteLocal
// must be side-effect free: it returns the same bytes Execute would have
// for op, or ok=false when op is not locally servable (a write, or an op
// kind the machine refuses to answer without ordering). It runs on the
// replica's execution goroutine between deliveries, so it never observes a
// half-applied command or a partial batch.
type LocalReader interface {
	ExecuteLocal(op []byte) ([]byte, bool)
}

// claimKey identifies a proposed claim awaiting its delivery, so the
// holder can bind the serve window it computed BEFORE proposing to the
// claim's apply.
type claimKey struct {
	clientID uint64
	seq      uint64
}

// leaseReadQueueLen bounds buffered local reads between the service
// handler (router goroutine, must not block) and the executor. A full
// queue declines immediately — the client falls back to the ordered path.
const leaseReadQueueLen = 256

// leaseRead is one queued local read.
type leaseRead struct {
	from transport.Addr
	m    *msg.LeaseRead
}

// RegisterLeaseClaim arms this replica to serve local reads once the
// claim identified by (clientID, seq) is applied: deadline is
// T_send + D − margin, computed by the lease manager from its own clock
// BEFORE proposing, which is what makes the serve window provably shorter
// than every other replica's silence window. Claims applied without a
// registration (replayed after recovery, proposed for someone else) grant
// the replicated lease but no serve window.
func (r *Replica) RegisterLeaseClaim(clientID, seq uint64, deadline time.Time) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.pendingClaims == nil {
		r.pendingClaims = make(map[claimKey]time.Time)
	}
	// Claims whose proposal was lost never apply and would pin their
	// entries forever; an expired deadline can no longer open a window, so
	// it is safe to drop on the way in.
	now := leaseClockNow()
	for k, dl := range r.pendingClaims {
		if dl.Before(now) {
			delete(r.pendingClaims, k)
		}
	}
	r.pendingClaims[claimKey{clientID, seq}] = deadline
}

// applyLease applies one ordered lease command to the replicated lease
// table and returns the encoded ack. Reached from applyCommand, so it is
// inside the deterministic scope: everything it writes to r.lease must be
// a pure function of the delivery stream. The serve window and the
// silence window are process-local liveness state and deliberately are
// not — see the package comment. Lease commands are rare control traffic,
// so the hot-path allocation discipline stops here.
//
//mrp:coldpath
func (r *Replica) applyLease(cmd Command) []byte {
	op := cmd.Op
	r.mu.Lock()
	defer r.mu.Unlock()
	switch op[8] {
	case leaseOpClaim:
		if len(op) != leaseClaimLen {
			break
		}
		holder := msg.NodeID(binary.BigEndian.Uint32(op[9:]))
		durMs := binary.BigEndian.Uint64(op[13:])
		r.lease.seq++
		r.lease.active = true
		r.lease.holder = holder
		r.lease.durMs = durMs
		r.lease.grant = tupleOf(r.applied)
		if holder == r.cfg.Node.ID() {
			// The serve window was fixed before this claim was proposed;
			// adopt it only if this process registered it (a replayed or
			// foreign claim arms nothing).
			if dl, ok := r.pendingClaims[claimKey{cmd.ClientID, cmd.Seq}]; ok {
				if dl.After(r.readDeadline) {
					r.readDeadline = dl
				}
				delete(r.pendingClaims, claimKey{cmd.ClientID, cmd.Seq})
			}
		} else {
			// Non-holder: stay silent for D measured from the LOCAL apply
			// time — necessarily later than the holder's T_send.
			until := leaseClockNow().Add(time.Duration(durMs) * time.Millisecond)
			if until.After(r.suppressUntil) {
				r.suppressUntil = until
			}
		}
	case leaseOpRevoke:
		r.lease.seq++
		r.lease.active = false
		r.lease.holder = 0
		r.lease.grant = nil
		// The HOLDER's gates flip at this command's delivery position: it
		// stops serving local reads and, no longer named by the table,
		// resumes answering ordered commands as it applies them. The other
		// replicas' silence windows deliberately keep running on their own
		// clocks (suppressUntil is untouched): the old holder may still be
		// serving reads until IT applies this revoke, so a non-holder that
		// answered a later write "because the lease is revoked" would hand
		// the client an ack the read-serving replica has not applied yet —
		// the stale-read overlap the clock bound exists to prevent.
	}
	return encodeLeaseAck(LeaseAck{Holder: r.lease.holder, Seq: r.lease.seq, Active: r.lease.active})
}

// heldReply is one client response withheld by the suppression gate,
// waiting for the silence window to lapse. at is the local hold time,
// used only to expire entries the holder certainly answered.
type heldReply struct {
	to   transport.Addr
	resp *msg.Response
	at   time.Time
}

// heldCap bounds the suppression buffer. Entries beyond it are the oldest
// — held longest, so almost certainly already answered by a live holder —
// and are dropped first.
const heldCap = 8192

// holdReplyLocked buffers a suppressed reply for flushHeld. Caller holds
// r.mu.
func (r *Replica) holdReplyLocked(to transport.Addr, resp *msg.Response) {
	if len(r.held) >= heldCap {
		r.held = append(r.held[:0], r.held[1:]...)
	}
	r.held = append(r.held, heldReply{to: to, resp: resp, at: leaseClockNow()})
}

// flushHeld releases buffered replies. When the suppression gate is open
// (the lease names this replica, or the silence window lapsed) the whole
// buffer sends — this is the liveness path that answers writes
// delivered while a dead holder's lease ran out. While the gate is still
// closed it only expires entries older than one lease duration: staying
// suppressed that long requires fresh ordered claims, which requires a
// live holder, which answered those commands itself. Called from the
// execution goroutine (after applies and on its idle tick), so sends
// never race the normal reply path.
func (r *Replica) flushHeld() {
	r.mu.Lock()
	if len(r.held) == 0 {
		r.mu.Unlock()
		return
	}
	var out []heldReply
	if !r.replySuppressed() {
		out = r.held
		r.held = nil
	} else {
		ttl := time.Duration(r.lease.durMs) * time.Millisecond
		now := leaseClockNow()
		n := 0
		for n < len(r.held) && now.Sub(r.held[n].at) > ttl {
			n++
		}
		if n > 0 {
			r.held = append([]heldReply(nil), r.held[n:]...)
		}
	}
	r.mu.Unlock()
	for _, h := range out {
		_ = r.cfg.Node.Endpoint().Send(h.to, h.resp)
	}
}

// replySuppressed reports whether this replica must withhold the client
// response of a data command. The serving replica — the one the active
// lease names — always answers: what it acks, it has applied, and its
// applied state is what lease reads serve. Everyone else stays silent
// until the clock-bounded silence window lapses, and ONLY until then:
// the window is armed at claim apply and deliberately survives holder
// changes and revocations, because the previous holder retains its serve
// right until its own stream position passes the change, not until ours
// does. Called with r.mu held from the apply path. The wall-clock
// comparison is a pure liveness release — suppression never being lifted
// would only stall writes, and lifting it "too early" is impossible by
// the window construction (T_apply + D ≥ T_send + D > holder's serve
// deadline).
func (r *Replica) replySuppressed() bool {
	if r.lease.active && r.lease.holder == r.cfg.Node.ID() {
		return false
	}
	return leaseClockNow().Before(r.suppressUntil)
}

// ServingLease reports whether this replica currently serves local reads:
// the replicated lease names it and its self-proposed serve window is
// still open. Tests and routing advertisements use it; the authoritative
// gate runs on the executor in serveLeaseRead.
func (r *Replica) ServingLease() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.lease.active && r.lease.holder == r.cfg.Node.ID() &&
		leaseClockNow().Before(r.readDeadline)
}

// LeaseState returns the replicated lease table (holder, seq, active) —
// what an ordered lease command would have acked at the current applied
// position.
func (r *Replica) LeaseState() LeaseAck {
	r.mu.Lock()
	defer r.mu.Unlock()
	return LeaseAck{Holder: r.lease.holder, Seq: r.lease.seq, Active: r.lease.active}
}

// serveLeaseRead answers one queued local read on the execution
// goroutine, between deliveries — a local read therefore observes exactly
// the state some ordered prefix produced, never a half-applied batch. It
// declines (OK=false) unless every gate passes: the replicated lease
// names this replica, the self-proposed serve window is open, the applied
// frontier covers the grant position, and the state machine can serve the
// op locally.
func (r *Replica) serveLeaseRead(lr leaseRead) {
	reply := &msg.LeaseReply{ClientID: lr.m.ClientID, Seq: lr.m.Seq}
	r.mu.Lock()
	ok := r.lease.active && r.lease.holder == r.cfg.Node.ID() &&
		leaseClockNow().Before(r.readDeadline) &&
		frontierCovers(r.applied, r.lease.grant)
	r.mu.Unlock()
	if ok {
		if sm, can := r.cfg.SM.(LocalReader); can {
			if result, served := sm.ExecuteLocal(lr.m.Op); served {
				reply.OK = true
				reply.Result = result
			}
		}
	}
	_ = r.cfg.Node.Endpoint().Send(lr.from, reply)
}

// frontierCovers reports whether the applied watermark has reached the
// lease's grant position on every ring the grant names.
func frontierCovers(applied map[msg.RingID]msg.Instance, grant []msg.RingInstance) bool {
	for _, g := range grant {
		if applied[g.Ring] < g.Instance {
			return false
		}
	}
	return true
}

// Lease state checkpoint framing: u32 holder | u64 seq | u8 active |
// u64 durMs | u16 grantLen | grant entries (u16 ring, u64 instance).
// The grant tuple is already sorted by ring ID (tupleOf), so the encoding
// is content-deterministic like the rest of the checkpoint.

//mrp:codec lease encode
func encodeLeaseTable(l leaseTable) []byte {
	out := make([]byte, 0, 4+8+1+8+2+len(l.grant)*10)
	out = binary.BigEndian.AppendUint32(out, uint32(l.holder))
	out = binary.BigEndian.AppendUint64(out, l.seq)
	if l.active {
		out = append(out, 1)
	} else {
		out = append(out, 0)
	}
	out = binary.BigEndian.AppendUint64(out, l.durMs)
	out = binary.BigEndian.AppendUint16(out, uint16(len(l.grant)))
	for _, g := range l.grant {
		out = binary.BigEndian.AppendUint16(out, uint16(g.Ring))
		out = binary.BigEndian.AppendUint64(out, uint64(g.Instance))
	}
	return out
}

//mrp:codec lease decode
func decodeLeaseTable(b []byte) (leaseTable, bool) {
	var l leaseTable
	if len(b) < 23 {
		return l, len(b) == 0 // absent lease section: zero table
	}
	l.holder = msg.NodeID(binary.BigEndian.Uint32(b))
	l.seq = binary.BigEndian.Uint64(b[4:])
	l.active = b[12] != 0
	l.durMs = binary.BigEndian.Uint64(b[13:])
	n := int(binary.BigEndian.Uint16(b[21:]))
	b = b[23:]
	if len(b) != n*10 {
		return leaseTable{}, false
	}
	for i := 0; i < n; i++ {
		l.grant = append(l.grant, msg.RingInstance{
			Ring:     msg.RingID(binary.BigEndian.Uint16(b[i*10:])),
			Instance: msg.Instance(binary.BigEndian.Uint64(b[i*10+2:])),
		})
	}
	return l, true
}

// leaseClockNow is the single wall-clock read permitted inside the
// replica's deterministic scope. Its value feeds only the two LOCAL
// liveness decisions — "may I still serve reads" and "must I still stay
// silent" — and never replicated state, checkpoints, or replies, so
// determinism is preserved: replicas disagreeing on the time can disagree
// only about whether to answer, never about what the state is.
//
//mrp:leaseclock
func leaseClockNow() time.Time {
	return time.Now()
}
