package smr

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"

	"mrp/internal/msg"
	"mrp/internal/multiring"
	"mrp/internal/storage"
)

// slowSM wraps a StateMachine with a fixed per-command delay, making the
// executor the bottleneck so the pipeline queue actually fills.
type slowSM struct {
	inner StateMachine
	delay time.Duration
}

func (s *slowSM) Execute(op []byte) []byte {
	time.Sleep(s.delay)
	return s.inner.Execute(op)
}
func (s *slowSM) Snapshot() []byte { return s.inner.Snapshot() }
func (s *slowSM) Restore(b []byte) { s.inner.Restore(b) }

// TestPipelineBackpressure runs a cluster whose executors are slow and
// whose pipeline queues hold a single delivery: the pump must block on
// the full queue (bounded memory, no drops) and every command must still
// complete and converge.
func TestPipelineBackpressure(t *testing.T) {
	c := newSMRClusterOpt(t, func(i int, rc *ReplicaConfig) {
		rc.Pipeline = PipelinePolicy{Depth: 1}
		rc.SM = &slowSM{inner: rc.SM, delay: 300 * time.Microsecond}
	})
	const nClients, perClient = 3, 15
	var wg sync.WaitGroup
	for ci := 0; ci < nClients; ci++ {
		cl := c.client(t, uint64(9000+ci))
		wg.Add(1)
		go func(ci int, cl *Client) {
			defer wg.Done()
			for k := 0; k < perClient; k++ {
				if _, err := cl.Execute(1, setOp(fmt.Sprintf("p%d-%d", ci, k), "v")); err != nil {
					t.Errorf("client %d: %v", ci, err)
					return
				}
			}
		}(ci, cl)
	}
	wg.Wait()
	deadline := time.Now().Add(10 * time.Second)
	for {
		s0, s1, s2 := c.sms[0].Snapshot(), c.sms[1].Snapshot(), c.sms[2].Snapshot()
		if bytes.Equal(s0, s1) && bytes.Equal(s1, s2) && c.replicas[2].Executed() == nClients*perClient {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("replicas diverged under backpressure (executed %d/%d/%d)",
				c.replicas[0].Executed(), c.replicas[1].Executed(), c.replicas[2].Executed())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// feedBatches sends n four-command batch proposals for client 42 through
// a raw endpoint, pacing them so the ring orders them steadily.
func feedBatches(t *testing.T, c *smrCluster, n int, pace time.Duration) {
	t.Helper()
	ep := c.net.Endpoint("batch-feeder")
	for k := 0; k < n; k++ {
		var payloads [][]byte
		for j := 1; j <= 4; j++ {
			seq := uint64(4*k + j)
			payloads = append(payloads, Command{ClientID: 42, Seq: seq, Op: setOp("k", fmt.Sprint(seq))}.Encode())
		}
		if err := ep.Send(c.addrs[0], &msg.Proposal{
			Ring:       1,
			ProposerID: 42,
			Seq:        batchSeqBit | uint64(k+1),
			Payload:    EncodeBatch(payloads),
		}); err != nil {
			t.Errorf("feed batch %d: %v", k, err)
			return
		}
		time.Sleep(pace)
	}
}

// TestPipelineCheckpointBatchAligned hammers Checkpoint while the
// pipelined executor chews through a stream of four-command batches. One
// delivered entry is one atomic unit of execution, so NO checkpoint may
// ever observe a partially applied batch: client 42's dedup head must sit
// on a batch boundary (seq ≡ 0 mod 4) in every checkpoint taken, and the
// trailing window bits must show the whole last batch executed.
func TestPipelineCheckpointBatchAligned(t *testing.T) {
	c := newSMRCluster(t)
	const batches = 60
	done := make(chan struct{})
	go func() {
		defer close(done)
		feedBatches(t, c, batches, 200*time.Microsecond)
	}()
	rep := c.replicas[0]
	checked := 0
	for {
		rep.Checkpoint()
		if ck, ok := storageLoad(rep); ok {
			_, dedupRaw := mustDecodeState(t, ck.State)
			if e, ok := dedupRaw[42]; ok {
				checked++
				if e.seq%4 != 0 {
					t.Fatalf("checkpoint observed mid-batch: client 42 head seq = %d", e.seq)
				}
				if e.seq >= 4 && e.bits&0xF != 0xF {
					t.Fatalf("checkpoint head seq %d but last batch incomplete: bits = %#x", e.seq, e.bits)
				}
			}
		}
		select {
		case <-done:
			// Drain: wait for the full stream, then one final aligned check.
			deadline := time.Now().Add(5 * time.Second)
			for rep.Executed() < 4*batches {
				if time.Now().After(deadline) {
					t.Fatalf("executed = %d, want %d", rep.Executed(), 4*batches)
				}
				time.Sleep(2 * time.Millisecond)
			}
			rep.Checkpoint()
			ck, ok := storageLoad(rep)
			if !ok {
				t.Fatal("no final checkpoint")
			}
			_, dedupRaw := mustDecodeState(t, ck.State)
			if e := dedupRaw[42]; e.seq != 4*batches {
				t.Fatalf("final head seq = %d, want %d", e.seq, 4*batches)
			}
			if checked == 0 {
				t.Fatal("no mid-stream checkpoint observed client 42: test raced past the stream")
			}
			return
		default:
		}
	}
}

func mustDecodeState(t *testing.T, state []byte) ([]byte, map[uint64]clientEntry) {
	t.Helper()
	dedupRaw, _, smState, err := decodeReplicaState(state)
	if err != nil {
		t.Fatalf("decode checkpoint state: %v", err)
	}
	return smState, decodeDedup(dedupRaw)
}

// TestPipelineStopMidBatchStream stops a replica while the pipelined
// executor is mid-stream. Stop must return promptly (the pump and the
// executor both unblock on the stop channel even with a full queue), the
// in-flight entry must have been applied atomically — the dedup head
// still sits on a batch boundary — and checkpoint/snapshot on the stopped
// replica must keep working via the direct path.
func TestPipelineStopMidBatchStream(t *testing.T) {
	c := newSMRClusterOpt(t, func(i int, rc *ReplicaConfig) {
		if i == 0 {
			rc.Pipeline = PipelinePolicy{Depth: 2}
			rc.SM = &slowSM{inner: rc.SM, delay: 200 * time.Microsecond}
		}
	})
	done := make(chan struct{})
	go func() {
		defer close(done)
		feedBatches(t, c, 40, 100*time.Microsecond)
	}()
	rep := c.replicas[0]
	deadline := time.Now().Add(5 * time.Second)
	for rep.Executed() < 20 {
		if time.Now().After(deadline) {
			t.Fatalf("replica never got going: executed = %d", rep.Executed())
		}
		time.Sleep(100 * time.Microsecond)
	}
	stopped := make(chan struct{})
	go func() { rep.Stop(); close(stopped) }()
	select {
	case <-stopped:
	case <-time.After(2 * time.Second):
		t.Fatal("Stop hung on a mid-stream pipelined replica")
	}
	<-done
	// The executor finished its in-flight entry before exiting: whatever
	// prefix was applied ends on a batch boundary.
	rep.Checkpoint() // direct path: executor has exited
	ck, ok := storageLoad(rep)
	if !ok {
		t.Fatal("stopped replica cannot checkpoint")
	}
	_, dedupRaw := mustDecodeState(t, ck.State)
	e, ok := dedupRaw[42]
	if !ok || e.seq == 0 {
		t.Fatalf("stopped replica applied nothing for client 42 (executed %d)", rep.Executed())
	}
	if e.seq%4 != 0 {
		t.Fatalf("stop tore a batch: client 42 head seq = %d", e.seq)
	}
	if snap := rep.StateSnapshot(); len(snap) == 0 {
		t.Fatal("stopped replica returned an empty snapshot")
	}
	// The survivors keep executing the rest of the stream.
	deadline = time.Now().Add(5 * time.Second)
	for c.replicas[1].Executed() < 160 {
		if time.Now().After(deadline) {
			t.Fatalf("survivor executed = %d, want 160", c.replicas[1].Executed())
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestRecoverAcrossBatchBoundary replays a crash/recover cycle whose
// checkpoint lands between two batches of the same client: a replica
// applies a prefix of a batched delivery stream, checkpoints, "crashes",
// and a fresh replica installs the checkpoint and is fed the FULL stream
// again. The applied-tuple watermark skips the covered prefix, the dedup
// window absorbs any overlap, and the recovered state must be
// byte-identical to a reference replica that lived through the whole
// stream — batch cuts included.
func TestRecoverAcrossBatchBoundary(t *testing.T) {
	// The stream: 20 entries on one ring, alternating a four-command batch
	// of client 42 and a single command of client 43, so the checkpoint
	// boundary falls between batches of a client whose run continues.
	var stream []multiring.Delivery
	var inst msg.Instance
	var seq42, seq43 uint64
	for k := 0; k < 10; k++ {
		var payloads [][]byte
		for j := 0; j < 4; j++ {
			seq42++
			payloads = append(payloads, Command{ClientID: 42, Seq: seq42, Op: setOp("a", fmt.Sprint(seq42))}.Encode())
		}
		inst++
		stream = append(stream, multiring.Delivery{
			Ring: 1, Instance: inst, Entry: msg.Entry{Data: EncodeBatch(payloads)}, EndOfInstance: true,
		})
		seq43++
		inst++
		stream = append(stream, multiring.Delivery{
			Ring: 1, Instance: inst, Entry: msg.Entry{Data: Command{ClientID: 43, Seq: seq43, Op: setOp("b", fmt.Sprint(seq43))}.Encode()}, EndOfInstance: true,
		})
	}

	run := func(r *Replica, ds []multiring.Delivery) {
		for _, d := range ds {
			r.apply(d)
		}
	}

	// Reference: the whole stream, no crash.
	refCk := storage.NewCheckpointStore(storage.NewDisk(storage.NullDisk))
	ref := NewReplica(ReplicaConfig{SM: newRegSM(), Ckpt: refCk})
	run(ref, stream)
	ref.checkpoint()
	want, ok := refCk.Load()
	if !ok {
		t.Fatal("reference saved no checkpoint")
	}

	// Crash: apply 7 entries (ends mid-run for both clients — client 42
	// has 16 of 40 commands in), checkpoint, die.
	crashCk := storage.NewCheckpointStore(storage.NewDisk(storage.NullDisk))
	crash := NewReplica(ReplicaConfig{SM: newRegSM(), Ckpt: crashCk})
	run(crash, stream[:7])
	crash.checkpoint()
	ck, ok := crashCk.Load()
	if !ok {
		t.Fatal("crashing replica saved no checkpoint")
	}
	if _, dedupRaw := mustDecodeState(t, ck.State); dedupRaw[42].seq%4 != 0 {
		t.Fatalf("prefix checkpoint off batch boundary: head = %d", dedupRaw[42].seq)
	}

	// Recover: fresh replica, install, then replay the FULL stream — the
	// recovery path re-delivers from the start, overlapping the prefix.
	recCk := storage.NewCheckpointStore(storage.NewDisk(storage.NullDisk))
	rec := NewReplica(ReplicaConfig{SM: newRegSM(), Ckpt: recCk})
	rec.InstallCheckpoint(ck)
	run(rec, stream)
	// And a straggling re-delivery of a mid-prefix batch for good measure.
	run(rec, stream[2:4])
	rec.checkpoint()
	got, ok := recCk.Load()
	if !ok {
		t.Fatal("recovered replica saved no checkpoint")
	}
	if !bytes.Equal(got.State, want.State) {
		t.Fatalf("recovered state diverged from reference (%d vs %d bytes)", len(got.State), len(want.State))
	}
	wantExec := countCmds(stream) - countCmds(stream[:7])
	if got := rec.Executed(); got != wantExec {
		t.Fatalf("recovered replica executed %d commands, want %d (stream minus checkpointed prefix)", got, wantExec)
	}
}

// countCmds counts the commands carried by a delivery stream.
func countCmds(ds []multiring.Delivery) uint64 {
	var n uint64
	for _, d := range ds {
		if IsBatch(d.Entry.Data) {
			cmds, _ := DecodeBatch(d.Entry.Data)
			n += uint64(len(cmds))
		} else {
			n++
		}
	}
	return n
}
