package smr

import (
	"sort"
	"sync"
	"time"

	"mrp/internal/msg"
	"mrp/internal/multiring"
	"mrp/internal/storage"
	"mrp/internal/transport"
)

// StateMachine is the replicated application. Execute must be
// deterministic: replicas apply the same commands in the same order and
// must reach the same state. Snapshot/Restore serialize the full state for
// checkpointing and state transfer (Section 5.2).
type StateMachine interface {
	Execute(op []byte) []byte
	Snapshot() []byte
	Restore(snapshot []byte)
}

// EpochHolder is optionally implemented by state machines whose state is
// versioned by a schema epoch (MRP-Store partitions). Checkpoints of such
// machines record the epoch, and recovery replies carry it, so a
// recovering replica learns the current schema version from its partition
// peers even when its own snapshot predates a repartitioning.
type EpochHolder interface {
	Epoch() uint64
}

// ReplicaConfig parametrizes a replica.
type ReplicaConfig struct {
	// Node is the Multi-Ring Paxos node this replica runs on.
	Node *multiring.Node
	// Learner is the deterministic-merge learner over the partition's
	// subscribed rings.
	Learner *multiring.Learner
	// SM is the replicated application.
	SM StateMachine
	// Ckpt persists checkpoints; required when CheckpointEvery > 0 or
	// recovery is used.
	Ckpt *storage.CheckpointStore
	// CheckpointEvery triggers a periodic checkpoint (0 disables; the
	// paper's replicas checkpoint periodically and write synchronously to
	// disk so acceptors can trim, Section 7.2).
	CheckpointEvery time.Duration
	// Pipeline controls the delivery→execution pipeline (see
	// PipelinePolicy): the zero value pipelines with the default depth,
	// Disabled couples execution to delivery on one goroutine.
	Pipeline PipelinePolicy
}

// PipelinePolicy controls the replica's delivery→execution pipeline: a
// pump goroutine moves merged deliveries from the learner into a bounded
// queue, and the executor goroutine applies them, so apply cost
// (state-machine work, checkpoint encoding) no longer back-pressures the
// deterministic merge. Checkpoints and StateSnapshot stay routed through
// the executor either way, and each delivery — including a whole batch
// entry — is applied atomically between executor steps, so a checkpoint
// can never observe half a batch.
type PipelinePolicy struct {
	// Disabled runs execution on the delivery goroutine (the coupled,
	// pre-pipeline behavior; the latency figure's "coupled" baseline).
	Disabled bool
	// Depth is the executor queue's capacity in deliveries (default 128).
	// A full queue blocks the pump — backpressure propagates to the
	// learner rather than dropping a delivery.
	Depth int
}

func (p PipelinePolicy) withDefaults() PipelinePolicy {
	if p.Depth <= 0 {
		p.Depth = 128
	}
	return p
}

// Replica executes delivered commands against the state machine, responds
// to clients, deduplicates retried commands, maintains the checkpoint
// tuple k_p, and serves the recovery protocol (trim replies, checkpoint
// queries, state transfer).
type Replica struct {
	cfg ReplicaConfig

	mu sync.Mutex
	// applied is the live tuple k_p: per subscribed ring, the highest
	// instance whose commands are fully applied.
	applied map[msg.RingID]msg.Instance
	// safe is the tuple of the last *persisted* checkpoint — what trim
	// replies report (trimming ahead of a durable checkpoint would lose
	// the only copy of the commands).
	safe map[msg.RingID]msg.Instance
	// dedup tracks executed command sequences per client (see clientEntry).
	dedup map[uint64]clientEntry

	// lease is the replicated half of the ring lease (see lease.go): a
	// pure function of the delivery stream, checkpointed with the state.
	lease leaseTable
	// readDeadline / suppressUntil are the PROCESS-LOCAL lease windows:
	// until readDeadline this replica (when it is the holder) serves local
	// reads; until suppressUntil this replica (when it is not) withholds
	// client replies. Neither is checkpointed — see the lease.go comment.
	readDeadline  time.Time
	suppressUntil time.Time
	// pendingClaims binds claims this process proposed (via
	// RegisterLeaseClaim) to the serve window computed before proposing.
	pendingClaims map[claimKey]time.Time
	// held buffers client replies withheld by the suppression gate. The
	// ring coordinator deduplicates (proposer, seq), so a retransmission
	// of a suppressed command is never re-delivered — the buffered reply
	// is the command's ONLY reply. Suppression therefore delays replies,
	// never drops them: flushHeld sends the buffer the moment the silence
	// window lapses (holder down, renewals stopped) or an ordered revoke
	// or holder change deactivates the lease. Process-local liveness
	// state, like the windows above; not checkpointed.
	held []heldReply

	executed  uint64
	ckpts     uint64
	onExecute func(Command, []byte)

	// Apply-path scratch, owned by the execution goroutine: decoded
	// commands and outgoing replies are built into reused slices, reply
	// addresses are interned (clients keep one address for their whole
	// session), and response structs come out of a chunked arena, so a
	// steady-state delivery performs no per-command heap allocation.
	cmdScratch   []Command
	replyScratch []routedReply
	respArena    []msg.Response
	addrCache    map[string]transport.Addr
	intern       func([]byte) transport.Addr

	snaps      chan chan []byte
	ckptReq    chan chan struct{}
	leaseReads chan leaseRead

	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
}

// clientEntry is one client's deduplication state: the highest executed
// sequence number, a bitmap of executed sequences in the window
// [seq-63, seq] (bit i set means seq-i executed), and the cached result of
// the highest executed command.
//
// A plain "highest seq wins" rule is not enough: a client's commands reach
// a replica over every ring it subscribes to (its partition ring plus the
// global ring), and the deterministic merge does not preserve one client's
// sequence order across rings — a later single-partition command can be
// delivered before an earlier global-ring command (scans, split
// prepare/commit). Such an inversion used to make the replica silently
// swallow the earlier command as a "duplicate". The bitmap distinguishes
// the two cases: an inverted command's bit is unset (execute it), a
// retransmitted duplicate's bit is set (reply with the cached result).
// All replicas of a partition see the same merged order, so the bitmap
// evolves identically everywhere and execution stays deterministic.
type clientEntry struct {
	seq    uint64
	bits   uint64
	result []byte
}

// executed reports whether seq was already executed. Sequences more than
// 63 below the highest executed are beyond the inversion window and can
// only be stale retransmissions: they count as executed.
func (e clientEntry) executed(seq uint64) bool {
	if seq > e.seq {
		return false
	}
	d := e.seq - seq
	if d >= 64 {
		return true
	}
	return e.bits&(1<<d) != 0
}

// record marks seq executed, caching the result of the highest sequence.
func (e clientEntry) record(seq uint64, result []byte) clientEntry {
	if seq > e.seq {
		shift := seq - e.seq
		if e.bits != 0 && shift < 64 {
			e.bits <<= shift
		} else {
			e.bits = 0
		}
		e.bits |= 1
		e.seq = seq
		e.result = result
		return e
	}
	e.bits |= 1 << (e.seq - seq)
	return e
}

// NewReplica creates a replica. Call Start to begin executing.
func NewReplica(cfg ReplicaConfig) *Replica {
	r := &Replica{
		cfg:        cfg,
		applied:    make(map[msg.RingID]msg.Instance),
		safe:       make(map[msg.RingID]msg.Instance),
		dedup:      make(map[uint64]clientEntry),
		addrCache:  make(map[string]transport.Addr),
		snaps:      make(chan chan []byte),
		ckptReq:    make(chan chan struct{}),
		leaseReads: make(chan leaseRead, leaseReadQueueLen),
		stop:       make(chan struct{}),
		done:       make(chan struct{}),
	}
	// Bound once: a per-delivery method value would itself allocate.
	r.intern = r.internAddr
	return r
}

// addrCacheCap bounds the reply-address intern cache; on overflow (a churn
// of distinct client addresses no real deployment produces) the cache is
// reset rather than evicted — correctness never depends on it.
const addrCacheCap = 4096

// internAddr returns a stable string for a decoded reply address without
// re-allocating it on every delivery. Process-local routing state only:
// the bytes of the address, which are all that execution observes, are
// identical on every replica. Marked hot explicitly: it is reached through
// the r.intern func value, which the call-graph propagation cannot see.
//
//mrp:hotpath
func (r *Replica) internAddr(b []byte) transport.Addr {
	if a, ok := r.addrCache[string(b)]; ok { // no-alloc map lookup
		return a
	}
	if len(r.addrCache) >= addrCacheCap {
		r.addrCache = make(map[string]transport.Addr) //mrp:alloc — overflow reset, once per addrCacheCap distinct client addresses
	}
	a := transport.Addr(b) //mrp:alloc — the one copy the cache keeps; every later delivery from this client hits the no-alloc lookup above
	r.addrCache[string(a)] = a
	return a
}

// routedReply pairs a response with its destination while a delivery's
// commands apply; replies are sent only after the watermark advances.
type routedReply struct {
	to   transport.Addr
	resp *msg.Response
}

// respArenaChunk is how many responses one arena refill provides. At the
// wire size of a response (~40 bytes + result) a chunk is one ~10 KiB slab
// amortized over 256 replies.
const respArenaChunk = 256

// newResponse hands out a response struct from the chunked arena. Sent
// messages belong to the transport (both transports hold the pointer
// asynchronously, so a reused struct would race with delivery) — each
// struct is handed out exactly once and the slab is dropped wholesale when
// its last response retires, trading a per-reply heap allocation for one
// amortized slab refill.
func (r *Replica) newResponse(clientID, seq uint64, result []byte) *msg.Response {
	if len(r.respArena) == 0 {
		r.respArena = make([]msg.Response, respArenaChunk) //mrp:alloc — amortized slab refill, one allocation per respArenaChunk replies
	}
	resp := &r.respArena[0]
	r.respArena = r.respArena[1:]
	resp.ClientID, resp.Seq, resp.Result = clientID, seq, result
	return resp
}

// OnExecute registers a hook called after every executed command (used by
// benchmarks to observe server-side throughput). Must be set before Start.
func (r *Replica) OnExecute(fn func(Command, []byte)) { r.onExecute = fn }

// HandleService processes non-ring messages addressed to this replica's
// node: checkpoint discovery and state transfer for recovering peers. Wire
// it with Node.Service. It must stay non-blocking.
func (r *Replica) HandleService(env transport.Envelope) {
	switch m := env.Msg.(type) {
	case *msg.LeaseRead:
		// Local reads execute on the executor goroutine between
		// deliveries; here we only enqueue. A full queue (or a stopped
		// executor) declines immediately so the client falls back to the
		// ordered read path instead of waiting out its timeout.
		select {
		case <-r.stop:
		case r.leaseReads <- leaseRead{from: env.From, m: m}:
			return
		default:
		}
		_ = r.cfg.Node.Endpoint().Send(env.From, &msg.LeaseReply{
			ClientID: m.ClientID, Seq: m.Seq,
		})
	case *msg.CkptQuery:
		r.mu.Lock()
		tuple := tupleOf(r.safe)
		r.mu.Unlock()
		var epoch uint64
		if r.cfg.Ckpt != nil {
			if ck, ok := r.cfg.Ckpt.Load(); ok {
				epoch = ck.Epoch
			}
		}
		_ = r.cfg.Node.Endpoint().Send(env.From, &msg.CkptReply{
			Seq:     m.Seq,
			Replica: r.cfg.Node.ID(),
			Epoch:   epoch,
			Tuple:   tuple,
		})
	case *msg.CkptFetch:
		if r.cfg.Ckpt == nil {
			return
		}
		ck, ok := r.cfg.Ckpt.Load()
		if !ok {
			return
		}
		_ = r.cfg.Node.Endpoint().Send(env.From, &msg.CkptData{
			Seq:   m.Seq,
			Epoch: ck.Epoch,
			Tuple: ck.Tuple,
			State: ck.State,
		})
	}
}

// HandleTrimQuery answers a trim coordinator's query with this replica's
// highest safe instance k[x]_p for the ring (Section 5.2, Predicate 2
// input). Wire it as the ring process's Aux handler.
func (r *Replica) HandleTrimQuery(env transport.Envelope) {
	q, ok := env.Msg.(*msg.TrimQuery)
	if !ok {
		return
	}
	r.mu.Lock()
	safe := r.safe[q.Ring]
	r.mu.Unlock()
	_ = r.cfg.Node.Endpoint().Send(env.From, &msg.TrimReply{
		Ring:         q.Ring,
		Seq:          q.Seq,
		Replica:      r.cfg.Node.ID(),
		SafeInstance: safe,
	})
}

// Start launches the execution loop.
func (r *Replica) Start() {
	go r.run()
}

// Stop terminates the execution loop.
func (r *Replica) Stop() {
	r.stopOnce.Do(func() { close(r.stop) })
	<-r.done
}

// Executed returns the number of commands executed.
func (r *Replica) Executed() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.executed
}

// Checkpoints returns the number of checkpoints taken.
func (r *Replica) Checkpoints() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.ckpts
}

// AppliedTuple returns the live tuple k_p (per-ring applied watermark),
// ordered by ring identifier.
func (r *Replica) AppliedTuple() []msg.RingInstance {
	r.mu.Lock()
	defer r.mu.Unlock()
	return tupleOf(r.applied)
}

// SafeTuple returns the tuple of the last persisted checkpoint.
func (r *Replica) SafeTuple() []msg.RingInstance {
	r.mu.Lock()
	defer r.mu.Unlock()
	return tupleOf(r.safe)
}

// InstallCheckpoint restores the state machine, the deduplication table,
// and the tuples from a recovered checkpoint. Must be called before Start.
func (r *Replica) InstallCheckpoint(ck storage.Checkpoint) {
	dedupRaw, leaseRaw, smState, err := decodeReplicaState(ck.State)
	if err != nil {
		return
	}
	r.cfg.SM.Restore(smState)
	r.mu.Lock()
	defer r.mu.Unlock()
	r.dedup = decodeDedup(dedupRaw)
	if lt, ok := decodeLeaseTable(leaseRaw); ok {
		r.lease = lt
		// The replicated lease recovers identically; the local windows do
		// not. A recovered holder serves nothing until a fresh claim of
		// its own round-trips (readDeadline stays zero). A recovered
		// non-holder re-arms its silence window from NOW — recovery
		// happens after the claim was applied somewhere, so now + D is a
		// superset of the window the crashed process was observing.
		if lt.active && lt.holder != r.cfg.Node.ID() {
			r.suppressUntil = leaseClockNow().Add(time.Duration(lt.durMs) * time.Millisecond)
		}
	}
	for _, e := range ck.Tuple {
		r.applied[e.Ring] = e.Instance
		r.safe[e.Ring] = e.Instance
	}
}

// Checkpoint synchronously snapshots the state machine and persists it,
// advancing the safe tuple (Section 7.2: replicas write checkpoints
// synchronously so acceptors may trim afterwards). The checkpoint also
// carries the client-deduplication table, so a recovered replica keeps
// exactly-once semantics for commands older than the checkpoint. The
// snapshot is taken on the replica's execution goroutine, so callers on
// any goroutine never observe a half-applied command.
func (r *Replica) Checkpoint() {
	done := make(chan struct{})
	select {
	case r.ckptReq <- done:
		select {
		case <-done:
		case <-r.done:
		}
	case <-r.done:
		// The executor has stopped; snapshotting directly is safe.
		r.checkpoint()
	}
}

// checkpoint does the work of Checkpoint; it must run on the execution
// goroutine (or after it has exited). Checkpoint bytes feed collision-free
// recovery: every replica of the partition must encode the same state for
// the same applied tuple.
//
//mrp:deterministic
func (r *Replica) checkpoint() {
	if r.cfg.Ckpt == nil {
		return
	}
	r.mu.Lock()
	tuple := tupleOf(r.applied)
	dedup := encodeDedup(r.dedup)
	lease := encodeLeaseTable(r.lease)
	r.mu.Unlock()
	var epoch uint64
	if eh, ok := r.cfg.SM.(EpochHolder); ok {
		epoch = eh.Epoch()
	}
	state := encodeReplicaState(dedup, lease, r.cfg.SM.Snapshot())
	r.cfg.Ckpt.Save(storage.Checkpoint{Tuple: tuple, Epoch: epoch, State: state})
	r.mu.Lock()
	for _, e := range tuple {
		r.safe[e.Ring] = e.Instance
	}
	r.ckpts++
	r.mu.Unlock()
}

func (r *Replica) run() {
	defer close(r.done)
	deliveries := r.cfg.Learner.Deliveries()
	if pol := r.cfg.Pipeline.withDefaults(); !pol.Disabled {
		// Pipelined: the pump feeds the executor through a bounded queue.
		// The executor loop below is the same either way; only the channel
		// it reads differs.
		execQ := make(chan multiring.Delivery, pol.Depth)
		pumpDone := make(chan struct{})
		go r.pump(deliveries, execQ, pumpDone)
		defer func() { <-pumpDone }()
		deliveries = execQ
	}
	var ckptC <-chan time.Time
	if r.cfg.CheckpointEvery > 0 {
		t := time.NewTicker(r.cfg.CheckpointEvery)
		defer t.Stop()
		ckptC = t.C
	}
	// The held-reply buffer must drain even when the ring goes idle (no
	// delivery to piggyback the flush on), so the executor ticks for it.
	heldT := time.NewTicker(50 * time.Millisecond)
	defer heldT.Stop()
	for {
		select {
		case d := <-deliveries:
			r.apply(d)
			r.flushHeld()
		case lr := <-r.leaseReads:
			r.serveLeaseRead(lr)
		case <-heldT.C:
			r.flushHeld()
		case <-ckptC:
			r.checkpoint()
		case done := <-r.ckptReq:
			r.checkpoint()
			close(done)
		case resp := <-r.snaps:
			resp <- r.cfg.SM.Snapshot()
		case <-r.stop:
			return
		}
	}
}

// pump is the delivery half of the pipeline: it moves merged deliveries
// from the learner into the executor queue. A full queue blocks the pump
// (bounded memory, no drops); stopping the replica unblocks it.
func (r *Replica) pump(in <-chan multiring.Delivery, out chan<- multiring.Delivery, done chan struct{}) {
	defer close(done)
	for {
		select {
		case d := <-in:
			select {
			case out <- d:
			case <-r.stop:
				return
			}
		case <-r.stop:
			return
		}
	}
}

// StateSnapshot returns SM.Snapshot() taken on the replica's execution
// goroutine, so it never observes a half-applied command (calling
// SM.Snapshot directly while the replica runs is a data race). On a
// stopped replica the snapshot is taken directly — no executor is
// running anymore.
func (r *Replica) StateSnapshot() []byte {
	resp := make(chan []byte, 1)
	select {
	case r.snaps <- resp:
		select {
		case s := <-resp:
			return s
		case <-r.done:
		}
	case <-r.done:
	}
	return r.cfg.SM.Snapshot()
}

// apply executes one delivery and advances the applied tuple. Every
// replica of the partition applies the same delivery stream; anything
// this reaches must be a pure function of that stream. It is also the
// executor's steady-state loop body: allocations here are per-delivery
// garbage, so the hot-path scope holds it to the scratch/arena discipline.
//
//mrp:deterministic
//mrp:hotpath
func (r *Replica) apply(d multiring.Delivery) {
	if d.Skip {
		r.mu.Lock()
		if d.SkipTo-1 > r.applied[d.Ring] {
			r.applied[d.Ring] = d.SkipTo - 1
		}
		r.mu.Unlock()
		return
	}
	// A recovering replica's rings may retransmit instances at or below the
	// restored checkpoint; they are already reflected in the state.
	r.mu.Lock()
	already := d.Instance <= r.applied[d.Ring]
	r.mu.Unlock()
	if already {
		return
	}
	// One entry is one atomic unit of execution: a batch's inner commands
	// all apply before the executor handles anything else, so a checkpoint
	// (taken between executor steps) can never observe half a batch —
	// batch cut points are invisible in state (DETERMINISM invariant 8).
	cmds := r.cmdScratch[:0]
	if IsBatch(d.Entry.Data) {
		var err error
		if cmds, err = decodeBatchInto(cmds, d.Entry.Data, r.intern); err != nil {
			return // malformed batch: ignore like any foreign payload
		}
	} else {
		cmd, err := decodeCommandWith(d.Entry.Data, r.intern)
		if err != nil {
			return // foreign payload on a shared ring: ignore
		}
		cmds = append(cmds, cmd)
	}
	r.cmdScratch = cmds
	replies := r.replyScratch[:0]
	for _, cmd := range cmds {
		if to, resp := r.applyCommand(cmd); resp != nil {
			replies = append(replies, routedReply{to: to, resp: resp})
		}
	}
	// Advance the applied watermark before replying so a client that
	// observed the response also observes the tuple movement.
	if d.EndOfInstance {
		r.mu.Lock()
		if d.Instance > r.applied[d.Ring] {
			r.applied[d.Ring] = d.Instance
		}
		r.mu.Unlock()
	}
	for _, rep := range replies {
		_ = r.cfg.Node.Endpoint().Send(rep.to, rep.resp)
	}
	// Drop the sent responses before parking the scratch (the transport
	// owns them now); the next apply reuses the capacity.
	for i := range replies {
		replies[i] = routedReply{}
	}
	r.replyScratch = replies[:0]
}

// applyCommand executes one command through the per-client dedup window
// and returns the response owed to the client (nil when none: the command
// carried no reply address, or it is a stale re-delivery whose result is
// no longer cached). Inside the deterministic scope via apply; the reply
// is routed by the caller after the watermark has advanced.
func (r *Replica) applyCommand(cmd Command) (transport.Addr, *msg.Response) {
	leaseOp := isLeaseOp(cmd.Op)
	r.mu.Lock()
	prev, seen := r.dedup[cmd.ClientID]
	r.mu.Unlock()
	var result []byte
	respond := cmd.ReplyTo != ""
	if seen && prev.executed(cmd.Seq) {
		if cmd.Seq == prev.seq {
			result = prev.result // duplicate of the head: reply with the cache
		} else {
			// Stale re-delivery of an older command: it was executed and
			// answered long ago, and the cache only holds the head
			// sequence's result — stay silent rather than reply with the
			// wrong payload (the synchronous client is not waiting).
			respond = false
		}
	} else {
		if leaseOp {
			// Lease claims/revokes mutate the replicated lease table
			// instead of the application state; they ride the same dedup
			// window so retransmissions are idempotent.
			result = r.applyLease(cmd)
		} else {
			result = r.cfg.SM.Execute(cmd.Op)
		}
		r.mu.Lock()
		r.dedup[cmd.ClientID] = prev.record(cmd.Seq, result)
		r.executed++
		r.mu.Unlock()
		if r.onExecute != nil {
			r.onExecute(cmd, result)
		}
	}
	// While the replicated lease is active, only the holder answers data
	// commands (lease commands are always answered — they are how the
	// lease changes hands). Execution above is unconditional: state and
	// dedup caches stay identical everywhere; only the reply is withheld,
	// which is what makes the holder's applied state cover every write a
	// client could have seen acknowledged. Withheld replies are buffered,
	// not dropped: the coordinator absorbs retransmissions, so if the
	// holder dies without answering, the buffered copy flushed at the
	// window's lapse is the client's only way to ever hear back.
	if respond && !leaseOp {
		r.mu.Lock()
		if r.replySuppressed() {
			r.holdReplyLocked(cmd.ReplyTo, r.newResponse(cmd.ClientID, cmd.Seq, result))
			respond = false
		}
		r.mu.Unlock()
	}
	if !respond {
		return "", nil
	}
	return cmd.ReplyTo, r.newResponse(cmd.ClientID, cmd.Seq, result)
}

// tupleOf converts a watermark map into a tuple ordered by ring ID
// (Predicate 1's ordering).
func tupleOf(m map[msg.RingID]msg.Instance) []msg.RingInstance {
	out := make([]msg.RingInstance, 0, len(m))
	for ring, inst := range m {
		out = append(out, msg.RingInstance{Ring: ring, Instance: inst})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Ring < out[j].Ring })
	return out
}
