package smr

import (
	"bytes"
	"testing"
	"time"

	"mrp/internal/msg"
)

// waitExecuted polls until every replica has executed at least n commands.
func waitExecuted(t *testing.T, c *smrCluster, n uint64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		done := true
		for _, r := range c.replicas {
			if r.Executed() < n {
				done = false
			}
		}
		if done {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("executed = %d/%d/%d, want >= %d everywhere",
				c.replicas[0].Executed(), c.replicas[1].Executed(), c.replicas[2].Executed(), n)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestRetryInsideBatchExactlyOnce is the ambiguous-timeout regression for
// batching: a command's first attempt rides a batch (mid-batch, between
// two other clients' commands), the response is lost, and the client
// retries the SAME sequence directly. The batch proposal travels under the
// client's batch identity — not the command's (proposer, seq) — so the
// coordinator cannot dedup the retry; the replicas' executed-window must.
// The retry must return the original cached result and the state machine
// must have executed the command exactly once.
func TestRetryInsideBatchExactlyOnce(t *testing.T) {
	c := newSMRCluster(t)
	cl := c.client(t, 5000)
	seq := cl.Reserve()

	// The "first attempt": the command lands mid-batch, as if the client's
	// batcher had packed it with two commands of another client. ReplyTo
	// points at the real client, but its pending table has no entry yet, so
	// the original responses are dropped — an ambiguous timeout.
	target := Command{ClientID: cl.ID(), Seq: seq, ReplyTo: cl.cfg.Endpoint.Addr(), Op: setOp("t", "orig")}
	batch := EncodeBatch([][]byte{
		Command{ClientID: 6000, Seq: 1, Op: setOp("f", "1")}.Encode(),
		target.Encode(),
		Command{ClientID: 6000, Seq: 2, Op: setOp("f", "2")}.Encode(),
	})
	ep := c.net.Endpoint("raw-batcher")
	if err := ep.Send(c.addrs[0], &msg.Proposal{
		Ring:       1,
		ProposerID: msg.NodeID(cl.ID()),
		Seq:        batchSeqBit | 1,
		Payload:    batch,
	}); err != nil {
		t.Fatal(err)
	}
	waitExecuted(t, c, 3)

	// The retry: same sequence, same op, through the normal client path.
	// The replicas see a duplicate of their dedup head for this client and
	// answer from the cached result — "ok:2", the target's position inside
	// the batch — without re-executing.
	res, err := cl.ExecuteGatherAt(seq, []msg.RingID{1}, setOp("t", "orig"), 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if string(res[0]) != "ok:2" {
		t.Fatalf("retry result = %q, want the cached mid-batch result \"ok:2\"", res[0])
	}
	// Let the retried proposal reach every replica, then confirm nobody
	// re-executed it.
	time.Sleep(200 * time.Millisecond)
	for i, r := range c.replicas {
		if got := r.Executed(); got != 3 {
			t.Fatalf("replica %d executed %d commands, want 3 (exactly-once)", i, got)
		}
	}
	if got := c.sms[0].Execute(getOp("t")); string(got) != "orig" {
		t.Fatalf("state = %q, want %q", got, "orig")
	}
}

// TestRetryInsideBatchInvertedArrival is the batched variant of the
// inverted-arrival regression: the client's LATER sequence is ordered
// first (its retry won the race), and the earlier sequence only lands
// afterwards — mid-batch. The earlier command must still execute (its
// window bit is unset), and a subsequent direct retransmission of it must
// be absorbed by the executed-window, never re-executed.
func TestRetryInsideBatchInvertedArrival(t *testing.T) {
	c := newSMRCluster(t)
	ep := c.net.Endpoint("raw-inverted")

	// Step 1: seq 2 arrives and executes first.
	if err := ep.Send(c.addrs[0], &msg.Proposal{
		Ring: 1, ProposerID: 7000, Seq: 2,
		Payload: Command{ClientID: 7000, Seq: 2, Op: setOp("inv", "second")}.Encode(),
	}); err != nil {
		t.Fatal(err)
	}
	waitExecuted(t, c, 1)

	// Step 2: seq 1 finally gets ordered, mid-batch between another
	// client's commands. Inside the inversion window, so it executes.
	batch := EncodeBatch([][]byte{
		Command{ClientID: 8000, Seq: 1, Op: setOp("g", "1")}.Encode(),
		Command{ClientID: 7000, Seq: 1, Op: setOp("inv", "first")}.Encode(),
		Command{ClientID: 8000, Seq: 2, Op: setOp("g", "2")}.Encode(),
	})
	if err := ep.Send(c.addrs[0], &msg.Proposal{
		Ring: 1, ProposerID: 7000, Seq: batchSeqBit | 1, Payload: batch,
	}); err != nil {
		t.Fatal(err)
	}
	waitExecuted(t, c, 4)

	// Step 3: a straggling direct retransmission of seq 1. Its window bit
	// is now set; the replicas must swallow it.
	if err := ep.Send(c.addrs[1], &msg.Proposal{
		Ring: 1, ProposerID: 7000, Seq: 1,
		Payload: Command{ClientID: 7000, Seq: 1, Op: setOp("inv", "first")}.Encode(),
	}); err != nil {
		t.Fatal(err)
	}
	time.Sleep(300 * time.Millisecond)
	for i, r := range c.replicas {
		if got := r.Executed(); got != 4 {
			t.Fatalf("replica %d executed %d commands, want 4 (exactly-once under inversion)", i, got)
		}
	}
	// Delivery order is the authority: seq 2 then seq 1, so the register
	// holds seq 1's write — on every replica identically.
	for i, sm := range c.sms {
		if got := sm.Execute(getOp("inv")); string(got) != "first" {
			t.Fatalf("replica %d state = %q, want %q", i, got, "first")
		}
	}
	s0 := c.sms[0].Snapshot()
	for i := 1; i < 3; i++ {
		if !bytes.Equal(c.sms[i].Snapshot(), s0) {
			t.Fatalf("replica %d diverged from replica 0", i)
		}
	}
}
