package smr

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"mrp/internal/msg"
	"mrp/internal/multiring"
	"mrp/internal/netsim"
	"mrp/internal/ringpaxos"
	"mrp/internal/storage"
	"mrp/internal/transport"
)

// regSM is a tiny deterministic state machine: ops are "set k v" /
// "get k" encoded as JSON; state is a map.
type regSM struct {
	mu sync.Mutex
	m  map[string]string
	n  int // executed op count, part of the state
}

type regOp struct {
	Kind string `json:"kind"`
	K    string `json:"k"`
	V    string `json:"v"`
}

func newRegSM() *regSM { return &regSM{m: make(map[string]string)} }

func (s *regSM) Execute(op []byte) []byte {
	var o regOp
	if err := json.Unmarshal(op, &o); err != nil {
		return []byte("err")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.n++
	switch o.Kind {
	case "set":
		s.m[o.K] = o.V
		return []byte("ok:" + fmt.Sprint(s.n))
	case "get":
		return []byte(s.m[o.K])
	default:
		return []byte("err")
	}
}

func (s *regSM) Snapshot() []byte {
	s.mu.Lock()
	defer s.mu.Unlock()
	b, _ := json.Marshal(struct {
		M map[string]string `json:"m"`
		N int               `json:"n"`
	}{s.m, s.n})
	return b
}

func (s *regSM) Restore(b []byte) {
	var st struct {
		M map[string]string `json:"m"`
		N int               `json:"n"`
	}
	_ = json.Unmarshal(b, &st)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.m = st.M
	if s.m == nil {
		s.m = make(map[string]string)
	}
	s.n = st.N
}

func setOp(k, v string) []byte { b, _ := json.Marshal(regOp{Kind: "set", K: k, V: v}); return b }
func getOp(k string) []byte    { b, _ := json.Marshal(regOp{Kind: "get", K: k}); return b }

// smrCluster is a 3-replica SMR deployment over one ring.
type smrCluster struct {
	net      *netsim.Network
	nodes    []*multiring.Node
	replicas []*Replica
	sms      []*regSM
	addrs    []transport.Addr
}

func newSMRCluster(t *testing.T) *smrCluster {
	return newSMRClusterOpt(t, nil)
}

// newSMRClusterOpt builds the cluster with a per-replica config hook
// (pipeline policy, wrapped state machines, ...).
func newSMRClusterOpt(t *testing.T, mod func(i int, rc *ReplicaConfig)) *smrCluster {
	t.Helper()
	net := netsim.New(netsim.WithUniformLatency(20 * time.Microsecond))
	c := &smrCluster{net: net}
	peers := make([]ringpaxos.Peer, 3)
	for i := range peers {
		addr := transport.Addr(fmt.Sprintf("replica-%d", i))
		peers[i] = ringpaxos.Peer{
			ID:    msg.NodeID(i + 1),
			Addr:  addr,
			Roles: ringpaxos.RoleProposer | ringpaxos.RoleAcceptor | ringpaxos.RoleLearner,
		}
		c.addrs = append(c.addrs, addr)
	}
	for i := range peers {
		node := multiring.NewNode(peers[i].ID, net.Endpoint(peers[i].Addr))
		proc, err := node.Join(ringpaxos.Config{
			Ring:         1,
			Peers:        peers,
			Coordinator:  peers[0].ID,
			Log:          storage.NewLog(storage.InMemory),
			BatchDelay:   time.Millisecond,
			RetryTimeout: 50 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		learner := multiring.NewLearner(1, proc)
		sm := newRegSM()
		rc := ReplicaConfig{
			Node:    node,
			Learner: learner,
			SM:      sm,
			Ckpt:    storage.NewCheckpointStore(storage.NewDisk(storage.NullDisk)),
		}
		if mod != nil {
			mod(i, &rc)
		}
		rep := NewReplica(rc)
		node.Service(rep.HandleService)
		node.Start()
		learner.Start()
		rep.Start()
		c.nodes = append(c.nodes, node)
		c.replicas = append(c.replicas, rep)
		c.sms = append(c.sms, sm)
		t.Cleanup(func() {
			rep.Stop()
			learner.Stop()
			node.Stop()
		})
	}
	t.Cleanup(net.Close)
	return c
}

func (c *smrCluster) client(t *testing.T, id uint64) *Client {
	t.Helper()
	ep := c.net.Endpoint(transport.Addr(fmt.Sprintf("client-%d", id)))
	cl := NewClient(ClientConfig{
		ID:        id,
		Endpoint:  ep,
		Proposers: map[msg.RingID][]transport.Addr{1: c.addrs},
		Timeout:   10 * time.Second,
	})
	t.Cleanup(cl.Close)
	return cl
}

func TestClientExecute(t *testing.T) {
	c := newSMRCluster(t)
	cl := c.client(t, 1000)
	res, err := cl.Execute(1, setOp("a", "1"))
	if err != nil {
		t.Fatal(err)
	}
	if string(res) != "ok:1" {
		t.Fatalf("result = %q", res)
	}
	res, err = cl.Execute(1, getOp("a"))
	if err != nil {
		t.Fatal(err)
	}
	if string(res) != "1" {
		t.Fatalf("get = %q", res)
	}
}

func TestReplicasConverge(t *testing.T) {
	c := newSMRCluster(t)
	cl := c.client(t, 1000)
	for i := 0; i < 30; i++ {
		if _, err := cl.Execute(1, setOp(fmt.Sprintf("k%d", i%7), fmt.Sprint(i))); err != nil {
			t.Fatal(err)
		}
	}
	// All replicas must reach the same state.
	deadline := time.Now().Add(5 * time.Second)
	for {
		s0, s1, s2 := c.sms[0].Snapshot(), c.sms[1].Snapshot(), c.sms[2].Snapshot()
		if bytes.Equal(s0, s1) && bytes.Equal(s1, s2) && c.replicas[0].Executed() == 30 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("replicas diverged:\n%s\n%s\n%s", s0, s1, s2)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestDuplicateCommandExecutedOnce(t *testing.T) {
	c := newSMRCluster(t)
	// Inject the same command proposal twice, bypassing the client's retry
	// logic (as a lost-response retransmission would).
	ep := c.net.Endpoint("raw-client")
	cmd := Command{ClientID: 2000, Seq: 1, ReplyTo: ep.Addr(), Op: setOp("x", "1")}
	prop := &msg.Proposal{Ring: 1, ProposerID: 2000, Seq: 1, Payload: cmd.Encode()}
	// Different coordinators dedup by (proposer, seq); send the second copy
	// much later so it is not even batched together.
	_ = ep.Send(c.addrs[0], prop)
	time.Sleep(100 * time.Millisecond)
	// Re-encode a fresh proposal with the same identity via another node.
	_ = ep.Send(c.addrs[1], prop)
	time.Sleep(300 * time.Millisecond)
	if got := c.replicas[0].Executed(); got != 1 {
		t.Fatalf("executed = %d, want 1", got)
	}
}

func TestConcurrentClients(t *testing.T) {
	c := newSMRCluster(t)
	const nClients = 4
	const perClient = 15
	var wg sync.WaitGroup
	for ci := 0; ci < nClients; ci++ {
		cl := c.client(t, uint64(1000+ci))
		wg.Add(1)
		go func(ci int, cl *Client) {
			defer wg.Done()
			for k := 0; k < perClient; k++ {
				if _, err := cl.Execute(1, setOp(fmt.Sprintf("c%d-%d", ci, k), "v")); err != nil {
					t.Errorf("client %d: %v", ci, err)
					return
				}
			}
		}(ci, cl)
	}
	wg.Wait()
	deadline := time.Now().Add(5 * time.Second)
	for c.replicas[2].Executed() < nClients*perClient {
		if time.Now().After(deadline) {
			t.Fatalf("executed = %d", c.replicas[2].Executed())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestCheckpointAndTuples(t *testing.T) {
	c := newSMRCluster(t)
	cl := c.client(t, 1000)
	for i := 0; i < 10; i++ {
		if _, err := cl.Execute(1, setOp("k", fmt.Sprint(i))); err != nil {
			t.Fatal(err)
		}
	}
	rep := c.replicas[0]
	// The client's response may come from another replica; poll until this
	// replica has applied everything.
	var applied []msg.RingInstance
	deadline := time.Now().Add(5 * time.Second)
	for {
		applied = rep.AppliedTuple()
		if len(applied) == 1 && applied[0].Instance > 0 && rep.Executed() >= 10 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("applied tuple = %+v (executed %d)", applied, rep.Executed())
		}
		time.Sleep(2 * time.Millisecond)
	}
	if applied[0].Ring != 1 {
		t.Fatalf("applied tuple = %+v", applied)
	}
	if len(rep.SafeTuple()) != 0 {
		t.Fatalf("safe tuple before checkpoint = %+v", rep.SafeTuple())
	}
	rep.Checkpoint()
	safe := rep.SafeTuple()
	if len(safe) != 1 || safe[0].Instance == 0 {
		t.Fatalf("safe tuple = %+v", safe)
	}
	if rep.Checkpoints() != 1 {
		t.Fatalf("checkpoints = %d", rep.Checkpoints())
	}
}

func TestCheckpointRestoresDedupAndState(t *testing.T) {
	c := newSMRCluster(t)
	cl := c.client(t, 3000)
	if _, err := cl.Execute(1, setOp("a", "42")); err != nil {
		t.Fatal(err)
	}
	rep := c.replicas[0]
	deadline := time.Now().Add(5 * time.Second)
	for rep.Executed() < 1 {
		if time.Now().After(deadline) {
			t.Fatal("replica 0 never executed")
		}
		time.Sleep(2 * time.Millisecond)
	}
	rep.Checkpoint()
	ck, ok := storageLoad(rep)
	if !ok {
		t.Fatal("no checkpoint")
	}
	// Install into a fresh replica shell and check state + dedup carry over.
	sm2 := newRegSM()
	rep2 := NewReplica(ReplicaConfig{
		Node:    c.nodes[0],
		Learner: multiring.NewLearner(1),
		SM:      sm2,
	})
	rep2.InstallCheckpoint(ck)
	if got := sm2.Execute(getOp("a")); string(got) != "42" {
		t.Fatalf("restored get = %q", got)
	}
	rep2.mu.Lock()
	entry, ok := rep2.dedup[3000]
	rep2.mu.Unlock()
	if !ok || entry.seq != 1 {
		t.Fatalf("dedup not restored: %+v %v", entry, ok)
	}
	tuple := rep2.AppliedTuple()
	if len(tuple) != 1 || tuple[0].Instance == 0 {
		t.Fatalf("restored tuple = %+v", tuple)
	}
}

func storageLoad(r *Replica) (storage.Checkpoint, bool) {
	return r.cfg.Ckpt.Load()
}

func TestExecuteGather(t *testing.T) {
	c := newSMRCluster(t)
	cl := c.client(t, 1000)
	// All three replicas reply to any command on ring 1; classify by the
	// first byte of the result to emulate partition tags. Here every result
	// is identical, so gather with want=1 completes.
	res, err := cl.ExecuteGather(1, setOp("g", "1"), 1, func(b []byte) (int, bool) {
		return 0, true
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 {
		t.Fatalf("results = %v", res)
	}
}

func TestClientNoProposers(t *testing.T) {
	net := netsim.New()
	defer net.Close()
	cl := NewClient(ClientConfig{ID: 1, Endpoint: net.Endpoint("c"), Proposers: nil})
	defer cl.Close()
	if _, err := cl.Execute(1, []byte("x")); err == nil {
		t.Fatal("expected error with no proposers")
	}
}

func TestCommandRoundTrip(t *testing.T) {
	c := Command{ClientID: 7, Seq: 9, ReplyTo: "client-addr", Op: []byte("payload")}
	got, err := DecodeCommand(c.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.ClientID != 7 || got.Seq != 9 || got.ReplyTo != "client-addr" || string(got.Op) != "payload" {
		t.Fatalf("round trip = %+v", got)
	}
}

func TestCommandRoundTripProperty(t *testing.T) {
	f := func(id, seq uint64, addr string, op []byte) bool {
		if len(addr) > 1<<15 {
			addr = addr[:1<<15]
		}
		c := Command{ClientID: id, Seq: seq, ReplyTo: transport.Addr(addr), Op: op}
		got, err := DecodeCommand(c.Encode())
		if err != nil {
			return false
		}
		return got.ClientID == id && got.Seq == seq &&
			got.ReplyTo == transport.Addr(addr) && bytes.Equal(got.Op, op)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestCommandDecodeErrors(t *testing.T) {
	if _, err := DecodeCommand(nil); err == nil {
		t.Fatal("nil should fail")
	}
	if _, err := DecodeCommand(make([]byte, 17)); err == nil {
		t.Fatal("short should fail")
	}
	// Address length pointing past the end.
	b := make([]byte, 18)
	b[16] = 0xFF
	b[17] = 0xFF
	if _, err := DecodeCommand(b); err == nil {
		t.Fatal("overlong addr should fail")
	}
}

func TestReplicaStateCodec(t *testing.T) {
	dedup := map[uint64]clientEntry{
		1: {seq: 5, bits: 0b1011, result: []byte("r1")},
		9: {seq: 2, bits: 1, result: nil},
	}
	enc := encodeReplicaState(encodeDedup(dedup), encodeLeaseTable(leaseTable{}), []byte("sm-state"))
	dRaw, leaseRaw, sm, err := decodeReplicaState(enc)
	if err != nil {
		t.Fatal(err)
	}
	if string(sm) != "sm-state" {
		t.Fatalf("sm = %q", sm)
	}
	got := decodeDedup(dRaw)
	if len(got) != 2 || got[1].seq != 5 || got[1].bits != 0b1011 || string(got[1].result) != "r1" || got[9].seq != 2 {
		t.Fatalf("dedup = %+v", got)
	}
	if lt, ok := decodeLeaseTable(leaseRaw); !ok || lt.active || lt.holder != 0 {
		t.Fatalf("lease = %+v ok=%v", lt, ok)
	}
	if _, _, _, err := decodeReplicaState([]byte{0, 0}); err == nil {
		t.Fatal("short state should fail")
	}
}

// TestDedupWindowCrossRingInversion covers the executed-sequence window:
// a client's commands can reach a replica over several rings, and the
// deterministic merge may deliver a later sequence before an earlier one.
// The earlier command must still execute exactly once, while genuine
// retransmitted duplicates stay suppressed.
func TestDedupWindowCrossRingInversion(t *testing.T) {
	var e clientEntry
	// Seq 6 (e.g. a partition-ring insert) delivered first.
	if e.executed(6) {
		t.Fatal("fresh seq 6 marked executed")
	}
	e = e.record(6, []byte("r6"))
	// Seq 5 (e.g. the global-ring split commit) delivered after: inverted,
	// never executed here — must run.
	if e.executed(5) {
		t.Fatal("inverted seq 5 swallowed as duplicate")
	}
	e = e.record(5, []byte("r5"))
	// Both are now duplicates; the cached result is the highest seq's.
	if !e.executed(5) || !e.executed(6) {
		t.Fatal("executed seqs not marked")
	}
	if string(e.result) != "r6" {
		t.Fatalf("cached result = %q", e.result)
	}
	// Far-future seq resets the window; ancient seqs count as executed.
	e = e.record(200, []byte("r200"))
	if e.executed(199) {
		t.Fatal("unseen seq 199 inside window marked executed")
	}
	if !e.executed(100) {
		t.Fatal("seq beyond the window should count as executed")
	}
	if !e.executed(200) || e.seq != 200 {
		t.Fatalf("entry = %+v", e)
	}
}
