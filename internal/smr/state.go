package smr

import (
	"encoding/binary"
	"sort"
)

// Replica checkpoints wrap the state machine's snapshot with the replica's
// own metadata (the client-dedup table and the replicated lease table),
// framed as:
//
//	u32 dedupLen | dedup bytes | u32 leaseLen | lease bytes | sm snapshot
//
// dedup bytes are repeated (u64 clientID, u64 seq, u64 bits, u32
// resultLen, result); bits is the executed-sequence window bitmap (see
// clientEntry). lease bytes encode the leaseTable (see lease.go) — the
// replicated half of the ring lease, which recovers identically on every
// replica; the process-local serve/silence windows deliberately do not.

//mrp:codec replicastate encode
func encodeReplicaState(dedup, lease, smState []byte) []byte {
	out := make([]byte, 0, 4+len(dedup)+4+len(lease)+len(smState))
	out = binary.BigEndian.AppendUint32(out, uint32(len(dedup)))
	out = append(out, dedup...)
	out = binary.BigEndian.AppendUint32(out, uint32(len(lease)))
	out = append(out, lease...)
	out = append(out, smState...)
	return out
}

//mrp:codec replicastate decode
func decodeReplicaState(b []byte) (dedup, lease, smState []byte, err error) {
	if len(b) < 4 {
		return nil, nil, nil, ErrBadCommand
	}
	n := int(binary.BigEndian.Uint32(b))
	if len(b) < 4+n+4 {
		return nil, nil, nil, ErrBadCommand
	}
	dedup = b[4 : 4+n]
	b = b[4+n:]
	ln := int(binary.BigEndian.Uint32(b))
	if len(b) < 4+ln {
		return nil, nil, nil, ErrBadCommand
	}
	return dedup, b[4 : 4+ln], b[4+ln:], nil
}

// encodeDedup serializes the dedup table in ascending client-ID order:
// the bytes land in the checkpoint, and replicas compare checkpoints by
// content, so map iteration order must not leak into the encoding.
//
//mrp:codec dedup encode
func encodeDedup(m map[uint64]clientEntry) []byte {
	ids := make([]uint64, 0, len(m))
	for id := range m {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	var out []byte
	for _, id := range ids {
		e := m[id]
		out = binary.BigEndian.AppendUint64(out, id)
		out = binary.BigEndian.AppendUint64(out, e.seq)
		out = binary.BigEndian.AppendUint64(out, e.bits)
		out = binary.BigEndian.AppendUint32(out, uint32(len(e.result)))
		out = append(out, e.result...)
	}
	return out
}

//mrp:codec dedup decode
func decodeDedup(b []byte) map[uint64]clientEntry {
	m := make(map[uint64]clientEntry)
	for len(b) >= 28 {
		id := binary.BigEndian.Uint64(b)
		seq := binary.BigEndian.Uint64(b[8:])
		bits := binary.BigEndian.Uint64(b[16:])
		n := int(binary.BigEndian.Uint32(b[24:]))
		if len(b) < 28+n {
			break
		}
		m[id] = clientEntry{seq: seq, bits: bits, result: append([]byte(nil), b[28:28+n]...)}
		b = b[28+n:]
	}
	return m
}
