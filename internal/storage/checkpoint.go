package storage

import (
	"sync"

	"mrp/internal/msg"
)

// Checkpoint is one replica checkpoint: the tuple k_p identifying it (one
// entry per subscribed multicast group, ordered by group identifier —
// Predicate 1 of the paper), the schema epoch the state was captured under
// (0 for services without a versioned schema), and the serialized service
// state. The epoch travels with the checkpoint through the recovery
// exchange so a recovering replica learns how far behind a repartitioning
// its snapshot is before replay begins.
type Checkpoint struct {
	Tuple []msg.RingInstance
	Epoch uint64
	State []byte
}

// TupleLE reports a <= b pointwise over the rings both tuples mention.
// Checkpoint tuples of replicas in the same partition are totally ordered
// (Predicate 1 establishes this), so pointwise comparison is a total order
// within a partition. Recovery decisions hang off this comparison, so
// every replica must evaluate it identically.
//
//mrp:deterministic
func TupleLE(a, b []msg.RingInstance) bool {
	bi := make(map[msg.RingID]msg.Instance, len(b))
	for _, e := range b {
		bi[e.Ring] = e.Instance
	}
	for _, e := range a {
		if other, ok := bi[e.Ring]; ok && e.Instance > other {
			return false
		}
	}
	return true
}

// TupleGet returns the instance recorded for a ring in a tuple (0 if none).
func TupleGet(tuple []msg.RingInstance, ring msg.RingID) msg.Instance {
	for _, e := range tuple {
		if e.Ring == ring {
			return e.Instance
		}
	}
	return 0
}

// CheckpointStore persists a replica's checkpoints to stable storage.
// Writes are synchronous (the paper's replicas write checkpoints
// synchronously to disk so acceptors may trim their logs afterwards,
// Section 7.2). Only the most recent checkpoint is retained.
type CheckpointStore struct {
	disk *Disk

	mu   sync.Mutex
	last *Checkpoint
}

// NewCheckpointStore creates a store backed by the given device (use
// NewDisk(NullDisk) for latency-free tests).
func NewCheckpointStore(disk *Disk) *CheckpointStore {
	return &CheckpointStore{disk: disk}
}

// Save synchronously persists a checkpoint, replacing the previous one.
// The tuple is copied; the state slice is retained and must not be modified
// by the caller afterwards.
//
// Save is a persistence sink: the checkpoint bytes are fully determined
// before the call, and the simulated device timing below is free to read
// real clocks.
//
//mrp:nondeterministic
func (s *CheckpointStore) Save(ckpt Checkpoint) {
	tuple := make([]msg.RingInstance, len(ckpt.Tuple))
	copy(tuple, ckpt.Tuple)
	stored := Checkpoint{Tuple: tuple, Epoch: ckpt.Epoch, State: ckpt.State}
	s.disk.SyncWrite(len(ckpt.State) + len(tuple)*10)
	s.mu.Lock()
	s.last = &stored
	s.mu.Unlock()
}

// Load returns the most recent checkpoint, or false if none was saved.
func (s *CheckpointStore) Load() (Checkpoint, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.last == nil {
		return Checkpoint{}, false
	}
	return *s.last, true
}
