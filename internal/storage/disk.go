// Package storage implements the stable-storage substrate of Multi-Ring
// Paxos: the acceptor log (persisted before Phase 1B/2B replies, Section
// 5.1), replica checkpoint stores, and the disk service-time models behind
// the five storage modes evaluated in Figure 3 of the paper (in-memory,
// synchronous and asynchronous writes on harddisks and SSDs).
//
// The paper's testbed used Berkeley DB JE on 7200-RPM harddisks and SSDs;
// here a disk is a calibrated service-time model: synchronous writes pay a
// per-operation commit latency plus transfer time, asynchronous writes are
// buffered and drained at the device bandwidth (a fluid model), blocking
// only when the write-back buffer is full. That captures exactly the two
// effects Figure 3 measures: sync mode is latency-bound by the device,
// async mode is throughput-bound by device bandwidth.
package storage

import (
	"sync"
	"time"
)

// DiskModel describes a storage device's service times.
type DiskModel struct {
	// SyncLatency is the per-operation commit latency for synchronous
	// writes (seek + rotation for HDDs, flash program for SSDs).
	SyncLatency time.Duration
	// Bandwidth is the sustained sequential write bandwidth in bytes/s.
	Bandwidth int64
	// BufferBytes is the write-back buffer capacity for asynchronous
	// writes; once the backlog exceeds it, writers block.
	BufferBytes int64
}

// Scale returns a copy of the model with all service times multiplied by f
// (bandwidth divided by f). Used to shrink experiment wall-clock time while
// preserving ratios between devices.
func (m DiskModel) Scale(f float64) DiskModel {
	if f <= 0 {
		f = 1
	}
	return DiskModel{
		SyncLatency: time.Duration(float64(m.SyncLatency) * f),
		Bandwidth:   int64(float64(m.Bandwidth) / f),
		BufferBytes: m.BufferBytes,
	}
}

// Device models from the paper's hardware (Section 8.1): 7200-RPM 4 TB
// harddisks and 240 GB SSDs.
var (
	// HDD: ~4 ms per synchronous commit (average rotational delay of a
	// 7200-RPM disk with track-buffered writes; calibrated so that the
	// paper's Figure 3 claim — >90% of 32 KB sync-disk requests under
	// 10 ms across two serialized acceptor persists — holds), ~120 MB/s
	// sequential.
	HDD = DiskModel{SyncLatency: 4 * time.Millisecond, Bandwidth: 120 << 20, BufferBytes: 64 << 20}
	// SSD: ~250 µs per synchronous commit, ~450 MB/s sequential.
	SSD = DiskModel{SyncLatency: 250 * time.Microsecond, Bandwidth: 450 << 20, BufferBytes: 64 << 20}
	// NullDisk completes every operation instantly (for in-memory mode).
	NullDisk = DiskModel{}
)

// Disk is one simulated storage device. Multiple writers (e.g. the rings of
// Figure 6 sharing one disk, or each ring with its own disk) contend on the
// same device queue.
type Disk struct {
	model DiskModel

	mu sync.Mutex
	// free is when the device completes its current queue (sync writes).
	free time.Time
	// backlog is the async write-back buffer occupancy in bytes.
	backlog    int64
	lastDrain  time.Time
	syncOps    uint64
	asyncOps   uint64
	writeBytes uint64
}

// NewDisk creates a device with the given model.
func NewDisk(model DiskModel) *Disk {
	return &Disk{model: model, lastDrain: time.Now()}
}

// Model returns the device's service-time model.
func (d *Disk) Model() DiskModel { return d.model }

// SyncWrite persists n bytes synchronously: the caller blocks for the
// device queue, the commit latency, and the transfer time.
func (d *Disk) SyncWrite(n int) {
	if d == nil || d.model.SyncLatency == 0 && d.model.Bandwidth == 0 {
		return
	}
	svc := d.model.SyncLatency
	if d.model.Bandwidth > 0 {
		svc += time.Duration(float64(n) / float64(d.model.Bandwidth) * float64(time.Second))
	}
	d.mu.Lock()
	now := time.Now()
	start := now
	if d.free.After(start) {
		start = d.free
	}
	done := start.Add(svc)
	d.free = done
	d.syncOps++
	d.writeBytes += uint64(n)
	d.mu.Unlock()
	if wait := time.Until(done); wait > 0 {
		time.Sleep(wait)
	}
}

// AsyncWrite buffers n bytes for background write-back. It returns
// immediately unless the write-back buffer is full, in which case it blocks
// until the device has drained enough backlog (fluid model at the device
// bandwidth).
func (d *Disk) AsyncWrite(n int) {
	if d == nil || d.model.Bandwidth == 0 {
		return
	}
	d.mu.Lock()
	now := time.Now()
	// Drain the backlog at device bandwidth since the last update.
	drained := int64(now.Sub(d.lastDrain).Seconds() * float64(d.model.Bandwidth))
	if drained > 0 {
		d.backlog -= drained
		if d.backlog < 0 {
			d.backlog = 0
		}
		d.lastDrain = now
	}
	d.backlog += int64(n)
	d.asyncOps++
	d.writeBytes += uint64(n)
	over := d.backlog - d.model.BufferBytes
	d.mu.Unlock()
	if over > 0 {
		// Block until the overflow would have drained.
		time.Sleep(time.Duration(float64(over) / float64(d.model.Bandwidth) * float64(time.Second)))
	}
}

// Stats reports cumulative operation and byte counts.
func (d *Disk) Stats() (syncOps, asyncOps, bytes uint64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.syncOps, d.asyncOps, d.writeBytes
}
