package storage

import (
	"fmt"
	"sort"
	"sync"

	"mrp/internal/msg"
)

// Mode selects how the acceptor log persists records — the five storage
// modes of Figure 3.
type Mode int

// Storage modes.
const (
	InMemory Mode = iota
	AsyncHDD
	AsyncSSD
	SyncHDD
	SyncSSD
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case InMemory:
		return "In Memory"
	case AsyncHDD:
		return "Async Disk"
	case AsyncSSD:
		return "Async Disk (SSD)"
	case SyncHDD:
		return "Sync Disk"
	case SyncSSD:
		return "Sync Disk (SSD)"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// IsSync reports whether the mode persists each record before returning.
func (m Mode) IsSync() bool { return m == SyncHDD || m == SyncSSD }

// DiskFor returns the device model behind a mode.
func (m Mode) DiskFor() DiskModel {
	switch m {
	case AsyncHDD, SyncHDD:
		return HDD
	case AsyncSSD, SyncSSD:
		return SSD
	default:
		return NullDisk
	}
}

// Record is what an acceptor persists for one consensus instance before
// answering a Phase 1B or Phase 2B message (Section 5.1): the highest
// promised round, the highest voted round, and the voted value.
type Record struct {
	Rnd     msg.Ballot
	VRnd    msg.Ballot
	Value   msg.Value
	Decided bool
}

// recordOverhead approximates the on-disk framing per record.
const recordOverhead = 32

// Log is an acceptor's stable storage for one ring: a map from consensus
// instance to Record with an explicit low watermark advanced by Trim. All
// methods are safe for concurrent use.
//
// The paper's acceptors used pre-allocated in-memory buffers of 15000 slots
// × 32 KB and Berkeley DB for disk modes; here the in-memory index is a map
// (the slot pre-allocation was a JVM garbage-collection optimization, not
// protocol behaviour) and the disk is a service-time model.
type Log struct {
	mode Mode
	disk *Disk

	mu      sync.Mutex
	records map[msg.Instance]Record
	low     msg.Instance // instances <= low were trimmed
	high    msg.Instance // highest instance ever stored
}

// NewLog creates an acceptor log in the given mode with its own device.
func NewLog(mode Mode) *Log {
	return NewLogOnDisk(mode, NewDisk(mode.DiskFor()))
}

// NewLogOnDisk creates an acceptor log that shares the given device with
// other logs (used by the vertical-scalability experiment, where the
// ring-to-disk mapping is the parameter under study).
func NewLogOnDisk(mode Mode, disk *Disk) *Log {
	return &Log{
		mode:    mode,
		disk:    disk,
		records: make(map[msg.Instance]Record),
	}
}

// Mode returns the log's storage mode.
func (l *Log) Mode() Mode { return l.mode }

// Disk returns the underlying device.
func (l *Log) Disk() *Disk { return l.disk }

// Put persists the record for an instance. In synchronous modes it blocks
// until the device has committed the write; in asynchronous modes it blocks
// only when the device's write-back buffer is full. Records at or below the
// low watermark are rejected (the instance was already trimmed).
func (l *Log) Put(inst msg.Instance, rec Record) error {
	l.mu.Lock()
	if inst <= l.low {
		l.mu.Unlock()
		return fmt.Errorf("storage: instance %d already trimmed (low=%d)", inst, l.low)
	}
	l.records[inst] = rec
	if inst > l.high {
		l.high = inst
	}
	l.mu.Unlock()

	n := recordOverhead + rec.Value.PayloadBytes()
	switch l.mode {
	case SyncHDD, SyncSSD:
		l.disk.SyncWrite(n)
	case AsyncHDD, AsyncSSD:
		l.disk.AsyncWrite(n)
	}
	return nil
}

// Get returns the record for an instance, if present.
func (l *Log) Get(inst msg.Instance) (Record, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	r, ok := l.records[inst]
	return r, ok
}

// Range calls fn for each stored instance in [from, to), in ascending
// order, and reports whether any instance in the range was already trimmed.
// Ranges spanning far more instance numbers than live records (common when
// rate-leveling skips consume large instance ranges) are served by sorting
// the live keys instead of walking every instance number.
//
// Replay served from this walk must be ascending and identical everywhere,
// so the function is in deterministic scope.
//
//mrp:deterministic
func (l *Log) Range(from, to msg.Instance, fn func(msg.Instance, Record)) (trimmed bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if from <= l.low {
		trimmed = true
		from = l.low + 1
	}
	if to < from {
		return trimmed
	}
	span := uint64(to - from)
	if span <= uint64(len(l.records)) {
		for i := from; i < to; i++ {
			if r, ok := l.records[i]; ok {
				fn(i, r)
			}
		}
		return trimmed
	}
	keys := make([]msg.Instance, 0, len(l.records))
	for i := range l.records {
		if i >= from && i < to {
			keys = append(keys, i)
		}
	}
	sort.Slice(keys, func(a, b int) bool { return keys[a] < keys[b] })
	for _, i := range keys {
		fn(i, l.records[i])
	}
	return trimmed
}

// Trim deletes all records at or below upTo (the coordinator's K[x]_T from
// Predicate 2) and advances the low watermark.
func (l *Log) Trim(upTo msg.Instance) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if upTo <= l.low {
		return
	}
	for i := l.low + 1; i <= upTo; i++ {
		delete(l.records, i)
	}
	l.low = upTo
}

// MarkDecided records that an instance decided the given value, so the
// acceptor can serve retransmission requests (LearnReq) for it. Decisions
// are derivable from a majority of acceptor votes, so this index update is
// not charged to the device. Marking below the low watermark is a no-op.
func (l *Log) MarkDecided(inst msg.Instance, v msg.Value) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if inst <= l.low {
		return
	}
	r := l.records[inst]
	r.Value = v
	r.Decided = true
	l.records[inst] = r
	if inst > l.high {
		l.high = inst
	}
}

// LowWatermark returns the highest trimmed instance (0 if never trimmed).
func (l *Log) LowWatermark() msg.Instance {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.low
}

// HighWatermark returns the highest instance ever stored.
func (l *Log) HighWatermark() msg.Instance {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.high
}

// Len returns the number of live records.
func (l *Log) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.records)
}
