package storage

import (
	"sync"
	"testing"
	"testing/quick"
	"time"

	"mrp/internal/msg"
)

func rec(b msg.Ballot, payload string) Record {
	return Record{Rnd: b, VRnd: b, Value: msg.Value{Batch: []msg.Entry{{Data: []byte(payload)}}}}
}

func TestLogPutGet(t *testing.T) {
	l := NewLog(InMemory)
	if err := l.Put(1, rec(1, "a")); err != nil {
		t.Fatal(err)
	}
	r, ok := l.Get(1)
	if !ok || string(r.Value.Batch[0].Data) != "a" {
		t.Fatalf("get = %+v, %v", r, ok)
	}
	if _, ok := l.Get(2); ok {
		t.Fatal("got record for missing instance")
	}
	if l.HighWatermark() != 1 || l.Len() != 1 {
		t.Fatalf("high=%d len=%d", l.HighWatermark(), l.Len())
	}
}

func TestLogTrim(t *testing.T) {
	l := NewLog(InMemory)
	for i := msg.Instance(1); i <= 10; i++ {
		if err := l.Put(i, rec(1, "x")); err != nil {
			t.Fatal(err)
		}
	}
	l.Trim(5)
	if l.LowWatermark() != 5 {
		t.Fatalf("low = %d", l.LowWatermark())
	}
	if _, ok := l.Get(5); ok {
		t.Fatal("instance 5 should be trimmed")
	}
	if _, ok := l.Get(6); !ok {
		t.Fatal("instance 6 should survive")
	}
	// Re-inserting a trimmed instance must fail.
	if err := l.Put(3, rec(1, "y")); err == nil {
		t.Fatal("put below watermark should fail")
	}
	// Trimming backwards is a no-op.
	l.Trim(2)
	if l.LowWatermark() != 5 {
		t.Fatalf("low regressed to %d", l.LowWatermark())
	}
}

func TestLogRange(t *testing.T) {
	l := NewLog(InMemory)
	for i := msg.Instance(1); i <= 10; i++ {
		_ = l.Put(i, rec(msg.Ballot(i), "x"))
	}
	l.Trim(3)
	var got []msg.Instance
	trimmed := l.Range(1, 8, func(i msg.Instance, _ Record) {
		got = append(got, i)
	})
	if !trimmed {
		t.Fatal("range over trimmed prefix should report trimmed")
	}
	want := []msg.Instance{4, 5, 6, 7}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
	if l.Range(6, 8, func(msg.Instance, Record) {}) {
		t.Fatal("untrimmed range reported trimmed")
	}
}

func TestLogConcurrent(t *testing.T) {
	l := NewLog(InMemory)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(base int) {
			defer wg.Done()
			for i := 0; i < 250; i++ {
				_ = l.Put(msg.Instance(base*250+i+1), rec(1, "v"))
			}
		}(g)
	}
	wg.Wait()
	if l.Len() != 1000 {
		t.Fatalf("len = %d, want 1000", l.Len())
	}
}

func TestModeStrings(t *testing.T) {
	names := map[Mode]string{
		InMemory: "In Memory",
		AsyncHDD: "Async Disk",
		AsyncSSD: "Async Disk (SSD)",
		SyncHDD:  "Sync Disk",
		SyncSSD:  "Sync Disk (SSD)",
	}
	for m, want := range names {
		if m.String() != want {
			t.Errorf("%d.String() = %q, want %q", m, m.String(), want)
		}
	}
	if !SyncHDD.IsSync() || !SyncSSD.IsSync() || InMemory.IsSync() || AsyncHDD.IsSync() {
		t.Error("IsSync wrong")
	}
}

func TestSyncWriteLatency(t *testing.T) {
	model := DiskModel{SyncLatency: 5 * time.Millisecond, Bandwidth: 1 << 30}
	d := NewDisk(model)
	start := time.Now()
	d.SyncWrite(100)
	if el := time.Since(start); el < 5*time.Millisecond {
		t.Fatalf("sync write returned in %v, want >= 5ms", el)
	}
}

func TestSyncWritesQueue(t *testing.T) {
	// Two concurrent sync writes on one device must serialize.
	model := DiskModel{SyncLatency: 10 * time.Millisecond, Bandwidth: 1 << 30}
	d := NewDisk(model)
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			d.SyncWrite(10)
		}()
	}
	wg.Wait()
	if el := time.Since(start); el < 20*time.Millisecond {
		t.Fatalf("2 serialized sync writes took %v, want >= 20ms", el)
	}
}

func TestAsyncWriteFastUntilBufferFull(t *testing.T) {
	model := DiskModel{Bandwidth: 1 << 20, BufferBytes: 1 << 20} // 1MB/s, 1MB buffer
	d := NewDisk(model)
	start := time.Now()
	d.AsyncWrite(512 << 10) // fits in buffer: immediate
	if el := time.Since(start); el > 50*time.Millisecond {
		t.Fatalf("buffered async write took %v", el)
	}
	start = time.Now()
	d.AsyncWrite(1 << 20) // overflows by ~512KB: must block ~0.5s
	if el := time.Since(start); el < 200*time.Millisecond {
		t.Fatalf("overflowing async write returned in %v, want blocking", el)
	}
}

func TestDiskStats(t *testing.T) {
	d := NewDisk(DiskModel{SyncLatency: time.Microsecond, Bandwidth: 1 << 30, BufferBytes: 1 << 30})
	d.SyncWrite(10)
	d.AsyncWrite(20)
	s, a, b := d.Stats()
	if s != 1 || a != 1 || b != 30 {
		t.Fatalf("stats = %d %d %d", s, a, b)
	}
}

func TestDiskModelScale(t *testing.T) {
	m := HDD.Scale(0.5)
	if m.SyncLatency != 2*time.Millisecond {
		t.Fatalf("scaled latency = %v", m.SyncLatency)
	}
	if m.Bandwidth != HDD.Bandwidth*2 {
		t.Fatalf("scaled bandwidth = %d", m.Bandwidth)
	}
	if HDD.Scale(0) != HDD {
		t.Fatal("scale 0 should be identity")
	}
}

func TestNilDiskIsNoop(t *testing.T) {
	var d *Disk
	d.SyncWrite(10)
	d.AsyncWrite(10)
}

func TestLogModesPersist(t *testing.T) {
	// All modes must store records retrievably; only service time differs.
	fast := DiskModel{SyncLatency: time.Microsecond, Bandwidth: 1 << 30, BufferBytes: 1 << 30}
	for _, mode := range []Mode{InMemory, AsyncHDD, AsyncSSD, SyncHDD, SyncSSD} {
		l := NewLogOnDisk(mode, NewDisk(fast))
		if err := l.Put(1, rec(2, "v")); err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		if _, ok := l.Get(1); !ok {
			t.Fatalf("%v: record missing", mode)
		}
	}
}

func TestCheckpointStore(t *testing.T) {
	s := NewCheckpointStore(NewDisk(NullDisk))
	if _, ok := s.Load(); ok {
		t.Fatal("empty store returned a checkpoint")
	}
	tuple := []msg.RingInstance{{Ring: 1, Instance: 10}, {Ring: 2, Instance: 5}}
	s.Save(Checkpoint{Tuple: tuple, State: []byte("s1")})
	ck, ok := s.Load()
	if !ok || string(ck.State) != "s1" {
		t.Fatalf("load = %+v, %v", ck, ok)
	}
	// Mutating the caller's tuple must not affect the stored copy.
	tuple[0].Instance = 999
	ck, _ = s.Load()
	if ck.Tuple[0].Instance != 10 {
		t.Fatal("stored tuple aliases caller slice")
	}
	s.Save(Checkpoint{Tuple: tuple, State: []byte("s2")})
	ck, _ = s.Load()
	if string(ck.State) != "s2" {
		t.Fatal("save did not replace")
	}
}

func TestTupleLE(t *testing.T) {
	a := []msg.RingInstance{{Ring: 1, Instance: 5}, {Ring: 2, Instance: 3}}
	b := []msg.RingInstance{{Ring: 1, Instance: 6}, {Ring: 2, Instance: 3}}
	if !TupleLE(a, b) {
		t.Fatal("a <= b expected")
	}
	if TupleLE(b, a) {
		t.Fatal("b <= a unexpected")
	}
	if !TupleLE(a, a) {
		t.Fatal("reflexivity")
	}
	// Rings absent from b are ignored (different subscription sets are
	// never compared in practice: replicas of one partition subscribe to
	// the same groups).
	c := []msg.RingInstance{{Ring: 9, Instance: 100}}
	if !TupleLE(c, a) {
		t.Fatal("disjoint rings should compare as <=")
	}
}

// Property: Predicate 1 of the paper — within a partition, checkpoint
// tuples ordered by round-robin delivery are totally ordered by TupleLE.
func TestTupleTotalOrderProperty(t *testing.T) {
	f := func(deltas []uint8) bool {
		// Simulate a replica taking checkpoints as it delivers messages
		// round-robin from rings 1..3; each checkpoint's tuple must be >=
		// the previous one.
		tuple := []msg.RingInstance{{Ring: 1, Instance: 0}, {Ring: 2, Instance: 0}, {Ring: 3, Instance: 0}}
		prev := []msg.RingInstance{{Ring: 1, Instance: 0}, {Ring: 2, Instance: 0}, {Ring: 3, Instance: 0}}
		ring := 0
		for _, d := range deltas {
			tuple[ring].Instance += msg.Instance(d % 4)
			ring = (ring + 1) % 3
			if !TupleLE(prev, tuple) {
				return false
			}
			prev = append([]msg.RingInstance(nil), tuple...)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestTupleGet(t *testing.T) {
	tuple := []msg.RingInstance{{Ring: 1, Instance: 5}, {Ring: 7, Instance: 9}}
	if TupleGet(tuple, 7) != 9 {
		t.Fatal("TupleGet(7)")
	}
	if TupleGet(tuple, 3) != 0 {
		t.Fatal("TupleGet missing ring should be 0")
	}
}
