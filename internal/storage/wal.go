package storage

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"

	"mrp/internal/msg"
)

// FileWAL is a real file-backed write-ahead log for acceptor records — the
// stdlib counterpart of the paper's Berkeley DB JE storage (Section 7.1).
// Records are appended as framed, checksummed entries; an in-memory index
// maps instances to the latest record. Sync mode fsyncs per append; async
// mode leaves flushing to the OS (and a final Close).
//
// The simulator benchmarks use the modeled Log instead (service times are
// what the figures measure); FileWAL is for real deployments over tcpnet
// and for durability tests.
type FileWAL struct {
	mu   sync.Mutex
	f    *os.File
	w    *bufio.Writer
	sync bool

	records map[msg.Instance]Record
	low     msg.Instance
	high    msg.Instance
}

// walEntry frame: u32 length | u32 crc | body.
// body: u8 kind | u64 instance | payload.
const (
	walPut  byte = 1
	walTrim byte = 2
	walMark byte = 3
)

// OpenFileWAL opens (or creates) a WAL at path and replays it into memory.
func OpenFileWAL(path string, syncWrites bool) (*FileWAL, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("storage: open wal: %w", err)
	}
	w := &FileWAL{
		f:       f,
		sync:    syncWrites,
		records: make(map[msg.Instance]Record),
	}
	intact, err := w.replay()
	if err != nil {
		_ = f.Close()
		return nil, err
	}
	// Truncate any torn tail left by a crash so future appends stay
	// readable by the next replay.
	if err := f.Truncate(intact); err != nil {
		_ = f.Close()
		return nil, err
	}
	if _, err := f.Seek(intact, io.SeekStart); err != nil {
		_ = f.Close()
		return nil, err
	}
	w.w = bufio.NewWriterSize(f, 1<<16)
	return w, nil
}

// replay loads all intact entries and returns the byte offset of the last
// intact entry's end; a torn tail (partial last write after a crash) ends
// the replay.
func (w *FileWAL) replay() (intact int64, err error) {
	r := bufio.NewReaderSize(w.f, 1<<16)
	for {
		var hdr [8]byte
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			return intact, nil // EOF or torn header: end of intact log
		}
		n := binary.BigEndian.Uint32(hdr[:4])
		crc := binary.BigEndian.Uint32(hdr[4:])
		if n == 0 || n > maxWALBody {
			return intact, nil
		}
		body := make([]byte, n)
		if _, err := io.ReadFull(r, body); err != nil {
			return intact, nil // torn body
		}
		if crc32.ChecksumIEEE(body) != crc {
			return intact, nil // corrupt tail
		}
		w.applyEntry(body)
		intact += int64(8 + n)
	}
}

const maxWALBody = 64 << 20

func (w *FileWAL) applyEntry(body []byte) {
	if len(body) < 9 {
		return
	}
	kind := body[0]
	inst := msg.Instance(binary.BigEndian.Uint64(body[1:]))
	payload := body[9:]
	switch kind {
	case walPut, walMark:
		if inst <= w.low {
			return
		}
		var rec Record
		if len(payload) < 8 {
			return
		}
		rec.Rnd = msg.Ballot(binary.BigEndian.Uint32(payload))
		rec.VRnd = msg.Ballot(binary.BigEndian.Uint32(payload[4:]))
		val, err := msg.Unmarshal(payload[8:])
		if err != nil {
			return
		}
		p2, ok := val.(*msg.Phase2)
		if !ok {
			return
		}
		rec.Value = p2.Value
		rec.Decided = kind == walMark
		if old, exists := w.records[inst]; exists && old.Decided && kind == walPut {
			rec.Decided = true
		}
		w.records[inst] = rec
		if inst > w.high {
			w.high = inst
		}
	case walTrim:
		for i := w.low + 1; i <= inst; i++ {
			delete(w.records, i)
		}
		if inst > w.low {
			w.low = inst
		}
	}
}

// append frames and writes one entry.
func (w *FileWAL) append(kind byte, inst msg.Instance, rec *Record) error {
	body := []byte{kind}
	body = binary.BigEndian.AppendUint64(body, uint64(inst))
	if rec != nil {
		body = binary.BigEndian.AppendUint32(body, uint32(rec.Rnd))
		body = binary.BigEndian.AppendUint32(body, uint32(rec.VRnd))
		// Reuse the message codec for the value by wrapping it in a
		// Phase2 envelope.
		body = append(body, msg.Marshal(&msg.Phase2{Value: rec.Value})...)
	}
	var hdr [8]byte
	binary.BigEndian.PutUint32(hdr[:4], uint32(len(body)))
	binary.BigEndian.PutUint32(hdr[4:], crc32.ChecksumIEEE(body))
	if _, err := w.w.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := w.w.Write(body); err != nil {
		return err
	}
	if w.sync {
		if err := w.w.Flush(); err != nil {
			return err
		}
		return w.f.Sync()
	}
	return nil
}

// Put persists the record for an instance.
func (w *FileWAL) Put(inst msg.Instance, rec Record) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if inst <= w.low {
		return fmt.Errorf("storage: instance %d already trimmed (low=%d)", inst, w.low)
	}
	if err := w.append(walPut, inst, &rec); err != nil {
		return err
	}
	if old, exists := w.records[inst]; exists && old.Decided {
		rec.Decided = true
	}
	w.records[inst] = rec
	if inst > w.high {
		w.high = inst
	}
	return nil
}

// MarkDecided records a decided value for retransmission.
func (w *FileWAL) MarkDecided(inst msg.Instance, v msg.Value) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if inst <= w.low {
		return
	}
	rec := w.records[inst]
	rec.Value = v
	rec.Decided = true
	_ = w.append(walMark, inst, &rec)
	w.records[inst] = rec
	if inst > w.high {
		w.high = inst
	}
}

// Get returns the record for an instance.
func (w *FileWAL) Get(inst msg.Instance) (Record, bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	r, ok := w.records[inst]
	return r, ok
}

// Trim deletes all records at or below upTo and logs the trim point.
func (w *FileWAL) Trim(upTo msg.Instance) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if upTo <= w.low {
		return
	}
	_ = w.append(walTrim, upTo, nil)
	for i := w.low + 1; i <= upTo; i++ {
		delete(w.records, i)
	}
	w.low = upTo
}

// LowWatermark returns the highest trimmed instance.
func (w *FileWAL) LowWatermark() msg.Instance {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.low
}

// HighWatermark returns the highest stored instance.
func (w *FileWAL) HighWatermark() msg.Instance {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.high
}

// Len returns the number of live records.
func (w *FileWAL) Len() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return len(w.records)
}

// Close flushes and closes the file.
func (w *FileWAL) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if err := w.w.Flush(); err != nil {
		return err
	}
	return w.f.Close()
}
