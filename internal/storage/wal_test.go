package storage

import (
	"os"
	"path/filepath"
	"testing"

	"mrp/internal/msg"
)

func walRec(b msg.Ballot, data string, decided bool) Record {
	return Record{
		Rnd:  b,
		VRnd: b,
		Value: msg.Value{Batch: []msg.Entry{
			{Proposer: 1, Seq: uint64(b), Data: []byte(data)},
		}},
		Decided: decided,
	}
}

func TestFileWALPutGet(t *testing.T) {
	path := filepath.Join(t.TempDir(), "acceptor.wal")
	w, err := OpenFileWAL(path, false)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if err := w.Put(1, walRec(3, "hello", false)); err != nil {
		t.Fatal(err)
	}
	r, ok := w.Get(1)
	if !ok || r.Rnd != 3 || string(r.Value.Batch[0].Data) != "hello" {
		t.Fatalf("get = %+v %v", r, ok)
	}
	if w.HighWatermark() != 1 || w.Len() != 1 {
		t.Fatalf("high=%d len=%d", w.HighWatermark(), w.Len())
	}
}

func TestFileWALReplayAfterReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "acceptor.wal")
	w, err := OpenFileWAL(path, true)
	if err != nil {
		t.Fatal(err)
	}
	for i := msg.Instance(1); i <= 10; i++ {
		if err := w.Put(i, walRec(msg.Ballot(i), "v", false)); err != nil {
			t.Fatal(err)
		}
	}
	w.MarkDecided(4, msg.Value{Batch: []msg.Entry{{Data: []byte("decided")}}})
	w.Trim(2)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: state must survive.
	w2, err := OpenFileWAL(path, true)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if w2.LowWatermark() != 2 {
		t.Fatalf("low = %d", w2.LowWatermark())
	}
	if w2.HighWatermark() != 10 {
		t.Fatalf("high = %d", w2.HighWatermark())
	}
	if _, ok := w2.Get(2); ok {
		t.Fatal("trimmed instance survived replay")
	}
	r, ok := w2.Get(4)
	if !ok || !r.Decided || string(r.Value.Batch[0].Data) != "decided" {
		t.Fatalf("decided record = %+v %v", r, ok)
	}
	r, ok = w2.Get(7)
	if !ok || r.Rnd != 7 {
		t.Fatalf("record 7 = %+v %v", r, ok)
	}
	// Put below the replayed watermark must fail.
	if err := w2.Put(1, walRec(1, "x", false)); err == nil {
		t.Fatal("put below low watermark succeeded after replay")
	}
}

func TestFileWALTornTailTolerated(t *testing.T) {
	path := filepath.Join(t.TempDir(), "acceptor.wal")
	w, err := OpenFileWAL(path, true)
	if err != nil {
		t.Fatal(err)
	}
	for i := msg.Instance(1); i <= 5; i++ {
		if err := w.Put(i, walRec(msg.Ballot(i), "v", false)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash mid-write: append garbage and truncate part of it.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0, 0, 0, 42, 1, 2}); err != nil { // torn header+body
		t.Fatal(err)
	}
	_ = f.Close()

	w2, err := OpenFileWAL(path, true)
	if err != nil {
		t.Fatal(err)
	}
	if w2.Len() != 5 {
		t.Fatalf("len after torn tail = %d", w2.Len())
	}
	if _, ok := w2.Get(5); !ok {
		t.Fatal("record 5 lost")
	}
	// The torn tail was truncated: appends after recovery must survive the
	// next replay.
	if err := w2.Put(6, walRec(6, "post-crash", false)); err != nil {
		t.Fatal(err)
	}
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}
	w3, err := OpenFileWAL(path, true)
	if err != nil {
		t.Fatal(err)
	}
	defer w3.Close()
	r, ok := w3.Get(6)
	if !ok || string(r.Value.Batch[0].Data) != "post-crash" {
		t.Fatalf("post-crash record = %+v %v", r, ok)
	}
}

func TestFileWALCorruptCRCStopsReplay(t *testing.T) {
	path := filepath.Join(t.TempDir(), "acceptor.wal")
	w, _ := OpenFileWAL(path, true)
	_ = w.Put(1, walRec(1, "a", false))
	_ = w.Put(2, walRec(2, "b", false))
	_ = w.Close()
	// Flip a byte in the middle of the file (second record's body).
	data, _ := os.ReadFile(path)
	data[len(data)-1] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	w2, err := OpenFileWAL(path, true)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if w2.Len() != 1 {
		t.Fatalf("len after corruption = %d (replay should stop at the corrupt record)", w2.Len())
	}
}

func TestFileWALAsyncMode(t *testing.T) {
	path := filepath.Join(t.TempDir(), "acceptor.wal")
	w, err := OpenFileWAL(path, false)
	if err != nil {
		t.Fatal(err)
	}
	for i := msg.Instance(1); i <= 100; i++ {
		if err := w.Put(i, walRec(msg.Ballot(i), "async", false)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil { // flushes
		t.Fatal(err)
	}
	w2, err := OpenFileWAL(path, false)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if w2.Len() != 100 {
		t.Fatalf("len = %d", w2.Len())
	}
}
