package store

import (
	"errors"
	"fmt"
	"sort"

	"mrp/internal/msg"
	"mrp/internal/smr"
)

// ErrNotFound reports a read/update/delete of a non-existent key.
var ErrNotFound = errors.New("store: key not found")

// Client accesses an MRP-Store deployment through the operations of
// Table 1: read, scan, update, insert, delete — plus batched writes
// (Section 7.2). Single-key commands are multicast to the partition owning
// the key; scans are multicast to every partition possibly holding matching
// keys.
type Client struct {
	smr *smr.Client
	d   *Deployment
}

// Close releases the client.
func (c *Client) Close() { c.smr.Close() }

func (c *Client) ringFor(key string) msg.RingID {
	return c.d.PartitionRing(c.d.cfg.Partitioner.PartitionOf(key))
}

func (c *Client) call(ring msg.RingID, o op) (result, error) {
	raw, err := c.smr.Execute(ring, o.encode())
	if err != nil {
		return result{}, err
	}
	res, err := decodeResult(raw)
	if err != nil {
		return result{}, err
	}
	if res.status == statusError {
		return res, fmt.Errorf("store: server error for %d", o.kind)
	}
	return res, nil
}

// Read returns the value of entry k, if existent.
func (c *Client) Read(k string) ([]byte, error) {
	res, err := c.call(c.ringFor(k), op{kind: opRead, key: k})
	if err != nil {
		return nil, err
	}
	if res.status == statusNotFound {
		return nil, ErrNotFound
	}
	return res.value, nil
}

// Update updates entry k with value v, if existent.
func (c *Client) Update(k string, v []byte) error {
	res, err := c.call(c.ringFor(k), op{kind: opUpdate, key: k, value: v})
	if err != nil {
		return err
	}
	if res.status == statusNotFound {
		return ErrNotFound
	}
	return nil
}

// Insert inserts tuple (k, v) in the database.
func (c *Client) Insert(k string, v []byte) error {
	_, err := c.call(c.ringFor(k), op{kind: opInsert, key: k, value: v})
	return err
}

// Delete deletes entry k from the database.
func (c *Client) Delete(k string) error {
	res, err := c.call(c.ringFor(k), op{kind: opDelete, key: k})
	if err != nil {
		return err
	}
	if res.status == statusNotFound {
		return ErrNotFound
	}
	return nil
}

// Scan returns up to limit entries with from <= key <= to, in key order.
// With a global ring the scan is one atomic multicast ordered against all
// other commands; with independent rings it fans out per partition (the
// weaker of the two Figure 4 configurations).
func (c *Client) Scan(from, to string, limit int) ([]Entry, error) {
	parts := c.d.cfg.Partitioner.PartitionsForRange(from, to)
	o := op{kind: opScan, key: from, to: to, limit: limit}
	var all []Entry
	if g := c.d.GlobalRingID(); g != 0 {
		results, err := c.smr.ExecuteGather(g, o.encode(), len(parts), func(raw []byte) (int, bool) {
			res, err := decodeResult(raw)
			if err != nil {
				return 0, false
			}
			return int(res.partition), true
		})
		if err != nil {
			return nil, err
		}
		for _, raw := range results {
			res, err := decodeResult(raw)
			if err != nil {
				return nil, err
			}
			all = append(all, res.entries...)
		}
	} else {
		for _, p := range parts {
			res, err := c.call(c.d.PartitionRing(p), o)
			if err != nil {
				return nil, err
			}
			all = append(all, res.entries...)
		}
	}
	sort.Slice(all, func(i, j int) bool { return all[i].Key < all[j].Key })
	if limit > 0 && len(all) > limit {
		all = all[:limit]
	}
	return all, nil
}

// WriteBatch applies a batch of inserts grouped by partition: one atomic
// multicast per involved partition, each carrying all the batch's writes
// for that partition (the paper's clients batch small commands up to
// 32 KB per partition, Section 7.2). It returns the number of applied
// writes.
func (c *Client) WriteBatch(entries []Entry) (int, error) {
	byPart := make(map[int][]op)
	for _, e := range entries {
		p := c.d.cfg.Partitioner.PartitionOf(e.Key)
		byPart[p] = append(byPart[p], op{kind: opInsert, key: e.Key, value: e.Value})
	}
	total := 0
	for p, ops := range byPart {
		res, err := c.call(c.d.PartitionRing(p), op{kind: opBatch, batch: ops})
		if err != nil {
			return total, err
		}
		total += int(res.count)
	}
	return total, nil
}
