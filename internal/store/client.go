package store

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"mrp/internal/msg"
	"mrp/internal/registry"
	"mrp/internal/smr"
	"mrp/internal/transport"
)

// ErrNotFound reports a read/update/delete of a non-existent key.
var ErrNotFound = errors.New("store: key not found")

// WrongEpochError reports that a command kept being redirected with
// statusWrongEpoch until the client's deadline: the replicas are ahead of
// every schema the client could refresh to (or a migration freeze
// outlasted the deadline).
type WrongEpochError struct {
	// ClientEpoch is the epoch the last attempt was routed under.
	ClientEpoch uint64
	// ServerEpoch is the epoch the redirecting replica reported.
	ServerEpoch uint64
}

func (e *WrongEpochError) Error() string {
	return fmt.Sprintf("store: command redirected past deadline (client epoch %d, server epoch %d)",
		e.ClientEpoch, e.ServerEpoch)
}

// routeView is a client's cached routing state: one consistent snapshot of
// the partitioning schema and the proposer addresses per ring.
type routeView struct {
	epoch       uint64
	partitioner Partitioner
	rings       []msg.RingID // per partition
	onGlobal    []bool       // per partition
	global      msg.RingID   // 0 when disabled
	proposers   map[msg.RingID][]transport.Addr
	// leaseHolders is, per partition, the service address of the replica
	// advertised as the ring's lease holder ("" when lease reads are off
	// or the partition has no advertised holder). Advisory: a stale entry
	// costs one declined local read, never a wrong result.
	leaseHolders []transport.Addr
}

// leaseHolderFor returns the advertised lease holder of partition p.
func (v *routeView) leaseHolderFor(p int) transport.Addr {
	if p < 0 || p >= len(v.leaseHolders) {
		return ""
	}
	return v.leaseHolders[p]
}

// viewSource supplies routing views: the deployment handle (live topology)
// or the coordination service (published schema).
type viewSource interface {
	currentView() (routeView, error)
}

// registrySource builds routing views from the schema published in the
// coordination service.
type registrySource struct {
	reg *registry.Registry
}

func (s *registrySource) currentView() (routeView, error) {
	sc, err := LoadSchema(s.reg)
	if err != nil {
		return routeView{}, err
	}
	part, err := sc.PartitionerFor()
	if err != nil {
		return routeView{}, err
	}
	v := routeView{
		epoch:       sc.Epoch,
		partitioner: part,
		proposers:   make(map[msg.RingID][]transport.Addr),
	}
	if sc.GlobalRing {
		v.global = msg.RingID(sc.GlobalRingID)
		if v.global == 0 {
			v.global = msg.RingID(sc.Partitions + 1) // legacy schema
		}
	}
	var globalAddrs []transport.Addr
	v.leaseHolders = make([]transport.Addr, sc.Partitions)
	for p := 0; p < sc.Partitions; p++ {
		if schemaRetired(sc, p) {
			// Merged-away index: keep array alignment, install no route.
			v.rings = append(v.rings, 0)
			v.onGlobal = append(v.onGlobal, false)
			continue
		}
		if data, _, ok := s.reg.Get(LeaseHolderPath(p)); ok {
			v.leaseHolders[p] = transport.Addr(data)
		}
		ring := sc.RingOf(p)
		v.rings = append(v.rings, ring)
		on := p >= len(sc.OnGlobal) || sc.OnGlobal[p] // legacy: all on global
		v.onGlobal = append(v.onGlobal, on)
		if p < len(sc.Replicas) {
			v.proposers[ring] = append([]transport.Addr(nil), sc.Replicas[p]...)
			if on && len(sc.Replicas[p]) > 0 {
				globalAddrs = append(globalAddrs, sc.Replicas[p][0])
			}
		}
	}
	if v.global != 0 {
		v.proposers[v.global] = globalAddrs
	}
	return v, nil
}

// epochRetryDelay paces retries of commands frozen by an in-flight
// migration (the window between range freeze and schema publish).
const epochRetryDelay = 2 * time.Millisecond

// leaseReadTimeout bounds one local-read attempt against a lease holder.
// Deliberately short: a holder that declines does so immediately, so a
// missing reply means the holder is gone or saturated — fall back to the
// ordered path rather than waiting out the full command timeout.
var leaseReadTimeout = 150 * time.Millisecond

// execTimeout bounds a single routed attempt. It is deliberately shorter
// than the client's overall deadline: an attempt that times out against a
// ring torn down by a merge leaves room to refresh the schema and re-route
// (a dead ring sends no typed redirect, so the timeout is the signal).
var execTimeout = 5 * time.Second

// Client accesses an MRP-Store deployment through the operations of
// Table 1: read, scan, update, insert, delete — plus batched writes
// (Section 7.2). Single-key commands are multicast to the partition owning
// the key; scans are multicast to every partition possibly holding matching
// keys.
//
// The client routes by a cached schema view. When a replica answers with
// the typed wrong-epoch redirect (the key moved to another partition in a
// later schema epoch, or sits in a range frozen by an in-flight split),
// the client refreshes its view from its source — the deployment's live
// topology or the registry-published schema — re-routes, and retries until
// its deadline. Registry-backed clients additionally refresh eagerly from
// a schema watch. Client methods are not safe for concurrent use; create
// one client per worker thread.
type Client struct {
	smr     *smr.Client
	src     viewSource
	timeout time.Duration

	// forceGlobal routes every cross-partition transaction through the
	// global ring (the bench baseline; see ForceGlobal).
	forceGlobal bool

	mu   sync.Mutex
	view routeView

	// leaseHits counts reads and scans served by the consensus-free lease
	// fast path (observability: tests assert the path was exercised, the
	// reads figure reports the local/ordered mix).
	leaseHits atomic.Int64

	watchStop chan struct{}
	watchDone chan struct{}
}

// LeaseReads reports how many of this client's reads and scans were served
// consensus-free by a lease holder rather than through ordering.
func (c *Client) LeaseReads() int64 { return c.leaseHits.Load() }

// newClient builds a client over an endpoint and routing-view source. The
// batch policy passes straight to the underlying smr.Client, so every
// ordered verb — single-key ops, scans, WriteBatch, opTxn — rides
// SMR-level command batches transparently unless the policy disables it.
func newClient(ep transport.Endpoint, id uint64, src viewSource, batch smr.BatchPolicy) *Client {
	c := &Client{
		smr: smr.NewClient(smr.ClientConfig{
			ID:       id,
			Endpoint: ep,
			Timeout:  execTimeout,
			Batch:    batch,
		}),
		src:     src,
		timeout: 20 * time.Second,
	}
	_ = c.refresh()
	return c
}

// watchSchema launches the eager refresh loop of registry-backed clients.
func (c *Client) watchSchema(reg *registry.Registry) {
	events := WatchSchema(reg)
	c.watchStop = make(chan struct{})
	c.watchDone = make(chan struct{})
	go func() {
		defer close(c.watchDone)
		for {
			select {
			case <-events:
				_ = c.refresh()
			case <-c.watchStop:
				return
			}
		}
	}()
}

// Close releases the client.
func (c *Client) Close() {
	if c.watchStop != nil {
		close(c.watchStop)
		<-c.watchDone
	}
	c.smr.Close()
}

// currentView returns the cached routing view.
func (c *Client) currentView() routeView {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.view
}

// viewFor returns the routing view for one attempt, eagerly refreshed
// when the source exposes a live epoch ahead of the cache. Deployment-
// backed clients would otherwise learn of a committed merge only from a
// timeout against the retired ring: the donor's freeze window can be
// shorter than the gap between a client's visits to its range, so the
// typed redirect alone may never reach it before the teardown.
func (c *Client) viewFor() routeView {
	v := c.currentView()
	if src, ok := c.src.(interface{ Epoch() uint64 }); ok && src.Epoch() > v.epoch {
		_ = c.refresh()
		v = c.currentView()
	}
	return v
}

// Epoch returns the schema epoch the client currently routes under.
func (c *Client) Epoch() uint64 { return c.currentView().epoch }

// refresh re-reads the routing view from the source and installs the
// proposer addresses of any newly visible rings.
func (c *Client) refresh() error {
	v, err := c.src.currentView()
	if err != nil {
		return err
	}
	c.mu.Lock()
	if v.epoch >= c.view.epoch {
		c.view = v
	}
	c.mu.Unlock()
	for ring, addrs := range v.proposers {
		c.smr.SetProposers(ring, addrs)
	}
	return nil
}

// exec submits one op to a ring and decodes the first reply. The result
// carries the typed status — including the statusWrongEpoch redirect —
// that every caller must route on.
//
//mrp:ordered status
func (c *Client) exec(ring msg.RingID, o op) (result, error) {
	raw, err := c.smr.Execute(ring, o.encode())
	if err != nil {
		return result{}, err
	}
	return decodeResult(raw)
}

// rerouteOnTimeout turns an attempt timeout into a retry when refreshing
// the view reveals a newer schema: the torn-down ring of a merged-away
// partition cannot send the typed wrong-epoch redirect, so the timeout
// plus an epoch advance is how a stale client learns its route died.
func (c *Client) rerouteOnTimeout(err error, epoch uint64, deadline time.Time) bool {
	if !errors.Is(err, smr.ErrTimeout) || time.Now().After(deadline) {
		return false
	}
	_ = c.refresh()
	return c.currentView().epoch > epoch
}

// leaseRead attempts the consensus-free fast path for a single-key read:
// one LeaseRead to the partition's advertised holder, no ordering. It
// reports ok=false whenever the ordered path should take over — no
// advertised holder, the holder declined or timed out, or the reply was
// the typed wrong-epoch redirect (the key moved, or its range is frozen
// by an in-flight reconfiguration; the view is refreshed before falling
// back so the ordered attempt routes on fresh state, exactly like any
// other redirected command).
func (c *Client) leaseRead(o op) (result, bool) {
	v := c.viewFor()
	if v.partitioner == nil {
		return result{}, false
	}
	o.epoch = v.epoch
	addr := v.leaseHolderFor(v.partitioner.PartitionOf(o.key))
	if addr == "" {
		return result{}, false
	}
	raw, served, err := c.smr.LeaseRead(addr, o.encode(), leaseReadTimeout)
	if err != nil || !served {
		return result{}, false
	}
	res, err := decodeResult(raw)
	if err != nil || res.status == statusError {
		return result{}, false
	}
	if res.status == statusWrongEpoch {
		_ = c.refresh()
		return result{}, false
	}
	c.leaseHits.Add(1)
	return res, true
}

// leaseScan attempts the consensus-free fast path for a scan whose whole
// range lives in ONE partition with an advertised lease holder; anything
// wider falls back to the ordered fan-out (a multi-partition local scan
// would not be one consistent cut).
func (c *Client) leaseScan(from, to string, limit int) ([]Entry, bool) {
	v := c.viewFor()
	if v.partitioner == nil {
		return nil, false
	}
	parts := v.partitioner.PartitionsForRange(from, to)
	if len(parts) != 1 {
		return nil, false
	}
	addr := v.leaseHolderFor(parts[0])
	if addr == "" {
		return nil, false
	}
	o := op{kind: opScan, epoch: v.epoch, key: from, to: to, limit: limit}
	raw, served, err := c.smr.LeaseRead(addr, o.encode(), leaseReadTimeout)
	if err != nil || !served {
		return nil, false
	}
	res, err := decodeResult(raw)
	if err != nil || res.status != statusOK {
		if res.status == statusWrongEpoch {
			_ = c.refresh()
		}
		return nil, false
	}
	entries := res.entries
	if limit > 0 && len(entries) > limit {
		entries = entries[:limit]
	}
	c.leaseHits.Add(1)
	return entries, true
}

// callKey routes a single-key op by the cached view and retries through
// wrong-epoch redirects until the deadline.
func (c *Client) callKey(o op) (result, error) {
	deadline := time.Now().Add(c.timeout)
	for {
		v := c.viewFor()
		if v.partitioner == nil {
			if err := c.refresh(); err != nil {
				return result{}, err
			}
			continue
		}
		o.epoch = v.epoch
		p := v.partitioner.PartitionOf(o.key)
		if p >= len(v.rings) {
			return result{}, fmt.Errorf("store: no ring for partition %d", p)
		}
		res, err := c.exec(v.rings[p], o)
		if err != nil {
			if c.rerouteOnTimeout(err, v.epoch, deadline) {
				continue
			}
			return result{}, err
		}
		if res.status == statusError {
			return res, fmt.Errorf("store: server error for %d", o.kind)
		}
		if res.status != statusWrongEpoch {
			return res, nil
		}
		if time.Now().After(deadline) {
			return res, &WrongEpochError{ClientEpoch: o.epoch, ServerEpoch: res.epoch}
		}
		// Redirected: refresh and re-route. If the schema has not been
		// republished yet (migration freeze window), pace the retries.
		before := v.epoch
		_ = c.refresh()
		if c.currentView().epoch == before {
			time.Sleep(epochRetryDelay)
		}
	}
}

// Read returns the value of entry k, if existent. When the owning
// partition advertises a lease holder, the read is served locally by that
// replica without a consensus round (linearizable — see internal/smr's
// lease.go); otherwise, or whenever the fast path declines, it is an
// ordered command like every other op.
//
//mrp:ordered
func (c *Client) Read(k string) ([]byte, error) {
	if res, ok := c.leaseRead(op{kind: opRead, key: k}); ok {
		if res.status == statusNotFound {
			return nil, ErrNotFound
		}
		return res.value, nil
	}
	res, err := c.callKey(op{kind: opRead, key: k})
	if err != nil {
		return nil, err
	}
	if res.status == statusNotFound {
		return nil, ErrNotFound
	}
	return res.value, nil
}

// Update updates entry k with value v, if existent.
//
//mrp:ordered
func (c *Client) Update(k string, v []byte) error {
	res, err := c.callKey(op{kind: opUpdate, key: k, value: v})
	if err != nil {
		return err
	}
	if res.status == statusNotFound {
		return ErrNotFound
	}
	return nil
}

// Insert inserts tuple (k, v) in the database.
//
//mrp:ordered
func (c *Client) Insert(k string, v []byte) error {
	_, err := c.callKey(op{kind: opInsert, key: k, value: v})
	return err
}

// Delete deletes entry k from the database.
//
//mrp:ordered
func (c *Client) Delete(k string) error {
	res, err := c.callKey(op{kind: opDelete, key: k})
	if err != nil {
		return err
	}
	if res.status == statusNotFound {
		return ErrNotFound
	}
	return nil
}

// Scan returns up to limit entries with from <= key <= to, in key order.
// With a global ring that all involved partitions subscribe to, the scan
// is one atomic multicast ordered against all other commands; otherwise it
// fans out per partition (the weaker of the two Figure 4 configurations —
// partitions added by a live split are not global-ring members, so scans
// touching them always fan out).
//
//mrp:ordered
func (c *Client) Scan(from, to string, limit int) ([]Entry, error) {
	if entries, ok := c.leaseScan(from, to, limit); ok {
		return entries, nil
	}
	deadline := time.Now().Add(c.timeout)
	for {
		v := c.viewFor()
		if v.partitioner == nil {
			if err := c.refresh(); err != nil {
				return nil, err
			}
			continue
		}
		entries, redirected, err := c.scanOnce(v, from, to, limit)
		if err != nil {
			if c.rerouteOnTimeout(err, v.epoch, deadline) {
				continue
			}
			return nil, err
		}
		if !redirected {
			return entries, nil
		}
		if time.Now().After(deadline) {
			return nil, &WrongEpochError{ClientEpoch: v.epoch}
		}
		before := v.epoch
		_ = c.refresh()
		if c.currentView().epoch == before {
			time.Sleep(epochRetryDelay)
		}
	}
}

// scanOnce plans and executes one scan attempt under a fixed view.
func (c *Client) scanOnce(v routeView, from, to string, limit int) ([]Entry, bool, error) {
	parts := v.partitioner.PartitionsForRange(from, to)
	o := op{kind: opScan, epoch: v.epoch, key: from, to: to, limit: limit}
	gatherable := v.global != 0
	for _, p := range parts {
		if p >= len(v.onGlobal) || !v.onGlobal[p] {
			gatherable = false
		}
	}
	var raws []result
	if gatherable {
		// Every global-ring subscriber answers the multicast; only replies
		// from partitions in the scan's fan-out count toward the gather (a
		// merge can shrink the fan-out below the subscriber set, and an
		// uninvolved partition's empty reply must not satisfy it).
		involved := make(map[int]bool, len(parts))
		for _, p := range parts {
			involved[p] = true
		}
		results, err := c.smr.ExecuteGather(v.global, o.encode(), len(parts), func(raw []byte) (int, bool) {
			res, err := decodeResult(raw)
			if err != nil {
				return 0, false
			}
			return int(res.partition), involved[int(res.partition)]
		})
		if err != nil {
			return nil, false, err
		}
		for _, raw := range results {
			res, err := decodeResult(raw)
			if err != nil {
				return nil, false, err
			}
			raws = append(raws, res)
		}
	} else {
		for _, p := range parts {
			if p >= len(v.rings) {
				return nil, true, nil // view lags the partition set: refresh
			}
			res, err := c.exec(v.rings[p], o)
			if err != nil {
				return nil, false, err
			}
			raws = append(raws, res)
		}
	}
	var all []Entry
	for _, res := range raws {
		if res.status == statusWrongEpoch {
			return nil, true, nil
		}
		if res.status == statusError {
			return nil, false, fmt.Errorf("store: server error for scan")
		}
		for _, e := range res.entries {
			// Keep the owner's copy only: during a migration the frozen
			// source still reports moved keys, and the owner's reply is
			// the authoritative one.
			if v.partitioner.PartitionOf(e.Key) == int(res.partition) {
				all = append(all, e)
			}
		}
	}
	sort.Slice(all, func(i, j int) bool { return all[i].Key < all[j].Key })
	if limit > 0 && len(all) > limit {
		all = all[:limit]
	}
	return all, false, nil
}

// WriteBatch applies a batch of inserts grouped by partition: one atomic
// multicast per involved partition, each carrying all the batch's writes
// for that partition (the paper's clients batch small commands up to
// 32 KB per partition, Section 7.2). Groups redirected by a schema change
// are regrouped under the refreshed schema and retried. It returns the
// number of applied writes.
//
//mrp:ordered
func (c *Client) WriteBatch(entries []Entry) (int, error) {
	deadline := time.Now().Add(c.timeout)
	remaining := entries
	total := 0
	for len(remaining) > 0 {
		v := c.viewFor()
		if v.partitioner == nil {
			if err := c.refresh(); err != nil {
				return total, err
			}
			continue
		}
		byPart := make(map[int][]op)
		for _, e := range remaining {
			p := v.partitioner.PartitionOf(e.Key)
			byPart[p] = append(byPart[p], op{kind: opInsert, key: e.Key, value: e.Value})
		}
		var redirected []Entry
		for p, ops := range byPart {
			if p >= len(v.rings) {
				for _, o := range ops {
					redirected = append(redirected, Entry{Key: o.key, Value: o.value})
				}
				continue
			}
			res, err := c.exec(v.rings[p], op{kind: opBatch, epoch: v.epoch, batch: ops})
			if err != nil {
				if c.rerouteOnTimeout(err, v.epoch, deadline) {
					for _, o := range ops {
						redirected = append(redirected, Entry{Key: o.key, Value: o.value})
					}
					continue
				}
				return total, err
			}
			switch res.status {
			case statusOK:
				total += int(res.count)
			case statusWrongEpoch:
				for _, o := range ops {
					redirected = append(redirected, Entry{Key: o.key, Value: o.value})
				}
			default:
				return total, fmt.Errorf("store: server error for batch")
			}
		}
		remaining = redirected
		if len(remaining) == 0 {
			break
		}
		if time.Now().After(deadline) {
			return total, &WrongEpochError{ClientEpoch: v.epoch}
		}
		before := v.epoch
		_ = c.refresh()
		if c.currentView().epoch == before {
			time.Sleep(epochRetryDelay)
		}
	}
	return total, nil
}
