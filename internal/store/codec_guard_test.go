package store

import (
	"hash/fnv"
	"testing"
)

// TestHashPartitionerMatchesFNV pins the inlined FNV-1a hash against
// hash/fnv: partition assignment decides data placement, so the
// allocation-free rewrite must produce bit-identical values or every
// existing deployment's keys would land on the wrong partition.
func TestHashPartitionerMatchesFNV(t *testing.T) {
	keys := []string{"", "a", "user:42", "key-with-a-much-longer-suffix-0123456789", "\x00\xff\x80"}
	for _, n := range []int{1, 2, 7, 64} {
		p := NewHashPartitioner(n)
		for _, key := range keys {
			h := fnv.New32a()
			_, _ = h.Write([]byte(key))
			want := int(h.Sum32() % uint32(n))
			if got := p.PartitionOf(key); got != want {
				t.Errorf("PartitionOf(%q) with n=%d = %d, want %d (hash/fnv)", key, n, got, want)
			}
		}
	}
}

// TestTakePartitionerMalformed pins the wire-count guard mrp-lint's
// snapcodec analyzer demanded: a snapshot-encoded range partitioner whose
// partition count is zero used to panic (make with capacity n-1 = -1) and
// a huge count used to pre-allocate before any bounds check. Snapshots
// arrive over the network (CkptData), so both are one corrupt checkpoint
// away; the decoder must reject them instead.
func TestTakePartitionerMalformed(t *testing.T) {
	cases := map[string][]byte{
		"zero count":       {1, 0, 0, 0, 0},
		"huge count":       {1, 0xFF, 0xFF, 0xFF, 0xFF},
		"count over input": {1, 0, 0, 0, 9, 0, 2, 'a', 'b'},
		"truncated":        {1, 0, 0, 0},
	}
	for name, b := range cases {
		if _, _, ok := takePartitioner(b); ok {
			t.Errorf("%s: takePartitioner accepted malformed input %v", name, b)
		}
	}

	// The guard must not reject a valid encoding: round-trip a real
	// partitioner through the snapshot codec.
	rp := NewRangePartitioner([]string{"m"})
	enc := appendPartitioner(nil, rp)
	got, rest, ok := takePartitioner(enc)
	if !ok || len(rest) != 0 {
		t.Fatalf("round-trip failed: ok=%v rest=%d", ok, len(rest))
	}
	if got.N() != rp.N() || got.PartitionOf("a") != rp.PartitionOf("a") || got.PartitionOf("z") != rp.PartitionOf("z") {
		t.Errorf("round-tripped partitioner differs: %+v vs %+v", got, rp)
	}
}
