package store

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"mrp/internal/msg"
	"mrp/internal/multiring"
	"mrp/internal/netsim"
	"mrp/internal/recovery"
	"mrp/internal/registry"
	"mrp/internal/ringpaxos"
	"mrp/internal/smr"
	"mrp/internal/storage"
	"mrp/internal/transport"
	"mrp/internal/txn"
)

// DeployConfig describes an MRP-Store deployment: l partitions, each
// replicated over its own ring, optionally coordinated by a global ring
// every replica subscribes to (the two configurations compared in
// Figure 4: "MRP-Store" vs "MRP-Store (indep. rings)").
type DeployConfig struct {
	// Net is the simulated network to deploy on. Leave nil when providing
	// EndpointFor (e.g. real TCP deployments).
	Net *netsim.Network
	// EndpointFor creates the endpoint for a replica address; defaults to
	// Net.Endpoint. Supplying a tcpnet-backed factory runs the exact same
	// deployment over real sockets.
	EndpointFor func(transport.Addr) (transport.Endpoint, error)
	// Partitions is the number of partitions l.
	Partitions int
	// Replicas is the replication factor per partition (default 3).
	Replicas int
	// GlobalRing, when true, adds a ring subscribed by all replicas that
	// orders multi-partition commands relative to everything else.
	GlobalRing bool
	// Partitioner maps keys to partitions (default: hash).
	Partitioner Partitioner
	// StorageMode is the acceptors' stable storage mode.
	StorageMode storage.Mode
	// DiskScale scales disk service times (see storage.DiskModel.Scale).
	DiskScale float64
	// AddrFor names replica endpoints; default "store-p<p>-r<r>". Use
	// region-prefixed names ("us-west-2/...") for WAN deployments.
	//
	// EndpointFor is also asked for auxiliary endpoints under symbolic
	// names outside AddrFor's scheme ("store-lease-p<p>-<n>" for lease
	// managers, "<replica>-recovery" for recovery conversations);
	// real-socket factories should map names that are not host:port pairs
	// to ephemeral listeners.
	AddrFor func(partition, replica int) transport.Addr

	// Ring tuning (applied to every ring).
	BatchMaxBytes int
	BatchDelay    time.Duration
	SkipInterval  time.Duration // Δ
	SkipRate      int           // λ
	RetryTimeout  time.Duration
	MergeM        int // deterministic merge constant M (default 1)

	// CheckpointEvery enables periodic replica checkpoints.
	CheckpointEvery time.Duration
	// TrimInterval enables trim coordination per ring when > 0.
	TrimInterval time.Duration

	// CmdBatch controls SMR-level command batching in clients created by
	// NewClient/NewClientAt (see smr.BatchPolicy). The zero value batches
	// with defaults, so every ordered store verb — including opTxn — rides
	// batches transparently; set Disabled to opt out.
	CmdBatch smr.BatchPolicy
	// Pipeline controls the replicas' delivery→execution pipeline (see
	// smr.PipelinePolicy). The zero value pipelines with the default
	// queue depth.
	Pipeline smr.PipelinePolicy
	// Lease configures ring leases for consensus-free local reads (see
	// LeasePolicy): the zero value enables them with defaults, so every
	// deployment serves lease reads unless Lease.Disabled is set.
	Lease LeasePolicy
}

// ReplicaHandle bundles everything one replica node runs.
type ReplicaHandle struct {
	Partition int
	Index     int
	Node      *multiring.Node
	Learner   *multiring.Learner
	Replica   *smr.Replica
	SM        *SM
	Ckpt      *storage.CheckpointStore
	Logs      map[msg.RingID]*storage.Log
	Disk      *storage.Disk
	Aux       map[msg.RingID]*transport.HandlerMux
	// Ex exchanges cross-partition transaction votes with the replicas of
	// other participant partitions (internal/txn). Closed before the
	// replica stops so an in-flight exchange cannot deadlock teardown.
	Ex *txn.Exchanger

	stopped atomic.Bool
}

// Stopped reports whether the handle's replica has been stopped (crash
// injection or teardown). Lease managers poll it from their own goroutine,
// which is why the flag is atomic.
func (h *ReplicaHandle) Stopped() bool { return h.stopped.Load() }

// partMeta is one partition's live topology entry: the ring ordering its
// commands, its replica addresses, and whether its replicas subscribe to
// the global ring (partitions added by a live split do not).
type partMeta struct {
	ring     msg.RingID
	addrs    []transport.Addr
	onGlobal bool
	// retired marks a partition index merged away by an online merge: its
	// replicas are stopped, its ring torn down and the ring ID recycled.
	// The entry stays as a tombstone because partition indexes are never
	// renumbered; an index at the top of the space can be reused by a
	// later split (RangePartitioner.N shrinks past it).
	retired bool
	// birth, for partitions appended by a live split, records the state
	// the partition's replicas started from. A recovering replica without
	// a usable checkpoint restarts from this state and replays its ring
	// from the first instance; starting from any other state would make
	// the replayed opMigrate/opActivatePart commands diverge.
	birth *splitBirth
}

// splitBirth is the deterministic initial state of a split partition's
// replicas: warming, at the split's epoch, under the post-split mapping.
type splitBirth struct {
	epoch       uint64
	partitioner Partitioner
}

// Deployment is a running MRP-Store cluster. The partition topology is
// dynamic: an online split (internal/rebalance) appends a partition with
// its own freshly subscribed ring and flips the committed partitioner and
// epoch once the moved range has been migrated.
type Deployment struct {
	cfg      DeployConfig
	Replicas [][]*ReplicaHandle // [partition][replica]
	trims    []*recovery.TrimCoordinator
	nextID   atomic.Uint64

	// mu guards replacement of Replicas entries (RecoverReplica), growth
	// of the partition set (AddPartition/AdoptReconfig/RetirePartition),
	// and the topology fields below against concurrent inspection while
	// running.
	mu          sync.RWMutex
	epoch       uint64
	partitioner Partitioner // committed mapping (epoch's partitioner)
	// viewEpoch is the highest epoch ever adopted — a watermark for the
	// epochs handed to client views. An aborted reconfiguration reverts
	// the committed epoch (the aborted number is reused by the next
	// plan), but client refreshes rightly refuse to install an older
	// epoch than they have seen, so views keep carrying the watermark.
	viewEpoch uint64
	parts     []partMeta // includes not-yet-committed split partitions
	nextRing  msg.RingID // ring allocator for split partitions
	// freeRings holds ring IDs recycled by ring retirement; AddPartition
	// reuses them (most recently retired first) before minting new IDs.
	freeRings []msg.RingID

	// leaseMu guards the lease managers and the advertisement registry; it
	// is never held together with mu (managers take mu on their own).
	leaseMu   sync.Mutex
	leaseMgrs map[int]*leaseManager
	leaseReg  *registry.Registry
}

// PartitionRing returns the ring (= multicast group) of a partition.
func (d *Deployment) PartitionRing(p int) msg.RingID {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if p < len(d.parts) {
		return d.parts[p].ring
	}
	return 0
}

// globalRing returns the global ring's ID without locking (it is fixed at
// deploy time).
func (d *Deployment) globalRing() msg.RingID {
	if !d.cfg.GlobalRing {
		return 0
	}
	return msg.RingID(d.cfg.Partitions + 1)
}

// GlobalRingID returns the global ring's ID (0 when disabled).
func (d *Deployment) GlobalRingID() msg.RingID { return d.globalRing() }

// Partitioner returns the deployment's committed partitioning scheme.
func (d *Deployment) Partitioner() Partitioner {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.partitioner
}

// Epoch returns the committed schema epoch.
func (d *Deployment) Epoch() uint64 {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.epoch
}

// Partitions returns the committed partition count.
func (d *Deployment) Partitions() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.partitioner.N()
}

// PartitionOnGlobal reports whether a partition's replicas subscribe to
// the global ring (split partitions do not; commands that must reach them
// are ordered through their own ring instead).
func (d *Deployment) PartitionOnGlobal(p int) bool {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return p < len(d.parts) && d.parts[p].onGlobal
}

func (c *DeployConfig) withDefaults() {
	if c.Partitions <= 0 {
		c.Partitions = 1
	}
	if c.Replicas <= 0 {
		c.Replicas = 3
	}
	if c.Partitioner == nil {
		c.Partitioner = NewHashPartitioner(c.Partitions)
	}
	if c.DiskScale <= 0 {
		c.DiskScale = 1
	}
	if c.AddrFor == nil {
		c.AddrFor = func(p, r int) transport.Addr {
			return transport.Addr(fmt.Sprintf("store-p%d-r%d", p, r))
		}
	}
	if c.EndpointFor == nil && c.Net != nil {
		c.EndpointFor = func(a transport.Addr) (transport.Endpoint, error) {
			return c.Net.Endpoint(a), nil
		}
	}
	if c.RetryTimeout <= 0 {
		c.RetryTimeout = 100 * time.Millisecond
	}
	if c.BatchDelay <= 0 {
		c.BatchDelay = time.Millisecond
	}
	if c.MergeM <= 0 {
		c.MergeM = 1
	}
	c.Lease = c.Lease.withDefaults()
}

// nodeIDFor gives every replica a stable, unique node ID.
func nodeIDFor(p, r int) msg.NodeID { return msg.NodeID(p*100 + r + 1) }

// recoverTimeout bounds the checkpoint-exchange conversation of
// RecoverReplica (a variable so tests can exercise recovery failures
// without waiting out the production deadline).
var recoverTimeout = 10 * time.Second

// Deploy builds and starts an MRP-Store cluster.
func Deploy(cfg DeployConfig) (*Deployment, error) {
	cfg.withDefaults()
	d := &Deployment{cfg: cfg, epoch: 1, viewEpoch: 1, partitioner: cfg.Partitioner}
	for p := 0; p < cfg.Partitions; p++ {
		var addrs []transport.Addr
		for r := 0; r < cfg.Replicas; r++ {
			addrs = append(addrs, cfg.AddrFor(p, r))
		}
		d.parts = append(d.parts, partMeta{
			ring:     msg.RingID(p + 1),
			addrs:    addrs,
			onGlobal: cfg.GlobalRing,
		})
	}
	// Ring IDs 1..Partitions are the partition rings and Partitions+1 the
	// global ring; rings for split partitions are allocated after those.
	d.nextRing = msg.RingID(cfg.Partitions + 2)

	// Ring memberships are derived from the deployment's schema — the same
	// builder RecoverReplica uses — so a replica rebuilt after a crash
	// rejoins rings whose order and roles match the survivors' by
	// construction.
	s := d.topologySchema()
	for p := 0; p < cfg.Partitions; p++ {
		var hs []*ReplicaHandle
		for r := 0; r < cfg.Replicas; r++ {
			members, err := schemaMemberships(s, p, r)
			if err != nil {
				d.Stop()
				return nil, err
			}
			h, err := d.buildReplicaAt(p, r, members, nil, nil, nil)
			if err != nil {
				d.Stop()
				return nil, err
			}
			hs = append(hs, h)
		}
		d.Replicas = append(d.Replicas, hs)
	}

	if cfg.TrimInterval > 0 {
		d.startTrimming()
	}
	if !cfg.Lease.Disabled {
		for p := 0; p < cfg.Partitions; p++ {
			if err := d.startLeaseManager(p); err != nil {
				d.Stop()
				return nil, err
			}
		}
	}
	return d, nil
}

// buildReplicaAt constructs (or rebuilds, after a crash) one replica node
// from its schema-derived ring memberships. starts maps each subscribed
// ring to the delivery start instance (the recovered frontier); install is
// an optional recovered checkpoint. birth, when non-nil, marks a replica
// of a partition created by a live split: its state machine starts from
// the split's deterministic initial state and its ring is joined through
// the runtime subscription path, the same way the partition first came up.
func (d *Deployment) buildReplicaAt(p, r int, members []ringMembership, birth *splitBirth, starts map[msg.RingID]msg.Instance, install *storage.Checkpoint) (*ReplicaHandle, error) {
	cfg := d.cfg
	h := &ReplicaHandle{
		Partition: p,
		Index:     r,
		Logs:      make(map[msg.RingID]*storage.Log),
		Aux:       make(map[msg.RingID]*transport.HandlerMux),
		Disk:      storage.NewDisk(cfg.StorageMode.DiskFor().Scale(cfg.DiskScale)),
		Ckpt:      storage.NewCheckpointStore(storage.NewDisk(cfg.StorageMode.DiskFor().Scale(cfg.DiskScale))),
	}
	if old := d.ReplicaAt(p, r); old != nil {
		// Stable storage survives a crash-recover cycle.
		h.Disk = old.Disk
		h.Ckpt = old.Ckpt
		h.Logs = old.Logs
	}
	ep, err := cfg.EndpointFor(cfg.AddrFor(p, r))
	if err != nil {
		return nil, err
	}
	node := multiring.NewNode(nodeIDFor(p, r), ep)

	ringCfg := func(m ringMembership) ringpaxos.Config {
		var log *storage.Log
		if existing, ok := h.Logs[m.ring]; ok {
			log = existing
		} else {
			log = storage.NewLogOnDisk(cfg.StorageMode, h.Disk)
			h.Logs[m.ring] = log
		}
		aux := &transport.HandlerMux{}
		h.Aux[m.ring] = aux
		rcfg := ringpaxos.Config{
			Ring:          m.ring,
			Peers:         m.peers,
			Coordinator:   m.peers[0].ID,
			Log:           log,
			BatchMaxBytes: cfg.BatchMaxBytes,
			BatchDelay:    cfg.BatchDelay,
			SkipInterval:  cfg.SkipInterval,
			SkipRate:      cfg.SkipRate,
			RetryTimeout:  cfg.RetryTimeout,
			Aux:           aux.Handle,
		}
		if starts != nil {
			rcfg.StartInstance = starts[m.ring]
		}
		return rcfg
	}

	var procs []multiring.DecisionSource
	if birth == nil {
		for _, m := range members {
			proc, err := node.Join(ringCfg(m))
			if err != nil {
				return nil, err
			}
			procs = append(procs, proc)
		}
	}

	learner := multiring.NewLearner(cfg.MergeM, procs...)
	var sm *SM
	if birth != nil {
		sm = NewSMAt(p, birth.partitioner, birth.epoch, true)
	} else {
		sm = NewSM(p, cfg.Partitioner)
	}
	rep := smr.NewReplica(smr.ReplicaConfig{
		Node:            node,
		Learner:         learner,
		SM:              sm,
		Ckpt:            h.Ckpt,
		CheckpointEvery: cfg.CheckpointEvery,
		Pipeline:        cfg.Pipeline,
	})
	if install != nil {
		rep.InstallCheckpoint(*install)
	}
	for _, aux := range h.Aux {
		aux.Set(rep.HandleTrimQuery)
	}
	// Cross-partition transaction votes ride the service plane alongside
	// the replica's checkpoint RPCs; both handlers are non-blocking.
	ex := txn.NewExchanger(txn.ExchangerConfig{
		Self:    uint16(p),
		Send:    func(to transport.Addr, m *msg.TxnVote) error { return node.Endpoint().Send(to, m) },
		Resolve: d.txnPeers,
		OwnVote: sm.TxnVote,
	})
	sm.SetTxnExchanger(ex)
	h.Ex = ex
	node.Service(func(env transport.Envelope) {
		if _, isVote := env.Msg.(*msg.TxnVote); isVote {
			ex.Handle(env)
			return
		}
		rep.HandleService(env)
	})
	node.Start()
	learner.Start()
	rep.Start()

	if birth != nil {
		// Runtime subscription path: splice each ring into the running
		// node and learner at the recovered frontier. The fresh learner
		// has consumed nothing, so immediate activation is trivially the
		// same splice point on every replica of the partition.
		for _, m := range members {
			rc := ringCfg(m)
			h.Aux[m.ring].Set(rep.HandleTrimQuery)
			proc, err := node.Subscribe(rc)
			if err != nil {
				ex.Close()
				rep.Stop()
				learner.Stop()
				node.Stop()
				return nil, err
			}
			learner.Subscribe(proc, multiring.Activation{})
		}
	}

	h.Node = node
	h.Learner = learner
	h.Replica = rep
	h.SM = sm
	return h, nil
}

// txnPeers resolves the live replica addresses of a participant
// partition for the vote exchanger. Reading the mutable topology is safe
// here: votes travel outside the ordered planes, so a stale answer only
// delays an exchange (the periodic re-push retries), never corrupts it.
func (d *Deployment) txnPeers(part uint16) []transport.Addr {
	d.mu.RLock()
	defer d.mu.RUnlock()
	p := int(part)
	if p >= len(d.parts) || d.parts[p].retired {
		return nil
	}
	return append([]transport.Addr(nil), d.parts[p].addrs...)
}

// ReplicaAt returns replica r of partition p (nil when out of range),
// safely against a concurrent RecoverReplica replacing the handle. Use it
// instead of indexing Replicas while failure injection is running.
func (d *Deployment) ReplicaAt(p, r int) *ReplicaHandle {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.handleAt(p, r)
}

func (d *Deployment) handleAt(p, r int) *ReplicaHandle {
	if p < len(d.Replicas) && r < len(d.Replicas[p]) {
		return d.Replicas[p][r]
	}
	return nil
}

// startTrimming launches a trim coordinator per ring at the ring's first
// replica, wiring its Aux to serve both roles (replica and coordinator).
func (d *Deployment) startTrimming() {
	ringReplicaAddrs := func(p int) []transport.Addr {
		var out []transport.Addr
		for r := 0; r < d.cfg.Replicas; r++ {
			out = append(out, d.cfg.AddrFor(p, r))
		}
		return out
	}
	for p := 0; p < d.cfg.Partitions; p++ {
		h0 := d.Replicas[p][0]
		ring := d.PartitionRing(p)
		tc := recovery.NewTrimCoordinator(recovery.TrimConfig{
			Ring:      ring,
			Endpoint:  h0.Node.Endpoint(),
			Replicas:  ringReplicaAddrs(p),
			Acceptors: ringReplicaAddrs(p),
			Interval:  d.cfg.TrimInterval,
		})
		d.wireTrimAux(h0, ring, tc)
		tc.Start()
		d.trims = append(d.trims, tc)
	}
	if d.cfg.GlobalRing {
		h0 := d.Replicas[0][0]
		ring := d.GlobalRingID()
		var allReplicas, acceptors []transport.Addr
		for p := 0; p < d.cfg.Partitions; p++ {
			acceptors = append(acceptors, d.cfg.AddrFor(p, 0))
			allReplicas = append(allReplicas, ringReplicaAddrs(p)...)
		}
		tc := recovery.NewTrimCoordinator(recovery.TrimConfig{
			Ring:      ring,
			Endpoint:  h0.Node.Endpoint(),
			Replicas:  allReplicas,
			Acceptors: acceptors,
			Quorum:    len(allReplicas)/2 + 1,
			Interval:  d.cfg.TrimInterval,
		})
		d.wireTrimAux(h0, ring, tc)
		tc.Start()
		d.trims = append(d.trims, tc)
	}
}

// wireTrimAux makes a node's ring Aux serve both trim queries (replica
// role) and trim replies (coordinator role).
func (d *Deployment) wireTrimAux(h *ReplicaHandle, ring msg.RingID, tc *recovery.TrimCoordinator) {
	rep := h.Replica
	h.Aux[ring].Set(func(env transport.Envelope) {
		switch env.Msg.(type) {
		case *msg.TrimQuery:
			rep.HandleTrimQuery(env)
		case *msg.TrimReply:
			tc.HandleReply(env)
		}
	})
}

// TrimCoordinators exposes the running trim coordinators (nil without
// TrimInterval).
func (d *Deployment) TrimCoordinators() []*recovery.TrimCoordinator { return d.trims }

// Preload inserts initial records directly into every replica's state
// machine, modeling a database initialized before the experiment starts
// (Figure 4 initializes 1 GB of data) without paying consensus for the
// load phase.
func (d *Deployment) Preload(entries []Entry) {
	part := d.Partitioner()
	for _, hs := range d.Replicas {
		for _, h := range hs {
			for _, e := range entries {
				if part.PartitionOf(e.Key) == h.Partition {
					h.SM.Data().Put(e.Key, e.Value)
				}
			}
		}
	}
}

// CrashReplica stops replica r of partition p and heals the rings around
// it, as the coordination service would (Section 8.5 terminates a replica
// at runtime).
func (d *Deployment) CrashReplica(p, r int) {
	h := d.Replicas[p][r]
	if h == nil || !h.stopped.CompareAndSwap(false, true) {
		return
	}
	h.Ex.Close()
	h.Replica.Stop()
	h.Learner.Stop()
	h.Node.Stop()
	dead := nodeIDFor(p, r)
	d.forEachLive(func(other *ReplicaHandle) {
		for _, ring := range other.Node.Rings() {
			if proc, ok := other.Node.Process(ring); ok {
				proc.SetPeerDown(dead, true)
			}
		}
	})
}

// RecoverReplica restarts a crashed replica: it retrieves the most recent
// checkpoint from its partition peers (quorum Q_R), installs it, rejoins
// its rings at the recovered instances, and the rings replay the suffix
// from the acceptors. It works for every committed partition — the seed
// partitions of Deploy and partitions appended by a live split alike —
// because ring memberships, roles, and subscription points are derived
// from the deployment's current schema (the same structure published to
// the coordination service), not from the static deploy config. A split
// partition's replica re-subscribes its runtime ring at the recovered
// frontier and resumes redirect behavior from the snapshot's schema state;
// if no checkpoint survives anywhere, it replays the full ring from the
// partition's deterministic birth state (warming, at the split's epoch).
func (d *Deployment) RecoverReplica(p, r int) error {
	cfg := d.cfg
	d.mu.RLock()
	committed := d.partitioner.N()
	valid := p >= 0 && p < committed && p < len(d.parts) && !d.parts[p].retired &&
		r >= 0 && p < len(d.Replicas) && r < len(d.Replicas[p])
	var meta partMeta
	var peers []transport.Addr
	var s Schema
	if valid {
		meta = d.parts[p]
		for i, other := range d.Replicas[p] {
			if i != r && other != nil && !other.Stopped() {
				peers = append(peers, meta.addrs[i])
			}
		}
		s = d.topologySchema()
	}
	d.mu.RUnlock()
	if !valid {
		// Provisioned-but-uncommitted partitions (mid-protocol) and retired
		// tombstones are not recoverable: their membership is not part of
		// the committed schema.
		return fmt.Errorf("store: no committed partition %d replica %d to recover", p, r)
	}
	members, err := schemaMemberships(s, p, r)
	if err != nil {
		return err
	}

	recEp, err := cfg.EndpointFor(meta.addrs[r] + "-recovery")
	if err != nil {
		return err
	}
	// The recovery conversation endpoint is transient: close it on every
	// path, including Recover errors (it used to leak there).
	defer func() { _ = recEp.Close() }()

	res, recErr := recovery.Recover(recovery.RecoverConfig{
		Endpoint: recEp,
		Peers:    peers,
		Local:    d.ReplicaAt(p, r).Ckpt,
		Timeout:  recoverTimeout,
	})
	if recErr != nil {
		return recErr
	}

	starts := recovery.StartInstances(res.Checkpoint.Tuple)
	var install *storage.Checkpoint
	if res.Found {
		install = &res.Checkpoint
	}
	h, err := d.buildReplicaAt(p, r, members, meta.birth, starts, install)
	if err != nil {
		return err
	}
	d.mu.Lock()
	d.Replicas[p][r] = h
	d.mu.Unlock()
	recovered := nodeIDFor(p, r)
	d.forEachLive(func(other *ReplicaHandle) {
		if other == h {
			return
		}
		for _, ring := range other.Node.Rings() {
			if proc, ok := other.Node.Process(ring); ok {
				proc.SetPeerDown(recovered, false)
			}
		}
	})
	return nil
}

func (d *Deployment) forEachLive(fn func(*ReplicaHandle)) {
	for _, hs := range d.Replicas {
		for _, h := range hs {
			if h != nil && !h.Stopped() {
				fn(h)
			}
		}
	}
}

// Stop shuts the whole deployment down. Lease managers go first so no
// claim is proposed against rings mid-teardown.
func (d *Deployment) Stop() {
	d.stopLeaseManagers()
	for _, tc := range d.trims {
		tc.Stop()
	}
	d.trims = nil
	d.mu.RLock()
	replicas := append([][]*ReplicaHandle(nil), d.Replicas...)
	d.mu.RUnlock()
	for _, hs := range replicas {
		for _, h := range hs {
			if h != nil && h.stopped.CompareAndSwap(false, true) {
				h.Ex.Close()
				h.Replica.Stop()
				h.Learner.Stop()
				h.Node.Stop()
			}
		}
	}
}

// AddPartition builds and starts the replicas of partition index part on a
// ring from the allocator (recycling retired ring IDs first), using the
// runtime subscription path: each replica's node and learner start empty
// and then splice the new ring in (Node.Subscribe / Learner.Subscribe).
// The partition starts warming — its state machines reject client commands
// until an opActivatePart command is delivered on the ring — and is not
// part of the committed topology until AdoptReconfig. part must be the
// next free partition index (the committed partitioner's N); it may reuse
// the tombstone of a retired partition at the top of the index space.
// partitioner is the post-split mapping; epoch its epoch.
func (d *Deployment) AddPartition(partitioner Partitioner, part int, epoch uint64) (ring msg.RingID, addrs []transport.Addr, err error) {
	cfg := d.cfg
	d.mu.Lock()
	switch {
	case part < len(d.parts) && !d.parts[part].retired:
		// A previous failed split left an orphan partition behind (or the
		// index is simply live); wiring a new one up would route the moved
		// range to the wrong replicas.
		d.mu.Unlock()
		return 0, nil, fmt.Errorf("store: partition index %d is already in use (%d provisioned, %d committed); resolve the stale partition first",
			part, len(d.parts), d.partitioner.N())
	case part > len(d.parts):
		d.mu.Unlock()
		return 0, nil, fmt.Errorf("store: partition index %d skips past %d provisioned partitions", part, len(d.parts))
	}
	if n := len(d.freeRings); n > 0 {
		ring = d.freeRings[n-1]
		d.freeRings = d.freeRings[:n-1]
	} else {
		ring = d.nextRing
		d.nextRing++
	}
	for r := 0; r < cfg.Replicas; r++ {
		addrs = append(addrs, cfg.AddrFor(part, r))
	}
	d.mu.Unlock()

	peers := make([]ringpaxos.Peer, cfg.Replicas)
	for r := 0; r < cfg.Replicas; r++ {
		peers[r] = ringpaxos.Peer{
			ID:    nodeIDFor(part, r),
			Addr:  addrs[r],
			Roles: ringpaxos.RoleProposer | ringpaxos.RoleAcceptor | ringpaxos.RoleLearner,
		}
	}
	birth := &splitBirth{epoch: epoch, partitioner: partitioner}
	members := []ringMembership{{ring: ring, peers: peers}}
	hs := make([]*ReplicaHandle, 0, cfg.Replicas)
	for r := 0; r < cfg.Replicas; r++ {
		h, herr := d.buildReplicaAt(part, r, members, birth, nil, nil)
		if herr != nil {
			for _, built := range hs {
				built.stopped.Store(true)
				built.Ex.Close()
				built.Replica.Stop()
				built.Learner.Stop()
				built.Node.Stop()
			}
			d.mu.Lock()
			d.freeRings = append(d.freeRings, ring)
			d.mu.Unlock()
			return 0, nil, herr
		}
		hs = append(hs, h)
	}
	d.mu.Lock()
	meta := partMeta{ring: ring, addrs: addrs, birth: birth}
	if part == len(d.parts) {
		d.Replicas = append(d.Replicas, hs)
		d.parts = append(d.parts, meta)
	} else {
		// Rebirth of a retired index: the tombstone's slot is reused.
		d.Replicas[part] = hs
		d.parts[part] = meta
	}
	d.mu.Unlock()
	if !cfg.Lease.Disabled {
		// Best effort: the new partition's reads pay for ordering until a
		// manager claims its ring, so a manager that fails to start must
		// not fail the split itself.
		_ = d.startLeaseManager(part)
	}
	return ring, addrs, nil
}

// RemovePartition tears down a provisioned-but-uncommitted partition
// (rollback of AddPartition when the reconfiguration protocol aborts). The
// partition's replicas are stopped and the entry reverts to a tombstone —
// its ring ID returns to the allocator and the index can be reused by the
// next split.
func (d *Deployment) RemovePartition(part int) error {
	d.stopLeaseManager(part)
	d.mu.Lock()
	if part < 0 || part >= len(d.parts) || part < d.partitioner.N() || d.parts[part].retired {
		n := len(d.parts)
		d.mu.Unlock()
		return fmt.Errorf("store: partition %d is not an uncommitted partition (%d parts, %d committed)",
			part, n, d.partitioner.N())
	}
	hs := d.Replicas[part]
	ring := d.parts[part].ring
	if part == len(d.parts)-1 {
		d.Replicas = d.Replicas[:part]
		d.parts = d.parts[:part]
	} else {
		d.Replicas[part] = nil
		d.parts[part] = partMeta{retired: true}
	}
	d.freeRings = append(d.freeRings, ring)
	d.mu.Unlock()
	for _, h := range hs {
		if h != nil && h.stopped.CompareAndSwap(false, true) {
			h.Ex.Close()
			h.Replica.Stop()
			h.Learner.Stop()
			h.Node.Stop()
		}
	}
	return nil
}

// RetirePartition tears down the ring of a partition that was merged away:
// each of its replicas splices the ring out of its deterministic merge
// (Learner.Unsubscribe at the teardown activation point), unsubscribes the
// ring at the node (Node.Unsubscribe — the process-level half of the
// paper's inverted group addressing), and stops. The partition entry
// becomes a tombstone and the ring ID returns to the allocator for the
// next split to recycle. The committed partitioner must no longer assign
// any range to the partition (i.e. the merge was committed first).
func (d *Deployment) RetirePartition(part int) error {
	d.stopLeaseManager(part)
	d.mu.Lock()
	if part < 0 || part >= len(d.parts) || part >= len(d.Replicas) {
		d.mu.Unlock()
		return fmt.Errorf("store: no partition %d to retire", part)
	}
	if d.parts[part].retired {
		d.mu.Unlock()
		return nil // idempotent: a resumed teardown retires at most once
	}
	if part < d.partitioner.N() {
		if rp, ok := d.partitioner.(*RangePartitioner); ok {
			for _, a := range rp.Assignments() {
				if a == part {
					d.mu.Unlock()
					return fmt.Errorf("store: partition %d still owns a key range; commit the merge before retiring it", part)
				}
			}
		} else {
			d.mu.Unlock()
			return fmt.Errorf("store: partition %d is part of the committed topology", part)
		}
	}
	hs := d.Replicas[part]
	ring := d.parts[part].ring
	d.Replicas[part] = nil
	d.parts[part] = partMeta{retired: true}
	d.freeRings = append(d.freeRings, ring)
	d.mu.Unlock()
	for _, h := range hs {
		if h == nil || !h.stopped.CompareAndSwap(false, true) {
			continue
		}
		h.Learner.Unsubscribe(ring, multiring.Activation{})
		_ = h.Node.Unsubscribe(ring)
		h.Ex.Close()
		h.Replica.Stop()
		h.Learner.Stop()
		h.Node.Stop()
	}
	return nil
}

// AdoptReconfig commits a reconfiguration into the deployment's topology:
// the partitioner and epoch advance, and clients created from (or
// refreshed against) the deployment route under the new mapping. Called by
// the rebalance coordinator after the moved range is fully migrated (and,
// for a split, the new partition activated), immediately before the
// ownership flip is ordered through the rings (opCommitReconfig).
func (d *Deployment) AdoptReconfig(epoch uint64, partitioner Partitioner) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if epoch > d.epoch {
		d.epoch = epoch
		d.partitioner = partitioner
		if epoch > d.viewEpoch {
			d.viewEpoch = epoch
		}
	}
}

// RevertReconfig undoes AdoptReconfig for an aborted reconfiguration: if
// the deployment sits exactly at the aborted epoch it falls back to the
// recorded pre-reconfiguration mapping; any other epoch is left alone (the
// adopt never happened, or a later reconfiguration superseded it). The
// committed epoch rolls back — the next plan reuses the aborted number —
// but the client-view watermark (viewEpoch) does not, so clients that saw
// the aborted epoch keep refreshing successfully.
func (d *Deployment) RevertReconfig(epoch uint64, prev Partitioner) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.epoch == epoch && prev != nil {
		d.epoch = epoch - 1
		d.partitioner = prev
	}
}

// currentView snapshots the committed routing state for a client.
func (d *Deployment) currentView() (routeView, error) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	v := routeView{
		epoch:       d.viewEpoch,
		partitioner: d.partitioner,
		global:      d.globalRing(),
		proposers:   make(map[msg.RingID][]transport.Addr),
	}
	n := d.partitioner.N()
	if !d.cfg.Lease.Disabled {
		v.leaseHolders = make([]transport.Addr, n)
	}
	for p := 0; p < n && p < len(d.parts); p++ {
		meta := d.parts[p]
		if meta.retired {
			// Tombstone of a merged-away index: keep the arrays aligned but
			// install no route (no key maps to it).
			v.rings = append(v.rings, 0)
			v.onGlobal = append(v.onGlobal, false)
			continue
		}
		v.rings = append(v.rings, meta.ring)
		v.onGlobal = append(v.onGlobal, meta.onGlobal)
		v.proposers[meta.ring] = append([]transport.Addr(nil), meta.addrs...)
		if v.leaseHolders != nil && len(meta.addrs) > 0 {
			// Advisory fast-path route: the designated holder, when up. The
			// replica itself decides whether it may actually serve.
			hIdx := leaseHolderIdx(len(meta.addrs))
			if h := d.handleAt(p, hIdx); h != nil && !h.Stopped() {
				v.leaseHolders[p] = meta.addrs[hIdx]
			}
		}
	}
	if v.global != 0 {
		var addrs []transport.Addr
		for p := 0; p < d.cfg.Partitions; p++ {
			addrs = append(addrs, d.parts[p].addrs[0])
		}
		v.proposers[v.global] = addrs
	}
	return v, nil
}

// NewClient creates a store client with a fresh endpoint and unique ID.
func (d *Deployment) NewClient() *Client {
	id := 1_000_000 + d.nextID.Add(1)
	ep, err := d.cfg.EndpointFor(transport.Addr(fmt.Sprintf("store-client-%d", id)))
	if err != nil {
		panic(fmt.Sprintf("store: client endpoint: %v", err))
	}
	return d.NewClientAt(ep, id)
}

// NewClientAt creates a client on a caller-provided endpoint (e.g. placed
// in a specific region of a WAN simulation). The client routes by the
// deployment's live topology: it refreshes its cached view whenever a
// replica answers with the typed wrong-epoch redirect.
func (d *Deployment) NewClientAt(ep transport.Endpoint, id uint64) *Client {
	return newClient(ep, id, d, d.cfg.CmdBatch)
}

// NewRegistryClient creates a client that discovers and refreshes the
// partitioning schema through the coordination service instead of the
// deployment handle: the initial view comes from LoadSchema and a
// coalescing watch on the schema node triggers refreshes as rebalances
// publish new epochs (stale routes additionally self-correct through
// wrong-epoch redirects). The deployment must have published its schema.
func (d *Deployment) NewRegistryClient(reg *registry.Registry) (*Client, error) {
	id := 1_000_000 + d.nextID.Add(1)
	ep, err := d.cfg.EndpointFor(transport.Addr(fmt.Sprintf("store-client-%d", id)))
	if err != nil {
		return nil, err
	}
	src := &registrySource{reg: reg}
	if _, err := src.currentView(); err != nil {
		_ = ep.Close()
		return nil, err
	}
	c := newClient(ep, id, src, d.cfg.CmdBatch)
	c.watchSchema(reg)
	return c, nil
}
