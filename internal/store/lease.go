package store

import (
	"fmt"
	"sync"
	"time"

	"mrp/internal/msg"
	"mrp/internal/registry"
	"mrp/internal/smr"
	"mrp/internal/transport"
)

// LeasePolicy configures ring leases for consensus-free local reads (see
// internal/smr's lease.go for the protocol). The zero value ENABLES leases
// with defaults — local reads are the common case the optimization exists
// for — so deployments opt out with Disabled rather than opting in.
type LeasePolicy struct {
	// Disabled routes every read through consensus (the pre-lease
	// behavior) and starts no lease managers.
	Disabled bool
	// Duration is the lease duration D carried in every claim: the
	// holder's serve window and the other replicas' silence window are
	// both bounded by it (default 1.5 s).
	Duration time.Duration
	// Margin is subtracted from the holder's serve window
	// (T_send + Duration − Margin) to absorb clock-RATE drift between
	// processes over one Duration; absolute clock offsets cancel out of
	// the protocol entirely (default Duration/5).
	Margin time.Duration
	// RenewEvery is the claim cadence; well under Duration so a healthy
	// holder's window never lapses between renewals (default Duration/3).
	RenewEvery time.Duration
}

func (p LeasePolicy) withDefaults() LeasePolicy {
	if p.Duration <= 0 {
		p.Duration = 1500 * time.Millisecond
	}
	if p.Margin <= 0 || p.Margin >= p.Duration {
		p.Margin = p.Duration / 5
	}
	if p.RenewEvery <= 0 {
		p.RenewEvery = p.Duration / 3
	}
	return p
}

// LeaseHolderPath is the coordination-service node advertising partition
// p's current lease holder (its service address). Advisory routing state:
// a stale advertisement costs a client one declined or timed-out local
// read before it falls back to the ordered path, never a wrong result.
func LeaseHolderPath(p int) string { return fmt.Sprintf("/mrp-store/leases/p%d", p) }

// RevokeLease orders a lease revocation on ring: every replica that
// delivers it deactivates its replicated lease table, so the holder stops
// serving local reads and — no longer named by the lease — resumes
// answering ordered commands as it applies them. The other replicas'
// silence windows keep running on their own clocks (the old holder may
// still serve reads until it applies the revoke, so an early ack from
// anyone else could outrun the holder's applied state). The rebalance
// coordinator orders one on the same ring as each reconfiguration
// prepare, immediately before it, so no lease granted against the
// pre-freeze state spans the freeze (the partition's lease manager
// re-establishes a lease afterwards, and that claim's grant frontier
// covers the prepare). On a deployment whose ordering ring is shared (the
// global ring), the revocation reaches every subscribed partition; the
// cost is one renewal interval of ordered reads there, not a correctness
// concern.
//
//mrp:ordered
func (c *Client) RevokeLease(ring msg.RingID) error {
	raw, err := c.smr.Execute(ring, smr.EncodeLeaseRevoke())
	if err != nil {
		return err
	}
	if ack, ok := smr.DecodeLeaseAck(raw); !ok || ack.Active {
		return fmt.Errorf("store: lease revoke on ring %d not acknowledged", ring)
	}
	return nil
}

// leaseHolderIdx is the replica index designated as a partition's lease
// holder: the second replica when one exists. Replica 0's node is the
// ring's coordinator, and the seed tolerates only non-coordinator acceptor
// crashes — pinning the lease to a different replica keeps a holder crash
// survivable (the ring keeps ordering while the lease lapses) and keeps
// the read-serving load off the proposal leader.
func leaseHolderIdx(replicas int) int {
	if replicas > 1 {
		return 1
	}
	return 0
}

// leaseManager keeps one partition's read lease claimed for its designated
// holder (see leaseHolderIdx): every RenewEvery it fixes the serve deadline
// from its own clock, registers it at the holder, and proposes an ordered
// claim on the partition's ring. It is deployment-side plumbing, not
// protocol — all safety lives in the replicas' lease state machine.
type leaseManager struct {
	d   *Deployment
	p   int
	pol LeasePolicy
	ep  transport.Endpoint
	cl  *smr.Client

	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
}

// startLeaseManager launches the lease manager of partition p.
func (d *Deployment) startLeaseManager(p int) error {
	id := 2_000_000 + d.nextID.Add(1)
	ep, err := d.cfg.EndpointFor(transport.Addr(fmt.Sprintf("store-lease-p%d-%d", p, id)))
	if err != nil {
		return err
	}
	m := &leaseManager{
		d:   d,
		p:   p,
		pol: d.cfg.Lease,
		ep:  ep,
		cl: smr.NewClient(smr.ClientConfig{
			ID:       id,
			Endpoint: ep,
			Timeout:  d.cfg.Lease.Duration,
			Batch:    smr.BatchPolicy{Disabled: true},
		}),
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	d.leaseMu.Lock()
	if d.leaseMgrs == nil {
		d.leaseMgrs = make(map[int]*leaseManager)
	}
	old := d.leaseMgrs[p]
	d.leaseMgrs[p] = m
	d.leaseMu.Unlock()
	if old != nil {
		old.Stop()
	}
	go m.run()
	return nil
}

// stopLeaseManager stops (and forgets) partition p's lease manager, if any.
func (d *Deployment) stopLeaseManager(p int) {
	d.leaseMu.Lock()
	m := d.leaseMgrs[p]
	delete(d.leaseMgrs, p)
	d.leaseMu.Unlock()
	if m != nil {
		m.Stop()
	}
}

// stopLeaseManagers stops every lease manager (deployment teardown).
func (d *Deployment) stopLeaseManagers() {
	d.leaseMu.Lock()
	ms := make([]*leaseManager, 0, len(d.leaseMgrs))
	for _, m := range d.leaseMgrs {
		ms = append(ms, m)
	}
	d.leaseMgrs = nil
	d.leaseMu.Unlock()
	for _, m := range ms {
		m.Stop()
	}
}

// setLeaseRegistry records the coordination service lease managers
// advertise holders in. Publishing the schema is the moment a registry
// becomes part of a deployment, so every Publish* variant calls this.
func (d *Deployment) setLeaseRegistry(reg *registry.Registry) {
	d.leaseMu.Lock()
	d.leaseReg = reg
	d.leaseMu.Unlock()
}

func (d *Deployment) leaseRegistry() *registry.Registry {
	d.leaseMu.Lock()
	defer d.leaseMu.Unlock()
	return d.leaseReg
}

// Stop halts the manager. Closing the client first unblocks a claim in
// flight, so Stop never waits out a proposal timeout against a ring that
// is being torn down.
func (m *leaseManager) Stop() {
	m.stopOnce.Do(func() { close(m.stop) })
	m.cl.Close()
	<-m.done
	_ = m.ep.Close()
}

func (m *leaseManager) run() {
	defer close(m.done)
	defer m.unadvertise()
	t := time.NewTicker(m.pol.RenewEvery)
	defer t.Stop()
	for {
		m.renew()
		select {
		case <-t.C:
		case <-m.stop:
			return
		}
	}
}

// renew proposes one ordered claim for the partition's designated holder
// and refreshes the advertisement. Failures are left to the next tick —
// the worst outcome of a missed renewal is reads temporarily paying for
// ordering again.
func (m *leaseManager) renew() {
	d := m.d
	d.mu.RLock()
	ok := m.p < len(d.parts) && !d.parts[m.p].retired
	var meta partMeta
	if ok {
		meta = d.parts[m.p]
		meta.addrs = append([]transport.Addr(nil), meta.addrs...)
	}
	d.mu.RUnlock()
	if !ok {
		m.unadvertise()
		return
	}
	hIdx := leaseHolderIdx(len(meta.addrs))
	h := d.ReplicaAt(m.p, hIdx)
	if h == nil || h.Stopped() {
		// The holder is down. Claiming now would re-arm every survivor's
		// silence window while nobody serves: let the outstanding lease
		// lapse so the survivors resume acknowledging writes, and withdraw
		// the advertisement so clients stop probing a dead holder.
		m.unadvertise()
		return
	}
	m.cl.SetProposers(meta.ring, meta.addrs)
	seq := m.cl.Reserve()
	// T_send is read BEFORE the claim is proposed: the serve window must
	// be anchored no later than any replica's apply of this claim for the
	// no-overlap bound to hold (see internal/smr's lease.go).
	deadline := time.Now().Add(m.pol.Duration - m.pol.Margin)
	h.Replica.RegisterLeaseClaim(m.cl.ID(), seq, deadline)
	claim := smr.EncodeLeaseClaim(nodeIDFor(m.p, hIdx), m.pol.Duration)
	if _, err := m.cl.ExecuteGatherAt(seq, []msg.RingID{meta.ring}, claim, 1, nil); err != nil {
		return
	}
	m.advertise(meta.addrs[hIdx])
}

func (m *leaseManager) advertise(addr transport.Addr) {
	if reg := m.d.leaseRegistry(); reg != nil {
		reg.SetIfChanged(LeaseHolderPath(m.p), []byte(addr))
	}
}

func (m *leaseManager) unadvertise() {
	if reg := m.d.leaseRegistry(); reg != nil {
		reg.Delete(LeaseHolderPath(m.p))
	}
}
