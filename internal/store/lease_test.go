package store

import (
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"mrp/internal/netsim"
	"mrp/internal/storage"
	"mrp/internal/ycsb"
)

// This file is the linearizability suite for lease-served local reads:
// YCSB-A-shaped traffic (50/50 read/update, zipfian keys) drives a
// deployment through the three hazards the lease protocol must survive —
// serve windows lapsing mid-traffic, the holder crashing and recovering,
// and a live split/merge revoking leases mid-flight — while every read is
// checked against two client-observable consequences of linearizability:
//
//   - Staleness floor (subsumes read-your-writes): each key has a single
//     logical writer stamping strictly increasing versions; a read that
//     BEGAN after version n was acknowledged must return ≥ n. A lease
//     holder serving past its window, or before its applied frontier
//     covers the grant, fails exactly this check.
//   - Monotonic reads: one client's successive reads of a key never go
//     backwards in version — the hazard of alternating between a stale
//     local path and the ordered path.
//
// The checks are per-key and client-local — no global history collection —
// so the suite runs hot (and race-clean) enough to keep the hazard
// windows busy.

// leaseLinConfig shapes one linearizability scenario run.
type leaseLinConfig struct {
	keys    int           // distinct keys, one logical writer each
	writers int           // writer-reader threads (keys striped across them)
	readers int           // additional read-only threads
	dur     time.Duration // traffic duration; the scenario fires a quarter in
}

// deployLeaseStore deploys a two-partition range store (boundary halfway
// through the YCSB key space) with the given lease policy.
func deployLeaseStore(t *testing.T, keys int, pol LeasePolicy) *Deployment {
	t.Helper()
	net := netsim.New(netsim.WithUniformLatency(20 * time.Microsecond))
	d, err := Deploy(DeployConfig{
		Net:          net,
		Partitions:   2,
		Replicas:     3,
		GlobalRing:   true,
		Partitioner:  NewRangePartitioner([]string{ycsb.Key(keys / 2)}),
		StorageMode:  storage.InMemory,
		Lease:        pol,
		SkipInterval: 5 * time.Millisecond,
		SkipRate:     9000,
		RetryTimeout: 60 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		d.Stop()
		net.Close()
	})
	return d
}

// ycsbIndex recovers the record index from a ycsb.Key-formatted key.
func ycsbIndex(t *testing.T, key string) int {
	n, err := strconv.Atoi(key[len("user"):])
	if err != nil {
		t.Fatalf("unexpected ycsb key %q", key)
	}
	return n
}

// leaseLinRun drives checked YCSB-A traffic against d while scenario
// (which may be nil) executes once, a quarter into the run. It returns
// the number of lease-served reads so callers can assert the fast path
// was actually on trial, not vacuously bypassed.
func leaseLinRun(t *testing.T, d *Deployment, cfg leaseLinConfig, scenario func()) int64 {
	t.Helper()

	// Preload every key at version 0 so a read never legitimately misses.
	loader := d.NewClient()
	for k := 0; k < cfg.keys; k++ {
		if err := loader.Insert(ycsb.Key(k), []byte("0")); err != nil {
			loader.Close()
			t.Fatalf("preload %d: %v", k, err)
		}
	}
	loader.Close()

	// acked[k] is the highest version of key k whose write has been
	// acknowledged — the staleness floor any later-starting read must meet.
	acked := make([]atomic.Int64, cfg.keys)
	var leaseReads atomic.Int64
	errCh := make(chan error, 1)
	fail := func(err error) {
		select {
		case errCh <- err:
		default:
		}
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup

	worker := func(id int, writes bool) {
		defer wg.Done()
		cl := d.NewClient()
		defer func() {
			leaseReads.Add(cl.LeaseReads())
			cl.Close()
		}()
		gen := ycsb.New(ycsb.Config{Workload: ycsb.WorkloadA, RecordCount: cfg.keys, ValueSize: 16, Seed: int64(101 + id)})
		lastSeen := make([]int64, cfg.keys)
		next := make([]int64, cfg.keys)
		for {
			select {
			case <-stop:
				return
			default:
			}
			op := gen.Next()
			k := ycsbIndex(t, op.Key)
			if writes && op.Kind == ycsb.OpUpdate {
				// Re-stripe the drawn key onto this writer's slice so each
				// key keeps a single logical writer and versions totally
				// order.
				k = k - k%cfg.writers + id
				if k >= cfg.keys {
					k -= cfg.writers
				}
				v := next[k] + 1
				if err := cl.Update(ycsb.Key(k), []byte(strconv.FormatInt(v, 10))); err != nil {
					fail(fmt.Errorf("update %s to %d: %w", ycsb.Key(k), v, err))
					return
				}
				next[k] = v
				acked[k].Store(v)
				continue
			}
			floor := acked[k].Load()
			raw, err := cl.Read(ycsb.Key(k))
			if err != nil {
				fail(fmt.Errorf("read %s: %w", ycsb.Key(k), err))
				return
			}
			v, perr := strconv.ParseInt(string(raw), 10, 64)
			if perr != nil {
				fail(fmt.Errorf("read %s: undecodable version %q", ycsb.Key(k), raw))
				return
			}
			if v < floor {
				fail(fmt.Errorf("stale read of %s: version %d, but %d was acked before the read began", ycsb.Key(k), v, floor))
				return
			}
			if v < lastSeen[k] {
				fail(fmt.Errorf("non-monotonic reads of %s: %d after %d", ycsb.Key(k), v, lastSeen[k]))
				return
			}
			lastSeen[k] = v
		}
	}

	for id := 0; id < cfg.writers; id++ {
		wg.Add(1)
		go worker(id, true)
	}
	for id := 0; id < cfg.readers; id++ {
		wg.Add(1)
		go worker(cfg.writers+id, false)
	}

	time.Sleep(cfg.dur / 4)
	if scenario != nil {
		scenario()
	}
	time.Sleep(3 * cfg.dur / 4)
	close(stop)
	wg.Wait()
	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}
	return leaseReads.Load()
}

// TestLeaseReadsLinearizableUnderExpiry runs an aggressive lease policy
// whose serve window (Duration − Margin = 40ms) lapses BEFORE the renewal
// cadence (45ms) every cycle: each renewal interval ends with an expired
// holder declining local reads until the next claim lands. Reads cross
// the expiry boundary constantly; none may be stale or non-monotonic.
func TestLeaseReadsLinearizableUnderExpiry(t *testing.T) {
	const keys = 64
	d := deployLeaseStore(t, keys, LeasePolicy{
		Duration:   60 * time.Millisecond,
		Margin:     20 * time.Millisecond,
		RenewEvery: 45 * time.Millisecond,
	})
	hits := leaseLinRun(t, d, leaseLinConfig{keys: keys, writers: 4, readers: 2, dur: 1500 * time.Millisecond}, nil)
	if hits == 0 {
		t.Fatal("lease fast path never served a read; the suite checked nothing")
	}
}

// TestLeaseReadsLinearizableAcrossHolderCrash crashes partition 1's lease
// holder mid-traffic and recovers it: the manager stops claiming while the
// holder is down (so the outstanding lease lapses and the survivors resume
// answering), then re-establishes the lease on the recovered holder —
// whose restored lease table must re-arm silence, not resume serving on
// the stale pre-crash window.
func TestLeaseReadsLinearizableAcrossHolderCrash(t *testing.T) {
	const keys = 64
	d := deployLeaseStore(t, keys, LeasePolicy{
		Duration:   200 * time.Millisecond,
		Margin:     40 * time.Millisecond,
		RenewEvery: 66 * time.Millisecond,
	})
	holder := leaseHolderIdx(3)
	hits := leaseLinRun(t, d, leaseLinConfig{keys: keys, writers: 4, readers: 2, dur: 2 * time.Second}, func() {
		d.CrashReplica(1, holder)
		time.Sleep(500 * time.Millisecond)
		if err := d.RecoverReplica(1, holder); err != nil {
			t.Errorf("recover holder: %v", err)
		}
	})
	if hits == 0 {
		t.Fatal("lease fast path never served a read; the suite checked nothing")
	}
}

// TestLeaseReadsLinearizableAcrossSplitMerge splits the busy partition
// mid-traffic and merges it back: the prepares (preceded by ordered lease
// revocations, as the rebalance coordinator orders them) freeze ranges
// out from under advertised holders, and the retirement tears down the
// split-born ring while its lease is still advertised. Readers must ride
// the typed redirects and timeouts onto the ordered path without ever
// observing a stale or non-monotonic version.
func TestLeaseReadsLinearizableAcrossSplitMerge(t *testing.T) {
	const keys = 64
	d := deployLeaseStore(t, keys, LeasePolicy{
		Duration:   300 * time.Millisecond,
		Margin:     60 * time.Millisecond,
		RenewEvery: 100 * time.Millisecond,
	})
	admin := d.NewClient()
	defer admin.Close()
	hits := leaseLinRun(t, d, leaseLinConfig{keys: keys, writers: 4, readers: 2, dur: 2 * time.Second}, func() {
		// Carve the top quarter of the key space out of partition 1, then
		// drain it back and retire its ring.
		newPart := liveSplit(t, d, admin, 1, ycsb.Key(3*keys/4))
		time.Sleep(300 * time.Millisecond)
		liveMerge(t, d, admin, 1, newPart)
	})
	if hits == 0 {
		t.Fatal("lease fast path never served a read; the suite checked nothing")
	}
}
