package store

import (
	"fmt"

	"mrp/internal/msg"
	"mrp/internal/ringpaxos"
)

// This file is the single place ring memberships come from: both Deploy
// and RecoverReplica derive who sits on which ring, in which order, with
// which Paxos roles, from the versioned Schema — the same structure that
// is published to the coordination service. Deriving memberships from the
// schema instead of the static DeployConfig is what makes recovery work
// for partitions that did not exist at deploy time (live splits).

// ringMembership names one ring a replica subscribes to together with the
// ring's full peer list in ring order — everything a ringpaxos.Config
// needs beyond tuning knobs.
type ringMembership struct {
	ring  msg.RingID
	peers []ringpaxos.Peer
}

// schemaMemberships derives the ring memberships of replica r of partition
// p from the schema: the partition's own ring (every replica is proposer,
// acceptor, and learner) plus, when the partition subscribes to the global
// ring, the global ring (every subscribed replica proposes and learns; the
// first replica of each subscribed partition is additionally an acceptor,
// exactly as Deploy wires it).
func schemaMemberships(s Schema, p, r int) ([]ringMembership, error) {
	if p < 0 || p >= s.Partitions || p >= len(s.Replicas) {
		return nil, fmt.Errorf("store: schema (epoch %d) has no partition %d", s.Epoch, p)
	}
	if schemaRetired(s, p) {
		return nil, fmt.Errorf("store: partition %d was retired by a merge (schema epoch %d)", p, s.Epoch)
	}
	if r < 0 || r >= len(s.Replicas[p]) {
		return nil, fmt.Errorf("store: schema (epoch %d) has no replica %d in partition %d", s.Epoch, r, p)
	}
	out := []ringMembership{{ring: s.RingOf(p), peers: partitionPeers(s, p)}}
	if s.GlobalRing && schemaOnGlobal(s, p) {
		out = append(out, ringMembership{ring: s.globalRingID(), peers: globalPeers(s)})
	}
	return out, nil
}

// partitionPeers lists partition p's ring members in ring order.
func partitionPeers(s Schema, p int) []ringpaxos.Peer {
	peers := make([]ringpaxos.Peer, 0, len(s.Replicas[p]))
	for r, addr := range s.Replicas[p] {
		peers = append(peers, ringpaxos.Peer{
			ID:    nodeIDFor(p, r),
			Addr:  addr,
			Roles: ringpaxos.RoleProposer | ringpaxos.RoleAcceptor | ringpaxos.RoleLearner,
		})
	}
	return peers
}

// globalPeers lists the global ring's members: all replicas of every
// partition subscribed to it, partition-major, so every derivation of the
// membership — at deploy time or during a recovery — agrees on the ring
// order.
func globalPeers(s Schema) []ringpaxos.Peer {
	var peers []ringpaxos.Peer
	for p := 0; p < s.Partitions && p < len(s.Replicas); p++ {
		if !schemaOnGlobal(s, p) {
			continue
		}
		for r, addr := range s.Replicas[p] {
			peer := ringpaxos.Peer{
				ID:    nodeIDFor(p, r),
				Addr:  addr,
				Roles: ringpaxos.RoleProposer | ringpaxos.RoleLearner,
			}
			if r == 0 {
				// Only the first replica of each partition accepts on the
				// global ring; everyone learns and proposes.
				peer.Roles |= ringpaxos.RoleAcceptor
			}
			peers = append(peers, peer)
		}
	}
	return peers
}

// schemaOnGlobal reports whether partition p subscribes to the global
// ring; schemas published before OnGlobal existed had every partition on
// it.
func schemaOnGlobal(s Schema, p int) bool {
	return p >= len(s.OnGlobal) || s.OnGlobal[p]
}

// schemaRetired reports whether partition p's index was merged away.
func schemaRetired(s Schema, p int) bool {
	return p < len(s.Retired) && s.Retired[p]
}

// globalRingID returns the global ring's identifier, falling back to the
// legacy static mapping for schemas published before it was explicit.
func (s Schema) globalRingID() msg.RingID {
	if s.GlobalRingID != 0 {
		return msg.RingID(s.GlobalRingID)
	}
	return msg.RingID(s.Partitions + 1)
}
