package store

import (
	"bytes"
	"fmt"
	"sync/atomic"
	"testing"
	"time"
)

// TestRangePartitionerMerge pins the key-mapping half of a partition
// merge: slots reassigned without renumbering, same-owner neighbors
// coalesced (so a later split at the same key works), the index space
// shrinking only past the top, and range fan-outs deduplicated.
func TestRangePartitionerMerge(t *testing.T) {
	base := NewRangePartitioner([]string{"g", "p"}) // 0:[,g) 1:[g,p) 2:[p,)
	split, err := base.Split("j", 3)                // slot [j,p) -> 3
	if err != nil {
		t.Fatal(err)
	}
	if split.N() != 4 {
		t.Fatalf("N after split = %d", split.N())
	}

	// Merge the split-born top index back into its left neighbor.
	merged, err := split.Merge(3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if merged.N() != 3 {
		t.Fatalf("N after merge = %d", merged.N())
	}
	for k, want := range map[string]int{"a": 0, "g": 1, "j": 1, "o": 1, "p": 2, "z": 2} {
		if got := merged.PartitionOf(k); got != want {
			t.Fatalf("merged PartitionOf(%q) = %d, want %d", k, got, want)
		}
	}
	// The boundary "j" was coalesced away: splitting there again works.
	if _, err := merged.Merge(3, 1); err == nil {
		t.Fatal("merging a retired index succeeded")
	}
	resplit, err := merged.Split("j", 3)
	if err != nil {
		t.Fatalf("re-split at coalesced boundary: %v", err)
	}
	if resplit.PartitionOf("j") != 3 {
		t.Fatalf("re-split assignment: %v / %v", resplit.Bounds(), resplit.Assignments())
	}

	// Merging a mid-space index retires it sparsely: N stays, no slot
	// assigns to it, and fan-outs over the merged span dedupe the owner.
	midMerged, err := split.Merge(1, 0) // 1:[g,j) into 0:[,g)
	if err != nil {
		t.Fatal(err)
	}
	if midMerged.N() != 4 {
		t.Fatalf("N after mid merge = %d", midMerged.N())
	}
	for _, a := range midMerged.Assignments() {
		if a == 1 {
			t.Fatalf("retired index still assigned: %v", midMerged.Assignments())
		}
	}
	parts := midMerged.PartitionsForRange("a", "k")
	if len(parts) != 2 || parts[0] != 0 || parts[1] != 3 {
		t.Fatalf("fan-out over merged span = %v", parts)
	}

	// Validation: self-merge, empty donor, non-adjacent donors.
	if _, err := split.Merge(2, 2); err == nil {
		t.Fatal("self merge succeeded")
	}
	if _, err := split.Merge(9, 0); err == nil {
		t.Fatal("merge of unknown donor succeeded")
	}
	if _, err := split.Merge(0, 2); err == nil {
		t.Fatal("non-adjacent merge succeeded")
	}
}

// mergeOps drives one SM through the donor or destination half of the
// merge protocol ops.
func prepDest(t *testing.T, sm *SM, donor, dest int, epoch uint64) result {
	t.Helper()
	return execOp(t, sm, op{kind: opPrepareReconfig, rkind: reconfigMergeDest, epoch: epoch,
		part: uint16(donor), newPart: uint16(dest)})
}

func prepDonor(t *testing.T, sm *SM, donor, dest int, epoch uint64) result {
	t.Helper()
	return execOp(t, sm, op{kind: opPrepareReconfig, rkind: reconfigMergeDonor, epoch: epoch,
		part: uint16(donor), newPart: uint16(dest)})
}

// TestSMMergeLifecycle walks a donor and a survivor SM through prepare,
// copy, commit: the donor freezes (keyed redirect, scans still served),
// the survivor hides half-transferred entries until the commit flips the
// mapping, then serves the donor's range.
func TestSMMergeLifecycle(t *testing.T) {
	part := NewRangePartitioner([]string{"m"}) // 0:[,m) 1:[m,)
	donor := NewSM(1, part)
	dest := NewSM(0, part)
	execOp(t, donor, op{kind: opInsert, epoch: 1, key: "q", value: []byte("vq")})
	execOp(t, donor, op{kind: opInsert, epoch: 1, key: "t", value: []byte("vt")})
	execOp(t, dest, op{kind: opInsert, epoch: 1, key: "a", value: []byte("va")})

	// Arm the survivor, freeze the donor.
	if res := prepDest(t, dest, 1, 0, 2); res.status != statusOK {
		t.Fatalf("dest prepare = %+v", res)
	}
	res := prepDonor(t, donor, 1, 0, 2)
	if res.status != statusOK || len(res.entries) != 2 {
		t.Fatalf("donor prepare = %+v", res)
	}
	// A second prepare at the same epoch resolves the first attempt as
	// aborted and re-freezes, returning the entries again (retry
	// semantics; literal duplicates are deduplicated below the SM).
	if res := prepDonor(t, donor, 1, 0, 2); len(res.entries) != 2 {
		t.Fatalf("donor re-prepare = %+v", res)
	}
	// Frozen donor: every command redirects — including scans, because the
	// donor never learns of the survivor's commit and serving its frozen
	// copy afterwards would be a stale read.
	if r := execOp(t, donor, op{kind: opRead, epoch: 1, key: "q"}); r.status != statusWrongEpoch {
		t.Fatalf("frozen read = %+v", r)
	}
	if r := execOp(t, donor, op{kind: opUpdate, epoch: 1, key: "q", value: []byte("x")}); r.status != statusWrongEpoch {
		t.Fatalf("frozen write = %+v", r)
	}
	if r := execOp(t, donor, op{kind: opScan, epoch: 1, key: "", to: ""}); r.status != statusWrongEpoch {
		t.Fatalf("frozen scan = %+v", r)
	}

	// Copy into the live survivor; pre-commit it hides the entries from
	// scans and redirects post-merge-epoch scans entirely.
	mig := op{kind: opMigrate, epoch: 2, part: 0}
	for _, e := range res.entries {
		mig.batch = append(mig.batch, op{kind: opInsert, epoch: 2, key: e.Key, value: e.Value})
	}
	if r := execOp(t, dest, mig); r.status != statusOK || r.count != 2 {
		t.Fatalf("migrate into survivor = %+v", r)
	}
	if r := execOp(t, dest, op{kind: opScan, epoch: 1, key: "", to: ""}); len(r.entries) != 1 {
		t.Fatalf("pre-commit scan leaked transferred entries: %+v", r.entries)
	}
	if r := execOp(t, dest, op{kind: opScan, epoch: 2, key: "", to: ""}); r.status != statusWrongEpoch {
		t.Fatalf("post-epoch scan before commit = %+v", r)
	}
	if r := execOp(t, dest, op{kind: opRead, epoch: 2, key: "q"}); r.status != statusWrongEpoch {
		t.Fatalf("pre-commit read of donor key = %+v", r)
	}

	// Commit on the survivor: merged mapping, donor range served.
	commit := op{kind: opCommitReconfig, rkind: reconfigMergeDest, epoch: 2, part: 1, newPart: 0}
	if r := execOp(t, dest, commit); r.status != statusOK || r.epoch != 2 {
		t.Fatalf("commit = %+v", r)
	}
	if dest.Epoch() != 2 || dest.Pending() != 0 {
		t.Fatalf("survivor after commit: epoch=%d pending=%d", dest.Epoch(), dest.Pending())
	}
	if r := execOp(t, dest, op{kind: opRead, epoch: 2, key: "q"}); r.status != statusOK || string(r.value) != "vq" {
		t.Fatalf("post-commit read = %+v", r)
	}
	if r := execOp(t, dest, op{kind: opScan, epoch: 2, key: "", to: ""}); len(r.entries) != 3 {
		t.Fatalf("post-commit scan = %+v", r.entries)
	}
	// Replayed commit is idempotent.
	if r := execOp(t, dest, commit); r.status != statusOK {
		t.Fatalf("replayed commit = %+v", r)
	}
}

// TestSMMergeAbort checks the ordered abort on both sides: the donor
// unfreezes with its data intact, the survivor drops half-transferred
// entries and serves exactly its own range again.
func TestSMMergeAbort(t *testing.T) {
	part := NewRangePartitioner([]string{"m"})
	donor := NewSM(1, part)
	dest := NewSM(0, part)
	execOp(t, donor, op{kind: opInsert, epoch: 1, key: "q", value: []byte("vq")})
	execOp(t, dest, op{kind: opInsert, epoch: 1, key: "a", value: []byte("va")})
	prepDest(t, dest, 1, 0, 2)
	moved := prepDonor(t, donor, 1, 0, 2)
	execOp(t, dest, op{kind: opMigrate, epoch: 2, part: 0, batch: []op{
		{kind: opInsert, epoch: 2, key: moved.entries[0].Key, value: moved.entries[0].Value},
	}})

	abort := op{kind: opAbortReconfig, epoch: 2}
	if r := execOp(t, donor, abort); r.status != statusOK {
		t.Fatalf("donor abort = %+v", r)
	}
	if r := execOp(t, dest, abort); r.status != statusOK {
		t.Fatalf("dest abort = %+v", r)
	}
	// Donor serves again, data intact.
	if r := execOp(t, donor, op{kind: opRead, epoch: 1, key: "q"}); r.status != statusOK {
		t.Fatalf("post-abort donor read = %+v", r)
	}
	// Survivor dropped the transferred chunk.
	if _, ok := dest.Data().Get("q"); ok {
		t.Fatal("aborted survivor kept transferred entry")
	}
	if donor.Pending() != 0 || dest.Pending() != 0 {
		t.Fatalf("pending after abort: donor=%d dest=%d", donor.Pending(), dest.Pending())
	}
	// A stray abort (no pending state) is an idempotent no-op.
	if r := execOp(t, donor, abort); r.status != statusOK {
		t.Fatalf("idempotent abort = %+v", r)
	}
	// The same epoch can be prepared again after the abort.
	if r := prepDonor(t, donor, 1, 0, 2); r.status != statusOK || len(r.entries) != 1 {
		t.Fatalf("re-prepare after abort = %+v", r)
	}
}

// TestSMSplitAbortRestoresMapping checks the split abort restores the
// pre-split mapping (prev partitioner) so the source serves the whole
// range again — including after a snapshot/restore cycle taken while the
// split was pending.
func TestSMSplitAbortRestoresMapping(t *testing.T) {
	sm := NewSM(1, NewRangePartitioner([]string{"g"}))
	execOp(t, sm, op{kind: opInsert, epoch: 1, key: "q", value: []byte("vq")})
	execOp(t, sm, op{kind: opPrepareReconfig, rkind: reconfigSplit, epoch: 2, part: 1, newPart: 2, key: "p"})
	if r := execOp(t, sm, op{kind: opRead, epoch: 1, key: "q"}); r.status != statusWrongEpoch {
		t.Fatalf("frozen read = %+v", r)
	}

	// A replica restored from a mid-split checkpoint aborts identically.
	restored := NewSM(1, NewRangePartitioner([]string{"g"}))
	restored.Restore(sm.Snapshot())

	for _, m := range []*SM{sm, restored} {
		if r := execOp(t, m, op{kind: opAbortReconfig, epoch: 2}); r.status != statusOK {
			t.Fatalf("abort = %+v", r)
		}
		if r := execOp(t, m, op{kind: opRead, epoch: 1, key: "q"}); r.status != statusOK {
			t.Fatalf("post-abort read = %+v", r)
		}
		if m.Epoch() != 1 || m.Pending() != 0 {
			t.Fatalf("post-abort state: epoch=%d pending=%d", m.Epoch(), m.Pending())
		}
	}
	if !bytes.Equal(sm.Snapshot(), restored.Snapshot()) {
		t.Fatal("snapshots diverged after abort")
	}
	// The split can be prepared again at the same epoch.
	if r := execOp(t, sm, op{kind: opPrepareReconfig, rkind: reconfigSplit, epoch: 2, part: 1, newPart: 2, key: "p"}); r.status != statusOK {
		t.Fatalf("re-prepare = %+v", r)
	}
}

// TestSMSnapshotCarriesMergeState: frozen/receiving flags and the pending
// kind survive Snapshot/Restore, so a replica recovered mid-merge keeps
// redirecting (donor) and accepting chunks (survivor).
func TestSMSnapshotCarriesMergeState(t *testing.T) {
	part := NewRangePartitioner([]string{"m"})
	donor := NewSM(1, part)
	execOp(t, donor, op{kind: opInsert, epoch: 1, key: "q", value: []byte("vq")})
	prepDonor(t, donor, 1, 0, 2)
	restoredDonor := NewSM(1, part)
	restoredDonor.Restore(donor.Snapshot())
	if r := execOp(t, restoredDonor, op{kind: opRead, epoch: 1, key: "q"}); r.status != statusWrongEpoch {
		t.Fatalf("restored donor not frozen: %+v", r)
	}

	dest := NewSM(0, part)
	prepDest(t, dest, 1, 0, 2)
	restoredDest := NewSM(0, part)
	restoredDest.Restore(dest.Snapshot())
	r := execOp(t, restoredDest, op{kind: opMigrate, epoch: 2, part: 0, batch: []op{
		{kind: opInsert, epoch: 2, key: "q", value: []byte("vq")},
	}})
	if r.status != statusOK || r.count != 1 {
		t.Fatalf("restored survivor rejects chunks: %+v", r)
	}
}

// liveMerge drives the ordered merge protocol inline (the same sequence
// rebalance.Coordinator orders): survivor armed, donor frozen and
// collected, chunks copied, mapping committed on the survivor's ring, and
// the donor's ring retired.
func liveMerge(t *testing.T, d *Deployment, cl *Client, survivor, donor int) {
	t.Helper()
	cur, ok := d.Partitioner().(*RangePartitioner)
	if !ok {
		t.Fatalf("not range partitioned: %T", d.Partitioner())
	}
	next, err := cur.Merge(donor, survivor)
	if err != nil {
		t.Fatal(err)
	}
	epoch := d.Epoch() + 1
	donorRing := d.PartitionRing(donor)
	destRing := d.PartitionRing(survivor)
	if err := cl.RevokeLease(destRing); err != nil {
		t.Fatal(err)
	}
	if err := cl.PrepareMergeDest(destRing, donor, survivor, epoch); err != nil {
		t.Fatal(err)
	}
	if err := cl.RevokeLease(donorRing); err != nil {
		t.Fatal(err)
	}
	moved, err := cl.PrepareMergeDonor(donorRing, donor, survivor, epoch)
	if err != nil {
		t.Fatal(err)
	}
	for lo := 0; lo < len(moved); lo += 64 {
		hi := lo + 64
		if hi > len(moved) {
			hi = len(moved)
		}
		if err := cl.MigrateChunk(destRing, survivor, epoch, moved[lo:hi]); err != nil {
			t.Fatal(err)
		}
	}
	d.AdoptReconfig(epoch, next)
	if err := cl.CommitMerge(destRing, donor, survivor, epoch, next); err != nil {
		t.Fatal(err)
	}
	if err := d.RetirePartition(donor); err != nil {
		t.Fatal(err)
	}
}

// TestGetRacesMergeRetirement pins the read path's self-correction across
// a merge retirement: a client hammering a key that lives on the merge
// donor must keep getting correct answers while the donor is frozen,
// drained, and its ring torn down. Each hazard resolves through a typed
// signal, never a wrong result — the frozen donor answers with the
// wrong-epoch redirect, a read in flight against the torn-down ring times
// out into the reroute path, and the lease fast path declines once the
// advertised holder vanishes — and in every case the client refreshes its
// view and retries against the survivor.
func TestGetRacesMergeRetirement(t *testing.T) {
	d := deployRangeStore(t, true)
	cl := d.NewClient()
	defer cl.Close()
	for _, k := range []string{"b", "q", "t"} {
		if err := cl.Insert(k, []byte("v-"+k)); err != nil {
			t.Fatal(err)
		}
	}
	newPart := liveSplit(t, d, cl, 1, "p") // "q","t" move to the split-born partition

	reader := d.NewClient()
	defer reader.Close()
	if v, err := reader.Read("q"); err != nil || string(v) != "v-q" {
		t.Fatalf("warmup read = %q, %v", v, err)
	}

	stop := make(chan struct{})
	done := make(chan struct{})
	readErr := make(chan error, 1)
	var retired atomic.Bool
	var after atomic.Int64 // successful reads observed after retirement
	go func() {
		defer close(done)
		for {
			select {
			case <-stop:
				return
			default:
			}
			v, err := reader.Read("q")
			if err != nil || string(v) != "v-q" {
				select {
				case readErr <- fmt.Errorf("read racing merge = %q, %v", v, err):
				default:
				}
				return
			}
			if retired.Load() {
				after.Add(1)
			}
		}
	}()

	liveMerge(t, d, cl, 1, newPart) // ends in RetirePartition(newPart)
	retired.Store(true)
	deadline := time.Now().Add(10 * time.Second)
	for after.Load() < 5 && time.Now().Before(deadline) {
		select {
		case err := <-readErr:
			t.Fatal(err)
		case <-time.After(10 * time.Millisecond):
		}
	}
	close(stop)
	<-done
	select {
	case err := <-readErr:
		t.Fatal(err)
	default:
	}
	if after.Load() < 5 {
		t.Fatalf("only %d successful reads after the donor ring was retired", after.Load())
	}
}

// TestLiveMergeAndRingRecycling runs split → merge → split against a live
// deployment: the merge drains the split-born partition back into its
// neighbor, retires its ring (processes stopped, tombstoned topology,
// unrecoverable), and the next split recycles the retired ring ID and
// partition index.
func TestLiveMergeAndRingRecycling(t *testing.T) {
	d := deployRangeStore(t, true)
	cl := d.NewClient()
	defer cl.Close()
	for _, k := range []string{"b", "n", "q", "t"} {
		if err := cl.Insert(k, []byte("v-"+k)); err != nil {
			t.Fatal(err)
		}
	}

	newPart := liveSplit(t, d, cl, 1, "p")
	if newPart != 2 {
		t.Fatalf("split partition = %d", newPart)
	}
	splitRing := d.PartitionRing(newPart)
	if splitRing == 0 {
		t.Fatal("no ring for split partition")
	}

	liveMerge(t, d, cl, 1, newPart)
	if d.Epoch() != 3 || d.Partitions() != 2 {
		t.Fatalf("after merge: epoch=%d partitions=%d", d.Epoch(), d.Partitions())
	}
	// The donor's topology entry is a tombstone: ring gone, replicas
	// stopped, recovery refused.
	if ring := d.PartitionRing(newPart); ring != 0 {
		t.Fatalf("retired partition still has ring %d", ring)
	}
	if h := d.ReplicaAt(newPart, 0); h != nil {
		t.Fatalf("retired partition still has replica handles")
	}
	if err := d.RecoverReplica(newPart, 0); err == nil {
		t.Fatal("recovery of a retired partition succeeded")
	}
	// Retirement is idempotent (a resumed teardown).
	if err := d.RetirePartition(newPart); err != nil {
		t.Fatalf("re-retire: %v", err)
	}
	// All data lives on the survivor and serves.
	for _, k := range []string{"q", "t"} {
		v, err := cl.Read(k)
		if err != nil || string(v) != "v-"+k {
			t.Fatalf("post-merge read %q = %q, %v", k, v, err)
		}
	}
	entries, err := cl.Scan("a", "z", 0)
	if err != nil || len(entries) != 4 {
		t.Fatalf("post-merge scan = %d entries, %v", len(entries), err)
	}

	// The next split reuses the retired ring ID and partition index.
	again := liveSplit(t, d, cl, 1, "p")
	if again != 2 {
		t.Fatalf("re-split partition index = %d (retired index not recycled)", again)
	}
	if ring := d.PartitionRing(again); ring != splitRing {
		t.Fatalf("re-split ring = %d, want recycled %d", ring, splitRing)
	}
	v, err := cl.Read("q")
	if err != nil || string(v) != "v-q" {
		t.Fatalf("read after recycled split = %q, %v", v, err)
	}
	if err := cl.Insert("s", []byte("v-s")); err != nil {
		t.Fatal(err)
	}
}
